# Empty dependencies file for hydro_plant.
# This may be replaced when dependencies are built.
