file(REMOVE_RECURSE
  "CMakeFiles/hydro_plant.dir/hydro_plant.cpp.o"
  "CMakeFiles/hydro_plant.dir/hydro_plant.cpp.o.d"
  "hydro_plant"
  "hydro_plant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydro_plant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
