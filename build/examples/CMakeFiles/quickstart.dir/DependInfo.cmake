
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/omx_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omx_models.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omx_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omx_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omx_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omx_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omx_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omx_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omx_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omx_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omx_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omx_ode.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omx_la.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omx_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
