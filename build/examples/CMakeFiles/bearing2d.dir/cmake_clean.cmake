file(REMOVE_RECURSE
  "CMakeFiles/bearing2d.dir/bearing2d.cpp.o"
  "CMakeFiles/bearing2d.dir/bearing2d.cpp.o.d"
  "bearing2d"
  "bearing2d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bearing2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
