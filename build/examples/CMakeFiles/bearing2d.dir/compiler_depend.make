# Empty compiler generated dependencies file for bearing2d.
# This may be replaced when dependencies are built.
