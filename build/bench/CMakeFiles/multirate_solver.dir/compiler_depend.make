# Empty compiler generated dependencies file for multirate_solver.
# This may be replaced when dependencies are built.
