file(REMOVE_RECURSE
  "CMakeFiles/multirate_solver.dir/multirate_solver.cpp.o"
  "CMakeFiles/multirate_solver.dir/multirate_solver.cpp.o.d"
  "multirate_solver"
  "multirate_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multirate_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
