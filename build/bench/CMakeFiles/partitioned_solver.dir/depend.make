# Empty dependencies file for partitioned_solver.
# This may be replaced when dependencies are built.
