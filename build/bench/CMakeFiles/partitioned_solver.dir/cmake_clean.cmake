file(REMOVE_RECURSE
  "CMakeFiles/partitioned_solver.dir/partitioned_solver.cpp.o"
  "CMakeFiles/partitioned_solver.dir/partitioned_solver.cpp.o.d"
  "partitioned_solver"
  "partitioned_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partitioned_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
