file(REMOVE_RECURSE
  "CMakeFiles/eqsys_level.dir/eqsys_level.cpp.o"
  "CMakeFiles/eqsys_level.dir/eqsys_level.cpp.o.d"
  "eqsys_level"
  "eqsys_level.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eqsys_level.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
