# Empty dependencies file for eqsys_level.
# This may be replaced when dependencies are built.
