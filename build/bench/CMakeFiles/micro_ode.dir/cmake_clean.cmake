file(REMOVE_RECURSE
  "CMakeFiles/micro_ode.dir/micro_ode.cpp.o"
  "CMakeFiles/micro_ode.dir/micro_ode.cpp.o.d"
  "micro_ode"
  "micro_ode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_ode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
