# Empty compiler generated dependencies file for micro_ode.
# This may be replaced when dependencies are built.
