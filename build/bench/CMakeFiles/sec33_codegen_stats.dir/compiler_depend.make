# Empty compiler generated dependencies file for sec33_codegen_stats.
# This may be replaced when dependencies are built.
