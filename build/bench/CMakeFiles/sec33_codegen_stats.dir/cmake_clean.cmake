file(REMOVE_RECURSE
  "CMakeFiles/sec33_codegen_stats.dir/sec33_codegen_stats.cpp.o"
  "CMakeFiles/sec33_codegen_stats.dir/sec33_codegen_stats.cpp.o.d"
  "sec33_codegen_stats"
  "sec33_codegen_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec33_codegen_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
