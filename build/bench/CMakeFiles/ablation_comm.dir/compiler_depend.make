# Empty compiler generated dependencies file for ablation_comm.
# This may be replaced when dependencies are built.
