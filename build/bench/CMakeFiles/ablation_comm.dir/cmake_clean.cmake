file(REMOVE_RECURSE
  "CMakeFiles/ablation_comm.dir/ablation_comm.cpp.o"
  "CMakeFiles/ablation_comm.dir/ablation_comm.cpp.o.d"
  "ablation_comm"
  "ablation_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
