# Empty compiler generated dependencies file for granularity_scaling.
# This may be replaced when dependencies are built.
