file(REMOVE_RECURSE
  "CMakeFiles/granularity_scaling.dir/granularity_scaling.cpp.o"
  "CMakeFiles/granularity_scaling.dir/granularity_scaling.cpp.o.d"
  "granularity_scaling"
  "granularity_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/granularity_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
