# Empty compiler generated dependencies file for fig11_codegen.
# This may be replaced when dependencies are built.
