file(REMOVE_RECURSE
  "CMakeFiles/fig11_codegen.dir/fig11_codegen.cpp.o"
  "CMakeFiles/fig11_codegen.dir/fig11_codegen.cpp.o.d"
  "fig11_codegen"
  "fig11_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
