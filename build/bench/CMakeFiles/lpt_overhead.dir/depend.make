# Empty dependencies file for lpt_overhead.
# This may be replaced when dependencies are built.
