file(REMOVE_RECURSE
  "CMakeFiles/lpt_overhead.dir/lpt_overhead.cpp.o"
  "CMakeFiles/lpt_overhead.dir/lpt_overhead.cpp.o.d"
  "lpt_overhead"
  "lpt_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lpt_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
