# Empty dependencies file for fig6_bearing_scc.
# This may be replaced when dependencies are built.
