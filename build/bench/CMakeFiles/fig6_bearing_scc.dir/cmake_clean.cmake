file(REMOVE_RECURSE
  "CMakeFiles/fig6_bearing_scc.dir/fig6_bearing_scc.cpp.o"
  "CMakeFiles/fig6_bearing_scc.dir/fig6_bearing_scc.cpp.o.d"
  "fig6_bearing_scc"
  "fig6_bearing_scc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_bearing_scc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
