# Empty compiler generated dependencies file for heat_pde.
# This may be replaced when dependencies are built.
