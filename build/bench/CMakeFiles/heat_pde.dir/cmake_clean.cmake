file(REMOVE_RECURSE
  "CMakeFiles/heat_pde.dir/heat_pde.cpp.o"
  "CMakeFiles/heat_pde.dir/heat_pde.cpp.o.d"
  "heat_pde"
  "heat_pde.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heat_pde.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
