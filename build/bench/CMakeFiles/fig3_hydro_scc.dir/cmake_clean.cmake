file(REMOVE_RECURSE
  "CMakeFiles/fig3_hydro_scc.dir/fig3_hydro_scc.cpp.o"
  "CMakeFiles/fig3_hydro_scc.dir/fig3_hydro_scc.cpp.o.d"
  "fig3_hydro_scc"
  "fig3_hydro_scc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_hydro_scc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
