# Empty dependencies file for fig3_hydro_scc.
# This may be replaced when dependencies are built.
