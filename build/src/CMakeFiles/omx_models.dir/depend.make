# Empty dependencies file for omx_models.
# This may be replaced when dependencies are built.
