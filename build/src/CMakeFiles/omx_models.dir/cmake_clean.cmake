file(REMOVE_RECURSE
  "CMakeFiles/omx_models.dir/omx/models/bearing2d.cpp.o"
  "CMakeFiles/omx_models.dir/omx/models/bearing2d.cpp.o.d"
  "CMakeFiles/omx_models.dir/omx/models/heat1d.cpp.o"
  "CMakeFiles/omx_models.dir/omx/models/heat1d.cpp.o.d"
  "CMakeFiles/omx_models.dir/omx/models/hydro.cpp.o"
  "CMakeFiles/omx_models.dir/omx/models/hydro.cpp.o.d"
  "CMakeFiles/omx_models.dir/omx/models/oscillator.cpp.o"
  "CMakeFiles/omx_models.dir/omx/models/oscillator.cpp.o.d"
  "CMakeFiles/omx_models.dir/omx/models/servo.cpp.o"
  "CMakeFiles/omx_models.dir/omx/models/servo.cpp.o.d"
  "libomx_models.a"
  "libomx_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omx_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
