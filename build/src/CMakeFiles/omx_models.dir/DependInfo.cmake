
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/omx/models/bearing2d.cpp" "src/CMakeFiles/omx_models.dir/omx/models/bearing2d.cpp.o" "gcc" "src/CMakeFiles/omx_models.dir/omx/models/bearing2d.cpp.o.d"
  "/root/repo/src/omx/models/heat1d.cpp" "src/CMakeFiles/omx_models.dir/omx/models/heat1d.cpp.o" "gcc" "src/CMakeFiles/omx_models.dir/omx/models/heat1d.cpp.o.d"
  "/root/repo/src/omx/models/hydro.cpp" "src/CMakeFiles/omx_models.dir/omx/models/hydro.cpp.o" "gcc" "src/CMakeFiles/omx_models.dir/omx/models/hydro.cpp.o.d"
  "/root/repo/src/omx/models/oscillator.cpp" "src/CMakeFiles/omx_models.dir/omx/models/oscillator.cpp.o" "gcc" "src/CMakeFiles/omx_models.dir/omx/models/oscillator.cpp.o.d"
  "/root/repo/src/omx/models/servo.cpp" "src/CMakeFiles/omx_models.dir/omx/models/servo.cpp.o" "gcc" "src/CMakeFiles/omx_models.dir/omx/models/servo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/omx_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omx_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omx_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omx_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
