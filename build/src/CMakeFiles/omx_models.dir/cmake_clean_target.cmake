file(REMOVE_RECURSE
  "libomx_models.a"
)
