file(REMOVE_RECURSE
  "CMakeFiles/omx_analysis.dir/omx/analysis/dependency.cpp.o"
  "CMakeFiles/omx_analysis.dir/omx/analysis/dependency.cpp.o.d"
  "CMakeFiles/omx_analysis.dir/omx/analysis/partition.cpp.o"
  "CMakeFiles/omx_analysis.dir/omx/analysis/partition.cpp.o.d"
  "CMakeFiles/omx_analysis.dir/omx/analysis/subsystem_solver.cpp.o"
  "CMakeFiles/omx_analysis.dir/omx/analysis/subsystem_solver.cpp.o.d"
  "libomx_analysis.a"
  "libomx_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omx_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
