# Empty compiler generated dependencies file for omx_analysis.
# This may be replaced when dependencies are built.
