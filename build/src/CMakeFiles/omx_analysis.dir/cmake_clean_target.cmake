file(REMOVE_RECURSE
  "libomx_analysis.a"
)
