
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/omx/parser/lexer.cpp" "src/CMakeFiles/omx_parser.dir/omx/parser/lexer.cpp.o" "gcc" "src/CMakeFiles/omx_parser.dir/omx/parser/lexer.cpp.o.d"
  "/root/repo/src/omx/parser/parser.cpp" "src/CMakeFiles/omx_parser.dir/omx/parser/parser.cpp.o" "gcc" "src/CMakeFiles/omx_parser.dir/omx/parser/parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/omx_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omx_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omx_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
