file(REMOVE_RECURSE
  "CMakeFiles/omx_parser.dir/omx/parser/lexer.cpp.o"
  "CMakeFiles/omx_parser.dir/omx/parser/lexer.cpp.o.d"
  "CMakeFiles/omx_parser.dir/omx/parser/parser.cpp.o"
  "CMakeFiles/omx_parser.dir/omx/parser/parser.cpp.o.d"
  "libomx_parser.a"
  "libomx_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omx_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
