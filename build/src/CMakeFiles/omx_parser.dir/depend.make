# Empty dependencies file for omx_parser.
# This may be replaced when dependencies are built.
