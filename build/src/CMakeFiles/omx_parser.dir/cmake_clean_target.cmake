file(REMOVE_RECURSE
  "libomx_parser.a"
)
