file(REMOVE_RECURSE
  "libomx_pipeline.a"
)
