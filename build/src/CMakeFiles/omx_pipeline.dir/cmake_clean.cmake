file(REMOVE_RECURSE
  "CMakeFiles/omx_pipeline.dir/omx/pipeline/pipeline.cpp.o"
  "CMakeFiles/omx_pipeline.dir/omx/pipeline/pipeline.cpp.o.d"
  "libomx_pipeline.a"
  "libomx_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omx_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
