# Empty dependencies file for omx_pipeline.
# This may be replaced when dependencies are built.
