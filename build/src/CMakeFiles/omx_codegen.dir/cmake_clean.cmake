file(REMOVE_RECURSE
  "CMakeFiles/omx_codegen.dir/omx/codegen/assignments.cpp.o"
  "CMakeFiles/omx_codegen.dir/omx/codegen/assignments.cpp.o.d"
  "CMakeFiles/omx_codegen.dir/omx/codegen/code_printer.cpp.o"
  "CMakeFiles/omx_codegen.dir/omx/codegen/code_printer.cpp.o.d"
  "CMakeFiles/omx_codegen.dir/omx/codegen/cpp_emit.cpp.o"
  "CMakeFiles/omx_codegen.dir/omx/codegen/cpp_emit.cpp.o.d"
  "CMakeFiles/omx_codegen.dir/omx/codegen/cse.cpp.o"
  "CMakeFiles/omx_codegen.dir/omx/codegen/cse.cpp.o.d"
  "CMakeFiles/omx_codegen.dir/omx/codegen/emit_common.cpp.o"
  "CMakeFiles/omx_codegen.dir/omx/codegen/emit_common.cpp.o.d"
  "CMakeFiles/omx_codegen.dir/omx/codegen/fortran.cpp.o"
  "CMakeFiles/omx_codegen.dir/omx/codegen/fortran.cpp.o.d"
  "CMakeFiles/omx_codegen.dir/omx/codegen/tape.cpp.o"
  "CMakeFiles/omx_codegen.dir/omx/codegen/tape.cpp.o.d"
  "CMakeFiles/omx_codegen.dir/omx/codegen/tasks.cpp.o"
  "CMakeFiles/omx_codegen.dir/omx/codegen/tasks.cpp.o.d"
  "libomx_codegen.a"
  "libomx_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omx_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
