file(REMOVE_RECURSE
  "libomx_codegen.a"
)
