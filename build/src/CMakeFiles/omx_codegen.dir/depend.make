# Empty dependencies file for omx_codegen.
# This may be replaced when dependencies are built.
