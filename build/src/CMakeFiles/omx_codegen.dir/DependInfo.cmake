
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/omx/codegen/assignments.cpp" "src/CMakeFiles/omx_codegen.dir/omx/codegen/assignments.cpp.o" "gcc" "src/CMakeFiles/omx_codegen.dir/omx/codegen/assignments.cpp.o.d"
  "/root/repo/src/omx/codegen/code_printer.cpp" "src/CMakeFiles/omx_codegen.dir/omx/codegen/code_printer.cpp.o" "gcc" "src/CMakeFiles/omx_codegen.dir/omx/codegen/code_printer.cpp.o.d"
  "/root/repo/src/omx/codegen/cpp_emit.cpp" "src/CMakeFiles/omx_codegen.dir/omx/codegen/cpp_emit.cpp.o" "gcc" "src/CMakeFiles/omx_codegen.dir/omx/codegen/cpp_emit.cpp.o.d"
  "/root/repo/src/omx/codegen/cse.cpp" "src/CMakeFiles/omx_codegen.dir/omx/codegen/cse.cpp.o" "gcc" "src/CMakeFiles/omx_codegen.dir/omx/codegen/cse.cpp.o.d"
  "/root/repo/src/omx/codegen/emit_common.cpp" "src/CMakeFiles/omx_codegen.dir/omx/codegen/emit_common.cpp.o" "gcc" "src/CMakeFiles/omx_codegen.dir/omx/codegen/emit_common.cpp.o.d"
  "/root/repo/src/omx/codegen/fortran.cpp" "src/CMakeFiles/omx_codegen.dir/omx/codegen/fortran.cpp.o" "gcc" "src/CMakeFiles/omx_codegen.dir/omx/codegen/fortran.cpp.o.d"
  "/root/repo/src/omx/codegen/tape.cpp" "src/CMakeFiles/omx_codegen.dir/omx/codegen/tape.cpp.o" "gcc" "src/CMakeFiles/omx_codegen.dir/omx/codegen/tape.cpp.o.d"
  "/root/repo/src/omx/codegen/tasks.cpp" "src/CMakeFiles/omx_codegen.dir/omx/codegen/tasks.cpp.o" "gcc" "src/CMakeFiles/omx_codegen.dir/omx/codegen/tasks.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/omx_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omx_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omx_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omx_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omx_ode.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omx_la.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omx_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omx_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
