# Empty dependencies file for omx_expr.
# This may be replaced when dependencies are built.
