
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/omx/expr/derivative.cpp" "src/CMakeFiles/omx_expr.dir/omx/expr/derivative.cpp.o" "gcc" "src/CMakeFiles/omx_expr.dir/omx/expr/derivative.cpp.o.d"
  "/root/repo/src/omx/expr/eval.cpp" "src/CMakeFiles/omx_expr.dir/omx/expr/eval.cpp.o" "gcc" "src/CMakeFiles/omx_expr.dir/omx/expr/eval.cpp.o.d"
  "/root/repo/src/omx/expr/pool.cpp" "src/CMakeFiles/omx_expr.dir/omx/expr/pool.cpp.o" "gcc" "src/CMakeFiles/omx_expr.dir/omx/expr/pool.cpp.o.d"
  "/root/repo/src/omx/expr/printer.cpp" "src/CMakeFiles/omx_expr.dir/omx/expr/printer.cpp.o" "gcc" "src/CMakeFiles/omx_expr.dir/omx/expr/printer.cpp.o.d"
  "/root/repo/src/omx/expr/simplify.cpp" "src/CMakeFiles/omx_expr.dir/omx/expr/simplify.cpp.o" "gcc" "src/CMakeFiles/omx_expr.dir/omx/expr/simplify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/omx_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
