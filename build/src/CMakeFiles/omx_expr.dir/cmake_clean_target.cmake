file(REMOVE_RECURSE
  "libomx_expr.a"
)
