file(REMOVE_RECURSE
  "CMakeFiles/omx_expr.dir/omx/expr/derivative.cpp.o"
  "CMakeFiles/omx_expr.dir/omx/expr/derivative.cpp.o.d"
  "CMakeFiles/omx_expr.dir/omx/expr/eval.cpp.o"
  "CMakeFiles/omx_expr.dir/omx/expr/eval.cpp.o.d"
  "CMakeFiles/omx_expr.dir/omx/expr/pool.cpp.o"
  "CMakeFiles/omx_expr.dir/omx/expr/pool.cpp.o.d"
  "CMakeFiles/omx_expr.dir/omx/expr/printer.cpp.o"
  "CMakeFiles/omx_expr.dir/omx/expr/printer.cpp.o.d"
  "CMakeFiles/omx_expr.dir/omx/expr/simplify.cpp.o"
  "CMakeFiles/omx_expr.dir/omx/expr/simplify.cpp.o.d"
  "libomx_expr.a"
  "libomx_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omx_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
