# Empty compiler generated dependencies file for omx_la.
# This may be replaced when dependencies are built.
