# Empty dependencies file for omx_la.
# This may be replaced when dependencies are built.
