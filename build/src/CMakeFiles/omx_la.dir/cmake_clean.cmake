file(REMOVE_RECURSE
  "CMakeFiles/omx_la.dir/omx/la/lu.cpp.o"
  "CMakeFiles/omx_la.dir/omx/la/lu.cpp.o.d"
  "CMakeFiles/omx_la.dir/omx/la/matrix.cpp.o"
  "CMakeFiles/omx_la.dir/omx/la/matrix.cpp.o.d"
  "libomx_la.a"
  "libomx_la.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omx_la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
