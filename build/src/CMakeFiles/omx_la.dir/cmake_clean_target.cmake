file(REMOVE_RECURSE
  "libomx_la.a"
)
