file(REMOVE_RECURSE
  "libomx_model.a"
)
