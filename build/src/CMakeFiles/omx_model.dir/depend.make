# Empty dependencies file for omx_model.
# This may be replaced when dependencies are built.
