file(REMOVE_RECURSE
  "CMakeFiles/omx_model.dir/omx/model/flatten.cpp.o"
  "CMakeFiles/omx_model.dir/omx/model/flatten.cpp.o.d"
  "CMakeFiles/omx_model.dir/omx/model/model.cpp.o"
  "CMakeFiles/omx_model.dir/omx/model/model.cpp.o.d"
  "libomx_model.a"
  "libomx_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omx_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
