# Empty compiler generated dependencies file for omx_model.
# This may be replaced when dependencies are built.
