file(REMOVE_RECURSE
  "CMakeFiles/omx_vm.dir/omx/vm/interp.cpp.o"
  "CMakeFiles/omx_vm.dir/omx/vm/interp.cpp.o.d"
  "CMakeFiles/omx_vm.dir/omx/vm/program.cpp.o"
  "CMakeFiles/omx_vm.dir/omx/vm/program.cpp.o.d"
  "libomx_vm.a"
  "libomx_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omx_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
