file(REMOVE_RECURSE
  "libomx_vm.a"
)
