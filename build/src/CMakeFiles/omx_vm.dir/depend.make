# Empty dependencies file for omx_vm.
# This may be replaced when dependencies are built.
