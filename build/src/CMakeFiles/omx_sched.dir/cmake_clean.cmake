file(REMOVE_RECURSE
  "CMakeFiles/omx_sched.dir/omx/sched/lpt.cpp.o"
  "CMakeFiles/omx_sched.dir/omx/sched/lpt.cpp.o.d"
  "CMakeFiles/omx_sched.dir/omx/sched/semidynamic.cpp.o"
  "CMakeFiles/omx_sched.dir/omx/sched/semidynamic.cpp.o.d"
  "libomx_sched.a"
  "libomx_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omx_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
