file(REMOVE_RECURSE
  "libomx_sched.a"
)
