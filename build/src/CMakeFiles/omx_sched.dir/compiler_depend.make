# Empty compiler generated dependencies file for omx_sched.
# This may be replaced when dependencies are built.
