
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/omx/graph/digraph.cpp" "src/CMakeFiles/omx_graph.dir/omx/graph/digraph.cpp.o" "gcc" "src/CMakeFiles/omx_graph.dir/omx/graph/digraph.cpp.o.d"
  "/root/repo/src/omx/graph/dot.cpp" "src/CMakeFiles/omx_graph.dir/omx/graph/dot.cpp.o" "gcc" "src/CMakeFiles/omx_graph.dir/omx/graph/dot.cpp.o.d"
  "/root/repo/src/omx/graph/scc.cpp" "src/CMakeFiles/omx_graph.dir/omx/graph/scc.cpp.o" "gcc" "src/CMakeFiles/omx_graph.dir/omx/graph/scc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/omx_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
