file(REMOVE_RECURSE
  "CMakeFiles/omx_graph.dir/omx/graph/digraph.cpp.o"
  "CMakeFiles/omx_graph.dir/omx/graph/digraph.cpp.o.d"
  "CMakeFiles/omx_graph.dir/omx/graph/dot.cpp.o"
  "CMakeFiles/omx_graph.dir/omx/graph/dot.cpp.o.d"
  "CMakeFiles/omx_graph.dir/omx/graph/scc.cpp.o"
  "CMakeFiles/omx_graph.dir/omx/graph/scc.cpp.o.d"
  "libomx_graph.a"
  "libomx_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omx_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
