file(REMOVE_RECURSE
  "CMakeFiles/omx_runtime.dir/omx/runtime/interconnect.cpp.o"
  "CMakeFiles/omx_runtime.dir/omx/runtime/interconnect.cpp.o.d"
  "CMakeFiles/omx_runtime.dir/omx/runtime/parallel_rhs.cpp.o"
  "CMakeFiles/omx_runtime.dir/omx/runtime/parallel_rhs.cpp.o.d"
  "CMakeFiles/omx_runtime.dir/omx/runtime/simulated_machine.cpp.o"
  "CMakeFiles/omx_runtime.dir/omx/runtime/simulated_machine.cpp.o.d"
  "CMakeFiles/omx_runtime.dir/omx/runtime/worker_pool.cpp.o"
  "CMakeFiles/omx_runtime.dir/omx/runtime/worker_pool.cpp.o.d"
  "libomx_runtime.a"
  "libomx_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omx_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
