file(REMOVE_RECURSE
  "libomx_runtime.a"
)
