# Empty compiler generated dependencies file for omx_runtime.
# This may be replaced when dependencies are built.
