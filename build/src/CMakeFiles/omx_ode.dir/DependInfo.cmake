
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/omx/ode/adams.cpp" "src/CMakeFiles/omx_ode.dir/omx/ode/adams.cpp.o" "gcc" "src/CMakeFiles/omx_ode.dir/omx/ode/adams.cpp.o.d"
  "/root/repo/src/omx/ode/auto_switch.cpp" "src/CMakeFiles/omx_ode.dir/omx/ode/auto_switch.cpp.o" "gcc" "src/CMakeFiles/omx_ode.dir/omx/ode/auto_switch.cpp.o.d"
  "/root/repo/src/omx/ode/bdf.cpp" "src/CMakeFiles/omx_ode.dir/omx/ode/bdf.cpp.o" "gcc" "src/CMakeFiles/omx_ode.dir/omx/ode/bdf.cpp.o.d"
  "/root/repo/src/omx/ode/dopri5.cpp" "src/CMakeFiles/omx_ode.dir/omx/ode/dopri5.cpp.o" "gcc" "src/CMakeFiles/omx_ode.dir/omx/ode/dopri5.cpp.o.d"
  "/root/repo/src/omx/ode/fixed_step.cpp" "src/CMakeFiles/omx_ode.dir/omx/ode/fixed_step.cpp.o" "gcc" "src/CMakeFiles/omx_ode.dir/omx/ode/fixed_step.cpp.o.d"
  "/root/repo/src/omx/ode/jacobian.cpp" "src/CMakeFiles/omx_ode.dir/omx/ode/jacobian.cpp.o" "gcc" "src/CMakeFiles/omx_ode.dir/omx/ode/jacobian.cpp.o.d"
  "/root/repo/src/omx/ode/problem.cpp" "src/CMakeFiles/omx_ode.dir/omx/ode/problem.cpp.o" "gcc" "src/CMakeFiles/omx_ode.dir/omx/ode/problem.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/omx_la.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omx_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
