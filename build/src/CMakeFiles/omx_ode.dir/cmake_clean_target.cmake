file(REMOVE_RECURSE
  "libomx_ode.a"
)
