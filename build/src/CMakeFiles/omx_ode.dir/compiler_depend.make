# Empty compiler generated dependencies file for omx_ode.
# This may be replaced when dependencies are built.
