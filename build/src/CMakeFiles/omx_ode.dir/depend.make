# Empty dependencies file for omx_ode.
# This may be replaced when dependencies are built.
