file(REMOVE_RECURSE
  "CMakeFiles/omx_ode.dir/omx/ode/adams.cpp.o"
  "CMakeFiles/omx_ode.dir/omx/ode/adams.cpp.o.d"
  "CMakeFiles/omx_ode.dir/omx/ode/auto_switch.cpp.o"
  "CMakeFiles/omx_ode.dir/omx/ode/auto_switch.cpp.o.d"
  "CMakeFiles/omx_ode.dir/omx/ode/bdf.cpp.o"
  "CMakeFiles/omx_ode.dir/omx/ode/bdf.cpp.o.d"
  "CMakeFiles/omx_ode.dir/omx/ode/dopri5.cpp.o"
  "CMakeFiles/omx_ode.dir/omx/ode/dopri5.cpp.o.d"
  "CMakeFiles/omx_ode.dir/omx/ode/fixed_step.cpp.o"
  "CMakeFiles/omx_ode.dir/omx/ode/fixed_step.cpp.o.d"
  "CMakeFiles/omx_ode.dir/omx/ode/jacobian.cpp.o"
  "CMakeFiles/omx_ode.dir/omx/ode/jacobian.cpp.o.d"
  "CMakeFiles/omx_ode.dir/omx/ode/problem.cpp.o"
  "CMakeFiles/omx_ode.dir/omx/ode/problem.cpp.o.d"
  "libomx_ode.a"
  "libomx_ode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omx_ode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
