# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/expr_test[1]_include.cmake")
include("/root/repo/build/tests/expr_property_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/la_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/cse_test[1]_include.cmake")
include("/root/repo/build/tests/codegen_emit_test[1]_include.cmake")
include("/root/repo/build/tests/tape_test[1]_include.cmake")
include("/root/repo/build/tests/tasks_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/ode_test[1]_include.cmake")
include("/root/repo/build/tests/ode_stiff_test[1]_include.cmake")
include("/root/repo/build/tests/models_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/subsystem_solver_test[1]_include.cmake")
include("/root/repo/build/tests/heat1d_test[1]_include.cmake")
