file(REMOVE_RECURSE
  "CMakeFiles/heat1d_test.dir/heat1d_test.cpp.o"
  "CMakeFiles/heat1d_test.dir/heat1d_test.cpp.o.d"
  "heat1d_test"
  "heat1d_test.pdb"
  "heat1d_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heat1d_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
