# Empty dependencies file for heat1d_test.
# This may be replaced when dependencies are built.
