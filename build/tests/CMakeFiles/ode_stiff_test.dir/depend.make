# Empty dependencies file for ode_stiff_test.
# This may be replaced when dependencies are built.
