file(REMOVE_RECURSE
  "CMakeFiles/ode_stiff_test.dir/ode_stiff_test.cpp.o"
  "CMakeFiles/ode_stiff_test.dir/ode_stiff_test.cpp.o.d"
  "ode_stiff_test"
  "ode_stiff_test.pdb"
  "ode_stiff_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ode_stiff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
