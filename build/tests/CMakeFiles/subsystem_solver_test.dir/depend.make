# Empty dependencies file for subsystem_solver_test.
# This may be replaced when dependencies are built.
