file(REMOVE_RECURSE
  "CMakeFiles/subsystem_solver_test.dir/subsystem_solver_test.cpp.o"
  "CMakeFiles/subsystem_solver_test.dir/subsystem_solver_test.cpp.o.d"
  "subsystem_solver_test"
  "subsystem_solver_test.pdb"
  "subsystem_solver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subsystem_solver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
