file(REMOVE_RECURSE
  "CMakeFiles/codegen_emit_test.dir/codegen_emit_test.cpp.o"
  "CMakeFiles/codegen_emit_test.dir/codegen_emit_test.cpp.o.d"
  "codegen_emit_test"
  "codegen_emit_test.pdb"
  "codegen_emit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codegen_emit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
