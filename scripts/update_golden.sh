#!/usr/bin/env bash
# Regenerate the golden codegen snapshots in tests/golden/ from the
# current emitters. Run this after an intentional code-generation change
# and commit the resulting diff together with the emitter change, so the
# review shows exactly what the generators now produce.
#
# Usage: scripts/update_golden.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake --build "$BUILD_DIR" -j --target codegen_emit_test
OMX_UPDATE_GOLDEN=1 "$BUILD_DIR"/tests/codegen_emit_test \
  --gtest_filter='Golden.*'
echo "golden snapshots regenerated under tests/golden/"
