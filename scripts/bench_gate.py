#!/usr/bin/env python3
"""Benchmark regression gate.

Compares the BENCH_*.json files produced by the bench binaries (obs JSON
metrics exporter format: {"counters": ..., "gauges": ..., "histograms":
...}) against the checked-in baselines in bench/baselines/ and fails when
a gated throughput metric regresses by more than --tolerance (default
15%).

What is gated vs merely reported:

* fig12.* gauges are *virtual-time* rates out of the simulated 1995
  machines — deterministic and machine-independent — so every
  calls_per_s series point and peak is gated against its baseline.
* backends.native_over_interp and backends.pool.stealing_over_static are
  same-machine *ratios*, so they transfer across hosts: native/interp is
  gated against the repo's >= 2x bar (and the baseline when present);
  stealing/static is gated against parity (>= 1 - tolerance), since the
  LPT seed schedule is already balanced and stealing must not cost
  throughput.
* ensemble.interp.batched_over_sequential is a same-machine ratio, but
  its numerator uses 4 workers: the repo's >= 3x bar only holds when the
  host actually has that many cores (the bench exports
  ensemble.hardware_concurrency). On smaller hosts the gate falls back
  to the worker-independent SoA batching amortization (>= 1.4x).
* ensemble.hybrid.* gates the event-carrying lanes structurally:
  bitwise_equal == 1 (the ensemble must reproduce the sequential
  per-scenario hybrid solves bit for bit) and events_fired >= the
  scenario count (every bouncing-ball lane localizes at least one
  impact). Both are machine-independent; hybrid throughput and its
  batched/sequential ratio are report-only.
* sparse.heat.n<N>.sparse_over_dense are same-machine wall-clock ratios
  of the sparse stiff path (colored FD + sparse LU) over the legacy
  dense path on the tridiagonal heat PDE: parity (>= 1 - tolerance) is
  required at n <= 16, and the repo's >= 2x bar at the largest size.
  The structural counts are gated as exact ceilings — jac_build_rhs_calls
  <= colors + 1 and colors <= 5 for the tridiagonal stencil — because
  they are machine-independent. Absolute *_wall_s values are report-only.
* simd.native.batch*_over_scalar are same-machine per-call throughput
  ratios of the vectorized rhs_batch lanes over the scalar native entry
  point on the bearing model. The repo's >= 4x bar applies to the best
  batch width, but only when the host SIMD width actually supports it
  (simd.lane_width >= 4 doubles, i.e. AVX or wider), the native backend
  is available, and the host has >= 4 cores — on 1-2 vCPU shared boxes
  the hypervisor steals cycles from the scalar reference window and the
  measured ratio swings +-30%, so the bar drops to a noise-immune 2.5x
  (still unreachable without real vectorization: a single thread on a
  single core has no other speedup source). On SSE2-only hosts the bar
  is 1.5x, and without a native toolchain the gate falls back to the
  interpreter's batching amortization (>= 1.4x). Baseline tightening
  only transfers between hosts of the same capability class.
* autotune.* gauges (BENCH_autotune.json, written by bench/autotune)
  gate the performance-model layer end to end: the configuration the
  fitted cost model picks must land within 10% of the best exhaustively
  measured configuration (auto_over_best <= 1.10) on both workloads
  (bearing ensemble worker/batch grid, heat-PDE backend/threads grid),
  and the OMX_TUNE=on runs must stay bitwise identical to untuned runs
  (tuning moves work, never changes answers). Both are same-machine
  ratios/invariants, so they transfer across hosts. Fitted-model
  residual quality (r2 lives in BENCH_autotune_model.json) and the
  calibration-vs-exhaustive cost split are report-only.
* service.* gauges (BENCH_service.json, written by bench/loadgen) gate
  the daemon's correctness invariants, which are machine-independent:
  every submitted job must succeed (jobs_ok == jobs_total) and every
  trajectory row the solver produced must arrive at the client
  (dropped_frames == 0). Tail behavior is gated structurally —
  p99 <= 10x p50 — because the CI load (8 clients against 2 executors
  with an 8-deep queue) is closed-loop and non-saturating, so a fat
  tail means head-of-line blocking in the daemon, not overload.
  Absolute latencies and throughput are report-only. This file only
  runs under --only service: the default bench jobs don't produce it.
* Absolute wall-clock rates (backends.*.calls_per_s,
  ensemble.*.scen_per_s) vary with CI hardware and are reported for the
  log but never gated.

Usage: scripts/bench_gate.py --current <dir with BENCH_*.json>
                             [--baseline bench/baselines]
                             [--tolerance 0.15] [--only NAME]

Exit status: 0 = all gates pass, 1 = regression, 2 = missing inputs.
"""

import argparse
import json
import os
import sys

GATED_RATIO_BARS = {
    # gauge name -> absolute floor that must hold regardless of baseline
    "backends.native_over_interp": 2.0,
}


def load_metrics(path):
    with open(path) as f:
        return json.load(f)


def report_histograms(gate, fname, current, baseline):
    """Report-only rows for the duration histograms the obs layer exports
    (p50/p99 of pool.task_seconds, rhs.eval_seconds, ...). Percentiles are
    wall-clock and machine-dependent, so they are never gated; the rows
    exist so a CI log diff shows latency shifts next to the throughput
    gates. Tolerates baselines predating the percentile fields."""
    base_hists = baseline.get("histograms", {})
    for name, hist in sorted(current.get("histograms", {}).items()):
        if not hist.get("count"):
            continue
        base = base_hists.get(name, {})
        for q in ("p50", "p99"):
            if q in hist:
                gate.report(f"{fname}:{name}.{q}", hist[q], base.get(q))


def fmt(v):
    return f"{v:.4g}"


class Gate:
    def __init__(self, tolerance):
        self.tolerance = tolerance
        self.failures = []
        self.rows = []

    def check(self, name, current, floor, why):
        ok = current >= floor
        self.rows.append((name, fmt(current), fmt(floor), why,
                          "ok" if ok else "FAIL"))
        if not ok:
            self.failures.append(
                f"{name}: {fmt(current)} < floor {fmt(floor)} ({why})")

    def check_max(self, name, current, ceiling, why):
        ok = current <= ceiling
        self.rows.append((name, fmt(current), fmt(ceiling), why,
                          "ok" if ok else "FAIL"))
        if not ok:
            self.failures.append(
                f"{name}: {fmt(current)} > ceiling {fmt(ceiling)} ({why})")

    def report(self, name, current, baseline):
        delta = ("n/a" if baseline is None or baseline == 0.0
                 else f"{(current / baseline - 1.0) * 100:+.1f}%")
        self.rows.append((name, fmt(current),
                          fmt(baseline) if baseline is not None else "-",
                          "report only", delta))


def gate_fig12(gate, current, baseline):
    for name, base in sorted(baseline.items()):
        if not name.startswith("fig12."):
            continue
        if ".calls_per_s." not in name and not name.endswith(".peak"):
            continue
        if name not in current:
            gate.failures.append(f"{name}: missing from current run")
            continue
        gate.check(name, current[name], base * (1.0 - gate.tolerance),
                   f"baseline {fmt(base)} - {gate.tolerance:.0%}")


def gate_backends(gate, current, baseline):
    for name, bar in GATED_RATIO_BARS.items():
        if name not in current:
            gate.failures.append(f"{name}: missing from current run")
            continue
        floor = bar
        why = f"repo bar {fmt(bar)}"
        base = baseline.get(name)
        if base is not None:
            base_floor = base * (1.0 - gate.tolerance)
            if base_floor > floor:
                floor, why = base_floor, (
                    f"baseline {fmt(base)} - {gate.tolerance:.0%}")
        gate.check(name, current[name], floor, why)

    name = "backends.pool.stealing_over_static"
    if name in current:
        gate.check(name, current[name], 1.0 - gate.tolerance,
                   f"parity - {gate.tolerance:.0%}")
    else:
        gate.failures.append(f"{name}: missing from current run")

    for name in sorted(current):
        if name.endswith(".calls_per_s") and name.startswith("backends."):
            gate.report(name, current[name], baseline.get(name))


def gate_ensemble(gate, current, baseline):
    workers = current.get("ensemble.workers", 4.0)
    hw = current.get("ensemble.hardware_concurrency", 0.0)
    multicore = hw >= workers
    base_multicore = (baseline.get("ensemble.hardware_concurrency", 0.0)
                      >= baseline.get("ensemble.workers", 4.0))

    name = "ensemble.interp.batched_over_sequential"
    if name not in current:
        gate.failures.append(f"{name}: missing from current run")
    else:
        if multicore:
            floor, why = 3.0, f"repo bar 3 (>= {int(workers)} cores)"
        else:
            floor, why = 1.4, f"batching bar ({int(hw)}-core host)"
        base = baseline.get(name)
        # Baseline tightening only transfers between hosts of the same
        # class: a multicore baseline says nothing about a 1-core host.
        if base is not None and multicore == base_multicore:
            base_floor = base * (1.0 - gate.tolerance)
            if base_floor > floor:
                floor, why = base_floor, (
                    f"baseline {fmt(base)} - {gate.tolerance:.0%}")
        gate.check(name, current[name], floor, why)

    # Hybrid lanes (events on): correctness invariants are
    # machine-independent, so they gate exactly. The ensemble must
    # reproduce the sequential per-scenario solves bitwise, and with
    # every drop height bouncing at least once in the window the run
    # must fire at least one event per scenario. Hybrid throughput and
    # the batched/sequential ratio are report-only: event localization
    # serializes bisection work inside each lane, so the ratio is
    # noisier than the smooth-sweep one and carries no repo bar.
    scenarios = current.get("ensemble.hybrid.scenarios", 0.0)
    if scenarios <= 0.0:
        gate.failures.append(
            "ensemble.hybrid.scenarios: missing from current run")
    else:
        gate.check("ensemble.hybrid.bitwise_equal",
                   current.get("ensemble.hybrid.bitwise_equal", 0.0), 1.0,
                   "ensemble == sequential")
        gate.check("ensemble.hybrid.events_fired",
                   current.get("ensemble.hybrid.events_fired", 0.0),
                   scenarios, ">= 1 event per lane")
    name = "ensemble.hybrid.batched_over_sequential"
    if name in current:
        gate.report(name, current[name], baseline.get(name))

    for name in sorted(current):
        if name.endswith(".scen_per_s"):
            gate.report(name, current[name], baseline.get(name))


def gate_sparse(gate, current, baseline):
    sizes = []
    for name in current:
        if name.startswith("sparse.heat.n") and \
                name.endswith(".sparse_over_dense"):
            sizes.append(int(name[len("sparse.heat.n"):-len(
                ".sparse_over_dense")]))
    if not sizes:
        gate.failures.append("sparse.heat.*: no sparse_over_dense gauges")
        return
    sizes.sort()
    largest = int(current.get("sparse.heat.largest_n", sizes[-1]))

    for n in sizes:
        name = f"sparse.heat.n{n}.sparse_over_dense"
        if n <= 16:
            gate.check(name, current[name], 1.0 - gate.tolerance,
                       f"parity - {gate.tolerance:.0%}")
        elif n == largest:
            floor, why = 2.0, "repo bar 2"
            base = baseline.get(name)
            if base is not None:
                base_floor = base * (1.0 - gate.tolerance)
                if base_floor > floor:
                    floor, why = base_floor, (
                        f"baseline {fmt(base)} - {gate.tolerance:.0%}")
            gate.check(name, current[name], floor, why)
        else:
            gate.report(name, current[name], baseline.get(name))

    # Machine-independent structural ceilings at the largest size: the
    # colored FD build must cost colors+1 RHS calls, and the tridiagonal
    # stencil must color with <= 5 colors (distance-2 optimum is 3).
    colors = current.get(f"sparse.heat.n{largest}.colors")
    builds = current.get(f"sparse.heat.n{largest}.jac_build_rhs_calls")
    if colors is None or builds is None:
        gate.failures.append(
            f"sparse.heat.n{largest}: missing colors/jac_build_rhs_calls")
    else:
        gate.check_max(f"sparse.heat.n{largest}.colors", colors, 5.0,
                       "tridiagonal stencil")
        gate.check_max(f"sparse.heat.n{largest}.jac_build_rhs_calls",
                       builds, colors + 1.0, "colors + 1")

    for name in sorted(current):
        if name.startswith("sparse.heat.") and name.endswith("_wall_s"):
            gate.report(name, current[name], baseline.get(name))


def best_batch_ratio(gauges, backend):
    """(best ratio, gauge name) over the swept batch widths, or None."""
    best = None
    prefix = f"simd.{backend}.batch"
    for name, v in gauges.items():
        if name.startswith(prefix) and name.endswith("_over_scalar"):
            if best is None or v > best[0]:
                best = (v, name)
    return best


def gate_simd(gate, current, baseline):
    lanes = current.get("simd.lane_width", 0.0)
    cores = current.get("simd.hardware_concurrency", 0.0)
    native = current.get("simd.native.available", 0.0) >= 1.0
    # Capability class: the 4x bar assumes >= 4 double lanes (AVX), a
    # working native toolchain, and >= 4 cores. The core-count clause is
    # about measurement, not compute: a 1-vCPU shared box steals cycles
    # from the scalar reference window unpredictably, swinging the
    # measured ratio by +-30%, so a strict 4x pin cannot hold there and
    # the bar drops to 2.5x — still impossible without real
    # vectorization, since one thread on one core has no other speedup
    # source. Baselines only tighten the floor when recorded on the
    # same class.
    cls = (lanes >= 4.0, cores >= 4.0, native)
    base_cls = (baseline.get("simd.lane_width", 0.0) >= 4.0,
                baseline.get("simd.hardware_concurrency", 0.0) >= 4.0,
                baseline.get("simd.native.available", 0.0) >= 1.0)

    if native:
        best = best_batch_ratio(current, "native")
        if best is None:
            gate.failures.append(
                "simd.native.batch*_over_scalar: missing from current run")
        else:
            if lanes >= 4.0 and cores >= 4.0:
                floor, why = 4.0, f"repo bar 4 ({int(lanes)} lanes)"
            elif lanes >= 4.0:
                floor, why = 2.5, (
                    f"single-core noise bar ({int(cores)} cores)")
            else:
                floor, why = 1.5, f"narrow-SIMD bar ({int(lanes)} lanes)"
            base = best_batch_ratio(baseline, "native")
            if base is not None and cls == base_cls:
                base_floor = base[0] * (1.0 - gate.tolerance)
                if base_floor > floor:
                    floor, why = base_floor, (
                        f"baseline {fmt(base[0])} - {gate.tolerance:.0%}")
            gate.check(best[1], best[0], floor, why)
    else:
        # No native toolchain: the interpreter still has to show the SoA
        # batching amortization win (same bar the ensemble gate uses).
        best = best_batch_ratio(current, "interp")
        if best is None:
            gate.failures.append(
                "simd.interp.batch*_over_scalar: missing from current run")
        else:
            gate.check(best[1], best[0], 1.4, "interp batching bar")

    gated = best[1] if best is not None else None
    for name in sorted(current):
        if name == gated or not name.startswith("simd."):
            continue
        if name.endswith("_over_scalar") or name.endswith(".evals_per_s"):
            gate.report(name, current[name], baseline.get(name))


def gate_autotune(gate, current, baseline):
    for wl in ("bearing", "heat"):
        name = f"autotune.{wl}.auto_over_best"
        if name not in current:
            gate.failures.append(f"{name}: missing from current run")
            continue
        gate.check_max(name, current[name], 1.10,
                       "within 10% of best")
        gate.check(f"autotune.{wl}.tuned_bitwise_equal",
                   current.get(f"autotune.{wl}.tuned_bitwise_equal", 0.0),
                   1.0, "tuned == untuned")
        # The point of the model is skipping the sweep: surface the cost
        # split, but report-only (both sides are wall clock).
        calib = current.get(f"autotune.{wl}.calibration_seconds")
        sweep = current.get(f"autotune.{wl}.exhaustive_seconds")
        if calib is not None and sweep:
            gate.report(f"autotune.{wl}.calibration_over_exhaustive",
                        calib / sweep, None)
    for name in sorted(current):
        if not name.startswith("autotune."):
            continue
        if (name.endswith("_seconds") or "picked_" in name
                or "best_" in name):
            gate.report(name, current[name], baseline.get(name))


def gate_service(gate, current, baseline):
    jobs_total = current.get("service.jobs_total", 0.0)
    if jobs_total <= 0.0:
        gate.failures.append("service.jobs_total: missing or zero")
        return
    gate.check("service.jobs_ok", current.get("service.jobs_ok", 0.0),
               jobs_total, "every job must succeed")
    gate.check_max("service.dropped_frames",
                   current.get("service.dropped_frames", 0.0), 0.0,
                   "zero dropped frames")
    # Closed-loop non-saturating load: a fat tail is head-of-line
    # blocking in the daemon, not queueing under overload.
    gate.check_max("service.p99_over_p50",
                   current.get("service.p99_over_p50", 0.0), 10.0,
                   "p99 <= 10x p50")
    for name in ("service.p50_ms", "service.p99_ms", "service.jobs_per_s",
                 "service.retries", "service.wall_seconds"):
        if name in current:
            gate.report(name, current[name], baseline.get(name))


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--current", required=True,
                    help="directory containing the fresh BENCH_*.json")
    ap.add_argument("--baseline", default="bench/baselines",
                    help="directory with the checked-in baselines")
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="allowed fractional regression (default 0.15)")
    ap.add_argument("--only",
                    help="gate a single suite by short name (e.g. "
                         "'service' for BENCH_service.json) instead of "
                         "the default bench set")
    args = ap.parse_args()

    # BENCH_service.json comes from the dedicated CI service job
    # (bench/loadgen against a live omxd), not the default bench
    # binaries, so it only gates under --only service.
    suites = (("BENCH_fig12.json", gate_fig12),
              ("BENCH_backends.json", gate_backends),
              ("BENCH_ensemble.json", gate_ensemble),
              ("BENCH_sparse.json", gate_sparse),
              ("BENCH_simd.json", gate_simd),
              ("BENCH_autotune.json", gate_autotune),
              ("BENCH_service.json", gate_service))
    if args.only:
        suites = tuple(s for s in suites
                       if s[0] == f"BENCH_{args.only}.json")
        if not suites:
            print(f"bench_gate: unknown suite --only {args.only}",
                  file=sys.stderr)
            return 2
    else:
        suites = tuple(s for s in suites if s[0] != "BENCH_service.json")

    gate = Gate(args.tolerance)
    missing = []
    for fname, fn in suites:
        cur_path = os.path.join(args.current, fname)
        base_path = os.path.join(args.baseline, fname)
        if not os.path.exists(cur_path):
            missing.append(cur_path)
            continue
        if not os.path.exists(base_path):
            missing.append(base_path)
            continue
        cur, base = load_metrics(cur_path), load_metrics(base_path)
        fn(gate, cur.get("gauges", {}), base.get("gauges", {}))
        report_histograms(gate, fname.removeprefix("BENCH_")
                          .removesuffix(".json"), cur, base)

    if missing:
        for m in missing:
            print(f"bench_gate: missing {m}", file=sys.stderr)
        return 2

    width = max(len(r[0]) for r in gate.rows) if gate.rows else 10
    print(f"{'metric':<{width}}  {'current':>10}  {'floor/base':>10}  "
          f"{'rule':<22}  verdict")
    for name, cur, floor, why, verdict in gate.rows:
        print(f"{name:<{width}}  {cur:>10}  {floor:>10}  {why:<22}  "
              f"{verdict}")

    if gate.failures:
        print(f"\nbench_gate: {len(gate.failures)} regression(s):",
              file=sys.stderr)
        for f in gate.failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\nbench_gate: all gates pass (tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
