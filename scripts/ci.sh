#!/usr/bin/env bash
# CI entry point: configure with warnings-as-errors, build, run the tier-1
# test suite, then run it once more with observability (metrics + tracing)
# force-enabled to catch instrumentation regressions that only fire when a
# trace is being recorded. The default path finishes with the benchmark
# regression gate (scripts/bench_gate.py against bench/baselines/).
#
# Usage: scripts/ci.sh [--sanitize|--tsan|--coverage] [build-dir]
#   default build-dir: build-ci (build-asan with --sanitize,
#                                build-tsan with --tsan,
#                                build-cov with --coverage)
# With --sanitize the tree is built with -DOMX_SANITIZE=ON
# (AddressSanitizer + UndefinedBehaviorSanitizer) and the tier-1 suite
# runs once under halt-on-error sanitizer settings.
# With --tsan the tree is built with -DOMX_SANITIZE=THREAD and the tier-1
# suite runs under halt-on-error ThreadSanitizer, plus one extra pass of
# the runtime stress suite with work stealing + tracing forced on (the
# highest-contention configuration the runtime supports).
# With --coverage the tree is built with gcov instrumentation, the tier-1
# suite runs once, and scripts/coverage_report.py writes a line-coverage
# summary to <build-dir>/coverage.txt. Report-only: low coverage does not
# fail the job, only missing coverage data does.
set -euo pipefail

cd "$(dirname "$0")/.."

MODE=default
case "${1:-}" in
  --sanitize) MODE=asan; shift ;;
  --tsan)     MODE=tsan; shift ;;
  --coverage) MODE=coverage; shift ;;
esac
case "$MODE" in
  asan)     DEFAULT_DIR=build-asan ;;
  tsan)     DEFAULT_DIR=build-tsan ;;
  coverage) DEFAULT_DIR=build-cov ;;
  *)        DEFAULT_DIR=build-ci ;;
esac
BUILD_DIR="${1:-$DEFAULT_DIR}"

CMAKE_ARGS=(-DCMAKE_BUILD_TYPE=RelWithDebInfo -DCMAKE_CXX_FLAGS=-Werror)
if command -v ccache >/dev/null 2>&1; then
  CMAKE_ARGS+=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi
case "$MODE" in
  asan) CMAKE_ARGS+=(-DOMX_SANITIZE=ON) ;;
  tsan) CMAKE_ARGS+=(-DOMX_SANITIZE=THREAD) ;;
  coverage)
    # -O0 keeps line attribution exact; the later -D overrides the
    # defaults set above.
    CMAKE_ARGS+=(-DCMAKE_BUILD_TYPE=Debug
                 "-DCMAKE_CXX_FLAGS=-Werror --coverage -O0")
    ;;
esac

cmake -B "$BUILD_DIR" -S . "${CMAKE_ARGS[@]}"
cmake --build "$BUILD_DIR" -j

if [[ $MODE == asan ]]; then
  echo "== tier-1 tests (ASan + UBSan, halt on error) =="
  ASAN_OPTIONS=halt_on_error=1:detect_leaks=1 \
  UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
    ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
  echo "CI OK (sanitized)"
  exit 0
fi

if [[ $MODE == tsan ]]; then
  export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1"
  echo "== tier-1 tests (ThreadSanitizer, halt on error) =="
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

  echo "== runtime stress (TSan + stealing + tracing forced on) =="
  OMX_POOL_STEALING=1 OMX_OBS_ENABLED=1 OMX_OBS_TRACE=1 \
    ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" \
      -R 'RuntimeStress|WorkerPool|ParallelRhs|ParallelColoredFd'
  echo "CI OK (TSan)"
  exit 0
fi

if [[ $MODE == coverage ]]; then
  echo "== tier-1 tests (gcov instrumented) =="
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

  echo "== line-coverage summary (report-only) =="
  python3 scripts/coverage_report.py "$BUILD_DIR" \
    --out "$BUILD_DIR"/coverage.txt
  echo "CI OK (coverage)"
  exit 0
fi

echo "== tier-1 tests (default observability) =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo "== tier-1 tests (observability forced on: metrics + tracing) =="
OMX_OBS_ENABLED=1 OMX_OBS_TRACE=1 \
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo "== smoke: trace_explorer writes valid observability artifacts =="
# The binary validates every JSON artifact with obs::validate_json before
# writing and exits nonzero on a malformed document, so this step is the
# trace/profile/recorder schema check. --sample-hz forces the worker
# utilization counter tracks into the Chrome trace; OMX_OBS_RECORDER
# arms the flight recorder for the stiff solve.
OMX_OBS_RECORDER=1 "$BUILD_DIR"/examples/trace_explorer \
  --model bearing2d --workers 4 --sample-hz 2000 \
  --out "$BUILD_DIR"/trace.json \
  --profile "$BUILD_DIR"/profile.json \
  --recorder "$BUILD_DIR"/recorder.json \
  --metrics "$BUILD_DIR"/metrics.json
test -s "$BUILD_DIR"/trace.json
test -s "$BUILD_DIR"/profile.json
test -s "$BUILD_DIR"/recorder.json
test -s "$BUILD_DIR"/metrics.json

echo "== smoke: obs_report renders the run report =="
python3 scripts/obs_report.py \
  --profile "$BUILD_DIR"/profile.json \
  --metrics "$BUILD_DIR"/metrics.json \
  --recorder "$BUILD_DIR"/recorder.json \
  | tee "$BUILD_DIR"/obs_report.txt
test -s "$BUILD_DIR"/obs_report.txt

echo "== smoke: backend shootout exports BENCH_backends.json =="
(cd "$BUILD_DIR" && ./bench/backends)
test -s "$BUILD_DIR"/BENCH_backends.json

echo "== bench: ensemble sweep =="
(cd "$BUILD_DIR" && ./bench/ensemble)
test -s "$BUILD_DIR"/BENCH_ensemble.json

echo "== bench: Figure 12 virtual-time series =="
(cd "$BUILD_DIR" && ./bench/fig12_speedup)
test -s "$BUILD_DIR"/BENCH_fig12.json

echo "== bench: partitioned solver + sparse stiff backend =="
(cd "$BUILD_DIR" && ./bench/partitioned_solver)
test -s "$BUILD_DIR"/BENCH_sparse.json

echo "== bench: SIMD lane throughput =="
(cd "$BUILD_DIR" && ./bench/simd)
test -s "$BUILD_DIR"/BENCH_simd.json

echo "== bench regression gate =="
python3 scripts/bench_gate.py --current "$BUILD_DIR"

echo "CI OK"
