#!/usr/bin/env bash
# CI entry point: configure with warnings-as-errors, build, run the tier-1
# test suite, then run it once more with observability (metrics + tracing)
# force-enabled to catch instrumentation regressions that only fire when a
# trace is being recorded. The default path finishes with the benchmark
# regression gate (scripts/bench_gate.py against bench/baselines/).
#
# Usage: scripts/ci.sh [--sanitize|--tsan|--coverage|--service] [build-dir]
#   default build-dir: build-ci (build-asan with --sanitize,
#                                build-tsan with --tsan,
#                                build-cov with --coverage,
#                                build-svc with --service)
# With --sanitize the tree is built with -DOMX_SANITIZE=ON
# (AddressSanitizer + UndefinedBehaviorSanitizer) and the tier-1 suite
# runs once under halt-on-error sanitizer settings.
# With --tsan the tree is built with -DOMX_SANITIZE=THREAD and the tier-1
# suite runs under halt-on-error ThreadSanitizer, plus one extra pass of
# the runtime stress suite with work stealing + tracing forced on (the
# highest-contention configuration the runtime supports).
# With --coverage the tree is built with gcov instrumentation, the tier-1
# suite runs once, and scripts/coverage_report.py writes a line-coverage
# summary to <build-dir>/coverage.txt. Report-only: low coverage does not
# fail the job, only missing coverage data does.
# With --service the tree is built, a real omxd daemon is booted on an
# ephemeral port, bench/loadgen drives it twice (8 clients x 32 bearing
# jobs over TCP, then a 4-client --autotune pass that exercises
# daemon-side config selection), and the resulting BENCH_service.json
# files are gated with scripts/bench_gate.py --only service. The
# daemon's shutdown artifacts (metrics, per-session service report,
# fitted cost model) stay in the build dir for the CI upload step.
set -euo pipefail

cd "$(dirname "$0")/.."

MODE=default
case "${1:-}" in
  --sanitize) MODE=asan; shift ;;
  --tsan)     MODE=tsan; shift ;;
  --coverage) MODE=coverage; shift ;;
  --service)  MODE=service; shift ;;
esac
case "$MODE" in
  asan)     DEFAULT_DIR=build-asan ;;
  tsan)     DEFAULT_DIR=build-tsan ;;
  coverage) DEFAULT_DIR=build-cov ;;
  service)  DEFAULT_DIR=build-svc ;;
  *)        DEFAULT_DIR=build-ci ;;
esac
BUILD_DIR="${1:-$DEFAULT_DIR}"

CMAKE_ARGS=(-DCMAKE_BUILD_TYPE=RelWithDebInfo -DCMAKE_CXX_FLAGS=-Werror)
if command -v ccache >/dev/null 2>&1; then
  CMAKE_ARGS+=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi
case "$MODE" in
  asan) CMAKE_ARGS+=(-DOMX_SANITIZE=ON) ;;
  tsan) CMAKE_ARGS+=(-DOMX_SANITIZE=THREAD) ;;
  coverage)
    # -O0 keeps line attribution exact; the later -D overrides the
    # defaults set above.
    CMAKE_ARGS+=(-DCMAKE_BUILD_TYPE=Debug
                 "-DCMAKE_CXX_FLAGS=-Werror --coverage -O0")
    ;;
esac

# Resolved-configuration header: the first thing every job log shows, so
# a matrix entry that picked up the wrong compiler or a cold ccache is
# visible at a glance instead of buried in cmake output.
echo "== ci config =="
echo "mode:       $MODE"
echo "build dir:  $BUILD_DIR"
echo "compiler:   ${CXX:-<default>} ($({ ${CXX:-c++} --version 2>/dev/null || echo 'not found'; } | head -n1))"
case "$MODE" in
  asan) echo "sanitizer:  address+undefined" ;;
  tsan) echo "sanitizer:  thread" ;;
  *)    echo "sanitizer:  none" ;;
esac
if command -v ccache >/dev/null 2>&1; then
  echo "ccache:     $(ccache -s 2>/dev/null | grep -iE 'hit rate|hits' | head -n1 | sed 's/^ *//' || echo 'stats unavailable')"
else
  echo "ccache:     not installed"
fi

# Fail fast with an actionable message when configure dies (missing
# compiler, broken toolchain probe) instead of letting the build step
# fail later with a confusing "no such file" on the build dir.
if ! cmake -B "$BUILD_DIR" -S . "${CMAKE_ARGS[@]}"; then
  echo "ci: cmake configure failed for mode=$MODE in $BUILD_DIR." >&2
  echo "ci: check the compiler probe above — CXX=${CXX:-<default>};" >&2
  echo "ci: see $BUILD_DIR/CMakeFiles/CMakeError.log for the probe log." >&2
  exit 1
fi
cmake --build "$BUILD_DIR" -j

if [[ $MODE == asan ]]; then
  echo "== tier-1 tests (ASan + UBSan, halt on error) =="
  ASAN_OPTIONS=halt_on_error=1:detect_leaks=1 \
  UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
    ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
  echo "CI OK (sanitized)"
  exit 0
fi

if [[ $MODE == tsan ]]; then
  export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1"
  echo "== tier-1 tests (ThreadSanitizer, halt on error) =="
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

  echo "== runtime stress (TSan + stealing + tracing forced on) =="
  # Svc covers the service daemon suite, including the 8-thread
  # concurrent SUBMIT/CANCEL stress against a live in-process server.
  # Event|Hybrid covers the event-handling suites, including the
  # HybridEnsembleStress run where event-desynchronized lanes retire
  # out of order while workers steal and repack batches. Tune covers
  # the auto-tuner suites, including the concurrent record/pick stress
  # against the shared AutoTuner singleton.
  OMX_POOL_STEALING=1 OMX_OBS_ENABLED=1 OMX_OBS_TRACE=1 \
    ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" \
      -R 'RuntimeStress|WorkerPool|ParallelRhs|ParallelColoredFd|Svc|Event|Hybrid|Tune'
  echo "CI OK (TSan)"
  exit 0
fi

if [[ $MODE == coverage ]]; then
  echo "== tier-1 tests (gcov instrumented) =="
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

  echo "== line-coverage summary (report-only) =="
  python3 scripts/coverage_report.py "$BUILD_DIR" \
    --out "$BUILD_DIR"/coverage.txt
  echo "CI OK (coverage)"
  exit 0
fi

if [[ $MODE == service ]]; then
  echo "== service: boot omxd on an ephemeral port =="
  OMXD_LOG="$BUILD_DIR/omxd.log"
  "$BUILD_DIR"/src/omxd --port 0 --executors 2 --queue-cap 8 \
    --metrics "$BUILD_DIR"/svc_metrics.json \
    --service-json "$BUILD_DIR"/svc_service.json \
    --tune-json "$BUILD_DIR"/svc_tune.json \
    >"$OMXD_LOG" 2>&1 &
  OMXD_PID=$!
  trap 'kill "$OMXD_PID" 2>/dev/null || true' EXIT
  PORT=""
  for _ in $(seq 1 50); do
    PORT="$(sed -n 's/^omxd listening on \([0-9]*\)$/\1/p' "$OMXD_LOG")"
    [[ -n $PORT ]] && break
    kill -0 "$OMXD_PID" 2>/dev/null || { cat "$OMXD_LOG" >&2; exit 1; }
    sleep 0.1
  done
  if [[ -z $PORT ]]; then
    echo "ci: omxd never reported its port; log follows" >&2
    cat "$OMXD_LOG" >&2
    exit 1
  fi
  echo "omxd pid $OMXD_PID port $PORT"

  echo "== service: loadgen smoke (8 clients x 32 bearing jobs) =="
  (cd "$BUILD_DIR" && ./bench/loadgen --connect 127.0.0.1:"$PORT" \
    --clients 8 --scenarios 32)
  test -s "$BUILD_DIR"/BENCH_service.json

  echo "== service: loadgen autotune (daemon-side config selection) =="
  # Exercises the SUBMIT autotune flag: early jobs calibrate the daemon's
  # cost model with client-cycled configs, later jobs run on model picks.
  # loadgen itself exits nonzero unless jobs_ok == jobs_total and no
  # trajectory frames were dropped.
  mkdir -p "$BUILD_DIR"/autotune-svc
  (cd "$BUILD_DIR"/autotune-svc && ../bench/loadgen \
    --connect 127.0.0.1:"$PORT" --clients 4 --scenarios 16 --autotune)
  test -s "$BUILD_DIR"/autotune-svc/BENCH_service.json

  echo "== service: graceful daemon shutdown writes artifacts =="
  kill -TERM "$OMXD_PID"
  wait "$OMXD_PID"
  trap - EXIT
  cat "$OMXD_LOG"
  test -s "$BUILD_DIR"/svc_metrics.json
  test -s "$BUILD_DIR"/svc_service.json
  # The autotune loadgen pass raised the daemon's tune mode, so the
  # shutdown dump must contain the fitted cost model.
  test -s "$BUILD_DIR"/svc_tune.json

  echo "== service: per-session report =="
  python3 scripts/obs_report.py --service "$BUILD_DIR"/svc_service.json \
    | tee "$BUILD_DIR"/svc_report.txt
  test -s "$BUILD_DIR"/svc_report.txt

  echo "== service: bench gate =="
  python3 scripts/bench_gate.py --current "$BUILD_DIR" --only service
  python3 scripts/bench_gate.py --current "$BUILD_DIR"/autotune-svc \
    --only service
  echo "CI OK (service)"
  exit 0
fi

echo "== tier-1 tests (default observability) =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo "== tier-1 tests (observability forced on: metrics + tracing) =="
OMX_OBS_ENABLED=1 OMX_OBS_TRACE=1 \
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo "== smoke: trace_explorer writes valid observability artifacts =="
# The binary validates every JSON artifact with obs::validate_json before
# writing and exits nonzero on a malformed document, so this step is the
# trace/profile/recorder schema check. --sample-hz forces the worker
# utilization counter tracks into the Chrome trace; OMX_OBS_RECORDER
# arms the flight recorder for the stiff solve.
OMX_OBS_RECORDER=1 "$BUILD_DIR"/examples/trace_explorer \
  --model bearing2d --workers 4 --sample-hz 2000 \
  --out "$BUILD_DIR"/trace.json \
  --profile "$BUILD_DIR"/profile.json \
  --recorder "$BUILD_DIR"/recorder.json \
  --metrics "$BUILD_DIR"/metrics.json
test -s "$BUILD_DIR"/trace.json
test -s "$BUILD_DIR"/profile.json
test -s "$BUILD_DIR"/recorder.json
test -s "$BUILD_DIR"/metrics.json

echo "== smoke: obs_report renders the run report =="
python3 scripts/obs_report.py \
  --profile "$BUILD_DIR"/profile.json \
  --metrics "$BUILD_DIR"/metrics.json \
  --recorder "$BUILD_DIR"/recorder.json \
  | tee "$BUILD_DIR"/obs_report.txt
test -s "$BUILD_DIR"/obs_report.txt

echo "== smoke: backend shootout exports BENCH_backends.json =="
(cd "$BUILD_DIR" && ./bench/backends)
test -s "$BUILD_DIR"/BENCH_backends.json

echo "== bench: ensemble sweep =="
(cd "$BUILD_DIR" && ./bench/ensemble)
test -s "$BUILD_DIR"/BENCH_ensemble.json

echo "== bench: Figure 12 virtual-time series =="
(cd "$BUILD_DIR" && ./bench/fig12_speedup)
test -s "$BUILD_DIR"/BENCH_fig12.json

echo "== bench: partitioned solver + sparse stiff backend =="
(cd "$BUILD_DIR" && ./bench/partitioned_solver)
test -s "$BUILD_DIR"/BENCH_sparse.json

echo "== bench: SIMD lane throughput =="
(cd "$BUILD_DIR" && ./bench/simd)
test -s "$BUILD_DIR"/BENCH_simd.json

echo "== bench: performance-model auto-tuning =="
(cd "$BUILD_DIR" && ./bench/autotune)
test -s "$BUILD_DIR"/BENCH_autotune.json
test -s "$BUILD_DIR"/BENCH_autotune_model.json
python3 scripts/obs_report.py --tune "$BUILD_DIR"/BENCH_autotune_model.json \
  | tee "$BUILD_DIR"/tune_report.txt
test -s "$BUILD_DIR"/tune_report.txt

echo "== bench regression gate =="
python3 scripts/bench_gate.py --current "$BUILD_DIR"

echo "CI OK"
