#!/usr/bin/env bash
# CI entry point: configure with warnings-as-errors, build, run the tier-1
# test suite, then run it once more with observability (metrics + tracing)
# force-enabled to catch instrumentation regressions that only fire when a
# trace is being recorded.
#
# Usage: scripts/ci.sh [--sanitize] [build-dir]
#   default build-dir: build-ci (build-asan with --sanitize)
# With --sanitize the tree is built with -DOMX_SANITIZE=ON
# (AddressSanitizer + UndefinedBehaviorSanitizer) and the tier-1 suite
# runs once under halt-on-error sanitizer settings.
set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZE=0
if [[ "${1:-}" == "--sanitize" ]]; then
  SANITIZE=1
  shift
fi
BUILD_DIR="${1:-$([[ $SANITIZE == 1 ]] && echo build-asan || echo build-ci)}"

CMAKE_ARGS=(-DCMAKE_BUILD_TYPE=RelWithDebInfo -DCMAKE_CXX_FLAGS=-Werror)
if [[ $SANITIZE == 1 ]]; then
  CMAKE_ARGS+=(-DOMX_SANITIZE=ON)
fi

cmake -B "$BUILD_DIR" -S . "${CMAKE_ARGS[@]}"
cmake --build "$BUILD_DIR" -j

if [[ $SANITIZE == 1 ]]; then
  echo "== tier-1 tests (ASan + UBSan, halt on error) =="
  ASAN_OPTIONS=halt_on_error=1:detect_leaks=1 \
  UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
    ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
  echo "CI OK (sanitized)"
  exit 0
fi

echo "== tier-1 tests (default observability) =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo "== tier-1 tests (observability forced on: metrics + tracing) =="
OMX_OBS_ENABLED=1 OMX_OBS_TRACE=1 \
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo "== smoke: trace_explorer writes a valid Chrome trace =="
"$BUILD_DIR"/examples/trace_explorer --model bearing2d --workers 4 \
  --out "$BUILD_DIR"/trace.json
test -s "$BUILD_DIR"/trace.json

echo "== smoke: backend shootout exports BENCH_backends.json =="
(cd "$BUILD_DIR" && ./bench/backends)
test -s "$BUILD_DIR"/BENCH_backends.json

echo "CI OK"
