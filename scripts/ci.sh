#!/usr/bin/env bash
# CI entry point: configure with warnings-as-errors, build, run the tier-1
# test suite, then run it once more with observability (metrics + tracing)
# force-enabled to catch instrumentation regressions that only fire when a
# trace is being recorded.
#
# Usage: scripts/ci.sh [build-dir]   (default: build-ci)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-ci}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS=-Werror
cmake --build "$BUILD_DIR" -j

echo "== tier-1 tests (default observability) =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo "== tier-1 tests (observability forced on: metrics + tracing) =="
OMX_OBS_ENABLED=1 OMX_OBS_TRACE=1 \
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo "== smoke: trace_explorer writes a valid Chrome trace =="
"$BUILD_DIR"/examples/trace_explorer --model bearing2d --workers 4 \
  --out "$BUILD_DIR"/trace.json
test -s "$BUILD_DIR"/trace.json

echo "CI OK"
