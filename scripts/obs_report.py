#!/usr/bin/env python3
"""Render a human-readable run report from the observability artifacts.

Consumes any subset of the three JSON files trace_explorer (or any other
omx binary using the obs exporters) writes:

* --profile profile.json   (obs::profile_json)  -> hierarchical span
  profile: call count, total/self time, p50/p90/p99 per span name.
* --metrics metrics.json   (obs::metrics_json)  -> counters, gauges, and
  a percentile table for every duration histogram.
* --recorder recorder.json (obs::recorder_json) -> flight-recorder
  summary (event counts by kind, rejection rate, Jacobian reuse rate)
  and an ASCII step-size/order timeline of the solver run.
* --service service.json   (svc::Server::service_json, written by omxd
  on shutdown) -> daemon summary (sessions, rejects, cancellations),
  a per-session table, and an ASCII queue-depth timeline.
* --tune tune.json         (tune::AutoTuner::model_json, written by
  omxd --tune-json or OMX_TUNE_EXPORT) -> fitted cost-model
  coefficients per problem size and a predicted-vs-measured makespan
  residual table.

Stdlib only. Exit status: 0 on success, 2 when no input could be read.

Usage: scripts/obs_report.py [--profile P] [--metrics M] [--recorder R]
                             [--service S] [--tune T]
                             [--timeline-width 72] [--timeline-rows 12]
"""

import argparse
import json
import math
import sys


def load(path, what):
    if not path:
        return None
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"obs_report: cannot read {what} {path}: {e}",
              file=sys.stderr)
        return None


def fmt_ms(ns):
    return f"{ns / 1e6:.3f}"


def fmt_s(seconds):
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3f}ms"
    return f"{seconds * 1e6:.3f}us"


def render_profile(prof):
    print("== span profile ==")
    nodes = prof.get("nodes", [])
    if not nodes:
        print("(no spans recorded)")
        return
    print(f"{'span':<40} {'count':>8} {'total_ms':>10} {'self_ms':>10} "
          f"{'p50_ms':>9} {'p90_ms':>9} {'p99_ms':>9}")
    for n in nodes:
        label = "  " * n["depth"] + n["name"]
        print(f"{label[:40]:<40} {n['count']:>8} "
              f"{fmt_ms(n['total_ns']):>10} {fmt_ms(n['self_ns']):>10} "
              f"{fmt_ms(n['p50_ns']):>9} {fmt_ms(n['p90_ns']):>9} "
              f"{fmt_ms(n['p99_ns']):>9}")
    print(f"wall: {fmt_ms(prof.get('wall_ns', 0))} ms")


def render_metrics(metrics):
    print("== counters ==")
    for name, v in sorted(metrics.get("counters", {}).items()):
        print(f"  {name:<32} {v}")
    gauges = metrics.get("gauges", {})
    if gauges:
        print("== gauges ==")
        for name, v in sorted(gauges.items()):
            print(f"  {name:<32} {v:g}")
    hists = {n: h for n, h in sorted(metrics.get("histograms", {}).items())
             if h.get("count")}
    if hists:
        print("== histogram percentiles ==")
        print(f"  {'histogram':<32} {'count':>8} {'p50':>12} {'p90':>12} "
              f"{'p99':>12} {'mean':>12}")
        for name, h in hists.items():
            mean = h["sum"] / h["count"]
            print(f"  {name:<32} {h['count']:>8} {fmt_s(h['p50']):>12} "
                  f"{fmt_s(h['p90']):>12} {fmt_s(h['p99']):>12} "
                  f"{fmt_s(mean):>12}")


def render_timeline(steps, width, rows):
    """ASCII chart of step size h (log scale) over solver time t, one
    column per time slice; the glyph is the solver order at that point,
    'x' marks a slice containing at least one rejection."""
    accepted = [e for e in steps if e["kind"] == "step_accepted"]
    if len(accepted) < 2:
        print("(not enough accepted steps for a timeline)")
        return
    t0, t1 = accepted[0]["t"], accepted[-1]["t"]
    if t1 <= t0:
        print("(degenerate time range)")
        return
    # Bucket events into columns by solver time.
    cols = [[] for _ in range(width)]
    rejected_col = [False] * width
    for e in steps:
        if e["kind"] not in ("step_accepted", "step_rejected"):
            continue
        c = min(width - 1,
                int((e["t"] - t0) / (t1 - t0) * width))
        if e["kind"] == "step_accepted":
            cols[c].append(e)
        else:
            rejected_col[c] = True
    hs = [e["h"] for e in accepted if e["h"] > 0]
    lo, hi = math.log10(min(hs)), math.log10(max(hs))
    if hi <= lo:
        hi = lo + 1.0
    grid = [[" "] * width for _ in range(rows)]
    for c, bucket in enumerate(cols):
        if not bucket:
            continue
        h = max(e["h"] for e in bucket)
        order = max(e["order"] for e in bucket)
        r = int((math.log10(h) - lo) / (hi - lo) * (rows - 1))
        r = max(0, min(rows - 1, r))
        glyph = "x" if rejected_col[c] else str(min(order, 9))
        grid[rows - 1 - r][c] = glyph

    print("== step-size timeline ==  (glyph = order, x = rejection, "
          "y = log10 step size)")
    for i, row in enumerate(grid):
        edge = hi - (hi - lo) * i / (rows - 1)
        print(f"  1e{edge:+06.2f} |{''.join(row)}|")
    print(f"  {'':>9} t = {t0:g} .. {t1:g}")


def render_recorder(rec, width, rows):
    events = rec.get("events", [])
    print("== flight recorder ==")
    print(f"  events: {len(events)}   dropped: {rec.get('dropped', 0)}   "
          f"ring capacity/thread: {rec.get('capacity_per_thread', 0)}")
    if not events:
        return
    by_kind = {}
    for e in events:
        by_kind[e["kind"]] = by_kind.get(e["kind"], 0) + 1
    for kind, n in sorted(by_kind.items(), key=lambda kv: -kv[1]):
        print(f"  {kind:<20} {n}")
    acc = by_kind.get("step_accepted", 0)
    rej = by_kind.get("step_rejected", 0)
    if acc + rej:
        print(f"  rejection rate: {100.0 * rej / (acc + rej):.1f}%")
    evals = by_kind.get("jac_evaluate", 0)
    reuse = by_kind.get("jac_reuse", 0)
    if evals + reuse:
        print(f"  jacobian reuse rate: "
              f"{100.0 * reuse / (evals + reuse):.1f}%")
    switches = [e for e in events if e["kind"] == "method_switch"]
    for s in switches:
        print(f"  method switch -> {s['method']} at t={s['t']:g}")
    render_timeline(events, width, rows)


def render_queue_timeline(timeline, width):
    """ASCII sparkline of queued-job depth over daemon uptime. The
    timeline is [[t_seconds, depth], ...] sampled by the event loop;
    each column shows the max depth seen in its time slice."""
    if len(timeline) < 2:
        print("  (no queue depth samples)")
        return
    t0, t1 = timeline[0][0], timeline[-1][0]
    if t1 <= t0:
        print("  (degenerate time range)")
        return
    cols = [0] * width
    for t, depth in timeline:
        c = min(width - 1, int((t - t0) / (t1 - t0) * width))
        cols[c] = max(cols[c], int(depth))
    peak = max(cols)
    glyphs = " .:-=+*#%@"
    line = "".join(
        glyphs[min(len(glyphs) - 1,
                   (d * (len(glyphs) - 1) + peak - 1) // peak if peak else 0)]
        for d in cols)
    print(f"  depth 0..{peak} |{line}|")
    print(f"  {'':>11} t = {t0:.2f}s .. {t1:.2f}s "
          f"({len(timeline)} samples)")


def render_service(svc, width):
    summary = svc.get("summary", {})
    print("== service summary ==")
    for key in ("sessions", "jobs_submitted", "jobs_done",
                "jobs_cancelled", "rejects", "frames", "bytes_sent"):
        print(f"  {key:<16} {summary.get(key, 0)}")
    submitted = summary.get("jobs_submitted", 0)
    if submitted:
        rejects = summary.get("rejects", 0)
        cancelled = summary.get("jobs_cancelled", 0)
        print(f"  reject rate:     "
              f"{100.0 * rejects / (submitted + rejects):.1f}%")
        print(f"  cancel rate:     {100.0 * cancelled / submitted:.1f}%")

    sessions = svc.get("sessions", [])
    if sessions:
        print("== sessions ==")
        print(f"  {'session':>7} {'open':>5} {'dur_s':>8} {'submit':>7} "
              f"{'done':>6} {'cancel':>7} {'reject':>7} {'frames':>7} "
              f"{'bytes':>10}")
        for s in sessions:
            print(f"  {s.get('session', 0):>7} "
                  f"{'yes' if s.get('open') else 'no':>5} "
                  f"{s.get('duration_s', 0.0):>8.2f} "
                  f"{s.get('jobs_submitted', 0):>7} "
                  f"{s.get('jobs_done', 0):>6} "
                  f"{s.get('jobs_cancelled', 0):>7} "
                  f"{s.get('rejects', 0):>7} "
                  f"{s.get('frames', 0):>7} "
                  f"{s.get('bytes_sent', 0):>10}")

    print("== queue depth timeline ==")
    render_queue_timeline(svc.get("queue_depth_timeline", []), width)


def render_fit(label, fit):
    terms = fit.get("terms", [])
    coef = fit.get("coef", [])
    parts = []
    for t, c in zip(terms, coef):
        parts.append(f"{c:.3e}*{t}" if c is not None else f"null*{t}")
    formula = " + ".join(parts) if parts else "(unfitted)"
    r2 = fit.get("r2")
    r2_txt = f"{r2:.4f}" if isinstance(r2, (int, float)) else "n/a"
    flag = "  DEGENERATE" if fit.get("degenerate") else ""
    print(f"  {label:<12} seconds ~ {formula}")
    print(f"  {'':<12} samples={fit.get('samples', 0)} r2={r2_txt}{flag}")


def render_residuals(rows, key_cols):
    """Predicted-vs-measured table; key_cols maps header -> field name."""
    if not rows:
        print("  (no observations)")
        return
    headers = list(key_cols) + ["measured", "predicted", "rel_err"]
    print("  " + " ".join(f"{h:>10}" for h in headers))
    for r in rows:
        cells = [str(r.get(f, "")) for f in key_cols.values()]
        meas, pred = r.get("measured"), r.get("predicted")
        cells.append(fmt_s(meas) if meas is not None else "n/a")
        cells.append(fmt_s(pred) if pred is not None else "n/a")
        if meas and pred is not None:
            cells.append(f"{100.0 * (pred - meas) / meas:+.1f}%")
        else:
            cells.append("n/a")
        print("  " + " ".join(f"{c:>10}" for c in cells))


def render_tune(tune):
    print("== auto-tuner cost models ==")
    print(f"  mode: {tune.get('mode', '?')}   "
          f"drift threshold: {tune.get('drift_threshold', '?')}")
    counters = tune.get("counters", {})
    if counters:
        print("  " + "   ".join(f"{k}: {v}"
                                for k, v in sorted(counters.items())))
    for m in tune.get("ensemble", []):
        print(f"== ensemble model (n={m.get('problem_n')}) ==")
        print(f"  ready: {'yes' if m.get('ready') else 'no'}   "
              f"hw_threads: {m.get('hw_threads')}   "
              f"evals/scenario: {m.get('evals_per_scenario', 0):.1f}")
        render_fit("fit:", m.get("fit", {}))
        render_residuals(m.get("residuals", []),
                         {"scenarios": "scenarios", "workers": "workers",
                          "batch": "batch"})
    for m in tune.get("stiff", []):
        print(f"== stiff model (n={m.get('problem_n')}) ==")
        render_fit("dense:", m.get("dense_fit", {}))
        render_fit("sparse:", m.get("sparse_fit", {}))
        render_residuals(m.get("residuals", []),
                         {"sparse": "sparse", "threads": "jac_threads"})
    if not tune.get("ensemble") and not tune.get("stiff"):
        print("  (no models recorded)")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--profile", help="profile.json from obs::profile_json")
    ap.add_argument("--metrics", help="metrics.json from obs::metrics_json")
    ap.add_argument("--recorder",
                    help="recorder.json from obs::recorder_json")
    ap.add_argument("--service",
                    help="service.json written by omxd on shutdown")
    ap.add_argument("--tune",
                    help="tune.json from tune::AutoTuner::model_json")
    ap.add_argument("--timeline-width", type=int, default=72)
    ap.add_argument("--timeline-rows", type=int, default=12)
    args = ap.parse_args()

    prof = load(args.profile, "profile")
    metrics = load(args.metrics, "metrics")
    rec = load(args.recorder, "recorder")
    svc = load(args.service, "service")
    tune = load(args.tune, "tune")
    if (prof is None and metrics is None and rec is None and svc is None
            and tune is None):
        print("obs_report: nothing to report "
              "(pass --profile/--metrics/--recorder/--service/--tune)",
              file=sys.stderr)
        return 2

    sections = []
    if prof is not None:
        sections.append(lambda: render_profile(prof))
    if metrics is not None:
        sections.append(lambda: render_metrics(metrics))
    if rec is not None:
        sections.append(lambda: render_recorder(
            rec, args.timeline_width, args.timeline_rows))
    if svc is not None:
        sections.append(lambda: render_service(svc, args.timeline_width))
    if tune is not None:
        sections.append(lambda: render_tune(tune))
    for i, section in enumerate(sections):
        if i:
            print()
        section()
    return 0


if __name__ == "__main__":
    sys.exit(main())
