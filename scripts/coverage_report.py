#!/usr/bin/env python3
"""Aggregate gcov data from a --coverage build into a line-coverage table.

Usage: coverage_report.py <build-dir> [--out FILE]

Walks <build-dir> for .gcda files (written when the instrumented tests
ran), asks gcov for JSON intermediate output, and merges the per-TU line
counts so a header exercised from several test binaries is counted once.
Only files under src/ are reported — tests, benches, and system headers
are the instrument, not the subject.

Report-only by design: the exit status is 0 whatever the percentages say.
It is non-zero only when there is no coverage data at all, which means
the build was not instrumented or the tests never ran — a broken job, not
low coverage. Uses plain gcov JSON so no lcov/gcovr install is needed.

Files under src/omx/la/, src/omx/analysis/ (the numerical substrate of
the sparse Jacobian pipeline), src/omx/ode/ (the solver suite, whose
event-localization branches are easy to leave untested) and
src/omx/tune/ (the cost-model layer, whose degenerate-fit fallbacks
only fire on pathological inputs) are additionally flagged in the
summary when their line coverage falls below 70% — still report-only,
the flag is a nudge in the log, not a gate.
"""
import argparse
import collections
import glob
import gzip
import json
import os
import subprocess
import sys


def find_gcda(build_dir):
    out = []
    for root, _dirs, files in os.walk(build_dir):
        # Absolute paths: gcov runs from its own scratch dir and needs to
        # find both the .gcda and the sibling .gcno.
        out.extend(
            os.path.abspath(os.path.join(root, f))
            for f in files
            if f.endswith(".gcda")
        )
    return sorted(out)


def run_gcov(gcda_files, workdir):
    """Runs gcov --json-format; returns the parsed JSON documents."""
    os.makedirs(workdir, exist_ok=True)
    for stale in glob.glob(os.path.join(workdir, "*.gcov.json.gz")):
        os.remove(stale)
    # Batch to keep the command line bounded on big trees.
    for i in range(0, len(gcda_files), 100):
        batch = gcda_files[i : i + 100]
        proc = subprocess.run(
            ["gcov", "--json-format", "--preserve-paths", *batch],
            cwd=workdir,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
            text=True,
        )
        if proc.returncode != 0:
            sys.stderr.write(proc.stderr)
            raise SystemExit("gcov failed")
    docs = []
    for path in glob.glob(os.path.join(workdir, "*.gcov.json.gz")):
        with gzip.open(path, "rt") as f:
            docs.append(json.load(f))
    return docs


def merge_lines(docs, repo_root):
    """repo-relative path -> {line -> max hit count across TUs}."""
    hits = collections.defaultdict(dict)
    src_root = os.path.join(repo_root, "src") + os.sep
    for doc in docs:
        for fentry in doc.get("files", []):
            path = os.path.normpath(
                os.path.join(repo_root, fentry["file"])
                if not os.path.isabs(fentry["file"])
                else fentry["file"]
            )
            if not path.startswith(src_root):
                continue
            rel = os.path.relpath(path, repo_root)
            per_file = hits[rel]
            for line in fentry.get("lines", []):
                no = line["line_number"]
                per_file[no] = max(per_file.get(no, 0), line["count"])
    return hits


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("build_dir")
    ap.add_argument("--out", help="also write the summary to this file")
    args = ap.parse_args()

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    gcda = find_gcda(args.build_dir)
    if not gcda:
        raise SystemExit(
            f"no .gcda files under {args.build_dir} — was the tree built "
            "with --coverage and were the tests run?"
        )
    docs = run_gcov(gcda, os.path.join(args.build_dir, "coverage"))
    hits = merge_lines(docs, repo_root)
    if not hits:
        raise SystemExit("gcov produced no line data for files under src/")

    rows = []
    total_cov = total_lines = 0
    for rel in sorted(hits):
        lines = hits[rel]
        covered = sum(1 for c in lines.values() if c > 0)
        rows.append((rel, covered, len(lines)))
        total_cov += covered
        total_lines += len(lines)

    flag_prefixes = (os.path.join("src", "omx", "la") + os.sep,
                     os.path.join("src", "omx", "analysis") + os.sep,
                     os.path.join("src", "omx", "ode") + os.sep,
                     os.path.join("src", "omx", "tune") + os.sep)
    flag_floor = 70.0
    flagged = []

    width = max(len(r[0]) for r in rows)
    out = [f"{'file':<{width}}  {'covered':>9}  {'%':>6}"]
    for rel, covered, total in rows:
        pct = 100.0 * covered / total if total else 0.0
        mark = ""
        if rel.startswith(flag_prefixes) and pct < flag_floor:
            mark = f"  << below {flag_floor:.0f}% (la/analysis/ode/tune floor)"
            flagged.append((rel, pct))
        out.append(f"{rel:<{width}}  {covered:>4}/{total:<4}  {pct:>5.1f}{mark}")
    pct = 100.0 * total_cov / total_lines
    out.append(f"{'TOTAL':<{width}}  {total_cov:>4}/{total_lines:<4}  {pct:>5.1f}")
    if flagged:
        out.append("")
        out.append(
            f"{len(flagged)} la/analysis/ode/tune file(s) below "
            f"{flag_floor:.0f}% line coverage (report-only):"
        )
        for rel, p in flagged:
            out.append(f"  {rel}  {p:.1f}%")
    text = "\n".join(out) + "\n"

    sys.stdout.write(text)
    if args.out:
        with open(args.out, "w") as f:
            f.write(text)
        print(f"\nsummary written to {args.out}")


if __name__ == "__main__":
    main()
