// Quickstart: the paper's Figure 11 pipeline end-to-end on the harmonic
// oscillator x' = y, y' = -x.
//
//   model text -> parse -> flatten -> dependency analysis -> task plan
//   -> generated Fortran 90 / C++ -> compiled tape -> numerical solution.
#include <cmath>
#include <cstdio>

#include "omx/analysis/partition.hpp"
#include "omx/codegen/cpp_emit.hpp"
#include "omx/codegen/fortran.hpp"
#include "omx/expr/printer.hpp"
#include "omx/models/oscillator.hpp"
#include "omx/ode/solve.hpp"
#include "omx/pipeline/pipeline.hpp"

int main() {
  using namespace omx;

  std::printf("== OMX quickstart: Figure 11 pipeline ==\n\n");
  std::printf("--- model source ---\n%s\n",
              models::oscillator_source().c_str());

  pipeline::CompileOptions copts;
  copts.tasks.min_ops_per_task = 0;  // keep x' and y' as separate tasks
  pipeline::CompiledModel cm =
      pipeline::compile_model(models::build_oscillator, copts);

  // Normal form and annotated prefix form (Figure 11, top).
  std::printf("--- normal form / annotated prefix intermediate form ---\n");
  expr::Context& ctx = *cm.ctx;
  for (const model::FlatState& s : cm.flat->states()) {
    const std::string name = ctx.names.name(s.name);
    std::printf("%s'[t] == %s\n", name.c_str(),
                expr::to_infix(ctx.pool, ctx.names, s.rhs).c_str());
  }
  expr::FullFormOptions ff;
  ff.annotate_types = true;
  for (const model::FlatState& s : cm.flat->states()) {
    std::printf("Equal[Derivative[1][om$Type[%s, om$Real]][t], %s]\n",
                ctx.names.name(s.name).c_str(),
                expr::to_fullform(ctx.pool, ctx.names, s.rhs, ff).c_str());
  }

  // Dependency analysis (both equations form one SCC: x <-> y).
  std::printf("\n--- SCC partition ---\n%s",
              analysis::format_partition_report(*cm.flat, cm.partition)
                  .c_str());

  // Generated code (Figure 11, bottom).
  const codegen::EmitResult f90 =
      codegen::emit_fortran_parallel(*cm.flat, cm.plan, {1, false});
  std::printf("\n--- generated parallel Fortran 90 ---\n%s\n",
              f90.code.c_str());
  const codegen::EmitResult cxx =
      codegen::emit_cpp_parallel(*cm.flat, cm.plan, {1, false});
  std::printf("--- generated parallel C++ ---\n%s\n", cxx.code.c_str());

  // Solve through an execution kernel and compare against cos/sin. The
  // native backend compiles the generated C++ above with the host
  // toolchain and dlopens it (it falls back to the tape interpreter when
  // no compiler is installed).
  exec::KernelInstance kern = cm.make_kernel(exec::Backend::kNative);
  std::printf("--- execution backend: %s ---\n",
              exec::to_string(kern.backend()));
  ode::Problem prob = cm.make_problem(kern, 0.0, 10.0);
  ode::SolverOptions sopts;
  sopts.tol.rtol = 1e-10;
  sopts.tol.atol = 1e-12;
  const ode::Solution sol = ode::solve(prob, ode::Method::kDopri5, sopts);
  const auto yf = sol.final_state();
  std::printf("--- solution at t = 10 ---\n");
  std::printf("x = %+.12f   (exact cos(10) = %+.12f)\n", yf[0],
              std::cos(10.0));
  std::printf("y = %+.12f   (exact -sin(10) = %+.12f)\n", yf[1],
              -std::sin(10.0));
  std::printf("steps = %llu, rhs calls = %llu\n",
              static_cast<unsigned long long>(sol.stats.steps),
              static_cast<unsigned long long>(sol.stats.rhs_calls));
  return 0;
}
