// Telemetry explorer: compiles a model, runs the parallel RHS under the
// supervisor/worker runtime with tracing on, and dumps
//   * a Chrome trace_event JSON (open in chrome://tracing or
//     https://ui.perfetto.dev) with one track per worker showing task
//     spans, idle gaps, the supervisor's scatter/gather phases,
//     per-worker utilization counter tracks (when OMX_OBS_SAMPLE_HZ or
//     --sample-hz is set), and named process/thread rows,
//   * the text metrics summary (RHS calls, messages, bytes, reschedules,
//     histogram percentiles),
//   * with --profile: the aggregated span profile (text to stdout, JSON
//     plus metrics JSON next to the trace), and
//   * with --recorder: a stiff solve of the model with the flight
//     recorder on, dumped as a step-decision event log.
// Every JSON artifact is validated by obs::validate_json before being
// written; a validation failure exits nonzero (CI smoke-tests this).
//
//   trace_explorer --model bearing2d --workers 4 --out trace.json
//                  --profile profile.json --recorder recorder.json
//                  --metrics metrics.json
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "omx/models/bearing2d.hpp"
#include "omx/models/heat1d.hpp"
#include "omx/models/hydro.hpp"
#include "omx/obs/export.hpp"
#include "omx/ode/solve.hpp"
#include "omx/pipeline/pipeline.hpp"
#include "omx/support/config.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--model bearing2d|hydro|heat1d] [--workers N]\n"
               "          [--evals N] [--out trace.json]\n"
               "          [--sample-hz HZ] [--profile profile.json]\n"
               "          [--recorder recorder.json]"
               " [--metrics metrics.json]\n"
               "       %s --config   (list every OMX_* env knob and its\n"
               "                      current value, then exit)\n",
               argv0,
               argv0);
  return 2;
}

/// Validates, then writes; any failure is fatal (the artifacts exist to
/// be consumed by tooling, so a malformed one must fail loudly).
bool emit_json(const std::string& path, const std::string& json,
               const char* what) {
  if (!omx::obs::validate_json(json)) {
    std::fprintf(stderr, "%s output failed JSON validation\n", what);
    return false;
  }
  if (!omx::obs::write_file(path, json)) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace omx;

  std::string model = "bearing2d";
  std::size_t workers = 4;
  std::size_t evals = 64;
  double sample_hz = -1.0;  // <0: leave the env/option default alone
  std::string out_path = "trace.json";
  std::string profile_path;
  std::string recorder_path;
  std::string metrics_path;

  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--config") == 0) {
      std::fputs(config::describe().c_str(), stdout);
      return 0;
    } else if (std::strcmp(argv[i], "--model") == 0) {
      model = next("--model");
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      workers = static_cast<std::size_t>(std::atoi(next("--workers")));
    } else if (std::strcmp(argv[i], "--evals") == 0) {
      evals = static_cast<std::size_t>(std::atoi(next("--evals")));
    } else if (std::strcmp(argv[i], "--sample-hz") == 0) {
      sample_hz = std::atof(next("--sample-hz"));
    } else if (std::strcmp(argv[i], "--out") == 0) {
      out_path = next("--out");
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      profile_path = next("--profile");
    } else if (std::strcmp(argv[i], "--recorder") == 0) {
      recorder_path = next("--recorder");
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      metrics_path = next("--metrics");
    } else {
      return usage(argv[0]);
    }
  }
  if (workers == 0 || evals == 0) {
    return usage(argv[0]);
  }

  pipeline::ModelBuilder builder;
  if (model == "bearing2d") {
    builder = [](expr::Context& ctx) {
      return models::build_bearing(ctx, models::BearingConfig{});
    };
  } else if (model == "hydro") {
    builder = [](expr::Context& ctx) { return models::build_hydro(ctx); };
  } else if (model == "heat1d") {
    builder = [](expr::Context& ctx) {
      return models::build_heat1d(ctx, models::Heat1dConfig{});
    };
  } else {
    return usage(argv[0]);
  }

  // Record everything from the first compile phase on.
  obs::TraceBuffer& tb = obs::TraceBuffer::global();
  tb.start();
  tb.set_process_name("omx/" + model);
  tb.set_thread_name("supervisor");
  if (!recorder_path.empty()) {
    obs::Recorder::global().start();
  }

  pipeline::CompileOptions copts;
  // The --recorder solve feeds the BDF phase a symbolic Jacobian so the
  // flight recorder sees evaluate/factorize/reuse traffic.
  copts.build_jacobian = !recorder_path.empty();
  pipeline::CompiledModel cm = pipeline::compile_model(builder, copts);

  pipeline::KernelOptions ko;
  ko.lanes = workers;
  exec::KernelInstance kern = cm.make_kernel(exec::Backend::kInterp, ko);
  runtime::ParallelRhsOptions popts;
  popts.pool.num_workers = workers;
  popts.sched.reschedule_period = 16;
  if (sample_hz >= 0.0) {
    popts.pool.sample_hz = sample_hz;
  }
  runtime::ParallelRhs rhs(kern.kernel(), popts);

  std::vector<double> y(cm.n()), ydot(cm.n());
  for (std::size_t i = 0; i < cm.n(); ++i) {
    y[i] = cm.flat->states()[i].start;
  }
  for (std::size_t k = 0; k < evals; ++k) {
    rhs.eval(0.0, y, ydot);
  }

  if (!recorder_path.empty()) {
    // A short stiff-capable solve so the flight recorder sees real step
    // control: accepts, rejections, Jacobian reuse, method switches.
    // Only the recorder events matter here, so stream through a
    // StatsOnlySink instead of materializing a trajectory.
    ode::Problem prob = cm.make_problem(exec::Backend::kInterp, 0.0, 0.05);
    cm.bind_symbolic_jacobian(prob);
    ode::SolverOptions sopts;
    ode::StatsOnlySink stats_sink(1);
    ode::solve(prob, ode::Method::kLsodaLike, sopts, stats_sink);
    obs::Recorder::global().stop();
  }
  tb.stop();

  const std::string trace = obs::chrome_trace_json(tb);
  if (!emit_json(out_path, trace, "chrome_trace_json")) {
    return 1;
  }

  std::printf("model %s: %zu states, %zu tasks, %zu workers, %zu evals\n",
              model.c_str(), cm.n(), cm.plan.tasks.size(), workers, evals);
  std::printf("wrote %s (%zu events, %zu counter samples, %zu bytes) — "
              "open in chrome://tracing or https://ui.perfetto.dev\n",
              out_path.c_str(), tb.events().size(),
              tb.counter_samples().size(), trace.size());

  if (!profile_path.empty()) {
    const obs::Profile prof = obs::aggregate_profile(tb);
    if (!emit_json(profile_path, obs::profile_json(prof), "profile_json")) {
      return 1;
    }
    std::printf("wrote %s (%zu profile nodes)\n\n%s", profile_path.c_str(),
                prof.nodes.size(), obs::profile_text(prof).c_str());
  }

  if (!recorder_path.empty()) {
    const obs::Recorder& rec = obs::Recorder::global();
    if (!emit_json(recorder_path, obs::recorder_json(rec),
                   "recorder_json")) {
      return 1;
    }
    std::printf("wrote %s (%zu step events, %llu dropped)\n",
                recorder_path.c_str(), rec.events().size(),
                static_cast<unsigned long long>(rec.dropped()));
  }

  if (!metrics_path.empty()) {
    const std::string metrics =
        obs::metrics_json(obs::Registry::global().snapshot());
    if (!emit_json(metrics_path, metrics, "metrics_json")) {
      return 1;
    }
    std::printf("wrote %s\n", metrics_path.c_str());
  }

  std::printf("\n%s", obs::format_text(
                          obs::Registry::global().snapshot()).c_str());
  std::printf("\nscheduling overhead: %.2f%% of eval time"
              " (%zu reschedules)\n",
              rhs.eval_seconds() > 0.0
                  ? 100.0 * rhs.scheduling_seconds() / rhs.eval_seconds()
                  : 0.0,
              rhs.num_reschedules());
  return 0;
}
