// Telemetry explorer: compiles a model, runs the parallel RHS under the
// supervisor/worker runtime with tracing on, and dumps
//   * a Chrome trace_event JSON (open in chrome://tracing or
//     https://ui.perfetto.dev) with one track per worker showing task
//     spans, idle gaps, and the supervisor's scatter/gather phases, and
//   * the text metrics summary (RHS calls, messages, bytes, reschedules).
//
//   trace_explorer --model bearing2d --workers 4 --out trace.json
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "omx/models/bearing2d.hpp"
#include "omx/models/heat1d.hpp"
#include "omx/models/hydro.hpp"
#include "omx/obs/export.hpp"
#include "omx/pipeline/pipeline.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--model bearing2d|hydro|heat1d] [--workers N]\n"
               "          [--evals N] [--out trace.json]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace omx;

  std::string model = "bearing2d";
  std::size_t workers = 4;
  std::size_t evals = 64;
  std::string out_path = "trace.json";

  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--model") == 0) {
      model = next("--model");
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      workers = static_cast<std::size_t>(std::atoi(next("--workers")));
    } else if (std::strcmp(argv[i], "--evals") == 0) {
      evals = static_cast<std::size_t>(std::atoi(next("--evals")));
    } else if (std::strcmp(argv[i], "--out") == 0) {
      out_path = next("--out");
    } else {
      return usage(argv[0]);
    }
  }
  if (workers == 0 || evals == 0) {
    return usage(argv[0]);
  }

  pipeline::ModelBuilder builder;
  if (model == "bearing2d") {
    builder = [](expr::Context& ctx) {
      return models::build_bearing(ctx, models::BearingConfig{});
    };
  } else if (model == "hydro") {
    builder = [](expr::Context& ctx) { return models::build_hydro(ctx); };
  } else if (model == "heat1d") {
    builder = [](expr::Context& ctx) {
      return models::build_heat1d(ctx, models::Heat1dConfig{});
    };
  } else {
    return usage(argv[0]);
  }

  // Record everything from the first compile phase on.
  obs::TraceBuffer& tb = obs::TraceBuffer::global();
  tb.start();

  pipeline::CompiledModel cm = pipeline::compile_model(builder);

  pipeline::KernelOptions ko;
  ko.lanes = workers;
  exec::KernelInstance kern = cm.make_kernel(exec::Backend::kInterp, ko);
  runtime::ParallelRhsOptions popts;
  popts.pool.num_workers = workers;
  popts.sched.reschedule_period = 16;
  runtime::ParallelRhs rhs(kern.kernel(), popts);

  std::vector<double> y(cm.n()), ydot(cm.n());
  for (std::size_t i = 0; i < cm.n(); ++i) {
    y[i] = cm.flat->states()[i].start;
  }
  for (std::size_t k = 0; k < evals; ++k) {
    rhs.eval(0.0, y, ydot);
  }
  tb.stop();

  const std::string trace = obs::chrome_trace_json(tb);
  if (!obs::write_file(out_path, trace)) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }

  std::printf("model %s: %zu states, %zu tasks, %zu workers, %zu evals\n",
              model.c_str(), cm.n(), cm.plan.tasks.size(), workers, evals);
  std::printf("wrote %s (%zu events, %zu bytes) — open in chrome://tracing"
              " or https://ui.perfetto.dev\n",
              out_path.c_str(), tb.events().size(), trace.size());
  std::printf("\n%s", obs::format_text(
                          obs::Registry::global().snapshot()).c_str());
  std::printf("\nscheduling overhead: %.2f%% of eval time"
              " (%zu reschedules)\n",
              rhs.eval_seconds() > 0.0
                  ? 100.0 * rhs.scheduling_seconds() / rhs.eval_seconds()
                  : 0.0,
              rhs.num_reschedules());
  return 0;
}
