// Hydroelectric power plant (§2.5, Figure 3): the application where
// equation-system-level parallelism DOES pay off. Shows the SCC
// decomposition, the subsystem schedule (parallel levels + pipeline), a
// full-day simulation with the LSODA-like solver, and the dam safety
// margin check the paper motivates the model with.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "omx/analysis/partition.hpp"
#include "omx/graph/dot.hpp"
#include "omx/models/hydro.hpp"
#include "omx/ode/solve.hpp"
#include "omx/pipeline/pipeline.hpp"

int main() {
  using namespace omx;

  pipeline::CompiledModel cm =
      pipeline::compile_model(models::build_hydro);

  std::printf("== Hydroelectric power plant ==\n");
  std::printf("states: %zu  algebraics: %zu\n\n", cm.flat->num_states(),
              cm.flat->num_algebraics());

  std::printf("--- SCC decomposition (Figure 3) ---\n%s\n",
              analysis::format_partition_report(*cm.flat, cm.partition)
                  .c_str());

  // Subsystem schedule: which subsystems can be solved in parallel, and
  // the available pipeline depth (§2.1).
  std::printf("subsystem parallelism: %zu SCCs, max %zu in parallel,"
              " pipeline depth %u\n\n",
              cm.partition.num_subsystems(),
              cm.partition.max_parallel_width(),
              cm.partition.pipeline_depth());

  // Simulate 600 s of operation.
  ode::Problem prob = cm.make_problem(exec::Backend::kInterp, 0.0, 600.0);
  ode::SolverOptions so;
  so.tol.rtol = 1e-7;
  so.tol.atol = 1e-9;
  so.record_every = 4;
  const ode::Solution sol = ode::solve(prob, ode::Method::kDopri5, so);

  const int level_idx = cm.flat->state_index(cm.ctx->symbol("dam.level"));
  const int rip_idx = cm.flat->state_index(cm.ctx->symbol("reg.rip"));
  double lmin = 1e30, lmax = -1e30;
  for (std::size_t i = 0; i < sol.size(); ++i) {
    const double level = sol.state(i)[static_cast<std::size_t>(level_idx)];
    lmin = std::min(lmin, level);
    lmax = std::max(lmax, level);
  }
  std::printf("--- 600 s simulation (DOPRI5) ---\n");
  std::printf("steps = %llu, rhs calls = %llu\n",
              static_cast<unsigned long long>(sol.stats.steps),
              static_cast<unsigned long long>(sol.stats.rhs_calls));
  std::printf("dam level range: [%.4f, %.4f] m (licensed target 10.0)\n",
              lmin, lmax);
  std::printf("integrated level error (reg.rip) at tend: %.3f m*s\n",
              sol.final_state()[static_cast<std::size_t>(rip_idx)]);
  std::printf("dam safety margin check: %s\n\n",
              (lmax < 10.5 && lmin > 9.5) ? "PASS (within +-0.5 m)"
                                          : "VIOLATION");

  // Dependency graph DOT export (the visualization §2.5.1 praises).
  std::vector<std::string> labels;
  for (std::size_t i = 0; i < cm.flat->num_states(); ++i) {
    labels.push_back(cm.flat->state_name(i));
  }
  const std::string dot =
      graph::to_dot_clustered(cm.deps.eq_graph, cm.partition.scc, labels);
  std::printf("--- dependency graph (graphviz, first 12 lines) ---\n");
  std::size_t lines = 0, pos = 0;
  while (lines < 12 && pos < dot.size()) {
    const std::size_t nl = dot.find('\n', pos);
    std::printf("%s\n", dot.substr(pos, nl - pos).c_str());
    pos = nl + 1;
    ++lines;
  }
  std::printf("... (%zu chars total; pipe to dot -Tsvg)\n", dot.size());
  return 0;
}
