// Code-generation explorer: dumps, for any built-in model, what the
// ObjectMath 4.0 code generator produces (Figures 8/9/11) — generated
// Fortran 90 and C++ in both parallel (per-task CSE) and serial (global
// CSE) variants, the task plan, and the SCC report.
//
// Usage: codegen_explorer [oscillator|servo|hydro|bearing|heat] [--serial]
//                         [--cpp] [--dot]
#include <cstdio>
#include <cstring>
#include <string>

#include "omx/analysis/partition.hpp"
#include "omx/codegen/cpp_emit.hpp"
#include "omx/codegen/fortran.hpp"
#include "omx/graph/dot.hpp"
#include "omx/models/bearing2d.hpp"
#include "omx/models/heat1d.hpp"
#include "omx/models/hydro.hpp"
#include "omx/models/oscillator.hpp"
#include "omx/models/servo.hpp"
#include "omx/pipeline/pipeline.hpp"

int main(int argc, char** argv) {
  using namespace omx;

  std::string which = argc > 1 ? argv[1] : "oscillator";
  bool serial = false, cpp = false, dot = false;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--serial") == 0) serial = true;
    if (std::strcmp(argv[i], "--cpp") == 0) cpp = true;
    if (std::strcmp(argv[i], "--dot") == 0) dot = true;
  }

  pipeline::ModelBuilder builder;
  if (which == "oscillator") {
    builder = models::build_oscillator;
  } else if (which == "servo") {
    builder = models::build_servo;
  } else if (which == "hydro") {
    builder = models::build_hydro;
  } else if (which == "bearing") {
    builder = [](expr::Context& ctx) {
      return models::build_bearing(ctx, models::BearingConfig{});
    };
  } else if (which == "heat") {
    builder = [](expr::Context& ctx) {
      return models::build_heat1d(ctx, models::Heat1dConfig{});
    };
  } else {
    std::fprintf(stderr,
                 "unknown model '%s' (oscillator|servo|hydro|bearing|heat)\n",
                 which.c_str());
    return 1;
  }

  pipeline::CompiledModel cm = pipeline::compile_model(builder);

  std::fprintf(stderr, "model %s: %zu states, %zu algebraics, %zu tasks\n",
               which.c_str(), cm.flat->num_states(),
               cm.flat->num_algebraics(), cm.plan.tasks.size());
  std::fprintf(stderr, "%s\n",
               analysis::format_partition_report(*cm.flat, cm.partition)
                   .c_str());

  if (dot) {
    std::vector<std::string> labels;
    for (std::size_t i = 0; i < cm.flat->num_states(); ++i) {
      labels.push_back(cm.flat->state_name(i));
    }
    std::printf("%s", graph::to_dot_clustered(cm.deps.eq_graph,
                                              cm.partition.scc, labels)
                          .c_str());
    return 0;
  }

  codegen::EmitResult res;
  if (cpp) {
    res = serial ? codegen::emit_cpp_serial(*cm.flat, cm.assignments)
                 : codegen::emit_cpp_parallel(*cm.flat, cm.plan);
  } else {
    res = serial ? codegen::emit_fortran_serial(*cm.flat, cm.assignments)
                 : codegen::emit_fortran_parallel(*cm.flat, cm.plan);
  }
  std::fprintf(stderr,
               "emitted %zu lines (%zu declarations, %zu CSE temps)\n",
               res.total_lines, res.decl_lines, res.num_cse_temps);
  std::printf("%s", res.code.c_str());
  return 0;
}
