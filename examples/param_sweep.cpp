// Parameter sweep through the ensemble engine: integrate a family of
// bearing scenarios — the ring released from a grid of initial vertical
// offsets — concurrently with ode::solve_ensemble, then summarize how
// the release point shapes the settled ring position.
//
//   ./examples/param_sweep [n_scenarios] [workers]
//
// Every scenario shares the compiled model and kernel; the engine packs
// the active ones into SoA batches and spreads them over the workers.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "omx/models/bearing2d.hpp"
#include "omx/ode/ensemble.hpp"
#include "omx/pipeline/pipeline.hpp"

int main(int argc, char** argv) {
  using namespace omx;

  const std::size_t n_scenarios =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 24;
  const std::size_t workers =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 4;

  models::BearingConfig cfg;
  pipeline::CompiledModel cm = pipeline::compile_model(
      [&](expr::Context& ctx) { return models::build_bearing(ctx, cfg); });

  // The sweep parameter: initial vertical ring offset in fractions of
  // the clearance. State 1 is the ring's y position (see bearing2d.hpp).
  std::vector<double> y0(cm.n());
  for (std::size_t i = 0; i < cm.n(); ++i) {
    y0[i] = cm.flat->states()[i].start;
  }
  ode::EnsembleSpec spec;
  spec.workers = workers;
  std::vector<double> offsets;
  for (std::size_t s = 0; s < n_scenarios; ++s) {
    const double frac =
        -0.5 + static_cast<double>(s) / static_cast<double>(n_scenarios);
    std::vector<double> y = y0;
    y[1] += frac * 1e-5;  // offset within the bearing clearance
    offsets.push_back(frac);
    spec.initial_states.push_back(std::move(y));
  }

  const exec::KernelInstance kernel =
      cm.make_kernel(exec::Backend::kNative);
  const ode::Problem p = cm.make_problem(kernel, 0.0, 0.02);
  ode::SolverOptions o;
  o.record_every = 64;

  std::printf("param_sweep: %zu bearing scenarios (%s backend, %zu"
              " workers)\n\n",
              n_scenarios, to_string(kernel.backend()), workers);
  const ode::EnsembleResult r =
      ode::solve_ensemble(p, ode::Method::kDopri5, o, spec);

  std::printf("%-12s %-14s %-14s %s\n", "offset", "final x", "final y",
              "steps");
  for (std::size_t s = 0; s < r.solutions.size(); ++s) {
    const auto y = r.solutions[s].final_state();
    std::printf("%-12.3f %-14.4e %-14.4e %zu\n", offsets[s], y[0], y[1],
                r.solutions[s].stats.steps);
  }

  std::size_t total_steps = 0, total_rhs = 0;
  for (const ode::Solution& s : r.solutions) {
    total_steps += s.stats.steps;
    total_rhs += s.stats.rhs_calls;
  }
  std::printf("\ntotal: %zu steps, %zu RHS evaluations across %zu"
              " scenarios\n",
              total_steps, total_rhs, r.solutions.size());
  return 0;
}
