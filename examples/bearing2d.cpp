// The paper's headline application: simulation of a 2-D cylindrical
// rolling bearing (§2.5, §3.3, §4).
//
// Builds the OO model, shows the dependency structure (Figure 6: one big
// SCC plus the decoupled rotation angle), generates + compiles the
// parallel RHS, runs a short transient simulation, and measures RHS
// throughput serial vs parallel on both simulated 1995 interconnects.
#include <cmath>
#include <cstdio>

#include "omx/analysis/partition.hpp"
#include "omx/models/bearing2d.hpp"
#include "omx/ode/solve.hpp"
#include "omx/pipeline/pipeline.hpp"
#include "omx/runtime/simulated_machine.hpp"
#include "omx/support/timer.hpp"

int main() {
  using namespace omx;

  models::BearingConfig cfg;  // 10 rollers, the paper's configuration
  std::printf("== 2-D rolling bearing: %d rollers, Ri=%.3f m, r=%.3f m ==\n",
              cfg.n_rollers, cfg.inner_race_radius, cfg.roller_radius);

  pipeline::CompiledModel cm = pipeline::compile_model(
      [&](expr::Context& ctx) { return models::build_bearing(ctx, cfg); });

  std::printf("\nstates: %zu  algebraics: %zu  tasks: %zu  tape ops: %zu\n",
              cm.flat->num_states(), cm.flat->num_algebraics(),
              cm.plan.tasks.size(), cm.parallel_program.total_ops());

  std::printf("\n--- SCC partition (Figure 6) ---\n%s",
              analysis::format_partition_report(*cm.flat, cm.partition)
                  .c_str());

  // Short transient: the inner ring settles onto the loaded rollers.
  const double dt = 2e-6;
  ode::Problem prob = cm.make_problem(exec::Backend::kInterp, 0.0, 2e-3);
  ode::SolverOptions fs;
  fs.dt = dt;
  fs.record_every = 100;
  const ode::Solution sol = ode::solve(prob, ode::Method::kRk4, fs);
  const auto yf = sol.final_state();
  const int iw = cm.flat->state_index(cm.ctx->symbol("inner.omega"));
  const int iy = cm.flat->state_index(cm.ctx->symbol("inner.y"));
  std::printf("\n--- transient to t = %.1e s (RK4, dt = %.0e) ---\n",
              prob.tend, dt);
  std::printf("inner ring:  y = %+.3e m (settles under load), omega = %.2f"
              " rad/s\n", yf[static_cast<std::size_t>(iy)],
              yf[static_cast<std::size_t>(iw)]);
  std::printf("steps = %llu, rhs calls = %llu\n",
              static_cast<unsigned long long>(sol.stats.steps),
              static_cast<unsigned long long>(sol.stats.rhs_calls));

  // RHS throughput on the two modeled 1995 machines (Figure 12's
  // measurement: #RHS-calls/s, via the virtual-time machine model).
  std::printf("\n--- modeled RHS throughput (#RHS-calls/s, Figure 12) ---\n");
  std::printf("%-12s %-22s %-22s\n", "processors", "SPARC Center 2000",
              "Parsytec GC/PP");
  for (std::size_t p : {1, 2, 4, 8, 12, 16}) {
    std::printf("%-12zu", p);
    for (const auto& mm : {runtime::MachineModel::sparc_center_2000(),
                           runtime::MachineModel::parsytec_gcpp()}) {
      runtime::SimulatedMachine sim(cm.parallel_program, mm);
      double cps;
      if (p == 1) {
        cps = sim.time_serial_call().calls_per_second();
      } else {
        const auto schedule =
            sched::lpt_schedule(sim.task_costs(), p - 1);
        cps = sim.time_parallel_call(schedule).calls_per_second();
      }
      std::printf(" %-22.0f", cps);
    }
    std::printf("\n");
  }

  // Functional parallel execution on real threads: same results as serial.
  std::vector<double> y(cm.n()), ydot_ser(cm.n()), ydot_par(cm.n());
  for (std::size_t i = 0; i < cm.n(); ++i) {
    y[i] = cm.flat->states()[i].start;
  }
  exec::KernelInstance serial_k = cm.make_kernel(exec::Backend::kInterp);
  runtime::SerialRhs serial(serial_k.kernel());
  serial.eval(0.0, y, ydot_ser);
  pipeline::KernelOptions ko;
  ko.lanes = 4;
  exec::KernelInstance par_k = cm.make_kernel(exec::Backend::kInterp, ko);
  runtime::ParallelRhsOptions popts;
  popts.pool.num_workers = 4;
  runtime::ParallelRhs par(par_k.kernel(), popts);
  par.eval(0.0, y, ydot_par);
  double max_diff = 0.0;
  for (std::size_t i = 0; i < cm.n(); ++i) {
    max_diff = std::max(max_diff, std::fabs(ydot_ser[i] - ydot_par[i]));
  }
  std::printf("\nthread-pool parallel RHS vs serial tape: max |diff| ="
              " %.3e\n", max_diff);
  return 0;
}
