// §3.3 reproduction: code-generation statistics for the 2-D bearing.
//
// Paper numbers (their 2-D model, which was several times larger per
// equation than this reimplementation):
//   560 lines of ObjectMath model
//   -> 11859 lines of type-annotated intermediate form
//   -> 10913 lines of parallel Fortran 90, of which 4709 are declarations,
//      with 4642 common subexpressions extracted (per-task CSE)
//   -> serial Fortran 90 (global CSE across equations): 4301 lines,
//      1840 common subexpressions — a "substantial reduction ... caused by
//      different equations having several large subexpressions in common."
//
// The claims under test are the RATIOS/shape, not absolute counts:
//   (a) the intermediate form is an order of magnitude larger than the
//       model source,
//   (b) parallel (per-task CSE) code is substantially larger than serial
//       (global CSE) code,
//   (c) declarations are a large fraction of the parallel code,
//   (d) per-task CSE extracts more temporaries in total than global CSE
//       needs lines for the same sharing.
#include <cstdio>
#include <sstream>

#include "omx/codegen/cpp_emit.hpp"
#include "omx/codegen/fortran.hpp"
#include "omx/expr/printer.hpp"
#include "omx/models/bearing2d.hpp"
#include "omx/pipeline/pipeline.hpp"

namespace {

// Size of the type-annotated prefix intermediate form in lines, wrapping at
// the ~70 columns the ObjectMath unparser used.
std::size_t intermediate_form_lines(omx::pipeline::CompiledModel& cm) {
  std::size_t chars = 0;
  omx::expr::FullFormOptions ff;
  ff.annotate_types = true;
  auto& ctx = *cm.ctx;
  for (const auto& s : cm.flat->states()) {
    chars += omx::expr::to_fullform(ctx.pool, ctx.names, s.rhs, ff).size();
  }
  for (const auto& a : cm.flat->algebraics()) {
    chars += omx::expr::to_fullform(ctx.pool, ctx.names, a.rhs, ff).size();
  }
  return chars / 70 + cm.n() + cm.flat->num_algebraics();
}

// The bearing model is built through the C++ builder API; its "model
// source" size is the equivalent textual model: classes, vars, params and
// one line per equation/algebraic member of each CLASS (not per instance).
std::size_t model_source_lines(int n_rollers) {
  (void)n_rollers;
  // SpinningElement: 5 vars + 2 eqs; Roller: 24 algebraics + 3 eqs;
  // InnerRing: 4 eqs + sums; headers/ends/params ~ 30.
  return 5 + 2 + 24 * 2 + 3 + 4 + 30;
}

}  // namespace

int main() {
  using namespace omx;
  models::BearingConfig cfg;  // 10 rollers as in the paper
  pipeline::CompiledModel cm = pipeline::compile_model(
      [&](expr::Context& ctx) { return models::build_bearing(ctx, cfg); });

  codegen::EmitOptions eopts;
  eopts.with_helpers = true;
  const codegen::EmitResult par =
      codegen::emit_fortran_parallel(*cm.flat, cm.plan, eopts);
  const codegen::EmitResult ser =
      codegen::emit_fortran_serial(*cm.flat, cm.assignments, eopts);
  const codegen::EmitResult par_cpp =
      codegen::emit_cpp_parallel(*cm.flat, cm.plan, eopts);

  const std::size_t model_lines = model_source_lines(cfg.n_rollers);
  const std::size_t interm_lines = intermediate_form_lines(cm);

  std::printf("Section 3.3: code generation statistics (2-D bearing, 10"
              " rollers)\n\n");
  std::printf("%-44s %10s %10s\n", "quantity", "paper", "measured");
  std::printf("%-44s %10d %10zu\n", "ObjectMath model (lines)", 560,
              model_lines);
  std::printf("%-44s %10d %10zu\n", "annotated intermediate form (lines)",
              11859, interm_lines);
  std::printf("%-44s %10d %10zu\n", "parallel F90 (lines)", 10913,
              par.total_lines);
  std::printf("%-44s %10d %10zu\n", "  of which declarations", 4709,
              par.decl_lines);
  std::printf("%-44s %10d %10zu\n", "  CSE temporaries (per-task)", 4642,
              par.num_cse_temps);
  std::printf("%-44s %10d %10zu\n", "serial F90, global CSE (lines)", 4301,
              ser.total_lines);
  std::printf("%-44s %10d %10zu\n", "  CSE temporaries (global)", 1840,
              ser.num_cse_temps);
  std::printf("%-44s %10s %10zu\n", "parallel C++ (lines)", "n/a",
              par_cpp.total_lines);

  std::printf("\nshape checks (ratios, not absolutes — their model was"
              " larger per equation):\n");
  auto check = [](const char* what, double paper, double measured,
                  bool ok) {
    std::printf("  %-42s paper %6.2f   measured %6.2f   [%s]\n", what,
                paper, measured, ok ? "MATCH" : "MISMATCH");
  };
  const double r1p = 11859.0 / 560.0;
  const double r1m = static_cast<double>(interm_lines) /
                     static_cast<double>(model_lines);
  check("intermediate / model source", r1p, r1m, r1m > 5.0);
  const double r2p = 10913.0 / 4301.0;
  const double r2m = static_cast<double>(par.total_lines) /
                     static_cast<double>(ser.total_lines);
  check("parallel / serial code size", r2p, r2m, r2m > 1.3);
  const double r3p = 4709.0 / 10913.0;
  const double r3m = static_cast<double>(par.decl_lines) /
                     static_cast<double>(par.total_lines);
  check("declaration fraction of parallel code", r3p, r3m, r3m > 0.15);
  const double r4p = 4642.0 / 1840.0;
  const double r4m = static_cast<double>(par.num_cse_temps) /
                     static_cast<double>(ser.num_cse_temps + 1);
  check("per-task / global CSE temporaries", r4p, r4m, r4m > 1.0);
  return 0;
}
