// Figure 6 reproduction: dependencies between equations and SCCs in the
// 2-D rolling bearing model.
//
// Paper: "All equations are strongly connected except one" — the model
// "only yielded two SCCs, where all the computation was embedded in one of
// them" (§6). The decoupled equation is the inner ring's rotation angle.
// Also checks §2.5.1's conclusion that equation-system-level partitioning
// does NOT pay off for the bearing (parallel width 1).
#include <cstdio>

#include "omx/analysis/partition.hpp"
#include "omx/models/bearing2d.hpp"
#include "omx/pipeline/pipeline.hpp"

int main() {
  using namespace omx;
  for (int rollers : {10, 4, 24}) {
    models::BearingConfig cfg;
    cfg.n_rollers = rollers;
    pipeline::CompiledModel cm = pipeline::compile_model(
        [&](expr::Context& ctx) { return models::build_bearing(ctx, cfg); });

    std::printf("Figure 6: 2-D bearing, %d rollers (%zu equations)\n",
                rollers, cm.n());
    std::printf("%s\n",
                analysis::format_partition_report(*cm.flat, cm.partition)
                    .c_str());
    const auto& p = cm.partition;
    const bool two_sccs = p.num_subsystems() == 2;
    const bool one_big = p.largest() == cm.n() - 1;
    std::printf("  paper: 2 SCCs, all computation in one  ->  measured:"
                " %zu SCCs, largest %zu/%zu  [%s]\n",
                p.num_subsystems(), p.largest(), cm.n(),
                two_sccs && one_big ? "MATCH" : "MISMATCH");
    std::printf("  subsystem-level parallelism usable: paper no ->"
                " measured width %zu  [%s]\n\n",
                p.max_parallel_width(),
                p.max_parallel_width() == 1 ? "MATCH" : "MISMATCH");
  }
  return 0;
}
