// Microbenchmarks of the ODE solver suite on standard problems.
#include <benchmark/benchmark.h>

#include <cmath>

#include "omx/ode/adams.hpp"
#include "omx/ode/auto_switch.hpp"
#include "omx/ode/bdf.hpp"
#include "omx/ode/dopri5.hpp"
#include "omx/ode/fixed_step.hpp"

namespace {

using namespace omx::ode;

Problem oscillator(std::size_t copies) {
  Problem p;
  p.n = 2 * copies;
  p.rhs = [copies](double, std::span<const double> y,
                   std::span<double> f) {
    for (std::size_t k = 0; k < copies; ++k) {
      f[2 * k] = y[2 * k + 1];
      f[2 * k + 1] = -y[2 * k];
    }
  };
  p.t0 = 0.0;
  p.tend = 10.0;
  p.y0.assign(p.n, 0.0);
  for (std::size_t k = 0; k < copies; ++k) {
    p.y0[2 * k] = 1.0;
  }
  return p;
}

Problem stiff_tracking() {
  Problem p;
  p.n = 1;
  p.rhs = [](double t, std::span<const double> y, std::span<double> f) {
    f[0] = -1000.0 * (y[0] - std::cos(t)) - std::sin(t);
  };
  p.jacobian = [](double, std::span<const double>, omx::la::Matrix& j) {
    j(0, 0) = -1000.0;
  };
  p.t0 = 0.0;
  p.tend = 2.0;
  p.y0 = {0.0};
  return p;
}

void BM_Rk4(benchmark::State& state) {
  const Problem p = oscillator(static_cast<std::size_t>(state.range(0)));
  FixedStepOptions o{.dt = 1e-3, .record_every = 1u << 30};
  for (auto _ : state) {
    benchmark::DoNotOptimize(rk4(p, o).final_state()[0]);
  }
}
BENCHMARK(BM_Rk4)->Arg(1)->Arg(16);

void BM_Dopri5(benchmark::State& state) {
  const Problem p = oscillator(static_cast<std::size_t>(state.range(0)));
  Dopri5Options o;
  o.record_every = 1u << 30;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dopri5(p, o).final_state()[0]);
  }
}
BENCHMARK(BM_Dopri5)->Arg(1)->Arg(16);

void BM_AdamsPece(benchmark::State& state) {
  const Problem p = oscillator(static_cast<std::size_t>(state.range(0)));
  AdamsOptions o;
  o.record_every = 1u << 30;
  for (auto _ : state) {
    benchmark::DoNotOptimize(adams_pece(p, o).final_state()[0]);
  }
}
BENCHMARK(BM_AdamsPece)->Arg(1)->Arg(16);

void BM_BdfStiff(benchmark::State& state) {
  const Problem p = stiff_tracking();
  BdfOptions o;
  o.max_order = 2;
  o.record_every = 1u << 30;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bdf(p, o).final_state()[0]);
  }
}
BENCHMARK(BM_BdfStiff);

void BM_BdfStiffFiniteDiffJac(benchmark::State& state) {
  Problem p = stiff_tracking();
  p.jacobian = nullptr;
  BdfOptions o;
  o.max_order = 2;
  o.record_every = 1u << 30;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bdf(p, o).final_state()[0]);
  }
}
BENCHMARK(BM_BdfStiffFiniteDiffJac);

void BM_LsodaLikeStiff(benchmark::State& state) {
  const Problem p = stiff_tracking();
  AutoSwitchOptions o;
  o.record_every = 1u << 30;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        lsoda_like(p, o).solution.final_state()[0]);
  }
}
BENCHMARK(BM_LsodaLikeStiff);

}  // namespace

BENCHMARK_MAIN();
