// Microbenchmarks of the ODE solver suite on standard problems.
#include <benchmark/benchmark.h>

#include <cmath>

#include "omx/ode/auto_switch.hpp"
#include "omx/ode/solve.hpp"

namespace {

using namespace omx::ode;

Problem oscillator(std::size_t copies) {
  Problem p;
  p.n = 2 * copies;
  p.set_rhs([copies](double, std::span<const double> y,
                     std::span<double> f) {
    for (std::size_t k = 0; k < copies; ++k) {
      f[2 * k] = y[2 * k + 1];
      f[2 * k + 1] = -y[2 * k];
    }
  });
  p.t0 = 0.0;
  p.tend = 10.0;
  p.y0.assign(p.n, 0.0);
  for (std::size_t k = 0; k < copies; ++k) {
    p.y0[2 * k] = 1.0;
  }
  return p;
}

Problem stiff_tracking(bool with_jacobian = true) {
  Problem p;
  p.n = 1;
  p.set_rhs([](double t, std::span<const double> y, std::span<double> f) {
    f[0] = -1000.0 * (y[0] - std::cos(t)) - std::sin(t);
  });
  if (with_jacobian) {
    p.set_jacobian([](double, std::span<const double>, omx::la::Matrix& j) {
      j(0, 0) = -1000.0;
    });
  }
  p.t0 = 0.0;
  p.tend = 2.0;
  p.y0 = {0.0};
  return p;
}

SolverOptions no_record() {
  SolverOptions o;
  o.record_every = 1u << 30;
  return o;
}

void BM_Rk4(benchmark::State& state) {
  const Problem p = oscillator(static_cast<std::size_t>(state.range(0)));
  SolverOptions o = no_record();
  o.dt = 1e-3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve(p, Method::kRk4, o).final_state()[0]);
  }
}
BENCHMARK(BM_Rk4)->Arg(1)->Arg(16);

void BM_Dopri5(benchmark::State& state) {
  const Problem p = oscillator(static_cast<std::size_t>(state.range(0)));
  const SolverOptions o = no_record();
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve(p, Method::kDopri5, o).final_state()[0]);
  }
}
BENCHMARK(BM_Dopri5)->Arg(1)->Arg(16);

void BM_AdamsPece(benchmark::State& state) {
  const Problem p = oscillator(static_cast<std::size_t>(state.range(0)));
  const SolverOptions o = no_record();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        solve(p, Method::kAdamsPece, o).final_state()[0]);
  }
}
BENCHMARK(BM_AdamsPece)->Arg(1)->Arg(16);

void BM_BdfStiff(benchmark::State& state) {
  const Problem p = stiff_tracking();
  SolverOptions o = no_record();
  o.bdf_max_order = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve(p, Method::kBdf, o).final_state()[0]);
  }
}
BENCHMARK(BM_BdfStiff);

void BM_BdfStiffFiniteDiffJac(benchmark::State& state) {
  const Problem p = stiff_tracking(/*with_jacobian=*/false);
  SolverOptions o = no_record();
  o.bdf_max_order = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve(p, Method::kBdf, o).final_state()[0]);
  }
}
BENCHMARK(BM_BdfStiffFiniteDiffJac);

void BM_LsodaLikeStiff(benchmark::State& state) {
  const Problem p = stiff_tracking();
  const SolverOptions o = no_record();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        solve(p, Method::kLsodaLike, o).final_state()[0]);
  }
}
BENCHMARK(BM_LsodaLikeStiff);

}  // namespace

BENCHMARK_MAIN();
