// Figure 12 reproduction: "#RHS-calls/s vs number of processors" for the
// 2-D bearing on the two modeled 1995 machines.
//
// Paper series (read off the figure):
//  * SPARC Center 2000 (shared memory, 4 us): "almost linear speedup up to
//    seven processors", peaking around 550 calls/s, then a knee caused by
//    the 8-CPU time-sharing machine;
//  * Parsytec GC/PP (distributed memory, 140 us): "reaches a peak at four
//    processors" around 200-250 calls/s, degrading beyond it.
//
// Absolute rates are calibrated to the paper's serial RHS granularity
// (~10 ms/call, see MachineModel); the claims under test are the SHAPES:
// near-linear rise + knee for low latency, early peak + decline for high
// latency, and shared >> distributed at scale.
// In addition to the stdout table, the series are written to
// BENCH_fig12.json through the obs JSON metrics exporter so perf
// trajectories can be tracked across revisions.
#include <cstdio>
#include <string>

#include "omx/models/bearing2d.hpp"
#include "omx/obs/export.hpp"
#include "omx/pipeline/pipeline.hpp"
#include "omx/runtime/simulated_machine.hpp"

int main() {
  using namespace omx;

  // The JSON trajectory below must come out populated even when the
  // process-wide metric switch is off.
  obs::set_enabled(true);

  models::BearingConfig cfg;  // 10 rollers as in the paper
  pipeline::CompiledModel cm = pipeline::compile_model(
      [&](expr::Context& ctx) { return models::build_bearing(ctx, cfg); });

  const auto sparc = runtime::MachineModel::sparc_center_2000();
  const auto parsytec = runtime::MachineModel::parsytec_gcpp();
  runtime::SimulatedMachine sim_sparc(cm.parallel_program, sparc);
  runtime::SimulatedMachine sim_pars(cm.parallel_program, parsytec);

  std::printf("Figure 12: 2-D bearing (%d rollers, %zu states, %zu tasks,"
              " %zu tape ops)\n",
              cfg.n_rollers, cm.n(), cm.plan.tasks.size(),
              cm.parallel_program.total_ops());
  std::printf("%-6s %-22s %-22s\n", "procs", "SparcCenter2000 [1/s]",
              "Parsytec GC/PP [1/s]");

  double sparc_peak = 0.0, pars_peak = 0.0;
  std::size_t sparc_peak_p = 1, pars_peak_p = 1;
  double sparc_at[18] = {0}, pars_at[18] = {0};
  for (std::size_t p = 1; p <= 17; ++p) {
    double v_sparc, v_pars;
    if (p == 1) {
      v_sparc = sim_sparc.time_serial_call().calls_per_second();
      v_pars = sim_pars.time_serial_call().calls_per_second();
    } else {
      // p processors = 1 supervisor + (p-1) workers, LPT-scheduled.
      const auto sched_s =
          sched::lpt_schedule(sim_sparc.task_costs(), p - 1);
      v_sparc = sim_sparc.time_parallel_call(sched_s).calls_per_second();
      const auto sched_p =
          sched::lpt_schedule(sim_pars.task_costs(), p - 1);
      v_pars = sim_pars.time_parallel_call(sched_p).calls_per_second();
    }
    sparc_at[p] = v_sparc;
    pars_at[p] = v_pars;
    if (v_sparc > sparc_peak) {
      sparc_peak = v_sparc;
      sparc_peak_p = p;
    }
    if (v_pars > pars_peak) {
      pars_peak = v_pars;
      pars_peak_p = p;
    }
    std::printf("%-6zu %-22.0f %-22.0f\n", p, v_sparc, v_pars);
  }

  std::printf("\npaper vs measured (shape checks):\n");
  std::printf("  serial rate            paper ~100/s        measured %.0f/s\n",
              sparc_at[1]);
  std::printf("  sparc peak             paper ~550/s @ 7-8  measured %.0f/s"
              " @ %zu\n", sparc_peak, sparc_peak_p);
  std::printf("  sparc knee beyond 8:   paper yes           measured %s"
              " (17p = %.0f < peak)\n",
              sparc_at[17] < sparc_peak ? "yes" : "NO", sparc_at[17]);
  std::printf("  parsytec peak          paper ~200-250 @ 4  measured %.0f/s"
              " @ %zu\n", pars_peak, pars_peak_p);
  std::printf("  parsytec declines:     paper yes           measured %s"
              " (17p = %.0f < peak)\n",
              pars_at[17] < pars_peak ? "yes" : "NO", pars_at[17]);
  std::printf("  shared >> distributed: paper yes           measured %s"
              " (%.1fx at peak)\n",
              sparc_peak > 1.5 * pars_peak ? "yes" : "NO",
              sparc_peak / pars_peak);

  // Machine-readable trajectory: one gauge per (machine, processor count)
  // plus the derived peaks, exported with the obs JSON metrics exporter.
  obs::Registry metrics;
  metrics.gauge("fig12.n_states").set(static_cast<double>(cm.n()));
  metrics.gauge("fig12.n_tasks")
      .set(static_cast<double>(cm.plan.tasks.size()));
  for (std::size_t p = 1; p <= 17; ++p) {
    const std::string suffix = ".calls_per_s.p" + std::to_string(p);
    metrics.gauge("fig12.sparc" + suffix).set(sparc_at[p]);
    metrics.gauge("fig12.parsytec" + suffix).set(pars_at[p]);
  }
  metrics.gauge("fig12.sparc.peak").set(sparc_peak);
  metrics.gauge("fig12.sparc.peak_procs")
      .set(static_cast<double>(sparc_peak_p));
  metrics.gauge("fig12.parsytec.peak").set(pars_peak);
  metrics.gauge("fig12.parsytec.peak_procs")
      .set(static_cast<double>(pars_peak_p));
  const char* out_path = "BENCH_fig12.json";
  if (obs::write_file(out_path, obs::metrics_json(metrics.snapshot()))) {
    std::printf("\nwrote %s\n", out_path);
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  return 0;
}
