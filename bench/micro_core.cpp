// Microbenchmarks of the symbolic/compilation core (google-benchmark):
// expression construction, differentiation, simplification, CSE, tape
// compilation and VM execution throughput.
#include <benchmark/benchmark.h>

#include "omx/codegen/cse.hpp"
#include "omx/codegen/tape.hpp"
#include "omx/exec/native.hpp"
#include "omx/expr/derivative.hpp"
#include "omx/expr/simplify.hpp"
#include "omx/model/flatten.hpp"
#include "omx/models/bearing2d.hpp"
#include "omx/vm/interp.hpp"

namespace {

using namespace omx;

model::FlatSystem make_bearing(expr::Context& ctx, int rollers) {
  models::BearingConfig cfg;
  cfg.n_rollers = rollers;
  return model::flatten(models::build_bearing(ctx, cfg));
}

void BM_BuildBearingModel(benchmark::State& state) {
  const int rollers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    expr::Context ctx;
    model::FlatSystem f = make_bearing(ctx, rollers);
    benchmark::DoNotOptimize(f.num_states());
  }
}
BENCHMARK(BM_BuildBearingModel)->Arg(4)->Arg(10)->Arg(20);

void BM_Differentiate(benchmark::State& state) {
  expr::Context ctx;
  model::FlatSystem f = make_bearing(ctx, 4);
  const expr::ExprId rhs =
      codegen::inline_algebraics(f, f.states()[2].rhs);
  const SymbolId x = f.states()[0].name;
  for (auto _ : state) {
    benchmark::DoNotOptimize(expr::differentiate(ctx.pool, rhs, x));
  }
}
BENCHMARK(BM_Differentiate);

void BM_Simplify(benchmark::State& state) {
  expr::Context ctx;
  model::FlatSystem f = make_bearing(ctx, 4);
  const expr::ExprId rhs =
      codegen::inline_algebraics(f, f.states()[2].rhs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(expr::simplify(ctx.pool, rhs));
  }
}
BENCHMARK(BM_Simplify);

void BM_Cse(benchmark::State& state) {
  expr::Context ctx;
  model::FlatSystem f = make_bearing(ctx, 10);
  std::vector<expr::ExprId> roots;
  for (const auto& s : f.states()) {
    roots.push_back(codegen::inline_algebraics(f, s.rhs));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    codegen::CseOptions opts;
    opts.temp_prefix = "b" + std::to_string(i++) + "$";
    benchmark::DoNotOptimize(
        codegen::eliminate_common_subexpressions(ctx, roots, opts));
  }
}
BENCHMARK(BM_Cse);

void BM_CompileTape(benchmark::State& state) {
  expr::Context ctx;
  model::FlatSystem f = make_bearing(ctx, 10);
  const auto set = codegen::build_assignments(f);
  const auto plan = codegen::plan_tasks(f, set, {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(codegen::compile_parallel_tape(f, plan));
  }
}
BENCHMARK(BM_CompileTape);

// Interp-vs-native RHS throughput over the same bearing2d serial body.
// Registered interleaved per size so the pairs sit next to each other in
// the report; bench/backends.cpp exports the same comparison as
// BENCH_backends.json.
void BM_VmRhs(benchmark::State& state, exec::Backend backend) {
  const int rollers = static_cast<int>(state.range(0));
  expr::Context ctx;
  model::FlatSystem f = make_bearing(ctx, rollers);
  const auto set = codegen::build_assignments(f);
  const auto plan = codegen::plan_tasks(f, set, {});
  const vm::Program par = codegen::compile_parallel_tape(f, plan);
  const vm::Program ser = codegen::compile_serial_tape(f, set);
  exec::KernelInstance inst =
      backend == exec::Backend::kNative
          ? exec::make_native_kernel(f, set, plan, par, &ser)
          : exec::make_interp_kernel(par, &ser);
  if (inst.backend() != backend) {
    state.SkipWithError("native toolchain unavailable; fell back to interp");
    return;
  }
  const exec::RhsKernel& kernel = inst.kernel();
  std::vector<double> y(f.num_states()), ydot(f.num_states());
  for (std::size_t i = 0; i < y.size(); ++i) {
    y[i] = f.states()[i].start;
  }
  for (auto _ : state) {
    kernel(0.0, y, ydot);
    benchmark::DoNotOptimize(ydot[0]);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ser.total_ops()));
}
BENCHMARK_CAPTURE(BM_VmRhs, interp, exec::Backend::kInterp)->Arg(4);
BENCHMARK_CAPTURE(BM_VmRhs, native, exec::Backend::kNative)->Arg(4);
BENCHMARK_CAPTURE(BM_VmRhs, interp, exec::Backend::kInterp)->Arg(10);
BENCHMARK_CAPTURE(BM_VmRhs, native, exec::Backend::kNative)->Arg(10);
BENCHMARK_CAPTURE(BM_VmRhs, interp, exec::Backend::kInterp)->Arg(40);
BENCHMARK_CAPTURE(BM_VmRhs, native, exec::Backend::kNative)->Arg(40);

void BM_ReferenceRhs(benchmark::State& state) {
  expr::Context ctx;
  model::FlatSystem f = make_bearing(ctx, 4);
  std::vector<double> y(f.num_states()), ydot(f.num_states());
  for (std::size_t i = 0; i < y.size(); ++i) {
    y[i] = f.states()[i].start;
  }
  for (auto _ : state) {
    f.eval_rhs(0.0, y, ydot);
    benchmark::DoNotOptimize(ydot[0]);
  }
}
BENCHMARK(BM_ReferenceRhs);

}  // namespace

BENCHMARK_MAIN();
