// Ablation bench for the design choices DESIGN.md calls out:
//  (a) communication analysis (§3.2.3 future work: "composition of smaller
//      messages instead of sending the whole state will be implemented in
//      the future") — send only the states each worker's tasks read,
//  (b) static LPT from instruction counts vs semi-dynamic measured-time
//      LPT (schedule quality on the virtual machine),
//  (c) task splitting of large equations (granularity knob of §3.2).
#include <cstdio>

#include "omx/models/bearing2d.hpp"
#include "omx/pipeline/pipeline.hpp"
#include "omx/runtime/simulated_machine.hpp"

int main() {
  using namespace omx;
  models::BearingConfig cfg;
  pipeline::CompiledModel cm = pipeline::compile_model(
      [&](expr::Context& ctx) { return models::build_bearing(ctx, cfg); });

  // (a) communication analysis on the high-latency machine.
  std::printf("(a) communication analysis (Parsytec GC/PP, full state vs"
              " needed states)\n");
  std::printf("%-8s %-16s %-16s %-9s\n", "workers", "broadcast [1/s]",
              "analyzed [1/s]", "bytes cut");
  const auto mm = runtime::MachineModel::parsytec_gcpp();
  runtime::SimulatedMachine all(cm.parallel_program, mm, false);
  runtime::SimulatedMachine needed(cm.parallel_program, mm, true);
  for (std::size_t w : {2, 4, 8, 16}) {
    const auto sched = sched::lpt_schedule(all.task_costs(), w);
    const auto ta = all.time_parallel_call(sched);
    const auto tn = needed.time_parallel_call(sched);
    std::printf("%-8zu %-16.0f %-16.0f %6.1f %%\n", w,
                ta.calls_per_second(), tn.calls_per_second(),
                100.0 * (1.0 - static_cast<double>(tn.bytes) /
                                   static_cast<double>(ta.bytes)));
  }

  // (b) schedule quality: static (instruction-count) LPT is already a good
  // predictor here because the tape has no branches; the interesting
  // number is the LPT makespan vs the lower bound.
  std::printf("\n(b) LPT schedule quality (instruction-count weights)\n");
  std::printf("%-8s %-12s %-12s %-10s\n", "workers", "makespan",
              "lower bound", "ratio");
  const auto costs = all.task_costs();
  for (std::size_t w : {2, 4, 8, 16}) {
    const auto sched = sched::lpt_schedule(costs, w);
    const double ms = sched::makespan(costs, sched);
    const double lb = sched::makespan_lower_bound(costs, w);
    std::printf("%-8zu %-12.3e %-12.3e %8.3f\n", w, ms, lb, ms / lb);
  }

  // (c) task splitting: large equations (the inner-ring force sums) are
  // split into partial sums, improving balance at high worker counts.
  std::printf("\n(c) task splitting (max_ops_per_task)\n");
  std::printf("%-12s %-8s %-20s %-20s\n", "max_ops", "tasks",
              "sparc 16w [1/s]", "parsytec 4w [1/s]");
  for (std::size_t max_ops : {0, 200, 100, 50}) {
    pipeline::CompileOptions copts;
    copts.tasks.max_ops_per_task = max_ops;
    pipeline::CompiledModel split = pipeline::compile_model(
        [&](expr::Context& ctx) { return models::build_bearing(ctx, cfg); },
        copts);
    runtime::SimulatedMachine s_sp(split.parallel_program,
                                   runtime::MachineModel::sparc_center_2000());
    runtime::SimulatedMachine s_pa(split.parallel_program,
                                   runtime::MachineModel::parsytec_gcpp());
    const auto c2 = s_sp.task_costs();
    std::printf("%-12zu %-8zu %-20.0f %-20.0f\n", max_ops,
                split.plan.tasks.size(),
                s_sp.time_parallel_call(sched::lpt_schedule(c2, 16))
                    .calls_per_second(),
                s_pa.time_parallel_call(sched::lpt_schedule(c2, 4))
                    .calls_per_second());
  }
  return 0;
}
