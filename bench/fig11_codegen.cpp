// Figure 11 reproduction: the three code forms for x' = y, y' = -x —
// normal form, type-annotated prefix intermediate form, and generated
// SPMD parallel Fortran 90 with one case per worker/task.
#include <cstdio>

#include "omx/codegen/fortran.hpp"
#include "omx/expr/printer.hpp"
#include "omx/models/oscillator.hpp"
#include "omx/pipeline/pipeline.hpp"

int main() {
  using namespace omx;
  pipeline::CompileOptions copts;
  copts.tasks.min_ops_per_task = 0;  // one task per equation, as in Fig 11
  pipeline::CompiledModel cm =
      pipeline::compile_model(models::build_oscillator, copts);
  expr::Context& ctx = *cm.ctx;

  std::printf("Figure 11 — normal form:\n{ ");
  for (std::size_t i = 0; i < cm.n(); ++i) {
    const auto& s = cm.flat->states()[i];
    std::printf("%s%s'[t] == %s", i ? ", " : "",
                ctx.names.name(s.name).c_str(),
                expr::to_infix(ctx.pool, ctx.names, s.rhs).c_str());
  }
  std::printf(" }\n\n");

  std::printf("Prefix form with type annotations:\nList[\n");
  expr::FullFormOptions ff;
  ff.annotate_types = true;
  for (const auto& s : cm.flat->states()) {
    std::printf("  Equal[Derivative[1][om$Type[%s, om$Real]][t],\n"
                "        %s],\n",
                ctx.names.name(s.name).c_str(),
                expr::to_fullform(ctx.pool, ctx.names, s.rhs, ff).c_str());
  }
  std::printf("]\n\n");

  codegen::EmitOptions eopts;
  eopts.with_helpers = false;
  const codegen::EmitResult f90 =
      codegen::emit_fortran_parallel(*cm.flat, cm.plan, eopts);
  std::printf("Generated parallel Fortran 90 (%zu lines, %zu declaration"
              " lines):\n%s\n", f90.total_lines, f90.decl_lines,
              f90.code.c_str());

  std::printf("paper vs measured:\n");
  std::printf("  one select-case branch per equation task: paper yes  "
              "measured %zu tasks [%s]\n", cm.plan.tasks.size(),
              cm.plan.tasks.size() == 2 ? "MATCH" : "MISMATCH");
  std::printf("  derivatives replaced by <var>dot assignments: %s\n",
              f90.code.find("dot = ") != std::string::npos ? "MATCH"
                                                           : "MISMATCH");
  return 0;
}
