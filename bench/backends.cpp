// Execution-backend shootout: serial RHS throughput of the tape
// interpreter vs the runtime-compiled native kernel on the 2-D bearing
// body (the paper's headline model). Prints a table and exports the
// rates, speedup and native-compile cost to BENCH_backends.json through
// the obs JSON metrics exporter so the trajectory can be tracked across
// revisions.
//
// The acceptance bar for this repo is native >= 2x interp on this body,
// and stealing >= static-LPT pool throughput (within the bench gate's
// tolerance) at 4 workers.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "omx/exec/native.hpp"
#include "omx/models/bearing2d.hpp"
#include "omx/obs/export.hpp"
#include "omx/obs/registry.hpp"
#include "omx/pipeline/pipeline.hpp"
#include "omx/runtime/parallel_rhs.hpp"

namespace {

/// Times repeated whole-system evals of any RHS-shaped callable; returns
/// calls per second.
template <typename Eval>
double time_eval(Eval&& eval, std::size_t n_out,
                 std::span<const double> y0) {
  using clock = std::chrono::steady_clock;
  std::vector<double> y(y0.begin(), y0.end());
  std::vector<double> ydot(n_out);

  // Warm up and calibrate the repetition count to ~0.3 s of work.
  std::size_t reps = 64;
  for (;;) {
    const auto t0 = clock::now();
    for (std::size_t i = 0; i < reps; ++i) {
      eval(0.0, y, ydot);
    }
    const double secs = std::chrono::duration<double>(clock::now() - t0)
                            .count();
    if (secs >= 0.3) {
      return static_cast<double>(reps) / secs;
    }
    reps = secs > 1e-6
               ? static_cast<std::size_t>(0.4 * static_cast<double>(reps) /
                                          secs) +
                     1
               : reps * 8;
  }
}

double time_kernel(const omx::exec::RhsKernel& k,
                   std::span<const double> y0) {
  return time_eval(k, k.n_out(), y0);
}

}  // namespace

int main() {
  using namespace omx;

  // The exported JSON must come out populated (and the compile-cost
  // counters live) even when the process-wide metric switch is off.
  obs::set_enabled(true);

  models::BearingConfig cfg;  // 10 rollers as in the paper
  pipeline::CompiledModel cm = pipeline::compile_model(
      [&](expr::Context& ctx) { return models::build_bearing(ctx, cfg); });

  std::vector<double> y0(cm.n());
  for (std::size_t i = 0; i < cm.n(); ++i) {
    y0[i] = cm.flat->states()[i].start;
  }

  const exec::KernelInstance interp =
      cm.make_kernel(exec::Backend::kInterp);
  const exec::KernelInstance native =
      cm.make_kernel(exec::Backend::kNative);
  const bool have_native = native.backend() == exec::Backend::kNative;

  std::printf("Execution backends: 2-D bearing (%d rollers, %zu states,"
              " %zu tape ops)\n\n",
              cfg.n_rollers, cm.n(), cm.serial_program.total_ops());
  std::printf("%-10s %-16s %s\n", "backend", "RHS calls/s", "ns/call");

  const double r_interp = time_kernel(interp.kernel(), y0);
  std::printf("%-10s %-16.0f %.0f\n", "interp", r_interp, 1e9 / r_interp);

  double r_native = 0.0;
  if (have_native) {
    r_native = time_kernel(native.kernel(), y0);
    std::printf("%-10s %-16.0f %.0f\n", "native", r_native, 1e9 / r_native);
  } else {
    std::printf("%-10s %-16s (no host compiler; fell back to interp)\n",
                "native", "n/a");
  }

  const double speedup = have_native ? r_native / r_interp : 0.0;
  if (have_native) {
    std::printf("\nnative/interp speedup: %.2fx  (bar: >= 2x) %s\n", speedup,
                speedup >= 2.0 ? "[MATCH]" : "[MISMATCH]");
  }

  // One-time compile cost, from the global registry the backend feeds.
  auto& g = obs::Registry::global();
  const double compile_s = g.gauge("backend.compile_seconds").value();
  std::printf("native compiles this run: %llu (cache hits %llu),"
              " last compile %.2f s\n",
              static_cast<unsigned long long>(
                  g.counter("backend.native.compiles").value()),
              static_cast<unsigned long long>(
                  g.counter("backend.native.cache_hits").value()),
              compile_s);

  // Worker pool: static LPT vs intra-call work stealing at 4 workers
  // over the ideal interconnect. compute_scale pads the task bodies so
  // thread coordination costs do not drown the comparison; the bench
  // gate requires stealing to hold static's throughput (the schedules
  // are already LPT-balanced, so parity — not speedup — is the bar; the
  // win case is a *mispredicted* schedule, exercised in the tests).
  constexpr std::size_t kPoolWorkers = 4;
  constexpr std::size_t kComputeScale = 20;
  pipeline::KernelOptions kopts;
  kopts.lanes = kPoolWorkers;
  const exec::KernelInstance pooled =
      cm.make_kernel(exec::Backend::kInterp, kopts);
  runtime::ParallelRhsOptions popts;
  popts.pool.num_workers = kPoolWorkers;
  popts.pool.net = runtime::Interconnect::ideal();
  popts.pool.compute_scale = kComputeScale;

  popts.pool.stealing = false;
  runtime::ParallelRhs rhs_static(pooled.kernel(), popts);
  const double r_static = time_eval(rhs_static, cm.n(), y0);

  popts.pool.stealing = true;
  runtime::ParallelRhs rhs_steal(pooled.kernel(), popts);
  const double r_steal = time_eval(rhs_steal, cm.n(), y0);

  const double steal_ratio = r_static > 0.0 ? r_steal / r_static : 0.0;
  std::printf("\nworker pool (%zu workers, compute_scale %zu, ideal"
              " net):\n", kPoolWorkers, kComputeScale);
  std::printf("%-10s %-16.0f %.0f\n", "static", r_static, 1e9 / r_static);
  std::printf("%-10s %-16.0f %.0f   (%llu tasks stolen)\n", "stealing",
              r_steal, 1e9 / r_steal,
              static_cast<unsigned long long>(rhs_steal.tasks_stolen()));
  std::printf("stealing/static throughput: %.2fx\n", steal_ratio);

  obs::Registry metrics;
  metrics.gauge("backends.n_states").set(static_cast<double>(cm.n()));
  metrics.gauge("backends.tape_ops")
      .set(static_cast<double>(cm.serial_program.total_ops()));
  metrics.gauge("backends.interp.calls_per_s").set(r_interp);
  metrics.gauge("backends.native.available").set(have_native ? 1.0 : 0.0);
  metrics.gauge("backends.native.calls_per_s").set(r_native);
  metrics.gauge("backends.native_over_interp").set(speedup);
  metrics.gauge("backends.native.compile_seconds").set(compile_s);
  metrics.gauge("backends.pool.workers")
      .set(static_cast<double>(kPoolWorkers));
  metrics.gauge("backends.pool.compute_scale")
      .set(static_cast<double>(kComputeScale));
  metrics.gauge("backends.pool.static.calls_per_s").set(r_static);
  metrics.gauge("backends.pool.stealing.calls_per_s").set(r_steal);
  metrics.gauge("backends.pool.stealing_over_static").set(steal_ratio);
  metrics.gauge("backends.pool.tasks_stolen")
      .set(static_cast<double>(rhs_steal.tasks_stolen()));
  const char* out_path = "BENCH_backends.json";
  if (obs::write_file(out_path, obs::metrics_json(metrics.snapshot()))) {
    std::printf("\nwrote %s\n", out_path);
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  return 0;
}
