// Figure 3 reproduction: dependency graph and strongly connected
// components for the hydroelectric power plant model.
//
// The paper's figure shows a collection of SCCs of mixed sizes (per-gate
// controller loops like "G1'IPart", "Gate'Angle", per-group throttles,
// "Dam'SurfaceLevel", "Regulator'IPart") connected by producer->consumer
// edges — i.e. several independent subsystems plus a pipeline. The claims
// under test: the model partitions into many SCCs, gate subsystems are
// mutually independent (parallel width >= number of gates), and
// downstream dam/turbine/regulator equations form pipeline stages.
#include <cstdio>

#include "omx/analysis/partition.hpp"
#include "omx/models/hydro.hpp"
#include "omx/pipeline/pipeline.hpp"

int main() {
  using namespace omx;
  pipeline::CompiledModel cm = pipeline::compile_model(models::build_hydro);

  std::printf("Figure 3: hydroelectric power plant dependency analysis\n");
  std::printf("states: %zu   algebraics: %zu\n\n", cm.n(),
              cm.flat->num_algebraics());
  std::printf("%s\n",
              analysis::format_partition_report(*cm.flat, cm.partition)
                  .c_str());

  const auto& p = cm.partition;
  std::printf("paper vs measured:\n");
  std::printf("  multiple SCCs:            paper yes (Fig 3)   measured %zu"
              " SCCs\n", p.num_subsystems());
  std::printf("  gates independent:        paper 6 groups      measured"
              " parallel width %zu\n", p.max_parallel_width());
  std::printf("  pipeline to dam/reg:      paper yes           measured"
              " depth %u\n", p.pipeline_depth());
  std::printf("  'partitions reasonably':  paper yes (sec 6)   measured %s\n",
              p.num_subsystems() >= 10 ? "yes" : "NO");
  return 0;
}
