// §2.1/§2.3 executed at the library level: solve_partitioned() runs one
// adaptive solver per SCC subsystem in condensation order ("pipe-line
// parallelism between the solution of equation systems: values produced
// from the solution of one system are continuously passed as input for
// the solution of another system").
//
// Workload: the hydro plant — fast gate servo loops upstream, slow dam /
// turbine / regulator dynamics downstream. Reports per-subsystem step
// sizes (the §2.3 claim "the average step size may increase") and the
// total-work comparison against the monolithic solve.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "omx/analysis/subsystem_solver.hpp"
#include "omx/model/flatten.hpp"
#include "omx/models/hydro.hpp"
#include "omx/ode/solve.hpp"

int main() {
  using namespace omx;
  expr::Context ctx;
  model::FlatSystem flat = model::flatten(models::build_hydro(ctx));
  const auto deps = analysis::analyze_dependencies(flat);
  const auto part = analysis::partition_by_scc(flat, deps);

  const double t0 = 0.0, tend = 120.0;
  analysis::PartitionedSolveOptions opts;
  opts.tol.rtol = 1e-7;
  opts.tol.atol = 1e-9;
  const auto ps = analysis::solve_partitioned(flat, part, t0, tend, opts);

  // Monolithic reference.
  ode::Problem mono;
  mono.n = flat.num_states();
  mono.set_rhs([&flat](double t, std::span<const double> y,
                       std::span<double> f) { flat.eval_rhs(t, y, f); });
  mono.t0 = t0;
  mono.tend = tend;
  for (const auto& s : flat.states()) {
    mono.y0.push_back(s.start);
  }
  ode::SolverOptions mo;
  mo.tol = opts.tol;
  mo.record_every = 1u << 30;
  const ode::Solution ms = ode::solve(mono, ode::Method::kDopri5, mo);

  std::printf("Partitioned (multirate) solve of the hydro plant, t in"
              " [0, %g]\n\n", tend);
  std::printf("%-40s %10s %12s\n", "subsystem (first member)", "steps",
              "avg step");
  for (std::size_t c = 0; c < part.num_subsystems(); ++c) {
    const int first = part.subsystems[c].states[0];
    std::printf("%-40s %10llu %12.4f\n",
                flat.state_name(static_cast<std::size_t>(first)).c_str(),
                static_cast<unsigned long long>(
                    ps.per_subsystem[c].stats.steps),
                ps.average_step(c, t0, tend));
  }
  std::printf("\nmonolithic: %llu steps, avg step %.4f, %llu RHS"
              " evaluations of all %zu states\n",
              static_cast<unsigned long long>(ms.stats.steps),
              tend / static_cast<double>(ms.stats.steps),
              static_cast<unsigned long long>(ms.stats.rhs_calls),
              flat.num_states());

  // Work comparison in state-evaluations: the monolithic solver evaluates
  // every equation at the GLOBAL (smallest) step; each subsystem solver
  // only evaluates its own equations at its own pace.
  const std::uint64_t mono_work = ms.stats.rhs_calls * flat.num_states();
  std::uint64_t split_work = 0;
  for (std::size_t c = 0; c < part.num_subsystems(); ++c) {
    split_work += ps.per_subsystem[c].stats.rhs_calls *
                  part.subsystems[c].states.size();
  }
  std::printf("work (rhs calls x states): monolithic %llu vs partitioned"
              " %llu  (%.2fx less)\n",
              static_cast<unsigned long long>(mono_work),
              static_cast<unsigned long long>(split_work),
              static_cast<double>(mono_work) /
                  static_cast<double>(split_work));

  // Verify agreement.
  double max_rel = 0.0;
  for (std::size_t i = 0; i < flat.num_states(); ++i) {
    const double a = ps.final_state[i];
    const double b = ms.final_state()[i];
    max_rel = std::max(max_rel,
                       std::fabs(a - b) / std::max(1.0, std::fabs(b)));
  }
  std::printf("max relative deviation from monolithic solve: %.2e\n",
              max_rel);
  std::printf("\npaper (sec 2.3): independent step sizes / fewer"
              " equations per solver  ->  %s\n",
              split_work < mono_work ? "reproduced" : "NOT reproduced");
  return 0;
}
