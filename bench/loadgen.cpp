// Service-tier load driver: N concurrent clients x M scenarios each
// against an omxd daemon, measuring end-to-end job latency (submit ->
// DONE) and streamed-frame integrity (every row the solver produced
// must arrive; a mismatch is a dropped frame).
//
// Each client runs closed-loop: compile the model (a cache hit for all
// but the first client), then submit one-scenario streaming jobs one
// after another, honoring RETRY backpressure with the server's backoff
// hint. Scenario initial states perturb the model's equilibrium like
// examples/param_sweep.cpp does, so jobs carry real solver work.
//
// Default mode spawns an in-process svc::Server (no daemon needed);
// --connect HOST:PORT drives an external omxd — the CI service job
// boots one and points this at it. Results export to
// BENCH_service.json for scripts/bench_gate.py gate_service.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "omx/obs/export.hpp"
#include "omx/obs/registry.hpp"
#include "omx/support/timer.hpp"
#include "omx/svc/client.hpp"
#include "omx/svc/server.hpp"

using namespace omx;

namespace {

struct Args {
  std::size_t clients = 8;
  std::size_t scenarios = 32;  // jobs per client
  std::string model = "bearing2d";
  int rollers = 10;
  std::string method = "dopri5";
  double tend = 0.005;
  std::size_t record_every = 8;
  std::string connect_host;  // empty = in-process server
  std::uint16_t connect_port = 0;
  std::size_t executors = 2;
  std::size_t queue_cap = 8;
  std::string out = "BENCH_service.json";
  // --autotune: submit multi-scenario jobs with "autotune": true so the
  // daemon's cost model calibrates on the early jobs (which cycle
  // through several worker/batch configs) and picks the configuration
  // for the later ones.
  bool autotune = false;
  std::size_t job_scenarios = 4;  // scenarios per job in autotune mode
};

struct ClientResult {
  std::vector<double> latencies_s;
  std::uint64_t jobs_ok = 0;
  std::uint64_t jobs_err = 0;
  std::uint64_t retries = 0;
  std::uint64_t frames = 0;
  std::uint64_t rows_streamed = 0;
  std::uint64_t rows_reported = 0;
};

double percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) {
    return 0.0;
  }
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

void run_client(const Args& args, const std::string& host,
                std::uint16_t port, std::size_t idx, ClientResult& out) {
  svc::Client client;
  client.connect(host, port);
  const svc::ModelInfo model =
      args.model == "oscillator"
          ? client.compile_builtin("oscillator")
          : client.compile_builtin(args.model, args.rollers);

  // Calibration diversity for --autotune: before the daemon's model is
  // ready, jobs run with the explicit config they carry, so cycling a
  // few distinct worker/batch shapes across jobs hands the model the
  // spread of configurations it needs to fit.
  static constexpr struct {
    std::size_t workers, max_batch;
  } kCalib[] = {{1, 1}, {2, 4}, {1, 8}, {2, 16}};

  for (std::size_t j = 0; j < args.scenarios; ++j) {
    svc::SubmitRequest req;
    req.model = model.model;
    req.method = args.method;
    req.tend = args.tend;
    req.scenarios = args.autotune ? args.job_scenarios : 1;
    req.record_every = args.record_every;
    if (args.autotune) {
      req.autotune = true;
      const auto& cfg = kCalib[j % (sizeof kCalib / sizeof kCalib[0])];
      req.workers = cfg.workers;
      req.max_batch = cfg.max_batch;
    }
    // Distinct initial condition per scenario, small against the bearing
    // clearance (same perturbation scheme as examples/param_sweep.cpp).
    for (std::size_t s = 0; s < req.scenarios; ++s) {
      std::vector<double> y0 = model.y0;
      if (y0.size() > 1) {
        const double frac =
            static_cast<double>(
                (idx * args.scenarios + j) * args.job_scenarios + s + 1) /
            static_cast<double>(
                args.clients * args.scenarios * args.job_scenarios + 1);
        y0[1] += frac * 1e-5;
      }
      req.y0s.insert(req.y0s.end(), y0.begin(), y0.end());
    }

    Stopwatch timer;
    svc::SubmitResult sub;
    for (;;) {
      sub = client.submit(req);
      if (sub.accepted) {
        break;
      }
      ++out.retries;
      std::this_thread::sleep_for(
          std::chrono::milliseconds(std::max(1, sub.retry_after_ms)));
    }

    // Closed loop: drain this job's stream until DONE.
    std::uint64_t rows_streamed = 0;
    for (;;) {
      svc::Event ev;
      if (!client.next_event(ev, 120000)) {
        std::fprintf(stderr, "loadgen: job %llu timed out\n",
                     static_cast<unsigned long long>(sub.job));
        ++out.jobs_err;
        break;
      }
      if (ev.kind == svc::Event::Kind::kFrame) {
        rows_streamed += ev.rows;
        ++out.frames;
        continue;
      }
      // DONE
      out.latencies_s.push_back(timer.seconds());
      std::uint64_t reported = 0;
      for (const std::uint64_t r : ev.row_counts) {
        reported += r;
      }
      out.rows_streamed += rows_streamed;
      out.rows_reported += reported;
      if (!ev.error.empty() || ev.cancelled) {
        ++out.jobs_err;
      } else {
        ++out.jobs_ok;
      }
      break;
    }
  }
  client.bye();
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "loadgen: missing value for %s\n",
                     arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--clients") {
      args.clients = static_cast<std::size_t>(std::atol(next()));
    } else if (arg == "--scenarios") {
      args.scenarios = static_cast<std::size_t>(std::atol(next()));
    } else if (arg == "--model") {
      args.model = next();
    } else if (arg == "--rollers") {
      args.rollers = std::atoi(next());
    } else if (arg == "--method") {
      args.method = next();
    } else if (arg == "--tend") {
      args.tend = std::atof(next());
    } else if (arg == "--record-every") {
      args.record_every = static_cast<std::size_t>(std::atol(next()));
    } else if (arg == "--executors") {
      args.executors = static_cast<std::size_t>(std::atol(next()));
    } else if (arg == "--queue-cap") {
      args.queue_cap = static_cast<std::size_t>(std::atol(next()));
    } else if (arg == "--out") {
      args.out = next();
    } else if (arg == "--autotune") {
      args.autotune = true;
    } else if (arg == "--job-scenarios") {
      args.job_scenarios =
          std::max<std::size_t>(1, static_cast<std::size_t>(std::atol(next())));
    } else if (arg == "--connect") {
      const std::string hp = next();
      const std::size_t colon = hp.rfind(':');
      if (colon == std::string::npos) {
        std::fprintf(stderr, "loadgen: --connect needs HOST:PORT\n");
        return 2;
      }
      args.connect_host = hp.substr(0, colon);
      args.connect_port =
          static_cast<std::uint16_t>(std::atoi(hp.c_str() + colon + 1));
    } else {
      std::fprintf(stderr, "loadgen: unknown flag %s\n", arg.c_str());
      return 2;
    }
  }

  // External daemon or an in-process server for self-contained runs.
  std::unique_ptr<svc::Server> server;
  std::string host = args.connect_host;
  std::uint16_t port = args.connect_port;
  if (host.empty()) {
    svc::ServerOptions so;
    so.executors = args.executors;
    so.queue_cap = args.queue_cap;
    server = std::make_unique<svc::Server>(so);
    server->start();
    host = "127.0.0.1";
    port = server->port();
    std::printf("loadgen: in-process server on port %u\n", port);
  }

  std::printf(
      "loadgen: %zu clients x %zu jobs, model=%s method=%s tend=%g\n",
      args.clients, args.scenarios, args.model.c_str(),
      args.method.c_str(), args.tend);

  std::vector<ClientResult> results(args.clients);
  Stopwatch wall;
  std::vector<std::thread> threads;
  threads.reserve(args.clients);
  for (std::size_t c = 0; c < args.clients; ++c) {
    threads.emplace_back([&, c] {
      try {
        run_client(args, host, port, c, results[c]);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "loadgen: client %zu failed: %s\n", c,
                     e.what());
        results[c].jobs_err += 1;
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  const double wall_s = wall.seconds();

  ClientResult total;
  for (const ClientResult& r : results) {
    total.jobs_ok += r.jobs_ok;
    total.jobs_err += r.jobs_err;
    total.retries += r.retries;
    total.frames += r.frames;
    total.rows_streamed += r.rows_streamed;
    total.rows_reported += r.rows_reported;
    total.latencies_s.insert(total.latencies_s.end(),
                             r.latencies_s.begin(), r.latencies_s.end());
  }
  std::sort(total.latencies_s.begin(), total.latencies_s.end());
  const double p50 = percentile(total.latencies_s, 0.50) * 1e3;
  const double p99 = percentile(total.latencies_s, 0.99) * 1e3;
  const std::uint64_t jobs_total = args.clients * args.scenarios;
  const std::uint64_t dropped =
      total.rows_reported >= total.rows_streamed
          ? total.rows_reported - total.rows_streamed
          : total.rows_streamed - total.rows_reported;
  const double jobs_per_s =
      wall_s > 0.0 ? static_cast<double>(jobs_total) / wall_s : 0.0;

  std::printf("loadgen: %llu/%llu ok, %llu retries, %llu frames, "
              "%llu dropped rows\n",
              static_cast<unsigned long long>(total.jobs_ok),
              static_cast<unsigned long long>(jobs_total),
              static_cast<unsigned long long>(total.retries),
              static_cast<unsigned long long>(total.frames),
              static_cast<unsigned long long>(dropped));
  std::printf("loadgen: p50 %.2f ms  p99 %.2f ms  %.1f jobs/s\n", p50, p99,
              jobs_per_s);

  obs::Registry metrics;
  metrics.gauge("service.clients").set(static_cast<double>(args.clients));
  metrics.gauge("service.scenarios_per_client")
      .set(static_cast<double>(args.scenarios));
  metrics.gauge("service.jobs_total").set(static_cast<double>(jobs_total));
  metrics.gauge("service.jobs_ok").set(static_cast<double>(total.jobs_ok));
  metrics.gauge("service.retries").set(static_cast<double>(total.retries));
  metrics.gauge("service.frames_total")
      .set(static_cast<double>(total.frames));
  metrics.gauge("service.rows_streamed")
      .set(static_cast<double>(total.rows_streamed));
  metrics.gauge("service.dropped_frames").set(static_cast<double>(dropped));
  metrics.gauge("service.p50_ms").set(p50);
  metrics.gauge("service.p99_ms").set(p99);
  metrics.gauge("service.p99_over_p50").set(p50 > 0.0 ? p99 / p50 : 0.0);
  metrics.gauge("service.jobs_per_s").set(jobs_per_s);
  metrics.gauge("service.wall_seconds").set(wall_s);
  metrics.gauge("service.autotune").set(args.autotune ? 1.0 : 0.0);
  metrics.gauge("service.hardware_concurrency")
      .set(static_cast<double>(std::thread::hardware_concurrency()));
  if (!obs::write_file(args.out, obs::metrics_json(metrics.snapshot()))) {
    std::fprintf(stderr, "loadgen: cannot write %s\n", args.out.c_str());
    return 1;
  }
  std::printf("loadgen: wrote %s\n", args.out.c_str());

  if (server) {
    server->stop();
  }
  // Dropped rows are a streaming-integrity failure even when every job
  // nominally succeeded — fail the run, not just the gate.
  return (total.jobs_ok == jobs_total && dropped == 0) ? 0 : 1;
}
