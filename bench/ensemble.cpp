// Ensemble sweep shootout: 256 perturbed bearing scenarios, three ways:
//
//   sequential — scenario-at-a-time, a plain ode::solve loop on one
//                thread (the status quo before the ensemble engine);
//   width 1    — solve_ensemble at 4 workers with batching disabled
//                (isolates the scheduler from the SoA batching);
//   batched    — solve_ensemble at 4 workers, 16-wide SoA batches.
//
// All three run identical per-lane step control, so the ratios isolate
// what the engine buys: worker parallelism plus tape dispatch amortized
// across lanes (interp) / contiguous SoA inner loops (native). Exports
// BENCH_ensemble.json for scripts/bench_gate.py; the repo bar is
// batched >= 3x sequential for the interpreter on a machine with >= 4
// cores (on smaller hosts only the batching amortization is gated —
// the exported hardware_concurrency tells the gate which bar applies).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <span>
#include <thread>
#include <vector>

#include "omx/models/bearing2d.hpp"
#include "omx/models/hybrid.hpp"
#include "omx/obs/export.hpp"
#include "omx/obs/registry.hpp"
#include "omx/ode/ensemble.hpp"
#include "omx/pipeline/pipeline.hpp"

namespace {

constexpr std::size_t kScenarios = 256;
constexpr std::size_t kWorkers = 4;
constexpr std::size_t kMaxBatch = 16;
constexpr double kTend = 0.02;

using clock_type = std::chrono::steady_clock;

double scen_per_sec(clock_type::time_point t0, std::size_t n) {
  const double secs =
      std::chrono::duration<double>(clock_type::now() - t0).count();
  return static_cast<double>(n) / secs;
}

bool bitwise_equal(const omx::ode::Solution& a,
                   const omx::ode::Solution& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double ta = a.time(i);
    const double tb = b.time(i);
    if (std::memcmp(&ta, &tb, sizeof(double)) != 0) {
      return false;
    }
    const std::span<const double> ya = a.state(i);
    const std::span<const double> yb = b.state(i);
    if (std::memcmp(ya.data(), yb.data(), ya.size_bytes()) != 0) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  using namespace omx;

  obs::set_enabled(true);

  models::BearingConfig cfg;  // 10 rollers as in the paper
  pipeline::CompiledModel cm = pipeline::compile_model(
      [&](expr::Context& ctx) { return models::build_bearing(ctx, cfg); });

  // Perturbed parameter sweep: each scenario displaces the start state a
  // little, so the lanes develop distinct adaptive step histories and
  // retire at different times (the repacking path is exercised).
  std::vector<double> y0(cm.n());
  for (std::size_t i = 0; i < cm.n(); ++i) {
    y0[i] = cm.flat->states()[i].start;
  }
  std::vector<std::vector<double>> starts;
  for (std::size_t s = 0; s < kScenarios; ++s) {
    std::vector<double> y = y0;
    for (std::size_t i = 0; i < y.size(); ++i) {
      y[i] += 1e-4 * static_cast<double>((i + 7 * s) % 13);
    }
    starts.push_back(std::move(y));
  }

  ode::SolverOptions o;
  o.record_every = 1u << 30;  // final state only; don't time appends

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("Ensemble sweep: 2-D bearing (%d rollers, %zu states),"
              " %zu scenarios, dopri5 to t=%g\n"
              "%zu workers, batch width %zu, %u hardware threads\n\n",
              cfg.n_rollers, cm.n(), kScenarios, kTend, kWorkers, kMaxBatch,
              hw);
  std::printf("%-24s %-14s %s\n", "configuration", "scenarios/s",
              "ms/scenario");

  auto report = [](const char* name, double rate) {
    std::printf("%-24s %-14.1f %.1f\n", name, rate, 1e3 / rate);
  };

  auto run_backend = [&](exec::Backend backend, double* sequential,
                         double* width1, double* batched) {
    pipeline::KernelOptions ko;
    ko.lanes = kWorkers;
    const exec::KernelInstance k = cm.make_kernel(backend, ko);
    if (k.backend() != backend) {
      return false;
    }
    const ode::Problem p = cm.make_problem(k, 0.0, kTend);

    // All three configurations stream through StatsOnlySink so the
    // comparison measures solver throughput, not trajectory
    // materialization (no Solution rows are retained).
    {
      ode::StatsOnlySink sink(1);
      const auto t0 = clock_type::now();
      for (const std::vector<double>& y : starts) {
        ode::Problem ps = p;
        ps.y0 = y;
        ode::solve(ps, ode::Method::kDopri5, o, sink);
      }
      *sequential = scen_per_sec(t0, kScenarios);
    }
    ode::EnsembleSpec spec;
    spec.initial_states = starts;
    spec.workers = kWorkers;
    for (const std::size_t width : {std::size_t{1}, kMaxBatch}) {
      spec.max_batch = width;
      ode::StatsOnlySink sink(kScenarios);
      const auto t0 = clock_type::now();
      ode::solve_ensemble(p, ode::Method::kDopri5, o, spec, sink);
      *(width == 1 ? width1 : batched) = scen_per_sec(t0, kScenarios);
    }
    return true;
  };

  double i_seq = 0.0, i_w1 = 0.0, i_bat = 0.0;
  run_backend(exec::Backend::kInterp, &i_seq, &i_w1, &i_bat);
  report("interp, sequential", i_seq);
  report("interp, width 1", i_w1);
  report("interp, batched", i_bat);
  const double i_ratio = i_bat / i_seq;
  const double i_amort = i_bat / i_w1;
  std::printf("interp batched/sequential: %.2fx  (bar: >= 3x on >= %zu"
              " cores) %s\n",
              i_ratio, kWorkers,
              i_ratio >= 3.0 ? "[MATCH]"
                             : (hw < kWorkers ? "[too few cores]"
                                              : "[MISMATCH]"));
  std::printf("interp batched/width-1:    %.2fx\n\n", i_amort);

  double n_seq = 0.0, n_w1 = 0.0, n_bat = 0.0;
  const bool have_native =
      run_backend(exec::Backend::kNative, &n_seq, &n_w1, &n_bat);
  if (have_native) {
    report("native, sequential", n_seq);
    report("native, width 1", n_w1);
    report("native, batched", n_bat);
    std::printf("native batched/sequential: %.2fx\n", n_bat / n_seq);
  } else {
    std::printf("%-24s (no host compiler; skipped)\n", "native");
  }

  std::printf("\nlast run: %.0f batched RHS lane-evals/s\n",
              obs::Registry::global()
                  .gauge("ensemble.rhs_calls_per_sec")
                  .value());

  // --- hybrid section: event-carrying lanes through the ensemble ------
  // 64 bouncing-ball scenarios with distinct drop heights: every lane
  // localizes impacts on its own schedule, so the engine exercises
  // desynchronized event sweeps, per-lane restarts and out-of-order
  // retirement. Correctness is exported alongside throughput —
  // bitwise_equal vs the sequential per-scenario solves and the total
  // event count are machine-independent and gated by bench_gate.py.
  constexpr std::size_t kHybridScenarios = 64;
  const models::BouncingBall ball;
  const ode::Problem hp = models::bouncing_ball_problem(ball, 1.8);
  ode::EnsembleSpec hspec;
  hspec.workers = kWorkers;
  hspec.max_batch = kMaxBatch;
  for (std::size_t i = 0; i < kHybridScenarios; ++i) {
    hspec.initial_states.push_back(
        {0.5 + 0.03 * static_cast<double>(i), 0.0});
  }
  ode::SolverOptions ho;  // default cadence: event rows are retained

  std::vector<ode::Solution> sequential_runs;
  double h_seq = 0.0;
  {
    const auto t0 = clock_type::now();
    for (const std::vector<double>& y : hspec.initial_states) {
      ode::Problem ps = hp;
      ps.y0 = y;
      sequential_runs.push_back(ode::solve(ps, ode::Method::kDopri5, ho));
    }
    h_seq = scen_per_sec(t0, kHybridScenarios);
  }
  double h_bat = 0.0;
  ode::EnsembleResult hybrid;
  {
    const auto t0 = clock_type::now();
    hybrid = ode::solve_ensemble(hp, ode::Method::kDopri5, ho, hspec);
    h_bat = scen_per_sec(t0, kHybridScenarios);
  }
  bool h_bitwise = hybrid.solutions.size() == sequential_runs.size();
  std::size_t h_events = 0;
  for (std::size_t i = 0; h_bitwise && i < sequential_runs.size(); ++i) {
    h_bitwise = bitwise_equal(hybrid.solutions[i], sequential_runs[i]);
    h_events += hybrid.solutions[i].stats.events;
  }

  std::printf("\nHybrid: %zu bouncing-ball lanes (events on), dopri5\n",
              kHybridScenarios);
  report("hybrid, sequential", h_seq);
  report("hybrid, batched", h_bat);
  std::printf("hybrid events fired: %zu   ensemble == sequential: %s\n",
              h_events, h_bitwise ? "bitwise [MATCH]" : "[MISMATCH]");

  obs::Registry metrics;
  metrics.gauge("ensemble.hybrid.scenarios")
      .set(static_cast<double>(kHybridScenarios));
  metrics.gauge("ensemble.hybrid.bitwise_equal").set(h_bitwise ? 1.0 : 0.0);
  metrics.gauge("ensemble.hybrid.events_fired")
      .set(static_cast<double>(h_events));
  metrics.gauge("ensemble.hybrid.sequential.scen_per_s").set(h_seq);
  metrics.gauge("ensemble.hybrid.batched.scen_per_s").set(h_bat);
  metrics.gauge("ensemble.hybrid.batched_over_sequential")
      .set(h_seq > 0.0 ? h_bat / h_seq : 0.0);
  metrics.gauge("ensemble.scenarios")
      .set(static_cast<double>(kScenarios));
  metrics.gauge("ensemble.workers").set(static_cast<double>(kWorkers));
  metrics.gauge("ensemble.max_batch").set(static_cast<double>(kMaxBatch));
  metrics.gauge("ensemble.hardware_concurrency")
      .set(static_cast<double>(hw));
  metrics.gauge("ensemble.interp.sequential.scen_per_s").set(i_seq);
  metrics.gauge("ensemble.interp.width1.scen_per_s").set(i_w1);
  metrics.gauge("ensemble.interp.batched.scen_per_s").set(i_bat);
  metrics.gauge("ensemble.interp.batched_over_sequential").set(i_ratio);
  metrics.gauge("ensemble.interp.batched_over_width1").set(i_amort);
  metrics.gauge("ensemble.native.available").set(have_native ? 1.0 : 0.0);
  metrics.gauge("ensemble.native.sequential.scen_per_s").set(n_seq);
  metrics.gauge("ensemble.native.width1.scen_per_s").set(n_w1);
  metrics.gauge("ensemble.native.batched.scen_per_s").set(n_bat);
  metrics.gauge("ensemble.native.batched_over_sequential")
      .set(n_seq > 0.0 ? n_bat / n_seq : 0.0);
  const char* out_path = "BENCH_ensemble.json";
  if (obs::write_file(out_path, obs::metrics_json(metrics.snapshot()))) {
    std::printf("wrote %s\n", out_path);
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  return 0;
}
