// Auto-tuning shootout: does the fitted cost model pick a configuration
// competitive with exhaustive search, at a fraction of the cost?
//
// Two workloads, the same protocol for each:
//
//   1. calibrate — a handful of cheap probe runs (a scenario subset for
//      the ensemble, a truncated time window for the stiff solve) under
//      OMX_TUNE=calibrate feed the tune::AutoTuner cost models;
//   2. exhaustive — every configuration on the candidate grid is
//      measured at full size (min over repetitions), tuning off;
//   3. compare — the tuner's pick is looked up IN the exhaustive table:
//      auto_over_best = measured(picked) / min(measured). The gate bar
//      is <= 1.10 ("within 10% of the best exhaustive config"), checked
//      by scripts/bench_gate.py gate_autotune.
//
// Workload A: the bearing ensemble (dopri5, interp) over a
// workers x batch-width grid — the knobs solve_ensemble's LPT-style
// deal actually has. Workload B: the n=128 heat-PDE stiff solve (BDF)
// over backend (dense/sparse LU) x Jacobian build threads.
//
// Both workloads also run once end-to-end with OMX_TUNE=on and check
// the tuned result is bitwise identical to the untuned one: tuning only
// moves work between workers/batches/backends whose results are
// bitwise-pinned by construction, so it can never change answers.
//
// Exports BENCH_autotune.json (gauges, gated) and
// BENCH_autotune_model.json (fitted coefficients + residuals, rendered
// by scripts/obs_report.py --tune).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "omx/models/bearing2d.hpp"
#include "omx/models/heat1d.hpp"
#include "omx/obs/export.hpp"
#include "omx/obs/registry.hpp"
#include "omx/ode/ensemble.hpp"
#include "omx/ode/solve.hpp"
#include "omx/pipeline/pipeline.hpp"
#include "omx/tune/autotuner.hpp"

namespace {

using clock_type = std::chrono::steady_clock;

// Candidate grids. The tuner pick below is asked for exactly these caps,
// so its answer is always one of the measured sweep entries (pow2_grid
// inside tune::EnsembleModel::pick enumerates powers of two up to the
// cap — the same sets as here).
constexpr std::size_t kScenarios = 64;
constexpr std::size_t kCalibScenarios = 24;
constexpr double kTend = 0.005;
const std::size_t kWorkerGrid[] = {1, 2};
const std::size_t kBatchGrid[] = {1, 2, 4, 8, 16};

constexpr int kHeatCells = 128;
constexpr double kHeatTend = 0.05;
constexpr double kHeatCalibTend = 0.01;
const int kThreadGrid[] = {1, 2, 4};

double seconds_since(clock_type::time_point t0) {
  return std::chrono::duration<double>(clock_type::now() - t0).count();
}

bool bitwise_equal(const omx::ode::Solution& a, const omx::ode::Solution& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double ta = a.time(i);
    const double tb = b.time(i);
    if (std::memcmp(&ta, &tb, sizeof(double)) != 0) {
      return false;
    }
    const std::span<const double> ya = a.state(i);
    const std::span<const double> yb = b.state(i);
    if (ya.size() != yb.size() ||
        std::memcmp(ya.data(), yb.data(), ya.size_bytes()) != 0) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  using namespace omx;

  obs::set_enabled(true);
  obs::Registry metrics;
  const unsigned hw = std::thread::hardware_concurrency();
  metrics.gauge("autotune.hardware_concurrency").set(static_cast<double>(hw));

  // ================================================== bearing ensemble
  models::BearingConfig cfg;  // 10 rollers as in the paper
  pipeline::CompiledModel cm = pipeline::compile_model(
      [&](expr::Context& ctx) { return models::build_bearing(ctx, cfg); });
  pipeline::KernelOptions ko;
  ko.lanes = kWorkerGrid[sizeof kWorkerGrid / sizeof kWorkerGrid[0] - 1];
  const exec::KernelInstance kernel =
      cm.make_kernel(exec::Backend::kInterp, ko);
  const ode::Problem bearing = cm.make_problem(kernel, 0.0, kTend);

  std::vector<std::vector<double>> starts;
  for (std::size_t s = 0; s < kScenarios; ++s) {
    std::vector<double> y(cm.n());
    for (std::size_t i = 0; i < cm.n(); ++i) {
      y[i] = cm.flat->states()[i].start +
             1e-4 * static_cast<double>((i + 7 * s) % 13);
    }
    starts.push_back(std::move(y));
  }

  ode::SolverOptions eo;
  eo.record_every = 1u << 30;  // final state only

  auto run_ensemble = [&](std::size_t workers, std::size_t batch,
                          std::size_t scenarios) {
    ode::EnsembleSpec spec;
    spec.initial_states.assign(starts.begin(), starts.begin() + scenarios);
    spec.workers = workers;
    spec.max_batch = batch;
    ode::StatsOnlySink sink(scenarios);
    const auto t0 = clock_type::now();
    ode::solve_ensemble(bearing, ode::Method::kDopri5, eo, spec, sink);
    return seconds_since(t0);
  };

  std::printf("Auto-tuning: bearing ensemble (%zu states), %zu scenarios, "
              "dopri5 to t=%g, %u hardware threads\n\n",
              cm.n(), kScenarios, kTend, hw);

  // Calibration: a few probe configs on a scenario subset, recorded into
  // the tuner (OMX_TUNE=calibrate semantics, set programmatically so the
  // surrounding sweep stays untuned).
  tune::AutoTuner::global().reset();
  tune::set_mode(tune::Mode::kCalibrate);
  const struct {
    std::size_t w, b;
  } kProbes[] = {{1, 1}, {1, 16}, {2, 4}, {2, 16}, {1, 4}};
  const auto calib0 = clock_type::now();
  for (const auto& probe : kProbes) {
    run_ensemble(probe.w, probe.b, kCalibScenarios);
  }
  const double ens_calib_s = seconds_since(calib0);
  tune::set_mode(tune::Mode::kOff);

  // Exhaustive sweep at full size, tuning off: min of 2 reps per config.
  std::map<std::pair<std::size_t, std::size_t>, double> sweep;
  const auto sweep0 = clock_type::now();
  for (const std::size_t w : kWorkerGrid) {
    for (const std::size_t b : kBatchGrid) {
      double best = 1e300;
      for (int rep = 0; rep < 2; ++rep) {
        best = std::min(best, run_ensemble(w, b, kScenarios));
      }
      sweep[{w, b}] = best;
    }
  }
  const double ens_sweep_s = seconds_since(sweep0);

  std::size_t best_w = 0, best_b = 0;
  double best_s = 1e300;
  std::printf("%-10s %-8s %s\n", "workers", "batch", "seconds");
  for (const auto& [cfg_wb, secs] : sweep) {
    std::printf("%-10zu %-8zu %.4f\n", cfg_wb.first, cfg_wb.second, secs);
    if (secs < best_s) {
      best_s = secs;
      best_w = cfg_wb.first;
      best_b = cfg_wb.second;
    }
  }

  const std::optional<tune::EnsembleConfig> pick =
      tune::AutoTuner::global().pick_ensemble(
          bearing.n, kScenarios,
          kWorkerGrid[sizeof kWorkerGrid / sizeof kWorkerGrid[0] - 1],
          kBatchGrid[sizeof kBatchGrid / sizeof kBatchGrid[0] - 1]);
  if (!pick) {
    std::fprintf(stderr, "autotune: ensemble model never became ready\n");
    return 1;
  }
  const double picked_s = sweep.at({pick->workers, pick->max_batch});
  const double ens_ratio = picked_s / best_s;
  std::printf(
      "\nbest exhaustive: W=%zu B=%zu (%.4f s)\n"
      "tuner pick:      W=%zu B=%zu (%.4f s measured, %.4f s predicted)\n"
      "auto/best: %.3fx   calibration cost: %.2f s vs %.2f s sweep\n",
      best_w, best_b, best_s, pick->workers, pick->max_batch, picked_s,
      pick->predicted_seconds, ens_ratio, ens_calib_s, ens_sweep_s);

  // End-to-end OMX_TUNE=on run: solve_ensemble consults the tuner itself
  // and must produce bitwise-identical trajectories to the untuned run.
  ode::EnsembleSpec dspec;
  dspec.initial_states = starts;
  dspec.workers = 1;
  dspec.max_batch = 1;
  const ode::EnsembleResult untuned =
      ode::solve_ensemble(bearing, ode::Method::kDopri5, eo, dspec);
  tune::set_mode(tune::Mode::kOn);
  const ode::EnsembleResult tuned =
      ode::solve_ensemble(bearing, ode::Method::kDopri5, eo, dspec);
  tune::set_mode(tune::Mode::kOff);
  bool ens_bitwise = untuned.solutions.size() == tuned.solutions.size();
  for (std::size_t i = 0; ens_bitwise && i < tuned.solutions.size(); ++i) {
    ens_bitwise = bitwise_equal(untuned.solutions[i], tuned.solutions[i]);
  }
  std::printf("tuned run bitwise == untuned: %s\n\n",
              ens_bitwise ? "yes [MATCH]" : "NO [MISMATCH]");

  metrics.gauge("autotune.bearing.scenarios")
      .set(static_cast<double>(kScenarios));
  metrics.gauge("autotune.bearing.auto_over_best").set(ens_ratio);
  metrics.gauge("autotune.bearing.best_workers")
      .set(static_cast<double>(best_w));
  metrics.gauge("autotune.bearing.best_batch")
      .set(static_cast<double>(best_b));
  metrics.gauge("autotune.bearing.picked_workers")
      .set(static_cast<double>(pick->workers));
  metrics.gauge("autotune.bearing.picked_batch")
      .set(static_cast<double>(pick->max_batch));
  metrics.gauge("autotune.bearing.best_seconds").set(best_s);
  metrics.gauge("autotune.bearing.picked_seconds").set(picked_s);
  metrics.gauge("autotune.bearing.predicted_seconds")
      .set(pick->predicted_seconds);
  metrics.gauge("autotune.bearing.calibration_seconds").set(ens_calib_s);
  metrics.gauge("autotune.bearing.exhaustive_seconds").set(ens_sweep_s);
  metrics.gauge("autotune.bearing.tuned_bitwise_equal")
      .set(ens_bitwise ? 1.0 : 0.0);

  // ================================================== heat-PDE stiff
  models::Heat1dConfig hcfg;
  hcfg.n_cells = kHeatCells;
  pipeline::CompiledModel hcm = pipeline::compile_model(
      [&hcfg](expr::Context& ctx) { return models::build_heat1d(ctx, hcfg); });
  ode::SolverOptions so;
  so.tol.rtol = 1e-6;
  so.tol.atol = 1e-9;
  so.record_every = 1u << 30;

  // One solve under an explicit (backend, threads) config. Sub-ms solves
  // are noise-dominated one at a time, so each measurement is the mean
  // over a small inner loop.
  auto run_heat = [&](bool sparse, int threads, double tend, int loops) {
    ::setenv(sparse ? "OMX_SPARSE_FORCE" : "OMX_SPARSE_DISABLE", "1", 1);
    ode::Problem p = hcm.make_problem(exec::Backend::kInterp, 0.0, tend);
    ode::SolverOptions o = so;
    o.jac_threads = threads;
    const auto t0 = clock_type::now();
    for (int i = 0; i < loops; ++i) {
      ode::StatsOnlySink sink(1);
      ode::solve(p, ode::Method::kBdf, o, sink);
    }
    const double secs = seconds_since(t0) / loops;
    ::unsetenv("OMX_SPARSE_FORCE");
    ::unsetenv("OMX_SPARSE_DISABLE");
    return secs;
  };

  std::printf("Auto-tuning: heat PDE n=%d stiff solve (BDF), backend x "
              "jac-threads grid\n\n",
              kHeatCells);

  // Calibration on the truncated window: absolute seconds shrink ~5x but
  // the backend/thread ranking carries over, which is all pick() needs.
  // Each probe records one observation per inner solve via ode::solve's
  // tune hook.
  tune::set_mode(tune::Mode::kCalibrate);
  const auto hcalib0 = clock_type::now();
  for (const bool sparse : {false, true}) {
    for (const int t : kThreadGrid) {
      run_heat(sparse, t, kHeatCalibTend, 6);
    }
  }
  const double heat_calib_s = seconds_since(hcalib0);
  tune::set_mode(tune::Mode::kOff);

  // Exhaustive sweep on the full window, tuning off.
  std::map<std::pair<bool, int>, double> hsweep;
  const auto hsweep0 = clock_type::now();
  for (const bool sparse : {false, true}) {
    for (const int t : kThreadGrid) {
      double best = 1e300;
      for (int rep = 0; rep < 2; ++rep) {
        best = std::min(best, run_heat(sparse, t, kHeatTend, 8));
      }
      hsweep[{sparse, t}] = best;
    }
  }
  const double heat_sweep_s = seconds_since(hsweep0);

  bool hbest_sparse = false;
  int hbest_t = 0;
  double hbest_s = 1e300;
  std::printf("%-10s %-8s %s\n", "backend", "threads", "ms/solve");
  for (const auto& [cfg_bt, secs] : hsweep) {
    std::printf("%-10s %-8d %.3f\n", cfg_bt.first ? "sparse" : "dense",
                cfg_bt.second, secs * 1e3);
    if (secs < hbest_s) {
      hbest_s = secs;
      hbest_sparse = cfg_bt.first;
      hbest_t = cfg_bt.second;
    }
  }

  const std::optional<tune::StiffConfig> hpick =
      tune::AutoTuner::global().pick_stiff(
          static_cast<std::size_t>(kHeatCells),
          kThreadGrid[sizeof kThreadGrid / sizeof kThreadGrid[0] - 1]);
  if (!hpick) {
    std::fprintf(stderr, "autotune: stiff model never became ready\n");
    return 1;
  }
  const double hpicked_s = hsweep.at({hpick->sparse, hpick->jac_threads});
  const double heat_ratio = hpicked_s / hbest_s;
  std::printf(
      "\nbest exhaustive: %s T=%d (%.3f ms)\n"
      "tuner pick:      %s T=%d (%.3f ms measured)\n"
      "auto/best: %.3fx   calibration cost: %.2f s vs %.2f s sweep\n",
      hbest_sparse ? "sparse" : "dense", hbest_t, hbest_s * 1e3,
      hpick->sparse ? "sparse" : "dense", hpick->jac_threads,
      hpicked_s * 1e3, heat_ratio, heat_calib_s, heat_sweep_s);

  // End-to-end OMX_TUNE=on stiff solve: make_jac_plan takes the backend
  // verdict from the model, solve() takes jac_threads from it. Sparse LU
  // (natural ordering), dense LU, and any thread count all produce
  // bitwise-identical solutions, so tuning must not change the answer.
  const ode::Problem href =
      hcm.make_problem(exec::Backend::kInterp, 0.0, kHeatTend);
  const ode::Solution huntuned = ode::solve(href, ode::Method::kBdf, so);
  tune::set_mode(tune::Mode::kOn);
  const ode::Solution htuned = ode::solve(href, ode::Method::kBdf, so);
  tune::set_mode(tune::Mode::kOff);
  const bool heat_bitwise = bitwise_equal(huntuned, htuned);
  std::printf("tuned solve bitwise == untuned: %s\n\n",
              heat_bitwise ? "yes [MATCH]" : "NO [MISMATCH]");

  metrics.gauge("autotune.heat.n").set(static_cast<double>(kHeatCells));
  metrics.gauge("autotune.heat.auto_over_best").set(heat_ratio);
  metrics.gauge("autotune.heat.best_sparse").set(hbest_sparse ? 1.0 : 0.0);
  metrics.gauge("autotune.heat.best_threads")
      .set(static_cast<double>(hbest_t));
  metrics.gauge("autotune.heat.picked_sparse")
      .set(hpick->sparse ? 1.0 : 0.0);
  metrics.gauge("autotune.heat.picked_threads")
      .set(static_cast<double>(hpick->jac_threads));
  metrics.gauge("autotune.heat.best_seconds").set(hbest_s);
  metrics.gauge("autotune.heat.picked_seconds").set(hpicked_s);
  metrics.gauge("autotune.heat.calibration_seconds").set(heat_calib_s);
  metrics.gauge("autotune.heat.exhaustive_seconds").set(heat_sweep_s);
  metrics.gauge("autotune.heat.tuned_bitwise_equal")
      .set(heat_bitwise ? 1.0 : 0.0);

  // Residual quality, report-only in the gate: r2 of the fitted models.
  {
    const std::string mj = tune::AutoTuner::global().model_json();
    if (!obs::validate_json(mj)) {
      std::fprintf(stderr, "autotune: model_json failed validation\n");
      return 1;
    }
    if (!obs::write_file("BENCH_autotune_model.json", mj)) {
      std::fprintf(stderr, "cannot write BENCH_autotune_model.json\n");
      return 1;
    }
    std::printf("wrote BENCH_autotune_model.json\n");
  }

  const char* out_path = "BENCH_autotune.json";
  if (!obs::write_file(out_path, obs::metrics_json(metrics.snapshot()))) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::printf("wrote %s\n", out_path);
  return 0;
}
