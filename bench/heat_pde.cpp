// §6 future-work extension: PDE support via the method of lines.
//
// "We have also started to extend the domain of equation systems for
// which code can be generated to partial differential equations." This
// bench runs the 1-D heat equation through the full pipeline and shows
// the two facts that matter for the paper's parallelization story:
//  (a) grid refinement makes the semidiscrete system stiff — the implicit
//      (BDF + generated symbolic Jacobian) path takes over from explicit
//      methods exactly as §3.2.1 anticipates, and
//  (b) the discretization is one big SCC (like the bearing), so PDE
//      workloads also rely on equation-level parallelism; RHS throughput
//      scales on the simulated machines.
#include <cstdio>

#include "omx/models/heat1d.hpp"
#include "omx/ode/solve.hpp"
#include "omx/pipeline/pipeline.hpp"
#include "omx/runtime/simulated_machine.hpp"

int main() {
  using namespace omx;

  std::printf("(a) stiffness vs grid resolution (t in [0, 0.2], rtol"
              " 1e-6)\n");
  std::printf("%-8s %-12s %-16s %-16s %-10s\n", "cells", "|lambda|max",
              "DOPRI5 steps", "BDF2 steps", "ratio");
  for (int cells : {10, 20, 40, 80}) {
    models::Heat1dConfig cfg;
    cfg.n_cells = cells;
    pipeline::CompileOptions copts;
    copts.build_jacobian = true;
    pipeline::CompiledModel cm = pipeline::compile_model(
        [&](expr::Context& ctx) { return models::build_heat1d(ctx, cfg); },
        copts);
    ode::Problem p = cm.make_problem(exec::Backend::kInterp, 0.0, 0.2);
    cm.bind_symbolic_jacobian(p);

    ode::SolverOptions o;
    o.tol.rtol = 1e-6;
    o.record_every = 1u << 30;
    o.bdf_max_order = 2;
    const ode::Solution se = ode::solve(p, ode::Method::kDopri5, o);
    const ode::Solution sb = ode::solve(p, ode::Method::kBdf, o);

    const double dx = 1.0 / (cells + 1);
    std::printf("%-8d %-12.0f %-16llu %-16llu %8.1f\n", cells,
                4.0 * cfg.alpha / (dx * dx),
                static_cast<unsigned long long>(se.stats.steps),
                static_cast<unsigned long long>(sb.stats.steps),
                static_cast<double>(se.stats.steps) /
                    static_cast<double>(sb.stats.steps));
  }
  std::printf("  -> explicit/implicit step ratio grows with resolution:"
              " the implicit-solver path (with\n     generated symbolic"
              " Jacobian, sec 3.2.1) is what makes PDE models tractable\n");

  // (b) structure + equation-level throughput.
  models::Heat1dConfig big;
  big.n_cells = 200;
  pipeline::CompiledModel cm = pipeline::compile_model(
      [&](expr::Context& ctx) { return models::build_heat1d(ctx, big); });
  std::printf("\n(b) 200-cell rod: %zu SCC(s) (like the bearing: only"
              " equation-level parallelism)\n",
              cm.partition.num_subsystems());
  std::printf("%-8s %-22s %-22s\n", "procs", "SparcCenter2000 [1/s]",
              "Parsytec GC/PP [1/s]");
  runtime::SimulatedMachine sparc(cm.parallel_program,
                                  runtime::MachineModel::sparc_center_2000());
  runtime::SimulatedMachine pars(cm.parallel_program,
                                 runtime::MachineModel::parsytec_gcpp());
  for (std::size_t p : {1, 2, 4, 8}) {
    double a, b;
    if (p == 1) {
      a = sparc.time_serial_call().calls_per_second();
      b = pars.time_serial_call().calls_per_second();
    } else {
      a = sparc
              .time_parallel_call(
                  sched::lpt_schedule(sparc.task_costs(), p - 1))
              .calls_per_second();
      b = pars
              .time_parallel_call(
                  sched::lpt_schedule(pars.task_costs(), p - 1))
              .calls_per_second();
    }
    std::printf("%-8zu %-22.0f %-22.0f\n", p, a, b);
  }
  return 0;
}
