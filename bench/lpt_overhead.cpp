// §3.2.3 reproduction: "This semi-dynamic version of the LPT algorithm
// consumes less than 1% of the execution time for the 2D bearing
// simulation examples so far investigated."
//
// Measures, on the real thread-pool runtime: total eval time vs the time
// spent recording measured task times + rebuilding the LPT schedule.
#include <cstdio>

#include "omx/models/bearing2d.hpp"
#include "omx/pipeline/pipeline.hpp"

int main() {
  using namespace omx;
  models::BearingConfig cfg;
  pipeline::CompiledModel cm = pipeline::compile_model(
      [&](expr::Context& ctx) { return models::build_bearing(ctx, cfg); });

  std::printf("Semi-dynamic LPT overhead (2-D bearing, %zu tasks)\n\n",
              cm.plan.tasks.size());
  std::printf("%-9s %-12s %-12s %-13s %-11s %s\n", "workers", "period",
              "rhs calls", "reschedules", "overhead", "paper claim");

  bool all_ok = true;
  for (std::size_t workers : {2, 4}) {
    for (std::size_t period : {1, 4, 16}) {
      runtime::ParallelRhsOptions opts;
      opts.pool.num_workers = workers;
      // Make the RHS heavy enough that overhead percentages are about
      // work, not thread-wakeup noise (mirrors the 1995 granularity).
      opts.pool.compute_scale = 64;
      opts.sched.reschedule_period = period;
      pipeline::KernelOptions ko;
      ko.lanes = workers;
      exec::KernelInstance kern = cm.make_kernel(exec::Backend::kInterp, ko);
      runtime::ParallelRhs rhs(kern.kernel(), opts);

      std::vector<double> y(cm.n()), ydot(cm.n());
      for (std::size_t i = 0; i < cm.n(); ++i) {
        y[i] = cm.flat->states()[i].start;
      }
      const std::size_t calls = 300;
      for (std::size_t c = 0; c < calls; ++c) {
        rhs.eval(0.0, y, ydot);
      }
      const double pct =
          100.0 * rhs.scheduling_seconds() / rhs.eval_seconds();
      const bool ok = pct < 1.0;
      all_ok = all_ok && ok;
      std::printf("%-9zu %-12zu %-12llu %-13zu %8.3f %%   %s\n", workers,
                  period,
                  static_cast<unsigned long long>(rhs.rhs_calls()),
                  rhs.num_reschedules(), pct,
                  ok ? "< 1% [MATCH]" : ">= 1% [MISMATCH]");
    }
  }
  std::printf("\noverall: %s the paper's <1%% scheduling-overhead claim\n",
              all_ok ? "reproduces" : "VIOLATES");
  return 0;
}
