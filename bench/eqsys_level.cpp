// §2.1/§2.5 reproduction: parallelism at the SYSTEM-of-equations level.
//
// The paper's conclusion: SCC partitioning pays off for the hydro plant
// and the servo ("could be reasonably parallelized through such
// partitioning") but not for the bearing ("only yielded two SCCs, where
// all the computation was embedded in one of them"). This bench computes,
// per model, the critical-path speedup bound of the subsystem schedule
// (work / weighted critical path through the condensation) and the
// available pipeline depth.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "omx/analysis/partition.hpp"
#include "omx/models/bearing2d.hpp"
#include "omx/models/hydro.hpp"
#include "omx/models/servo.hpp"
#include "omx/pipeline/pipeline.hpp"

namespace {

using omx::pipeline::CompiledModel;

struct SubsystemMetrics {
  double speedup_bound = 0.0;  // total work / critical path
  std::size_t sccs = 0;
  std::size_t width = 0;
  std::uint32_t depth = 0;
};

SubsystemMetrics analyze(CompiledModel& cm) {
  // Weight per subsystem: DAG op count of its member equations (with
  // algebraics inlined — the actual computation in that subsystem).
  const auto& part = cm.partition;
  std::vector<double> weight(part.num_subsystems(), 0.0);
  for (std::size_t c = 0; c < part.num_subsystems(); ++c) {
    for (int s : part.subsystems[c].states) {
      const auto rhs = omx::codegen::inline_algebraics(
          *cm.flat, cm.flat->states()[static_cast<std::size_t>(s)].rhs);
      weight[c] += static_cast<double>(cm.ctx->pool.dag_op_count(rhs));
    }
  }
  // Critical path through the condensation (longest weighted path).
  const auto order = cm.partition.condensation.topological_order();
  std::vector<double> path(part.num_subsystems(), 0.0);
  double critical = 0.0, total = 0.0;
  for (auto c : order) {
    path[c] += weight[c];
    critical = std::max(critical, path[c]);
    total += weight[c];
    for (auto succ : cm.partition.condensation.successors(c)) {
      path[succ] = std::max(path[succ], path[c]);
    }
  }
  SubsystemMetrics m;
  m.speedup_bound = total / critical;
  m.sccs = part.num_subsystems();
  m.width = part.max_parallel_width();
  m.depth = part.pipeline_depth();
  return m;
}

}  // namespace

int main() {
  using namespace omx;

  struct Row {
    const char* name;
    pipeline::ModelBuilder builder;
    const char* paper;
    bool expect_useful;
  };
  const Row rows[] = {
      {"hydro plant", models::build_hydro,
       "partitions (Fig 3)", true},
      {"servo (3 axes)", models::build_servo,
       "'trivial servo' partitions", true},
      {"2-D bearing", [](expr::Context& ctx) {
         return models::build_bearing(ctx, models::BearingConfig{});
       },
       "does NOT partition (Fig 6)", false},
  };

  std::printf("Equation-system-level parallelism (Sections 2.1, 2.5, 6)\n\n");
  std::printf("%-16s %6s %7s %7s %14s   %-28s %s\n", "model", "SCCs",
              "width", "depth", "speedup bound", "paper", "verdict");
  for (const Row& r : rows) {
    pipeline::CompiledModel cm = pipeline::compile_model(r.builder);
    const SubsystemMetrics m = analyze(cm);
    const bool useful = m.speedup_bound > 1.5;
    std::printf("%-16s %6zu %7zu %7u %13.2fx   %-28s %s\n", r.name, m.sccs,
                m.width, m.depth, m.speedup_bound, r.paper,
                useful == r.expect_useful ? "[MATCH]" : "[MISMATCH]");
  }
  std::printf("\npaper: 'the technique of extracting parallelism through"
              " subsystems of equations\nis highly application dependent"
              " and cannot in general be expected to pay off' (sec 6)\n");
  return 0;
}
