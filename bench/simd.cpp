// SIMD lane-throughput shootout: per-RHS-call cost of the batched
// kernels against the scalar kernels on the 2-D bearing model.
//
// The batched entry points evaluate nb scenarios per call in SoA
// layout; the emitted lane loops carry `#pragma omp simd` and the
// native backend compiles them with vectorization-friendly flags and
// the branch-free omx vector-math runtime (exec/vmath_functions.h), so
// one batched call should retire several lanes per scalar-call cost.
// This bench measures exactly that amortization factor:
//
//     ratio(W) = (lane-evals/s at batch width W) / (scalar evals/s)
//
// for W in {4, 8, 16, 32} on both backends. scripts/bench_gate.py
// gates the native width-16 ratio at >= 4x on hosts whose vector ISA
// is wide enough (the exported simd.lane_width gauge tells the gate
// which bar applies; see gate_simd).
//
// Lane counts, not wall-clock figures, are compared across runs, and
// the measurement is round-interleaved: shared CI boxes drift by
// +-30% over a few seconds, so comparing a scalar window against a
// batch window taken seconds later folds that drift straight into the
// ratio. Each round times one short scalar window immediately followed
// by one window per batch width, the per-round ratios pair windows
// that saw the same machine speed, and the gated figure is the median
// ratio across rounds (absolute evals/s gauges report the best window,
// the closest sample to the unloaded machine).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "omx/models/bearing2d.hpp"
#include "omx/obs/export.hpp"
#include "omx/obs/registry.hpp"
#include "omx/pipeline/pipeline.hpp"
#include "omx/support/simd.hpp"

namespace {

using clock_type = std::chrono::steady_clock;

constexpr std::size_t kWidths[] = {4, 8, 16, 32};
constexpr std::size_t kNumWidths = sizeof(kWidths) / sizeof(kWidths[0]);
constexpr int kRounds = 5;
constexpr double kMinSeconds = 0.08;  // per timed window, per round

double seconds_since(clock_type::time_point t0) {
  return std::chrono::duration<double>(clock_type::now() - t0).count();
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

}  // namespace

int main() {
  using namespace omx;

  models::BearingConfig cfg;  // 10 rollers as in the paper
  pipeline::CompiledModel cm = pipeline::compile_model(
      [&](expr::Context& ctx) { return models::build_bearing(ctx, cfg); });
  const std::size_t n = cm.n();

  std::vector<double> y0(n);
  for (std::size_t i = 0; i < n; ++i) {
    y0[i] = cm.flat->states()[i].start;
  }

  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t lw = simd::lane_width();
  std::printf("SIMD lane throughput: 2-D bearing (%d rollers, %zu states)\n"
              "host vector width %zu doubles, %u hardware threads\n\n",
              cfg.n_rollers, n, lw, hw);
  std::printf("%-22s %-16s %s\n", "configuration", "lane-evals/s",
              "vs scalar");

  obs::Registry metrics;
  metrics.gauge("simd.lane_width").set(static_cast<double>(lw));
  metrics.gauge("simd.hardware_concurrency").set(static_cast<double>(hw));
  metrics.gauge("simd.states").set(static_cast<double>(n));

  auto run_backend = [&](exec::Backend backend, const char* name) {
    const exec::KernelInstance k = cm.make_kernel(backend);
    if (k.backend() != backend) {
      std::printf("%-22s (unavailable; skipped)\n", name);
      metrics.gauge(std::string("simd.") + name + ".available").set(0.0);
      return;
    }
    metrics.gauge(std::string("simd.") + name + ".available").set(1.0);
    const exec::RhsKernel& kern = k.kernel();

    // Scalar baseline state plus per-width SoA buffers, set up once so
    // the rounds only time kernel calls. Lanes are perturbed so
    // batch-mates are not bit-identical inputs.
    std::vector<double> y = y0, f(n);
    const double t = 0.0;
    simd::aligned_vector<double> ts[kNumWidths];
    simd::aligned_vector<double> y_soa[kNumWidths], f_soa[kNumWidths];
    for (std::size_t wi = 0; wi < kNumWidths; ++wi) {
      const std::size_t w = kWidths[wi];
      ts[wi].assign(w, 0.0);
      y_soa[wi].assign(n * w, 0.0);
      f_soa[wi].assign(n * w, 0.0);
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < w; ++j) {
          y_soa[wi][i * w + j] =
              y0[i] + 1e-4 * static_cast<double>((i + 7 * j) % 13);
        }
      }
    }

    // Time one window: run `reps` calls, doubling until the window is
    // long enough (later rounds reuse the calibrated rep count, so the
    // scalar and batch windows of a round stay adjacent in time).
    auto window_rate = [&](std::size_t& reps, auto&& calls) -> double {
      for (;;) {
        const auto t0 = clock_type::now();
        calls(reps);
        const double secs = seconds_since(t0);
        if (secs >= kMinSeconds) {
          return static_cast<double>(reps) / secs;
        }
        reps *= 2;
      }
    };

    std::size_t scalar_reps = 64;
    std::size_t batch_reps[kNumWidths] = {16, 16, 16, 16};
    double scalar_best = 0.0;
    double batch_best[kNumWidths] = {0.0, 0.0, 0.0, 0.0};
    std::vector<double> round_ratios[kNumWidths];
    for (int round = 0; round < kRounds; ++round) {
      const double srate = window_rate(scalar_reps, [&](std::size_t r) {
        for (std::size_t i = 0; i < r; ++i) {
          kern(t, y, f);
        }
      });
      scalar_best = std::max(scalar_best, srate);
      for (std::size_t wi = 0; wi < kNumWidths; ++wi) {
        const std::size_t w = kWidths[wi];
        const double calls =
            window_rate(batch_reps[wi], [&](std::size_t r) {
              for (std::size_t i = 0; i < r; ++i) {
                kern.eval_batch(0, w, ts[wi].data(), y_soa[wi].data(),
                                f_soa[wi].data());
              }
            });
        const double rate = calls * static_cast<double>(w);  // lane-evals/s
        batch_best[wi] = std::max(batch_best[wi], rate);
        round_ratios[wi].push_back(rate / srate);
      }
    }

    std::printf("%-22s %-16.0f 1.00x\n",
                (std::string(name) + ", scalar").c_str(), scalar_best);
    metrics.gauge(std::string("simd.") + name + ".scalar.evals_per_s")
        .set(scalar_best);
    for (std::size_t wi = 0; wi < kNumWidths; ++wi) {
      const double ratio = median(round_ratios[wi]);
      char label[64];
      std::snprintf(label, sizeof label, "%s, batch %zu", name,
                    kWidths[wi]);
      std::printf("%-22s %-16.0f %.2fx\n", label, batch_best[wi], ratio);
      char gname[96];
      std::snprintf(gname, sizeof gname, "simd.%s.batch%zu.evals_per_s",
                    name, kWidths[wi]);
      metrics.gauge(gname).set(batch_best[wi]);
      std::snprintf(gname, sizeof gname, "simd.%s.batch%zu_over_scalar",
                    name, kWidths[wi]);
      metrics.gauge(gname).set(ratio);
    }
    std::printf("\n");
  };

  run_backend(exec::Backend::kNative, "native");
  run_backend(exec::Backend::kInterp, "interp");

  const char* out_path = "BENCH_simd.json";
  if (obs::write_file(out_path, obs::metrics_json(metrics.snapshot()))) {
    std::printf("wrote %s\n", out_path);
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  return 0;
}
