// §4 + §6 reproduction: "the performance is better if we have a larger
// problem. To be able to increase the performance the problem has to have
// a larger granularity." and the projection that "a potential speedup of
// 100-300 will be possible for large bearing problems" on a large machine.
//
// Sweeps the bearing size (roller count) and reports, for each modeled
// machine, the best achievable speedup over serial and where it peaks;
// then projects a 3-D-scale problem (every equation ~20x heavier, as the
// 3-D contact formulations are) on a 128-way low-latency machine.
#include <cstdio>

#include "omx/models/bearing2d.hpp"
#include "omx/pipeline/pipeline.hpp"
#include "omx/runtime/simulated_machine.hpp"

namespace {

struct Best {
  double speedup = 0.0;
  std::size_t workers = 0;
};

Best best_speedup(const omx::runtime::SimulatedMachine& sim,
                  std::size_t max_workers) {
  const double serial = sim.time_serial_call().total_seconds;
  Best best;
  const auto costs = sim.task_costs();
  for (std::size_t w = 1; w <= max_workers; ++w) {
    const double t =
        sim.time_parallel_call(omx::sched::lpt_schedule(costs, w))
            .total_seconds;
    const double s = serial / t;
    if (s > best.speedup) {
      best.speedup = s;
      best.workers = w;
    }
  }
  return best;
}

}  // namespace

int main() {
  using namespace omx;

  std::printf("Granularity scaling (Sections 4 and 6)\n\n");
  std::printf("%-9s %-8s %-10s | %-21s | %-21s\n", "rollers", "states",
              "tape ops", "SPARC best (workers)", "Parsytec best (workers)");

  double prev_pars = 0.0;
  bool monotone = true;
  for (int rollers : {5, 10, 20, 40, 80}) {
    models::BearingConfig cfg;
    cfg.n_rollers = rollers;
    pipeline::CompiledModel cm = pipeline::compile_model(
        [&](expr::Context& ctx) { return models::build_bearing(ctx, cfg); });

    runtime::SimulatedMachine sparc(cm.parallel_program,
                                    runtime::MachineModel::sparc_center_2000());
    runtime::SimulatedMachine pars(cm.parallel_program,
                                   runtime::MachineModel::parsytec_gcpp());
    const Best bs = best_speedup(sparc, 16);
    const Best bp = best_speedup(pars, 16);
    std::printf("%-9d %-8zu %-10zu | %8.2fx (%2zu)       | %8.2fx (%2zu)\n",
                rollers, cm.n(), cm.parallel_program.total_ops(),
                bs.speedup, bs.workers, bp.speedup, bp.workers);
    monotone = monotone && bp.speedup >= prev_pars - 0.05;
    prev_pars = bp.speedup;
  }
  std::printf("\n  larger problem -> better distributed speedup:"
              " paper yes   measured %s\n", monotone ? "yes" : "NO");

  // 3-D projection: the paper's realistic 3-D models have far heavier
  // right-hand sides ("tens of thousands of floating point operations"
  // per equation group). Model: 80 rollers, each tape op standing for
  // 20 ops of 3-D contact math, on the full 64-node (128-cpu) Parsytec
  // and an idealized large shared-memory machine. At this scale the
  // monolithic inner-ring force sums dominate the makespan, so the §3.2
  // splitting of large assignments into partial-sum tasks is essential —
  // without it the speedup is capped near total/largest ~ 8.
  models::BearingConfig big;
  big.n_rollers = 80;
  pipeline::CompileOptions copts;
  copts.tasks.max_ops_per_task = 150;  // split the ring force sums
  pipeline::CompiledModel cm = pipeline::compile_model(
      [&](expr::Context& ctx) { return models::build_bearing(ctx, big); },
      copts);

  runtime::MachineModel pars3d = runtime::MachineModel::parsytec_gcpp();
  pars3d.per_op_seconds *= 20.0;  // 3-D-weight equations
  pars3d.physical = 128;
  runtime::SimulatedMachine sim3d(cm.parallel_program, pars3d,
                                  /*communication_analysis=*/true);
  Best b3 = best_speedup(sim3d, 127);

  runtime::MachineModel shm3d = runtime::MachineModel::sparc_center_2000();
  shm3d.per_op_seconds *= 20.0;
  shm3d.physical = 256;
  runtime::SimulatedMachine sim3s(cm.parallel_program, shm3d, true);
  Best b3s = best_speedup(sim3s, 255);

  std::printf("\n3-D-scale projection (80 rollers, 20x equation weight,"
              " message analysis on):\n");
  std::printf("  Parsytec 128-way:      %.0fx speedup at %zu workers\n",
              b3.speedup, b3.workers);
  std::printf("  large shared memory:   %.0fx speedup at %zu workers\n",
              b3s.speedup, b3s.workers);
  std::printf("  paper projection: 100-300x  ->  measured %s\n",
              (b3s.speedup >= 100.0 && b3s.speedup <= 400.0)
                  ? "within band [MATCH]"
                  : "outside band");
  return 0;
}
