// §2.3 reproduction: the benefits of partitioning an ODE system into
// independent subsystems, as the paper enumerates:
//  1. "The ODE-solver can, for each ODE system, choose its own step size
//     independently ... the average step size may increase."
//  2. "The ODE-solver's internal computation time decreases due to fewer
//     state variables."
//  3. "If the solver uses an implicit method we can get quadratic speedup
//     thanks to a smaller Jacobian matrix."
//
// Workload: K independent stiff subsystems with time scales spread over
// two orders of magnitude (a multirate problem). Solved (a) as one
// monolithic system, (b) as K independent systems (legal because the
// dependency analysis proves independence).
//
// The second half measures point (3) *inside* a subsystem: the legacy
// dense stiff path (dense FD Jacobian + dense LU) against the sparse
// pipeline (structural pattern + colored FD + sparse LU) on the
// tridiagonal heat-PDE stencil across sizes, exporting BENCH_sparse.json
// for scripts/bench_gate.py (gate_sparse: parity at n <= 16, >= 2x at
// the largest size).
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "omx/analysis/partition.hpp"
#include "omx/model/flatten.hpp"
#include "omx/models/heat1d.hpp"
#include "omx/obs/export.hpp"
#include "omx/obs/registry.hpp"
#include "omx/ode/jacobian.hpp"
#include "omx/ode/solve.hpp"
#include "omx/parser/parser.hpp"
#include "omx/pipeline/pipeline.hpp"

namespace {

// K stiff 2-state relaxation oscillators with rates lambda_k.
omx::ode::Problem subsystem(double lambda, double tend) {
  omx::ode::Problem p;
  p.n = 2;
  p.set_rhs([lambda](double t, std::span<const double> y,
                     std::span<double> f) {
    f[0] = y[1];
    f[1] = -lambda * (y[0] - std::cos(0.3 * t)) - 2.0 * std::sqrt(lambda) *
           y[1];
  });
  p.t0 = 0.0;
  p.tend = tend;
  p.y0 = {1.0, 0.0};
  return p;
}

omx::ode::Problem monolithic(const std::vector<double>& lambdas,
                             double tend) {
  omx::ode::Problem p;
  p.n = 2 * lambdas.size();
  p.set_rhs([lambdas](double t, std::span<const double> y,
                      std::span<double> f) {
    for (std::size_t k = 0; k < lambdas.size(); ++k) {
      const double l = lambdas[k];
      f[2 * k] = y[2 * k + 1];
      f[2 * k + 1] = -l * (y[2 * k] - std::cos(0.3 * t)) -
                     2.0 * std::sqrt(l) * y[2 * k + 1];
    }
  });
  p.t0 = 0.0;
  p.tend = tend;
  p.y0.assign(p.n, 0.0);
  for (std::size_t k = 0; k < lambdas.size(); ++k) {
    p.y0[2 * k] = 1.0;
  }
  return p;
}

// -- dense vs sparse stiff backend on the heat-PDE stencil -------------------

double time_solve(const omx::ode::Problem& p, const omx::ode::SolverOptions& o,
                  omx::ode::SolverStats* stats) {
  using clock = std::chrono::steady_clock;
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = clock::now();
    omx::ode::Solution s = omx::ode::solve(p, omx::ode::Method::kBdf, o);
    const std::chrono::duration<double> dt = clock::now() - t0;
    if (dt.count() < best) {
      best = dt.count();
      if (stats != nullptr) {
        *stats = s.stats;
      }
    }
  }
  return best;
}

void bench_sparse_backends() {
  using namespace omx;
  const std::vector<int> sizes{8, 16, 32, 64, 128};
  obs::Registry metrics;

  std::printf("\nstiff backend inside one subsystem (heat PDE, BDF2):\n");
  std::printf("  %6s %10s %10s %9s %7s %14s\n", "n", "dense ms", "sparse ms",
              "speedup", "colors", "jac-build RHS");

  for (int n : sizes) {
    models::Heat1dConfig cfg;
    cfg.n_cells = n;
    pipeline::CompiledModel cm = pipeline::compile_model(
        [&cfg](expr::Context& ctx) { return models::build_heat1d(ctx, cfg); });
    ode::SolverOptions o;
    o.tol.rtol = 1e-6;
    o.tol.atol = 1e-9;
    o.record_every = 1u << 30;

    // Legacy dense path: no pattern, dense FD (n+1 calls) + dense LU.
    ode::Problem dense_p = cm.make_problem(exec::Backend::kInterp, 0.0, 0.05);
    dense_p.sparsity.reset();
    ode::SolverStats dense_stats;
    const double dense_s = time_solve(dense_p, o, &dense_stats);

    // Sparse pipeline: structural pattern + colored FD + sparse LU.
    ::setenv("OMX_SPARSE_FORCE", "1", 1);
    ode::Problem sparse_p = cm.make_problem(exec::Backend::kInterp, 0.0, 0.05);
    ode::SolverStats sparse_stats;
    const double sparse_s = time_solve(sparse_p, o, &sparse_stats);
    std::shared_ptr<const ode::JacPlan> plan = ode::make_jac_plan(sparse_p);
    ::unsetenv("OMX_SPARSE_FORCE");

    // One Jacobian build in isolation: colors+1 RHS calls vs n+1.
    la::CsrMatrix jac(plan->pattern);
    std::uint64_t build_calls = 0;
    ode::colored_fd_jacobian(sparse_p, *plan, 0.0, sparse_p.y0, jac,
                             build_calls);

    const double speedup = sparse_s > 0.0 ? dense_s / sparse_s : 0.0;
    std::printf("  %6d %10.3f %10.3f %8.2fx %7d %11llu/%llu\n", n,
                dense_s * 1e3, sparse_s * 1e3, speedup,
                plan->coloring.num_colors,
                static_cast<unsigned long long>(build_calls),
                static_cast<unsigned long long>(n + 1));

    char name[96];
    const auto g = [&metrics, &name](const char* suffix, double v) {
      char full[128];
      std::snprintf(full, sizeof full, "%s.%s", name, suffix);
      metrics.gauge(full).set(v);
    };
    std::snprintf(name, sizeof name, "sparse.heat.n%d", n);
    g("dense_wall_s", dense_s);
    g("sparse_wall_s", sparse_s);
    g("sparse_over_dense", speedup);
    g("colors", static_cast<double>(plan->coloring.num_colors));
    g("jac_build_rhs_calls", static_cast<double>(build_calls));
    g("nnz", static_cast<double>(plan->pattern->nnz()));
    g("dense_rhs_calls", static_cast<double>(dense_stats.rhs_calls));
    g("sparse_rhs_calls", static_cast<double>(sparse_stats.rhs_calls));
    g("sparse_reuse_hits", static_cast<double>(sparse_stats.jac_reuse_hits));
  }
  metrics.gauge("sparse.heat.largest_n")
      .set(static_cast<double>(sizes.back()));

  const char* out_path = "BENCH_sparse.json";
  if (obs::write_file(out_path, obs::metrics_json(metrics.snapshot()))) {
    std::printf("wrote %s\n", out_path);
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    std::exit(1);
  }
}

}  // namespace

int main() {
  using namespace omx;
  const std::vector<double> lambdas{1.0, 10.0, 100.0, 1000.0, 10000.0};
  const double tend = 5.0;

  // First show the dependency analysis *proving* the split is legal,
  // using the modeling pipeline on an equivalent model.
  {
    expr::Context ctx;
    std::string src = "model Multirate\n  class Sub(lambda)\n"
                      "    var x start 1, v start 0;\n"
                      "    eq der(x) == v;\n"
                      "    eq der(v) == -lambda*(x - cos(0.3*time))"
                      " - 2*sqrt(lambda)*v;\n  end\n";
    src += "  instance s[1..5] : Sub(10^(index - 1));\nend\n";
    model::FlatSystem flat =
        model::flatten(parser::parse_model(src, ctx));
    const auto deps = analysis::analyze_dependencies(flat);
    const auto part = analysis::partition_by_scc(flat, deps);
    std::printf("dependency analysis: %zu states partition into %zu"
                " independent subsystems (width %zu)\n\n",
                flat.num_states(), part.num_subsystems(),
                part.max_parallel_width());
  }

  // (1)+(2): explicit adaptive solve, monolithic vs partitioned.
  ode::SolverOptions dopts;
  dopts.tol.rtol = 1e-7;
  dopts.tol.atol = 1e-9;
  dopts.record_every = 1u << 30;  // keep memory flat

  const ode::Solution mono =
      ode::solve(monolithic(lambdas, tend), ode::Method::kDopri5, dopts);
  std::uint64_t split_steps_max = 0;
  std::uint64_t split_rhs_weighted = 0;  // sum over subsystems of calls*n_k
  double avg_h_split = 0.0;
  for (double l : lambdas) {
    const ode::Solution s =
        ode::solve(subsystem(l, tend), ode::Method::kDopri5, dopts);
    split_steps_max = std::max(split_steps_max, s.stats.steps);
    split_rhs_weighted += s.stats.rhs_calls * 2;
    avg_h_split += tend / static_cast<double>(s.stats.steps);
  }
  avg_h_split /= static_cast<double>(lambdas.size());
  const double avg_h_mono = tend / static_cast<double>(mono.stats.steps);
  // Monolithic RHS work: calls * n states; split work: per-subsystem.
  const std::uint64_t mono_rhs_weighted = mono.stats.rhs_calls * 10;

  std::printf("explicit adaptive (DOPRI5), 5 subsystems with lambda ="
              " 1..1e4:\n");
  std::printf("  %-40s %12.3e\n", "monolithic average step", avg_h_mono);
  std::printf("  %-40s %12.3e  (%.1fx larger) [paper: increases]\n",
              "partitioned average step", avg_h_split,
              avg_h_split / avg_h_mono);
  std::printf("  %-40s %12llu\n", "monolithic RHS work (calls x states)",
              static_cast<unsigned long long>(mono_rhs_weighted));
  std::printf("  %-40s %12llu  (%.1fx less) [paper: decreases]\n\n",
              "partitioned RHS work",
              static_cast<unsigned long long>(split_rhs_weighted),
              static_cast<double>(mono_rhs_weighted) /
                  static_cast<double>(split_rhs_weighted));

  // (3): implicit method Jacobian cost. Dense LU is O(n^3); factoring K
  // small Jacobians instead of one big one wins K^2.
  ode::SolverOptions bopts;
  bopts.tol.rtol = 1e-6;
  bopts.tol.atol = 1e-8;
  bopts.bdf_max_order = 2;
  const ode::Solution bmono =
      ode::solve(monolithic(lambdas, tend), ode::Method::kBdf, bopts);
  std::uint64_t bsplit_rhs = 0, bsplit_jac = 0;
  for (double l : lambdas) {
    const ode::Solution s =
        ode::solve(subsystem(l, tend), ode::Method::kBdf, bopts);
    bsplit_rhs += s.stats.rhs_calls;
    bsplit_jac += s.stats.jac_calls;
  }
  const double n_big = 10.0, n_small = 2.0, k = 5.0;
  std::printf("implicit (BDF2) Jacobian economics:\n");
  std::printf("  %-40s %12llu (n=10 each: %g flops/LU)\n",
              "monolithic jac evals",
              static_cast<unsigned long long>(bmono.stats.jac_calls),
              n_big * n_big * n_big / 3.0);
  std::printf("  %-40s %12llu (n=2 each: %g flops/LU)\n",
              "partitioned jac evals",
              static_cast<unsigned long long>(bsplit_jac),
              k * n_small * n_small * n_small / 3.0);
  std::printf("  per-factorization speedup: %.0fx  [paper: 'quadratic"
              " speedup' ~ K^2 = %.0fx]\n",
              (n_big * n_big * n_big) / (k * n_small * n_small * n_small),
              k * k);
  std::printf("  monolithic/partitioned BDF RHS calls: %llu / %llu\n",
              static_cast<unsigned long long>(bmono.stats.rhs_calls),
              static_cast<unsigned long long>(bsplit_rhs));

  bench_sparse_backends();
  return 0;
}
