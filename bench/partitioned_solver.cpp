// §2.3 reproduction: the benefits of partitioning an ODE system into
// independent subsystems, as the paper enumerates:
//  1. "The ODE-solver can, for each ODE system, choose its own step size
//     independently ... the average step size may increase."
//  2. "The ODE-solver's internal computation time decreases due to fewer
//     state variables."
//  3. "If the solver uses an implicit method we can get quadratic speedup
//     thanks to a smaller Jacobian matrix."
//
// Workload: K independent stiff subsystems with time scales spread over
// two orders of magnitude (a multirate problem). Solved (a) as one
// monolithic system, (b) as K independent systems (legal because the
// dependency analysis proves independence).
#include <cmath>
#include <cstdio>
#include <vector>

#include "omx/analysis/partition.hpp"
#include "omx/model/flatten.hpp"
#include "omx/ode/solve.hpp"
#include "omx/parser/parser.hpp"

namespace {

// K stiff 2-state relaxation oscillators with rates lambda_k.
omx::ode::Problem subsystem(double lambda, double tend) {
  omx::ode::Problem p;
  p.n = 2;
  p.set_rhs([lambda](double t, std::span<const double> y,
                     std::span<double> f) {
    f[0] = y[1];
    f[1] = -lambda * (y[0] - std::cos(0.3 * t)) - 2.0 * std::sqrt(lambda) *
           y[1];
  });
  p.t0 = 0.0;
  p.tend = tend;
  p.y0 = {1.0, 0.0};
  return p;
}

omx::ode::Problem monolithic(const std::vector<double>& lambdas,
                             double tend) {
  omx::ode::Problem p;
  p.n = 2 * lambdas.size();
  p.set_rhs([lambdas](double t, std::span<const double> y,
                      std::span<double> f) {
    for (std::size_t k = 0; k < lambdas.size(); ++k) {
      const double l = lambdas[k];
      f[2 * k] = y[2 * k + 1];
      f[2 * k + 1] = -l * (y[2 * k] - std::cos(0.3 * t)) -
                     2.0 * std::sqrt(l) * y[2 * k + 1];
    }
  });
  p.t0 = 0.0;
  p.tend = tend;
  p.y0.assign(p.n, 0.0);
  for (std::size_t k = 0; k < lambdas.size(); ++k) {
    p.y0[2 * k] = 1.0;
  }
  return p;
}

}  // namespace

int main() {
  using namespace omx;
  const std::vector<double> lambdas{1.0, 10.0, 100.0, 1000.0, 10000.0};
  const double tend = 5.0;

  // First show the dependency analysis *proving* the split is legal,
  // using the modeling pipeline on an equivalent model.
  {
    expr::Context ctx;
    std::string src = "model Multirate\n  class Sub(lambda)\n"
                      "    var x start 1, v start 0;\n"
                      "    eq der(x) == v;\n"
                      "    eq der(v) == -lambda*(x - cos(0.3*time))"
                      " - 2*sqrt(lambda)*v;\n  end\n";
    src += "  instance s[1..5] : Sub(10^(index - 1));\nend\n";
    model::FlatSystem flat =
        model::flatten(parser::parse_model(src, ctx));
    const auto deps = analysis::analyze_dependencies(flat);
    const auto part = analysis::partition_by_scc(flat, deps);
    std::printf("dependency analysis: %zu states partition into %zu"
                " independent subsystems (width %zu)\n\n",
                flat.num_states(), part.num_subsystems(),
                part.max_parallel_width());
  }

  // (1)+(2): explicit adaptive solve, monolithic vs partitioned.
  ode::SolverOptions dopts;
  dopts.tol.rtol = 1e-7;
  dopts.tol.atol = 1e-9;
  dopts.record_every = 1u << 30;  // keep memory flat

  const ode::Solution mono =
      ode::solve(monolithic(lambdas, tend), ode::Method::kDopri5, dopts);
  std::uint64_t split_steps_max = 0;
  std::uint64_t split_rhs_weighted = 0;  // sum over subsystems of calls*n_k
  double avg_h_split = 0.0;
  for (double l : lambdas) {
    const ode::Solution s =
        ode::solve(subsystem(l, tend), ode::Method::kDopri5, dopts);
    split_steps_max = std::max(split_steps_max, s.stats.steps);
    split_rhs_weighted += s.stats.rhs_calls * 2;
    avg_h_split += tend / static_cast<double>(s.stats.steps);
  }
  avg_h_split /= static_cast<double>(lambdas.size());
  const double avg_h_mono = tend / static_cast<double>(mono.stats.steps);
  // Monolithic RHS work: calls * n states; split work: per-subsystem.
  const std::uint64_t mono_rhs_weighted = mono.stats.rhs_calls * 10;

  std::printf("explicit adaptive (DOPRI5), 5 subsystems with lambda ="
              " 1..1e4:\n");
  std::printf("  %-40s %12.3e\n", "monolithic average step", avg_h_mono);
  std::printf("  %-40s %12.3e  (%.1fx larger) [paper: increases]\n",
              "partitioned average step", avg_h_split,
              avg_h_split / avg_h_mono);
  std::printf("  %-40s %12llu\n", "monolithic RHS work (calls x states)",
              static_cast<unsigned long long>(mono_rhs_weighted));
  std::printf("  %-40s %12llu  (%.1fx less) [paper: decreases]\n\n",
              "partitioned RHS work",
              static_cast<unsigned long long>(split_rhs_weighted),
              static_cast<double>(mono_rhs_weighted) /
                  static_cast<double>(split_rhs_weighted));

  // (3): implicit method Jacobian cost. Dense LU is O(n^3); factoring K
  // small Jacobians instead of one big one wins K^2.
  ode::SolverOptions bopts;
  bopts.tol.rtol = 1e-6;
  bopts.tol.atol = 1e-8;
  bopts.bdf_max_order = 2;
  const ode::Solution bmono =
      ode::solve(monolithic(lambdas, tend), ode::Method::kBdf, bopts);
  std::uint64_t bsplit_rhs = 0, bsplit_jac = 0;
  for (double l : lambdas) {
    const ode::Solution s =
        ode::solve(subsystem(l, tend), ode::Method::kBdf, bopts);
    bsplit_rhs += s.stats.rhs_calls;
    bsplit_jac += s.stats.jac_calls;
  }
  const double n_big = 10.0, n_small = 2.0, k = 5.0;
  std::printf("implicit (BDF2) Jacobian economics:\n");
  std::printf("  %-40s %12llu (n=10 each: %g flops/LU)\n",
              "monolithic jac evals",
              static_cast<unsigned long long>(bmono.stats.jac_calls),
              n_big * n_big * n_big / 3.0);
  std::printf("  %-40s %12llu (n=2 each: %g flops/LU)\n",
              "partitioned jac evals",
              static_cast<unsigned long long>(bsplit_jac),
              k * n_small * n_small * n_small / 3.0);
  std::printf("  per-factorization speedup: %.0fx  [paper: 'quadratic"
              " speedup' ~ K^2 = %.0fx]\n",
              (n_big * n_big * n_big) / (k * n_small * n_small * n_small),
              k * k);
  std::printf("  monolithic/partitioned BDF RHS calls: %llu / %llu\n",
              static_cast<unsigned long long>(bmono.stats.rhs_calls),
              static_cast<unsigned long long>(bsplit_rhs));
  return 0;
}
