#include "omx/pipeline/pipeline.hpp"

#include "omx/obs/registry.hpp"
#include "omx/obs/trace.hpp"

namespace omx::pipeline {

ode::RhsFn CompiledModel::reference_rhs() const {
  const model::FlatSystem* f = flat.get();
  return [f](double t, std::span<const double> y, std::span<double> ydot) {
    f->eval_rhs(t, y, ydot);
  };
}

ode::RhsFn CompiledModel::serial_rhs() const {
  OMX_REQUIRE(serial_program.n_regs > 0, "serial program not built");
  const vm::Program* p = &serial_program;
  auto ws = std::make_shared<vm::Workspace>(serial_program);
  return [p, ws](double t, std::span<const double> y,
                 std::span<double> ydot) {
    vm::eval_rhs_serial(*p, t, y, ydot, *ws);
  };
}

ode::JacFn CompiledModel::symbolic_jacobian() const {
  OMX_REQUIRE(jacobian_program.n_regs > 0, "jacobian program not built");
  const vm::Program* p = &jacobian_program;
  auto ws = std::make_shared<vm::Workspace>(jacobian_program);
  auto buf = std::make_shared<std::vector<double>>(p->n_out, 0.0);
  return [p, ws, buf](double t, std::span<const double> y, la::Matrix& jac) {
    const std::size_t n = p->n_state;
    OMX_REQUIRE(jac.rows() == n && jac.cols() == n, "jacobian shape");
    vm::eval_rhs_serial(*p, t, y, *buf, *ws);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        jac(i, j) = (*buf)[i * n + j];
      }
    }
  };
}

ode::Problem CompiledModel::make_problem(ode::RhsFn rhs, double t0,
                                         double tend) const {
  ode::Problem p;
  p.n = flat->num_states();
  p.rhs = std::move(rhs);
  p.t0 = t0;
  p.tend = tend;
  p.y0.reserve(p.n);
  for (const model::FlatState& s : flat->states()) {
    p.y0.push_back(s.start);
  }
  return p;
}

CompiledModel compile_model(const ModelBuilder& builder,
                            const CompileOptions& opts) {
  static obs::Counter& compiles =
      obs::Registry::global().counter("pipeline.compiles");
  obs::Span total("compile_model", "pipeline");

  CompiledModel cm;
  cm.ctx = std::make_unique<expr::Context>();
  {
    obs::Span s("build+flatten", "pipeline");
    model::Model m = builder(*cm.ctx);
    cm.flat = std::make_unique<model::FlatSystem>(model::flatten(m));
  }
  {
    obs::Span s("dependency+scc", "pipeline");
    cm.deps = analysis::analyze_dependencies(*cm.flat);
    cm.partition = analysis::partition_by_scc(*cm.flat, cm.deps);
  }
  {
    obs::Span s("assignments+cse", "pipeline");
    cm.assignments = codegen::build_assignments(*cm.flat, opts.transform);
  }
  {
    obs::Span s("task_planning", "pipeline");
    cm.plan = codegen::plan_tasks(*cm.flat, cm.assignments, opts.tasks);
  }
  {
    obs::Span s("compile_tapes", "pipeline");
    cm.parallel_program = codegen::compile_parallel_tape(*cm.flat, cm.plan);
    if (opts.build_serial) {
      cm.serial_program = codegen::compile_serial_tape(*cm.flat,
                                                       cm.assignments);
    }
    if (opts.build_jacobian) {
      cm.jacobian_program = codegen::compile_jacobian_tape(*cm.flat);
    }
  }
  compiles.add();
  return cm;
}

}  // namespace omx::pipeline
