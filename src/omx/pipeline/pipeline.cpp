#include "omx/pipeline/pipeline.hpp"

#include <algorithm>

#include "omx/analysis/sparsity.hpp"
#include "omx/obs/registry.hpp"
#include "omx/obs/trace.hpp"
#include "omx/ode/events.hpp"
#include "omx/vm/interp.hpp"

namespace omx::pipeline {

exec::KernelInstance CompiledModel::make_kernel(
    exec::Backend backend, const KernelOptions& opts) const {
  switch (backend) {
    case exec::Backend::kReference:
      return exec::make_reference_kernel(*flat);
    case exec::Backend::kInterp: {
      exec::InterpKernelOptions io;
      io.lanes = opts.lanes;
      return exec::make_interp_kernel(
          parallel_program,
          serial_program.n_regs > 0 ? &serial_program : nullptr, io);
    }
    case exec::Backend::kNative: {
      exec::NativeOptions no = opts.native;
      no.fallback_lanes = std::max(no.fallback_lanes, opts.lanes);
      return exec::make_native_kernel(
          *flat, assignments, plan, parallel_program,
          serial_program.n_regs > 0 ? &serial_program : nullptr, no);
    }
  }
  throw omx::Bug("unknown exec::Backend");
}

ode::Problem CompiledModel::make_problem(const exec::KernelInstance& kernel,
                                         double t0, double tend) const {
  ode::Problem p = make_problem(ode::RhsFn(), t0, tend);
  const exec::RhsKernel& k = kernel.kernel();
  p.rhs_arity = k.n_state();
  // The capture shares ownership of the kernel state, so the problem
  // (and its copies) keep the backend alive.
  p.set_rhs([kernel](double t, std::span<const double> y,
                     std::span<double> ydot) { kernel.kernel()(t, y, ydot); });
  if (k.has_batch()) {
    p.batch_arity = k.n_state();
    // The interpreter's batch workspaces are per-lane; native code is
    // stateless and the reference oracle allocates per call, so only the
    // interpreter bounds solve_ensemble's worker count.
    p.batch_lanes =
        k.backend() == exec::Backend::kInterp ? k.num_lanes() : 0;
    p.set_batch_rhs([kernel](std::size_t lane, std::size_t nb,
                             const double* t, const double* y_soa,
                             double* ydot_soa) {
      kernel.kernel().eval_batch(lane, nb, t, y_soa, ydot_soa);
    });
  }
  return p;
}

ode::Problem CompiledModel::make_problem(exec::Backend backend, double t0,
                                         double tend) const {
  return make_problem(make_kernel(backend), t0, tend);
}

ode::Problem CompiledModel::make_problem(ode::RhsFn rhs, double t0,
                                         double tend) const {
  ode::Problem p;
  p.n = flat->num_states();
  p.rhs = rhs;
  p.t0 = t0;
  p.tend = tend;
  p.y0.reserve(p.n);
  for (const model::FlatState& s : flat->states()) {
    p.y0.push_back(s.start);
  }
  p.sparsity = sparsity;
  if (!flat->events().empty()) {
    // When-clause guards and resets evaluate through the expression pool
    // rather than a compiled tape: deliberately backend-independent, so
    // reference/interp/native all localize each event at the same time.
    // Same lifetime contract as make_kernel: the CompiledModel must
    // outlive the problems it produces.
    const model::FlatSystem* fs = flat.get();
    ode::EventSpec spec;
    for (std::size_t k = 0; k < fs->events().size(); ++k) {
      ode::EventFunction f;
      const int dir = fs->events()[k].direction;
      f.direction = dir > 0 ? ode::EventDirection::kRising
                   : dir < 0 ? ode::EventDirection::kFalling
                             : ode::EventDirection::kBoth;
      f.guard = [fs, k](double t, std::span<const double> y) {
        return fs->eval_event_guard(k, t, y);
      };
      f.reset = [fs, k](double t, std::span<double> y) {
        fs->apply_event_resets(k, t, y);
      };
      f.name = "when_" + std::to_string(k);
      spec.functions.push_back(std::move(f));
    }
    p.events = std::make_shared<const ode::EventSpec>(std::move(spec));
  }
  return p;
}

void CompiledModel::bind_symbolic_jacobian(ode::Problem& p) const {
  OMX_REQUIRE(jacobian_program.n_regs > 0, "jacobian program not built");
  const vm::Program* jp = &jacobian_program;
  auto ws = std::make_shared<vm::Workspace>(jacobian_program);
  auto buf = std::make_shared<std::vector<double>>(jp->n_out, 0.0);
  p.set_jacobian([jp, ws, buf](double t, std::span<const double> y,
                               la::Matrix& jac) {
    const std::size_t n = jp->n_state;
    OMX_REQUIRE(jac.rows() == n && jac.cols() == n, "jacobian shape");
    vm::eval_rhs_serial(*jp, t, y, *buf, *ws);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        jac(i, j) = (*buf)[i * n + j];
      }
    }
  });
  if (sparse_jacobian_program.n_regs > 0) {
    const vm::Program* sp = &sparse_jacobian_program;
    auto sws = std::make_shared<vm::Workspace>(sparse_jacobian_program);
    auto sbuf = std::make_shared<std::vector<double>>(sp->n_out, 0.0);
    p.set_sparse_jacobian([sp, sws, sbuf](double t,
                                          std::span<const double> y,
                                          la::CsrMatrix& jac) {
      OMX_REQUIRE(jac.pattern().nnz() == sp->n_out,
                  "sparse jacobian pattern mismatch");
      // Analytically-zero slots have no output instruction; clear first
      // so they stay exact 0.0.
      std::fill(sbuf->begin(), sbuf->end(), 0.0);
      vm::eval_rhs_serial(*sp, t, y, *sbuf, *sws);
      std::copy(sbuf->begin(), sbuf->end(), jac.values().begin());
    });
  }
}

CompiledModel compile_model(const ModelBuilder& builder,
                            const CompileOptions& opts) {
  static obs::Counter& compiles =
      obs::Registry::global().counter("pipeline.compiles");
  obs::Span total("compile_model", "pipeline");

  CompiledModel cm;
  cm.ctx = std::make_unique<expr::Context>();
  {
    obs::Span s("build+flatten", "pipeline");
    model::Model m = builder(*cm.ctx);
    cm.flat = std::make_unique<model::FlatSystem>(model::flatten(m));
  }
  {
    obs::Span s("dependency+scc", "pipeline");
    cm.deps = analysis::analyze_dependencies(*cm.flat);
    cm.partition = analysis::partition_by_scc(*cm.flat, cm.deps);
    cm.sparsity = std::make_shared<la::SparsityPattern>(
        analysis::structural_sparsity(cm.deps, cm.flat->num_states()));
  }
  {
    obs::Span s("assignments+cse", "pipeline");
    cm.assignments = codegen::build_assignments(*cm.flat, opts.transform);
  }
  {
    obs::Span s("task_planning", "pipeline");
    cm.plan = codegen::plan_tasks(*cm.flat, cm.assignments, opts.tasks);
  }
  {
    obs::Span s("compile_tapes", "pipeline");
    cm.parallel_program = codegen::compile_parallel_tape(*cm.flat, cm.plan);
    if (opts.build_serial) {
      cm.serial_program = codegen::compile_serial_tape(*cm.flat,
                                                       cm.assignments);
    }
    if (opts.build_jacobian) {
      cm.jacobian_program = codegen::compile_jacobian_tape(*cm.flat);
      cm.jac_sparsity = std::make_shared<la::SparsityPattern>(
          cm.sparsity->with_diagonal());
      cm.sparse_jacobian_program =
          codegen::compile_sparse_jacobian_tape(*cm.flat, *cm.jac_sparsity);
    }
  }
  compiles.add();
  return cm;
}

}  // namespace omx::pipeline
