// End-to-end façade: model -> flatten -> analyze -> transform -> partition
// -> compile. This is the programmatic equivalent of Figure 7's tool
// chain, producing everything the examples, tests and benchmarks consume.
#pragma once

#include <functional>
#include <memory>

#include "omx/analysis/partition.hpp"
#include "omx/codegen/tape.hpp"
#include "omx/model/flatten.hpp"
#include "omx/ode/problem.hpp"
#include "omx/runtime/parallel_rhs.hpp"

namespace omx::pipeline {

struct CompileOptions {
  codegen::TransformOptions transform;
  codegen::TaskPlanOptions tasks;
  /// Also compile the serial (globally CSE'd) tape.
  bool build_serial = true;
  /// Also generate + compile the analytic Jacobian tape (n^2 outputs);
  /// expensive for large systems.
  bool build_jacobian = false;
};

/// Everything the toolchain derives from one model.
struct CompiledModel {
  std::unique_ptr<expr::Context> ctx;
  std::unique_ptr<model::FlatSystem> flat;
  analysis::DependencyInfo deps;
  analysis::Partition partition;
  codegen::AssignmentSet assignments;
  codegen::TaskPlan plan;
  vm::Program parallel_program;
  vm::Program serial_program;    // empty unless build_serial
  vm::Program jacobian_program;  // empty unless build_jacobian

  std::size_t n() const { return flat->num_states(); }

  /// Reference RHS (tree-walking evaluation; slow, exact semantics).
  ode::RhsFn reference_rhs() const;

  /// Serial compiled RHS.
  ode::RhsFn serial_rhs() const;

  /// Analytic Jacobian from the compiled Jacobian tape.
  ode::JacFn symbolic_jacobian() const;

  /// An ODE problem over [t0, tend] using the given RHS.
  ode::Problem make_problem(ode::RhsFn rhs, double t0, double tend) const;
};

using ModelBuilder = std::function<model::Model(expr::Context&)>;

/// Runs the full pipeline over the model produced by `builder`.
CompiledModel compile_model(const ModelBuilder& builder,
                            const CompileOptions& opts = {});

}  // namespace omx::pipeline
