// End-to-end façade: model -> flatten -> analyze -> transform -> partition
// -> compile. This is the programmatic equivalent of Figure 7's tool
// chain, producing everything the examples, tests and benchmarks consume.
#pragma once

#include <functional>
#include <memory>

#include "omx/analysis/partition.hpp"
#include "omx/codegen/tape.hpp"
#include "omx/exec/native.hpp"
#include "omx/model/flatten.hpp"
#include "omx/ode/problem.hpp"
#include "omx/runtime/parallel_rhs.hpp"

namespace omx::pipeline {

struct CompileOptions {
  codegen::TransformOptions transform;
  codegen::TaskPlanOptions tasks;
  /// Also compile the serial (globally CSE'd) tape.
  bool build_serial = true;
  /// Also generate + compile the analytic Jacobian tape (n^2 outputs);
  /// expensive for large systems.
  bool build_jacobian = false;
};

struct KernelOptions {
  /// Concurrency lanes for run_task (interpreter kernels pre-build one
  /// register file per lane; native code is stateless and ignores it).
  std::size_t lanes = 1;
  exec::NativeOptions native;
};

/// Everything the toolchain derives from one model.
struct CompiledModel {
  std::unique_ptr<expr::Context> ctx;
  std::unique_ptr<model::FlatSystem> flat;
  analysis::DependencyInfo deps;
  analysis::Partition partition;
  codegen::AssignmentSet assignments;
  codegen::TaskPlan plan;
  vm::Program parallel_program;
  vm::Program serial_program;    // empty unless build_serial
  vm::Program jacobian_program;  // empty unless build_jacobian
  /// Structural Jacobian sparsity derived from the dependency graph:
  /// (i, j) present iff state j appears in the (algebraic-inlined) RHS of
  /// state i. Attached to every Problem this model produces.
  std::shared_ptr<const la::SparsityPattern> sparsity;
  /// `sparsity` with the diagonal forced present — the pattern the stiff
  /// engine stores its Jacobian over, and the slot map of
  /// `sparse_jacobian_program`. Empty unless build_jacobian.
  std::shared_ptr<const la::SparsityPattern> jac_sparsity;
  /// Analytic Jacobian compiled to nnz(jac_sparsity) output slots (CSR
  /// order) instead of n*n. Empty unless build_jacobian.
  vm::Program sparse_jacobian_program;

  std::size_t n() const { return flat->num_states(); }

  /// Builds an execution kernel for the requested backend. The returned
  /// instance shares this CompiledModel's programs — the model must
  /// outlive it. Backend::kNative degrades to the interpreter (with a
  /// diagnostic) when no host compiler is available; check
  /// `instance.backend()`.
  exec::KernelInstance make_kernel(exec::Backend backend,
                                   const KernelOptions& opts = {}) const;

  /// An ODE problem over [t0, tend] evaluating through `kernel`; the
  /// problem keeps a reference on the kernel instance alive.
  ode::Problem make_problem(const exec::KernelInstance& kernel, double t0,
                            double tend) const;

  /// Convenience: make_kernel(backend) + make_problem.
  ode::Problem make_problem(exec::Backend backend, double t0,
                            double tend) const;

  /// An ODE problem over [t0, tend] using the given RHS view. The caller
  /// owns the callable behind `rhs` and must keep it alive.
  ode::Problem make_problem(ode::RhsFn rhs, double t0, double tend) const;

  /// Binds the analytic Jacobian from the compiled Jacobian tape into
  /// `p` (owning: copies of `p` keep it alive). Also binds the sparse
  /// (pattern-aligned, nnz-output) variant when it was compiled, so the
  /// sparse stiff backend evaluates only structural nonzeros.
  void bind_symbolic_jacobian(ode::Problem& p) const;
};

using ModelBuilder = std::function<model::Model(expr::Context&)>;

/// Runs the full pipeline over the model produced by `builder`.
CompiledModel compile_model(const ModelBuilder& builder,
                            const CompileOptions& opts = {});

}  // namespace omx::pipeline
