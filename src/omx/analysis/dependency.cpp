#include "omx/analysis/dependency.hpp"

#include <algorithm>
#include <unordered_map>

namespace omx::analysis {

DependencyInfo analyze_dependencies(const model::FlatSystem& flat) {
  OMX_REQUIRE(flat.finalized(), "flat system must be finalized");
  expr::Context& ctx = flat.ctx();
  const std::size_t n = flat.num_states();

  // 1. For each algebraic variable (already topologically ordered), the
  //    set of states it transitively depends on.
  std::unordered_map<SymbolId, std::vector<int>> alg_state_deps;
  std::unordered_map<SymbolId, bool> alg_uses_time;
  for (const model::FlatAlgebraic& al : flat.algebraics()) {
    std::vector<int> states;
    bool uses_time = false;
    std::vector<SymbolId> syms;
    ctx.pool.free_syms(al.rhs, syms);
    for (SymbolId s : syms) {
      if (s == flat.time_symbol()) {
        uses_time = true;
      } else if (int idx = flat.state_index(s); idx >= 0) {
        states.push_back(idx);
      } else if (auto it = alg_state_deps.find(s);
                 it != alg_state_deps.end()) {
        states.insert(states.end(), it->second.begin(), it->second.end());
        uses_time = uses_time || alg_uses_time[s];
      }
      // parameters contribute nothing
    }
    std::sort(states.begin(), states.end());
    states.erase(std::unique(states.begin(), states.end()), states.end());
    alg_state_deps.emplace(al.name, std::move(states));
    alg_uses_time.emplace(al.name, uses_time);
  }

  DependencyInfo info;
  info.deps.resize(n);
  info.uses_time.assign(n, false);
  info.eq_graph = graph::Digraph(n);

  for (std::size_t i = 0; i < n; ++i) {
    std::vector<int>& deps = info.deps[i];
    std::vector<SymbolId> syms;
    ctx.pool.free_syms(flat.states()[i].rhs, syms);
    for (SymbolId s : syms) {
      if (s == flat.time_symbol()) {
        info.uses_time[i] = true;
      } else if (int idx = flat.state_index(s); idx >= 0) {
        deps.push_back(idx);
      } else if (auto it = alg_state_deps.find(s);
                 it != alg_state_deps.end()) {
        deps.insert(deps.end(), it->second.begin(), it->second.end());
        info.uses_time[i] = info.uses_time[i] || alg_uses_time[s];
      }
    }
    std::sort(deps.begin(), deps.end());
    deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
    for (int j : deps) {
      info.eq_graph.add_edge(static_cast<graph::NodeId>(j),
                             static_cast<graph::NodeId>(i));
    }
  }
  return info;
}

std::vector<std::vector<bool>> jacobian_sparsity(const DependencyInfo& info,
                                                 std::size_t n) {
  OMX_REQUIRE(info.deps.size() == n, "dependency info size mismatch");
  std::vector<std::vector<bool>> mask(n, std::vector<bool>(n, false));
  for (std::size_t i = 0; i < n; ++i) {
    for (int j : info.deps[i]) {
      mask[i][static_cast<std::size_t>(j)] = true;
    }
  }
  return mask;
}

}  // namespace omx::analysis
