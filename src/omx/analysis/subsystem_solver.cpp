#include "omx/analysis/subsystem_solver.hpp"

#include <algorithm>
#include <memory>
#include <numeric>

namespace omx::analysis {

namespace {

void merge_stats(ode::SolverStats& into, const ode::SolverStats& from) {
  into.rhs_calls += from.rhs_calls;
  into.jac_calls += from.jac_calls;
  into.steps += from.steps;
  into.rejected += from.rejected;
  into.newton_iters += from.newton_iters;
}

}  // namespace

PartitionedSolution solve_partitioned(const model::FlatSystem& flat,
                                      const Partition& partition,
                                      double t0, double tend,
                                      const PartitionedSolveOptions& opts) {
  OMX_REQUIRE(flat.finalized(), "flat system must be finalized");
  const std::size_t n = flat.num_states();
  const std::size_t num_sub = partition.num_subsystems();

  // state index -> (subsystem, column within that subsystem's solution).
  std::vector<std::pair<std::size_t, std::size_t>> locate(n);
  for (std::size_t c = 0; c < num_sub; ++c) {
    const auto& states = partition.subsystems[c].states;
    for (std::size_t k = 0; k < states.size(); ++k) {
      locate[static_cast<std::size_t>(states[k])] = {c, k};
    }
  }

  PartitionedSolution out;
  out.per_subsystem.resize(num_sub);
  std::vector<bool> solved(num_sub, false);

  // Solve in level order (levels respect the condensation topology).
  std::vector<std::size_t> order(num_sub);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return partition.subsystems[a].level <
                            partition.subsystems[b].level;
                   });

  for (std::size_t c : order) {
    const auto& members = partition.subsystems[c].states;

    // Local problem: the subsystem's states; everything else is read from
    // upstream trajectories (SCC-ness guarantees no other dependencies).
    ode::Problem p;
    p.n = members.size();
    p.t0 = t0;
    p.tend = tend;
    p.y0.reserve(p.n);
    for (int s : members) {
      p.y0.push_back(flat.states()[static_cast<std::size_t>(s)].start);
    }

    // Full-state scratch; non-upstream, non-member entries stay at their
    // start values and are never read by this subsystem's equations.
    auto full = std::make_shared<std::vector<double>>(n);
    auto fulldot = std::make_shared<std::vector<double>>(n);
    for (std::size_t i = 0; i < n; ++i) {
      (*full)[i] = flat.states()[i].start;
    }

    p.set_rhs([&flat, &out, &locate, &solved, members, full,
               fulldot](double t, std::span<const double> y,
                        std::span<double> ydot) {
      // Refresh upstream values by interpolation.
      const std::size_t nn = full->size();
      for (std::size_t i = 0; i < nn; ++i) {
        const auto [sub, col] = locate[i];
        if (solved[sub]) {
          (*full)[i] = out.per_subsystem[sub].at(t)[col];
        }
      }
      for (std::size_t k = 0; k < members.size(); ++k) {
        (*full)[static_cast<std::size_t>(members[k])] = y[k];
      }
      flat.eval_rhs(t, *full, *fulldot);
      for (std::size_t k = 0; k < members.size(); ++k) {
        ydot[k] = (*fulldot)[static_cast<std::size_t>(members[k])];
      }
    });

    ode::SolverOptions sopts;
    sopts.tol = opts.tol;
    sopts.max_steps = opts.max_steps;
    sopts.record_every = 1;  // downstream interpolation needs every step
    out.per_subsystem[c] = ode::solve(p, ode::Method::kDopri5, sopts);
    merge_stats(out.total, out.per_subsystem[c].stats);
    solved[c] = true;
  }

  out.final_state.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto [sub, col] = locate[i];
    out.final_state[i] = out.per_subsystem[sub].final_state()[col];
  }
  return out;
}

}  // namespace omx::analysis
