// Equation-system-level parallelism (§2.1, §2.5): partition the ODE system
// into strongly connected components ("subsystems"), build the reduced
// acyclic graph, and schedule subsystems into parallel levels / pipeline
// stages.
#pragma once

#include <string>

#include "omx/analysis/dependency.hpp"
#include "omx/graph/scc.hpp"

namespace omx::analysis {

struct Subsystem {
  std::vector<int> states;  // indices into FlatSystem::states()
  std::uint32_t level = 0;  // topological level in the condensation
  bool trivial = false;     // single equation with no self-dependency
};

struct Partition {
  graph::SccResult scc;
  graph::Digraph condensation;
  std::vector<Subsystem> subsystems;   // one per SCC
  std::uint32_t num_levels = 0;

  std::size_t num_subsystems() const { return subsystems.size(); }
  std::size_t largest() const;
  std::size_t num_trivial() const;

  /// Longest producer->consumer chain in the condensation — the available
  /// pipeline depth (§2.1 "pipe-line parallelism").
  std::uint32_t pipeline_depth() const { return num_levels; }

  /// Maximum number of subsystems on one level — the available subsystem
  /// parallelism.
  std::size_t max_parallel_width() const;
};

Partition partition_by_scc(const model::FlatSystem& flat,
                           const DependencyInfo& info);

/// Human-readable report in the spirit of Figures 3 and 6: one line per
/// SCC with its size, level and member equations.
std::string format_partition_report(const model::FlatSystem& flat,
                                    const Partition& p);

}  // namespace omx::analysis
