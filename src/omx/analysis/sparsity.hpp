// Jacobian sparsity-pattern derivation for the stiff solvers.
//
// The exact structural pattern comes for free from the equation
// dependency analysis (analysis/dependency): entry (i, j) is present iff
// RHS i transitively reads state j. For opaque RhsFns (hand-written
// callbacks with no model behind them) a finite-difference probe
// estimates the pattern by perturbing each state at several magnitudes
// and recording which outputs move.
#pragma once

#include <cstddef>
#include <span>

#include "omx/analysis/dependency.hpp"
#include "omx/la/sparse.hpp"
#include "omx/ode/problem.hpp"

namespace omx::analysis {

/// Exact structural Jacobian pattern from the dependency analysis.
la::SparsityPattern structural_sparsity(const DependencyInfo& info,
                                        std::size_t n);

/// Finite-difference probe for opaque RHS callbacks: perturbs each state
/// with `probes` different increments around `y` (plus a shifted base
/// point) and marks entry (i, j) when output i moves. Sound only up to
/// coincidental cancellation at the probe points — prefer
/// structural_sparsity whenever a model is available. Costs
/// (2 * probes) * n + 2 RHS evaluations.
la::SparsityPattern probe_sparsity(const ode::RhsFn& rhs, std::size_t n,
                                   double t, std::span<const double> y,
                                   int probes = 2);

}  // namespace omx::analysis
