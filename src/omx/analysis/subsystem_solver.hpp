// Partitioned (multirate) solution of a flat system — §2.1/§2.3 executed.
//
// The SCC condensation is acyclic, so subsystems can be solved one at a
// time in topological (level) order: each subsystem gets its own adaptive
// solver and its own step-size sequence ("the ODE-solver can, for each
// ODE system, choose its own step size independently of the others");
// values it needs from upstream subsystems are interpolated from their
// already-computed trajectories. Subsystems on the same level are
// independent and could run in parallel or as a pipeline (§2.1); this
// serial reference implementation establishes the semantics the schedule
// would execute.
//
// Note on accuracy: upstream values enter through linear interpolation of
// the recorded trajectory, so the coupling is resolved to O(h^2) of the
// upstream solver's accepted steps — the classic multirate trade-off.
#pragma once

#include "omx/analysis/partition.hpp"
#include "omx/ode/solve.hpp"

namespace omx::analysis {

struct PartitionedSolveOptions {
  ode::Tolerances tol{};
  /// Record every accepted step of each subsystem (needed for downstream
  /// interpolation); exposed for tests.
  std::size_t max_steps = 1000000;
};

struct PartitionedSolution {
  /// Trajectory per subsystem (indexed like Partition::subsystems; state
  /// columns follow Subsystem::states order).
  std::vector<ode::Solution> per_subsystem;
  /// Assembled final state in flat-system state order.
  std::vector<double> final_state;
  /// Aggregated solver statistics.
  ode::SolverStats total;

  /// Average accepted step of one subsystem.
  double average_step(std::size_t c, double t0, double tend) const {
    const auto steps = per_subsystem[c].stats.steps;
    return steps ? (tend - t0) / static_cast<double>(steps) : 0.0;
  }
};

/// Solves `flat` over [t0, tend] subsystem by subsystem. Throws
/// omx::Error if the solve of any subsystem fails.
PartitionedSolution solve_partitioned(const model::FlatSystem& flat,
                                      const Partition& partition,
                                      double t0, double tend,
                                      const PartitionedSolveOptions& opts);

}  // namespace omx::analysis
