// Equation dependency extraction (§2.1 of the paper).
//
// For a flat system of explicit ODEs der(x_i) = f_i(x, a, t), equation i
// depends on equation j iff f_i references state x_j — directly or through
// a chain of algebraic (auxiliary) assignments. The resulting directed
// graph is the input to SCC partitioning and to the Jacobian sparsity
// analysis.
#pragma once

#include "omx/graph/digraph.hpp"
#include "omx/model/flat_system.hpp"

namespace omx::analysis {

struct DependencyInfo {
  /// deps[i] = sorted list of state indices that RHS i (transitively)
  /// reads.
  std::vector<std::vector<int>> deps;

  /// Node i = state equation i. Edge j -> i iff equation i depends on
  /// state j ("producer -> consumer"): a topological order of the
  /// condensation then solves producers before consumers.
  graph::Digraph eq_graph;

  /// True if RHS i references the free variable (time) directly.
  std::vector<bool> uses_time;
};

DependencyInfo analyze_dependencies(const model::FlatSystem& flat);

/// Jacobian sparsity: entry (i, j) is true iff d f_i / d x_j can be
/// structurally nonzero. Same information as `deps` in matrix form.
std::vector<std::vector<bool>> jacobian_sparsity(const DependencyInfo& info,
                                                 std::size_t n);

}  // namespace omx::analysis
