#include "omx/analysis/sparsity.hpp"

#include <cmath>
#include <vector>

namespace omx::analysis {

la::SparsityPattern structural_sparsity(const DependencyInfo& info,
                                        std::size_t n) {
  OMX_REQUIRE(info.deps.size() == n, "dependency info size mismatch");
  la::SparsityPattern p;
  p.rows = n;
  p.cols = n;
  p.row_ptr.resize(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    p.row_ptr[i] = p.col_idx.size();
    for (int j : info.deps[i]) {  // already sorted and deduplicated
      p.col_idx.push_back(static_cast<std::size_t>(j));
    }
  }
  p.row_ptr[n] = p.col_idx.size();
  return p;
}

la::SparsityPattern probe_sparsity(const ode::RhsFn& rhs, std::size_t n,
                                   double t, std::span<const double> y,
                                   int probes) {
  OMX_REQUIRE(y.size() == n, "state size mismatch");
  OMX_REQUIRE(probes >= 1, "need at least one probe");
  std::vector<std::vector<bool>> mask(n, std::vector<bool>(n, false));

  // Two base points: the caller's state and a deterministic shift of it,
  // so a dependency that happens to cancel at one point (e.g. d/dx of
  // x^2 at x = 0) is still caught at the other.
  std::vector<std::vector<double>> bases;
  bases.emplace_back(y.begin(), y.end());
  std::vector<double> shifted(y.begin(), y.end());
  for (std::size_t i = 0; i < n; ++i) {
    shifted[i] = shifted[i] + 0.5 + 0.125 * static_cast<double>(i % 7);
  }
  bases.push_back(std::move(shifted));

  std::vector<double> f0(n), f1(n);
  for (const std::vector<double>& base : bases) {
    std::vector<double> yp(base);
    rhs(t, base, f0);
    for (std::size_t j = 0; j < n; ++j) {
      for (int p = 0; p < probes; ++p) {
        // Spread probe magnitudes: ~1e-6, ~1e-3, ... of the state scale.
        const double scale = std::max(std::fabs(base[j]), 1.0);
        const double dj = scale * std::pow(10.0, -6.0 + 3.0 * p);
        const double saved = yp[j];
        yp[j] = saved + dj;
        rhs(t, yp, f1);
        yp[j] = saved;
        for (std::size_t i = 0; i < n; ++i) {
          if (f1[i] != f0[i]) {
            mask[i][j] = true;
          }
        }
      }
    }
  }
  return la::SparsityPattern::from_dense_mask(mask);
}

}  // namespace omx::analysis
