#include "omx/analysis/partition.hpp"

#include <algorithm>
#include <sstream>

namespace omx::analysis {

std::size_t Partition::largest() const {
  std::size_t m = 0;
  for (const Subsystem& s : subsystems) {
    m = std::max(m, s.states.size());
  }
  return m;
}

std::size_t Partition::num_trivial() const {
  return static_cast<std::size_t>(
      std::count_if(subsystems.begin(), subsystems.end(),
                    [](const Subsystem& s) { return s.trivial; }));
}

std::size_t Partition::max_parallel_width() const {
  std::vector<std::size_t> width(num_levels + 1, 0);
  for (const Subsystem& s : subsystems) {
    ++width[s.level];
  }
  std::size_t m = 0;
  for (std::size_t w : width) {
    m = std::max(m, w);
  }
  return m;
}

Partition partition_by_scc(const model::FlatSystem& flat,
                           const DependencyInfo& info) {
  Partition p;
  p.scc = graph::strongly_connected_components(info.eq_graph);
  p.condensation = graph::condensation(info.eq_graph, p.scc);

  const auto levels = p.condensation.levels();
  p.num_levels = levels.empty()
                     ? 0
                     : *std::max_element(levels.begin(), levels.end()) + 1;

  p.subsystems.resize(p.scc.num_components());
  for (std::uint32_t c = 0; c < p.scc.num_components(); ++c) {
    Subsystem& s = p.subsystems[c];
    s.states.assign(p.scc.members[c].begin(), p.scc.members[c].end());
    s.level = levels[c];
    s.trivial = p.scc.is_trivial(c, info.eq_graph);
  }
  (void)flat;
  return p;
}

std::string format_partition_report(const model::FlatSystem& flat,
                                    const Partition& p) {
  std::ostringstream os;
  os << "equations: " << flat.num_states()
     << "  SCCs: " << p.num_subsystems()
     << "  largest: " << p.largest()
     << "  trivial: " << p.num_trivial()
     << "  levels: " << p.num_levels
     << "  max parallel width: " << p.max_parallel_width() << "\n";
  // Components are reported in solve order (level ascending).
  std::vector<std::size_t> order(p.num_subsystems());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a,
                                                   std::size_t b) {
    return p.subsystems[a].level < p.subsystems[b].level;
  });
  for (std::size_t c : order) {
    const Subsystem& s = p.subsystems[c];
    os << "  SCC " << c << " (x " << s.states.size() << ", level " << s.level
       << (s.trivial ? ", trivial" : "") << "):";
    const std::size_t show = std::min<std::size_t>(s.states.size(), 6);
    for (std::size_t k = 0; k < show; ++k) {
      os << " " << flat.state_name(static_cast<std::size_t>(s.states[k]));
    }
    if (s.states.size() > show) {
      os << " ... (+" << (s.states.size() - show) << ")";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace omx::analysis
