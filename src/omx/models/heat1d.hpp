// 1-D heat equation via the method of lines — the paper's stated future
// work ("we have also started to extend the domain of equation systems
// for which code can be generated to partial differential equations",
// §6).
//
//   u_t = alpha * u_xx  on (0, 1),  u(0, t) = u(1, t) = 0,
//   u(x, 0) = sin(k pi x)
//
// semidiscretized on N interior nodes: der(u_i) = alpha (u_{i-1} - 2 u_i
// + u_{i+1}) / dx^2. The discretization produces one large SCC (the
// bidirectional neighbor chain) with a banded Jacobian — a stiff system
// exercising the BDF/LSODA-like path, and another application where only
// equation-LEVEL parallelism is available.
#pragma once

#include "omx/model/model.hpp"

namespace omx::models {

struct Heat1dConfig {
  int n_cells = 20;       // interior nodes
  double alpha = 1.0;     // diffusivity
  int mode = 1;           // initial condition u0 = sin(mode*pi*x)
};

model::Model build_heat1d(expr::Context& ctx, const Heat1dConfig& cfg);

/// Analytic solution of the CONTINUOUS problem at (x, t); the
/// semidiscrete system converges to it as n_cells grows.
double heat1d_exact(const Heat1dConfig& cfg, double x, double t);

/// Analytic solution of the SEMIDISCRETE system (exact for any n_cells):
/// the sin(mode*pi*x) grid function is an eigenvector of the discrete
/// Laplacian with eigenvalue -4/dx^2 sin^2(mode*pi*dx/2).
double heat1d_semidiscrete_exact(const Heat1dConfig& cfg, int node,
                                 double t);

}  // namespace omx::models
