#include "omx/models/oscillator.hpp"

#include "omx/parser/parser.hpp"

namespace omx::models {

std::string oscillator_source() {
  return R"(// Figure 11 example: harmonic oscillator in explicit first-order form.
model Oscillator
  class Harmonic
    var x start 1;
    var y start 0;
    eq der(x) == y;
    eq der(y) == -x;
  end
  instance osc : Harmonic;
end
)";
}

model::Model build_oscillator(expr::Context& ctx) {
  return parser::parse_model(oscillator_source(), ctx);
}

}  // namespace omx::models
