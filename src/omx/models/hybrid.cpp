#include "omx/models/hybrid.hpp"

#include <cmath>

#include "omx/parser/parser.hpp"

namespace omx::models {

ode::Problem bouncing_ball_problem(const BouncingBall& cfg, double tend,
                                   bool terminal) {
  ode::Problem p;
  p.n = 2;  // [h, v]
  p.t0 = 0.0;
  p.tend = tend;
  p.y0 = {cfg.h0, 0.0};
  const double g = cfg.g;
  p.set_rhs([g](double, std::span<const double> y, std::span<double> ydot) {
    ydot[0] = y[1];
    ydot[1] = -g;
  });

  ode::EventSpec spec;
  ode::EventFunction impact;
  impact.name = "impact";
  impact.direction = ode::EventDirection::kFalling;
  impact.guard = [](double, std::span<const double> y) { return y[0]; };
  const double e = cfg.e;
  impact.reset = [e](double, std::span<double> y) {
    y[0] = 0.0;
    y[1] = -e * y[1];
  };
  impact.terminal = terminal;
  spec.functions.push_back(std::move(impact));
  p.events = std::make_shared<const ode::EventSpec>(std::move(spec));
  return p;
}

std::vector<double> bouncing_ball_bounce_times(const BouncingBall& cfg,
                                               double tend) {
  std::vector<double> times;
  double t = std::sqrt(2.0 * cfg.h0 / cfg.g);
  // Rebound speed after the k-th impact decays by e per bounce; each
  // flight lasts 2 v / g.
  double v = cfg.e * std::sqrt(2.0 * cfg.g * cfg.h0);
  while (t <= tend) {
    times.push_back(t);
    t += 2.0 * v / cfg.g;
    v *= cfg.e;
  }
  return times;
}

std::string bouncing_ball_source() {
  return R"(// Bouncing ball: free fall with an impact event (when clause).
model BouncingBall
  class Ball
    param g = 9.81;
    param e = 0.8;
    var h start 1;
    var v start 0;
    eq der(h) == v;
    eq der(v) == -g;
    when down h then v = -e*v, h = 0;
  end
  instance ball : Ball;
end
)";
}

model::Model build_bouncing_ball(expr::Context& ctx) {
  return parser::parse_model(bouncing_ball_source(), ctx);
}

ode::Problem coulomb_oscillator_problem(const CoulombOscillator& cfg,
                                        double tend) {
  ode::Problem p;
  p.n = 3;  // [x, v, s]
  p.t0 = 0.0;
  p.tend = tend;
  // x0 > 0 and v0 = 0: the mass starts moving left, so the initial
  // friction mode is s = -1 (friction force +mu opposes v < 0).
  p.y0 = {cfg.x0, 0.0, -1.0};
  const double mu = cfg.mu;
  p.set_rhs([mu](double, std::span<const double> y, std::span<double> ydot) {
    ydot[0] = y[1];
    ydot[1] = -y[0] - mu * y[2];
    ydot[2] = 0.0;
  });

  ode::EventSpec spec;
  ode::EventFunction turn;
  turn.name = "velocity_reversal";
  turn.direction = ode::EventDirection::kBoth;
  turn.guard = [](double, std::span<const double> y) { return y[1]; };
  turn.reset = [](double, std::span<double> y) { y[2] = -y[2]; };
  spec.functions.push_back(std::move(turn));
  p.events = std::make_shared<const ode::EventSpec>(std::move(spec));
  return p;
}

std::vector<double> coulomb_event_times(const CoulombOscillator& cfg,
                                        double tend) {
  std::vector<double> times;
  const double pi = 3.14159265358979323846;
  double amplitude = cfg.x0;  // distance from the current arc's center
  double t = pi;
  // Each half-cycle is a harmonic arc about +-mu, so velocity zeros land
  // at exactly k*pi; the amplitude shrinks by 2*mu per half-cycle and
  // the mass sticks once it cannot overcome friction.
  while (t <= tend && amplitude - 2.0 * cfg.mu > cfg.mu) {
    times.push_back(t);
    amplitude -= 2.0 * cfg.mu;
    t += pi;
  }
  return times;
}

ode::Problem switching_chemistry_problem(const SwitchingChemistry& cfg,
                                         double tend) {
  ode::Problem p;
  p.n = 2;  // [y, k]
  p.t0 = 0.0;
  p.tend = tend;
  p.y0 = {cfg.y0, cfg.k_slow};
  p.set_rhs([](double, std::span<const double> y, std::span<double> ydot) {
    ydot[0] = -y[1] * y[0];
    ydot[1] = 0.0;
  });

  ode::EventSpec spec;
  ode::EventFunction ignite;
  ignite.name = "rate_switch";
  ignite.direction = ode::EventDirection::kFalling;
  const double threshold = cfg.threshold;
  ignite.guard = [threshold](double, std::span<const double> y) {
    return y[0] - threshold;
  };
  const double k_fast = cfg.k_fast;
  ignite.reset = [k_fast](double, std::span<double> y) { y[1] = k_fast; };
  spec.functions.push_back(std::move(ignite));
  p.events = std::make_shared<const ode::EventSpec>(std::move(spec));
  return p;
}

double switching_chemistry_switch_time(const SwitchingChemistry& cfg) {
  return std::log(cfg.y0 / cfg.threshold) / cfg.k_slow;
}

}  // namespace omx::models
