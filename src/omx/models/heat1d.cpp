#include "omx/models/heat1d.hpp"

#include <cmath>
#include <numbers>
#include <string>

namespace omx::models {

using expr::Ex;

model::Model build_heat1d(expr::Context& ctx, const Heat1dConfig& cfg) {
  OMX_REQUIRE(cfg.n_cells >= 2, "heat1d needs at least 2 interior nodes");
  model::Model m("Heat1D", ctx);

  const int n = cfg.n_cells;
  const double dx = 1.0 / (n + 1);
  const double coef = cfg.alpha / (dx * dx);

  // class Rod: all nodes as members of one class instance — the natural
  // shape for a discretized field (one model object per physical field).
  model::ClassDef& c = m.add_class("Rod");
  auto u = [&](int i) {
    return ctx.var("u[" + std::to_string(i) + "]");
  };
  for (int i = 1; i <= n; ++i) {
    const double x = i * dx;
    const double u0 =
        std::sin(cfg.mode * std::numbers::pi * x);
    c.add_variable(model::Variable{
        ctx.symbol("u[" + std::to_string(i) + "]"),
        ctx.lit(u0).id(),
        {}});
  }
  for (int i = 1; i <= n; ++i) {
    const Ex left = (i > 1) ? u(i - 1) : ctx.lit(0.0);   // Dirichlet 0
    const Ex right = (i < n) ? u(i + 1) : ctx.lit(0.0);  // Dirichlet 0
    const Ex rhs = ctx.lit(coef) * (left - 2.0 * u(i) + right);
    c.add_equation(model::Equation{
        ctx.pool.der(
            ctx.pool.sym(ctx.symbol("u[" + std::to_string(i) + "]"))),
        rhs.id(),
        {}});
  }

  model::Instance rod;
  rod.name = "rod";
  rod.class_name = "Rod";
  m.add_instance(std::move(rod));
  return m;
}

double heat1d_exact(const Heat1dConfig& cfg, double x, double t) {
  const double kpi = cfg.mode * std::numbers::pi;
  return std::exp(-cfg.alpha * kpi * kpi * t) * std::sin(kpi * x);
}

double heat1d_semidiscrete_exact(const Heat1dConfig& cfg, int node,
                                 double t) {
  const int n = cfg.n_cells;
  const double dx = 1.0 / (n + 1);
  const double kpi = cfg.mode * std::numbers::pi;
  const double s = std::sin(kpi * dx / 2.0);
  const double lambda = -4.0 * cfg.alpha / (dx * dx) * s * s;
  return std::exp(lambda * t) * std::sin(kpi * node * dx);
}

}  // namespace omx::models
