// Coupled-oscillator network (Kuramoto model on a ring, after the
// coupled-network studies around arXiv:1702.02207): n phase oscillators
// with spread natural frequencies and nearest-neighbour sinusoidal
// coupling. The optional synchronization event watches the Kuramoto
// order parameter r(theta) and stops the run once the network locks —
// scenarios with different coupling strengths desynchronize ensemble
// lanes, which is exactly what the hybrid ensemble stress tests need.
#pragma once

#include "omx/ode/events.hpp"
#include "omx/ode/problem.hpp"

namespace omx::models {

struct CoupledOscillators {
  std::size_t n = 8;      // oscillators (state dimension)
  double coupling = 1.5;  // ring coupling strength K
  double spread = 0.5;    // natural frequencies omega_i spread over +-spread/2
  double omega0 = 1.0;    // mean natural frequency
  /// Order-parameter threshold for the sync event; <= 0 disables events.
  double sync_threshold = 0.0;
  bool sync_terminal = true;
};

/// Kuramoto order parameter r = |1/n sum exp(i theta_j)| in [0, 1].
double kuramoto_order(std::span<const double> theta);

/// theta_i' = omega_i + K (sin(theta_{i+1} - theta_i) +
///                         sin(theta_{i-1} - theta_i)) on a ring, with
/// deterministic initial phases and frequencies (no RNG: scenario
/// variation comes from the caller perturbing y0).
ode::Problem coupled_osc_problem(const CoupledOscillators& cfg, double tend);

}  // namespace omx::models
