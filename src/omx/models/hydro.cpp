#include "omx/models/hydro.hpp"

#include "omx/parser/parser.hpp"

namespace omx::models {

std::string hydro_source() {
  return R"((* Hydroelectric power plant: dam, six gate/turbine groups and a
   monitoring regulator. Gate setpoints follow a daily schedule (open
   loop), so each gate's servo loop is an independent SCC; flows couple
   forward into the dam level, turbine shafts and the regulator, forming
   a pipeline of downstream subsystems. *)
model HydroPlant
  class Valve
    param tau = 0.4;     // hydraulic actuator time constant
    var pos start 0;     // actuator position
    var cmd;             // commanded position; defined by the owning gate
    eq der(pos) == (cmd - pos)/tau;
  end

  class GateBase(phase)
    param kp = 2.0;
    param ki = 0.8;
    param cd = 8.8;        // discharge coefficient (balances mean inflow)
    param tail = 2.0;      // tailwater level [m]
    var angle start 0;     // gate opening angle [rad]
    var ip start 0;        // PI integrator
    var sp;                // scheduled setpoint
    var u;                 // controller output
    var q;                 // discharge flow [m^3/s]
    eq sp == 0.4 + 0.3*sin(0.2*time + phase) + 0.05*sin(1.3*time);
    eq u == kp*(sp - angle) + ki*ip;
    eq der(ip) == sp - angle;
    eq q == cd*angle*sqrt(max(dam.level - tail, 0.1));
  end

  class Gate(phase) inherits GateBase(phase)
    part act : Valve;      // composition: the gate owns its actuator
    eq act.cmd == u - 0.6*act.pos;
    eq der(angle) == act.pos;
  end

  class Turbine(gateq)
    param J = 500.0;       // shaft inertia
    param eta = 0.85;      // efficiency
    param rho_g = 9810.0;  // rho*g
    param damp = 40.0;
    var w start 8.0;       // shaft speed [rad/s]
    var power;             // generated power (algebraic)
    eq der(w) == (eta*rho_g*gateq*0.001 - damp*w)/J;
    eq power == eta*rho_g*gateq*(dam.level - 2.0)*0.001;
  end

  class Dam
    param area = 50000.0;  // reservoir surface area [m^2]
    var level start 10.0;  // surface level [m]
    var inflow;            // river inflow [m^3/s]
    eq inflow == 60.0 + 20.0*sin(0.05*time);
    eq der(level) == (inflow
                      - (g1.q + g2.q + g3.q + g4.q + g5.q + g6.q))/area;
  end

  class Regulator
    param tf = 5.0;        // level measurement filter
    param target = 10.0;   // licensed level (dam safety margin check)
    var lf start 10.0;     // filtered level
    var rip start 0;       // monitoring integrator (integral level error)
    eq der(lf) == (dam.level - lf)/tf;
    eq der(rip) == target - lf;
  end

  instance dam : Dam;
  instance g1 : Gate(0.0);
  instance g2 : Gate(0.5);
  instance g3 : Gate(1.0);
  instance g4 : Gate(1.5);
  instance g5 : Gate(2.0);
  instance g6 : Gate(2.5);
  instance t1 : Turbine(g1.q);
  instance t2 : Turbine(g2.q);
  instance t3 : Turbine(g3.q);
  instance t4 : Turbine(g4.q);
  instance t5 : Turbine(g5.q);
  instance t6 : Turbine(g6.q);
  instance reg : Regulator;
end
)";
}

model::Model build_hydro(expr::Context& ctx) {
  return parser::parse_model(hydro_source(), ctx);
}

}  // namespace omx::models
