// The paper's running example (Figure 11): x' = y, y' = -x.
#pragma once

#include <string>

#include "omx/model/model.hpp"

namespace omx::models {

/// OMX-language source text of the oscillator model.
std::string oscillator_source();

/// Parses oscillator_source().
model::Model build_oscillator(expr::Context& ctx);

}  // namespace omx::models
