#include "omx/models/bearing2d.hpp"

#include <cmath>

#include "omx/model/flatten.hpp"
#include <numbers>
#include <string>

namespace omx::models {

using expr::Ex;

model::Model build_bearing(expr::Context& ctx, const BearingConfig& cfg) {
  OMX_REQUIRE(cfg.n_rollers >= 2, "bearing needs at least 2 rollers");
  model::Model m("Bearing2D", ctx);

  const double Ri = cfg.inner_race_radius;
  const double Ro = cfg.outer_race_radius();
  const double r = cfg.roller_radius;
  const double Rp = cfg.pitch_radius();
  const double roller_inertia =
      0.5 * cfg.roller_mass * r * r;  // solid cylinder

  // Initial kinematics: inner ring spins at inner_speed0; rollers start on
  // the pitch circle orbiting at (approximately) the cage speed and
  // spinning at the kinematic rolling rate. Small inconsistencies are
  // absorbed by the regularized friction within the first revolutions.
  const double cage_speed = cfg.inner_speed0 * Ri / (Ri + Ro);
  const double roller_spin = cfg.inner_speed0 * Ri / (2.0 * r);

  auto v = [&](const std::string& name) { return ctx.var(name); };
  auto lit = [&](double x) { return ctx.lit(x); };

  // ---------------------------------------------------------------------
  // class SpinningElement(x0, y0, vx0, vy0, w0) — planar rigid body base:
  // position/velocity states with parameterized start values.
  // ---------------------------------------------------------------------
  {
    model::ClassDef& c = m.add_class("SpinningElement");
    const char* formals[] = {"x0", "y0", "vx0", "vy0", "w0"};
    const char* states[] = {"x", "y", "vx", "vy", "omega"};
    for (int i = 0; i < 5; ++i) {
      c.add_formal(ctx.symbol(formals[i]));
    }
    for (int i = 0; i < 5; ++i) {
      c.add_variable(model::Variable{ctx.symbol(states[i]),
                                     ctx.var(formals[i]).id(),
                                     {}});
    }
    c.add_equation(model::Equation{ctx.der("x").id(), v("vx").id(), {}});
    c.add_equation(model::Equation{ctx.der("y").id(), v("vy").id(), {}});
  }

  // ---------------------------------------------------------------------
  // class Roller(phi) inherits SpinningElement(...) — one rolling element
  // with Hertz-like contacts against both raceways.
  // ---------------------------------------------------------------------
  {
    model::ClassDef& c = m.add_class("Roller");
    const SymbolId phi = ctx.symbol("phi");
    c.add_formal(phi);
    const Ex phi_e = Ex::symbol(ctx.pool, phi);
    c.set_base("SpinningElement",
               {(lit(Rp) * cos(phi_e)).id(), (lit(Rp) * sin(phi_e)).id(),
                (lit(-cage_speed * Rp) * sin(phi_e)).id(),
                (lit(cage_speed * Rp) * cos(phi_e)).id(),
                lit(roller_spin).id()});

    auto alg = [&](const std::string& name, Ex rhs) {
      c.add_variable(model::Variable{ctx.symbol(name), expr::kNoExpr, {}});
      c.add_equation(model::Equation{v(name).id(), rhs.id(), {}});
    };

    const Ex x = v("x"), y = v("y"), vx = v("vx"), vy = v("vy"),
             w = v("omega");
    const Ex ix = v("inner.x"), iy = v("inner.y"), ivx = v("inner.vx"),
             ivy = v("inner.vy"), iw = v("inner.omega");

    // -- inner raceway contact ---------------------------------------------
    alg("dxi", x - ix);
    alg("dyi", y - iy);
    alg("di", hypot(v("dxi"), v("dyi")));
    alg("nxi", v("dxi") / v("di"));
    alg("nyi", v("dyi") / v("di"));
    alg("deltai", lit(Ri + r) - v("di"));
    alg("gatei", max(sign(v("deltai")), 0.0));  // 1 when in contact
    alg("ddoti",
        -(v("dxi") * (vx - ivx) + v("dyi") * (vy - ivy)) / v("di"));
    alg("fni",
        max(v("gatei") * (lit(cfg.contact_stiffness) *
                              pow(max(v("deltai"), 0.0), 1.5) +
                          lit(cfg.contact_damping) * v("ddoti")),
            0.0));
    // Tangent t = (-ny, nx); slip of roller surface against inner surface.
    alg("slipi",
        (vx + w * lit(r) * v("nyi") - ivx + iw * lit(Ri) * v("nyi")) *
                (-v("nyi")) +
            (vy - w * lit(r) * v("nxi") - ivy - iw * lit(Ri) * v("nxi")) *
                v("nxi"));
    alg("si", -(lit(cfg.friction_mu) * v("fni") *
                tanh(v("slipi") / lit(cfg.slip_eps))));

    // -- outer raceway contact (ring fixed, centered at the origin) --------
    alg("dc", hypot(x, y));
    alg("nxo", x / v("dc"));
    alg("nyo", y / v("dc"));
    alg("deltao", v("dc") + lit(r) - lit(Ro));
    alg("gateo", max(sign(v("deltao")), 0.0));
    alg("ddoto", (x * vx + y * vy) / v("dc"));
    alg("fno",
        max(v("gateo") * (lit(cfg.contact_stiffness) *
                              pow(max(v("deltao"), 0.0), 1.5) +
                          lit(cfg.contact_damping) * v("ddoto")),
            0.0));
    alg("slipo", vx * (-v("nyo")) + vy * v("nxo") + w * lit(r));
    alg("so", -(lit(cfg.friction_mu) * v("fno") *
                tanh(v("slipo") / lit(cfg.slip_eps))));

    // -- force and moment balance on the roller ----------------------------
    alg("fx", v("fni") * v("nxi") - v("fno") * v("nxo") +
                  v("si") * (-v("nyi")) + v("so") * (-v("nyo")));
    alg("fy", v("fni") * v("nyi") - v("fno") * v("nyo") +
                  v("si") * v("nxi") + v("so") * v("nxo") -
                  lit(cfg.roller_mass * cfg.gravity));
    // Inner contact acts at -r*n_i, outer at +r*n_o.
    alg("tq", lit(-r) * v("si") + lit(r) * v("so") -
                  lit(cfg.spin_damping) * w);

    // Reactions exported to the inner ring (force equilibrium, Figure 1).
    alg("rfx", -(v("fni") * v("nxi") + v("si") * (-v("nyi"))));
    alg("rfy", -(v("fni") * v("nyi") + v("si") * v("nxi")));
    alg("rtq", lit(-Ri) * v("si"));

    c.add_equation(model::Equation{
        ctx.der("vx").id(), (v("fx") / lit(cfg.roller_mass)).id(), {}});
    c.add_equation(model::Equation{
        ctx.der("vy").id(), (v("fy") / lit(cfg.roller_mass)).id(), {}});
    c.add_equation(model::Equation{
        ctx.der("omega").id(), (v("tq") / lit(roller_inertia)).id(), {}});
  }

  // ---------------------------------------------------------------------
  // class InnerRing inherits SpinningElement(0,0,0,0,w_drive) — driven
  // ring on an elastic shaft support; collects all roller reactions.
  // ---------------------------------------------------------------------
  {
    model::ClassDef& c = m.add_class("InnerRing");
    c.set_base("SpinningElement",
               {lit(0.0).id(), lit(0.0).id(), lit(0.0).id(), lit(0.0).id(),
                lit(cfg.inner_speed0).id()});
    c.add_variable(model::Variable{ctx.symbol("theta"), expr::kNoExpr, {}});

    auto roller_sum = [&](const std::string& member) {
      Ex acc = v("w[1]." + member);
      for (int i = 2; i <= cfg.n_rollers; ++i) {
        acc = acc + v("w[" + std::to_string(i) + "]." + member);
      }
      return acc;
    };

    const Ex fx = roller_sum("rfx") - lit(cfg.shaft_stiffness) * v("x") -
                  lit(cfg.shaft_damping) * v("vx");
    const Ex fy = roller_sum("rfy") - lit(cfg.shaft_stiffness) * v("y") -
                  lit(cfg.shaft_damping) * v("vy") -
                  lit(cfg.radial_load + cfg.inner_mass * cfg.gravity);
    const Ex tq = lit(cfg.drive_torque) + roller_sum("rtq") -
                  lit(cfg.inner_spin_damping) * v("omega");

    c.add_equation(model::Equation{
        ctx.der("vx").id(), (fx / lit(cfg.inner_mass)).id(), {}});
    c.add_equation(model::Equation{
        ctx.der("vy").id(), (fy / lit(cfg.inner_mass)).id(), {}});
    c.add_equation(model::Equation{
        ctx.der("omega").id(), (tq / lit(cfg.inner_inertia)).id(), {}});
    // Rotation angle: integrates omega, feeds nothing back — the single
    // equation outside the big SCC (Figure 6).
    c.add_equation(
        model::Equation{ctx.der("theta").id(), v("omega").id(), {}});
  }

  model::Instance inner;
  inner.name = "inner";
  inner.class_name = "InnerRing";
  m.add_instance(std::move(inner));

  model::Instance rollers;
  rollers.name = "w";
  rollers.is_array = true;
  rollers.lo = 1;
  rollers.hi = cfg.n_rollers;
  rollers.class_name = "Roller";
  const Ex idx = ctx.var(model::kIndexSymbolName);
  rollers.args.push_back(
      ((idx - 1.0) * lit(2.0 * std::numbers::pi / cfg.n_rollers)).id());
  m.add_instance(std::move(rollers));

  return m;
}

}  // namespace omx::models
