// The "trivial servo example" mentioned in the paper's conclusions: a
// model that partitions well at the equation-system level. Three
// independent DC-motor servo axes (current, speed, angle, PI integrator)
// tracking time-scheduled references: each axis is its own strongly
// connected component.
#pragma once

#include <string>

#include "omx/model/model.hpp"

namespace omx::models {

std::string servo_source();

model::Model build_servo(expr::Context& ctx);

}  // namespace omx::models
