// 2-D cylindrical rolling bearing (§2.5, Figures 4-6): a fixed outer ring,
// a driven inner ring on an elastic shaft support, and N rolling elements
// with Hertz-like normal contacts and regularized Coulomb friction against
// both raceways.
//
// Model structure mirrors the paper's: every equation ends up in one big
// strongly connected component except the inner ring's rotation angle
// (nothing feeds back from it) — "all equations are strongly connected
// except one" (Figure 6).
//
// States (5 per roller + 6 for the inner ring):
//   w[i].x, w[i].y, w[i].vx, w[i].vy, w[i].omega
//   inner.x, inner.y, inner.vx, inner.vy, inner.omega, inner.theta
//
// Contact gating (max/sign on the penetration) makes the per-roller cost
// load-dependent — the conditional-expression imbalance that motivates the
// paper's semi-dynamic LPT scheduling (§3.2.3).
#pragma once

#include "omx/model/model.hpp"

namespace omx::models {

struct BearingConfig {
  int n_rollers = 10;

  // Geometry [m].
  double inner_race_radius = 0.04;   // Ri: outer surface of inner ring
  double roller_radius = 0.01;       // r
  double clearance = 20e-6;          // diametral play

  // Contact law.
  double contact_stiffness = 5e7;    // k: f_n = k * delta^1.5
  double contact_damping = 2e3;      // c: + c * delta_dot (gated)
  double friction_mu = 0.05;
  double slip_eps = 1e-3;            // tanh regularization velocity [m/s]

  // Masses and inertias.
  double roller_mass = 0.05;
  double inner_mass = 1.2;
  double inner_inertia = 8e-4;

  // Loads and drive.
  double inner_speed0 = 80.0;        // initial inner ring speed [rad/s]
  double drive_torque = 2.0;         // on the inner ring [N m]
  double radial_load = 500.0;        // downward on the inner ring [N]
  double gravity = 9.81;
  double shaft_stiffness = 2e6;      // elastic support of the inner ring
  double shaft_damping = 4e3;
  double spin_damping = 1e-4;        // roller spin drag
  double inner_spin_damping = 1e-3;

  /// Outer raceway radius Ro = Ri + 2r + clearance.
  double outer_race_radius() const {
    return inner_race_radius + 2.0 * roller_radius + clearance;
  }
  /// Pitch radius: nominal roller-center orbit.
  double pitch_radius() const {
    return inner_race_radius + roller_radius + 0.5 * clearance;
  }
};

/// Builds the OO bearing model (classes Roller/InnerRing, instance array
/// w[1..N]).
model::Model build_bearing(expr::Context& ctx, const BearingConfig& cfg);

}  // namespace omx::models
