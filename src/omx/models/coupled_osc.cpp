#include "omx/models/coupled_osc.hpp"

#include <cmath>
#include <vector>

namespace omx::models {

double kuramoto_order(std::span<const double> theta) {
  double re = 0.0, im = 0.0;
  for (const double th : theta) {
    re += std::cos(th);
    im += std::sin(th);
  }
  const double n = static_cast<double>(theta.size());
  return std::sqrt(re * re + im * im) / n;
}

ode::Problem coupled_osc_problem(const CoupledOscillators& cfg,
                                 double tend) {
  OMX_REQUIRE(cfg.n >= 2, "coupled_osc: need at least 2 oscillators");
  const std::size_t n = cfg.n;
  std::vector<double> omega(n);
  std::vector<double> theta0(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double frac =
        static_cast<double>(i) / static_cast<double>(n - 1) - 0.5;
    omega[i] = cfg.omega0 + cfg.spread * frac;
    // Deterministic staggered initial phases, well away from sync.
    theta0[i] = 2.0 * frac;
  }

  ode::Problem p;
  p.n = n;
  p.t0 = 0.0;
  p.tend = tend;
  p.y0 = theta0;
  const double k = cfg.coupling;
  p.set_rhs([omega, k, n](double, std::span<const double> y,
                          std::span<double> ydot) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t prev = (i + n - 1) % n;
      const std::size_t next = (i + 1) % n;
      ydot[i] = omega[i] + k * (std::sin(y[next] - y[i]) +
                                std::sin(y[prev] - y[i]));
    }
  });

  if (cfg.sync_threshold > 0.0) {
    ode::EventSpec spec;
    ode::EventFunction sync;
    sync.name = "sync";
    sync.direction = ode::EventDirection::kRising;
    const double target = cfg.sync_threshold;
    sync.guard = [target](double, std::span<const double> y) {
      return kuramoto_order(y) - target;
    };
    sync.terminal = cfg.sync_terminal;
    spec.functions.push_back(std::move(sync));
    p.events = std::make_shared<const ode::EventSpec>(std::move(spec));
  }
  return p;
}

}  // namespace omx::models
