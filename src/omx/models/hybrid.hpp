// Hybrid (event-driven) workloads for the solver suite: models whose
// dynamics switch at zero crossings. Each comes as a ready-made
// ode::Problem with an attached ode::EventSpec plus the analytic event
// times the differential tests pin against. The bouncing ball also has
// an OMX-language source with a `when` clause for the parser/codegen
// paths.
#pragma once

#include <string>
#include <vector>

#include "omx/model/model.hpp"
#include "omx/ode/events.hpp"
#include "omx/ode/problem.hpp"

namespace omx::models {

// --------------------------------------------------------- bouncing ball
// h' = v, v' = -g; impact when h crosses zero falling: v := -e v.

struct BouncingBall {
  double g = 9.81;  // gravity
  double e = 0.8;   // coefficient of restitution
  double h0 = 1.0;  // drop height (v0 = 0)
};

/// Problem over [0, tend] with the impact event attached
/// (Problem::events). A `terminal` build stops at the first impact.
ode::Problem bouncing_ball_problem(const BouncingBall& cfg, double tend,
                                   bool terminal = false);

/// Analytic impact times in (0, tend]: t1 = sqrt(2 h0 / g), then flight
/// times scale by e per bounce.
std::vector<double> bouncing_ball_bounce_times(const BouncingBall& cfg,
                                               double tend);

/// OMX-language source of the bouncing ball with a `when` clause.
std::string bouncing_ball_source();

/// Parses bouncing_ball_source().
model::Model build_bouncing_ball(expr::Context& ctx);

// --------------------------------------- Coulomb-friction oscillator
// x' = v, v' = -x - mu * s with the friction mode s in {-1, +1} carried
// as a constant state; the event flips s when v crosses zero. Velocity
// zeros land at exactly k*pi regardless of mu (the half-period of the
// shifted harmonic arcs), which gives exact analytic event times.

struct CoulombOscillator {
  double mu = 0.2;  // Coulomb friction level (x0 > 3*mu keeps it moving)
  double x0 = 2.0;  // initial displacement (v0 = 0)
};

ode::Problem coulomb_oscillator_problem(const CoulombOscillator& cfg,
                                        double tend);

/// Analytic velocity-zero times k*pi in (0, tend], truncated before the
/// stick regime (amplitude <= 3*mu).
std::vector<double> coulomb_event_times(const CoulombOscillator& cfg,
                                        double tend);

// ------------------------------------------- switching stiff chemistry
// y' = -k y with the rate carried as a state (k' = 0); when y falls
// through `threshold` the event switches k_slow -> k_fast, turning the
// problem stiff mid-run — the post-event restart must refresh the
// BDF/LSODA Jacobian to survive it.

struct SwitchingChemistry {
  double k_slow = 1.0;
  double k_fast = 1e4;
  double threshold = 0.5;
  double y0 = 1.0;
};

ode::Problem switching_chemistry_problem(const SwitchingChemistry& cfg,
                                         double tend);

/// Analytic switch time ln(y0 / threshold) / k_slow.
double switching_chemistry_switch_time(const SwitchingChemistry& cfg);

}  // namespace omx::models
