// Hydroelectric power plant model (§2.5, Figure 3): dam, six gate/turbine
// groups and a monitoring regulator, modeled after the paper's Älvkarleby
// example. The focus is water levels and flow through the plant.
//
// The dependency structure reproduces Figure 3's character: one SCC per
// gate servo loop (angle/valve/integrator), trivial downstream SCCs for
// each turbine shaft, the dam surface level, the level filter and the
// regulator integrator — a mix of parallel subsystems and a pipeline.
#pragma once

#include <string>

#include "omx/model/model.hpp"

namespace omx::models {

std::string hydro_source();

model::Model build_hydro(expr::Context& ctx);

}  // namespace omx::models
