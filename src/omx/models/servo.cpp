#include "omx/models/servo.hpp"

#include "omx/parser/parser.hpp"

namespace omx::models {

std::string servo_source() {
  return R"((* Three independent DC-motor position servos with PI control.
   Each axis closes its own feedback loop and shares nothing with the
   others, so the dependency analysis finds one SCC per axis. *)
model Servo
  class Motor(phase)
    param R = 1.2;      // armature resistance [ohm]
    param L = 0.02;     // armature inductance [H]
    param Ke = 0.1;     // back-EMF constant
    param Kt = 0.1;     // torque constant
    param J = 0.004;    // rotor inertia
    param b = 0.01;     // viscous friction
    param Kp = 6.0;
    param Ki = 2.5;

    var i start 0;      // armature current
    var w start 0;      // angular velocity
    var th start 0;     // shaft angle
    var ei start 0;     // PI integrator

    var ref;            // scheduled reference (algebraic)
    var u;              // controller output voltage (algebraic)

    eq ref == sin(time + phase);
    eq u == Kp*(ref - th) + Ki*ei;
    eq der(ei) == ref - th;
    eq der(i) == (u - R*i - Ke*w)/L;
    eq der(w) == (Kt*i - b*w)/J;
    eq der(th) == w;
  end

  class FastMotor(phase) inherits Motor(phase)
    param Kp = 12.0;    // variant: stiffer position loop
    param J = 0.002;
  end

  instance axis[1..2] : Motor(0.5*index);
  instance boost : FastMotor(1.7);
end
)";
}

model::Model build_servo(expr::Context& ctx) {
  return parser::parse_model(servo_source(), ctx);
}

}  // namespace omx::models
