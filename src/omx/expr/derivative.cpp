#include "omx/expr/derivative.hpp"

#include <unordered_map>
#include <vector>

namespace omx::expr {

namespace {

class Differ {
 public:
  Differ(Pool& pool, SymbolId sym) : p_(pool), sym_(sym) {}

  ExprId run(ExprId id) {
    if (auto it = memo_.find(id); it != memo_.end()) {
      return it->second;
    }
    const Node n = p_.node(id);  // copy, pool may grow
    ExprId r = kNoExpr;
    switch (n.op) {
      case Op::kConst:
        r = zero();
        break;
      case Op::kSym:
        r = (static_cast<SymbolId>(n.a) == sym_) ? one() : zero();
        break;
      case Op::kAdd:
        r = p_.add(run(n.a), run(n.b));
        break;
      case Op::kSub:
        r = p_.sub(run(n.a), run(n.b));
        break;
      case Op::kMul:
        // (uv)' = u'v + uv'
        r = p_.add(p_.mul(run(n.a), n.b), p_.mul(n.a, run(n.b)));
        break;
      case Op::kDiv:
        // (u/v)' = (u'v - uv') / v^2
        r = p_.div(p_.sub(p_.mul(run(n.a), n.b), p_.mul(n.a, run(n.b))),
                   p_.mul(n.b, n.b));
        break;
      case Op::kPow:
        r = diff_pow(n.a, n.b);
        break;
      case Op::kNeg:
        r = p_.neg(run(n.a));
        break;
      case Op::kCall1:
        r = p_.mul(d_func1(static_cast<Func1>(n.fn), n.a), run(n.a));
        break;
      case Op::kCall2:
        r = diff_func2(static_cast<Func2>(n.fn), n.a, n.b);
        break;
      case Op::kDer:
        throw omx::Error("differentiate: der() is not a value");
    }
    memo_[id] = r;
    return r;
  }

 private:
  ExprId zero() { return p_.constant(0.0); }
  ExprId one() { return p_.constant(1.0); }

  ExprId diff_pow(ExprId base, ExprId expo) {
    const Node& e = p_.node(expo);
    if (e.op == Op::kConst) {
      // (u^c)' = c * u^(c-1) * u'
      const double c = p_.const_value(expo);
      return p_.mul(p_.mul(p_.constant(c), p_.pow(base, p_.constant(c - 1.0))),
                    run(base));
    }
    // General case: u^v = exp(v log u);  (u^v)' = u^v (v' log u + v u'/u).
    const ExprId uv = p_.pow(base, expo);
    const ExprId term1 = p_.mul(run(expo), p_.call(Func1::kLog, base));
    const ExprId term2 = p_.div(p_.mul(expo, run(base)), base);
    return p_.mul(uv, p_.add(term1, term2));
  }

  /// d f(u) / du (the outer derivative; the chain-rule factor u' is applied
  /// by the caller).
  ExprId d_func1(Func1 f, ExprId u) {
    switch (f) {
      case Func1::kSin:
        return p_.call(Func1::kCos, u);
      case Func1::kCos:
        return p_.neg(p_.call(Func1::kSin, u));
      case Func1::kTan: {
        const ExprId c = p_.call(Func1::kCos, u);
        return p_.div(one(), p_.mul(c, c));
      }
      case Func1::kAsin:
        return p_.div(one(),
                      p_.call(Func1::kSqrt,
                              p_.sub(one(), p_.mul(u, u))));
      case Func1::kAcos:
        return p_.neg(p_.div(one(), p_.call(Func1::kSqrt,
                                            p_.sub(one(), p_.mul(u, u)))));
      case Func1::kAtan:
        return p_.div(one(), p_.add(one(), p_.mul(u, u)));
      case Func1::kSinh:
        return p_.call(Func1::kCosh, u);
      case Func1::kCosh:
        return p_.call(Func1::kSinh, u);
      case Func1::kTanh: {
        const ExprId t = p_.call(Func1::kTanh, u);
        return p_.sub(one(), p_.mul(t, t));
      }
      case Func1::kExp:
        return p_.call(Func1::kExp, u);
      case Func1::kLog:
        return p_.div(one(), u);
      case Func1::kSqrt:
        return p_.div(one(), p_.mul(p_.constant(2.0),
                                    p_.call(Func1::kSqrt, u)));
      case Func1::kAbs:
        return p_.call(Func1::kSign, u);
      case Func1::kSign:
        return zero();
    }
    OMX_REQUIRE(false, "unknown Func1");
    return kNoExpr;
  }

  ExprId diff_func2(Func2 f, ExprId a, ExprId b) {
    switch (f) {
      case Func2::kAtan2: {
        // d atan2(y, x) = (y' x - y x') / (x^2 + y^2)
        const ExprId denom = p_.add(p_.mul(b, b), p_.mul(a, a));
        return p_.div(p_.sub(p_.mul(run(a), b), p_.mul(a, run(b))), denom);
      }
      case Func2::kMin: {
        // min(a,b) = (a + b - |a-b|)/2
        return half_abs_identity(a, b, /*plus=*/false);
      }
      case Func2::kMax: {
        return half_abs_identity(a, b, /*plus=*/true);
      }
      case Func2::kHypot: {
        // d hypot(a,b) = (a a' + b b') / hypot(a,b)
        const ExprId h = p_.call(Func2::kHypot, a, b);
        return p_.div(p_.add(p_.mul(a, run(a)), p_.mul(b, run(b))), h);
      }
    }
    OMX_REQUIRE(false, "unknown Func2");
    return kNoExpr;
  }

  ExprId half_abs_identity(ExprId a, ExprId b, bool plus) {
    const ExprId da = run(a);
    const ExprId db = run(b);
    const ExprId sgn = p_.call(Func1::kSign, p_.sub(a, b));
    const ExprId sum = p_.add(da, db);
    const ExprId diff = p_.mul(sgn, p_.sub(da, db));
    const ExprId numer = plus ? p_.add(sum, diff) : p_.sub(sum, diff);
    return p_.div(numer, p_.constant(2.0));
  }

  Pool& p_;
  SymbolId sym_;
  std::unordered_map<ExprId, ExprId> memo_;
};

}  // namespace

ExprId differentiate(Pool& pool, ExprId id, SymbolId sym) {
  return Differ(pool, sym).run(id);
}

}  // namespace omx::expr
