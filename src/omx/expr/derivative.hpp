// Symbolic differentiation: d expr / d symbol.
//
// Used to generate analytic Jacobians for the implicit (BDF) solvers —
// the paper notes that supplying the solver with a generated Jacobian
// function "might reduce computation time drastically" (§3.2.1).
#pragma once

#include "omx/expr/pool.hpp"

namespace omx::expr {

/// Returns d(id)/d(sym) as a new expression in `pool`.
///
/// Differentiable everywhere except:
///  * abs  -> sign (subgradient at 0),
///  * sign -> 0 (distributional spike ignored),
///  * min/max -> via the identities min(a,b) = (a+b-|a-b|)/2,
///    max(a,b) = (a+b+|a-b|)/2.
/// kDer nodes are rejected.
ExprId differentiate(Pool& pool, ExprId id, SymbolId sym);

}  // namespace omx::expr
