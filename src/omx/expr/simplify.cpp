#include "omx/expr/simplify.hpp"

#include <cmath>
#include <unordered_map>

#include "omx/expr/eval.hpp"

namespace omx::expr {

namespace {

class Simplifier {
 public:
  explicit Simplifier(Pool& pool) : p_(pool) {}

  ExprId run(ExprId id) {
    if (auto it = memo_.find(id); it != memo_.end()) {
      return it->second;
    }
    const Node n = p_.node(id);  // copy, pool may grow
    ExprId r;
    switch (n.op) {
      case Op::kConst:
      case Op::kSym:
      case Op::kDer:
        r = id;
        break;
      case Op::kAdd:
        r = mk_add(run(n.a), run(n.b));
        break;
      case Op::kSub:
        r = mk_sub(run(n.a), run(n.b));
        break;
      case Op::kMul:
        r = mk_mul(run(n.a), run(n.b));
        break;
      case Op::kDiv:
        r = mk_div(run(n.a), run(n.b));
        break;
      case Op::kPow:
        r = mk_pow(run(n.a), run(n.b));
        break;
      case Op::kNeg:
        r = mk_neg(run(n.a));
        break;
      case Op::kCall1:
        r = mk_call1(static_cast<Func1>(n.fn), run(n.a));
        break;
      case Op::kCall2:
        r = mk_call2(static_cast<Func2>(n.fn), run(n.a), run(n.b));
        break;
      default:
        OMX_REQUIRE(false, "unreachable");
        r = id;
    }
    memo_[id] = r;
    return r;
  }

 private:
  bool cst(ExprId e, double& out) const {
    if (p_.node(e).op == Op::kConst) {
      out = p_.const_value(e);
      return true;
    }
    return false;
  }

  ExprId mk_add(ExprId a, ExprId b) {
    double ca = 0.0, cb = 0.0;
    const bool ka = cst(a, ca), kb = cst(b, cb);
    if (ka && kb) return p_.constant(ca + cb);
    if (ka && ca == 0.0) return b;
    if (kb && cb == 0.0) return a;
    // x + (-y) -> x - y
    if (p_.node(b).op == Op::kNeg) return mk_sub(a, p_.node(b).a);
    if (p_.node(a).op == Op::kNeg) return mk_sub(b, p_.node(a).a);
    return p_.add(a, b);
  }

  ExprId mk_sub(ExprId a, ExprId b) {
    double ca = 0.0, cb = 0.0;
    const bool ka = cst(a, ca), kb = cst(b, cb);
    if (ka && kb) return p_.constant(ca - cb);
    if (kb && cb == 0.0) return a;
    if (ka && ca == 0.0) return mk_neg(b);
    if (a == b) return p_.constant(0.0);
    // x - (-y) -> x + y
    if (p_.node(b).op == Op::kNeg) return mk_add(a, p_.node(b).a);
    return p_.sub(a, b);
  }

  ExprId mk_mul(ExprId a, ExprId b) {
    double ca = 0.0, cb = 0.0;
    const bool ka = cst(a, ca), kb = cst(b, cb);
    if (ka && kb) return p_.constant(ca * cb);
    if ((ka && ca == 0.0) || (kb && cb == 0.0)) return p_.constant(0.0);
    if (ka && ca == 1.0) return b;
    if (kb && cb == 1.0) return a;
    if (ka && ca == -1.0) return mk_neg(b);
    if (kb && cb == -1.0) return mk_neg(a);
    // (-x) * (-y) -> x * y
    if (p_.node(a).op == Op::kNeg && p_.node(b).op == Op::kNeg) {
      return mk_mul(p_.node(a).a, p_.node(b).a);
    }
    return p_.mul(a, b);
  }

  ExprId mk_div(ExprId a, ExprId b) {
    double ca = 0.0, cb = 0.0;
    const bool ka = cst(a, ca), kb = cst(b, cb);
    if (kb && cb != 0.0) {
      if (ka) return p_.constant(ca / cb);
      if (cb == 1.0) return a;
      if (cb == -1.0) return mk_neg(a);
    }
    if (ka && ca == 0.0 && !(kb && cb == 0.0)) {
      // 0 / x: preserved only when the denominator is a nonzero constant;
      // for symbolic denominators, 0/0 would change semantics at x == 0.
      if (kb) return p_.constant(0.0);
    }
    return p_.div(a, b);
  }

  ExprId mk_pow(ExprId a, ExprId b) {
    double ca = 0.0, cb = 0.0;
    const bool ka = cst(a, ca), kb = cst(b, cb);
    if (ka && kb) return p_.constant(std::pow(ca, cb));
    if (kb) {
      if (cb == 0.0) return p_.constant(1.0);  // pow(x,0)==1, incl. x==0
      if (cb == 1.0) return a;
      if (cb == 2.0) return mk_mul(a, a);
    }
    return p_.pow(a, b);
  }

  ExprId mk_neg(ExprId a) {
    double ca;
    if (cst(a, ca)) return p_.constant(-ca);
    if (p_.node(a).op == Op::kNeg) return p_.node(a).a;  // --x -> x
    return p_.neg(a);
  }

  ExprId mk_call1(Func1 f, ExprId a) {
    double ca;
    if (cst(a, ca)) {
      const double v = apply_func1(f, ca);
      if (std::isfinite(v)) return p_.constant(v);
    }
    // abs(abs(x)) -> abs(x); abs(-x) -> abs(x)
    if (f == Func1::kAbs) {
      const Node& n = p_.node(a);
      if (n.op == Op::kCall1 && static_cast<Func1>(n.fn) == Func1::kAbs) {
        return a;
      }
      if (n.op == Op::kNeg) return p_.call(Func1::kAbs, n.a);
    }
    return p_.call(f, a);
  }

  ExprId mk_call2(Func2 f, ExprId a, ExprId b) {
    double ca = 0.0, cb = 0.0;
    if (cst(a, ca) && cst(b, cb)) {
      const double v = apply_func2(f, ca, cb);
      if (std::isfinite(v)) return p_.constant(v);
    }
    if ((f == Func2::kMin || f == Func2::kMax) && a == b) return a;
    return p_.call(f, a, b);
  }

  Pool& p_;
  std::unordered_map<ExprId, ExprId> memo_;
};

}  // namespace

ExprId simplify(Pool& pool, ExprId id) { return Simplifier(pool).run(id); }

}  // namespace omx::expr
