// Hash-consed symbolic expression DAG.
//
// Every distinct expression node is stored exactly once in a Pool; building
// the same subexpression twice returns the same ExprId. This gives
//  * O(1) structural equality (id comparison),
//  * free sharing detection for common-subexpression elimination (a node
//    referenced from several parents *is* a common subexpression),
//  * compact cache-friendly storage (nodes are 16 bytes, children are ids).
//
// Nodes are immutable; all transformations (simplify, differentiate,
// substitute) build new nodes in the same pool.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "omx/support/diagnostics.hpp"
#include "omx/support/interner.hpp"

namespace omx::expr {

/// Index of a node inside its Pool.
using ExprId = std::uint32_t;

inline constexpr ExprId kNoExpr = 0xffffffffu;

enum class Op : std::uint8_t {
  kConst,  // payload a = index into the pool's constant table
  kSym,    // payload a = SymbolId
  kAdd,    // a + b
  kSub,    // a - b
  kMul,    // a * b
  kDiv,    // a / b
  kPow,    // a ^ b
  kNeg,    // -a
  kCall1,  // fn(a), fn is a Func1
  kCall2,  // fn(a, b), fn is a Func2
  kDer,    // der(a): time-derivative marker, only legal as an equation LHS
};

enum class Func1 : std::uint8_t {
  kSin,
  kCos,
  kTan,
  kAsin,
  kAcos,
  kAtan,
  kSinh,
  kCosh,
  kTanh,
  kExp,
  kLog,
  kSqrt,
  kAbs,
  kSign,  // -1 / 0 / +1
};

enum class Func2 : std::uint8_t {
  kAtan2,
  kMin,
  kMax,
  kHypot,
};

const char* func1_name(Func1 f);
const char* func2_name(Func2 f);

/// One immutable DAG node. For leaf ops `a` holds the payload; for unary
/// ops `b` is unused (kNoExpr); `fn` is only meaningful for kCall1/kCall2.
struct Node {
  Op op;
  std::uint8_t fn = 0;
  ExprId a = kNoExpr;
  ExprId b = kNoExpr;

  bool operator==(const Node& o) const = default;
};

/// Append-only hash-consing store for expression nodes.
class Pool {
 public:
  // -- leaf constructors ----------------------------------------------------
  ExprId constant(double value);
  ExprId sym(SymbolId s);

  // -- compound constructors (no algebraic rewriting; see simplify.hpp) -----
  ExprId add(ExprId a, ExprId b) { return intern(Op::kAdd, 0, a, b); }
  ExprId sub(ExprId a, ExprId b) { return intern(Op::kSub, 0, a, b); }
  ExprId mul(ExprId a, ExprId b) { return intern(Op::kMul, 0, a, b); }
  ExprId div(ExprId a, ExprId b) { return intern(Op::kDiv, 0, a, b); }
  ExprId pow(ExprId a, ExprId b) { return intern(Op::kPow, 0, a, b); }
  ExprId neg(ExprId a) { return intern(Op::kNeg, 0, a, kNoExpr); }
  ExprId call(Func1 f, ExprId a) {
    return intern(Op::kCall1, static_cast<std::uint8_t>(f), a, kNoExpr);
  }
  ExprId call(Func2 f, ExprId a, ExprId b) {
    return intern(Op::kCall2, static_cast<std::uint8_t>(f), a, b);
  }
  /// der(x) where x must be a kSym node.
  ExprId der(ExprId symbol);

  // -- inspection ------------------------------------------------------------
  const Node& node(ExprId id) const {
    OMX_REQUIRE(id < nodes_.size(), "expr id out of range");
    return nodes_[id];
  }
  double const_value(ExprId id) const;
  SymbolId sym_of(ExprId id) const;
  bool is_const(ExprId id, double v) const;
  std::size_t size() const { return nodes_.size(); }

  /// Number of arithmetic operations in the *tree* expansion of `id`
  /// (shared nodes counted every time they appear). This matches what a
  /// naive code generator without CSE would emit.
  std::size_t tree_op_count(ExprId id) const;

  /// Number of distinct operation nodes reachable from `id` (shared nodes
  /// counted once) — the op count after perfect CSE.
  std::size_t dag_op_count(ExprId id) const;

  /// Collects the free symbols of `id` into `out` (deduplicated, sorted).
  void free_syms(ExprId id, std::vector<SymbolId>& out) const;

  /// Replaces every occurrence of symbol `from` with expression `to`.
  ExprId substitute(ExprId id, SymbolId from, ExprId to);

  /// Replaces symbols per `map` (missing symbols stay). One simultaneous pass.
  ExprId substitute(ExprId id,
                    const std::unordered_map<SymbolId, ExprId>& map);

 private:
  ExprId intern(Op op, std::uint8_t fn, ExprId a, ExprId b);

  struct NodeHash {
    std::size_t operator()(const Node& n) const;
  };

  std::vector<Node> nodes_;
  std::vector<double> consts_;
  std::unordered_map<Node, ExprId, NodeHash> dedup_;
  std::unordered_map<std::uint64_t, std::uint32_t> const_index_;  // bits->idx
};

}  // namespace omx::expr
