#include "omx/expr/pool.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace omx::expr {

const char* func1_name(Func1 f) {
  switch (f) {
    case Func1::kSin: return "sin";
    case Func1::kCos: return "cos";
    case Func1::kTan: return "tan";
    case Func1::kAsin: return "asin";
    case Func1::kAcos: return "acos";
    case Func1::kAtan: return "atan";
    case Func1::kSinh: return "sinh";
    case Func1::kCosh: return "cosh";
    case Func1::kTanh: return "tanh";
    case Func1::kExp: return "exp";
    case Func1::kLog: return "log";
    case Func1::kSqrt: return "sqrt";
    case Func1::kAbs: return "abs";
    case Func1::kSign: return "sign";
  }
  return "?";
}

const char* func2_name(Func2 f) {
  switch (f) {
    case Func2::kAtan2: return "atan2";
    case Func2::kMin: return "min";
    case Func2::kMax: return "max";
    case Func2::kHypot: return "hypot";
  }
  return "?";
}

std::size_t Pool::NodeHash::operator()(const Node& n) const {
  // FNV-style mix over the four fields; quality is sufficient for dedup.
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ull;
  };
  mix(static_cast<std::uint64_t>(n.op));
  mix(n.fn);
  mix(n.a);
  mix(static_cast<std::uint64_t>(n.b) << 1);
  return static_cast<std::size_t>(h);
}

ExprId Pool::intern(Op op, std::uint8_t fn, ExprId a, ExprId b) {
  const Node n{op, fn, a, b};
  if (auto it = dedup_.find(n); it != dedup_.end()) {
    return it->second;
  }
  nodes_.push_back(n);
  const ExprId id = static_cast<ExprId>(nodes_.size() - 1);
  dedup_.emplace(n, id);
  return id;
}

ExprId Pool::constant(double value) {
  // Canonicalize -0.0 to +0.0 so the two compare equal as nodes.
  if (value == 0.0) {
    value = 0.0;
  }
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(value);
  auto it = const_index_.find(bits);
  std::uint32_t idx;
  if (it != const_index_.end()) {
    idx = it->second;
  } else {
    consts_.push_back(value);
    idx = static_cast<std::uint32_t>(consts_.size() - 1);
    const_index_.emplace(bits, idx);
  }
  return intern(Op::kConst, 0, idx, kNoExpr);
}

ExprId Pool::sym(SymbolId s) { return intern(Op::kSym, 0, s, kNoExpr); }

ExprId Pool::der(ExprId symbol) {
  OMX_REQUIRE(node(symbol).op == Op::kSym, "der() applies to a symbol");
  return intern(Op::kDer, 0, symbol, kNoExpr);
}

double Pool::const_value(ExprId id) const {
  const Node& n = node(id);
  OMX_REQUIRE(n.op == Op::kConst, "node is not a constant");
  return consts_[n.a];
}

SymbolId Pool::sym_of(ExprId id) const {
  const Node& n = node(id);
  OMX_REQUIRE(n.op == Op::kSym, "node is not a symbol");
  return static_cast<SymbolId>(n.a);
}

bool Pool::is_const(ExprId id, double v) const {
  const Node& n = node(id);
  return n.op == Op::kConst && consts_[n.a] == v;
}

namespace {

bool has_two_children(Op op) {
  switch (op) {
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kDiv:
    case Op::kPow:
    case Op::kCall2:
      return true;
    default:
      return false;
  }
}

bool is_leaf(Op op) { return op == Op::kConst || op == Op::kSym; }

}  // namespace

std::size_t Pool::tree_op_count(ExprId id) const {
  // Memoized: tree count of a node is 1 + sum of children's tree counts,
  // independent of where the node appears.
  std::vector<std::size_t> memo(nodes_.size(), static_cast<std::size_t>(-1));
  // Iterative post-order to avoid deep recursion on big models.
  std::vector<std::pair<ExprId, bool>> stack{{id, false}};
  while (!stack.empty()) {
    auto [cur, ready] = stack.back();
    stack.pop_back();
    if (memo[cur] != static_cast<std::size_t>(-1)) {
      continue;
    }
    const Node& n = nodes_[cur];
    if (is_leaf(n.op)) {
      memo[cur] = 0;
      continue;
    }
    if (!ready) {
      stack.push_back({cur, true});
      stack.push_back({n.a, false});
      if (has_two_children(n.op)) {
        stack.push_back({n.b, false});
      }
    } else {
      std::size_t c = 1 + memo[n.a];
      if (has_two_children(n.op)) {
        c += memo[n.b];
      }
      memo[cur] = c;
    }
  }
  return memo[id];
}

std::size_t Pool::dag_op_count(ExprId id) const {
  std::vector<bool> seen(nodes_.size(), false);
  std::vector<ExprId> stack{id};
  std::size_t count = 0;
  while (!stack.empty()) {
    const ExprId cur = stack.back();
    stack.pop_back();
    if (seen[cur]) {
      continue;
    }
    seen[cur] = true;
    const Node& n = nodes_[cur];
    if (is_leaf(n.op)) {
      continue;
    }
    ++count;
    stack.push_back(n.a);
    if (has_two_children(n.op)) {
      stack.push_back(n.b);
    }
  }
  return count;
}

void Pool::free_syms(ExprId id, std::vector<SymbolId>& out) const {
  std::vector<bool> seen(nodes_.size(), false);
  std::vector<ExprId> stack{id};
  while (!stack.empty()) {
    const ExprId cur = stack.back();
    stack.pop_back();
    if (seen[cur]) {
      continue;
    }
    seen[cur] = true;
    const Node& n = nodes_[cur];
    if (n.op == Op::kSym) {
      out.push_back(static_cast<SymbolId>(n.a));
    } else if (!is_leaf(n.op)) {
      stack.push_back(n.a);
      if (has_two_children(n.op)) {
        stack.push_back(n.b);
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

ExprId Pool::substitute(ExprId id, SymbolId from, ExprId to) {
  std::unordered_map<SymbolId, ExprId> map{{from, to}};
  return substitute(id, map);
}

ExprId Pool::substitute(ExprId id,
                        const std::unordered_map<SymbolId, ExprId>& map) {
  std::unordered_map<ExprId, ExprId> memo;
  // Iterative post-order rebuild. Children are rebuilt before parents.
  std::vector<std::pair<ExprId, bool>> stack{{id, false}};
  while (!stack.empty()) {
    auto [cur, ready] = stack.back();
    stack.pop_back();
    if (memo.count(cur)) {
      continue;
    }
    const Node n = nodes_[cur];  // copy: nodes_ may grow below
    if (n.op == Op::kConst) {
      memo[cur] = cur;
      continue;
    }
    if (n.op == Op::kSym) {
      auto it = map.find(static_cast<SymbolId>(n.a));
      memo[cur] = (it == map.end()) ? cur : it->second;
      continue;
    }
    if (!ready) {
      stack.push_back({cur, true});
      stack.push_back({n.a, false});
      if (has_two_children(n.op)) {
        stack.push_back({n.b, false});
      }
    } else {
      const ExprId na = memo.at(n.a);
      const ExprId nb = has_two_children(n.op) ? memo.at(n.b) : kNoExpr;
      memo[cur] = intern(n.op, n.fn, na, nb);
    }
  }
  return memo.at(id);
}

}  // namespace omx::expr
