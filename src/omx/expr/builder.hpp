// Ergonomic expression-building layer: a small value type `Ex` that carries
// (pool, id) and overloads the usual operators, so model code reads like
// the mathematics it encodes:
//
//   Ex delta = r - sqrt(dx * dx + dy * dy);
//   Ex force = k * pow(max(delta, Ex::lit(ctx, 0.0)), 1.5);
#pragma once

#include "omx/expr/pool.hpp"

namespace omx::expr {

class Ex {
 public:
  Ex() : pool_(nullptr), id_(kNoExpr) {}
  Ex(Pool& pool, ExprId id) : pool_(&pool), id_(id) {}

  static Ex lit(Pool& pool, double v) { return {pool, pool.constant(v)}; }
  static Ex symbol(Pool& pool, SymbolId s) { return {pool, pool.sym(s)}; }

  ExprId id() const { return id_; }
  Pool& pool() const {
    OMX_REQUIRE(pool_ != nullptr, "empty Ex");
    return *pool_;
  }
  bool valid() const { return pool_ != nullptr && id_ != kNoExpr; }

 private:
  Pool* pool_;
  ExprId id_;
};

namespace detail {
inline Pool& same_pool(const Ex& a, const Ex& b) {
  OMX_REQUIRE(&a.pool() == &b.pool(), "mixing expressions from two pools");
  return a.pool();
}
}  // namespace detail

inline Ex operator+(Ex a, Ex b) {
  Pool& p = detail::same_pool(a, b);
  return {p, p.add(a.id(), b.id())};
}
inline Ex operator-(Ex a, Ex b) {
  Pool& p = detail::same_pool(a, b);
  return {p, p.sub(a.id(), b.id())};
}
inline Ex operator*(Ex a, Ex b) {
  Pool& p = detail::same_pool(a, b);
  return {p, p.mul(a.id(), b.id())};
}
inline Ex operator/(Ex a, Ex b) {
  Pool& p = detail::same_pool(a, b);
  return {p, p.div(a.id(), b.id())};
}
inline Ex operator-(Ex a) { return {a.pool(), a.pool().neg(a.id())}; }

inline Ex operator+(Ex a, double b) { return a + Ex::lit(a.pool(), b); }
inline Ex operator+(double a, Ex b) { return Ex::lit(b.pool(), a) + b; }
inline Ex operator-(Ex a, double b) { return a - Ex::lit(a.pool(), b); }
inline Ex operator-(double a, Ex b) { return Ex::lit(b.pool(), a) - b; }
inline Ex operator*(Ex a, double b) { return a * Ex::lit(a.pool(), b); }
inline Ex operator*(double a, Ex b) { return Ex::lit(b.pool(), a) * b; }
inline Ex operator/(Ex a, double b) { return a / Ex::lit(a.pool(), b); }
inline Ex operator/(double a, Ex b) { return Ex::lit(b.pool(), a) / b; }

inline Ex pow(Ex a, Ex b) {
  Pool& p = detail::same_pool(a, b);
  return {p, p.pow(a.id(), b.id())};
}
inline Ex pow(Ex a, double b) { return pow(a, Ex::lit(a.pool(), b)); }

inline Ex call(Func1 f, Ex a) { return {a.pool(), a.pool().call(f, a.id())}; }
inline Ex call(Func2 f, Ex a, Ex b) {
  Pool& p = detail::same_pool(a, b);
  return {p, p.call(f, a.id(), b.id())};
}

inline Ex sin(Ex a) { return call(Func1::kSin, a); }
inline Ex cos(Ex a) { return call(Func1::kCos, a); }
inline Ex tan(Ex a) { return call(Func1::kTan, a); }
inline Ex asin(Ex a) { return call(Func1::kAsin, a); }
inline Ex acos(Ex a) { return call(Func1::kAcos, a); }
inline Ex atan(Ex a) { return call(Func1::kAtan, a); }
inline Ex sinh(Ex a) { return call(Func1::kSinh, a); }
inline Ex cosh(Ex a) { return call(Func1::kCosh, a); }
inline Ex tanh(Ex a) { return call(Func1::kTanh, a); }
inline Ex exp(Ex a) { return call(Func1::kExp, a); }
inline Ex log(Ex a) { return call(Func1::kLog, a); }
inline Ex sqrt(Ex a) { return call(Func1::kSqrt, a); }
inline Ex abs(Ex a) { return call(Func1::kAbs, a); }
inline Ex sign(Ex a) { return call(Func1::kSign, a); }
inline Ex atan2(Ex a, Ex b) { return call(Func2::kAtan2, a, b); }
inline Ex min(Ex a, Ex b) { return call(Func2::kMin, a, b); }
inline Ex max(Ex a, Ex b) { return call(Func2::kMax, a, b); }
inline Ex hypot(Ex a, Ex b) { return call(Func2::kHypot, a, b); }
inline Ex min(Ex a, double b) { return min(a, Ex::lit(a.pool(), b)); }
inline Ex max(Ex a, double b) { return max(a, Ex::lit(a.pool(), b)); }

}  // namespace omx::expr
