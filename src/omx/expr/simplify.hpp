// Algebraic simplification: constant folding plus local identities.
//
// The pass is semantics-preserving on finite inputs (verified by property
// tests that evaluate original vs simplified expression at random points).
// Identities that only hold outside singular points (e.g. x/x = 1) are
// deliberately NOT applied.
#pragma once

#include "omx/expr/pool.hpp"

namespace omx::expr {

/// Returns a simplified equivalent of `id` (possibly `id` itself).
ExprId simplify(Pool& pool, ExprId id);

}  // namespace omx::expr
