// Direct (tree-walking) evaluation of expressions. This is the reference
// semantics against which the bytecode VM and the generated code are tested;
// production execution goes through omx::vm.
#pragma once

#include <functional>
#include <unordered_map>

#include "omx/expr/pool.hpp"

namespace omx::expr {

/// Symbol binding environment for evaluation.
class Env {
 public:
  void set(SymbolId s, double v) { values_[s] = v; }

  /// Returns the value bound to `s`; throws omx::Error if unbound.
  double get(SymbolId s) const;

  bool has(SymbolId s) const { return values_.count(s) != 0; }

 private:
  std::unordered_map<SymbolId, double> values_;
};

/// Evaluates `id` under `env`. kDer nodes are rejected (they only appear on
/// equation left-hand sides, never inside values).
double eval(const Pool& pool, ExprId id, const Env& env);

/// Applies a Func1 to a value (shared by evaluator, VM and constant folding).
double apply_func1(Func1 f, double a);

/// Applies a Func2 to two values.
double apply_func2(Func2 f, double a, double b);

}  // namespace omx::expr
