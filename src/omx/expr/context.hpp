// Bundles the two append-only tables that every symbolic stage shares:
// the name interner and the expression pool. One Context lives for the
// whole compile-and-run pipeline of a model.
#pragma once

#include <string_view>

#include "omx/expr/builder.hpp"
#include "omx/expr/pool.hpp"

namespace omx::expr {

struct Context {
  Interner names;
  Pool pool;

  /// Interns `name` and returns the symbol expression for it.
  Ex var(std::string_view name) {
    return Ex::symbol(pool, names.intern(name));
  }

  /// Numeric literal.
  Ex lit(double v) { return Ex::lit(pool, v); }

  /// der(x) for an equation left-hand side.
  Ex der(std::string_view name) {
    return {pool, pool.der(pool.sym(names.intern(name)))};
  }

  SymbolId symbol(std::string_view name) { return names.intern(name); }
};

}  // namespace omx::expr
