#include "omx/expr/eval.hpp"

#include <cmath>
#include <vector>

namespace omx::expr {

double Env::get(SymbolId s) const {
  auto it = values_.find(s);
  if (it == values_.end()) {
    throw omx::Error("evaluation: unbound symbol id " + std::to_string(s));
  }
  return it->second;
}

double apply_func1(Func1 f, double a) {
  switch (f) {
    case Func1::kSin: return std::sin(a);
    case Func1::kCos: return std::cos(a);
    case Func1::kTan: return std::tan(a);
    case Func1::kAsin: return std::asin(a);
    case Func1::kAcos: return std::acos(a);
    case Func1::kAtan: return std::atan(a);
    case Func1::kSinh: return std::sinh(a);
    case Func1::kCosh: return std::cosh(a);
    case Func1::kTanh: return std::tanh(a);
    case Func1::kExp: return std::exp(a);
    case Func1::kLog: return std::log(a);
    case Func1::kSqrt: return std::sqrt(a);
    case Func1::kAbs: return std::fabs(a);
    case Func1::kSign: return a > 0.0 ? 1.0 : (a < 0.0 ? -1.0 : 0.0);
  }
  OMX_REQUIRE(false, "unknown Func1");
  return 0.0;
}

double apply_func2(Func2 f, double a, double b) {
  switch (f) {
    case Func2::kAtan2: return std::atan2(a, b);
    case Func2::kMin: return std::fmin(a, b);
    case Func2::kMax: return std::fmax(a, b);
    case Func2::kHypot: return std::hypot(a, b);
  }
  OMX_REQUIRE(false, "unknown Func2");
  return 0.0;
}

double eval(const Pool& pool, ExprId id, const Env& env) {
  // Iterative post-order with a per-call memo (the DAG can be deep).
  std::unordered_map<ExprId, double> memo;
  std::vector<std::pair<ExprId, bool>> stack{{id, false}};
  while (!stack.empty()) {
    auto [cur, ready] = stack.back();
    stack.pop_back();
    if (memo.count(cur)) {
      continue;
    }
    const Node& n = pool.node(cur);
    switch (n.op) {
      case Op::kConst:
        memo[cur] = pool.const_value(cur);
        continue;
      case Op::kSym:
        memo[cur] = env.get(static_cast<SymbolId>(n.a));
        continue;
      case Op::kDer:
        throw omx::Error("evaluation: der() is not a value");
      default:
        break;
    }
    const bool binary = n.op == Op::kAdd || n.op == Op::kSub ||
                        n.op == Op::kMul || n.op == Op::kDiv ||
                        n.op == Op::kPow || n.op == Op::kCall2;
    if (!ready) {
      stack.push_back({cur, true});
      stack.push_back({n.a, false});
      if (binary) {
        stack.push_back({n.b, false});
      }
      continue;
    }
    const double a = memo.at(n.a);
    const double b = binary ? memo.at(n.b) : 0.0;
    double r = 0.0;
    switch (n.op) {
      case Op::kAdd: r = a + b; break;
      case Op::kSub: r = a - b; break;
      case Op::kMul: r = a * b; break;
      case Op::kDiv: r = a / b; break;
      case Op::kPow: r = std::pow(a, b); break;
      case Op::kNeg: r = -a; break;
      case Op::kCall1: r = apply_func1(static_cast<Func1>(n.fn), a); break;
      case Op::kCall2: r = apply_func2(static_cast<Func2>(n.fn), a, b); break;
      default: OMX_REQUIRE(false, "unreachable eval op");
    }
    memo[cur] = r;
  }
  return memo.at(id);
}

}  // namespace omx::expr
