// Expression printing in the two styles the paper shows (Figure 11):
//  * infix "normal form":        x'[t] == y[t]
//  * Mathematica-like prefix "FullForm", optionally with om$Type
//    annotations: Equal[Derivative[1][om$Type[x, om$Real]][t], ...]
#pragma once

#include <string>

#include "omx/expr/pool.hpp"

namespace omx::expr {

/// Infix rendering with minimal parentheses.
std::string to_infix(const Pool& pool, const Interner& names, ExprId id);

struct FullFormOptions {
  /// Wrap every symbol in om$Type[sym, om$Real] as ObjectMath 4.0's
  /// type-annotated intermediate form does.
  bool annotate_types = false;
};

/// Prefix (FullForm) rendering: Plus[Times[x, y], Minus[z]] ...
std::string to_fullform(const Pool& pool, const Interner& names, ExprId id,
                        const FullFormOptions& opts = {});

}  // namespace omx::expr
