#include "omx/expr/printer.hpp"

#include <cctype>
#include <sstream>

namespace omx::expr {

namespace {

// Precedence levels for minimal parenthesization.
// add/sub: 1, mul/div: 2, unary minus: 3, pow: 4, atoms/calls: 5.
int precedence(const Node& n) {
  switch (n.op) {
    case Op::kAdd:
    case Op::kSub:
      return 1;
    case Op::kMul:
    case Op::kDiv:
      return 2;
    case Op::kNeg:
      return 3;
    case Op::kPow:
      return 4;
    default:
      return 5;
  }
}

void format_number(std::ostringstream& os, double v) {
  // Shortest round-trip-ish: default 12 significant digits suffices for
  // human-facing output; generated code uses the same formatting.
  std::ostringstream tmp;
  tmp.precision(12);
  tmp << v;
  os << tmp.str();
}

class InfixPrinter {
 public:
  InfixPrinter(const Pool& p, const Interner& names) : p_(p), names_(names) {}

  void print(std::ostringstream& os, ExprId id, int parent_prec,
             bool right_side) {
    const Node& n = p_.node(id);
    const int prec = precedence(n);
    // pow is right-associative; add/sub/mul/div left-associative.
    const bool needs_parens =
        prec < parent_prec ||
        (prec == parent_prec && right_side && prec != 4 && prec != 5);
    switch (n.op) {
      case Op::kConst:
        if (p_.const_value(id) < 0.0) {
          os << '(';
          format_number(os, p_.const_value(id));
          os << ')';
        } else {
          format_number(os, p_.const_value(id));
        }
        return;
      case Op::kSym:
        os << names_.name(static_cast<SymbolId>(n.a));
        return;
      case Op::kDer:
        os << names_.name(static_cast<SymbolId>(p_.node(n.a).a)) << "'";
        return;
      case Op::kCall1:
        os << func1_name(static_cast<Func1>(n.fn)) << '(';
        print(os, n.a, 0, false);
        os << ')';
        return;
      case Op::kCall2:
        os << func2_name(static_cast<Func2>(n.fn)) << '(';
        print(os, n.a, 0, false);
        os << ", ";
        print(os, n.b, 0, false);
        os << ')';
        return;
      default:
        break;
    }
    if (needs_parens) os << '(';
    switch (n.op) {
      case Op::kAdd:
        print(os, n.a, 1, false);
        os << " + ";
        print(os, n.b, 1, true);
        break;
      case Op::kSub:
        print(os, n.a, 1, false);
        os << " - ";
        print(os, n.b, 1, true);
        break;
      case Op::kMul:
        print(os, n.a, 2, false);
        os << "*";
        print(os, n.b, 2, true);
        break;
      case Op::kDiv:
        print(os, n.a, 2, false);
        os << "/";
        print(os, n.b, 2, true);
        break;
      case Op::kPow:
        print(os, n.a, 5, false);  // force parens on compound bases
        os << "^";
        print(os, n.b, 4, true);
        break;
      case Op::kNeg:
        os << "-";
        print(os, n.a, 3, true);
        break;
      default:
        OMX_REQUIRE(false, "unreachable print op");
    }
    if (needs_parens) os << ')';
  }

 private:
  const Pool& p_;
  const Interner& names_;
};

class FullFormPrinter {
 public:
  FullFormPrinter(const Pool& p, const Interner& names,
                  const FullFormOptions& opts)
      : p_(p), names_(names), opts_(opts) {}

  void print(std::ostringstream& os, ExprId id) {
    const Node& n = p_.node(id);
    switch (n.op) {
      case Op::kConst:
        format_number(os, p_.const_value(id));
        return;
      case Op::kSym: {
        const auto& nm = names_.name(static_cast<SymbolId>(n.a));
        if (opts_.annotate_types) {
          os << "om$Type[" << nm << ", om$Real]";
        } else {
          os << nm;
        }
        return;
      }
      case Op::kDer:
        os << "Derivative[1][";
        print(os, n.a);
        os << "]";
        return;
      case Op::kAdd:
        binary(os, "Plus", n);
        return;
      case Op::kSub:
        // Mathematica has no Subtract in FullForm; ObjectMath's intermediate
        // form keeps it explicit for readability.
        binary(os, "Subtract", n);
        return;
      case Op::kMul:
        binary(os, "Times", n);
        return;
      case Op::kDiv:
        binary(os, "Divide", n);
        return;
      case Op::kPow:
        binary(os, "Power", n);
        return;
      case Op::kNeg:
        os << "Minus[";
        print(os, n.a);
        os << "]";
        return;
      case Op::kCall1: {
        std::string head = func1_name(static_cast<Func1>(n.fn));
        head[0] = static_cast<char>(std::toupper(head[0]));
        os << head << "[";
        print(os, n.a);
        os << "]";
        return;
      }
      case Op::kCall2: {
        std::string head = func2_name(static_cast<Func2>(n.fn));
        head[0] = static_cast<char>(std::toupper(head[0]));
        os << head << "[";
        print(os, n.a);
        os << ", ";
        print(os, n.b);
        os << "]";
        return;
      }
    }
    OMX_REQUIRE(false, "unreachable fullform op");
  }

 private:
  void binary(std::ostringstream& os, const char* head, const Node& n) {
    os << head << "[";
    print(os, n.a);
    os << ", ";
    print(os, n.b);
    os << "]";
  }

  const Pool& p_;
  const Interner& names_;
  const FullFormOptions& opts_;
};

}  // namespace

std::string to_infix(const Pool& pool, const Interner& names, ExprId id) {
  std::ostringstream os;
  InfixPrinter(pool, names).print(os, id, 0, false);
  return os.str();
}

std::string to_fullform(const Pool& pool, const Interner& names, ExprId id,
                        const FullFormOptions& opts) {
  std::ostringstream os;
  FullFormPrinter(pool, names, opts).print(os, id);
  return os.str();
}

}  // namespace omx::expr
