// Flattening: expand a Model's instance tree (inheritance, composition,
// instance arrays) into a FlatSystem of explicit first-order ODEs and
// algebraic assignments with fully qualified names ("w[3].contact.fn").
#pragma once

#include "omx/model/flat_system.hpp"
#include "omx/model/model.hpp"

namespace omx::model {

/// Reserved symbol name available in instance-array arguments; bound to the
/// element index (lo..hi) at each array element.
inline constexpr const char* kIndexSymbolName = "index";

/// Reserved name of the free variable (simulation time).
inline constexpr const char* kTimeSymbolName = "time";

/// Expands `m` into a finalized FlatSystem.
///
/// Diagnosed errors (omx::Error): unknown class, inheritance cycles,
/// equations that are neither `der(x) == e` nor `a == e`, multiple
/// equations for one variable, variables without a defining equation,
/// references to undeclared symbols, parameter-value cycles, and algebraic
/// loops.
FlatSystem flatten(const Model& m);

}  // namespace omx::model
