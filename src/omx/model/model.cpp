#include "omx/model/model.hpp"

namespace omx::model {

ClassDef& Model::add_class(std::string name) {
  if (class_index_.count(name) != 0) {
    throw omx::Error("duplicate class '" + name + "'");
  }
  class_index_.emplace(name, classes_.size());
  classes_.emplace_back(std::move(name));
  return classes_.back();
}

const ClassDef& Model::find_class(const std::string& name) const {
  auto it = class_index_.find(name);
  if (it == class_index_.end()) {
    throw omx::Error("unknown class '" + name + "'");
  }
  return classes_[it->second];
}

bool Model::has_class(const std::string& name) const {
  return class_index_.count(name) != 0;
}

void Model::add_instance(Instance inst) {
  if (inst.is_array && inst.lo > inst.hi) {
    throw omx::Error("instance array '" + inst.name + "' has empty range",
                     inst.loc);
  }
  for (const Instance& other : instances_) {
    if (other.name == inst.name) {
      throw omx::Error("duplicate instance '" + inst.name + "'", inst.loc);
    }
  }
  instances_.push_back(std::move(inst));
}

std::size_t Model::inheritance_depth(const std::string& name) const {
  std::size_t depth = 0;
  const ClassDef* c = &find_class(name);
  while (!c->base().empty()) {
    ++depth;
    if (depth > classes_.size()) {
      throw omx::Error("inheritance cycle involving class '" + name + "'");
    }
    c = &find_class(c->base());
  }
  return depth;
}

}  // namespace omx::model
