// The flattened mathematical model: explicit first-order ODEs
//   der(x_i) = f_i(x, a, p, t)
// plus topologically ordered algebraic assignments
//   a_j = g_j(x, a_<j, p, t)
// with all parameters bound to numeric values. This is the interface
// between the OO modeling layer and everything downstream (dependency
// analysis, code generation, solvers).
#pragma once

#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "omx/expr/context.hpp"

namespace omx::expr {
class Env;
}  // namespace omx::expr

namespace omx::model {

struct FlatState {
  SymbolId name = kInvalidSymbol;
  double start = 0.0;
  expr::ExprId rhs = expr::kNoExpr;  // der(name) == rhs
};

struct FlatAlgebraic {
  SymbolId name = kInvalidSymbol;
  expr::ExprId rhs = expr::kNoExpr;  // name == rhs (explicit)
};

/// A flattened `when` clause: a zero-crossing guard over the flat
/// symbols plus the state resets applied when it fires. Guards and
/// resets are evaluated through the expression pool (eval_event_guard /
/// apply_event_resets) — deliberately backend-independent, so every
/// execution backend localizes the same event at the same time.
struct FlatEvent {
  expr::ExprId guard = expr::kNoExpr;
  int direction = 0;  // +1 up (rising), -1 down (falling), 0 cross
  std::vector<std::pair<SymbolId, expr::ExprId>> resets;
};

class FlatSystem {
 public:
  explicit FlatSystem(expr::Context& ctx);

  expr::Context& ctx() const { return *ctx_; }
  SymbolId time_symbol() const { return time_; }

  // -- construction ----------------------------------------------------------
  void add_state(SymbolId name, double start, expr::ExprId rhs);
  /// Algebraics may be added in any order; finalize() sorts them.
  void add_algebraic(SymbolId name, expr::ExprId rhs);
  void bind_parameter(SymbolId name, double value);
  /// Adds a when-clause event; finalize() validates that the guard and
  /// reset expressions reference known symbols and that every reset
  /// target is a state.
  void add_event(FlatEvent ev);

  /// Validates symbol references, topologically sorts algebraics (throws
  /// omx::Error on an algebraic loop), and freezes the system.
  void finalize();
  bool finalized() const { return finalized_; }

  // -- access ----------------------------------------------------------------
  std::size_t num_states() const { return states_.size(); }
  std::size_t num_algebraics() const { return algebraics_.size(); }
  const std::vector<FlatState>& states() const { return states_; }
  const std::vector<FlatAlgebraic>& algebraics() const { return algebraics_; }
  const std::vector<std::pair<SymbolId, double>>& parameters() const {
    return parameters_;
  }
  const std::vector<FlatEvent>& events() const { return events_; }

  /// State index of symbol, or -1.
  int state_index(SymbolId s) const;
  /// Algebraic index of symbol, or -1.
  int algebraic_index(SymbolId s) const;
  bool is_parameter(SymbolId s) const { return param_value_.count(s) != 0; }
  double parameter_value(SymbolId s) const;

  /// Human-readable state name.
  const std::string& state_name(std::size_t i) const;

  /// Direct evaluation of all RHS at (t, y) — the reference semantics used
  /// in tests; production execution uses the compiled tape.
  void eval_rhs(double t, std::span<const double> y,
                std::span<double> ydot) const;

  /// Guard value of events()[k] at (t, y) — algebraics are evaluated in
  /// topological order first, so guards may reference them.
  double eval_event_guard(std::size_t k, double t,
                          std::span<const double> y) const;
  /// Applies events()[k]'s resets to y in place. All reset right-hand
  /// sides are evaluated against the pre-reset state (simultaneous
  /// assignment), then written.
  void apply_event_resets(std::size_t k, double t,
                          std::span<double> y) const;

 private:
  /// Environment with time, parameters, states, and algebraics bound.
  void build_env(double t, std::span<const double> y,
                 expr::Env& env) const;

  expr::Context* ctx_;
  SymbolId time_;
  std::vector<FlatState> states_;
  std::vector<FlatAlgebraic> algebraics_;
  std::vector<FlatEvent> events_;
  std::vector<std::pair<SymbolId, double>> parameters_;
  std::unordered_map<SymbolId, int> state_index_;
  std::unordered_map<SymbolId, int> algebraic_index_;
  std::unordered_map<SymbolId, double> param_value_;
  bool finalized_ = false;
};

}  // namespace omx::model
