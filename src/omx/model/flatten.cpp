#include "omx/model/flatten.hpp"

#include <algorithm>
#include <deque>

#include "omx/expr/eval.hpp"

namespace omx::model {

// ---------------------------------------------------------------------------
// FlatSystem
// ---------------------------------------------------------------------------

FlatSystem::FlatSystem(expr::Context& ctx)
    : ctx_(&ctx), time_(ctx.symbol(kTimeSymbolName)) {}

void FlatSystem::add_state(SymbolId name, double start, expr::ExprId rhs) {
  OMX_REQUIRE(!finalized_, "FlatSystem is finalized");
  if (state_index_.count(name) || algebraic_index_.count(name)) {
    throw omx::Error("variable '" + ctx_->names.name(name) +
                     "' defined twice");
  }
  state_index_.emplace(name, static_cast<int>(states_.size()));
  states_.push_back(FlatState{name, start, rhs});
}

void FlatSystem::add_algebraic(SymbolId name, expr::ExprId rhs) {
  OMX_REQUIRE(!finalized_, "FlatSystem is finalized");
  if (state_index_.count(name) || algebraic_index_.count(name)) {
    throw omx::Error("variable '" + ctx_->names.name(name) +
                     "' defined twice");
  }
  algebraic_index_.emplace(name, static_cast<int>(algebraics_.size()));
  algebraics_.push_back(FlatAlgebraic{name, rhs});
}

void FlatSystem::bind_parameter(SymbolId name, double value) {
  OMX_REQUIRE(!finalized_, "FlatSystem is finalized");
  if (param_value_.count(name)) {
    throw omx::Error("parameter '" + ctx_->names.name(name) +
                     "' bound twice");
  }
  param_value_.emplace(name, value);
  parameters_.emplace_back(name, value);
}

void FlatSystem::add_event(FlatEvent ev) {
  OMX_REQUIRE(!finalized_, "FlatSystem is finalized");
  events_.push_back(std::move(ev));
}

int FlatSystem::state_index(SymbolId s) const {
  auto it = state_index_.find(s);
  return it == state_index_.end() ? -1 : it->second;
}

int FlatSystem::algebraic_index(SymbolId s) const {
  auto it = algebraic_index_.find(s);
  return it == algebraic_index_.end() ? -1 : it->second;
}

double FlatSystem::parameter_value(SymbolId s) const {
  auto it = param_value_.find(s);
  OMX_REQUIRE(it != param_value_.end(), "not a parameter");
  return it->second;
}

const std::string& FlatSystem::state_name(std::size_t i) const {
  return ctx_->names.name(states_[i].name);
}

void FlatSystem::finalize() {
  OMX_REQUIRE(!finalized_, "finalize called twice");

  // 1. Every symbol referenced from any RHS must be known.
  auto check_expr = [&](expr::ExprId e, SymbolId target) {
    std::vector<SymbolId> syms;
    ctx_->pool.free_syms(e, syms);
    for (SymbolId s : syms) {
      if (s == time_ || state_index_.count(s) || algebraic_index_.count(s) ||
          param_value_.count(s)) {
        continue;
      }
      throw omx::Error("equation for '" + ctx_->names.name(target) +
                       "' references undeclared symbol '" +
                       ctx_->names.name(s) + "'");
    }
  };
  for (const FlatState& st : states_) {
    check_expr(st.rhs, st.name);
  }
  for (const FlatAlgebraic& al : algebraics_) {
    check_expr(al.rhs, al.name);
  }
  for (const FlatEvent& ev : events_) {
    for (const auto& [target, value] : ev.resets) {
      if (!state_index_.count(target)) {
        throw omx::Error("when-clause reset target '" +
                         ctx_->names.name(target) + "' is not a state");
      }
      check_expr(value, target);
    }
    // The guard has no named target; report against its first reset's
    // target (a when clause must reset something to be well-formed).
    if (ev.resets.empty()) {
      throw omx::Error("when clause has no resets");
    }
    check_expr(ev.guard, ev.resets.front().first);
  }

  // 2. Topologically order the algebraic assignments. An algebraic cycle is
  //    an implicit equation system, which this explicit pipeline rejects
  //    (the paper's code generator likewise accepts explicit form only).
  const std::size_t na = algebraics_.size();
  std::vector<std::vector<std::size_t>> users(na);
  std::vector<std::size_t> indeg(na, 0);
  for (std::size_t j = 0; j < na; ++j) {
    std::vector<SymbolId> syms;
    ctx_->pool.free_syms(algebraics_[j].rhs, syms);
    for (SymbolId s : syms) {
      if (auto it = algebraic_index_.find(s); it != algebraic_index_.end()) {
        users[static_cast<std::size_t>(it->second)].push_back(j);
        ++indeg[j];
      }
    }
  }
  std::deque<std::size_t> ready;
  for (std::size_t j = 0; j < na; ++j) {
    if (indeg[j] == 0) {
      ready.push_back(j);
    }
  }
  std::vector<FlatAlgebraic> ordered;
  ordered.reserve(na);
  while (!ready.empty()) {
    const std::size_t j = ready.front();
    ready.pop_front();
    ordered.push_back(algebraics_[j]);
    for (std::size_t u : users[j]) {
      if (--indeg[u] == 0) {
        ready.push_back(u);
      }
    }
  }
  if (ordered.size() != na) {
    std::string names;
    for (std::size_t j = 0; j < na; ++j) {
      if (indeg[j] != 0) {
        if (!names.empty()) names += ", ";
        names += ctx_->names.name(algebraics_[j].name);
      }
    }
    throw omx::Error("algebraic loop between: " + names);
  }
  algebraics_ = std::move(ordered);
  algebraic_index_.clear();
  for (std::size_t j = 0; j < na; ++j) {
    algebraic_index_.emplace(algebraics_[j].name, static_cast<int>(j));
  }

  finalized_ = true;
}

void FlatSystem::build_env(double t, std::span<const double> y,
                           expr::Env& env) const {
  env.set(time_, t);
  for (const auto& [name, value] : parameters_) {
    env.set(name, value);
  }
  for (std::size_t i = 0; i < states_.size(); ++i) {
    env.set(states_[i].name, y[i]);
  }
  for (const FlatAlgebraic& al : algebraics_) {
    env.set(al.name, expr::eval(ctx_->pool, al.rhs, env));
  }
}

void FlatSystem::eval_rhs(double t, std::span<const double> y,
                          std::span<double> ydot) const {
  OMX_REQUIRE(finalized_, "FlatSystem not finalized");
  OMX_REQUIRE(y.size() == states_.size() && ydot.size() == states_.size(),
              "state vector size mismatch");
  expr::Env env;
  build_env(t, y, env);
  for (std::size_t i = 0; i < states_.size(); ++i) {
    ydot[i] = expr::eval(ctx_->pool, states_[i].rhs, env);
  }
}

double FlatSystem::eval_event_guard(std::size_t k, double t,
                                    std::span<const double> y) const {
  OMX_REQUIRE(finalized_, "FlatSystem not finalized");
  OMX_REQUIRE(k < events_.size(), "event index out of range");
  expr::Env env;
  build_env(t, y, env);
  return expr::eval(ctx_->pool, events_[k].guard, env);
}

void FlatSystem::apply_event_resets(std::size_t k, double t,
                                    std::span<double> y) const {
  OMX_REQUIRE(finalized_, "FlatSystem not finalized");
  OMX_REQUIRE(k < events_.size(), "event index out of range");
  expr::Env env;
  build_env(t, y, env);
  // Simultaneous assignment: every RHS sees the pre-reset state.
  std::vector<std::pair<int, double>> writes;
  writes.reserve(events_[k].resets.size());
  for (const auto& [target, value] : events_[k].resets) {
    writes.emplace_back(state_index(target),
                        expr::eval(ctx_->pool, value, env));
  }
  for (const auto& [idx, value] : writes) {
    y[static_cast<std::size_t>(idx)] = value;
  }
}

// ---------------------------------------------------------------------------
// Flattener
// ---------------------------------------------------------------------------

namespace {

/// Fully instantiated members of a class (inheritance resolved, formals
/// substituted), before name qualification.
struct Members {
  std::vector<Variable> vars;
  std::vector<Parameter> params;
  std::vector<Part> parts;
  std::vector<Equation> equations;
  std::vector<WhenClause> whens;
};

class Flattener {
 public:
  explicit Flattener(const Model& m)
      : m_(m), ctx_(m.ctx()), flat_(m.ctx()) {}

  FlatSystem run() {
    for (const Instance& inst : m_.instances()) {
      if (inst.is_array) {
        for (int i = inst.lo; i <= inst.hi; ++i) {
          std::vector<expr::ExprId> args = bind_index(inst.args, i);
          expand(inst.name + "[" + std::to_string(i) + "]", inst.class_name,
                 args, inst.loc);
        }
      } else {
        expand(inst.name, inst.class_name, inst.args, inst.loc);
      }
    }
    bind_parameters();
    classify_equations();
    for (FlatEvent& ev : events_) {
      flat_.add_event(std::move(ev));
    }
    flat_.finalize();
    return std::move(flat_);
  }

 private:
  // Substitutes the reserved `index` symbol with the element number.
  std::vector<expr::ExprId> bind_index(const std::vector<expr::ExprId>& args,
                                       int i) {
    const SymbolId idx = ctx_.symbol(kIndexSymbolName);
    const expr::ExprId value = ctx_.pool.constant(static_cast<double>(i));
    std::vector<expr::ExprId> out;
    out.reserve(args.size());
    for (expr::ExprId a : args) {
      out.push_back(ctx_.pool.substitute(a, idx, value));
    }
    return out;
  }

  /// Resolves inheritance and formal substitution for one class.
  Members instantiate(const std::string& cls,
                      const std::vector<expr::ExprId>& args, SourceLoc loc,
                      std::size_t depth) {
    if (depth > m_.classes().size()) {
      throw omx::Error("inheritance cycle involving class '" + cls + "'",
                       loc);
    }
    const ClassDef& c = m_.find_class(cls);
    if (args.size() != c.formals().size()) {
      throw omx::Error("class '" + cls + "' expects " +
                           std::to_string(c.formals().size()) +
                           " argument(s), got " + std::to_string(args.size()),
                       loc);
    }
    std::unordered_map<SymbolId, expr::ExprId> formal_map;
    for (std::size_t i = 0; i < args.size(); ++i) {
      formal_map.emplace(c.formals()[i], args[i]);
    }
    auto subst = [&](expr::ExprId e) {
      return formal_map.empty() ? e : ctx_.pool.substitute(e, formal_map);
    };

    Members out;
    if (!c.base().empty()) {
      std::vector<expr::ExprId> base_args;
      base_args.reserve(c.base_args().size());
      for (expr::ExprId a : c.base_args()) {
        base_args.push_back(subst(a));
      }
      out = instantiate(c.base(), base_args, loc, depth + 1);
    }

    for (Variable v : c.variables()) {
      if (v.start != expr::kNoExpr) {
        v.start = subst(v.start);
      }
      out.vars.push_back(v);
    }
    for (Parameter p : c.parameters()) {
      p.value = subst(p.value);
      // A derived class may re-bind an inherited parameter ("variant
      // handling" in ObjectMath): the most-derived value wins.
      auto it = std::find_if(
          out.params.begin(), out.params.end(),
          [&](const Parameter& q) { return q.name == p.name; });
      if (it != out.params.end()) {
        *it = p;
      } else {
        out.params.push_back(p);
      }
    }
    for (Part p : c.parts()) {
      for (expr::ExprId& a : p.args) {
        a = subst(a);
      }
      out.parts.push_back(std::move(p));
    }
    for (Equation e : c.equations()) {
      e.lhs = subst_lhs(e.lhs, formal_map);
      e.rhs = subst(e.rhs);
      out.equations.push_back(e);
    }
    for (WhenClause w : c.whens()) {
      w.guard = subst(w.guard);
      for (auto& r : w.resets) {
        r.second = subst(r.second);
      }
      out.whens.push_back(std::move(w));
    }
    return out;
  }

  // der(x) nodes must survive substitution with their inner symbol intact.
  expr::ExprId subst_lhs(
      expr::ExprId lhs,
      const std::unordered_map<SymbolId, expr::ExprId>& map) {
    const expr::Node& n = ctx_.pool.node(lhs);
    if (n.op != expr::Op::kDer) {
      return map.empty() ? lhs : ctx_.pool.substitute(lhs, map);
    }
    // Substituting under der() is only legal if the result is a symbol.
    expr::ExprId inner = n.a;
    if (!map.empty()) {
      inner = ctx_.pool.substitute(inner, map);
    }
    if (ctx_.pool.node(inner).op != expr::Op::kSym) {
      throw omx::Error("der() of a non-variable after substitution");
    }
    return ctx_.pool.der(inner);
  }

  /// Expands one instance subtree rooted at `prefix`.
  void expand(const std::string& prefix, const std::string& cls,
              const std::vector<expr::ExprId>& args, SourceLoc loc) {
    const Members mem = instantiate(cls, args, loc, 0);

    // Build the qualification map for this scope: local member names and
    // part-qualified names get the instance prefix; everything else is left
    // alone (global references to other instances).
    std::unordered_map<std::string, bool> local_heads;
    for (const Variable& v : mem.vars) {
      local_heads[ctx_.names.name(v.name)] = true;
    }
    for (const Parameter& p : mem.params) {
      local_heads[ctx_.names.name(p.name)] = true;
    }
    for (const Part& p : mem.parts) {
      local_heads[ctx_.names.name(p.name)] = true;
    }

    auto qualify_sym = [&](SymbolId s) -> SymbolId {
      if (s == ctx_.symbol(kTimeSymbolName)) {
        return s;
      }
      const std::string& n = ctx_.names.name(s);
      const std::string head = n.substr(0, n.find('.'));
      if (local_heads.count(head)) {
        return ctx_.symbol(prefix + "." + n);
      }
      return s;
    };
    auto qualify = [&](expr::ExprId e) {
      std::vector<SymbolId> syms;
      ctx_.pool.free_syms(e, syms);
      std::unordered_map<SymbolId, expr::ExprId> map;
      for (SymbolId s : syms) {
        const SymbolId q = qualify_sym(s);
        if (q != s) {
          map.emplace(s, ctx_.pool.sym(q));
        }
      }
      return map.empty() ? e : ctx_.pool.substitute(e, map);
    };

    for (const Variable& v : mem.vars) {
      const SymbolId q = ctx_.symbol(prefix + "." + ctx_.names.name(v.name));
      VarDecl decl;
      decl.name = q;
      decl.start = (v.start == expr::kNoExpr) ? expr::kNoExpr
                                              : qualify(v.start);
      var_decls_.push_back(decl);
    }
    for (const Parameter& p : mem.params) {
      const SymbolId q = ctx_.symbol(prefix + "." + ctx_.names.name(p.name));
      pending_params_.push_back({q, qualify(p.value)});
    }
    for (const Equation& e : mem.equations) {
      Equation q;
      const expr::Node& lhs = ctx_.pool.node(e.lhs);
      if (lhs.op == expr::Op::kDer) {
        const SymbolId target =
            qualify_sym(ctx_.pool.sym_of(lhs.a));
        q.lhs = ctx_.pool.der(ctx_.pool.sym(target));
      } else if (lhs.op == expr::Op::kSym) {
        q.lhs = ctx_.pool.sym(qualify_sym(ctx_.pool.sym_of(e.lhs)));
      } else {
        throw omx::Error(
            "equation left-hand side must be der(x) or a variable (class '" +
                cls + "')",
            e.loc);
      }
      q.rhs = qualify(e.rhs);
      q.loc = e.loc;
      equations_.push_back(q);
    }
    for (const WhenClause& w : mem.whens) {
      FlatEvent ev;
      ev.guard = qualify(w.guard);
      ev.direction = w.direction;
      for (const auto& [target, value] : w.resets) {
        ev.resets.emplace_back(qualify_sym(target), qualify(value));
      }
      events_.push_back(std::move(ev));
    }
    for (const Part& p : mem.parts) {
      std::vector<expr::ExprId> part_args;
      part_args.reserve(p.args.size());
      for (expr::ExprId a : p.args) {
        part_args.push_back(qualify(a));
      }
      expand(prefix + "." + ctx_.names.name(p.name), p.class_name, part_args,
             p.loc);
    }
  }

  /// Evaluates parameter value expressions. Parameters may reference other
  /// parameters (any order); cycles are diagnosed.
  void bind_parameters() {
    expr::Env env;
    std::vector<bool> done(pending_params_.size(), false);
    std::size_t remaining = pending_params_.size();
    bool progress = true;
    while (remaining > 0 && progress) {
      progress = false;
      for (std::size_t i = 0; i < pending_params_.size(); ++i) {
        if (done[i]) {
          continue;
        }
        std::vector<SymbolId> syms;
        ctx_.pool.free_syms(pending_params_[i].second, syms);
        const bool ready = std::all_of(syms.begin(), syms.end(),
                                       [&](SymbolId s) { return env.has(s); });
        if (!ready) {
          continue;
        }
        const double v = expr::eval(ctx_.pool, pending_params_[i].second, env);
        env.set(pending_params_[i].first, v);
        flat_.bind_parameter(pending_params_[i].first, v);
        done[i] = true;
        --remaining;
        progress = true;
      }
    }
    if (remaining > 0) {
      std::string names;
      for (std::size_t i = 0; i < pending_params_.size(); ++i) {
        if (!done[i]) {
          if (!names.empty()) names += ", ";
          names += ctx_.names.name(pending_params_[i].first);
        }
      }
      throw omx::Error(
          "parameters depend on non-parameters or form a cycle: " + names);
    }
    param_env_ = std::move(env);
  }

  void classify_equations() {
    // Map variable -> defining equation.
    std::unordered_map<SymbolId, const Equation*> der_eq, alg_eq;
    for (const Equation& e : equations_) {
      const expr::Node& lhs = ctx_.pool.node(e.lhs);
      if (lhs.op == expr::Op::kDer) {
        const SymbolId target = ctx_.pool.sym_of(lhs.a);
        if (!der_eq.emplace(target, &e).second) {
          throw omx::Error("two der() equations for '" +
                               ctx_.names.name(target) + "'",
                           e.loc);
        }
      } else {
        const SymbolId target = ctx_.pool.sym_of(e.lhs);
        if (!alg_eq.emplace(target, &e).second) {
          throw omx::Error(
              "two defining equations for '" + ctx_.names.name(target) + "'",
              e.loc);
        }
      }
    }

    for (const VarDecl& v : var_decls_) {
      const bool has_der = der_eq.count(v.name) != 0;
      const bool has_alg = alg_eq.count(v.name) != 0;
      const std::string& name = ctx_.names.name(v.name);
      if (has_der && has_alg) {
        throw omx::Error("variable '" + name +
                         "' has both der() and algebraic equations");
      }
      if (!has_der && !has_alg) {
        throw omx::Error("variable '" + name + "' has no defining equation");
      }
      if (has_der) {
        double start = 0.0;
        if (v.start != expr::kNoExpr) {
          start = eval_start(v.start, name);
        }
        flat_.add_state(v.name, start, der_eq[v.name]->rhs);
      } else {
        if (v.start != expr::kNoExpr) {
          throw omx::Error("algebraic variable '" + name +
                           "' cannot have a start value");
        }
        flat_.add_algebraic(v.name, alg_eq[v.name]->rhs);
      }
      der_eq.erase(v.name);
      alg_eq.erase(v.name);
    }

    // Any leftover equation defines an undeclared variable.
    for (const auto& [sym, eq] : der_eq) {
      throw omx::Error("der() equation for undeclared variable '" +
                           ctx_.names.name(sym) + "'",
                       eq->loc);
    }
    for (const auto& [sym, eq] : alg_eq) {
      throw omx::Error("equation for undeclared variable '" +
                           ctx_.names.name(sym) + "'",
                       eq->loc);
    }
  }

  double eval_start(expr::ExprId e, const std::string& var) {
    std::vector<SymbolId> syms;
    ctx_.pool.free_syms(e, syms);
    for (SymbolId s : syms) {
      if (!param_env_.has(s)) {
        throw omx::Error("start value of '" + var +
                         "' references non-parameter '" +
                         ctx_.names.name(s) + "'");
      }
    }
    return expr::eval(ctx_.pool, e, param_env_);
  }

  struct VarDecl {
    SymbolId name = kInvalidSymbol;
    expr::ExprId start = expr::kNoExpr;
  };

  const Model& m_;
  expr::Context& ctx_;
  FlatSystem flat_;
  std::vector<VarDecl> var_decls_;
  std::vector<std::pair<SymbolId, expr::ExprId>> pending_params_;
  std::vector<Equation> equations_;
  std::vector<FlatEvent> events_;
  expr::Env param_env_;
};

}  // namespace

FlatSystem flatten(const Model& m) { return Flattener(m).run(); }

}  // namespace omx::model
