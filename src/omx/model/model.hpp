// ObjectMath-style object-oriented model layer.
//
// A Model is a set of classes plus a set of instances. Classes have:
//  * formal parameters (symbols substituted with instantiation arguments),
//  * single inheritance (INHERITS base(args...)),
//  * composition: named parts that are themselves class instances,
//  * variables (optionally with start values), parameters (named constant
//    expressions) and equations.
//
// Instances may be scalar (`instance dam : Dam;`) or arrays
// (`instance w[1..10] : Roller(index);`) mirroring the paper's
// `INSTANCE BodyW[i] INHERITS Roller(W[i])` construct. Inside array
// instantiation arguments the reserved symbol `index` is bound to the
// element number.
//
// flatten() (see flatten.hpp) expands the instance tree into a flat system
// of first-order ODEs plus explicit algebraic assignments.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "omx/expr/context.hpp"

namespace omx::model {

struct Equation {
  expr::ExprId lhs = expr::kNoExpr;
  expr::ExprId rhs = expr::kNoExpr;
  SourceLoc loc;
};

struct Variable {
  SymbolId name = kInvalidSymbol;
  expr::ExprId start = expr::kNoExpr;  // kNoExpr -> defaults to 0
  SourceLoc loc;
};

struct Parameter {
  SymbolId name = kInvalidSymbol;
  expr::ExprId value = expr::kNoExpr;
  SourceLoc loc;
};

struct Part {
  SymbolId name = kInvalidSymbol;
  std::string class_name;
  std::vector<expr::ExprId> args;
  SourceLoc loc;
};

/// `when [up|down|cross] guard then v1 = e1, v2 = e2;` — a zero-crossing
/// event: when `guard` crosses zero in the given direction (up = rising,
/// down = falling, cross = either; the default), the listed state resets
/// are applied at the localized event time.
struct WhenClause {
  expr::ExprId guard = expr::kNoExpr;
  int direction = 0;  // +1 up, -1 down, 0 cross
  std::vector<std::pair<SymbolId, expr::ExprId>> resets;
  SourceLoc loc;
};

class ClassDef {
 public:
  explicit ClassDef(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  void set_base(std::string base, std::vector<expr::ExprId> args) {
    base_ = std::move(base);
    base_args_ = std::move(args);
  }
  const std::string& base() const { return base_; }
  const std::vector<expr::ExprId>& base_args() const { return base_args_; }

  void add_formal(SymbolId s) { formals_.push_back(s); }
  const std::vector<SymbolId>& formals() const { return formals_; }

  void add_variable(Variable v) { vars_.push_back(v); }
  void add_parameter(Parameter p) { params_.push_back(p); }
  void add_part(Part p) { parts_.push_back(std::move(p)); }
  void add_equation(Equation e) { equations_.push_back(e); }
  void add_when(WhenClause w) { whens_.push_back(std::move(w)); }

  const std::vector<Variable>& variables() const { return vars_; }
  const std::vector<Parameter>& parameters() const { return params_; }
  const std::vector<Part>& parts() const { return parts_; }
  const std::vector<Equation>& equations() const { return equations_; }
  const std::vector<WhenClause>& whens() const { return whens_; }

 private:
  std::string name_;
  std::string base_;
  std::vector<expr::ExprId> base_args_;
  std::vector<SymbolId> formals_;
  std::vector<Variable> vars_;
  std::vector<Parameter> params_;
  std::vector<Part> parts_;
  std::vector<Equation> equations_;
  std::vector<WhenClause> whens_;
};

struct Instance {
  std::string name;
  bool is_array = false;
  int lo = 0;  // inclusive; only meaningful when is_array
  int hi = 0;  // inclusive
  std::string class_name;
  std::vector<expr::ExprId> args;
  SourceLoc loc;
};

class Model {
 public:
  Model(std::string name, expr::Context& ctx)
      : name_(std::move(name)), ctx_(&ctx) {}

  const std::string& name() const { return name_; }
  expr::Context& ctx() const { return *ctx_; }

  /// Adds a class; throws omx::Error on duplicate name.
  ClassDef& add_class(std::string name);

  /// Looks up a class; throws omx::Error if missing.
  const ClassDef& find_class(const std::string& name) const;
  bool has_class(const std::string& name) const;

  void add_instance(Instance inst);

  const std::vector<Instance>& instances() const { return instances_; }
  const std::vector<ClassDef>& classes() const { return classes_; }

  /// Inheritance depth (number of INHERITS links from `name` to a root).
  /// Detects inheritance cycles (throws).
  std::size_t inheritance_depth(const std::string& name) const;

 private:
  std::string name_;
  expr::Context* ctx_;
  std::vector<ClassDef> classes_;
  std::unordered_map<std::string, std::size_t> class_index_;
  std::vector<Instance> instances_;
};

}  // namespace omx::model
