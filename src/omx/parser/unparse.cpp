#include "omx/parser/unparse.hpp"

#include <charconv>
#include <cmath>
#include <system_error>

#include "omx/support/diagnostics.hpp"

namespace omx::parser {
namespace {

// Binding strength of a node when it appears inside a larger expression.
// Mirrors the parser's ladder: additive(1) < multiplicative(2) < unary(3)
// < power(4) < atoms(5). A negative literal prints with a leading '-', so
// it binds like unary minus rather than like an atom.
int prec(const expr::Pool& pool, expr::ExprId id) {
  const expr::Node& n = pool.node(id);
  switch (n.op) {
    case expr::Op::kAdd:
    case expr::Op::kSub:
      return 1;
    case expr::Op::kMul:
    case expr::Op::kDiv:
      return 2;
    case expr::Op::kNeg:
      return 3;
    case expr::Op::kPow:
      return 4;
    case expr::Op::kConst:
      return std::signbit(pool.const_value(id)) ? 3 : 5;
    default:
      return 5;
  }
}

// Shortest decimal that round-trips through from_chars — so a constant
// survives any number of parse/print cycles bit-for-bit.
std::string number(double v) {
  char buf[32];
  const auto [p, ec] = std::to_chars(buf, buf + sizeof buf, v);
  OMX_REQUIRE(ec == std::errc(), "number formatting failed");
  return std::string(buf, p);
}

void render(const expr::Context& ctx, expr::ExprId id, std::string& out);

// Renders `id`, parenthesized iff it binds looser than the slot requires.
void child(const expr::Context& ctx, expr::ExprId id, int min_prec,
           std::string& out) {
  if (prec(ctx.pool, id) < min_prec) {
    out += '(';
    render(ctx, id, out);
    out += ')';
  } else {
    render(ctx, id, out);
  }
}

void render(const expr::Context& ctx, expr::ExprId id, std::string& out) {
  const expr::Pool& pool = ctx.pool;
  const expr::Node& n = pool.node(id);
  switch (n.op) {
    case expr::Op::kConst:
      out += number(pool.const_value(id));
      return;
    case expr::Op::kSym:
      out += ctx.names.name(pool.sym_of(id));
      return;
    case expr::Op::kAdd:
    case expr::Op::kSub:
      // Left-associative: the right operand needs parens at equal
      // precedence (a - (b + c) must not flatten to a - b + c).
      child(ctx, n.a, 1, out);
      out += n.op == expr::Op::kAdd ? " + " : " - ";
      child(ctx, n.b, 2, out);
      return;
    case expr::Op::kMul:
    case expr::Op::kDiv:
      child(ctx, n.a, 2, out);
      out += n.op == expr::Op::kMul ? " * " : " / ";
      child(ctx, n.b, 3, out);
      return;
    case expr::Op::kNeg:
      out += '-';
      child(ctx, n.a, 3, out);
      return;
    case expr::Op::kPow:
      // The parser's power() takes a primary base, so any compound base
      // needs parens; the exponent slot is unary(), so -x and nested ^
      // (right-associative) stand bare.
      child(ctx, n.a, 5, out);
      out += " ^ ";
      child(ctx, n.b, 3, out);
      return;
    case expr::Op::kCall1:
      out += expr::func1_name(static_cast<expr::Func1>(n.fn));
      out += '(';
      render(ctx, n.a, out);
      out += ')';
      return;
    case expr::Op::kCall2:
      out += expr::func2_name(static_cast<expr::Func2>(n.fn));
      out += '(';
      render(ctx, n.a, out);
      out += ", ";
      render(ctx, n.b, out);
      out += ')';
      return;
    case expr::Op::kDer:
      out += "der(";
      out += ctx.names.name(pool.sym_of(n.a));
      out += ')';
      return;
  }
  OMX_REQUIRE(false, "unhandled expression op in unparse");
}

// "(a, b, ...)" — or nothing at all for an empty list, matching the
// grammar's optional argument clause.
void render_args(const expr::Context& ctx,
                 const std::vector<expr::ExprId>& args, std::string& out) {
  if (args.empty()) {
    return;
  }
  out += '(';
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    render(ctx, args[i], out);
  }
  out += ')';
}

}  // namespace

std::string unparse_expr(const expr::Context& ctx, expr::ExprId id) {
  std::string out;
  render(ctx, id, out);
  return out;
}

std::string unparse_model(const model::Model& m) {
  const expr::Context& ctx = m.ctx();
  std::string out = "model " + m.name() + "\n";
  for (const model::ClassDef& c : m.classes()) {
    out += "  class " + c.name();
    if (!c.formals().empty()) {
      out += '(';
      for (std::size_t i = 0; i < c.formals().size(); ++i) {
        if (i > 0) {
          out += ", ";
        }
        out += ctx.names.name(c.formals()[i]);
      }
      out += ')';
    }
    if (!c.base().empty()) {
      out += " inherits " + c.base();
      render_args(ctx, c.base_args(), out);
    }
    out += '\n';
    for (const model::Variable& v : c.variables()) {
      out += "    var " + ctx.names.name(v.name);
      if (v.start != expr::kNoExpr) {
        out += " start ";
        render(ctx, v.start, out);
      }
      out += ";\n";
    }
    for (const model::Parameter& p : c.parameters()) {
      out += "    param " + ctx.names.name(p.name) + " = ";
      render(ctx, p.value, out);
      out += ";\n";
    }
    for (const model::Part& p : c.parts()) {
      out += "    part " + ctx.names.name(p.name) + " : " + p.class_name;
      render_args(ctx, p.args, out);
      out += ";\n";
    }
    for (const model::Equation& e : c.equations()) {
      out += "    eq ";
      render(ctx, e.lhs, out);
      out += " == ";
      render(ctx, e.rhs, out);
      out += ";\n";
    }
    for (const model::WhenClause& w : c.whens()) {
      // The direction always prints explicitly, so a guard that *is* a
      // variable named up/down/cross still round-trips.
      out += "    when ";
      out += w.direction > 0 ? "up " : w.direction < 0 ? "down " : "cross ";
      render(ctx, w.guard, out);
      out += " then ";
      for (std::size_t i = 0; i < w.resets.size(); ++i) {
        if (i > 0) {
          out += ", ";
        }
        out += ctx.names.name(w.resets[i].first) + " = ";
        render(ctx, w.resets[i].second, out);
      }
      out += ";\n";
    }
    out += "  end\n";
  }
  for (const model::Instance& inst : m.instances()) {
    out += "  instance " + inst.name;
    if (inst.is_array) {
      out += '[' + std::to_string(inst.lo) + ".." + std::to_string(inst.hi) +
             ']';
    }
    out += " : " + inst.class_name;
    render_args(ctx, inst.args, out);
    out += ";\n";
  }
  out += "end\n";
  return out;
}

}  // namespace omx::parser
