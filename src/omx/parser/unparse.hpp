// Renders models back into the modeling language's concrete syntax.
//
// The output is deterministic and re-parseable: unparsing a model, parsing
// the text, and unparsing again yields byte-identical source (unparse is a
// fixpoint of the parse/print loop — the property the parser fuzz suite
// leans on). Member order inside a class is normalized to vars, params,
// parts, equations — the grouping the AST stores — so the fixpoint holds
// even when the original source interleaved members.
//
// Note this is distinct from expr::to_infix, which targets Mathematica
// notation (x'[t]) and is not re-parseable by omx::parser.
#pragma once

#include <string>

#include "omx/model/model.hpp"

namespace omx::parser {

/// Renders `id` in concrete expression syntax with minimal parentheses
/// (precedence-aware). `ctx` supplies the pool and symbol names.
std::string unparse_expr(const expr::Context& ctx, expr::ExprId id);

/// Renders the whole model as parseable source text.
std::string unparse_model(const model::Model& m);

}  // namespace omx::parser
