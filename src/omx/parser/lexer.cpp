#include "omx/parser/lexer.hpp"

#include <cctype>
#include <charconv>
#include <unordered_map>

namespace omx::parser {

const char* tok_kind_name(TokKind k) {
  switch (k) {
    case TokKind::kIdent: return "identifier";
    case TokKind::kNumber: return "number";
    case TokKind::kKwModel: return "'model'";
    case TokKind::kKwClass: return "'class'";
    case TokKind::kKwInherits: return "'inherits'";
    case TokKind::kKwVar: return "'var'";
    case TokKind::kKwParam: return "'param'";
    case TokKind::kKwPart: return "'part'";
    case TokKind::kKwEq: return "'eq'";
    case TokKind::kKwDer: return "'der'";
    case TokKind::kKwInstance: return "'instance'";
    case TokKind::kKwStart: return "'start'";
    case TokKind::kKwEnd: return "'end'";
    case TokKind::kKwWhen: return "'when'";
    case TokKind::kKwThen: return "'then'";
    case TokKind::kPlus: return "'+'";
    case TokKind::kMinus: return "'-'";
    case TokKind::kStar: return "'*'";
    case TokKind::kSlash: return "'/'";
    case TokKind::kCaret: return "'^'";
    case TokKind::kLParen: return "'('";
    case TokKind::kRParen: return "')'";
    case TokKind::kLBracket: return "'['";
    case TokKind::kRBracket: return "']'";
    case TokKind::kComma: return "','";
    case TokKind::kSemicolon: return "';'";
    case TokKind::kColon: return "':'";
    case TokKind::kDot: return "'.'";
    case TokKind::kDotDot: return "'..'";
    case TokKind::kEqual: return "'='";
    case TokKind::kEqualEqual: return "'=='";
    case TokKind::kEof: return "end of input";
  }
  return "?";
}

namespace {

const std::unordered_map<std::string_view, TokKind>& keywords() {
  static const std::unordered_map<std::string_view, TokKind> kw{
      {"model", TokKind::kKwModel},     {"class", TokKind::kKwClass},
      {"inherits", TokKind::kKwInherits}, {"var", TokKind::kKwVar},
      {"param", TokKind::kKwParam},     {"part", TokKind::kKwPart},
      {"eq", TokKind::kKwEq},           {"der", TokKind::kKwDer},
      {"instance", TokKind::kKwInstance}, {"start", TokKind::kKwStart},
      {"end", TokKind::kKwEnd},           {"when", TokKind::kKwWhen},
      {"then", TokKind::kKwThen},
  };
  return kw;
}

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  std::vector<Token> run() {
    std::vector<Token> out;
    while (true) {
      skip_trivia();
      Token t;
      t.loc = loc();
      if (at_end()) {
        t.kind = TokKind::kEof;
        out.push_back(t);
        return out;
      }
      const char c = peek();
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        lex_ident(t);
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        lex_number(t);
      } else {
        lex_punct(t);
      }
      out.push_back(std::move(t));
    }
  }

 private:
  bool at_end() const { return pos_ >= src_.size(); }
  char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char advance() {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }
  SourceLoc loc() const { return {line_, col_}; }

  void skip_trivia() {
    while (!at_end()) {
      const char c = peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        advance();
      } else if (c == '/' && peek(1) == '/') {
        while (!at_end() && peek() != '\n') {
          advance();
        }
      } else if (c == '(' && peek(1) == '*') {
        const SourceLoc open = loc();
        advance();
        advance();
        int depth = 1;
        while (depth > 0) {
          if (at_end()) {
            throw omx::Error("unterminated (* comment", open);
          }
          if (peek() == '(' && peek(1) == '*') {
            advance();
            advance();
            ++depth;
          } else if (peek() == '*' && peek(1) == ')') {
            advance();
            advance();
            --depth;
          } else {
            advance();
          }
        }
      } else {
        return;
      }
    }
  }

  void lex_ident(Token& t) {
    std::string s;
    while (!at_end()) {
      const char c = peek();
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
        s += advance();
      } else {
        break;
      }
    }
    if (auto it = keywords().find(s); it != keywords().end()) {
      t.kind = it->second;
    } else {
      t.kind = TokKind::kIdent;
    }
    t.text = std::move(s);
  }

  void lex_number(Token& t) {
    const std::size_t begin = pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) {
      advance();
    }
    // A '.' only continues the number if followed by a digit — this keeps
    // the range token `1..10` lexable as NUMBER DOTDOT NUMBER.
    if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
      advance();
      while (std::isdigit(static_cast<unsigned char>(peek()))) {
        advance();
      }
    }
    if (peek() == 'e' || peek() == 'E') {
      std::size_t ahead = 1;
      if (peek(1) == '+' || peek(1) == '-') {
        ahead = 2;
      }
      if (std::isdigit(static_cast<unsigned char>(peek(ahead)))) {
        for (std::size_t i = 0; i <= ahead; ++i) {
          advance();
        }
        while (std::isdigit(static_cast<unsigned char>(peek()))) {
          advance();
        }
      }
    }
    const std::string_view text = src_.substr(begin, pos_ - begin);
    double value = 0.0;
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec != std::errc() || ptr != text.data() + text.size()) {
      throw omx::Error("malformed number '" + std::string(text) + "'", t.loc);
    }
    t.kind = TokKind::kNumber;
    t.number = value;
  }

  void lex_punct(Token& t) {
    const char c = advance();
    switch (c) {
      case '+': t.kind = TokKind::kPlus; return;
      case '-': t.kind = TokKind::kMinus; return;
      case '*': t.kind = TokKind::kStar; return;
      case '/': t.kind = TokKind::kSlash; return;
      case '^': t.kind = TokKind::kCaret; return;
      case '(': t.kind = TokKind::kLParen; return;
      case ')': t.kind = TokKind::kRParen; return;
      case '[': t.kind = TokKind::kLBracket; return;
      case ']': t.kind = TokKind::kRBracket; return;
      case ',': t.kind = TokKind::kComma; return;
      case ';': t.kind = TokKind::kSemicolon; return;
      case ':': t.kind = TokKind::kColon; return;
      case '.':
        if (peek() == '.') {
          advance();
          t.kind = TokKind::kDotDot;
        } else {
          t.kind = TokKind::kDot;
        }
        return;
      case '=':
        if (peek() == '=') {
          advance();
          t.kind = TokKind::kEqualEqual;
        } else {
          t.kind = TokKind::kEqual;
        }
        return;
      default:
        throw omx::Error(std::string("unexpected character '") + c + "'",
                         t.loc);
    }
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  std::uint32_t line_ = 1;
  std::uint32_t col_ = 1;
};

}  // namespace

std::vector<Token> tokenize(std::string_view source) {
  return Lexer(source).run();
}

}  // namespace omx::parser
