#include "omx/parser/parser.hpp"

#include <optional>
#include <unordered_map>

#include "omx/parser/lexer.hpp"

namespace omx::parser {

namespace {

std::optional<expr::Func1> lookup_func1(const std::string& name) {
  static const std::unordered_map<std::string, expr::Func1> table{
      {"sin", expr::Func1::kSin},   {"cos", expr::Func1::kCos},
      {"tan", expr::Func1::kTan},   {"asin", expr::Func1::kAsin},
      {"acos", expr::Func1::kAcos}, {"atan", expr::Func1::kAtan},
      {"sinh", expr::Func1::kSinh}, {"cosh", expr::Func1::kCosh},
      {"tanh", expr::Func1::kTanh}, {"exp", expr::Func1::kExp},
      {"log", expr::Func1::kLog},   {"sqrt", expr::Func1::kSqrt},
      {"abs", expr::Func1::kAbs},   {"sign", expr::Func1::kSign},
  };
  auto it = table.find(name);
  return it == table.end() ? std::nullopt : std::optional(it->second);
}

std::optional<expr::Func2> lookup_func2(const std::string& name) {
  static const std::unordered_map<std::string, expr::Func2> table{
      {"atan2", expr::Func2::kAtan2},
      {"min", expr::Func2::kMin},
      {"max", expr::Func2::kMax},
      {"hypot", expr::Func2::kHypot},
  };
  auto it = table.find(name);
  return it == table.end() ? std::nullopt : std::optional(it->second);
}

class Parser {
 public:
  Parser(std::vector<Token> toks, expr::Context& ctx)
      : toks_(std::move(toks)), ctx_(ctx) {}

  model::Model parse_model() {
    expect(TokKind::kKwModel);
    const std::string name = expect(TokKind::kIdent).text;
    model::Model m(name, ctx_);
    while (!check(TokKind::kKwEnd)) {
      if (check(TokKind::kKwClass)) {
        parse_class(m);
      } else if (check(TokKind::kKwInstance)) {
        parse_instance(m);
      } else {
        throw omx::Error(std::string("expected 'class' or 'instance', got ") +
                             tok_kind_name(peek().kind),
                         peek().loc);
      }
    }
    expect(TokKind::kKwEnd);
    expect(TokKind::kEof);
    return m;
  }

  expr::ExprId parse_single_expression() {
    const expr::ExprId e = expression();
    expect(TokKind::kEof);
    return e;
  }

 private:
  // -- token helpers ---------------------------------------------------------
  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = std::min(pos_ + ahead, toks_.size() - 1);
    return toks_[i];
  }
  bool check(TokKind k) const { return peek().kind == k; }
  bool accept(TokKind k) {
    if (check(k)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Token expect(TokKind k) {
    if (!check(k)) {
      throw omx::Error(std::string("expected ") + tok_kind_name(k) +
                           ", got " + tok_kind_name(peek().kind),
                       peek().loc);
    }
    return toks_[pos_++];
  }

  // -- declarations ------------------------------------------------------------
  void parse_class(model::Model& m) {
    expect(TokKind::kKwClass);
    const Token name = expect(TokKind::kIdent);
    model::ClassDef& c = m.add_class(name.text);
    if (accept(TokKind::kLParen)) {
      do {
        c.add_formal(ctx_.symbol(expect(TokKind::kIdent).text));
      } while (accept(TokKind::kComma));
      expect(TokKind::kRParen);
    }
    if (accept(TokKind::kKwInherits)) {
      const std::string base = expect(TokKind::kIdent).text;
      std::vector<expr::ExprId> args;
      if (accept(TokKind::kLParen)) {
        if (!check(TokKind::kRParen)) {
          do {
            args.push_back(expression());
          } while (accept(TokKind::kComma));
        }
        expect(TokKind::kRParen);
      }
      c.set_base(base, std::move(args));
    }
    while (!check(TokKind::kKwEnd)) {
      parse_member(c);
    }
    expect(TokKind::kKwEnd);
  }

  void parse_member(model::ClassDef& c) {
    if (accept(TokKind::kKwVar)) {
      do {
        model::Variable v;
        const Token name = expect(TokKind::kIdent);
        v.name = ctx_.symbol(name.text);
        v.loc = name.loc;
        if (accept(TokKind::kKwStart)) {
          v.start = expression();
        }
        c.add_variable(v);
      } while (accept(TokKind::kComma));
      expect(TokKind::kSemicolon);
      return;
    }
    if (accept(TokKind::kKwParam)) {
      do {
        model::Parameter p;
        const Token name = expect(TokKind::kIdent);
        p.name = ctx_.symbol(name.text);
        p.loc = name.loc;
        expect(TokKind::kEqual);
        p.value = expression();
        c.add_parameter(p);
      } while (accept(TokKind::kComma));
      expect(TokKind::kSemicolon);
      return;
    }
    if (accept(TokKind::kKwPart)) {
      model::Part p;
      const Token name = expect(TokKind::kIdent);
      p.name = ctx_.symbol(name.text);
      p.loc = name.loc;
      expect(TokKind::kColon);
      p.class_name = expect(TokKind::kIdent).text;
      if (accept(TokKind::kLParen)) {
        if (!check(TokKind::kRParen)) {
          do {
            p.args.push_back(expression());
          } while (accept(TokKind::kComma));
        }
        expect(TokKind::kRParen);
      }
      expect(TokKind::kSemicolon);
      c.add_part(std::move(p));
      return;
    }
    if (accept(TokKind::kKwEq)) {
      model::Equation e;
      e.loc = peek().loc;
      e.lhs = equation_lhs();
      expect(TokKind::kEqualEqual);
      e.rhs = expression();
      expect(TokKind::kSemicolon);
      c.add_equation(e);
      return;
    }
    if (accept(TokKind::kKwWhen)) {
      model::WhenClause w;
      w.loc = peek().loc;
      // Optional direction marker. The words up/down/cross are ordinary
      // identifiers elsewhere, but reserved in this leading position —
      // a guard variable with one of these names needs an explicit
      // marker first (e.g. `when cross up then ...`).
      if (check(TokKind::kIdent)) {
        if (peek().text == "up") {
          w.direction = 1;
          ++pos_;
        } else if (peek().text == "down") {
          w.direction = -1;
          ++pos_;
        } else if (peek().text == "cross") {
          w.direction = 0;
          ++pos_;
        }
      }
      w.guard = expression();
      expect(TokKind::kKwThen);
      do {
        const std::string target = qualified_name();
        expect(TokKind::kEqual);
        w.resets.emplace_back(ctx_.symbol(target), expression());
      } while (accept(TokKind::kComma));
      expect(TokKind::kSemicolon);
      c.add_when(std::move(w));
      return;
    }
    throw omx::Error(
        std::string("expected 'var', 'param', 'part', 'eq' or 'when', got ") +
            tok_kind_name(peek().kind),
        peek().loc);
  }

  void parse_instance(model::Model& m) {
    expect(TokKind::kKwInstance);
    model::Instance inst;
    const Token name = expect(TokKind::kIdent);
    inst.name = name.text;
    inst.loc = name.loc;
    if (accept(TokKind::kLBracket)) {
      const Token lo = expect(TokKind::kNumber);
      expect(TokKind::kDotDot);
      const Token hi = expect(TokKind::kNumber);
      expect(TokKind::kRBracket);
      inst.is_array = true;
      inst.lo = static_cast<int>(lo.number);
      inst.hi = static_cast<int>(hi.number);
      if (inst.lo != lo.number || inst.hi != hi.number) {
        throw omx::Error("instance range bounds must be integers", lo.loc);
      }
    }
    expect(TokKind::kColon);
    inst.class_name = expect(TokKind::kIdent).text;
    if (accept(TokKind::kLParen)) {
      if (!check(TokKind::kRParen)) {
        do {
          inst.args.push_back(expression());
        } while (accept(TokKind::kComma));
      }
      expect(TokKind::kRParen);
    }
    expect(TokKind::kSemicolon);
    m.add_instance(std::move(inst));
  }

  // -- expressions -------------------------------------------------------------
  expr::ExprId equation_lhs() {
    if (accept(TokKind::kKwDer)) {
      expect(TokKind::kLParen);
      const std::string name = qualified_name();
      expect(TokKind::kRParen);
      return ctx_.pool.der(ctx_.pool.sym(ctx_.symbol(name)));
    }
    return expression();
  }

  expr::ExprId expression() { return additive(); }

  expr::ExprId additive() {
    expr::ExprId e = multiplicative();
    while (true) {
      if (accept(TokKind::kPlus)) {
        e = ctx_.pool.add(e, multiplicative());
      } else if (accept(TokKind::kMinus)) {
        e = ctx_.pool.sub(e, multiplicative());
      } else {
        return e;
      }
    }
  }

  expr::ExprId multiplicative() {
    expr::ExprId e = unary();
    while (true) {
      if (accept(TokKind::kStar)) {
        e = ctx_.pool.mul(e, unary());
      } else if (accept(TokKind::kSlash)) {
        e = ctx_.pool.div(e, unary());
      } else {
        return e;
      }
    }
  }

  expr::ExprId unary() {
    if (accept(TokKind::kMinus)) {
      return ctx_.pool.neg(unary());
    }
    return power();
  }

  expr::ExprId power() {
    const expr::ExprId base = primary();
    if (accept(TokKind::kCaret)) {
      // Right-associative: a^b^c == a^(b^c).
      return ctx_.pool.pow(base, unary());
    }
    return base;
  }

  expr::ExprId primary() {
    if (check(TokKind::kNumber)) {
      return ctx_.pool.constant(expect(TokKind::kNumber).number);
    }
    if (accept(TokKind::kLParen)) {
      const expr::ExprId e = expression();
      expect(TokKind::kRParen);
      return e;
    }
    if (check(TokKind::kIdent)) {
      const Token& name_tok = peek();
      // Function call?
      if (peek(1).kind == TokKind::kLParen) {
        const std::string fname = expect(TokKind::kIdent).text;
        expect(TokKind::kLParen);
        std::vector<expr::ExprId> args;
        if (!check(TokKind::kRParen)) {
          do {
            args.push_back(expression());
          } while (accept(TokKind::kComma));
        }
        expect(TokKind::kRParen);
        if (auto f1 = lookup_func1(fname)) {
          if (args.size() != 1) {
            throw omx::Error("function '" + fname + "' expects 1 argument",
                             name_tok.loc);
          }
          return ctx_.pool.call(*f1, args[0]);
        }
        if (auto f2 = lookup_func2(fname)) {
          if (args.size() != 2) {
            throw omx::Error("function '" + fname + "' expects 2 arguments",
                             name_tok.loc);
          }
          return ctx_.pool.call(*f2, args[0], args[1]);
        }
        if (fname == "pow") {
          if (args.size() != 2) {
            throw omx::Error("pow expects 2 arguments", name_tok.loc);
          }
          return ctx_.pool.pow(args[0], args[1]);
        }
        throw omx::Error("unknown function '" + fname + "'", name_tok.loc);
      }
      return ctx_.pool.sym(ctx_.symbol(qualified_name()));
    }
    throw omx::Error(std::string("expected an expression, got ") +
                         tok_kind_name(peek().kind),
                     peek().loc);
  }

  /// name := IDENT (("." IDENT) | ("[" INT "]"))*
  /// Builds the canonical flat spelling, e.g. "w[3].contact.fn".
  std::string qualified_name() {
    std::string s = expect(TokKind::kIdent).text;
    while (true) {
      if (accept(TokKind::kDot)) {
        s += "." + expect(TokKind::kIdent).text;
      } else if (check(TokKind::kLBracket) &&
                 peek(1).kind == TokKind::kNumber &&
                 peek(2).kind == TokKind::kRBracket) {
        expect(TokKind::kLBracket);
        const Token idx = expect(TokKind::kNumber);
        expect(TokKind::kRBracket);
        if (idx.number != static_cast<int>(idx.number)) {
          throw omx::Error("index must be an integer", idx.loc);
        }
        s += "[" + std::to_string(static_cast<int>(idx.number)) + "]";
      } else {
        return s;
      }
    }
  }

  std::vector<Token> toks_;
  expr::Context& ctx_;
  std::size_t pos_ = 0;
};

}  // namespace

model::Model parse_model(std::string_view source, expr::Context& ctx) {
  return Parser(tokenize(source), ctx).parse_model();
}

expr::ExprId parse_expression(std::string_view source, expr::Context& ctx) {
  return Parser(tokenize(source), ctx).parse_single_expression();
}

}  // namespace omx::parser
