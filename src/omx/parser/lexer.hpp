// Lexer for the OMX modeling language (the textual ObjectMath-style input,
// cf. the paper's Figure 1). Supports // line comments and (* ... *) block
// comments like the original ObjectMath syntax.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "omx/support/diagnostics.hpp"

namespace omx::parser {

enum class TokKind : std::uint8_t {
  kIdent,
  kNumber,
  kKwModel,
  kKwClass,
  kKwInherits,
  kKwVar,
  kKwParam,
  kKwPart,
  kKwEq,
  kKwDer,
  kKwInstance,
  kKwStart,
  kKwEnd,
  kKwWhen,
  kKwThen,
  kPlus,       // +
  kMinus,      // -
  kStar,       // *
  kSlash,      // /
  kCaret,      // ^
  kLParen,     // (
  kRParen,     // )
  kLBracket,   // [
  kRBracket,   // ]
  kComma,      // ,
  kSemicolon,  // ;
  kColon,      // :
  kDot,        // .
  kDotDot,     // ..
  kEqual,      // =
  kEqualEqual, // ==
  kEof,
};

const char* tok_kind_name(TokKind k);

struct Token {
  TokKind kind = TokKind::kEof;
  std::string text;     // identifier spelling
  double number = 0.0;  // for kNumber
  SourceLoc loc;
};

/// Tokenizes the whole input. Throws omx::Error on malformed input
/// (bad character, unterminated block comment, malformed number).
std::vector<Token> tokenize(std::string_view source);

}  // namespace omx::parser
