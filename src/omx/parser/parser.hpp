// Recursive-descent parser for the OMX modeling language.
//
// Grammar (EBNF):
//   model      := "model" IDENT item* "end"
//   item       := classdef | instancedef
//   classdef   := "class" IDENT [ "(" formal ("," formal)* ")" ]
//                 [ "inherits" IDENT [ "(" expr ("," expr)* ")" ] ]
//                 member* "end"
//   member     := "var" vardecl ("," vardecl)* ";"
//               | "param" IDENT "=" expr ("," IDENT "=" expr)* ";"
//               | "part" IDENT ":" IDENT [ "(" args ")" ] ";"
//               | "eq" expr "==" expr ";"
//   vardecl    := IDENT [ "start" expr ]
//   instancedef:= "instance" IDENT [ "[" INT ".." INT "]" ]
//                 ":" IDENT [ "(" args ")" ] ";"
//
// Expressions: + - * / ^ with the usual precedence, unary minus, calls to
// the builtin functions (sin cos tan asin acos atan sinh cosh tanh exp log
// sqrt abs sign atan2 min max hypot), der(x) on equation left-hand sides,
// and qualified references `a.b.c` / `w[3].x` to other instances.
// The reserved symbol `index` refers to the element number in instance
// array arguments; `time` is the free variable.
#pragma once

#include <string_view>

#include "omx/model/model.hpp"

namespace omx::parser {

/// Parses a full model file. Throws omx::Error with source locations on
/// syntax errors.
model::Model parse_model(std::string_view source, expr::Context& ctx);

/// Parses a single expression (for tests and tools).
expr::ExprId parse_expression(std::string_view source, expr::Context& ctx);

}  // namespace omx::parser
