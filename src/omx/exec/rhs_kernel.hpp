// RhsKernel: the uniform, backend-agnostic execution interface for a
// generated RHS function.
//
// A kernel is a vtable-free view — two raw function pointers plus a
// context pointer — with a non-allocating call operator, so the ODE
// solvers and the runtime::WorkerPool dispatch through exactly one
// indirect call regardless of whether the body is the tape interpreter,
// runtime-compiled native code, or the tree-walking reference evaluator.
//
// Four entry points:
//  * eval:           whole-system ydot = f(t, y)          (serial solvers)
//  * run_task:       accumulate one task's contributions  (worker pool)
//  * eval_batch:     nb scenarios at once, SoA layout     (ensemble driver)
//  * run_task_batch: one task across nb scenarios         (ensemble tasks)
//
// Batched entry points use structure-of-arrays layout: state i of
// scenario j lives at y_soa[i * nb + j], output slot s of scenario j at
// ydot_soa[s * nb + j], and each scenario has its own time t[j] (the
// ensemble driver steps scenarios with independent adaptive step
// control, so batch-mates sit at different times). Lane j's results must
// be bitwise identical to a scalar eval of (t[j], y[:, j]) — backends
// may vectorize across lanes but must not reassociate within a lane —
// so batch packing never changes a scenario's trajectory. `lane` has the
// same meaning as for run_task: it selects a private batch workspace,
// calls on distinct lanes are thread-safe.
//
// run_task has *accumulate* semantics — ydot must be pre-zeroed once per
// RHS evaluation, and composing run_task over every task id reproduces
// eval (partial-sum splitting of large equations adds into shared slots,
// §3.2). `lane` selects one of the kernel's pre-built concurrency lanes
// (private register files for the interpreter; native code is stateless
// and ignores it). Calls on distinct lanes are thread-safe; eval and
// same-lane calls are not. The task <-> lane pairing is the caller's
// choice and may change call to call — the work-stealing pool runs any
// task on whichever lane (worker) claimed it — so backends must not key
// any per-task state off the lane index.
//
// Ownership: RhsKernel is a non-owning view. KernelInstance owns the
// backend state (workspaces, dlopen handle) and guarantees a stable
// address for the view, so ode::RhsFn can bind `instance.kernel()`
// directly. Interp/reference kernels also require the source
// Program/FlatSystem to outlive the instance.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "omx/exec/backend.hpp"
#include "omx/obs/registry.hpp"
#include "omx/support/diagnostics.hpp"

namespace omx::model {
class FlatSystem;
}
namespace omx::vm {
struct Program;
}

namespace omx::exec {

/// Scheduling-relevant task metadata, decoupled from any backend's
/// executable representation (the worker pool and the LPT scheduler work
/// from this table, not from vm::Program).
struct TaskMeta {
  /// Output slots this task accumulates into (sorted, unique).
  std::vector<std::uint32_t> out_slots;
  /// State indices this task reads (communication analysis, §3.2.3).
  std::vector<std::uint32_t> in_states;
  /// Static cost estimate (tape instruction count).
  double est_cost = 0.0;
  std::string label;
};

struct TaskTable {
  std::vector<TaskMeta> tasks;

  std::size_t size() const { return tasks.size(); }
};

/// Extracts the scheduling metadata of a compiled parallel tape.
TaskTable task_table_from_program(const vm::Program& p);

class RhsKernel {
 public:
  using EvalFn = void (*)(void* ctx, double t, const double* y,
                          double* ydot);
  using TaskFn = void (*)(void* ctx, std::size_t lane, std::uint32_t task,
                          double t, const double* y, double* ydot);
  using BatchEvalFn = void (*)(void* ctx, std::size_t lane, std::size_t nb,
                               const double* t, const double* y_soa,
                               double* ydot_soa);
  using BatchTaskFn = void (*)(void* ctx, std::size_t lane,
                               std::uint32_t task, std::size_t nb,
                               const double* t, const double* y_soa,
                               double* ydot_soa);

  RhsKernel() = default;
  RhsKernel(Backend backend, void* ctx, EvalFn eval, TaskFn task,
            std::uint32_t n_state, std::uint32_t n_out,
            std::size_t num_lanes, const TaskTable* tasks,
            obs::Counter* calls, BatchEvalFn batch_eval = nullptr,
            BatchTaskFn batch_task = nullptr)
      : backend_(backend),
        ctx_(ctx),
        eval_(eval),
        task_(task),
        batch_eval_(batch_eval),
        batch_task_(batch_task),
        n_state_(n_state),
        n_out_(n_out),
        num_lanes_(num_lanes),
        tasks_(tasks),
        calls_(calls) {}

  Backend backend() const { return backend_; }
  std::uint32_t n_state() const { return n_state_; }
  /// Output slots; n_state for an RHS kernel, n^2 for a Jacobian kernel.
  std::uint32_t n_out() const { return n_out_; }
  /// Concurrency lanes usable with run_task.
  std::size_t num_lanes() const { return num_lanes_; }

  bool has_tasks() const { return task_ != nullptr && tasks_ != nullptr; }
  std::size_t num_tasks() const { return tasks_ ? tasks_->size() : 0; }
  const TaskTable& tasks() const {
    OMX_REQUIRE(tasks_ != nullptr, "kernel has no task decomposition");
    return *tasks_;
  }

  explicit operator bool() const { return eval_ != nullptr; }

  /// Whole-system evaluation: ydot = f(t, y), every slot written.
  void operator()(double t, std::span<const double> y,
                  std::span<double> ydot) const {
    if (calls_ != nullptr) {
      calls_->add();
    }
    eval_(ctx_, t, y.data(), ydot.data());
  }

  /// Accumulates one task's contributions: ydot[slot] += ... for each of
  /// tasks()[task].out_slots. ydot must be zeroed once per evaluation.
  void run_task(std::size_t lane, std::uint32_t task, double t,
                const double* y, double* ydot) const {
    task_(ctx_, lane, task, t, y, ydot);
  }

  bool has_batch() const { return batch_eval_ != nullptr; }
  bool has_batch_tasks() const { return batch_task_ != nullptr; }

  /// Batched whole-system evaluation over `nb` scenarios (SoA layout, see
  /// file comment): ydot_soa[:, j] = f(t[j], y_soa[:, j]) for every lane
  /// j, every output row written. `lane` selects a private workspace;
  /// calls on distinct lanes are thread-safe.
  void eval_batch(std::size_t lane, std::size_t nb, const double* t,
                  const double* y_soa, double* ydot_soa) const {
    if (calls_ != nullptr) {
      calls_->add(nb);
    }
    batch_eval_(ctx_, lane, nb, t, y_soa, ydot_soa);
  }

  /// Batched per-task accumulation: like run_task across all `nb` lanes.
  /// ydot_soa's output rows must be zeroed once per batched evaluation.
  void run_task_batch(std::size_t lane, std::uint32_t task, std::size_t nb,
                      const double* t, const double* y_soa,
                      double* ydot_soa) const {
    batch_task_(ctx_, lane, task, nb, t, y_soa, ydot_soa);
  }

 private:
  Backend backend_ = Backend::kReference;
  void* ctx_ = nullptr;
  EvalFn eval_ = nullptr;
  TaskFn task_ = nullptr;
  BatchEvalFn batch_eval_ = nullptr;
  BatchTaskFn batch_task_ = nullptr;
  std::uint32_t n_state_ = 0;
  std::uint32_t n_out_ = 0;
  std::size_t num_lanes_ = 1;
  const TaskTable* tasks_ = nullptr;
  obs::Counter* calls_ = nullptr;
};

/// Owns a kernel's backend state. Copyable (copies share the state);
/// the view returned by kernel() has a stable address for the lifetime
/// of every copy, so it can be bound into ode::RhsFn.
class KernelInstance {
 public:
  KernelInstance() = default;
  KernelInstance(std::shared_ptr<RhsKernel> view,
                 std::shared_ptr<void> state)
      : view_(std::move(view)), state_(std::move(state)) {}

  const RhsKernel& kernel() const {
    OMX_REQUIRE(view_ != nullptr, "empty kernel instance");
    return *view_;
  }
  Backend backend() const { return kernel().backend(); }
  explicit operator bool() const { return view_ != nullptr; }

 private:
  std::shared_ptr<RhsKernel> view_;
  std::shared_ptr<void> state_;  // referenced by view_->ctx
};

struct InterpKernelOptions {
  /// Concurrency lanes (private register files) for run_task.
  std::size_t lanes = 1;
};

/// Kernel over compiled tapes: run_task interprets `parallel`'s tasks;
/// eval uses `serial` when given (globally CSE'd tape), otherwise runs
/// the parallel tasks in order. Both programs must outlive the instance.
KernelInstance make_interp_kernel(const vm::Program& parallel,
                                  const vm::Program* serial,
                                  const InterpKernelOptions& opts = {});

/// Tree-walking reference kernel (eval only, no task decomposition).
/// `flat` must outlive the instance.
KernelInstance make_reference_kernel(const model::FlatSystem& flat);

}  // namespace omx::exec
