// Execution backend selector for the generated RHS (§4: the paper's
// generated Fortran 90/C++ is compiled and *executed*; this enum names
// the ways this reproduction can execute the same task structure).
#pragma once

namespace omx::exec {

enum class Backend {
  /// Tree-walking evaluation of the flattened equations — slow, exact
  /// reference semantics (tests).
  kReference,
  /// The register-machine tape interpreter (vm::Program).
  kInterp,
  /// Emitted C++ compiled at runtime with the host toolchain into a
  /// shared object and dlopen'ed — the paper's actual execution model.
  /// Falls back to kInterp (with a diagnostic) when no host compiler is
  /// available.
  kNative,
};

constexpr const char* to_string(Backend b) {
  switch (b) {
    case Backend::kReference: return "reference";
    case Backend::kInterp: return "interp";
    case Backend::kNative: return "native";
  }
  return "?";
}

}  // namespace omx::exec
