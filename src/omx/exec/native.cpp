#include "omx/exec/native.hpp"

#include <dlfcn.h>
#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "omx/codegen/cpp_emit.hpp"
#include "omx/exec/vmath_embed.hpp"
#include "omx/model/flat_system.hpp"
#include "omx/support/config.hpp"
#include "omx/vm/program.hpp"

namespace omx::exec {

namespace fs = std::filesystem;

namespace {

// ---------------------------------------------------------------- metrics

obs::Counter& native_compiles() {
  static obs::Counter& c =
      obs::Registry::global().counter("backend.native.compiles");
  return c;
}
obs::Counter& native_cache_hits() {
  static obs::Counter& c =
      obs::Registry::global().counter("backend.native.cache_hits");
  return c;
}
obs::Counter& native_fallbacks() {
  static obs::Counter& c =
      obs::Registry::global().counter("backend.native.fallbacks");
  return c;
}

// ------------------------------------------------------------- toolchain

std::string detect_compiler() {
  const std::string env = config::get_string("OMX_NATIVE_CXX", "");
  if (!env.empty()) {
    return env;
  }
  for (const char* cand : {"c++", "g++", "clang++"}) {
    const std::string probe =
        std::string("command -v ") + cand + " > /dev/null 2>&1";
    if (std::system(probe.c_str()) == 0) {
      return cand;
    }
  }
  return {};
}

const std::string& compiler() {
  static const std::string cxx = detect_compiler();
  return cxx;
}

/// Host-tuning flag for the kernel compile. -march=native unlocks the
/// wide vector units (AVX2/AVX-512) for the `#pragma omp simd` lane
/// loops; it is probed once per process because some toolchains
/// (cross compilers, very old gcc) reject it, and OMX_NATIVE_MARCH can
/// pick another ISA or disable the flag entirely. Note the compiled
/// objects are host-specific either way — the cache key includes the
/// flag string, and the default cache lives in the machine-local tmp.
std::string detect_march_flag(const std::string& cxx) {
  const std::string want = config::get_string("OMX_NATIVE_MARCH", "native");
  if (want.empty() || want == "off" || want == "none" || want == "0") {
    return {};
  }
  const std::string flag = "-march=" + want;
  const std::string probe = cxx + " " + flag +
                            " -x c++ -fsyntax-only /dev/null"
                            " > /dev/null 2>&1";
  return std::system(probe.c_str()) == 0 ? flag : std::string();
}

const std::string& march_flag() {
  static const std::string flag = detect_march_flag(compiler());
  return flag;
}

/// Preferred vector width for the lane loops. gcc defaults to 256-bit
/// vectors even on AVX-512 hardware (a throughput-downclock heuristic
/// tuned for mixed workloads); the emitted kernels are exactly the
/// all-lanes-hot case where 512-bit wins, so prefer it when the
/// toolchain accepts the flag. Width only changes how many lanes ride
/// one instruction — each lane's operation sequence, and therefore
/// every result bit, is identical at any width.
std::string detect_vecwidth_flag(const std::string& cxx) {
  const std::string want = config::get_string("OMX_NATIVE_VECWIDTH", "512");
  if (want.empty() || want == "off" || want == "none" || want == "0") {
    return {};
  }
  const std::string flag = "-mprefer-vector-width=" + want;
  const std::string probe = cxx + " " + flag +
                            " -x c++ -fsyntax-only /dev/null"
                            " > /dev/null 2>&1";
  return std::system(probe.c_str()) == 0 ? flag : std::string();
}

const std::string& vecwidth_flag() {
  static const std::string flag = detect_vecwidth_flag(compiler());
  return flag;
}

/// Flags that make the lane loops vectorize WITHOUT changing per-lane
/// IEEE arithmetic:
///   -ffp-contract=off  no FMA contraction, so scalar rhs and rhs_batch
///                      (and the interpreter) execute identical mul/add
///                      sequences even on FMA hardware;
///   -fno-math-errno    sqrt/fabs lower to single instructions instead
///                      of errno-setting libm calls;
///   -fno-trapping-math FP compares/divides may be speculated across
///                      blends. This only relaxes *exception-flag*
///                      semantics (we never read feraiseexcept state);
///                      computed values are untouched. Without it,
///                      gcc's if-conversion refuses to flatten the
///                      guard blends in the vmath runtime ("tree could
///                      trap") and every lane loop with a log/sin/pow
///                      stays scalar;
///   -fopenmp-simd      honor the emitted `#pragma omp simd` (pragma
///                      only, no OpenMP runtime).
/// Deliberately still no -ffast-math/-funsafe-math-optimizations: no
/// reassociation, so results stay bitwise reproducible run to run.
std::string codegen_flags() {
  std::string flags =
      " -ffp-contract=off -fno-math-errno -fno-trapping-math -fopenmp-simd";
  if (!march_flag().empty()) {
    flags += " " + march_flag();
  }
  if (!vecwidth_flag().empty()) {
    flags += " " + vecwidth_flag();
  }
  return flags;
}

fs::path cache_dir(const NativeOptions& opts) {
  if (!opts.cache_dir.empty()) {
    return opts.cache_dir;
  }
  const std::string env = config::get_string("OMX_NATIVE_CACHE_DIR", "");
  if (!env.empty()) {
    return env;
  }
  return fs::temp_directory_path() / "omx-native-cache";
}

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string hex(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

// ------------------------------------------------------ source synthesis

/// Composes the single translation unit: one hoisted prelude, the serial
/// and parallel emitted bodies in their own namespaces, and the
/// extern "C" export surface the loader binds to.
std::string compose_source(const model::FlatSystem& flat,
                           const codegen::AssignmentSet& set,
                           const codegen::TaskPlan& plan) {
  codegen::EmitOptions eo;
  eo.with_helpers = false;
  eo.with_prelude = false;
  // Transcendentals print as the omx_* vmath runtime names; the
  // definitions are embedded below so every kernel ships its own
  // branch-free math and rhs/rhs_batch stay bitwise identical per lane.
  eo.simd_math = true;
  const codegen::EmitResult serial = codegen::emit_cpp_serial(flat, set, eo);
  const codegen::EmitResult par = codegen::emit_cpp_parallel(flat, plan, eo);
  const codegen::EmitResult serial_b =
      codegen::emit_cpp_serial_batch(flat, set, eo);
  const codegen::EmitResult par_b =
      codegen::emit_cpp_parallel_batch(flat, plan, eo);

  std::ostringstream os;
  os << "// Synthesized by omx::exec (native backend). Do not edit.\n"
     << "#include <cmath>\n"
     << "#define OMX_SIMD_LOOP _Pragma(\"omp simd\")\n"
     << "// ---- omx vector-math runtime (exec/vmath_functions.h) ----\n"
     << vmath_source()
     << "// ---- end vector-math runtime ----\n"
     << "namespace {\n"
     << "inline double omx_sign(double x) {\n"
     << "  return x > 0.0 ? 1.0 : (x < 0.0 ? -1.0 : 0.0);\n"
     << "}\n"
     << "}  // namespace\n"
     << "namespace omx_serial {\n"
     << serial.code
     << serial_b.code
     << "}  // namespace omx_serial\n"
     << "namespace omx_parallel {\n"
     << par.code
     << par_b.code
     << "}  // namespace omx_parallel\n"
     << "extern \"C\" {\n"
     << "int omx_abi_version() { return 3; }\n"
     << "unsigned omx_n_state() { return " << flat.num_states() << "u; }\n"
     << "unsigned omx_num_tasks() { return " << plan.tasks.size()
     << "u; }\n"
     << "void omx_rhs_serial(double t, const double* y, double* ydot) {\n"
     << "  omx_serial::rhs(t, y, ydot);\n"
     << "}\n"
     << "void omx_rhs_task(unsigned task, double t, const double* y,\n"
     << "                  double* ydot) {\n"
     << "  omx_parallel::rhs(static_cast<int>(task) + 1, t, y, ydot);\n"
     << "}\n"
     << "void omx_rhs_serial_batch(unsigned nb, const double* ts,\n"
     << "                          const double* y, double* ydot) {\n"
     << "  omx_serial::rhs_batch(static_cast<int>(nb), ts, y, ydot);\n"
     << "}\n"
     << "void omx_rhs_task_batch(unsigned task, unsigned nb,\n"
     << "                        const double* ts, const double* y,\n"
     << "                        double* ydot) {\n"
     << "  omx_parallel::rhs_batch(static_cast<int>(task) + 1,\n"
     << "                          static_cast<int>(nb), ts, y, ydot);\n"
     << "}\n"
     << "}  // extern \"C\"\n";
  return os.str();
}

// --------------------------------------------------------- cache locking

/// Advisory inter-process lock on one cache key. Two processes (or two
/// threads — flock is per open file description) compiling the same
/// model otherwise race: both run the compiler, and the second rename
/// clobbers an object the first may already have dlopen'ed. The loser
/// blocks on the lockfile, then finds the published .so and takes the
/// cache-hit path. The lockfile itself is left behind (removing it
/// would race a third waiter locking the same inode).
class CacheLock {
 public:
  explicit CacheLock(const fs::path& lockfile) {
    fd_ = ::open(lockfile.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
    if (fd_ >= 0 && ::flock(fd_, LOCK_EX) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~CacheLock() {
    if (fd_ >= 0) {
      ::flock(fd_, LOCK_UN);
      ::close(fd_);
    }
  }
  CacheLock(const CacheLock&) = delete;
  CacheLock& operator=(const CacheLock&) = delete;

  bool held() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
};

// -------------------------------------------------------- loaded module

using SerialEntry = void (*)(double, const double*, double*);
using TaskEntry = void (*)(unsigned, double, const double*, double*);
using SerialBatchEntry = void (*)(unsigned, const double*, const double*,
                                  double*);
using TaskBatchEntry = void (*)(unsigned, unsigned, const double*,
                                const double*, double*);

struct NativeState {
  void* handle = nullptr;
  SerialEntry serial = nullptr;
  TaskEntry task = nullptr;
  SerialBatchEntry serial_batch = nullptr;
  TaskBatchEntry task_batch = nullptr;
  TaskTable table;

  ~NativeState() {
    if (handle != nullptr) {
      dlclose(handle);
    }
  }
};

void native_eval(void* ctx, double t, const double* y, double* ydot) {
  static_cast<NativeState*>(ctx)->serial(t, y, ydot);
}

void native_task(void* ctx, std::size_t /*lane*/, std::uint32_t task,
                 double t, const double* y, double* ydot) {
  static_cast<NativeState*>(ctx)->task(task, t, y, ydot);
}

void native_eval_batch(void* ctx, std::size_t /*lane*/, std::size_t nb,
                       const double* t, const double* y_soa,
                       double* ydot_soa) {
  static_cast<NativeState*>(ctx)->serial_batch(static_cast<unsigned>(nb), t,
                                               y_soa, ydot_soa);
}

void native_task_batch(void* ctx, std::size_t /*lane*/, std::uint32_t task,
                       std::size_t nb, const double* t, const double* y_soa,
                       double* ydot_soa) {
  static_cast<NativeState*>(ctx)->task_batch(task, static_cast<unsigned>(nb),
                                             t, y_soa, ydot_soa);
}

void diag(const std::string& why) {
  std::fprintf(stderr,
               "omx: native backend unavailable (%s); "
               "falling back to the tape interpreter\n",
               why.c_str());
}

/// Compiles (or reuses) the shared object and loads it. Returns null and
/// sets `why` on any failure.
std::shared_ptr<NativeState> build_module(const std::string& source,
                                          const vm::Program& parallel,
                                          const NativeOptions& opts,
                                          std::string& why) {
  const std::string& cxx = compiler();
  if (cxx.empty()) {
    why = "no host C++ compiler found; set OMX_NATIVE_CXX";
    return nullptr;
  }

  std::error_code ec;
  const fs::path dir = cache_dir(opts);
  fs::create_directories(dir, ec);
  if (ec) {
    why = "cannot create cache dir " + dir.string();
    return nullptr;
  }

  const std::string key = hex(fnv1a(source + "\x1f" + cxx + "\x1f" +
                                    codegen_flags() + "\x1f" +
                                    opts.extra_flags));
  const fs::path so = dir / ("omx_" + key + ".so");
  const fs::path cpp = dir / ("omx_" + key + ".cpp");
  const fs::path log = dir / ("omx_" + key + ".log");

  if (fs::exists(so, ec)) {
    // Published objects are immutable (rename is the atomic publish
    // point), so the fast path needs no lock.
    native_cache_hits().add();
  } else {
    // Serialize compilers of the same key across threads AND processes;
    // whoever loses the race finds the .so published and takes the
    // cache-hit path on the re-check below.
    CacheLock lock(dir / ("omx_" + key + ".lock"));
    if (!lock.held()) {
      why = "cannot lock cache key " + key + " in " + dir.string();
      return nullptr;
    }
    if (fs::exists(so, ec)) {
      native_cache_hits().add();
    } else {
      {
        std::ofstream out(cpp);
        out << source;
        if (!out) {
          why = "cannot write " + cpp.string();
          return nullptr;
        }
      }
      std::string cmd =
          cxx + " -std=c++17 -O2 -fPIC -shared" + codegen_flags();
      if (!opts.extra_flags.empty()) {
        cmd += " " + opts.extra_flags;
      }
      const fs::path so_tmp = dir / ("omx_" + key + ".so.tmp");
      cmd += " -o '" + so_tmp.string() + "' '" + cpp.string() + "' > '" +
             log.string() + "' 2>&1";

      const auto start = std::chrono::steady_clock::now();
      const int rc = std::system(cmd.c_str());
      const double secs =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      static obs::Gauge& compile_seconds =
          obs::Registry::global().gauge("backend.compile_seconds");
      compile_seconds.set(secs);
      if (rc != 0) {
        why = "compile failed (see " + log.string() + ")";
        return nullptr;
      }
      // Atomic publish so concurrent processes sharing the cache never
      // dlopen a half-written object.
      fs::rename(so_tmp, so, ec);
      if (ec && !fs::exists(so)) {
        why = "cannot publish " + so.string();
        return nullptr;
      }
      native_compiles().add();
    }
  }

  auto state = std::make_shared<NativeState>();
  state->handle = dlopen(so.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (state->handle == nullptr) {
    const char* err = dlerror();
    why = std::string("dlopen failed: ") + (err != nullptr ? err : "?");
    return nullptr;
  }
  auto sym = [&](const char* name) {
    return dlsym(state->handle, name);
  };
  auto* abi = reinterpret_cast<int (*)()>(sym("omx_abi_version"));
  auto* n_state = reinterpret_cast<unsigned (*)()>(sym("omx_n_state"));
  auto* n_tasks = reinterpret_cast<unsigned (*)()>(sym("omx_num_tasks"));
  state->serial = reinterpret_cast<SerialEntry>(sym("omx_rhs_serial"));
  state->task = reinterpret_cast<TaskEntry>(sym("omx_rhs_task"));
  state->serial_batch =
      reinterpret_cast<SerialBatchEntry>(sym("omx_rhs_serial_batch"));
  state->task_batch =
      reinterpret_cast<TaskBatchEntry>(sym("omx_rhs_task_batch"));
  if (abi == nullptr || n_state == nullptr || n_tasks == nullptr ||
      state->serial == nullptr || state->task == nullptr ||
      state->serial_batch == nullptr || state->task_batch == nullptr) {
    why = "missing export in " + so.string();
    return nullptr;
  }
  // ABI 3 = batched (SoA) entry points + embedded vmath runtime with
  // vectorized lane loops. Stale cache entries can't satisfy this
  // loader; their source hash differs anyway, so they simply never
  // match — the check guards hand-placed or corrupt objects.
  if (abi() != 3) {
    why = "ABI version mismatch in " + so.string();
    return nullptr;
  }
  if (n_state() != parallel.n_state ||
      n_tasks() != parallel.tasks.size()) {
    why = "stale cache entry shape mismatch in " + so.string();
    return nullptr;
  }
  state->table = task_table_from_program(parallel);
  return state;
}

bool env_disabled() {
  return config::get_bool("OMX_NATIVE_DISABLE", false);
}

}  // namespace

bool native_toolchain_available() {
  return !compiler().empty();
}

KernelInstance make_native_kernel(const model::FlatSystem& flat,
                                  const codegen::AssignmentSet& set,
                                  const codegen::TaskPlan& plan,
                                  const vm::Program& parallel,
                                  const vm::Program* serial,
                                  const NativeOptions& opts) {
  auto fallback = [&]() {
    native_fallbacks().add();
    InterpKernelOptions io;
    io.lanes = opts.fallback_lanes;
    return make_interp_kernel(parallel, serial, io);
  };
  if (opts.force_fallback || env_disabled()) {
    return fallback();
  }

  std::string why;
  std::shared_ptr<NativeState> state;
  try {
    state = build_module(compose_source(flat, set, plan), parallel, opts,
                         why);
  } catch (const std::exception& e) {
    why = e.what();
  }
  if (state == nullptr) {
    diag(why);
    return fallback();
  }

  static obs::Counter& calls =
      obs::Registry::global().counter("rhs.calls.native");
  auto view = std::make_shared<RhsKernel>(
      Backend::kNative, state.get(), &native_eval, &native_task,
      parallel.n_state, parallel.n_out,
      /*num_lanes=*/SIZE_MAX, &state->table, &calls, &native_eval_batch,
      &native_task_batch);
  return KernelInstance(std::move(view), std::move(state));
}

}  // namespace omx::exec
