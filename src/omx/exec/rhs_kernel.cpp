#include "omx/exec/rhs_kernel.hpp"

#include <algorithm>

#include <vector>

#include "omx/model/flat_system.hpp"
#include "omx/vm/batch.hpp"
#include "omx/vm/interp.hpp"
#include "omx/vm/program.hpp"

namespace omx::exec {

TaskTable task_table_from_program(const vm::Program& p) {
  TaskTable table;
  table.tasks.reserve(p.tasks.size());
  for (const vm::TaskCode& t : p.tasks) {
    TaskMeta m;
    m.out_slots.reserve(t.outputs.size());
    for (const vm::Output& o : t.outputs) {
      m.out_slots.push_back(o.slot);
    }
    std::sort(m.out_slots.begin(), m.out_slots.end());
    m.out_slots.erase(std::unique(m.out_slots.begin(), m.out_slots.end()),
                      m.out_slots.end());
    m.in_states = t.in_states;
    m.est_cost = static_cast<double>(t.est_ops);
    m.label = t.label;
    table.tasks.push_back(std::move(m));
  }
  return table;
}

namespace {

struct InterpState {
  const vm::Program* parallel = nullptr;
  const vm::Program* serial = nullptr;  // may be null
  vm::Workspace eval_ws;
  std::vector<vm::Workspace> lane_ws;  // one private register file per lane
  // Batched counterparts: per-lane SoA register files so eval_batch /
  // run_task_batch calls on distinct lanes are thread-safe.
  std::vector<vm::BatchWorkspace> eval_batch_ws;  // serial-or-parallel tape
  std::vector<vm::BatchWorkspace> task_batch_ws;  // parallel tape
  TaskTable table;

  InterpState(const vm::Program& par, const vm::Program* ser,
              std::size_t lanes)
      : parallel(&par),
        serial(ser),
        eval_ws(ser != nullptr ? *ser : par),
        lane_ws(lanes, vm::Workspace(par)),
        eval_batch_ws(lanes),
        task_batch_ws(lanes),
        table(task_table_from_program(par)) {}
};

void interp_eval(void* ctx, double t, const double* y, double* ydot) {
  auto* s = static_cast<InterpState*>(ctx);
  const vm::Program& p = s->serial != nullptr ? *s->serial : *s->parallel;
  vm::eval_rhs_serial(p, t, {y, p.n_state}, {ydot, p.n_out}, s->eval_ws);
}

void interp_task(void* ctx, std::size_t lane, std::uint32_t task, double t,
                 const double* y, double* ydot) {
  auto* s = static_cast<InterpState*>(ctx);
  const vm::Program& p = *s->parallel;
  vm::Workspace& ws = s->lane_ws[lane];
  ws.load_state(p, t, {y, p.n_state});
  vm::run_task(p, task, ws.regs());
  vm::apply_outputs(p, task, ws.regs(), {ydot, p.n_out});
}

void interp_eval_batch(void* ctx, std::size_t lane, std::size_t nb,
                       const double* t, const double* y_soa,
                       double* ydot_soa) {
  auto* s = static_cast<InterpState*>(ctx);
  const vm::Program& p = s->serial != nullptr ? *s->serial : *s->parallel;
  vm::eval_rhs_batch(p, nb, t, y_soa, ydot_soa, s->eval_batch_ws[lane]);
}

void interp_task_batch(void* ctx, std::size_t lane, std::uint32_t task,
                       std::size_t nb, const double* t, const double* y_soa,
                       double* ydot_soa) {
  auto* s = static_cast<InterpState*>(ctx);
  const vm::Program& p = *s->parallel;
  vm::BatchWorkspace& ws = s->task_batch_ws[lane];
  ws.load_state(p, nb, t, y_soa);
  vm::run_task_batch(p, task, nb, ws.regs());
  vm::apply_outputs_batch(p, task, nb, ws.regs(), ydot_soa);
}

struct ReferenceState {
  const model::FlatSystem* flat = nullptr;
};

void reference_eval(void* ctx, double t, const double* y, double* ydot) {
  const model::FlatSystem* f = static_cast<ReferenceState*>(ctx)->flat;
  f->eval_rhs(t, {y, f->num_states()}, {ydot, f->num_states()});
}

// Oracle path: loop-over-lanes gather/scatter around the scalar
// tree-walking evaluator. Allocates per call so any lane value is safe
// under concurrent use; the differential suite compares the batched
// backends against this.
void reference_eval_batch(void* ctx, std::size_t /*lane*/, std::size_t nb,
                          const double* t, const double* y_soa,
                          double* ydot_soa) {
  const model::FlatSystem* f = static_cast<ReferenceState*>(ctx)->flat;
  const std::size_t n = f->num_states();
  std::vector<double> y(n);
  std::vector<double> ydot(n);
  for (std::size_t j = 0; j < nb; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      y[i] = y_soa[i * nb + j];
    }
    f->eval_rhs(t[j], y, ydot);
    for (std::size_t i = 0; i < n; ++i) {
      ydot_soa[i * nb + j] = ydot[i];
    }
  }
}

}  // namespace

KernelInstance make_interp_kernel(const vm::Program& parallel,
                                  const vm::Program* serial,
                                  const InterpKernelOptions& opts) {
  OMX_REQUIRE(opts.lanes >= 1, "need at least one lane");
  OMX_REQUIRE(serial == nullptr || serial->n_out == parallel.n_out,
              "serial/parallel program output mismatch");
  auto state = std::make_shared<InterpState>(parallel, serial, opts.lanes);
  static obs::Counter& calls =
      obs::Registry::global().counter("rhs.calls.interp");
  auto view = std::make_shared<RhsKernel>(
      Backend::kInterp, state.get(), &interp_eval, &interp_task,
      parallel.n_state, parallel.n_out, opts.lanes, &state->table, &calls,
      &interp_eval_batch, &interp_task_batch);
  return KernelInstance(std::move(view), std::move(state));
}

KernelInstance make_reference_kernel(const model::FlatSystem& flat) {
  auto state = std::make_shared<ReferenceState>();
  state->flat = &flat;
  static obs::Counter& calls =
      obs::Registry::global().counter("rhs.calls.reference");
  const auto n = static_cast<std::uint32_t>(flat.num_states());
  auto view = std::make_shared<RhsKernel>(
      Backend::kReference, state.get(), &reference_eval, nullptr, n, n,
      /*num_lanes=*/1, /*tasks=*/nullptr, &calls, &reference_eval_batch);
  return KernelInstance(std::move(view), std::move(state));
}

}  // namespace omx::exec
