// Native execution backend: the paper's actual execution model (§4 —
// generated code is compiled by the platform compiler and *run*, not
// interpreted).
//
// make_native_kernel takes the emitted C++ from codegen::emit_cpp_serial
// / emit_cpp_parallel, composes one translation unit, compiles it at
// runtime with the host toolchain into a shared object (cached under a
// build directory keyed by source hash), dlopens it and wraps the
// exported entry points in an exec::RhsKernel.
//
// Graceful degradation: when no host compiler is available (or the
// compile/load fails), the factory emits a one-line diagnostic and
// returns an interpreter kernel over the same task structure — callers
// never see a hard failure, only a kernel whose backend() says kInterp.
//
// Environment knobs:
//   OMX_NATIVE_CXX        compiler to use (default: c++, g++, clang++ in
//                         PATH order)
//   OMX_NATIVE_CACHE_DIR  cache directory (default:
//                         <tmp>/omx-native-cache)
//   OMX_NATIVE_DISABLE    "1" forces the interpreter fallback
#pragma once

#include <string>

#include "omx/codegen/tasks.hpp"
#include "omx/exec/rhs_kernel.hpp"

namespace omx::exec {

struct NativeOptions {
  /// Compiled-object cache directory; empty = $OMX_NATIVE_CACHE_DIR or
  /// <system temp>/omx-native-cache.
  std::string cache_dir;
  /// Extra flags appended to the compile command line.
  std::string extra_flags;
  /// Skip the native path entirely and build the fallback kernel
  /// (equivalent to OMX_NATIVE_DISABLE=1).
  bool force_fallback = false;
  /// Lanes for the interpreter fallback kernel.
  std::size_t fallback_lanes = 1;
};

/// True if a host C++ compiler was found (cached after the first probe).
bool native_toolchain_available();

/// Builds a native kernel for the model's emitted C++. `parallel` (and
/// optionally `serial`) provide the scheduling metadata and the
/// interpreter fallback; they must outlive the returned instance. Check
/// `instance.backend()` to see whether the native path was taken.
KernelInstance make_native_kernel(const model::FlatSystem& flat,
                                  const codegen::AssignmentSet& set,
                                  const codegen::TaskPlan& plan,
                                  const vm::Program& parallel,
                                  const vm::Program* serial,
                                  const NativeOptions& opts = {});

}  // namespace omx::exec
