// Access to the vector-math runtime (vmath_functions.h) as source text.
// The native backend embeds this text into every synthesized translation
// unit so the compiled kernels carry their own branch-free math runtime;
// the text is generated at configure time from vmath_functions.h itself
// (see src/CMakeLists.txt), so the compiled-in functions and the emitted
// ones can never drift apart.
#pragma once

namespace omx::exec {

/// The full text of vmath_functions.h, NUL-terminated.
const char* vmath_source();

}  // namespace omx::exec
