// Semi-dynamic LPT (§3.2.3): conditional expressions inside equation
// right-hand sides make static cost prediction impossible, so the measured
// per-task times of the previous iteration step predict the next step's
// costs, and the schedule is rebuilt at a fixed cadence. The paper reports
// this costs "less than 1% of the execution time" — bench/lpt_overhead
// measures the same number for this implementation.
//
// Composes with the worker pool's intra-call stealing: record() takes
// seconds indexed by *task*, not by worker, so measurements arrive intact
// no matter which worker ended up executing a task, and the rebuilt LPT
// schedule is the seed the pool deals into its deques on the next call.
#pragma once

#include "omx/sched/lpt.hpp"

namespace omx::sched {

struct SemiDynamicOptions {
  /// Rebuild the schedule every `reschedule_period` RHS evaluations.
  std::size_t reschedule_period = 16;
  /// Exponential smoothing factor for measured times (1.0 = last sample).
  double smoothing = 0.5;
};

class SemiDynamicLpt {
 public:
  /// `static_weights` are the compile-time cost predictions (instruction
  /// counts) used until measurements exist.
  SemiDynamicLpt(std::vector<double> static_weights, std::size_t num_workers,
                 const SemiDynamicOptions& opts = {});

  /// Current schedule.
  const Schedule& schedule() const { return schedule_; }

  /// Feeds the measured per-task seconds of one evaluation. Returns true
  /// if the schedule was rebuilt.
  bool record(std::span<const double> task_seconds);

  /// Changes worker count (reschedules immediately).
  void reset_workers(std::size_t num_workers);

  std::size_t num_reschedules() const { return num_reschedules_; }
  const std::vector<double>& predicted() const { return weights_; }

 private:
  void rebuild();

  std::vector<double> weights_;
  std::size_t num_workers_;
  SemiDynamicOptions opts_;
  Schedule schedule_;
  std::size_t calls_since_rebuild_ = 0;
  std::size_t num_reschedules_ = 0;
  bool have_measurements_ = false;
};

}  // namespace omx::sched
