// Largest-processing-time (LPT) list scheduling (§3.2.3).
//
// Tasks are sorted by decreasing predicted execution time and assigned one
// by one to the currently least-loaded worker. Graham's classic bound
// applies: makespan <= (4/3 - 1/(3m)) * OPT.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace omx::sched {

/// schedule[w] = ordered list of task indices assigned to worker w.
using Schedule = std::vector<std::vector<std::uint32_t>>;

/// Runs LPT for `num_workers` workers over `weights` (one entry per task,
/// any nonnegative cost unit). Deterministic: ties broken by task index.
Schedule lpt_schedule(std::span<const double> weights,
                      std::size_t num_workers);

/// Longest per-worker total under `schedule`.
double makespan(std::span<const double> weights, const Schedule& schedule);

/// Load-imbalance ratio: makespan / (total/num_workers). 1.0 is perfect.
double imbalance(std::span<const double> weights, const Schedule& schedule);

/// Simple makespan lower bound: max(max weight, total/num_workers).
double makespan_lower_bound(std::span<const double> weights,
                            std::size_t num_workers);

}  // namespace omx::sched
