#include "omx/sched/lpt.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

#include "omx/support/diagnostics.hpp"

namespace omx::sched {

Schedule lpt_schedule(std::span<const double> weights,
                      std::size_t num_workers) {
  OMX_REQUIRE(num_workers > 0, "need at least one worker");
  std::vector<std::uint32_t> order(weights.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return weights[a] > weights[b];
                   });

  // Min-heap of (load, worker); worker index breaks ties for determinism.
  using Entry = std::pair<double, std::size_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (std::size_t w = 0; w < num_workers; ++w) {
    heap.push({0.0, w});
  }
  Schedule schedule(num_workers);
  for (std::uint32_t task : order) {
    auto [load, w] = heap.top();
    heap.pop();
    schedule[w].push_back(task);
    heap.push({load + weights[task], w});
  }
  return schedule;
}

double makespan(std::span<const double> weights, const Schedule& schedule) {
  double worst = 0.0;
  for (const auto& tasks : schedule) {
    double load = 0.0;
    for (std::uint32_t t : tasks) {
      OMX_REQUIRE(t < weights.size(), "task index out of range");
      load += weights[t];
    }
    worst = std::max(worst, load);
  }
  return worst;
}

double imbalance(std::span<const double> weights, const Schedule& schedule) {
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total == 0.0 || schedule.empty()) {
    return 1.0;
  }
  const double ideal = total / static_cast<double>(schedule.size());
  return makespan(weights, schedule) / ideal;
}

double makespan_lower_bound(std::span<const double> weights,
                            std::size_t num_workers) {
  OMX_REQUIRE(num_workers > 0, "need at least one worker");
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  double largest = 0.0;
  for (double w : weights) {
    largest = std::max(largest, w);
  }
  return std::max(largest, total / static_cast<double>(num_workers));
}

}  // namespace omx::sched
