#include "omx/sched/semidynamic.hpp"

#include "omx/obs/registry.hpp"
#include "omx/obs/trace.hpp"
#include "omx/support/diagnostics.hpp"

namespace omx::sched {

SemiDynamicLpt::SemiDynamicLpt(std::vector<double> static_weights,
                               std::size_t num_workers,
                               const SemiDynamicOptions& opts)
    : weights_(std::move(static_weights)),
      num_workers_(num_workers),
      opts_(opts) {
  OMX_REQUIRE(num_workers_ > 0, "need at least one worker");
  OMX_REQUIRE(opts_.smoothing > 0.0 && opts_.smoothing <= 1.0,
              "smoothing must be in (0, 1]");
  rebuild();
}

bool SemiDynamicLpt::record(std::span<const double> task_seconds) {
  static obs::Counter& records =
      obs::Registry::global().counter("sched.records");
  OMX_REQUIRE(task_seconds.size() == weights_.size(),
              "measurement size mismatch");
  records.add();
  if (!have_measurements_) {
    // First measurement replaces the static instruction-count prediction
    // outright (different units).
    for (std::size_t i = 0; i < weights_.size(); ++i) {
      weights_[i] = task_seconds[i];
    }
    have_measurements_ = true;
  } else {
    const double a = opts_.smoothing;
    for (std::size_t i = 0; i < weights_.size(); ++i) {
      weights_[i] = (1.0 - a) * weights_[i] + a * task_seconds[i];
    }
  }
  if (++calls_since_rebuild_ >= opts_.reschedule_period) {
    rebuild();
    return true;
  }
  return false;
}

void SemiDynamicLpt::reset_workers(std::size_t num_workers) {
  OMX_REQUIRE(num_workers > 0, "need at least one worker");
  num_workers_ = num_workers;
  rebuild();
}

void SemiDynamicLpt::rebuild() {
  static obs::Counter& reschedules =
      obs::Registry::global().counter("sched.reschedules");
  obs::Span span("sched.rebuild", "sched");
  schedule_ = lpt_schedule(weights_, num_workers_);
  calls_since_rebuild_ = 0;
  ++num_reschedules_;
  reschedules.add();
}

}  // namespace omx::sched
