#include "omx/runtime/worker_pool.hpp"

#include <algorithm>
#include <unordered_set>

#include "omx/obs/trace.hpp"
#include "omx/support/timer.hpp"

namespace omx::runtime {

namespace {
// Fixed per-message envelope (header, tags) in bytes.
constexpr std::size_t kHeaderBytes = 16;
}  // namespace

WorkerPool::WorkerPool(const exec::RhsKernel& kernel, const Options& opts)
    : kernel_(&kernel), opts_(opts) {
  init();
}

WorkerPool::WorkerPool(const vm::Program& program, const Options& opts)
    : opts_(opts) {
  exec::InterpKernelOptions io;
  io.lanes = opts.num_workers;
  owned_ = exec::make_interp_kernel(program, nullptr, io);
  kernel_ = &owned_.kernel();
  init();
}

void WorkerPool::init() {
  OMX_REQUIRE(opts_.num_workers >= 1, "need at least one worker");
  OMX_REQUIRE(opts_.compute_scale >= 1, "compute_scale must be >= 1");
  OMX_REQUIRE(kernel_->has_tasks(),
              "WorkerPool needs a kernel with a task decomposition");
  OMX_REQUIRE(kernel_->num_lanes() >= opts_.num_workers,
              "kernel has fewer lanes than workers");
  rhs_calls_metric_ = &obs::Registry::global().counter("rhs.calls");
  tasks_run_metric_ = &obs::Registry::global().counter("rhs.tasks_run");

  y_.resize(kernel_->n_state(), 0.0);
  task_seconds_.assign(kernel_->num_tasks(), 0.0);

  workers_.reserve(opts_.num_workers);
  for (std::size_t w = 0; w < opts_.num_workers; ++w) {
    auto ws = std::make_unique<WorkerState>();
    ws->task_out.assign(kernel_->n_out(), 0.0);
    workers_.push_back(std::move(ws));
  }
  // Default schedule: round-robin, replaced by the caller via
  // set_schedule() (LPT) in normal operation.
  sched::Schedule rr(opts_.num_workers);
  for (std::size_t i = 0; i < kernel_->num_tasks(); ++i) {
    rr[i % opts_.num_workers].push_back(static_cast<std::uint32_t>(i));
  }
  set_schedule(rr);

  for (std::size_t i = 0; i < workers_.size(); ++i) {
    WorkerState& w_ref = *workers_[i];
    workers_[i]->thread =
        std::thread([this, &w_ref, i] { worker_main(w_ref, i); });
  }
}

WorkerPool::~WorkerPool() {
  for (auto& w : workers_) {
    {
      std::lock_guard<std::mutex> lock(w->mutex);
      shutdown_ = true;
      ++w->requested;
    }
    w->cv.notify_all();
  }
  for (auto& w : workers_) {
    if (w->thread.joinable()) {
      w->thread.join();
    }
  }
}

void WorkerPool::set_schedule(const sched::Schedule& schedule) {
  OMX_REQUIRE(schedule.size() == workers_.size(),
              "schedule/worker count mismatch");
  const exec::TaskTable& table = kernel_->tasks();
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    std::lock_guard<std::mutex> lock(workers_[w]->mutex);
    workers_[w]->tasks = schedule[w];
    std::size_t outputs = 0;
    for (std::uint32_t t : schedule[w]) {
      OMX_REQUIRE(t < table.size(), "task index out of range");
      outputs += table.tasks[t].out_slots.size();
    }
    workers_[w]->results.assign(outputs, 0.0);
  }
  recompute_message_sizes();
}

void WorkerPool::recompute_message_sizes() {
  const exec::TaskTable& table = kernel_->tasks();
  for (auto& w : workers_) {
    std::size_t payload_states = kernel_->n_state();
    if (opts_.communication_analysis) {
      std::unordered_set<std::uint32_t> needed;
      for (std::uint32_t t : w->tasks) {
        for (std::uint32_t s : table.tasks[t].in_states) {
          needed.insert(s);
        }
      }
      payload_states = needed.size();
    }
    // t plus the states; results carry (slot, value) pairs.
    w->state_bytes = kHeaderBytes + 8 * (payload_states + 1);
    std::size_t outputs = 0;
    for (std::uint32_t t : w->tasks) {
      outputs += table.tasks[t].out_slots.size();
    }
    w->result_bytes = kHeaderBytes + 16 * outputs;
  }
}

void WorkerPool::worker_main(WorkerState& w, std::size_t index) {
  obs::TraceBuffer& tb = obs::TraceBuffer::global();
  tb.set_thread_name("worker/" + std::to_string(index));
  const exec::TaskTable& table = kernel_->tasks();
  std::uint64_t last_done = 0;
  while (true) {
    {
      const std::int64_t idle_start = tb.active() ? tb.now_ns() : -1;
      std::unique_lock<std::mutex> lock(w.mutex);
      w.cv.wait(lock, [&] { return w.requested > last_done || shutdown_; });
      if (idle_start >= 0 && tb.active()) {
        tb.record("idle", "worker", idle_start, tb.now_ns() - idle_start);
      }
      if (shutdown_) {
        return;
      }
      last_done = w.requested;
    }
    if (!w.tasks.empty()) {
      const bool tracing = tb.active();
      // Receive the state message.
      stats_.charge(opts_.net, w.state_bytes);
      std::size_t out_idx = 0;
      for (std::uint32_t task : w.tasks) {
        const exec::TaskMeta& meta = table.tasks[task];
        const std::int64_t span_start = tracing ? tb.now_ns() : 0;
        Stopwatch timer;
        for (std::size_t rep = 0; rep < opts_.compute_scale; ++rep) {
          // run_task accumulates, so its slots are re-zeroed per rep;
          // only the final rep's values are marshalled.
          for (std::uint32_t slot : meta.out_slots) {
            w.task_out[slot] = 0.0;
          }
          kernel_->run_task(index, task, t_, y_.data(), w.task_out.data());
        }
        task_seconds_[task] = timer.seconds();
        if (tracing) {
          tb.record("task/" + std::to_string(task), "task", span_start,
                    tb.now_ns() - span_start);
        }
        for (std::uint32_t slot : meta.out_slots) {
          w.results[out_idx++] = w.task_out[slot];
        }
      }
      tasks_run_metric_->add(w.tasks.size());
      // Send the results back.
      stats_.charge(opts_.net, w.result_bytes);
    }
    {
      std::lock_guard<std::mutex> lock(w.mutex);
      w.completed = last_done;
    }
    w.cv.notify_all();
  }
}

void WorkerPool::eval(double t, std::span<const double> y,
                      std::span<double> ydot) {
  OMX_REQUIRE(y.size() == kernel_->n_state(), "state size mismatch");
  OMX_REQUIRE(ydot.size() == kernel_->n_out(), "ydot size mismatch");

  obs::TraceBuffer& tb = obs::TraceBuffer::global();
  if (tb.active()) {
    tb.set_thread_name("supervisor");
  }
  obs::Span eval_span("rhs.eval", "runtime");

  t_ = t;
  std::copy(y.begin(), y.end(), y_.begin());
  ++generation_;

  {
    // Distribution phase: the supervisor serializes the sends (it is one
    // processor writing to the interconnect), then each worker pays its
    // receive cost concurrently.
    obs::Span scatter("scatter", "runtime");
    for (auto& w : workers_) {
      if (!w->tasks.empty()) {
        stats_.charge(opts_.net, w->state_bytes);  // supervisor send cost
      }
      {
        std::lock_guard<std::mutex> lock(w->mutex);
        w->requested = generation_;
      }
      w->cv.notify_all();
    }
  }

  std::fill(ydot.begin(), ydot.end(), 0.0);

  {
    // Collection phase: wait for workers in index order and accumulate
    // their contributions deterministically.
    obs::Span gather("gather", "runtime");
    const exec::TaskTable& table = kernel_->tasks();
    for (auto& w : workers_) {
      {
        std::unique_lock<std::mutex> lock(w->mutex);
        w->cv.wait(lock, [&] { return w->completed == generation_; });
      }
      if (w->tasks.empty()) {
        continue;
      }
      stats_.charge(opts_.net, w->result_bytes);  // supervisor receive cost
      std::size_t out_idx = 0;
      for (std::uint32_t task : w->tasks) {
        for (std::uint32_t slot : table.tasks[task].out_slots) {
          ydot[slot] += w->results[out_idx++];
        }
      }
    }
  }

  rhs_calls_metric_->add();
  ++evals_completed_;
}

}  // namespace omx::runtime
