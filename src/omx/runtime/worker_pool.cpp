#include "omx/runtime/worker_pool.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unordered_set>

#include "omx/obs/trace.hpp"
#include "omx/support/config.hpp"
#include "omx/support/timer.hpp"

namespace omx::runtime {

namespace {
// Fixed per-message envelope (header, tags) in bytes.
constexpr std::size_t kHeaderBytes = 16;
}  // namespace

bool WorkerPool::stealing_env_default() {
  return config::get_bool("OMX_POOL_STEALING", false);
}

double WorkerPool::sample_hz_env_default() {
  const double hz = config::get_double("OMX_OBS_SAMPLE_HZ", 0.0);
  return hz > 0.0 ? hz : 0.0;
}

WorkerPool::WorkerPool(const exec::RhsKernel& kernel, const Options& opts)
    : kernel_(&kernel), opts_(opts) {
  init();
}

WorkerPool::WorkerPool(const vm::Program& program, const Options& opts)
    : opts_(opts) {
  exec::InterpKernelOptions io;
  io.lanes = opts.num_workers;
  owned_ = exec::make_interp_kernel(program, nullptr, io);
  kernel_ = &owned_.kernel();
  init();
}

void WorkerPool::init() {
  OMX_REQUIRE(opts_.num_workers >= 1, "need at least one worker");
  OMX_REQUIRE(opts_.compute_scale >= 1, "compute_scale must be >= 1");
  OMX_REQUIRE(kernel_->has_tasks(),
              "WorkerPool needs a kernel with a task decomposition");
  OMX_REQUIRE(kernel_->num_lanes() >= opts_.num_workers,
              "kernel has fewer lanes than workers");
  obs::Registry& reg = obs::Registry::global();
  rhs_calls_metric_ = &reg.counter("rhs.calls");
  tasks_run_metric_ = &reg.counter("rhs.tasks_run");
  steals_metric_ = &reg.counter("pool.steals");
  steal_failures_metric_ = &reg.counter("pool.steal_failures");
  idle_metric_ = &reg.counter("pool.idle_nanos");
  // Steal latency spans lock contention (~100 ns) up to a whole task on a
  // loaded machine.
  steal_latency_metric_ = &reg.histogram(
      "pool.steal_latency_seconds", obs::log_spaced_bounds(1e-7, 1e-2));
  task_seconds_metric_ = &reg.histogram(
      "pool.task_seconds", obs::log_spaced_bounds(1e-7, 1.0));

  y_.resize(kernel_->n_state(), 0.0);
  const exec::TaskTable& table = kernel_->tasks();
  task_seconds_.assign(table.size(), 0.0);
  task_result_offset_.resize(table.size() + 1);
  std::size_t offset = 0;
  for (std::size_t t = 0; t < table.size(); ++t) {
    task_result_offset_[t] = offset;
    offset += table.tasks[t].out_slots.size();
  }
  task_result_offset_[table.size()] = offset;
  task_results_.assign(offset, 0.0);

  workers_.reserve(opts_.num_workers);
  for (std::size_t w = 0; w < opts_.num_workers; ++w) {
    auto ws = std::make_unique<WorkerState>();
    ws->task_out.assign(kernel_->n_out(), 0.0);
    ws->deque.reserve(table.size());
    workers_.push_back(std::move(ws));
  }
  // Default schedule: round-robin, replaced by the caller via
  // set_schedule() (LPT) in normal operation.
  sched::Schedule rr(opts_.num_workers);
  for (std::size_t i = 0; i < kernel_->num_tasks(); ++i) {
    rr[i % opts_.num_workers].push_back(static_cast<std::uint32_t>(i));
  }
  set_schedule(rr);

  for (std::size_t i = 0; i < workers_.size(); ++i) {
    WorkerState& w_ref = *workers_[i];
    workers_[i]->thread =
        std::thread([this, &w_ref, i] { worker_main(w_ref, i); });
  }
  if (opts_.sample_hz > 0.0) {
    sampler_thread_ = std::thread([this] { sampler_main(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(start_mutex_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (auto& w : workers_) {
    if (w->thread.joinable()) {
      w->thread.join();
    }
  }
  if (sampler_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(sampler_mutex_);
      sampler_shutdown_ = true;
    }
    sampler_cv_.notify_all();
    sampler_thread_.join();
  }
}

void WorkerPool::sampler_main() {
  obs::TraceBuffer& tb = obs::TraceBuffer::global();
  tb.set_thread_name("util-sampler");
  const auto period = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(1.0 / opts_.sample_hz));
  std::unique_lock<std::mutex> lock(sampler_mutex_);
  while (!sampler_shutdown_) {
    // wait_for rather than a plain sleep so the destructor returns in at
    // most one shutdown-check latency, not one full period.
    sampler_cv_.wait_for(lock, period, [&] { return sampler_shutdown_; });
    if (sampler_shutdown_ || !tb.active()) {
      continue;
    }
    const std::int64_t now = tb.now_ns();
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      const bool busy =
          workers_[i]->busy.load(std::memory_order_relaxed);
      tb.record_counter("util/worker-" + std::to_string(i), now,
                        busy ? 1.0 : 0.0);
    }
  }
}

void WorkerPool::set_schedule(const sched::Schedule& schedule) {
  OMX_REQUIRE(schedule.size() == workers_.size(),
              "schedule/worker count mismatch");
  const exec::TaskTable& table = kernel_->tasks();
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    workers_[w]->tasks = schedule[w];
    std::size_t outputs = 0;
    for (std::uint32_t t : schedule[w]) {
      OMX_REQUIRE(t < table.size(), "task index out of range");
      outputs += table.tasks[t].out_slots.size();
    }
    workers_[w]->result_bytes = kHeaderBytes + 16 * outputs;
  }
  // A task the new schedule omits must contribute zero, not a stale
  // value from an earlier schedule.
  std::fill(task_results_.begin(), task_results_.end(), 0.0);
  recompute_message_sizes();
}

void WorkerPool::recompute_message_sizes() {
  const exec::TaskTable& table = kernel_->tasks();
  for (auto& w : workers_) {
    std::size_t payload_states = kernel_->n_state();
    // Stealing needs the full broadcast: any worker may execute any task
    // (the paper's own argument for sending everything, §3.2.3).
    if (opts_.communication_analysis && !opts_.stealing) {
      std::unordered_set<std::uint32_t> needed;
      for (std::uint32_t t : w->tasks) {
        for (std::uint32_t s : table.tasks[t].in_states) {
          needed.insert(s);
        }
      }
      payload_states = needed.size();
    }
    // t plus the states; results carry (slot, value) pairs.
    w->state_bytes = kHeaderBytes + 8 * (payload_states + 1);
  }
}

void WorkerPool::execute_task(WorkerState& w, std::size_t index,
                              std::uint32_t task) {
  obs::TraceBuffer& tb = obs::TraceBuffer::global();
  const exec::TaskMeta& meta = kernel_->tasks().tasks[task];
  const bool tracing = tb.active();
  const std::int64_t span_start = tracing ? tb.now_ns() : 0;
  Stopwatch timer;
  for (std::size_t rep = 0; rep < opts_.compute_scale; ++rep) {
    // run_task accumulates, so its slots are re-zeroed per rep; only the
    // final rep's values are kept.
    for (std::uint32_t slot : meta.out_slots) {
      w.task_out[slot] = 0.0;
    }
    kernel_->run_task(index, task, t_, y_.data(), w.task_out.data());
  }
  task_seconds_[task] = timer.seconds();
  task_seconds_metric_->observe(task_seconds_[task]);
  if (tracing) {
    tb.record("task/" + std::to_string(task), "task", span_start,
              tb.now_ns() - span_start);
  }
  double* dst = task_results_.data() + task_result_offset_[task];
  for (std::uint32_t slot : meta.out_slots) {
    *dst++ = w.task_out[slot];
  }
  w.outputs_produced += meta.out_slots.size();
}

bool WorkerPool::steal_task(std::size_t thief, std::uint32_t& task) {
  // Victim: the most-loaded other worker by (racy) deque size.
  std::size_t victim = thief;
  std::size_t victim_size = 0;
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    if (i == thief) {
      continue;
    }
    const std::size_t s = workers_[i]->deque.size_estimate();
    if (s > victim_size) {
      victim_size = s;
      victim = i;
    }
  }
  if (victim == thief) {
    return false;  // everything is empty or in flight
  }
  if (workers_[victim]->deque.steal(task)) {
    return true;
  }
  steal_failures_metric_->add();
  return false;
}

void WorkerPool::run_epoch(WorkerState& w, std::size_t index) {
  std::size_t executed = 0;
  w.outputs_produced = 0;

  if (!opts_.stealing) {
    // Static §3.2.3 mode: drain the fixed assignment, nothing else.
    if (w.tasks.empty()) {
      return;
    }
    stats_.charge(opts_.net, w.state_bytes);  // receive the state message
    for (std::uint32_t task : w.tasks) {
      if (abort_.load(std::memory_order_acquire)) {
        break;
      }
      execute_task(w, index, task);
      ++executed;
    }
    if (executed > 0) {
      tasks_run_metric_->add(executed);
      stats_.charge(opts_.net, w.result_bytes);  // send the results back
    }
    return;
  }

  // Stealing mode: drain the own deque, then steal until no task remains
  // anywhere. Every worker participates (and pays the full-state receive)
  // even with an empty seed — it may steal.
  stats_.charge(opts_.net, w.state_bytes);
  std::int64_t idle_ns = 0;
  std::uint64_t steals = 0;
  bool hunting = false;  // true while looking for a task to steal
  Stopwatch hunt;
  while (!abort_.load(std::memory_order_acquire)) {
    std::uint32_t task = 0;
    if (w.deque.pop(task)) {
      execute_task(w, index, task);
      ++executed;
      tasks_remaining_.fetch_sub(1, std::memory_order_acq_rel);
      continue;
    }
    if (tasks_remaining_.load(std::memory_order_acquire) == 0) {
      break;  // epoch complete
    }
    if (!hunting) {
      hunting = true;
      hunt.reset();
    }
    if (steal_task(index, task)) {
      steal_latency_metric_->observe(hunt.seconds());
      hunting = false;
      ++steals;
      execute_task(w, index, task);
      ++executed;
      tasks_remaining_.fetch_sub(1, std::memory_order_acq_rel);
      continue;
    }
    // Nothing stealable, but tasks are still in flight elsewhere: yield
    // until the stragglers finish (or new steal opportunities appear —
    // they cannot, tasks are only seeded between epochs, so this wait is
    // bounded by the longest in-flight task).
    Stopwatch idle;
    std::this_thread::yield();
    idle_ns += idle.nanos();
  }
  if (executed > 0) {
    tasks_run_metric_->add(executed);
  }
  if (steals > 0) {
    steals_metric_->add(steals);
    tasks_stolen_.fetch_add(steals, std::memory_order_relaxed);
  }
  if (idle_ns > 0) {
    idle_metric_->add(static_cast<std::uint64_t>(idle_ns));
  }
  // The response message doubles as the completion report, so it is sent
  // even when this worker executed nothing — message counts stay
  // deterministic under dynamic scheduling.
  stats_.charge(opts_.net, kHeaderBytes + 16 * w.outputs_produced);
}

void WorkerPool::worker_main(WorkerState& w, std::size_t index) {
  obs::TraceBuffer& tb = obs::TraceBuffer::global();
  tb.set_thread_name("worker/" + std::to_string(index));
  std::uint64_t last_epoch = 0;
  while (true) {
    {
      const std::int64_t idle_start = tb.active() ? tb.now_ns() : -1;
      std::unique_lock<std::mutex> lock(start_mutex_);
      start_cv_.wait(lock,
                     [&] { return epoch_ > last_epoch || shutdown_; });
      if (idle_start >= 0 && tb.active()) {
        tb.record("idle", "worker", idle_start, tb.now_ns() - idle_start);
      }
      if (shutdown_) {
        return;
      }
      last_epoch = epoch_;
    }
    std::exception_ptr error;
    w.busy.store(true, std::memory_order_relaxed);
    try {
      run_epoch(w, index);
    } catch (...) {
      // Abort the epoch: peers stop claiming tasks and park, and the
      // supervisor re-throws after the finish handshake.
      error = std::current_exception();
      abort_.store(true, std::memory_order_release);
    }
    w.busy.store(false, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(done_mutex_);
      if (error != nullptr && first_error_ == nullptr) {
        first_error_ = error;
      }
      ++workers_done_;
    }
    done_cv_.notify_all();
  }
}

void WorkerPool::eval(double t, std::span<const double> y,
                      std::span<double> ydot) {
  OMX_REQUIRE(y.size() == kernel_->n_state(), "state size mismatch");
  OMX_REQUIRE(ydot.size() == kernel_->n_out(), "ydot size mismatch");

  obs::TraceBuffer& tb = obs::TraceBuffer::global();
  if (tb.active()) {
    tb.set_thread_name("supervisor");
  }
  obs::Span eval_span("rhs.eval", "runtime");

  t_ = t;
  std::copy(y.begin(), y.end(), y_.begin());
  ++generation_;

  {
    // Distribution phase: the supervisor serializes the sends (it is one
    // processor writing to the interconnect), then each worker pays its
    // receive cost concurrently. All epoch inputs are published by the
    // start_mutex_ acquisition below.
    obs::Span scatter("scatter", "runtime");
    std::size_t total_tasks = 0;
    for (auto& w : workers_) {
      if (opts_.stealing) {
        w->deque.seed(w->tasks);
        total_tasks += w->tasks.size();
        stats_.charge(opts_.net, w->state_bytes);  // full broadcast
      } else if (!w->tasks.empty()) {
        stats_.charge(opts_.net, w->state_bytes);  // supervisor send cost
      }
    }
    tasks_remaining_.store(static_cast<std::int64_t>(total_tasks),
                           std::memory_order_relaxed);
    abort_.store(false, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(done_mutex_);
      workers_done_ = 0;
    }
    {
      std::lock_guard<std::mutex> lock(start_mutex_);
      epoch_ = generation_;
    }
    start_cv_.notify_all();
  }

  // Collection phase: wait for every worker, then accumulate the
  // per-task results in task-id order — deterministic regardless of
  // which worker executed which task.
  std::exception_ptr error;
  {
    obs::Span gather("gather", "runtime");
    std::unique_lock<std::mutex> lock(done_mutex_);
    done_cv_.wait(lock, [&] { return workers_done_ == workers_.size(); });
    error = first_error_;
    first_error_ = nullptr;
  }
  if (error != nullptr) {
    std::rethrow_exception(error);
  }

  for (auto& w : workers_) {
    if (opts_.stealing) {
      // supervisor receive cost, mirroring the worker's send
      stats_.charge(opts_.net, kHeaderBytes + 16 * w->outputs_produced);
    } else if (!w->tasks.empty()) {
      stats_.charge(opts_.net, w->result_bytes);
    }
  }

  std::fill(ydot.begin(), ydot.end(), 0.0);
  const exec::TaskTable& table = kernel_->tasks();
  for (std::size_t task = 0; task < table.size(); ++task) {
    const double* src = task_results_.data() + task_result_offset_[task];
    for (std::uint32_t slot : table.tasks[task].out_slots) {
      ydot[slot] += *src++;
    }
  }

  rhs_calls_metric_->add();
  ++evals_completed_;
}

}  // namespace omx::runtime
