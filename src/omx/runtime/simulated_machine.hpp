// Discrete-event timing model of the supervisor/worker machine.
//
// The real-thread WorkerPool demonstrates functional parallel execution,
// but wall-clock speedup measurements require as many physical cores as
// simulated processors — which neither this host nor any single modern
// box resembling two different 1995 MIMD machines can provide. This
// simulator instead advances *virtual time* through the same protocol the
// WorkerPool executes:
//
//   1. the supervisor serializes one state message per busy worker
//      (send cost each),
//   2. each worker receives (propagation cost), computes its assigned
//      tasks back to back, and sends its result message,
//   3. the supervisor drains result messages one at a time (receive cost),
//      in arrival order, but never concurrently.
//
// Processor speed is calibrated with `per_op_seconds` (a 1995 superscalar
// running an equation-evaluation mix at a few MFLOPS); `physical`
// processors bound the usable concurrency — extra workers time-share,
// reproducing the "knee" the paper attributes to the SPARC Center's
// time-sharing OS (§4).
#pragma once

#include "omx/runtime/interconnect.hpp"
#include "omx/sched/lpt.hpp"
#include "omx/vm/program.hpp"

namespace omx::runtime {

struct MachineModel {
  Interconnect net;
  /// Seconds per tape instruction (processor speed calibration).
  double per_op_seconds = 2e-7;
  /// Physically available processors (supervisor + workers time-share
  /// when exceeded). 0 = unlimited.
  std::size_t physical = 0;

  /// SPARC Center 2000: 8 processors, shared-memory latency.
  static MachineModel sparc_center_2000();
  /// Parsytec GC/PowerPlus: 64 nodes, link latency 140 us.
  static MachineModel parsytec_gcpp();
};

struct SimTiming {
  double total_seconds = 0.0;    // one RHS evaluation, start to done
  double compute_seconds = 0.0;  // sum over workers (not elapsed)
  double comm_seconds = 0.0;     // sum of all message costs
  std::size_t messages = 0;
  std::size_t bytes = 0;

  double calls_per_second() const {
    return total_seconds > 0.0 ? 1.0 / total_seconds : 0.0;
  }
};

class SimulatedMachine {
 public:
  SimulatedMachine(const vm::Program& program, const MachineModel& model,
                   bool communication_analysis = false);

  /// Virtual-time cost of one parallel RHS evaluation under `schedule`
  /// (one entry per worker; the supervisor is an additional processor).
  SimTiming time_parallel_call(const sched::Schedule& schedule) const;

  /// Serial baseline: everything on the supervisor, no messages.
  SimTiming time_serial_call() const;

  /// Per-task virtual cost (seconds) — LPT weights.
  std::vector<double> task_costs() const;

  const MachineModel& model() const { return model_; }

 private:
  const vm::Program& program_;
  MachineModel model_;
  bool comm_analysis_;
};

}  // namespace omx::runtime
