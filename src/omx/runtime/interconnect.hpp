// Simulated interconnect (§3.2.2, §4).
//
// The paper measures on two 1995 machines characterized by their 1-byte
// message propagation time:
//   * SPARC Center 2000 (shared-memory MIMD):        ~4 us
//   * Parsytec GC/PowerPlus (distributed-memory):  ~140 us
// Neither machine exists here, so the runtime charges each message an
// occupancy cost latency + bytes * per_byte on both the sending and the
// receiving side (store-and-forward model), realized by spinning the
// respective thread. This reproduces the compute/communication ratio that
// drives Figure 12's curve shapes.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace omx::runtime {

struct Interconnect {
  std::string name;
  double latency_s = 0.0;   // per-message propagation/setup cost
  double per_byte_s = 0.0;  // inverse bandwidth

  /// Cost of one message of `bytes` payload, per side.
  double message_cost(std::size_t bytes) const {
    return latency_s + static_cast<double>(bytes) * per_byte_s;
  }

  /// Shared-memory SPARC Center 2000: 4 us latency, ~100 MB/s transfer
  /// (in-memory copy between processors).
  static Interconnect sparc_center_2000();

  /// Distributed-memory Parsytec GC/PowerPlus: 140 us latency, ~10 MB/s
  /// effective link bandwidth through the transputer routing network.
  static Interconnect parsytec_gcpp();

  /// Idealized zero-cost interconnect (upper-bound ablation).
  static Interconnect ideal();
};

/// Message accounting for one run.
struct MessageStats {
  std::atomic<std::uint64_t> messages{0};
  std::atomic<std::uint64_t> bytes{0};
  std::atomic<std::uint64_t> comm_nanos{0};  // total charged occupancy

  void reset();
  void charge(const Interconnect& net, std::size_t payload_bytes);
};

}  // namespace omx::runtime
