#include "omx/runtime/simulated_machine.hpp"

#include <algorithm>
#include <unordered_set>

#include "omx/support/diagnostics.hpp"

namespace omx::runtime {

namespace {
constexpr std::size_t kHeaderBytes = 16;
}

// Processor-speed calibration: the paper's 2-D bearing RHS takes ~10 ms
// per serial call (Figure 12 starts near 100 calls/s at one processor).
// Our generated tape for the 10-roller bearing is ~3.8k instructions, so
// ~2.7 us/op reproduces the paper's RHS-call granularity — the quantity
// that determines the compute/communication balance and hence the curve
// shapes. (The authors' model was several times larger per equation; see
// EXPERIMENTS.md.)
namespace {
constexpr double kPerOp1995 = 2.7e-6;
}

MachineModel MachineModel::sparc_center_2000() {
  return MachineModel{Interconnect::sparc_center_2000(), kPerOp1995, 8};
}

MachineModel MachineModel::parsytec_gcpp() {
  return MachineModel{Interconnect::parsytec_gcpp(), kPerOp1995, 64};
}

SimulatedMachine::SimulatedMachine(const vm::Program& program,
                                   const MachineModel& model,
                                   bool communication_analysis)
    : program_(program),
      model_(model),
      comm_analysis_(communication_analysis) {}

std::vector<double> SimulatedMachine::task_costs() const {
  std::vector<double> costs;
  costs.reserve(program_.tasks.size());
  for (const vm::TaskCode& t : program_.tasks) {
    costs.push_back(static_cast<double>(t.est_ops) * model_.per_op_seconds);
  }
  return costs;
}

SimTiming SimulatedMachine::time_serial_call() const {
  SimTiming sim;
  sim.compute_seconds =
      static_cast<double>(program_.total_ops()) * model_.per_op_seconds;
  sim.total_seconds = sim.compute_seconds;
  return sim;
}

SimTiming SimulatedMachine::time_parallel_call(
    const sched::Schedule& schedule) const {
  SimTiming sim;
  const std::size_t workers = schedule.size();
  OMX_REQUIRE(workers >= 1, "need at least one worker");

  // Time-sharing slowdown: supervisor + workers contend for `physical`
  // processors. Communication costs are I/O-bound and not inflated.
  double share = 1.0;
  if (model_.physical > 0 && workers + 1 > model_.physical) {
    share = static_cast<double>(workers + 1) /
            static_cast<double>(model_.physical);
  }

  // Message sizes per worker.
  std::vector<double> state_msg(workers, 0.0), result_msg(workers, 0.0);
  std::vector<double> compute(workers, 0.0);
  for (std::size_t w = 0; w < workers; ++w) {
    if (schedule[w].empty()) {
      continue;
    }
    std::size_t payload_states = program_.n_state;
    if (comm_analysis_) {
      std::unordered_set<std::uint32_t> needed;
      for (std::uint32_t t : schedule[w]) {
        for (std::uint32_t s : program_.tasks[t].in_states) {
          needed.insert(s);
        }
      }
      payload_states = needed.size();
    }
    std::size_t outputs = 0;
    double ops = 0.0;
    for (std::uint32_t t : schedule[w]) {
      OMX_REQUIRE(t < program_.tasks.size(), "task index out of range");
      outputs += program_.tasks[t].outputs.size();
      ops += static_cast<double>(program_.tasks[t].est_ops);
    }
    const std::size_t sbytes = kHeaderBytes + 8 * (payload_states + 1);
    const std::size_t rbytes = kHeaderBytes + 16 * outputs;
    state_msg[w] = model_.net.message_cost(sbytes);
    result_msg[w] = model_.net.message_cost(rbytes);
    compute[w] = ops * model_.per_op_seconds * share;
    sim.messages += 2;
    sim.bytes += sbytes + rbytes;
    sim.comm_seconds += state_msg[w] + result_msg[w];
    sim.compute_seconds += compute[w];
  }

  // Phase 1+2: supervisor serializes sends; worker w's result arrives at
  //   arrival_w = send_done_w + propagation + compute + send(result).
  std::vector<double> arrival(workers, 0.0);
  double send_clock = 0.0;
  for (std::size_t w = 0; w < workers; ++w) {
    if (schedule[w].empty()) {
      continue;
    }
    send_clock += state_msg[w];  // supervisor occupancy (serialized)
    arrival[w] = send_clock + state_msg[w]  // propagation to the worker
                 + compute[w] + result_msg[w];
  }

  // Phase 3: the supervisor drains results one at a time in arrival order.
  std::vector<std::size_t> order;
  for (std::size_t w = 0; w < workers; ++w) {
    if (!schedule[w].empty()) {
      order.push_back(w);
    }
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return arrival[a] < arrival[b];
  });
  double clock = send_clock;
  for (std::size_t w : order) {
    clock = std::max(clock, arrival[w]) + result_msg[w];
  }
  sim.total_seconds = clock;
  return sim;
}

}  // namespace omx::runtime
