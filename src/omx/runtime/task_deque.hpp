// Chase-Lev work-stealing deque (Chase & Lev, "Dynamic Circular
// Work-Stealing Deques", SPAA 2005), specialized for the worker pool's
// epoch discipline:
//
//  * Fixed capacity. The deque is (re)seeded by the supervisor between
//    epochs while every worker is parked behind the pool's start/finish
//    handshake, and only drained (pop/steal) while an epoch runs, so the
//    circular-growth path of the original algorithm is unnecessary and
//    indices never wrap.
//  * seq_cst atomics instead of standalone fences. ThreadSanitizer does
//    not model std::atomic_thread_fence, so the classic fence-based C11
//    formulation produces false race reports; sequentially consistent
//    operations are strictly stronger, keep the pool TSan-clean, and cost
//    nothing measurable at the task granularities scheduled here.
//
// The owner pops newest-first from the bottom; thieves steal oldest-first
// from the top. Seeded with an LPT assignment (descending predicted
// cost), a thief therefore migrates the largest remaining task — the most
// rebalancing per steal.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>

namespace omx::runtime {

class TaskDeque {
 public:
  TaskDeque() = default;
  TaskDeque(const TaskDeque&) = delete;
  TaskDeque& operator=(const TaskDeque&) = delete;

  /// Supervisor-only, workers parked: ensures room for `cap` entries.
  void reserve(std::size_t cap) {
    if (cap > cap_) {
      buf_.reset(new std::atomic<std::uint32_t>[cap]);
      cap_ = cap;
    }
  }

  /// Supervisor-only, workers parked: refills the deque. tasks[0] becomes
  /// the oldest entry (stolen first); tasks.back() is popped first by the
  /// owner. Requires reserve(tasks.size()) to have happened.
  void seed(std::span<const std::uint32_t> tasks) {
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      buf_[i].store(tasks[i], std::memory_order_relaxed);
    }
    top_.store(0, std::memory_order_relaxed);
    bottom_.store(static_cast<std::int64_t>(tasks.size()),
                  std::memory_order_relaxed);
  }

  /// Owner-only: removes the newest entry. Returns false when empty.
  bool pop(std::uint32_t& out) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_seq_cst);  // publish the claim
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {
      // Empty (or a thief got the last entry): undo the claim.
      bottom_.store(b + 1, std::memory_order_relaxed);
      return false;
    }
    out = buf_[b].load(std::memory_order_relaxed);
    if (t == b) {
      // Last entry: race the thieves for it via the CAS on top.
      const bool won = top_.compare_exchange_strong(
          t, t + 1, std::memory_order_seq_cst, std::memory_order_seq_cst);
      bottom_.store(b + 1, std::memory_order_relaxed);
      return won;
    }
    return true;
  }

  /// Any thread: removes the oldest entry. Returns false when empty or
  /// when the CAS loses a race (the caller retries or picks a new
  /// victim).
  bool steal(std::uint32_t& out) {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) {
      return false;
    }
    // Read the entry before claiming it; a failed CAS discards the value.
    out = buf_[t].load(std::memory_order_relaxed);
    return top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_seq_cst);
  }

  /// Racy size approximation for victim selection only.
  std::size_t size_estimate() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

 private:
  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::unique_ptr<std::atomic<std::uint32_t>[]> buf_;
  std::size_t cap_ = 0;
};

}  // namespace omx::runtime
