#include "omx/runtime/interconnect.hpp"

#include "omx/obs/registry.hpp"
#include "omx/support/timer.hpp"

namespace omx::runtime {

Interconnect Interconnect::sparc_center_2000() {
  return Interconnect{"SparcCenter2000 (shared memory)", 4e-6, 1e-8};
}

Interconnect Interconnect::parsytec_gcpp() {
  // 140 us message latency; ~5 MB/s effective store-and-forward bandwidth
  // through the T805 routing network.
  return Interconnect{"Parsytec GC/PP (distributed memory)", 140e-6, 2e-7};
}

Interconnect Interconnect::ideal() {
  return Interconnect{"ideal (zero cost)", 0.0, 0.0};
}

void MessageStats::reset() {
  messages.store(0, std::memory_order_relaxed);
  bytes.store(0, std::memory_order_relaxed);
  comm_nanos.store(0, std::memory_order_relaxed);
}

void MessageStats::charge(const Interconnect& net,
                          std::size_t payload_bytes) {
  // Mirrored into the process-wide registry so traces/summaries see the
  // totals across every pool and interconnect in the process.
  static obs::Counter& net_messages =
      obs::Registry::global().counter("net.messages");
  static obs::Counter& net_bytes =
      obs::Registry::global().counter("net.bytes");
  const double cost = net.message_cost(payload_bytes);
  messages.fetch_add(1, std::memory_order_relaxed);
  bytes.fetch_add(payload_bytes, std::memory_order_relaxed);
  comm_nanos.fetch_add(static_cast<std::uint64_t>(cost * 1e9),
                       std::memory_order_relaxed);
  net_messages.add();
  net_bytes.add(payload_bytes);
  spin_for(cost);
}

}  // namespace omx::runtime
