// Admission control for the service daemon (svc/server.hpp): a small
// counting gate that decides, per submitted job, whether it runs now,
// waits in the bounded queue, or is rejected with a retry hint.
//
// The policy is deliberately simple and lossless-first: up to
// `max_active` jobs execute concurrently (one ensemble solve each, so
// this bounds solver threads at max_active * job workers); up to
// `queue_cap` more wait FIFO; beyond that the daemon answers RETRY_AFTER
// instead of accepting unbounded work — backpressure reaches the client
// as a protocol message, not as a growing queue and an eventual OOM.
#pragma once

#include <cstddef>
#include <mutex>

namespace omx::runtime {

enum class Admission {
  kRun,     // an executor slot is free; start immediately
  kQueue,   // all slots busy; job accepted into the bounded queue
  kReject,  // queue full; client should retry after a backoff
};

class AdmissionGate {
 public:
  AdmissionGate(std::size_t max_active, std::size_t queue_cap)
      : max_active_(max_active), queue_cap_(queue_cap) {}

  /// Decides the fate of one incoming job and reserves its slot (kRun
  /// bumps active, kQueue bumps queued). kReject reserves nothing.
  Admission admit() {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (active_ < max_active_) {
      ++active_;
      return Admission::kRun;
    }
    if (queued_ < queue_cap_) {
      ++queued_;
      return Admission::kQueue;
    }
    return Admission::kReject;
  }

  /// A queued job was promoted to an executor slot.
  void on_start() {
    const std::lock_guard<std::mutex> lock(mutex_);
    --queued_;
    ++active_;
  }

  /// A running job finished (successfully, with an error, or cancelled).
  void on_finish() {
    const std::lock_guard<std::mutex> lock(mutex_);
    --active_;
  }

  /// A queued job was abandoned before it ever started (client gone).
  void on_abandon() {
    const std::lock_guard<std::mutex> lock(mutex_);
    --queued_;
  }

  std::size_t active() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return active_;
  }
  std::size_t queued() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return queued_;
  }

 private:
  mutable std::mutex mutex_;
  std::size_t max_active_;
  std::size_t queue_cap_;
  std::size_t active_ = 0;
  std::size_t queued_ = 0;
};

}  // namespace omx::runtime
