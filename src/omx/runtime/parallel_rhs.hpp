// ParallelRhs: the complete parallelized RHS function handed to the ODE
// solver — supervisor/worker execution plus semi-dynamic LPT scheduling,
// with the bookkeeping the paper reports (RHS calls/s, scheduling
// overhead, message statistics).
#pragma once

#include <memory>

#include "omx/runtime/worker_pool.hpp"
#include "omx/sched/semidynamic.hpp"

namespace omx::runtime {

struct ParallelRhsOptions {
  WorkerPool::Options pool;
  sched::SemiDynamicOptions sched;
  /// false = static LPT from instruction counts only, no re-scheduling.
  bool semi_dynamic = true;
  /// 0 = parallel execution via the pool; >0 is unused (reserved).
  int reserved = 0;
};

class ParallelRhs {
 public:
  /// `program` must outlive this object.
  ParallelRhs(const vm::Program& program, const ParallelRhsOptions& opts);

  std::size_t n() const { return program_.n_state; }

  /// Evaluates ydot = f(t, y); usable as an ode::RhsFn.
  void eval(double t, std::span<const double> y, std::span<double> ydot);

  // -- bookkeeping -----------------------------------------------------------
  std::uint64_t rhs_calls() const { return rhs_calls_; }
  /// Total wall seconds spent inside eval().
  double eval_seconds() const { return eval_seconds_; }
  /// Wall seconds spent measuring + rebuilding schedules (the <1% claim).
  double scheduling_seconds() const { return scheduling_seconds_; }
  std::size_t num_reschedules() const { return sched_->num_reschedules(); }
  MessageStats& stats() { return pool_->stats(); }

  /// Measured RHS throughput: calls per second so far.
  double calls_per_second() const {
    return eval_seconds_ > 0.0 ? static_cast<double>(rhs_calls_) /
                                     eval_seconds_
                               : 0.0;
  }

  void reset_counters();

 private:
  const vm::Program& program_;
  ParallelRhsOptions opts_;
  std::unique_ptr<WorkerPool> pool_;
  std::unique_ptr<sched::SemiDynamicLpt> sched_;
  std::uint64_t rhs_calls_ = 0;
  double eval_seconds_ = 0.0;
  double scheduling_seconds_ = 0.0;
};

/// Serial counterpart with the same bookkeeping interface: the 1-processor
/// baseline of Figure 12 (solver and RHS on the same processor, no
/// messages).
class SerialRhs {
 public:
  SerialRhs(const vm::Program& program, std::size_t compute_scale = 1);

  std::size_t n() const { return program_.n_state; }
  void eval(double t, std::span<const double> y, std::span<double> ydot);

  std::uint64_t rhs_calls() const { return rhs_calls_; }
  double eval_seconds() const { return eval_seconds_; }
  double calls_per_second() const {
    return eval_seconds_ > 0.0 ? static_cast<double>(rhs_calls_) /
                                     eval_seconds_
                               : 0.0;
  }
  void reset_counters();

 private:
  const vm::Program& program_;
  std::size_t compute_scale_;
  vm::Workspace workspace_;
  std::uint64_t rhs_calls_ = 0;
  double eval_seconds_ = 0.0;
};

}  // namespace omx::runtime
