// ParallelRhs: the complete parallelized RHS function handed to the ODE
// solver — supervisor/worker execution plus semi-dynamic LPT scheduling,
// with the bookkeeping the paper reports (RHS calls/s, scheduling
// overhead, message statistics).
//
// Both classes are callables with the ode::RhsFn signature, so a
// long-lived instance binds directly into an ode::Problem:
//   runtime::ParallelRhs rhs(kernel, opts);
//   prob.rhs = ode::RhsFn(rhs);
#pragma once

#include <memory>

#include "omx/runtime/worker_pool.hpp"
#include "omx/sched/semidynamic.hpp"

namespace omx::runtime {

struct ParallelRhsOptions {
  /// Pool options, including `pool.stealing`: with stealing on, the
  /// semi-dynamic LPT schedule is the *seed* for each call's Chase-Lev
  /// deques, and idle workers rebalance within the call.
  WorkerPool::Options pool;
  sched::SemiDynamicOptions sched;
  /// false = static LPT from the kernel's cost estimates only, no
  /// re-scheduling.
  bool semi_dynamic = true;
};

class ParallelRhs {
 public:
  /// `kernel` must have a task decomposition and outlive this object.
  ParallelRhs(const exec::RhsKernel& kernel,
              const ParallelRhsOptions& opts);
  /// Legacy entry point: wraps `program` (which must outlive this
  /// object) in an interpreter kernel.
  ParallelRhs(const vm::Program& program, const ParallelRhsOptions& opts);

  std::size_t n() const { return pool_->kernel().n_state(); }

  /// Evaluates ydot = f(t, y); usable as an ode::RhsFn.
  void eval(double t, std::span<const double> y, std::span<double> ydot);
  void operator()(double t, std::span<const double> y,
                  std::span<double> ydot) {
    eval(t, y, ydot);
  }

  // -- bookkeeping -----------------------------------------------------------
  std::uint64_t rhs_calls() const { return rhs_calls_; }
  /// Total wall seconds spent inside eval().
  double eval_seconds() const { return eval_seconds_; }
  /// Wall seconds spent measuring + rebuilding schedules (the <1% claim).
  double scheduling_seconds() const { return scheduling_seconds_; }
  std::size_t num_reschedules() const { return sched_->num_reschedules(); }
  /// Tasks the pool's workers obtained by stealing (0 in static mode).
  std::uint64_t tasks_stolen() const { return pool_->tasks_stolen(); }
  MessageStats& stats() { return pool_->stats(); }

  /// Measured RHS throughput: calls per second so far.
  double calls_per_second() const {
    return eval_seconds_ > 0.0 ? static_cast<double>(rhs_calls_) /
                                     eval_seconds_
                               : 0.0;
  }

  void reset_counters();

 private:
  void init_scheduler();

  ParallelRhsOptions opts_;
  std::unique_ptr<WorkerPool> pool_;
  std::unique_ptr<sched::SemiDynamicLpt> sched_;
  std::uint64_t rhs_calls_ = 0;
  double eval_seconds_ = 0.0;
  double scheduling_seconds_ = 0.0;
};

/// Serial counterpart with the same bookkeeping interface: the 1-processor
/// baseline of Figure 12 (solver and RHS on the same processor, no
/// messages).
class SerialRhs {
 public:
  /// `kernel` must outlive this object.
  explicit SerialRhs(const exec::RhsKernel& kernel,
                     std::size_t compute_scale = 1);
  /// Legacy entry point over the tape interpreter; `program` must
  /// outlive this object.
  explicit SerialRhs(const vm::Program& program,
                     std::size_t compute_scale = 1);

  std::size_t n() const { return kernel_->n_state(); }
  void eval(double t, std::span<const double> y, std::span<double> ydot);
  void operator()(double t, std::span<const double> y,
                  std::span<double> ydot) {
    eval(t, y, ydot);
  }

  std::uint64_t rhs_calls() const { return rhs_calls_; }
  double eval_seconds() const { return eval_seconds_; }
  double calls_per_second() const {
    return eval_seconds_ > 0.0 ? static_cast<double>(rhs_calls_) /
                                     eval_seconds_
                               : 0.0;
  }
  void reset_counters();

 private:
  exec::KernelInstance owned_;  // legacy-constructor keep-alive
  const exec::RhsKernel* kernel_ = nullptr;
  std::size_t compute_scale_;
  std::uint64_t rhs_calls_ = 0;
  double eval_seconds_ = 0.0;
};

}  // namespace omx::runtime
