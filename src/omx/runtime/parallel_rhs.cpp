#include "omx/runtime/parallel_rhs.hpp"

#include <algorithm>

#include "omx/obs/registry.hpp"
#include "omx/obs/trace.hpp"
#include "omx/support/timer.hpp"

namespace omx::runtime {

ParallelRhs::ParallelRhs(const exec::RhsKernel& kernel,
                         const ParallelRhsOptions& opts)
    : opts_(opts) {
  pool_ = std::make_unique<WorkerPool>(kernel, opts_.pool);
  init_scheduler();
}

ParallelRhs::ParallelRhs(const vm::Program& program,
                         const ParallelRhsOptions& opts)
    : opts_(opts) {
  pool_ = std::make_unique<WorkerPool>(program, opts_.pool);
  init_scheduler();
}

void ParallelRhs::init_scheduler() {
  const exec::TaskTable& table = pool_->kernel().tasks();
  std::vector<double> static_weights;
  static_weights.reserve(table.size());
  for (const exec::TaskMeta& t : table.tasks) {
    static_weights.push_back(t.est_cost);
  }
  sched_ = std::make_unique<sched::SemiDynamicLpt>(
      std::move(static_weights), opts_.pool.num_workers, opts_.sched);
  pool_->set_schedule(sched_->schedule());
}

void ParallelRhs::eval(double t, std::span<const double> y,
                       std::span<double> ydot) {
  // Buckets span 10 us .. 1 s: the paper's headline granularity is
  // ~10 ms/call, and microbenchmark-sized systems land near the bottom.
  static obs::Histogram& eval_hist = obs::Registry::global().histogram(
      "rhs.eval_seconds", obs::log_spaced_bounds(1e-5, 1.0));
  Stopwatch total;
  pool_->eval(t, y, ydot);
  if (opts_.semi_dynamic) {
    Stopwatch sched_time;
    obs::Span span("sched.record", "sched");
    const bool rebuilt = sched_->record(pool_->last_task_seconds());
    if (rebuilt) {
      pool_->set_schedule(sched_->schedule());
    }
    scheduling_seconds_ += sched_time.seconds();
  }
  ++rhs_calls_;
  const double secs = total.seconds();
  eval_seconds_ += secs;
  eval_hist.observe(secs);
}

void ParallelRhs::reset_counters() {
  rhs_calls_ = 0;
  eval_seconds_ = 0.0;
  scheduling_seconds_ = 0.0;
  pool_->stats().reset();
}

SerialRhs::SerialRhs(const exec::RhsKernel& kernel,
                     std::size_t compute_scale)
    : kernel_(&kernel), compute_scale_(compute_scale) {
  OMX_REQUIRE(compute_scale_ >= 1, "compute_scale must be >= 1");
}

SerialRhs::SerialRhs(const vm::Program& program, std::size_t compute_scale)
    : compute_scale_(compute_scale) {
  OMX_REQUIRE(compute_scale_ >= 1, "compute_scale must be >= 1");
  owned_ = exec::make_interp_kernel(program, nullptr, {});
  kernel_ = &owned_.kernel();
}

void SerialRhs::eval(double t, std::span<const double> y,
                     std::span<double> ydot) {
  static obs::Counter& rhs_calls_metric =
      obs::Registry::global().counter("rhs.calls");
  rhs_calls_metric.add();
  obs::Span span("rhs.eval_serial", "runtime");
  Stopwatch total;
  OMX_REQUIRE(ydot.size() == kernel_->n_out(), "ydot size mismatch");
  for (std::size_t rep = 0; rep < compute_scale_; ++rep) {
    // Whole-system evaluation writes every slot, so repetitions (the
    // compute-scale emulation) are idempotent.
    (*kernel_)(t, y, ydot);
  }
  ++rhs_calls_;
  eval_seconds_ += total.seconds();
}

void SerialRhs::reset_counters() {
  rhs_calls_ = 0;
  eval_seconds_ = 0.0;
}

}  // namespace omx::runtime
