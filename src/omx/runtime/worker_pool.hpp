// Supervisor/worker execution engine (§3.2, Figure 10) with intra-call
// work stealing.
//
// The supervisor (the caller of eval(), i.e. the ODE solver thread)
// distributes the state vector to worker threads, each worker executes
// tasks through the bound exec::RhsKernel (one concurrency lane per
// worker), and the supervisor collects and accumulates the results.
// Message costs are charged through the simulated Interconnect on both
// the sending and receiving side.
//
// Start/finish protocol (epoch-based, ThreadSanitizer-clean):
//  * The supervisor publishes the epoch inputs (t, y, seeded deques,
//    outstanding-task count), then increments `epoch_` under
//    `start_mutex_` and broadcasts `start_cv_`. The mutex acquisition
//    that each worker performs to observe the new epoch is what makes
//    every preceding plain write (inputs, schedules) visible to it.
//  * Each worker runs until no runnable task remains (see below), then
//    increments `workers_done_` under `done_mutex_` and signals
//    `done_cv_`. The supervisor waits for all workers, which conversely
//    publishes every worker-side plain write (per-task results, measured
//    task times) back to the supervisor.
//  * All remaining intra-epoch shared state is atomic: the Chase-Lev
//    deques, `tasks_remaining_`, and the `abort_` flag.
//
// Scheduling: each worker owns a Chase-Lev-style deque (task_deque.hpp)
// seeded from the current (semi-dynamic LPT) schedule. With
// `stealing = false` a worker simply drains its static assignment — the
// paper's §3.2.3 behavior. With `stealing = true` a worker that runs dry
// steals the oldest (= largest predicted) task from the most-loaded
// victim, so one mispredicted task no longer idles every other worker
// for the rest of the call. Measured per-task times are recorded by
// whichever worker executed the task, so the semi-dynamic LPT scheduler
// keeps improving the static seed across calls either way.
//
// Determinism: every task writes its outputs into a private per-task
// region of `task_results_` (claimed exactly once via the deque), each
// worker accumulating through its own scratch buffer; the supervisor then
// sums contributions in task-id order. Results are therefore bit-for-bit
// identical across worker counts and scheduling modes, and equal to a
// single-threaded reference that accumulates tasks in id order.
//
// By default the full state vector is sent to every worker — the paper
// does the same "because of the dynamic scheduling strategy" (§3.2.3).
// With `communication_analysis = true` (static mode only) each worker is
// sent just the states its tasks read; stealing forces the full
// broadcast, since any worker may end up executing any task.
#pragma once

#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "omx/exec/rhs_kernel.hpp"
#include "omx/obs/registry.hpp"
#include "omx/runtime/interconnect.hpp"
#include "omx/runtime/task_deque.hpp"
#include "omx/sched/lpt.hpp"
#include "omx/support/diagnostics.hpp"
#include "omx/vm/program.hpp"

namespace omx::runtime {

class WorkerPool {
 public:
  struct Options {
    std::size_t num_workers = 1;
    Interconnect net = Interconnect::ideal();
    /// Re-runs each task's body this many times, emulating the 1995
    /// compute/communication ratio (modern hardware is far faster
    /// relative to the simulated link than the PowerPC 601 was relative
    /// to its real link).
    std::size_t compute_scale = 1;
    /// Send only the states each worker needs instead of the full vector.
    /// Ignored (full broadcast) while stealing is enabled.
    bool communication_analysis = false;
    /// Intra-call work stealing. Defaults from the OMX_POOL_STEALING
    /// environment variable ("0"/"false"/"off" disable, anything else
    /// enables; unset = disabled).
    bool stealing = stealing_env_default();
    /// Busy/idle utilization sampling rate for the Perfetto counter
    /// tracks ("util/worker-N"). 0 disables the sampler thread entirely.
    /// Defaults from OMX_OBS_SAMPLE_HZ (unset = 0). Samples are only
    /// recorded while a trace is active.
    double sample_hz = sample_hz_env_default();
  };

  /// The Options::stealing default: OMX_POOL_STEALING, unset -> false.
  static bool stealing_env_default();
  /// The Options::sample_hz default: OMX_OBS_SAMPLE_HZ, unset -> 0.
  static double sample_hz_env_default();

  /// `kernel` must have a task decomposition, at least num_workers
  /// concurrency lanes, and must outlive the pool.
  WorkerPool(const exec::RhsKernel& kernel, const Options& opts);
  /// Legacy entry point: wraps `program` in an interpreter kernel owned
  /// by the pool. `program` must outlive the pool.
  WorkerPool(const vm::Program& program, const Options& opts);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  std::size_t num_workers() const { return workers_.size(); }
  const exec::RhsKernel& kernel() const { return *kernel_; }
  bool stealing() const { return opts_.stealing; }

  /// Replaces the task assignment. `schedule.size()` must equal
  /// num_workers(); task indices refer to kernel().tasks(). Must not be
  /// called while an eval() is in flight.
  void set_schedule(const sched::Schedule& schedule);

  /// One parallel RHS evaluation. If a worker throws while executing a
  /// task, the epoch is aborted, every worker parks, and the first
  /// exception is re-thrown here on the supervisor; the pool stays
  /// usable (and destructible) afterwards.
  void eval(double t, std::span<const double> y, std::span<double> ydot);

  /// Measured seconds per task (indexed by task id) from the most recent
  /// eval(). Contract: only valid after at least one eval() has returned
  /// (asserted); the storage is zero-initialized, so a task that has never
  /// run (e.g. one absent from the current schedule) reads as 0.0 rather
  /// than garbage. The span aliases internal storage — it is invalidated
  /// by destruction and overwritten by the next eval().
  std::span<const double> last_task_seconds() const {
    OMX_REQUIRE(evals_completed_ > 0,
                "last_task_seconds() called before the first eval()");
    return task_seconds_;
  }

  /// Tasks obtained via steal (vs static assignment) since construction.
  std::uint64_t tasks_stolen() const {
    return tasks_stolen_.load(std::memory_order_relaxed);
  }

  MessageStats& stats() { return stats_; }

 private:
  struct WorkerState {
    std::thread thread;
    TaskDeque deque;
    /// Static assignment for the current schedule (LPT order).
    std::vector<std::uint32_t> tasks;
    /// Per-worker accumulation buffer: run_task() adds into these n_out
    /// slots, which are then copied into the task's private result
    /// region — no two workers ever write the same ydot slot.
    std::vector<double> task_out;
    std::size_t state_bytes = 0;   // request message payload
    std::size_t result_bytes = 0;  // response payload (static schedule)
    /// Out-slot values produced in the last epoch (stealing mode
    /// response payload); written by the worker, read by the supervisor
    /// after the finish handshake.
    std::size_t outputs_produced = 0;
    /// True while the worker is inside run_epoch(); read by the
    /// utilization sampler thread.
    std::atomic<bool> busy{false};
  };

  void init();
  void worker_main(WorkerState& w, std::size_t index);
  void sampler_main();
  /// One worker's share of one epoch; throws through to worker_main.
  void run_epoch(WorkerState& w, std::size_t index);
  void execute_task(WorkerState& w, std::size_t index, std::uint32_t task);
  /// Steals from the most-loaded other worker. False = nothing stealable
  /// right now (or the CAS lost a race).
  bool steal_task(std::size_t thief, std::uint32_t& task);
  void recompute_message_sizes();

  exec::KernelInstance owned_;  // legacy-constructor keep-alive
  const exec::RhsKernel* kernel_ = nullptr;
  Options opts_;
  MessageStats stats_;
  obs::Counter* rhs_calls_metric_ = nullptr;
  obs::Counter* tasks_run_metric_ = nullptr;
  obs::Counter* steals_metric_ = nullptr;
  obs::Counter* steal_failures_metric_ = nullptr;
  obs::Counter* idle_metric_ = nullptr;  // pool.idle_nanos
  obs::Histogram* steal_latency_metric_ = nullptr;
  obs::Histogram* task_seconds_metric_ = nullptr;

  std::vector<std::unique_ptr<WorkerState>> workers_;

  // Utilization sampler (active only when opts_.sample_hz > 0).
  std::thread sampler_thread_;
  std::mutex sampler_mutex_;
  std::condition_variable sampler_cv_;
  bool sampler_shutdown_ = false;  // guarded by sampler_mutex_

  // Per-task result storage: task t owns the half-open range
  // [task_result_offset_[t], task_result_offset_[t + 1]) — one double per
  // out slot. Written by the (single) executor of t, read by the
  // supervisor after the finish handshake.
  std::vector<double> task_results_;
  std::vector<std::size_t> task_result_offset_;
  std::vector<double> task_seconds_;
  std::size_t evals_completed_ = 0;
  std::uint64_t generation_ = 0;  // == epochs started; supervisor-only

  // Epoch inputs (plain writes published by the start handshake).
  double t_ = 0.0;
  std::vector<double> y_;

  // Start handshake.
  std::mutex start_mutex_;
  std::condition_variable start_cv_;
  std::uint64_t epoch_ = 0;  // guarded by start_mutex_
  bool shutdown_ = false;    // guarded by start_mutex_

  // Finish handshake.
  std::mutex done_mutex_;
  std::condition_variable done_cv_;
  std::size_t workers_done_ = 0;     // guarded by done_mutex_
  std::exception_ptr first_error_;   // guarded by done_mutex_

  // Intra-epoch coordination (stealing-mode termination + abort).
  std::atomic<std::int64_t> tasks_remaining_{0};
  std::atomic<bool> abort_{false};
  std::atomic<std::uint64_t> tasks_stolen_{0};
};

}  // namespace omx::runtime
