// Supervisor/worker execution engine (§3.2, Figure 10).
//
// The supervisor (the caller of eval(), i.e. the ODE solver thread)
// distributes the state vector to worker threads, each worker executes its
// assigned tasks through the bound exec::RhsKernel (one concurrency lane
// per worker), and the supervisor collects and accumulates the results.
// Message costs are charged through the simulated Interconnect on both the
// sending and receiving side.
//
// The pool is backend-agnostic: it consumes any kernel with a task
// decomposition — the tape interpreter or the runtime-compiled native
// code — and schedules from the kernel's TaskTable metadata.
//
// By default the full state vector is sent to every worker — the paper
// does the same "because of the dynamic scheduling strategy" (§3.2.3).
// With `communication_analysis = true` only the states a worker's tasks
// actually read are sent (the paper's planned optimization), shrinking
// messages.
#pragma once

#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "omx/exec/rhs_kernel.hpp"
#include "omx/obs/registry.hpp"
#include "omx/runtime/interconnect.hpp"
#include "omx/sched/lpt.hpp"
#include "omx/support/diagnostics.hpp"
#include "omx/vm/program.hpp"

namespace omx::runtime {

class WorkerPool {
 public:
  struct Options {
    std::size_t num_workers = 1;
    Interconnect net = Interconnect::ideal();
    /// Re-runs each task's body this many times, emulating the 1995
    /// compute/communication ratio (modern hardware is far faster
    /// relative to the simulated link than the PowerPC 601 was relative
    /// to its real link).
    std::size_t compute_scale = 1;
    /// Send only the states each worker needs instead of the full vector.
    bool communication_analysis = false;
  };

  /// `kernel` must have a task decomposition, at least num_workers
  /// concurrency lanes, and must outlive the pool.
  WorkerPool(const exec::RhsKernel& kernel, const Options& opts);
  /// Legacy entry point: wraps `program` in an interpreter kernel owned
  /// by the pool. `program` must outlive the pool.
  WorkerPool(const vm::Program& program, const Options& opts);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  std::size_t num_workers() const { return workers_.size(); }
  const exec::RhsKernel& kernel() const { return *kernel_; }

  /// Replaces the task assignment. `schedule.size()` must equal
  /// num_workers(); task indices refer to kernel().tasks().
  void set_schedule(const sched::Schedule& schedule);

  /// One parallel RHS evaluation.
  void eval(double t, std::span<const double> y, std::span<double> ydot);

  /// Measured seconds per task (indexed by task id) from the most recent
  /// eval(). Contract: only valid after at least one eval() has returned
  /// (asserted); the storage is zero-initialized, so a task that has never
  /// run (e.g. one absent from the current schedule) reads as 0.0 rather
  /// than garbage. The span aliases internal storage — it is invalidated
  /// by destruction and overwritten by the next eval().
  std::span<const double> last_task_seconds() const {
    OMX_REQUIRE(evals_completed_ > 0,
                "last_task_seconds() called before the first eval()");
    return task_seconds_;
  }

  MessageStats& stats() { return stats_; }

 private:
  struct WorkerState {
    std::thread thread;
    std::mutex mutex;
    std::condition_variable cv;
    std::uint64_t requested = 0;  // generation to execute
    std::uint64_t completed = 0;  // last finished generation
    std::vector<std::uint32_t> tasks;
    std::vector<double> results;   // one value per task output slot
    std::vector<double> task_out;  // n_out accumulate scratch
    std::size_t state_bytes = 0;   // request message payload
    std::size_t result_bytes = 0;  // response message payload
  };

  void init();
  void worker_main(WorkerState& w, std::size_t index);
  void recompute_message_sizes();

  exec::KernelInstance owned_;  // legacy-constructor keep-alive
  const exec::RhsKernel* kernel_ = nullptr;
  Options opts_;
  MessageStats stats_;
  obs::Counter* rhs_calls_metric_ = nullptr;
  obs::Counter* tasks_run_metric_ = nullptr;

  std::vector<std::unique_ptr<WorkerState>> workers_;
  std::vector<double> task_seconds_;
  std::size_t evals_completed_ = 0;

  // Shared eval inputs (stable while workers run one generation).
  double t_ = 0.0;
  std::vector<double> y_;
  std::uint64_t generation_ = 0;
  bool shutdown_ = false;
};

}  // namespace omx::runtime
