// Strongly connected components (Tarjan, iterative) and condensation.
//
// This is the paper's core dependency-analysis algorithm (§2.1): equations
// are partitioned into SCCs ("subsystems of equations"), and the reduced
// acyclic condensation graph schedules which subsystems can be solved in
// parallel or pipelined.
#pragma once

#include <vector>

#include "omx/graph/digraph.hpp"

namespace omx::graph {

struct SccResult {
  /// component[v] = index of the SCC containing node v.
  /// Components are numbered in REVERSE topological order of the
  /// condensation (Tarjan property): if SCC a has an edge to SCC b (a!=b)
  /// then component index of a > component index of b.
  std::vector<std::uint32_t> component;
  /// members[c] = nodes of component c.
  std::vector<std::vector<NodeId>> members;

  std::size_t num_components() const { return members.size(); }

  /// A component is trivial iff it is a single node without a self-loop.
  bool is_trivial(std::uint32_t c, const Digraph& g) const;
};

SccResult strongly_connected_components(const Digraph& g);

/// Builds the condensation DAG (one node per SCC, deduplicated edges,
/// no self-loops). Node c of the result corresponds to members[c].
Digraph condensation(const Digraph& g, const SccResult& scc);

}  // namespace omx::graph
