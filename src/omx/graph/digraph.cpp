#include "omx/graph/digraph.hpp"

#include <algorithm>
#include <unordered_set>

#include "omx/support/diagnostics.hpp"

namespace omx::graph {

NodeId Digraph::add_node() {
  adj_.emplace_back();
  return static_cast<NodeId>(adj_.size() - 1);
}

void Digraph::add_edge(NodeId from, NodeId to) {
  OMX_REQUIRE(from < adj_.size() && to < adj_.size(), "edge out of range");
  adj_[from].push_back(to);
  ++num_edges_;
}

bool Digraph::has_edge(NodeId from, NodeId to) const {
  const auto& s = adj_[from];
  return std::find(s.begin(), s.end(), to) != s.end();
}

void Digraph::deduplicate() {
  num_edges_ = 0;
  for (auto& s : adj_) {
    std::unordered_set<NodeId> seen;
    std::vector<NodeId> unique;
    unique.reserve(s.size());
    for (NodeId t : s) {
      if (seen.insert(t).second) {
        unique.push_back(t);
      }
    }
    s = std::move(unique);
    num_edges_ += s.size();
  }
}

Digraph Digraph::reversed() const {
  Digraph r(num_nodes());
  for (NodeId u = 0; u < adj_.size(); ++u) {
    for (NodeId v : adj_[u]) {
      r.add_edge(v, u);
    }
  }
  return r;
}

std::vector<NodeId> Digraph::topological_order() const {
  std::vector<std::uint32_t> indeg(num_nodes(), 0);
  for (const auto& s : adj_) {
    for (NodeId v : s) {
      ++indeg[v];
    }
  }
  std::vector<NodeId> ready;
  for (NodeId u = 0; u < adj_.size(); ++u) {
    if (indeg[u] == 0) {
      ready.push_back(u);
    }
  }
  std::vector<NodeId> order;
  order.reserve(num_nodes());
  while (!ready.empty()) {
    const NodeId u = ready.back();
    ready.pop_back();
    order.push_back(u);
    for (NodeId v : adj_[u]) {
      if (--indeg[v] == 0) {
        ready.push_back(v);
      }
    }
  }
  if (order.size() != num_nodes()) {
    throw omx::Error("topological_order: graph has a cycle");
  }
  return order;
}

std::vector<std::uint32_t> Digraph::levels() const {
  const auto order = topological_order();
  std::vector<std::uint32_t> level(num_nodes(), 0);
  for (NodeId u : order) {
    for (NodeId v : adj_[u]) {
      level[v] = std::max(level[v], level[u] + 1);
    }
  }
  return level;
}

}  // namespace omx::graph
