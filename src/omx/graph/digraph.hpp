// Directed graph with adjacency lists. Nodes are dense 0..n-1 indices;
// callers keep their own node-id -> payload mapping (equation index,
// subsystem index, task index, ...).
#pragma once

#include <cstdint>
#include <vector>

namespace omx::graph {

using NodeId = std::uint32_t;

class Digraph {
 public:
  Digraph() = default;
  explicit Digraph(std::size_t num_nodes) : adj_(num_nodes) {}

  NodeId add_node();

  /// Adds edge from -> to. Duplicate edges are allowed (deduplicate() if
  /// needed); self-loops are allowed and matter for SCC triviality checks.
  void add_edge(NodeId from, NodeId to);

  std::size_t num_nodes() const { return adj_.size(); }
  std::size_t num_edges() const { return num_edges_; }

  const std::vector<NodeId>& successors(NodeId n) const { return adj_[n]; }

  bool has_edge(NodeId from, NodeId to) const;

  /// Removes duplicate edges (keeps order of first occurrence).
  void deduplicate();

  /// Returns the reverse graph.
  Digraph reversed() const;

  /// Kahn topological order. Throws omx::Error if the graph has a cycle.
  std::vector<NodeId> topological_order() const;

  /// Level (longest path from any source) per node; only valid for DAGs.
  /// Nodes in the same level are mutually independent and can run in
  /// parallel — this is the subsystem-level schedule of §2.1.
  std::vector<std::uint32_t> levels() const;

 private:
  std::vector<std::vector<NodeId>> adj_;
  std::size_t num_edges_ = 0;
};

}  // namespace omx::graph
