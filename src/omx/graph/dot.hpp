// Graphviz DOT export for dependency graphs — the paper stresses that
// visualization of equation dependencies "is very helpful for the model
// implementor" (§2.5.1). SCC members are drawn as clusters like Fig. 3/6.
#pragma once

#include <string>
#include <vector>

#include "omx/graph/digraph.hpp"
#include "omx/graph/scc.hpp"

namespace omx::graph {

/// Plain digraph dump. `labels` may be empty (node ids are used) or must
/// have one entry per node.
std::string to_dot(const Digraph& g, const std::vector<std::string>& labels);

/// Digraph with SCC clusters drawn as subgraphs.
std::string to_dot_clustered(const Digraph& g, const SccResult& scc,
                             const std::vector<std::string>& labels);

}  // namespace omx::graph
