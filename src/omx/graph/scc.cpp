#include "omx/graph/scc.hpp"

#include <algorithm>

#include "omx/support/diagnostics.hpp"

namespace omx::graph {

bool SccResult::is_trivial(std::uint32_t c, const Digraph& g) const {
  return members[c].size() == 1 && !g.has_edge(members[c][0], members[c][0]);
}

SccResult strongly_connected_components(const Digraph& g) {
  const std::size_t n = g.num_nodes();
  constexpr std::uint32_t kUnvisited = 0xffffffffu;

  std::vector<std::uint32_t> index(n, kUnvisited);
  std::vector<std::uint32_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<NodeId> stack;  // Tarjan's component stack

  SccResult result;
  result.component.assign(n, 0);

  std::uint32_t next_index = 0;

  // Explicit DFS frame: node + position in its successor list.
  struct Frame {
    NodeId node;
    std::size_t child;
  };
  std::vector<Frame> dfs;

  for (NodeId root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) {
      continue;
    }
    dfs.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!dfs.empty()) {
      Frame& f = dfs.back();
      const auto& succ = g.successors(f.node);
      if (f.child < succ.size()) {
        const NodeId w = succ[f.child++];
        if (index[w] == kUnvisited) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          dfs.push_back({w, 0});
        } else if (on_stack[w]) {
          lowlink[f.node] = std::min(lowlink[f.node], index[w]);
        }
      } else {
        const NodeId v = f.node;
        dfs.pop_back();
        if (!dfs.empty()) {
          lowlink[dfs.back().node] =
              std::min(lowlink[dfs.back().node], lowlink[v]);
        }
        if (lowlink[v] == index[v]) {
          // v is the root of a new component.
          std::vector<NodeId> comp;
          while (true) {
            const NodeId w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            comp.push_back(w);
            if (w == v) {
              break;
            }
          }
          std::sort(comp.begin(), comp.end());
          const auto c = static_cast<std::uint32_t>(result.members.size());
          for (NodeId w : comp) {
            result.component[w] = c;
          }
          result.members.push_back(std::move(comp));
        }
      }
    }
  }
  return result;
}

Digraph condensation(const Digraph& g, const SccResult& scc) {
  Digraph c(scc.num_components());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.successors(u)) {
      const std::uint32_t cu = scc.component[u];
      const std::uint32_t cv = scc.component[v];
      if (cu != cv) {
        c.add_edge(cu, cv);
      }
    }
  }
  c.deduplicate();
  return c;
}

}  // namespace omx::graph
