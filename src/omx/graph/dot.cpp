#include "omx/graph/dot.hpp"

#include <sstream>

#include "omx/support/diagnostics.hpp"

namespace omx::graph {

namespace {

std::string label_of(const std::vector<std::string>& labels, NodeId n) {
  if (labels.empty()) {
    return "n" + std::to_string(n);
  }
  return labels[n];
}

void emit_edges(std::ostringstream& os, const Digraph& g,
                const std::vector<std::string>& labels) {
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.successors(u)) {
      os << "  \"" << label_of(labels, u) << "\" -> \"" << label_of(labels, v)
         << "\";\n";
    }
  }
}

}  // namespace

std::string to_dot(const Digraph& g, const std::vector<std::string>& labels) {
  OMX_REQUIRE(labels.empty() || labels.size() == g.num_nodes(),
              "label count mismatch");
  std::ostringstream os;
  os << "digraph deps {\n  rankdir=LR;\n  node [shape=box];\n";
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    os << "  \"" << label_of(labels, u) << "\";\n";
  }
  emit_edges(os, g, labels);
  os << "}\n";
  return os.str();
}

std::string to_dot_clustered(const Digraph& g, const SccResult& scc,
                             const std::vector<std::string>& labels) {
  OMX_REQUIRE(labels.empty() || labels.size() == g.num_nodes(),
              "label count mismatch");
  std::ostringstream os;
  os << "digraph deps {\n  rankdir=LR;\n  node [shape=box];\n";
  for (std::uint32_t c = 0; c < scc.num_components(); ++c) {
    os << "  subgraph cluster_" << c << " {\n";
    os << "    label=\"SCC " << c << " (x " << scc.members[c].size()
       << ")\";\n";
    for (NodeId u : scc.members[c]) {
      os << "    \"" << label_of(labels, u) << "\";\n";
    }
    os << "  }\n";
  }
  emit_edges(os, g, labels);
  os << "}\n";
  return os.str();
}

}  // namespace omx::graph
