#include "omx/vm/batch.hpp"

#include <cmath>
#include <type_traits>

#include "omx/expr/eval.hpp"

namespace omx::vm {

void BatchWorkspace::resize(const Program& p, std::size_t nb) {
  OMX_REQUIRE(p.init_regs.size() == p.n_regs, "bad init_regs");
  regs_.resize(static_cast<std::size_t>(p.n_regs) * nb);
  // Splat every constant/temporary initial value across the lanes. State
  // and t rows are overwritten by load_state on every call.
  for (std::uint32_t r = 0; r < p.n_regs; ++r) {
    double* row = regs_.data() + static_cast<std::size_t>(r) * nb;
    for (std::size_t j = 0; j < nb; ++j) {
      row[j] = p.init_regs[r];
    }
  }
  nb_ = nb;
}

void BatchWorkspace::load_state(const Program& p, std::size_t nb,
                                const double* t, const double* y_soa) {
  OMX_REQUIRE(nb > 0, "empty batch");
  if (nb != nb_ || regs_.size() != static_cast<std::size_t>(p.n_regs) * nb) {
    resize(p, nb);
  }
  double* r = regs_.data();
  for (std::uint32_t i = 0; i < p.n_state; ++i) {
    const double* src = y_soa + static_cast<std::size_t>(i) * nb;
    double* dst = r + static_cast<std::size_t>(i) * nb;
    OMX_PRAGMA_SIMD
    for (std::size_t j = 0; j < nb; ++j) {
      dst[j] = src[j];
    }
  }
  double* trow = r + static_cast<std::size_t>(p.t_reg()) * nb;
  OMX_PRAGMA_SIMD
  for (std::size_t j = 0; j < nb; ++j) {
    trow[j] = t[j];
  }
}

namespace {

// The lane count comes in either as a plain size_t or as an
// integral_constant: with a compile-time width every lane loop below has
// a constant trip count, which the host compiler unrolls and
// auto-vectorizes. The instruction dispatch then costs once per batch
// instead of once per lane — the amortization the ensemble engine buys.
template <typename NbT>
void run_code(const Program& p, const TaskCode& tc, double* r, NbT nbv) {
  const std::size_t nb = nbv;
  // One contiguous lane loop per instruction: dst/a/b rows are disjoint
  // or identical whole rows, so every loop body is a pure elementwise op
  // and OMX_PRAGMA_SIMD is safe (packing lanes into vectors never
  // reorders per-lane arithmetic). The kPow/kFunc1/kFunc2 lanes stay
  // scalar on purpose: they route through the same libm calls as the
  // scalar interpreter, which is what keeps interp-batch bitwise equal
  // to interp-scalar; vectorized transcendentals live in the native
  // backend's vmath runtime (exec/vmath_functions.h), where scalar and
  // batched code share one branch-free implementation.
  for (std::uint32_t pc = tc.code_begin; pc < tc.code_end; ++pc) {
    const Instr& ins = p.code[pc];
    double* dst = r + static_cast<std::size_t>(ins.dst) * nb;
    const double* a = r + static_cast<std::size_t>(ins.a) * nb;
    const double* b = r + static_cast<std::size_t>(ins.b) * nb;
    switch (ins.op) {
      case OpCode::kAdd:
        OMX_PRAGMA_SIMD
        for (std::size_t j = 0; j < nb; ++j) dst[j] = a[j] + b[j];
        break;
      case OpCode::kSub:
        OMX_PRAGMA_SIMD
        for (std::size_t j = 0; j < nb; ++j) dst[j] = a[j] - b[j];
        break;
      case OpCode::kMul:
        OMX_PRAGMA_SIMD
        for (std::size_t j = 0; j < nb; ++j) dst[j] = a[j] * b[j];
        break;
      case OpCode::kDiv:
        OMX_PRAGMA_SIMD
        for (std::size_t j = 0; j < nb; ++j) dst[j] = a[j] / b[j];
        break;
      case OpCode::kPow:
        for (std::size_t j = 0; j < nb; ++j) {
          dst[j] = std::pow(a[j], b[j]);
        }
        break;
      case OpCode::kNeg:
        OMX_PRAGMA_SIMD
        for (std::size_t j = 0; j < nb; ++j) dst[j] = -a[j];
        break;
      case OpCode::kFunc1: {
        const auto f = static_cast<expr::Func1>(ins.fn);
        for (std::size_t j = 0; j < nb; ++j) {
          dst[j] = expr::apply_func1(f, a[j]);
        }
        break;
      }
      case OpCode::kFunc2: {
        const auto f = static_cast<expr::Func2>(ins.fn);
        for (std::size_t j = 0; j < nb; ++j) {
          dst[j] = expr::apply_func2(f, a[j], b[j]);
        }
        break;
      }
      case OpCode::kCopy:
        OMX_PRAGMA_SIMD
        for (std::size_t j = 0; j < nb; ++j) dst[j] = a[j];
        break;
    }
  }
}

template <std::size_t kNb>
using Width = std::integral_constant<std::size_t, kNb>;

}  // namespace

void run_task_batch(const Program& p, std::size_t task_index,
                    std::size_t nb, std::span<double> regs) {
  OMX_REQUIRE(task_index < p.tasks.size(), "task index out of range");
  const TaskCode& tc = p.tasks[task_index];
  double* r = regs.data();
  switch (nb) {
    case 4:
      run_code(p, tc, r, Width<4>{});
      break;
    case 8:
      run_code(p, tc, r, Width<8>{});
      break;
    case 16:
      run_code(p, tc, r, Width<16>{});
      break;
    case 32:
      run_code(p, tc, r, Width<32>{});
      break;
    default:
      run_code(p, tc, r, nb);
      break;
  }
}

void apply_outputs_batch(const Program& p, std::size_t task_index,
                         std::size_t nb, std::span<const double> regs,
                         double* ydot_soa) {
  const TaskCode& tc = p.tasks[task_index];
  for (const Output& o : tc.outputs) {
    const double* src = regs.data() + static_cast<std::size_t>(o.reg) * nb;
    double* dst = ydot_soa + static_cast<std::size_t>(o.slot) * nb;
    OMX_PRAGMA_SIMD
    for (std::size_t j = 0; j < nb; ++j) {
      dst[j] += src[j];
    }
  }
}

void eval_rhs_batch(const Program& p, std::size_t nb, const double* t,
                    const double* y_soa, double* ydot_soa,
                    BatchWorkspace& ws) {
  ws.load_state(p, nb, t, y_soa);
  const std::size_t total = static_cast<std::size_t>(p.n_out) * nb;
  OMX_PRAGMA_SIMD
  for (std::size_t i = 0; i < total; ++i) {
    ydot_soa[i] = 0.0;
  }
  for (std::size_t i = 0; i < p.tasks.size(); ++i) {
    run_task_batch(p, i, nb, ws.regs());
    apply_outputs_batch(p, i, nb, ws.regs(), ydot_soa);
  }
}

}  // namespace omx::vm
