#include "omx/vm/interp.hpp"

#include <cmath>

#include "omx/expr/eval.hpp"

namespace omx::vm {

void run_task(const Program& p, std::size_t task_index,
              std::span<double> regs) {
  OMX_REQUIRE(task_index < p.tasks.size(), "task index out of range");
  const TaskCode& t = p.tasks[task_index];
  double* r = regs.data();
  for (std::uint32_t pc = t.code_begin; pc < t.code_end; ++pc) {
    const Instr& ins = p.code[pc];
    switch (ins.op) {
      case OpCode::kAdd: r[ins.dst] = r[ins.a] + r[ins.b]; break;
      case OpCode::kSub: r[ins.dst] = r[ins.a] - r[ins.b]; break;
      case OpCode::kMul: r[ins.dst] = r[ins.a] * r[ins.b]; break;
      case OpCode::kDiv: r[ins.dst] = r[ins.a] / r[ins.b]; break;
      case OpCode::kPow: r[ins.dst] = std::pow(r[ins.a], r[ins.b]); break;
      case OpCode::kNeg: r[ins.dst] = -r[ins.a]; break;
      case OpCode::kFunc1:
        r[ins.dst] =
            expr::apply_func1(static_cast<expr::Func1>(ins.fn), r[ins.a]);
        break;
      case OpCode::kFunc2:
        r[ins.dst] = expr::apply_func2(static_cast<expr::Func2>(ins.fn),
                                       r[ins.a], r[ins.b]);
        break;
      case OpCode::kCopy: r[ins.dst] = r[ins.a]; break;
    }
  }
}

void apply_outputs(const Program& p, std::size_t task_index,
                   std::span<const double> regs, std::span<double> ydot) {
  const TaskCode& t = p.tasks[task_index];
  for (const Output& o : t.outputs) {
    ydot[o.slot] += regs[o.reg];
  }
}

void eval_rhs_serial(const Program& p, double t, std::span<const double> y,
                     std::span<double> ydot, Workspace& ws) {
  OMX_REQUIRE(ydot.size() == p.n_out, "ydot size mismatch");
  ws.load_state(p, t, y);
  for (double& v : ydot) {
    v = 0.0;
  }
  for (std::size_t i = 0; i < p.tasks.size(); ++i) {
    run_task(p, i, ws.regs());
    apply_outputs(p, i, ws.regs(), ydot);
  }
}

}  // namespace omx::vm
