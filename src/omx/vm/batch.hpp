// Batched (structure-of-arrays) tape interpreter: the ensemble-execution
// counterpart of interp.hpp.
//
// Where the scalar interpreter evaluates one (t, y) point per tape pass,
// the batched interpreter carries `nb` independent scenarios through the
// same instruction stream. The register file becomes a matrix in SoA
// layout — register r of lane j lives at regs[r * nb + j] — so each
// instruction turns into one contiguous inner loop over lanes that the
// host compiler can vectorize, and the per-instruction decode cost is
// amortized over the whole batch (the array-aware batching argument of
// Fioravanti et al., applied to the tape).
//
// Lane independence: lane j's results depend only on lane j's (t_j, y_j)
// and are bitwise identical to a scalar interpretation of the same
// inputs, regardless of nb or of which other scenarios share the batch.
// The ensemble driver and the differential test suite both rely on this.
//
// SoA conventions (shared with exec::RhsKernel's batched entry points):
//   y_soa[i * nb + j]     state i of lane j
//   ydot_soa[s * nb + j]  output slot s of lane j
//   t[j]                  the free variable of lane j
#pragma once

#include "omx/support/simd.hpp"
#include "omx/vm/program.hpp"

namespace omx::vm {

/// A batched register file. Reusable across calls; prepare() grows the
/// backing store as needed and (re)splats the constant registers when the
/// batch width changes.
class BatchWorkspace {
 public:
  BatchWorkspace() = default;
  explicit BatchWorkspace(const Program& p, std::size_t nb = 0) {
    if (nb > 0) {
      resize(p, nb);
    }
  }

  /// Ensures the workspace matches `nb` lanes of `p` and loads
  /// (t[j], y_soa[:, j]) into the designated register rows.
  void load_state(const Program& p, std::size_t nb, const double* t,
                  const double* y_soa);

  std::size_t width() const { return nb_; }
  std::span<double> regs() { return regs_; }

 private:
  void resize(const Program& p, std::size_t nb);

  // n_regs rows x nb lanes, SoA; 64-byte aligned so full lane blocks
  // start on a vector-register boundary (simd.hpp alignment contract).
  simd::aligned_vector<double> regs_;
  std::size_t nb_ = 0;
};

/// Executes one task's instructions across all lanes of `regs`
/// (SoA, width nb). Results stay in registers.
void run_task_batch(const Program& p, std::size_t task_index,
                    std::size_t nb, std::span<double> regs);

/// Accumulates one task's outputs into ydot_soa:
/// ydot_soa[slot * nb + j] += regs[reg * nb + j]. The ydot rows must be
/// pre-zeroed once per batched RHS evaluation.
void apply_outputs_batch(const Program& p, std::size_t task_index,
                         std::size_t nb, std::span<const double> regs,
                         double* ydot_soa);

/// Whole-system batched evaluation: for every lane j,
/// ydot[:, j] = f(t[j], y[:, j]); every output row written.
void eval_rhs_batch(const Program& p, std::size_t nb, const double* t,
                    const double* y_soa, double* ydot_soa,
                    BatchWorkspace& ws);

}  // namespace omx::vm
