// Register-machine tape: the executable form of the generated RHS code.
//
// The paper compiles generated Fortran 90 with the platform compiler; here
// the same task structure (per-task straight-line code with task-local
// common subexpressions) is compiled to a flat three-address tape executed
// by a small interpreter. Workers own private register files, mirroring
// the distributed-memory execution model: no temporaries are shared
// between tasks in the parallel program (§3.3).
//
// Register layout:
//   [0, n_state)                      current state y
//   [n_state]                         the free variable t
//   [n_state+1, n_state+1+n_consts)   literal/parameter constants
//   [.., n_regs)                      temporaries
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "omx/support/diagnostics.hpp"

namespace omx::vm {

enum class OpCode : std::uint8_t {
  kAdd,    // r[dst] = r[a] + r[b]
  kSub,    // r[dst] = r[a] - r[b]
  kMul,    // r[dst] = r[a] * r[b]
  kDiv,    // r[dst] = r[a] / r[b]
  kPow,    // r[dst] = pow(r[a], r[b])
  kNeg,    // r[dst] = -r[a]
  kFunc1,  // r[dst] = f(r[a]),      f = Func1(fn)
  kFunc2,  // r[dst] = f(r[a], r[b]), f = Func2(fn)
  kCopy,   // r[dst] = r[a]
};

struct Instr {
  OpCode op;
  std::uint8_t fn = 0;
  std::uint32_t dst = 0;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
};

/// Where a task delivers a result: ydot[slot] += r[reg]. Contributions
/// accumulate so that one state's derivative may be split over several
/// tasks (partial-sum splitting of large equations, §3.2).
struct Output {
  std::uint32_t reg = 0;
  std::uint32_t slot = 0;
};

/// One schedulable unit: a contiguous range of the tape plus its outputs.
struct TaskCode {
  std::uint32_t code_begin = 0;
  std::uint32_t code_end = 0;
  std::vector<Output> outputs;
  /// State indices this task actually reads (communication analysis).
  std::vector<std::uint32_t> in_states;
  /// Static cost estimate: number of instructions.
  std::uint32_t est_ops = 0;
  std::string label;
};

struct Program {
  std::uint32_t n_state = 0;
  /// Number of output slots; equals n_state for an RHS program, n_state^2
  /// for a Jacobian program.
  std::uint32_t n_out = 0;
  std::uint32_t n_regs = 0;
  std::vector<double> init_regs;  // constants preloaded; size n_regs
  std::vector<Instr> code;
  std::vector<TaskCode> tasks;

  std::uint32_t t_reg() const { return n_state; }

  /// Total instruction count across all tasks.
  std::size_t total_ops() const { return code.size(); }

  void validate() const;  // bounds-checks every instruction (throws Bug)
};

/// A private register file (one per worker / per serial evaluator).
class Workspace {
 public:
  explicit Workspace(const Program& p) : regs_(p.init_regs) {
    OMX_REQUIRE(p.init_regs.size() == p.n_regs, "bad init_regs");
  }

  /// Loads (t, y) into the designated registers.
  void load_state(const Program& p, double t, std::span<const double> y);

  std::span<double> regs() { return regs_; }

 private:
  std::vector<double> regs_;
};

}  // namespace omx::vm
