// Tape interpreter.
#pragma once

#include "omx/vm/program.hpp"

namespace omx::vm {

/// Executes the instructions of one task on the given register file.
/// Results stay in registers; use apply_outputs to deliver them.
void run_task(const Program& p, std::size_t task_index,
              std::span<double> regs);

/// Accumulates a task's outputs into ydot (ydot must be pre-zeroed once
/// per RHS evaluation).
void apply_outputs(const Program& p, std::size_t task_index,
                   std::span<const double> regs, std::span<double> ydot);

/// Serial reference evaluation: runs every task in order on `ws`.
void eval_rhs_serial(const Program& p, double t, std::span<const double> y,
                     std::span<double> ydot, Workspace& ws);

}  // namespace omx::vm
