#include "omx/vm/program.hpp"

namespace omx::vm {

void Program::validate() const {
  OMX_REQUIRE(init_regs.size() == n_regs, "init_regs size mismatch");
  OMX_REQUIRE(n_regs > n_state, "register file too small");
  for (const Instr& ins : code) {
    OMX_REQUIRE(ins.dst < n_regs, "dst register out of range");
    OMX_REQUIRE(ins.a < n_regs, "a register out of range");
    const bool binary = ins.op == OpCode::kAdd || ins.op == OpCode::kSub ||
                        ins.op == OpCode::kMul || ins.op == OpCode::kDiv ||
                        ins.op == OpCode::kPow || ins.op == OpCode::kFunc2;
    if (binary) {
      OMX_REQUIRE(ins.b < n_regs, "b register out of range");
    }
  }
  for (const TaskCode& t : tasks) {
    OMX_REQUIRE(t.code_begin <= t.code_end && t.code_end <= code.size(),
                "task code range out of bounds");
    for (const Output& o : t.outputs) {
      OMX_REQUIRE(o.reg < n_regs, "output register out of range");
      OMX_REQUIRE(o.slot < n_out, "output slot out of range");
    }
    for (std::uint32_t s : t.in_states) {
      OMX_REQUIRE(s < n_state, "input state out of range");
    }
  }
}

void Workspace::load_state(const Program& p, double t,
                           std::span<const double> y) {
  OMX_REQUIRE(y.size() == p.n_state, "state size mismatch");
  for (std::size_t i = 0; i < y.size(); ++i) {
    regs_[i] = y[i];
  }
  regs_[p.t_reg()] = t;
}

}  // namespace omx::vm
