// Process-wide telemetry registry (counters, gauges, histograms).
//
// The paper's evaluation is measurement-driven — RHS-calls/second
// (Figure 12), per-task times feeding the semi-dynamic LPT scheduler
// (§3.2.3), message counts on the simulated interconnects (§3.2.2) — so
// the toolchain exposes every such quantity through one registry instead
// of ad-hoc member counters.
//
// Design rules:
//  * Hot-path updates are lock-free: one relaxed atomic RMW, guarded by a
//    single relaxed flag load (`enabled()`). With OMX_OBS_ENABLED=0 an
//    update is a load + branch.
//  * Metric objects have stable addresses for the life of the registry;
//    call sites resolve the name once (function-local static or cached
//    member reference) and keep the reference.
//  * Registration takes a mutex; it happens once per metric name.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace omx::obs {

namespace detail {
std::atomic<bool>& enabled_flag();
}  // namespace detail

/// Master switch. Initialized from the environment variable
/// OMX_OBS_ENABLED ("0"/"false"/"off" disable; anything else, or unset,
/// enables). Disabled metrics cost one relaxed load per update.
inline bool enabled() {
  return detail::enabled_flag().load(std::memory_order_relaxed);
}
void set_enabled(bool on);

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if (enabled()) {
      value_.fetch_add(n, std::memory_order_relaxed);
    }
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written instantaneous value.
class Gauge {
 public:
  void set(double v) {
    if (enabled()) {
      value_.store(v, std::memory_order_relaxed);
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log-spaced default histogram bounds: the {1, 2, 5} decade pattern
/// (…, 1e-4, 2e-4, 5e-4, 1e-3, …) covering [lo, hi] — the edges stay
/// human-readable in bench footers while spanning several orders of
/// magnitude, which is what duration distributions need. `lo` and `hi`
/// must be positive with lo < hi.
std::vector<double> log_spaced_bounds(double lo, double hi);

/// Interpolated quantile estimate from fixed-bucket data: counts has
/// bounds.size() + 1 entries (last = overflow), bucket i spans
/// (bounds[i-1], bounds[i]] with an implicit lower edge of 0. The rank
/// is placed by linear interpolation inside its bucket; ranks landing in
/// the overflow bucket clamp to the last bound. Returns 0 when empty.
double histogram_quantile(const std::vector<double>& bounds,
                          const std::vector<std::uint64_t>& counts,
                          double q);

/// Fixed-bucket histogram. Bucket i counts observations v <= bounds[i]
/// (first matching bound); the implicit final bucket catches everything
/// above the last bound.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts, size bounds().size() + 1 (last = overflow).
  std::vector<std::uint64_t> counts() const;
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Interpolated quantile (q in [0,1]) over the current bucket counts.
  double quantile(double q) const {
    return histogram_quantile(bounds_, counts(), q);
  }
  void reset();

 private:
  std::vector<double> bounds_;  // strictly increasing
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Point-in-time copy of every registered metric, for exporters.
struct Snapshot {
  struct Hist {
    std::string name;
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;
    std::uint64_t count = 0;
    double sum = 0.0;
    double quantile(double q) const {
      return histogram_quantile(bounds, counts, q);
    }
  };
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<Hist> histograms;
};

class Registry {
 public:
  /// The process-wide registry all built-in instrumentation targets.
  static Registry& global();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Finds or creates; the returned reference stays valid for the
  /// registry's lifetime.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `upper_bounds` must be strictly increasing; ignored (the existing
  /// bounds win) if the histogram already exists.
  Histogram& histogram(std::string_view name,
                       std::vector<double> upper_bounds);

  Snapshot snapshot() const;
  /// Zeroes every metric (registrations are kept).
  void reset();

 private:
  mutable std::mutex mutex_;
  // Node-based maps: values never move after insertion.
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace omx::obs
