// Span aggregation: folds the flat TraceBuffer event list into a
// hierarchical profile — per (call-path, name) node: call count, total
// wall time, self time (total minus child spans), and p50/p90/p99 of the
// span durations. Nesting is reconstructed per thread from interval
// containment (the buffer records "X" complete events, so a span's
// children are exactly the later-starting spans it encloses); identical
// call paths from different threads merge into one node.
//
// This is the layer the ROADMAP's auto-tuning work reads fitted per-span
// cost terms from, and what the service daemon's p50/p99 gates consume.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "omx/obs/trace.hpp"

namespace omx::obs {

struct ProfileNode {
  std::string name;
  int depth = 0;           // 0 = root span
  std::uint64_t count = 0;
  std::int64_t total_ns = 0;
  std::int64_t self_ns = 0;   // total minus time in child spans
  std::int64_t p50_ns = 0;    // exact percentiles over span durations
  std::int64_t p90_ns = 0;
  std::int64_t p99_ns = 0;
};

/// Aggregated profile in depth-first order (each node directly follows
/// its parent), roots sorted by total time descending.
struct Profile {
  std::vector<ProfileNode> nodes;
  std::int64_t wall_ns = 0;  // max span end across all threads
};

Profile aggregate_profile(const std::vector<TraceEvent>& events);

inline Profile aggregate_profile(const TraceBuffer& buffer) {
  return aggregate_profile(buffer.events());
}

}  // namespace omx::obs
