#include "omx/obs/recorder.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "omx/obs/trace.hpp"
#include "omx/support/config.hpp"

namespace omx::obs {

const char* to_string(StepEventKind kind) {
  switch (kind) {
    case StepEventKind::kStepAccepted: return "step_accepted";
    case StepEventKind::kStepRejected: return "step_rejected";
    case StepEventKind::kNewtonFail: return "newton_fail";
    case StepEventKind::kJacEvaluate: return "jac_evaluate";
    case StepEventKind::kJacFactorize: return "jac_factorize";
    case StepEventKind::kJacReuse: return "jac_reuse";
    case StepEventKind::kMethodSwitch: return "method_switch";
    case StepEventKind::kLanePack: return "lane_pack";
    case StepEventKind::kLaneRefill: return "lane_refill";
    case StepEventKind::kLaneRetire: return "lane_retire";
    case StepEventKind::kLaneCancel: return "lane_cancel";
    case StepEventKind::kEvent: return "event";
    case StepEventKind::kLaneEventStop: return "lane_event_stop";
  }
  return "unknown";
}

// Single-producer ring with fill-then-drop semantics: the owning thread
// stores slot `head` plainly and then publishes with a release store of
// head+1; a snapshotting reader acquires `head` and reads only slots
// below it. Slots are never overwritten, so reader and writer can never
// touch the same slot concurrently — no per-slot atomics needed.
struct Recorder::Ring {
  explicit Ring(std::size_t capacity) : slots(capacity) {}
  std::vector<StepEvent> slots;
  std::atomic<std::size_t> head{0};
  std::atomic<std::uint64_t> dropped{0};
};

namespace {

std::size_t env_capacity() {
  const long v = config::get_int("OMX_OBS_RECORDER_CAP", 65536);
  return static_cast<std::size_t>(v > 0 ? v : 65536);
}

bool env_recorder_on() {
  return config::get_bool("OMX_OBS_RECORDER", false);
}

// Generations are drawn from one process-wide counter so the pair
// (owner pointer, generation) cached per thread can never alias: a new
// Recorder constructed at a recycled address still gets a generation no
// cached slot has seen (the classic ABA with stack-allocated recorders
// in tests).
std::atomic<std::uint64_t> g_recorder_generation{0};

std::uint64_t next_generation() {
  return g_recorder_generation.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

Recorder& Recorder::global() {
  static Recorder* instance = [] {
    auto* r = new Recorder(env_capacity());
    if (env_recorder_on()) {
      r->start();
    }
    return r;
  }();
  return *instance;
}

Recorder::Recorder(std::size_t capacity_per_thread)
    : capacity_(capacity_per_thread == 0 ? 1 : capacity_per_thread) {
  generation_.store(next_generation(), std::memory_order_relaxed);
}

void Recorder::start() {
  std::lock_guard<std::mutex> lock(mutex_);
  rings_.clear();  // retired rings stay alive through thread caches
  generation_.store(next_generation(), std::memory_order_relaxed);
  epoch_ns_.store(std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count(),
                  std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_release);
}

void Recorder::stop() {
  enabled_.store(false, std::memory_order_release);
}

std::int64_t Recorder::now_ns() const {
  const std::int64_t now =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  return now - epoch_ns_.load(std::memory_order_relaxed);
}

Recorder::Ring& Recorder::ring_for_this_thread() {
  // Per-thread cache of the ring handed out by the current generation.
  // Holding the shared_ptr keeps a retired ring alive until its writer
  // thread re-checks the generation, so start() can swap rings without
  // racing in-flight record() calls.
  struct ThreadSlot {
    std::uint64_t generation = 0;
    std::shared_ptr<Ring> ring;
    Recorder* owner = nullptr;
  };
  thread_local ThreadSlot slot;
  const std::uint64_t gen = generation_.load(std::memory_order_relaxed);
  if (slot.owner != this || slot.generation != gen || !slot.ring) {
    auto fresh = std::make_shared<Ring>(capacity_);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      // Re-read under the lock: a start() may have raced the relaxed
      // load above; registering under the current generation keeps the
      // ring visible to events().
      slot.generation = generation_.load(std::memory_order_relaxed);
      rings_.push_back(fresh);
    }
    slot.ring = std::move(fresh);
    slot.owner = this;
  }
  return *slot.ring;
}

void Recorder::record(StepEvent ev) {
  if (!enabled()) {
    return;
  }
  Ring& ring = ring_for_this_thread();
  const std::size_t h = ring.head.load(std::memory_order_relaxed);
  if (h >= ring.slots.size()) {
    ring.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  ev.tid = TraceBuffer::thread_id();
  ev.when_ns = now_ns();
  ring.slots[h] = ev;
  ring.head.store(h + 1, std::memory_order_release);
}

std::uint64_t Recorder::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& ring : rings_) {
    total += ring->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<StepEvent> Recorder::events() const {
  std::vector<StepEvent> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& ring : rings_) {
      const std::size_t h = ring->head.load(std::memory_order_acquire);
      out.insert(out.end(), ring->slots.begin(), ring->slots.begin() + h);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const StepEvent& a, const StepEvent& b) {
                     return a.when_ns < b.when_ns;
                   });
  return out;
}

}  // namespace omx::obs
