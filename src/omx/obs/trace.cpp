#include "omx/obs/trace.hpp"

#include <chrono>
#include <cstdlib>
#include <cstring>

#include "omx/support/config.hpp"

namespace omx::obs {

namespace {

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

TraceBuffer& TraceBuffer::global() {
  static TraceBuffer* tb = [] {
    auto* t = new TraceBuffer();  // leaked: worker threads may record
                                  // during static destruction otherwise
    if (config::get_bool("OMX_OBS_TRACE", false)) {
      t->start();
    }
    return t;
  }();
  return *tb;
}

TraceBuffer::TraceBuffer() {
  epoch_ns_.store(steady_ns(), std::memory_order_relaxed);
}

void TraceBuffer::start() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  counter_samples_.clear();
  epoch_ns_.store(steady_ns(), std::memory_order_relaxed);
  active_.store(true, std::memory_order_relaxed);
}

void TraceBuffer::stop() {
  active_.store(false, std::memory_order_relaxed);
}

std::int64_t TraceBuffer::now_ns() const {
  return steady_ns() - epoch_ns_.load(std::memory_order_relaxed);
}

void TraceBuffer::record(std::string name, const char* category,
                         std::int64_t start_ns, std::int64_t dur_ns) {
  TraceEvent ev;
  ev.name = std::move(name);
  ev.category = category;
  ev.tid = thread_id();
  ev.start_ns = start_ns;
  ev.dur_ns = dur_ns;
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(ev));
}

std::uint32_t TraceBuffer::thread_id() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void TraceBuffer::record_counter(std::string track, std::int64_t at_ns,
                                 double value) {
  if (!active()) {
    return;
  }
  CounterSample sample;
  sample.track = std::move(track);
  sample.at_ns = at_ns;
  sample.value = value;
  std::lock_guard<std::mutex> lock(mutex_);
  counter_samples_.push_back(std::move(sample));
}

void TraceBuffer::set_thread_name(std::string name) {
  const std::uint32_t tid = thread_id();
  std::lock_guard<std::mutex> lock(mutex_);
  thread_names_[tid] = std::move(name);
}

void TraceBuffer::set_process_name(std::string name) {
  std::lock_guard<std::mutex> lock(mutex_);
  process_name_ = std::move(name);
}

std::vector<TraceEvent> TraceBuffer::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

std::vector<CounterSample> TraceBuffer::counter_samples() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counter_samples_;
}

std::string TraceBuffer::process_name() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return process_name_;
}

std::map<std::uint32_t, std::string> TraceBuffer::thread_names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return thread_names_;
}

}  // namespace omx::obs
