// Exporters for the telemetry registry and trace buffer:
//  * format_text    — human-readable summary (examples, bench footers)
//  * metrics_json   — machine-readable metrics (BENCH_*.json trajectories)
//  * chrome_trace_json — Chrome trace_event format; load the file in
//    chrome://tracing or https://ui.perfetto.dev to see per-worker task
//    timelines under supervisor scatter/gather spans.
#pragma once

#include <string>
#include <string_view>

#include "omx/obs/profile.hpp"
#include "omx/obs/recorder.hpp"
#include "omx/obs/registry.hpp"
#include "omx/obs/trace.hpp"

namespace omx::obs {

std::string format_text(const Snapshot& snap);
std::string metrics_json(const Snapshot& snap);
std::string chrome_trace_json(const TraceBuffer& buffer);

/// Aggregated span profile as an indented tree: one line per call-path
/// node with count, total/self time, and p50/p90/p99.
std::string profile_text(const Profile& profile);
/// Same data as JSON: {"wall_ns": ..., "nodes": [{...}]} with nodes in
/// depth-first order (each node directly follows its parent).
std::string profile_json(const Profile& profile);

/// Flight-recorder log as JSON: {"dropped": N, "capacity_per_thread": C,
/// "events": [{"kind", "method", "t", "h", "err", "order", "lane",
/// "tid", "when_ns"}]}, events time-sorted.
std::string recorder_json(const Recorder& recorder);

/// JSON string escaping for callers composing their own documents.
std::string json_escape(std::string_view s);

/// Strict structural validation (objects/arrays/strings/numbers/bools/
/// null, no trailing garbage). Used by tests to round-trip exporter
/// output without an external JSON dependency.
bool validate_json(std::string_view text);

/// Writes `content` to `path`; returns false on I/O failure.
bool write_file(const std::string& path, std::string_view content);

}  // namespace omx::obs
