// Exporters for the telemetry registry and trace buffer:
//  * format_text    — human-readable summary (examples, bench footers)
//  * metrics_json   — machine-readable metrics (BENCH_*.json trajectories)
//  * chrome_trace_json — Chrome trace_event format; load the file in
//    chrome://tracing or https://ui.perfetto.dev to see per-worker task
//    timelines under supervisor scatter/gather spans.
#pragma once

#include <string>
#include <string_view>

#include "omx/obs/registry.hpp"
#include "omx/obs/trace.hpp"

namespace omx::obs {

std::string format_text(const Snapshot& snap);
std::string metrics_json(const Snapshot& snap);
std::string chrome_trace_json(const TraceBuffer& buffer);

/// JSON string escaping for callers composing their own documents.
std::string json_escape(std::string_view s);

/// Strict structural validation (objects/arrays/strings/numbers/bools/
/// null, no trailing garbage). Used by tests to round-trip exporter
/// output without an external JSON dependency.
bool validate_json(std::string_view text);

/// Writes `content` to `path`; returns false on I/O failure.
bool write_file(const std::string& path, std::string_view content);

}  // namespace omx::obs
