#include "omx/obs/profile.hpp"

#include <algorithm>
#include <cstddef>
#include <map>
#include <memory>
#include <utility>

namespace omx::obs {
namespace {

// Build node in the merge tree keyed by span name under one parent.
struct BuildNode {
  std::string name;
  int depth = 0;
  std::vector<std::int64_t> durations;
  std::int64_t child_ns = 0;  // sum of direct children's totals
  std::map<std::string, std::unique_ptr<BuildNode>, std::less<>> children;
};

std::int64_t percentile(std::vector<std::int64_t>& sorted, double q) {
  if (sorted.empty()) {
    return 0;
  }
  // Nearest-rank on the sorted durations; exact, no interpolation needed
  // for the small per-node populations profiles deal in.
  const auto n = static_cast<double>(sorted.size());
  auto idx = static_cast<std::size_t>(q * n);
  if (idx >= sorted.size()) {
    idx = sorted.size() - 1;
  }
  return sorted[idx];
}

void flatten(BuildNode& node, Profile& out) {
  ProfileNode pn;
  pn.name = node.name;
  pn.depth = node.depth;
  pn.count = node.durations.size();
  for (std::int64_t d : node.durations) {
    pn.total_ns += d;
  }
  pn.self_ns = pn.total_ns - node.child_ns;
  std::sort(node.durations.begin(), node.durations.end());
  pn.p50_ns = percentile(node.durations, 0.50);
  pn.p90_ns = percentile(node.durations, 0.90);
  pn.p99_ns = percentile(node.durations, 0.99);
  out.nodes.push_back(std::move(pn));

  // Children depth-first, heaviest first, so the text rendering reads
  // top-down like a flame graph.
  std::vector<BuildNode*> kids;
  for (auto& [_, child] : node.children) {
    kids.push_back(child.get());
  }
  std::stable_sort(kids.begin(), kids.end(),
                   [](const BuildNode* a, const BuildNode* b) {
                     std::int64_t ta = 0;
                     std::int64_t tb = 0;
                     for (std::int64_t d : a->durations) ta += d;
                     for (std::int64_t d : b->durations) tb += d;
                     return ta > tb;
                   });
  for (BuildNode* child : kids) {
    flatten(*child, out);
  }
}

}  // namespace

Profile aggregate_profile(const std::vector<TraceEvent>& events) {
  Profile out;

  // Group by thread: containment only means nesting within one thread.
  std::map<std::uint32_t, std::vector<const TraceEvent*>> by_tid;
  for (const TraceEvent& ev : events) {
    by_tid[ev.tid].push_back(&ev);
    out.wall_ns = std::max(out.wall_ns, ev.start_ns + ev.dur_ns);
  }

  BuildNode root;
  root.depth = -1;
  for (auto& [tid, evs] : by_tid) {
    // Sort by start ascending; ties put the longer (enclosing) span
    // first so a parent precedes children it starts simultaneously with.
    std::stable_sort(evs.begin(), evs.end(),
                     [](const TraceEvent* a, const TraceEvent* b) {
                       if (a->start_ns != b->start_ns) {
                         return a->start_ns < b->start_ns;
                       }
                       return a->dur_ns > b->dur_ns;
                     });
    // Containment stack: pop spans that ended before this one starts;
    // whatever remains on top encloses it.
    std::vector<std::pair<const TraceEvent*, BuildNode*>> stack;
    for (const TraceEvent* ev : evs) {
      while (!stack.empty() &&
             stack.back().first->start_ns + stack.back().first->dur_ns <=
                 ev->start_ns) {
        stack.pop_back();
      }
      BuildNode* parent = stack.empty() ? &root : stack.back().second;
      auto it = parent->children.find(ev->name);
      if (it == parent->children.end()) {
        auto node = std::make_unique<BuildNode>();
        node->name = ev->name;
        node->depth = parent->depth + 1;
        it = parent->children.emplace(ev->name, std::move(node)).first;
      }
      it->second->durations.push_back(ev->dur_ns);
      parent->child_ns += ev->dur_ns;
      stack.emplace_back(ev, it->second.get());
    }
  }

  std::vector<BuildNode*> roots;
  for (auto& [_, child] : root.children) {
    roots.push_back(child.get());
  }
  std::stable_sort(roots.begin(), roots.end(),
                   [](const BuildNode* a, const BuildNode* b) {
                     std::int64_t ta = 0;
                     std::int64_t tb = 0;
                     for (std::int64_t d : a->durations) ta += d;
                     for (std::int64_t d : b->durations) tb += d;
                     return ta > tb;
                   });
  for (BuildNode* r : roots) {
    flatten(*r, out);
  }
  return out;
}

}  // namespace omx::obs
