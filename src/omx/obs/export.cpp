#include "omx/obs/export.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>

namespace omx::obs {

namespace {

/// Formats a double the way JSON expects (no inf/nan, no locale).
std::string json_number(double v) {
  if (!std::isfinite(v)) {
    return "0";
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string format_text(const Snapshot& snap) {
  std::string out;
  char buf[160];
  if (!snap.counters.empty()) {
    out += "counters:\n";
    for (const auto& [name, v] : snap.counters) {
      std::snprintf(buf, sizeof buf, "  %-32s %llu\n", name.c_str(),
                    static_cast<unsigned long long>(v));
      out += buf;
    }
  }
  if (!snap.gauges.empty()) {
    out += "gauges:\n";
    for (const auto& [name, v] : snap.gauges) {
      std::snprintf(buf, sizeof buf, "  %-32s %.6g\n", name.c_str(), v);
      out += buf;
    }
  }
  for (const auto& h : snap.histograms) {
    std::snprintf(buf, sizeof buf,
                  "histogram %s: count=%llu sum=%.6g p50=%.6g p99=%.6g\n",
                  h.name.c_str(),
                  static_cast<unsigned long long>(h.count), h.sum,
                  h.quantile(0.50), h.quantile(0.99));
    out += buf;
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i < h.bounds.size()) {
        std::snprintf(buf, sizeof buf, "  le %-12.6g %llu\n", h.bounds[i],
                      static_cast<unsigned long long>(h.counts[i]));
      } else {
        std::snprintf(buf, sizeof buf, "  overflow     %llu\n",
                      static_cast<unsigned long long>(h.counts[i]));
      }
      out += buf;
    }
  }
  if (out.empty()) {
    out = "(no metrics registered)\n";
  }
  return out;
}

std::string metrics_json(const Snapshot& snap) {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : snap.counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": " + std::to_string(v);
  }
  out += first ? "}" : "\n  }";
  out += ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : snap.gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": " + json_number(v);
  }
  out += first ? "}" : "\n  }";
  out += ",\n  \"histograms\": {";
  first = true;
  for (const auto& h : snap.histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(h.name) + "\": {\"bounds\": [";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      out += (i ? ", " : "") + json_number(h.bounds[i]);
    }
    out += "], \"counts\": [";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      out += (i ? ", " : "") + std::to_string(h.counts[i]);
    }
    out += "], \"count\": " + std::to_string(h.count) +
           ", \"sum\": " + json_number(h.sum) +
           ", \"p50\": " + json_number(h.quantile(0.50)) +
           ", \"p90\": " + json_number(h.quantile(0.90)) +
           ", \"p99\": " + json_number(h.quantile(0.99)) + "}";
  }
  out += first ? "}" : "\n  }";
  out += "\n}\n";
  return out;
}

std::string chrome_trace_json(const TraceBuffer& buffer) {
  const auto events = buffer.events();
  const auto names = buffer.thread_names();
  const auto samples = buffer.counter_samples();
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  // Process-name metadata labels the whole row in Perfetto.
  const std::string pname = buffer.process_name();
  if (!pname.empty()) {
    out += "\n {\"ph\": \"M\", \"pid\": 1, \"name\": \"process_name\", "
           "\"args\": {\"name\": \"" +
           json_escape(pname) + "\"}}";
    first = false;
  }
  // Thread-name metadata events give each worker its labeled track.
  for (const auto& [tid, name] : names) {
    out += first ? "\n" : ",\n";
    first = false;
    out += " {\"ph\": \"M\", \"pid\": 1, \"tid\": " + std::to_string(tid) +
           ", \"name\": \"thread_name\", \"args\": {\"name\": \"" +
           json_escape(name) + "\"}}";
  }
  // Counter samples render as per-track value-over-time plots.
  for (const CounterSample& s : samples) {
    out += first ? "\n" : ",\n";
    first = false;
    out += " {\"ph\": \"C\", \"pid\": 1, \"name\": \"" +
           json_escape(s.track) +
           "\", \"ts\": " + json_number(s.at_ns / 1e3) +
           ", \"args\": {\"value\": " + json_number(s.value) + "}}";
  }
  for (const TraceEvent& ev : events) {
    out += first ? "\n" : ",\n";
    first = false;
    // trace_event timestamps are microseconds; keep ns resolution via
    // fractional values (both chrome://tracing and Perfetto accept them).
    out += " {\"ph\": \"X\", \"pid\": 1, \"tid\": " + std::to_string(ev.tid) +
           ", \"name\": \"" + json_escape(ev.name) + "\", \"cat\": \"" +
           json_escape(ev.category) +
           "\", \"ts\": " + json_number(ev.start_ns / 1e3) +
           ", \"dur\": " + json_number(ev.dur_ns / 1e3) + "}";
  }
  out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

namespace {

std::string fmt_ms(std::int64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", static_cast<double>(ns) / 1e6);
  return buf;
}

}  // namespace

std::string profile_text(const Profile& profile) {
  if (profile.nodes.empty()) {
    return "(no spans recorded)\n";
  }
  std::string out;
  char buf[224];
  std::snprintf(buf, sizeof buf,
                "%-40s %8s %10s %10s %9s %9s %9s\n", "span", "count",
                "total_ms", "self_ms", "p50_ms", "p90_ms", "p99_ms");
  out += buf;
  for (const ProfileNode& n : profile.nodes) {
    std::string label(static_cast<std::size_t>(n.depth) * 2, ' ');
    label += n.name;
    if (label.size() > 40) {
      label.resize(40);
    }
    std::snprintf(buf, sizeof buf,
                  "%-40s %8llu %10s %10s %9s %9s %9s\n", label.c_str(),
                  static_cast<unsigned long long>(n.count),
                  fmt_ms(n.total_ns).c_str(), fmt_ms(n.self_ns).c_str(),
                  fmt_ms(n.p50_ns).c_str(), fmt_ms(n.p90_ns).c_str(),
                  fmt_ms(n.p99_ns).c_str());
    out += buf;
  }
  std::snprintf(buf, sizeof buf, "wall: %s ms\n",
                fmt_ms(profile.wall_ns).c_str());
  out += buf;
  return out;
}

std::string profile_json(const Profile& profile) {
  std::string out =
      "{\n  \"wall_ns\": " + std::to_string(profile.wall_ns) +
      ",\n  \"nodes\": [";
  bool first = true;
  for (const ProfileNode& n : profile.nodes) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": \"" + json_escape(n.name) +
           "\", \"depth\": " + std::to_string(n.depth) +
           ", \"count\": " + std::to_string(n.count) +
           ", \"total_ns\": " + std::to_string(n.total_ns) +
           ", \"self_ns\": " + std::to_string(n.self_ns) +
           ", \"p50_ns\": " + std::to_string(n.p50_ns) +
           ", \"p90_ns\": " + std::to_string(n.p90_ns) +
           ", \"p99_ns\": " + std::to_string(n.p99_ns) + "}";
  }
  out += first ? "]" : "\n  ]";
  out += "\n}\n";
  return out;
}

std::string recorder_json(const Recorder& recorder) {
  std::string out =
      "{\n  \"dropped\": " + std::to_string(recorder.dropped()) +
      ",\n  \"capacity_per_thread\": " +
      std::to_string(recorder.capacity_per_thread()) +
      ",\n  \"events\": [";
  bool first = true;
  for (const StepEvent& ev : recorder.events()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"kind\": \"" + std::string(to_string(ev.kind)) +
           "\", \"method\": \"" + json_escape(ev.method) +
           "\", \"t\": " + json_number(ev.t) +
           ", \"h\": " + json_number(ev.h) +
           ", \"err\": " + json_number(ev.err) +
           ", \"order\": " + std::to_string(ev.order) +
           ", \"lane\": " + std::to_string(ev.lane) +
           ", \"tid\": " + std::to_string(ev.tid) +
           ", \"when_ns\": " + std::to_string(ev.when_ns) + "}";
  }
  out += first ? "]" : "\n  ]";
  out += "\n}\n";
  return out;
}

// -- minimal JSON validator --------------------------------------------------

namespace {

struct JsonParser {
  std::string_view s;
  std::size_t i = 0;

  bool eof() const { return i >= s.size(); }
  char peek() const { return s[i]; }
  void skip_ws() {
    while (!eof() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                      s[i] == '\r')) {
      ++i;
    }
  }
  bool lit(std::string_view word) {
    if (s.substr(i, word.size()) != word) {
      return false;
    }
    i += word.size();
    return true;
  }

  bool value() {
    skip_ws();
    if (eof()) {
      return false;
    }
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return lit("true");
      case 'f': return lit("false");
      case 'n': return lit("null");
      default: return number();
    }
  }

  bool object() {
    ++i;  // '{'
    skip_ws();
    if (!eof() && peek() == '}') {
      ++i;
      return true;
    }
    while (true) {
      skip_ws();
      if (eof() || peek() != '"' || !string()) {
        return false;
      }
      skip_ws();
      if (eof() || s[i] != ':') {
        return false;
      }
      ++i;
      if (!value()) {
        return false;
      }
      skip_ws();
      if (eof()) {
        return false;
      }
      if (peek() == ',') {
        ++i;
        continue;
      }
      if (peek() == '}') {
        ++i;
        return true;
      }
      return false;
    }
  }

  bool array() {
    ++i;  // '['
    skip_ws();
    if (!eof() && peek() == ']') {
      ++i;
      return true;
    }
    while (true) {
      if (!value()) {
        return false;
      }
      skip_ws();
      if (eof()) {
        return false;
      }
      if (peek() == ',') {
        ++i;
        continue;
      }
      if (peek() == ']') {
        ++i;
        return true;
      }
      return false;
    }
  }

  bool string() {
    ++i;  // opening quote
    while (!eof()) {
      const char c = s[i];
      if (c == '"') {
        ++i;
        return true;
      }
      if (c == '\\') {
        ++i;
        if (eof()) {
          return false;
        }
        const char e = s[i];
        if (e == 'u') {
          for (int k = 0; k < 4; ++k) {
            ++i;
            if (eof() || !std::isxdigit(static_cast<unsigned char>(s[i]))) {
              return false;
            }
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;
      }
      ++i;
    }
    return false;
  }

  bool number() {
    const std::size_t start = i;
    if (!eof() && peek() == '-') {
      ++i;
    }
    std::size_t digits = 0;
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
      ++i;
      ++digits;
    }
    if (digits == 0) {
      return false;
    }
    if (!eof() && peek() == '.') {
      ++i;
      digits = 0;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++i;
        ++digits;
      }
      if (digits == 0) {
        return false;
      }
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++i;
      if (!eof() && (peek() == '+' || peek() == '-')) {
        ++i;
      }
      digits = 0;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++i;
        ++digits;
      }
      if (digits == 0) {
        return false;
      }
    }
    return i > start;
  }
};

}  // namespace

bool validate_json(std::string_view text) {
  JsonParser p{text};
  if (!p.value()) {
    return false;
  }
  p.skip_ws();
  return p.eof();
}

bool write_file(const std::string& path, std::string_view content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return false;
  }
  out.write(content.data(),
            static_cast<std::streamsize>(content.size()));
  return static_cast<bool>(out);
}

}  // namespace omx::obs
