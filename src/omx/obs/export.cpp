#include "omx/obs/export.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>

namespace omx::obs {

namespace {

/// Formats a double the way JSON expects (no inf/nan, no locale).
std::string json_number(double v) {
  if (!std::isfinite(v)) {
    return "0";
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string format_text(const Snapshot& snap) {
  std::string out;
  char buf[160];
  if (!snap.counters.empty()) {
    out += "counters:\n";
    for (const auto& [name, v] : snap.counters) {
      std::snprintf(buf, sizeof buf, "  %-32s %llu\n", name.c_str(),
                    static_cast<unsigned long long>(v));
      out += buf;
    }
  }
  if (!snap.gauges.empty()) {
    out += "gauges:\n";
    for (const auto& [name, v] : snap.gauges) {
      std::snprintf(buf, sizeof buf, "  %-32s %.6g\n", name.c_str(), v);
      out += buf;
    }
  }
  for (const auto& h : snap.histograms) {
    std::snprintf(buf, sizeof buf,
                  "histogram %s: count=%llu sum=%.6g\n", h.name.c_str(),
                  static_cast<unsigned long long>(h.count), h.sum);
    out += buf;
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i < h.bounds.size()) {
        std::snprintf(buf, sizeof buf, "  le %-12.6g %llu\n", h.bounds[i],
                      static_cast<unsigned long long>(h.counts[i]));
      } else {
        std::snprintf(buf, sizeof buf, "  overflow     %llu\n",
                      static_cast<unsigned long long>(h.counts[i]));
      }
      out += buf;
    }
  }
  if (out.empty()) {
    out = "(no metrics registered)\n";
  }
  return out;
}

std::string metrics_json(const Snapshot& snap) {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : snap.counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": " + std::to_string(v);
  }
  out += first ? "}" : "\n  }";
  out += ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : snap.gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": " + json_number(v);
  }
  out += first ? "}" : "\n  }";
  out += ",\n  \"histograms\": {";
  first = true;
  for (const auto& h : snap.histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(h.name) + "\": {\"bounds\": [";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      out += (i ? ", " : "") + json_number(h.bounds[i]);
    }
    out += "], \"counts\": [";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      out += (i ? ", " : "") + std::to_string(h.counts[i]);
    }
    out += "], \"count\": " + std::to_string(h.count) +
           ", \"sum\": " + json_number(h.sum) + "}";
  }
  out += first ? "}" : "\n  }";
  out += "\n}\n";
  return out;
}

std::string chrome_trace_json(const TraceBuffer& buffer) {
  const auto events = buffer.events();
  const auto names = buffer.thread_names();
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  // Thread-name metadata events give each worker its labeled track.
  for (const auto& [tid, name] : names) {
    out += first ? "\n" : ",\n";
    first = false;
    out += " {\"ph\": \"M\", \"pid\": 1, \"tid\": " + std::to_string(tid) +
           ", \"name\": \"thread_name\", \"args\": {\"name\": \"" +
           json_escape(name) + "\"}}";
  }
  for (const TraceEvent& ev : events) {
    out += first ? "\n" : ",\n";
    first = false;
    // trace_event timestamps are microseconds; keep ns resolution via
    // fractional values (both chrome://tracing and Perfetto accept them).
    out += " {\"ph\": \"X\", \"pid\": 1, \"tid\": " + std::to_string(ev.tid) +
           ", \"name\": \"" + json_escape(ev.name) + "\", \"cat\": \"" +
           json_escape(ev.category) +
           "\", \"ts\": " + json_number(ev.start_ns / 1e3) +
           ", \"dur\": " + json_number(ev.dur_ns / 1e3) + "}";
  }
  out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

// -- minimal JSON validator --------------------------------------------------

namespace {

struct JsonParser {
  std::string_view s;
  std::size_t i = 0;

  bool eof() const { return i >= s.size(); }
  char peek() const { return s[i]; }
  void skip_ws() {
    while (!eof() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                      s[i] == '\r')) {
      ++i;
    }
  }
  bool lit(std::string_view word) {
    if (s.substr(i, word.size()) != word) {
      return false;
    }
    i += word.size();
    return true;
  }

  bool value() {
    skip_ws();
    if (eof()) {
      return false;
    }
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return lit("true");
      case 'f': return lit("false");
      case 'n': return lit("null");
      default: return number();
    }
  }

  bool object() {
    ++i;  // '{'
    skip_ws();
    if (!eof() && peek() == '}') {
      ++i;
      return true;
    }
    while (true) {
      skip_ws();
      if (eof() || peek() != '"' || !string()) {
        return false;
      }
      skip_ws();
      if (eof() || s[i] != ':') {
        return false;
      }
      ++i;
      if (!value()) {
        return false;
      }
      skip_ws();
      if (eof()) {
        return false;
      }
      if (peek() == ',') {
        ++i;
        continue;
      }
      if (peek() == '}') {
        ++i;
        return true;
      }
      return false;
    }
  }

  bool array() {
    ++i;  // '['
    skip_ws();
    if (!eof() && peek() == ']') {
      ++i;
      return true;
    }
    while (true) {
      if (!value()) {
        return false;
      }
      skip_ws();
      if (eof()) {
        return false;
      }
      if (peek() == ',') {
        ++i;
        continue;
      }
      if (peek() == ']') {
        ++i;
        return true;
      }
      return false;
    }
  }

  bool string() {
    ++i;  // opening quote
    while (!eof()) {
      const char c = s[i];
      if (c == '"') {
        ++i;
        return true;
      }
      if (c == '\\') {
        ++i;
        if (eof()) {
          return false;
        }
        const char e = s[i];
        if (e == 'u') {
          for (int k = 0; k < 4; ++k) {
            ++i;
            if (eof() || !std::isxdigit(static_cast<unsigned char>(s[i]))) {
              return false;
            }
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;
      }
      ++i;
    }
    return false;
  }

  bool number() {
    const std::size_t start = i;
    if (!eof() && peek() == '-') {
      ++i;
    }
    std::size_t digits = 0;
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
      ++i;
      ++digits;
    }
    if (digits == 0) {
      return false;
    }
    if (!eof() && peek() == '.') {
      ++i;
      digits = 0;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++i;
        ++digits;
      }
      if (digits == 0) {
        return false;
      }
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++i;
      if (!eof() && (peek() == '+' || peek() == '-')) {
        ++i;
      }
      digits = 0;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++i;
        ++digits;
      }
      if (digits == 0) {
        return false;
      }
    }
    return i > start;
  }
};

}  // namespace

bool validate_json(std::string_view text) {
  JsonParser p{text};
  if (!p.value()) {
    return false;
  }
  p.skip_ws();
  return p.eof();
}

bool write_file(const std::string& path, std::string_view content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return false;
  }
  out.write(content.data(),
            static_cast<std::streamsize>(content.size()));
  return static_cast<bool>(out);
}

}  // namespace omx::obs
