// Phase/span tracing: nested timed regions with thread identity, suitable
// for Chrome trace_event ("X" complete events) export — per-worker RHS
// task timelines, supervisor scatter/gather, compile pipeline phases.
//
// Recording is off by default and costs one relaxed load per span while
// off; TraceBuffer::start() (or the OMX_OBS_TRACE=1 environment variable)
// turns it on. Span construction while a trace is active captures the
// start time; destruction appends one event under a mutex — acceptable
// because the spans traced here (tasks, phases, messages) are far coarser
// than a mutex acquisition.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace omx::obs {

struct TraceEvent {
  std::string name;
  const char* category = "omx";  // must be a string literal
  std::uint32_t tid = 0;
  std::int64_t start_ns = 0;  // since the buffer's epoch
  std::int64_t dur_ns = 0;
};

/// One sample on a named counter track ("C" events in the Chrome trace:
/// worker utilization, queue depths — anything plotted over time).
struct CounterSample {
  std::string track;   // e.g. "util/worker-3"
  std::int64_t at_ns = 0;
  double value = 0.0;
};

class TraceBuffer {
 public:
  /// Buffer all built-in instrumentation records into. Auto-started when
  /// OMX_OBS_TRACE is set to anything but "0".
  static TraceBuffer& global();

  TraceBuffer();
  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  /// Clears previous events and begins recording (resets the epoch).
  void start();
  void stop();
  bool active() const { return active_.load(std::memory_order_relaxed); }

  /// Nanoseconds since the epoch (steady clock).
  std::int64_t now_ns() const;

  void record(std::string name, const char* category, std::int64_t start_ns,
              std::int64_t dur_ns);

  /// Appends one sample to a counter track (no-op while inactive).
  void record_counter(std::string track, std::int64_t at_ns, double value);

  /// Small dense id for the calling thread (assigned on first use).
  static std::uint32_t thread_id();
  /// Names the calling thread's track in exported traces.
  void set_thread_name(std::string name);
  /// Names the process row in exported traces.
  void set_process_name(std::string name);

  std::vector<TraceEvent> events() const;
  std::vector<CounterSample> counter_samples() const;
  std::map<std::uint32_t, std::string> thread_names() const;
  std::string process_name() const;

 private:
  std::atomic<bool> active_{false};
  // steady_clock reading at start(). Atomic: start() can race worker
  // threads reading the epoch through now_ns() (found by TSan).
  std::atomic<std::int64_t> epoch_ns_{0};
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::vector<CounterSample> counter_samples_;
  std::map<std::uint32_t, std::string> thread_names_;
  std::string process_name_;
};

/// RAII span recorded into TraceBuffer::global(). A span whose buffer is
/// inactive at construction records nothing, even if a trace starts
/// before it closes (and vice versa: spans open across stop() are kept).
class Span {
 public:
  Span(std::string_view name, const char* category = "omx")
      : live_(TraceBuffer::global().active()) {
    if (live_) {
      name_ = name;
      category_ = category;
      start_ns_ = TraceBuffer::global().now_ns();
    }
  }
  ~Span() { close(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Ends the span early (idempotent).
  void close() {
    if (live_) {
      live_ = false;
      TraceBuffer& tb = TraceBuffer::global();
      tb.record(std::move(name_), category_,  start_ns_,
                tb.now_ns() - start_ns_);
    }
  }

 private:
  bool live_;
  std::string name_;
  const char* category_ = "omx";
  std::int64_t start_ns_ = 0;
};

}  // namespace omx::obs
