// Solver flight recorder: a per-step structured event log for the ODE
// drivers — step accepted/rejected with (h, order, error norm), Jacobian
// evaluate/factorize/reuse decisions, Newton failures, Adams<->BDF method
// switches, and ensemble lane pack/retire/refill — cheap enough to leave
// compiled into every solver.
//
// Design rules (mirroring registry.hpp):
//  * Recording is gated on one relaxed flag load; with OMX_OBS_RECORDER=0
//    (or unset) a call site pays a load + branch and nothing else.
//  * Each recording thread owns a bounded ring that only it writes:
//    record() is a plain slot store plus one release store of the head
//    index — lock-free, wait-free, and it NEVER blocks. A full ring drops
//    the event and counts it (Recorder::dropped()); the first `capacity`
//    events per thread are kept, so the run's startup — where stiff
//    diagnosis usually lives — always survives.
//  * events() merges every thread's ring into one time-sorted log. It may
//    run concurrently with writers (it sees a prefix of each ring);
//    start() must not race record() — callers quiesce solvers first.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace omx::obs {

enum class StepEventKind : std::uint8_t {
  kStepAccepted = 0,
  kStepRejected,   // error-controller rejection; err carries the norm
  kNewtonFail,     // corrector failed to converge (step will shrink)
  kJacEvaluate,    // fresh Jacobian values computed
  kJacFactorize,   // iteration matrix M = I - beta*h*J (re)factorized
  kJacReuse,       // beta*h changed, Jacobian values reused (LSODA-style)
  kMethodSwitch,   // auto_switch changed integrators; method = target
  kLanePack,       // ensemble: scenario seeded into an empty/new batch
  kLaneRefill,     // ensemble: scenario joined a batch mid-flight
  kLaneRetire,     // ensemble: scenario finished and left its batch
  kLaneCancel,     // ensemble: scenario abandoned by a cancellation flag
  kEvent,          // zero-crossing event fired; order = event index,
                   // t = localized event time
  kLaneEventStop,  // ensemble: scenario retired early by a terminal event
};

/// Stable lowercase identifier ("step_accepted", ...) for exporters.
const char* to_string(StepEventKind kind);

/// One recorded decision. POD; `method` must be a string literal (it is
/// stored by pointer, like TraceEvent::category).
struct StepEvent {
  StepEventKind kind = StepEventKind::kStepAccepted;
  std::uint16_t order = 0;    // method order in play (0 when n/a)
  std::uint32_t tid = 0;      // TraceBuffer::thread_id(); filled by record()
  std::uint32_t lane = 0;     // ensemble scenario id (0 when n/a)
  const char* method = "";    // solver name literal ("bdf", "adams", ...)
  std::int64_t when_ns = 0;   // since recorder epoch; filled by record()
  double t = 0.0;             // simulation time
  double h = 0.0;             // step size (0 when n/a)
  double err = 0.0;           // scaled error norm / auxiliary value
};

class Recorder {
 public:
  /// The process-wide recorder all solver instrumentation targets.
  /// Auto-started when OMX_OBS_RECORDER is set to anything but "0";
  /// per-thread ring capacity from OMX_OBS_RECORDER_CAP (default 65536).
  static Recorder& global();

  explicit Recorder(std::size_t capacity_per_thread = 65536);
  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Discards previous events (fresh rings; in-flight writers finish
  /// into retired rings that are never exported), resets the epoch and
  /// drop counts, and begins recording. Must not race record().
  void start();
  void stop();

  /// Nanoseconds since the epoch (steady clock).
  std::int64_t now_ns() const;

  /// Appends `ev` to the calling thread's ring, filling tid/when_ns.
  /// Wait-free; a full ring counts a drop instead of blocking.
  void record(StepEvent ev);

  std::size_t capacity_per_thread() const { return capacity_; }
  /// Events dropped to full rings since the last start().
  std::uint64_t dropped() const;
  /// Merged snapshot of every thread's ring, sorted by when_ns. Safe
  /// concurrently with writers (sees a prefix of each ring).
  std::vector<StepEvent> events() const;

 private:
  struct Ring;
  Ring& ring_for_this_thread();

  const std::size_t capacity_;
  std::atomic<bool> enabled_{false};
  std::atomic<std::int64_t> epoch_ns_{0};
  /// Drawn from a process-wide counter at construction and by each
  /// start(); invalidates the per-thread cached Ring* (globally unique,
  /// so a Recorder at a recycled address cannot match a stale cache).
  std::atomic<std::uint64_t> generation_{0};
  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<Ring>> rings_;  // guarded by mutex_
};

/// Call-site helpers: record into Recorder::global() when it is enabled
/// (one relaxed load + branch otherwise). `method` must be a literal.

inline void record_step(StepEventKind kind, const char* method,
                        std::uint16_t order, double t, double h,
                        double err) {
  Recorder& r = Recorder::global();
  if (r.enabled()) {
    StepEvent ev;
    ev.kind = kind;
    ev.method = method;
    ev.order = order;
    ev.t = t;
    ev.h = h;
    ev.err = err;
    r.record(ev);
  }
}

inline void record_jac(StepEventKind kind, const char* method, double t,
                       double h, double seconds = 0.0) {
  Recorder& r = Recorder::global();
  if (r.enabled()) {
    StepEvent ev;
    ev.kind = kind;
    ev.method = method;
    ev.t = t;
    ev.h = h;
    ev.err = seconds;
    r.record(ev);
  }
}

inline void record_lane(StepEventKind kind, const char* method,
                        std::uint32_t scenario, double t) {
  Recorder& r = Recorder::global();
  if (r.enabled()) {
    StepEvent ev;
    ev.kind = kind;
    ev.method = method;
    ev.lane = scenario;
    ev.t = t;
    r.record(ev);
  }
}

}  // namespace omx::obs
