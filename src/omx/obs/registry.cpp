#include "omx/obs/registry.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "omx/support/config.hpp"
#include "omx/support/diagnostics.hpp"

namespace omx::obs {

namespace detail {

namespace {
bool env_enabled() {
  return config::get_bool("OMX_OBS_ENABLED", true);
}
}  // namespace

std::atomic<bool>& enabled_flag() {
  // Meyers singleton: safe against static-initialization order, cheap
  // after the first call.
  static std::atomic<bool> flag{env_enabled()};
  return flag;
}

}  // namespace detail

void set_enabled(bool on) {
  detail::enabled_flag().store(on, std::memory_order_relaxed);
}

std::vector<double> log_spaced_bounds(double lo, double hi) {
  OMX_REQUIRE(lo > 0.0 && hi > lo,
              "log_spaced_bounds needs 0 < lo < hi");
  // Walk {1, 2, 5} * 10^k from the decade at or below `lo`, keeping the
  // first edge >= lo through the first edge >= hi.
  static constexpr double kMantissas[] = {1.0, 2.0, 5.0};
  int k = static_cast<int>(std::floor(std::log10(lo)));
  std::vector<double> bounds;
  for (;; ++k) {
    for (double m : kMantissas) {
      const double edge = m * std::pow(10.0, k);
      if (edge < lo * (1.0 - 1e-12)) {
        continue;
      }
      bounds.push_back(edge);
      if (edge >= hi * (1.0 - 1e-12)) {
        return bounds;
      }
    }
  }
}

double histogram_quantile(const std::vector<double>& bounds,
                          const std::vector<std::uint64_t>& counts,
                          double q) {
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) {
    total += c;
  }
  if (total == 0 || bounds.empty()) {
    return 0.0;
  }
  q = std::min(1.0, std::max(0.0, q));
  const double rank = q * static_cast<double>(total);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double next = cum + static_cast<double>(counts[i]);
    if (next >= rank && counts[i] > 0) {
      if (i >= bounds.size()) {
        return bounds.back();  // overflow bucket: clamp to the last edge
      }
      const double lower = i == 0 ? 0.0 : bounds[i - 1];
      const double frac =
          (rank - cum) / static_cast<double>(counts[i]);
      return lower + frac * (bounds[i] - lower);
    }
    cum = next;
  }
  return bounds.back();
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      buckets_(new std::atomic<std::uint64_t>[bounds_.size() + 1]) {
  OMX_REQUIRE(!bounds_.empty(), "histogram needs at least one bound");
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    OMX_REQUIRE(bounds_[i - 1] < bounds_[i],
                "histogram bounds must be strictly increasing");
  }
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::observe(double v) {
  if (!enabled()) {
    return;
  }
  std::size_t b = bounds_.size();  // overflow bucket
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (v <= bounds_[i]) {
      b = i;
      break;
    }
  }
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // fetch_add on atomic<double> is C++20; relaxed is fine — the sum is
  // only read from snapshots.
  sum_.fetch_add(v, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

Registry& Registry::global() {
  static Registry r;
  return r;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.try_emplace(std::string(name)).first;
  }
  return it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.try_emplace(std::string(name)).first;
  }
  return it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .try_emplace(std::string(name), std::move(upper_bounds))
             .first;
  }
  return it->second;
}

Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot s;
  s.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    s.counters.emplace_back(name, c.value());
  }
  s.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    s.gauges.emplace_back(name, g.value());
  }
  s.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    Snapshot::Hist hs;
    hs.name = name;
    hs.bounds = h.bounds();
    hs.counts = h.counts();
    hs.count = h.count();
    hs.sum = h.sum();
    s.histograms.push_back(std::move(hs));
  }
  return s;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) {
    c.reset();
  }
  for (auto& [name, g] : gauges_) {
    g.reset();
  }
  for (auto& [name, h] : histograms_) {
    h.reset();
  }
}

}  // namespace omx::obs
