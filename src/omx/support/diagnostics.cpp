#include "omx/support/diagnostics.hpp"

#include <sstream>

namespace omx {

namespace {

std::string format_message(const std::string& message, SourceLoc loc) {
  if (!loc.valid()) {
    return message;
  }
  std::ostringstream os;
  os << "line " << loc.line << ":" << loc.column << ": " << message;
  return os.str();
}

}  // namespace

Error::Error(std::string message, SourceLoc loc)
    : std::runtime_error(format_message(message, loc)), loc_(loc) {}

void raise_bug(const char* cond, const char* file, int line, const char* msg) {
  std::ostringstream os;
  os << "internal error: " << msg << " [" << cond << " failed at " << file
     << ":" << line << "]";
  throw Bug(os.str());
}

}  // namespace omx
