// Minimal JSON reader for the service protocol (svc/protocol.hpp).
//
// The daemon's control payloads are small (~hundreds of bytes), arrive
// from untrusted clients, and need nothing beyond the six JSON types —
// so this is a strict recursive-descent parser over std::string_view
// with a hard depth cap, not a general-purpose JSON library. Output is
// composed by hand with obs::json_escape, as everywhere else in the
// repo; only parsing lives here.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace omx::support::json {

class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::map<std::string, Value> object;

  bool is_null() const { return type == Type::kNull; }
  bool is_object() const { return type == Type::kObject; }

  /// Object member lookup; nullptr when absent or not an object.
  const Value* find(const std::string& key) const;

  /// Typed accessors with defaults — the idiom for optional protocol
  /// fields: req.get_number("workers", 1.0). Throws omx::Error when the
  /// member exists but has the wrong type (a malformed request, not a
  /// missing option).
  double get_number(const std::string& key, double fallback) const;
  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;
};

/// Parses one JSON document; throws omx::Error on any syntax error,
/// trailing garbage, or nesting deeper than 32 levels.
Value parse(std::string_view text);

}  // namespace omx::support::json
