// String interner: maps strings to dense 32-bit symbol ids and back.
//
// Every name that flows through the system (model variables, parameters,
// class members, generated temporaries) is interned once so that the
// symbolic layers can compare and hash names as integers.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace omx {

/// Dense id for an interned string. Ids are assigned consecutively from 0.
using SymbolId = std::uint32_t;

inline constexpr SymbolId kInvalidSymbol = 0xffffffffu;

/// Append-only string table with O(1) lookup in both directions.
class Interner {
 public:
  /// Interns `s`, returning the existing id if it was seen before.
  SymbolId intern(std::string_view s);

  /// Returns the string for `id`. Precondition: id was returned by intern().
  const std::string& name(SymbolId id) const;

  /// Looks up an existing symbol without creating it.
  /// Returns kInvalidSymbol if `s` was never interned.
  SymbolId find(std::string_view s) const;

  std::size_t size() const { return names_.size(); }

 private:
  // deque: element addresses are stable under push_back, so the
  // string_view keys in index_ stay valid (including SSO buffers).
  std::deque<std::string> names_;
  std::unordered_map<std::string_view, SymbolId> index_;
};

}  // namespace omx
