// Monotonic stopwatch used by the scheduler (measured task times) and the
// benchmark harnesses.
#pragma once

#include <chrono>
#include <cstdint>

namespace omx {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in nanoseconds.
  std::int64_t nanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Busy-waits for `seconds`. Used by the simulated interconnect: sleeping is
/// far too coarse at microsecond scale, so occupancy is modeled by spinning.
inline void spin_for(double seconds) {
  if (seconds <= 0.0) {
    return;
  }
  const auto until = std::chrono::steady_clock::now() +
                     std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::duration<double>(seconds));
  while (std::chrono::steady_clock::now() < until) {
    // spin
  }
}

}  // namespace omx
