#include "omx/support/interner.hpp"

#include "omx/support/diagnostics.hpp"

namespace omx {

SymbolId Interner::intern(std::string_view s) {
  if (auto it = index_.find(s); it != index_.end()) {
    return it->second;
  }
  const std::string& stored = names_.emplace_back(s);
  const SymbolId id = static_cast<SymbolId>(names_.size() - 1);
  index_.emplace(std::string_view(stored), id);
  return id;
}

const std::string& Interner::name(SymbolId id) const {
  OMX_REQUIRE(id < names_.size(), "symbol id out of range");
  return names_[id];
}

SymbolId Interner::find(std::string_view s) const {
  auto it = index_.find(s);
  return it == index_.end() ? kInvalidSymbol : it->second;
}

}  // namespace omx
