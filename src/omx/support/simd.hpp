// Data-level parallelism support shared by the batch interpreter, the
// ensemble engine and the exec backends.
//
// Two things live here:
//
//  * OMX_PRAGMA_SIMD — the vectorization hint placed on SoA lane loops.
//    It expands to `#pragma omp simd` when the compiler honors OpenMP
//    SIMD pragmas (the tree builds with -fopenmp-simd: pragma-only mode,
//    no OpenMP runtime). Lane loops are elementwise over disjoint rows,
//    so the pragma never changes per-lane arithmetic — it only changes
//    how lanes are packed into hardware vectors. The pragma deliberately
//    carries no `aligned` clause: row pointers (base + r*nb doubles) are
//    only 64-byte aligned when nb is a multiple of kSimdDoubles, and
//    tail-block compaction in the ensemble engine shrinks nb arbitrarily.
//
//  * aligned_vector<T> — a std::vector whose storage is 64-byte aligned,
//    used at every SoA allocation site (vm::BatchWorkspace, the interp
//    kernel workspaces, the ensemble steppers) so that full lane blocks
//    start on a cache-line/vector-register boundary.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

#if defined(_OPENMP) || defined(__GNUC__) || defined(__clang__)
#define OMX_PRAGMA_SIMD _Pragma("omp simd")
#else
#define OMX_PRAGMA_SIMD
#endif

namespace omx::simd {

/// Alignment of every SoA lane-block allocation: one AVX-512 vector /
/// one cache line.
inline constexpr std::size_t kAlign = 64;

/// Doubles per kAlign-sized block; SoA row offsets that are a multiple
/// of this keep every row aligned.
inline constexpr std::size_t kAlignDoubles = kAlign / sizeof(double);

/// Number of double lanes per hardware vector on the *running* host,
/// probed at runtime where possible. The native backend compiles its
/// kernels with -march=native, so the host CPU's width — not the
/// (typically baseline) ISA this binary was built for — is what the
/// lane loops actually use. Drives ensemble batch-width rounding (see
/// EnsembleSpec::max_batch clamping) and the bench/gate capability
/// gauges.
inline std::size_t lane_width() {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  static const std::size_t w = []() -> std::size_t {
    if (__builtin_cpu_supports("avx512f")) {
      return 8;
    }
    if (__builtin_cpu_supports("avx")) {
      return 4;
    }
    return 2;  // SSE2 is baseline x86-64
  }();
  return w;
#elif defined(__AVX512F__)
  return 8;
#elif defined(__AVX__)
  return 4;
#elif defined(__SSE2__) || defined(__aarch64__)
  return 2;
#else
  return 1;
#endif
}

/// Rounds `n` up to a multiple of `m` (m > 0).
inline constexpr std::size_t round_up(std::size_t n, std::size_t m) {
  return ((n + m - 1) / m) * m;
}

/// Minimal C++17 aligned allocator (64-byte) for vector storage.
template <typename T>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    if (n == 0) {
      return nullptr;
    }
    void* p = ::operator new(n * sizeof(T), std::align_val_t{kAlign});
    return static_cast<T*>(p);
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{kAlign});
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
  template <typename U>
  bool operator!=(const AlignedAllocator<U>&) const noexcept {
    return false;
  }
};

/// 64-byte-aligned std::vector, drop-in for SoA lane buffers.
template <typename T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

}  // namespace omx::simd
