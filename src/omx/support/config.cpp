#include "omx/support/config.hpp"

#include <cstdlib>
#include <sstream>
#include <string_view>

#include "omx/support/diagnostics.hpp"

namespace omx::config {

namespace {

// One row per knob. Adding an env read anywhere in the tree means adding
// a row here — the getters refuse undeclared names.
const std::vector<Knob>& table() {
  static const std::vector<Knob> t = {
      {"OMX_OBS_ENABLED", "bool", "true",
       "metrics registry on/off (counters, gauges, histograms)"},
      {"OMX_OBS_TRACE", "bool", "false",
       "start the global trace buffer at process start"},
      {"OMX_OBS_SAMPLE_HZ", "double", "0",
       "worker-pool utilization sampler rate (0 = off)"},
      {"OMX_OBS_RECORDER", "bool", "false",
       "arm the solver flight recorder at process start"},
      {"OMX_OBS_RECORDER_CAP", "int", "65536",
       "flight-recorder per-thread ring capacity (events)"},
      {"OMX_POOL_STEALING", "bool", "false",
       "default for WorkerPool intra-call work stealing"},
      {"OMX_NATIVE_CXX", "string", "auto-detect",
       "host C++ compiler for the native backend"},
      {"OMX_NATIVE_CACHE_DIR", "string", "<tmp>/omx-native-cache",
       "shared-object cache directory for compiled kernels"},
      {"OMX_NATIVE_DISABLE", "bool", "false",
       "force the interpreter fallback (skip native compilation)"},
      {"OMX_NATIVE_MARCH", "string", "native",
       "-march= value for native kernels (off/none disables; probed, "
       "falls back to the baseline ISA if unsupported)"},
      {"OMX_NATIVE_VECWIDTH", "string", "512",
       "-mprefer-vector-width= for native kernels (off/none disables; "
       "probed; lanes are value-identical at any width)"},
      {"OMX_SPARSE_FORCE", "bool", "false",
       "force the sparse stiff backend regardless of fill ratio"},
      {"OMX_SPARSE_DISABLE", "bool", "false",
       "force the dense stiff backend regardless of fill ratio"},
      {"OMX_SPARSE_ORDERING", "string", "natural",
       "sparse LU ordering: natural (bitwise == dense) or rcm"},
      {"OMX_TUNE", "string", "off",
       "auto-tuner mode: off, calibrate (record only) or on (record and "
       "pick ensemble/stiff configuration from the fitted cost models)"},
      {"OMX_TUNE_EXPORT", "string", "",
       "write the fitted cost models (coefficients + residuals) to this "
       "path at process exit"},
      {"OMX_TUNE_DRIFT", "double", "0.5",
       "relative prediction error above which a recorded run counts as "
       "model drift and forces a refit"},
      {"OMX_UPDATE_GOLDEN", "bool", "false",
       "tests only: rewrite the golden codegen snapshots instead of "
       "comparing"},
  };
  return t;
}

const Knob& lookup(const char* name) {
  for (const Knob& k : table()) {
    if (std::string_view(k.name) == name) {
      return k;
    }
  }
  const std::string err = std::string("undeclared config knob: ") + name +
                          " (add it to omx/support/config.cpp)";
  OMX_REQUIRE(false, err.c_str());
}

const char* raw(const char* name) {
  lookup(name);  // undeclared names are a programming error
  const char* v = std::getenv(name);
  return (v != nullptr && v[0] != '\0') ? v : nullptr;
}

}  // namespace

const std::vector<Knob>& knobs() { return table(); }

bool is_set(const char* name) { return raw(name) != nullptr; }

bool get_bool(const char* name, bool def) {
  const char* v = raw(name);
  if (v == nullptr) {
    return def;
  }
  const std::string_view s(v);
  return !(s == "0" || s == "false" || s == "off" || s == "no");
}

long get_int(const char* name, long def) {
  const char* v = raw(name);
  if (v == nullptr) {
    return def;
  }
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  return (end == v) ? def : parsed;
}

double get_double(const char* name, double def) {
  const char* v = raw(name);
  if (v == nullptr) {
    return def;
  }
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return (end == v) ? def : parsed;
}

std::string get_string(const char* name, const std::string& def) {
  const char* v = raw(name);
  return v == nullptr ? def : std::string(v);
}

std::string describe() {
  std::ostringstream os;
  os << "OMX environment knobs (set in the environment; empty = unset):\n";
  for (const Knob& k : table()) {
    os << "  " << k.name << " (" << k.type << ", default " << k.default_text
       << ")\n      " << k.help << "\n";
    const char* v = std::getenv(k.name);
    if (v != nullptr) {
      os << "      currently: \"" << v << "\"\n";
    }
  }
  return os.str();
}

}  // namespace omx::config
