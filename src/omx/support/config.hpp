// Central registry for every OMX_* environment knob.
//
// Subsystems used to call std::getenv ad hoc, each with its own parsing
// quirks; this helper gives them one place to (a) declare the knob with
// a type, default and help line, and (b) read it through typed getters
// with uniform parsing:
//
//   bool:   unset or empty -> default; "0"/"false"/"off"/"no" -> false;
//           anything else -> true
//   int/double: unset, empty or unparseable -> default
//   string: unset or empty -> default
//
// Getters OMX_REQUIRE the knob to be declared in the registry table
// (config.cpp), so a new env read can't bypass the registry silently.
// `describe()` renders a --help-style dump (name, type, default, help,
// current value) used by `trace_explorer --config`.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace omx::config {

struct Knob {
  const char* name;          // e.g. "OMX_NATIVE_CXX"
  const char* type;          // "bool" | "int" | "double" | "string"
  const char* default_text;  // human-readable default
  const char* help;          // one-line description
};

/// The full knob table, in display order.
const std::vector<Knob>& knobs();

/// True when the variable is set to a non-empty value.
bool is_set(const char* name);

bool get_bool(const char* name, bool def);
long get_int(const char* name, long def);
double get_double(const char* name, double def);
std::string get_string(const char* name, const std::string& def);

/// --help-style dump of every knob with its current value.
std::string describe();

}  // namespace omx::config
