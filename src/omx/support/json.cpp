#include "omx/support/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "omx/support/diagnostics.hpp"

namespace omx::support::json {

namespace {

constexpr int kMaxDepth = 32;

class Parser {
 public:
  explicit Parser(std::string_view text) : s_(text) {}

  Value run() {
    Value v = parse_value(0);
    skip_ws();
    if (pos_ != s_.size()) {
      fail("trailing characters after document");
    }
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw omx::Error("json: " + what + " at offset " +
                     std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) {
      fail("unexpected end of input");
    }
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_word(std::string_view w) {
    if (s_.substr(pos_, w.size()) == w) {
      pos_ += w.size();
      return true;
    }
    return false;
  }

  Value parse_value(int depth) {
    if (depth > kMaxDepth) {
      fail("nesting too deep");
    }
    skip_ws();
    Value v;
    switch (peek()) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"':
        v.type = Value::Type::kString;
        v.string = parse_string();
        return v;
      case 't':
        if (!consume_word("true")) {
          fail("invalid literal");
        }
        v.type = Value::Type::kBool;
        v.boolean = true;
        return v;
      case 'f':
        if (!consume_word("false")) {
          fail("invalid literal");
        }
        v.type = Value::Type::kBool;
        v.boolean = false;
        return v;
      case 'n':
        if (!consume_word("null")) {
          fail("invalid literal");
        }
        return v;
      default: return parse_number();
    }
  }

  Value parse_object(int depth) {
    Value v;
    v.type = Value::Type::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object[std::move(key)] = parse_value(depth + 1);
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value parse_array(int depth) {
    Value v;
    v.type = Value::Type::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(parse_value(depth + 1));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= s_.size()) {
        fail("unterminated string");
      }
      const char c = s_[pos_++];
      if (c == '"') {
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) {
        fail("unterminated escape");
      }
      const char e = s_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) {
            fail("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("invalid \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // needed by the protocol; a lone surrogate encodes as-is).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("invalid escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') {
      ++pos_;
    }
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      fail("invalid value");
    }
    const std::string text(s_.substr(start, pos_ - start));
    // RFC 8259: no leading zeros ("01" is two tokens, i.e. malformed).
    const std::size_t digits = text[0] == '-' ? 1 : 0;
    if (text.size() > digits + 1 && text[digits] == '0' &&
        std::isdigit(static_cast<unsigned char>(text[digits + 1])) != 0) {
      fail("leading zero in number");
    }
    char* end = nullptr;
    const double d = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size() || !std::isfinite(d)) {
      fail("invalid number");
    }
    Value v;
    v.type = Value::Type::kNumber;
    v.number = d;
    return v;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

const Value* Value::find(const std::string& key) const {
  if (type != Type::kObject) {
    return nullptr;
  }
  const auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

double Value::get_number(const std::string& key, double fallback) const {
  const Value* v = find(key);
  if (v == nullptr || v->is_null()) {
    return fallback;
  }
  if (v->type != Type::kNumber) {
    throw omx::Error("json: member '" + key + "' is not a number");
  }
  return v->number;
}

std::string Value::get_string(const std::string& key,
                              const std::string& fallback) const {
  const Value* v = find(key);
  if (v == nullptr || v->is_null()) {
    return fallback;
  }
  if (v->type != Type::kString) {
    throw omx::Error("json: member '" + key + "' is not a string");
  }
  return v->string;
}

bool Value::get_bool(const std::string& key, bool fallback) const {
  const Value* v = find(key);
  if (v == nullptr || v->is_null()) {
    return fallback;
  }
  if (v->type != Type::kBool) {
    throw omx::Error("json: member '" + key + "' is not a boolean");
  }
  return v->boolean;
}

Value parse(std::string_view text) { return Parser(text).run(); }

}  // namespace omx::support::json
