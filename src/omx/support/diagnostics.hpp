// Error reporting used across the toolchain.
//
// Two categories:
//  * OMX_REQUIRE  — programming-contract violations (throws omx::Bug).
//  * omx::Error   — user-facing diagnostics (bad model text, singular
//                   Jacobian, unsolvable algebraic loop, ...) carrying an
//                   optional source location.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace omx {

/// Position in model source text, 1-based. line==0 means "no location".
struct SourceLoc {
  std::uint32_t line = 0;
  std::uint32_t column = 0;

  bool valid() const { return line != 0; }
};

/// User-facing diagnostic (model errors, numerical failures).
class Error : public std::runtime_error {
 public:
  explicit Error(std::string message, SourceLoc loc = {});

  const SourceLoc& where() const { return loc_; }

 private:
  SourceLoc loc_;
};

/// Internal invariant violation.
class Bug : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

[[noreturn]] void raise_bug(const char* cond, const char* file, int line,
                            const char* msg);

}  // namespace omx

#define OMX_REQUIRE(cond, msg)                              \
  do {                                                      \
    if (!(cond)) {                                          \
      ::omx::raise_bug(#cond, __FILE__, __LINE__, (msg));   \
    }                                                       \
  } while (false)
