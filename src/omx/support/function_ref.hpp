// FunctionRef: a non-owning, non-allocating callable reference — two
// pointers (context + trampoline), trivially copyable, one indirect call
// per invocation. It replaces std::function on the solver hot path, where
// the RHS may be invoked millions of times per solve and the generated
// kernels are long-lived objects owned elsewhere (ode::Problem keeps an
// optional keep-alive for callables bound by value; see Problem::set_rhs).
//
// Lifetime contract: a FunctionRef never owns its target. Binding is
// restricted to lvalues (plus plain function pointers and capture-less
// lambdas, which decay to function pointers and carry no state), so the
// classic dangling-temporary footgun of LLVM's function_ref does not
// compile here:
//
//   RhsFn f = [k](..){...};          // error: rvalue lambda with captures
//   auto g = [k](..){...}; RhsFn f = g;  // ok: g outlives f
//   RhsFn f = [](..){...};           // ok: stateless, stored by value
#pragma once

#include <memory>
#include <type_traits>
#include <utility>

namespace omx::support {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  constexpr FunctionRef() noexcept = default;
  constexpr FunctionRef(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)

  /// Plain function pointer (also reached by capture-less lambdas through
  /// their implicit conversion). The pointer value itself is stored, so no
  /// lifetime is involved.
  FunctionRef(R (*fn)(Args...)) noexcept {  // NOLINT(runtime/explicit)
    if (fn != nullptr) {
      // Storing a function pointer in a void* is not blessed by ISO C++
      // but is guaranteed on every POSIX platform (dlsym relies on it).
      ctx_ = reinterpret_cast<void*>(fn);
      call_ = [](void* ctx, Args... args) -> R {
        return reinterpret_cast<R (*)(Args...)>(ctx)(
            std::forward<Args>(args)...);
      };
    }
  }

  /// Any other callable, by lvalue reference only: the referee must
  /// outlive every invocation through this FunctionRef.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cv_t<F>, FunctionRef> &&
                !std::is_pointer_v<std::remove_cv_t<F>> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  FunctionRef(F& f) noexcept  // NOLINT(runtime/explicit)
      : ctx_(const_cast<void*>(static_cast<const void*>(std::addressof(f)))),
        call_([](void* ctx, Args... args) -> R {
          return (*static_cast<F*>(ctx))(std::forward<Args>(args)...);
        }) {}

  FunctionRef& operator=(std::nullptr_t) noexcept {
    ctx_ = nullptr;
    call_ = nullptr;
    return *this;
  }

  R operator()(Args... args) const {
    return call_(ctx_, std::forward<Args>(args)...);
  }

  explicit operator bool() const noexcept { return call_ != nullptr; }

  friend bool operator==(const FunctionRef& f, std::nullptr_t) noexcept {
    return f.call_ == nullptr;
  }
  friend bool operator!=(const FunctionRef& f, std::nullptr_t) noexcept {
    return f.call_ != nullptr;
  }

 private:
  void* ctx_ = nullptr;
  R (*call_)(void*, Args...) = nullptr;
};

}  // namespace omx::support
