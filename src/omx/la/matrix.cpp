#include "omx/la/matrix.hpp"

#include <cmath>

#include "omx/support/diagnostics.hpp"

namespace omx::la {

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    m(i, i) = 1.0;
  }
  return m;
}

void Matrix::axpby(double a, double b, const Matrix& other) {
  OMX_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_, "shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] = a * data_[i] + b * other.data_[i];
  }
}

double Matrix::max_norm() const {
  double m = 0.0;
  for (double v : data_) {
    m = std::max(m, std::fabs(v));
  }
  return m;
}

void Matrix::multiply(std::span<const double> x, std::span<double> y) const {
  OMX_REQUIRE(x.size() == cols_ && y.size() == rows_, "shape mismatch");
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const double* row = &data_[r * cols_];
    for (std::size_t c = 0; c < cols_; ++c) {
      acc += row[c] * x[c];
    }
    y[r] = acc;
  }
}

double dot(std::span<const double> a, std::span<const double> b) {
  OMX_REQUIRE(a.size() == b.size(), "size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += a[i] * b[i];
  }
  return acc;
}

double norm2(std::span<const double> a) { return std::sqrt(dot(a, a)); }

double norm_inf(std::span<const double> a) {
  double m = 0.0;
  for (double v : a) {
    m = std::max(m, std::fabs(v));
  }
  return m;
}

double wrms_norm(std::span<const double> v, std::span<const double> w) {
  OMX_REQUIRE(v.size() == w.size() && !v.empty(), "size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    const double q = v[i] / w[i];
    acc += q * q;
  }
  return std::sqrt(acc / static_cast<double>(v.size()));
}

}  // namespace omx::la
