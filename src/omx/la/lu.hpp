// LU factorization with partial pivoting and triangular solves.
// Substrate for the modified-Newton iteration inside the BDF solver
// (solving (I - h*beta*J) dx = -r each iteration).
#pragma once

#include <span>
#include <vector>

#include "omx/la/linear_solver.hpp"
#include "omx/la/matrix.hpp"

namespace omx::la {

/// In-place LU factorization of a square matrix, PA = LU.
class LuFactors final : public LinearSolver {
 public:
  /// Factorizes `a` (copied). Throws omx::Error on a singular pivot.
  explicit LuFactors(Matrix a);

  std::size_t size() const override { return lu_.rows(); }

  /// Solves A x = b; `x` may alias `b`.
  void solve(std::span<const double> b, std::span<double> x) const override;

  const char* kind() const override { return "dense_lu"; }
  std::size_t factor_nnz() const override { return lu_.rows() * lu_.cols(); }

  /// Reciprocal condition estimate via max-norm of pivots (cheap heuristic,
  /// good enough to detect near-singularity for Newton restarts).
  double pivot_growth() const { return pivot_min_ / pivot_max_; }

 private:
  Matrix lu_;
  std::vector<std::size_t> perm_;
  double pivot_min_ = 0.0;
  double pivot_max_ = 0.0;
};

}  // namespace omx::la
