// Sparse linear-algebra substrate for the stiff path: CSR sparsity
// patterns, distance-2 column coloring (compressed finite-difference
// Jacobians), a CSR value matrix, and a sparse LU factorization with
// partial pivoting behind the la::LinearSolver interface.
//
// Bitwise contract: with the default natural ordering, SparseLu performs
// exactly the same floating-point operations as the dense LuFactors on
// the same matrix — structural zeros are exact 0.0 in the dense path, so
// they can never win the strict-`>` pivot search, their row updates are
// numerical no-ops, and fill values are computed as `0.0 - m * u` just
// like the dense in-place update. The stiff solvers rely on this to keep
// dense-vs-sparse trajectories bit-for-bit identical. The RCM ordering
// (opt-in, OMX_SPARSE_ORDERING=rcm) trades that identity for reduced
// fill on patterns the natural order handles badly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "omx/la/linear_solver.hpp"
#include "omx/la/matrix.hpp"

namespace omx::la {

/// Structure-only CSR pattern (row_ptr/col_idx, columns sorted per row).
struct SparsityPattern {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<std::size_t> row_ptr;  // rows + 1 offsets into col_idx
  std::vector<std::size_t> col_idx;  // sorted within each row, no dupes

  static SparsityPattern dense(std::size_t n);
  static SparsityPattern from_dense_mask(
      const std::vector<std::vector<bool>>& mask);
  /// Builds from (row, col) pairs; duplicates are collapsed.
  static SparsityPattern from_triplets(
      std::size_t rows, std::size_t cols,
      std::vector<std::pair<std::size_t, std::size_t>> entries);

  std::size_t nnz() const { return col_idx.size(); }
  double fill_ratio() const;
  /// max(i - j) over stored entries with i > j (0 when none).
  std::size_t lower_bandwidth() const;
  /// max(j - i) over stored entries with j > i (0 when none).
  std::size_t upper_bandwidth() const;

  bool contains(std::size_t r, std::size_t c) const;
  /// Index into col_idx (and any aligned value array) or npos.
  std::size_t find(std::size_t r, std::size_t c) const;
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// Same pattern with every diagonal entry present (square only).
  SparsityPattern with_diagonal() const;

  bool operator==(const SparsityPattern&) const = default;
};

/// CSC companion of a pattern; csr_pos maps each column-major slot back
/// to its index in the CSR col_idx (and any value array aligned with it).
struct ColumnView {
  std::vector<std::size_t> col_ptr;  // cols + 1
  std::vector<std::size_t> row_idx;  // nnz
  std::vector<std::size_t> csr_pos;  // nnz
};

ColumnView columns(const SparsityPattern& p);

/// Greedy distance-2 coloring of the columns: two columns sharing any row
/// get different colors, so all columns of one color can be perturbed in
/// a single finite-difference RHS evaluation.
struct Coloring {
  std::vector<int> color;                         // per column
  int num_colors = 0;
  std::vector<std::vector<std::size_t>> groups;   // columns per color
};

Coloring color_columns(const SparsityPattern& p);

/// Reverse Cuthill-McKee ordering of the symmetrized pattern; returns
/// perm with perm[new_index] = old_index. Reduces bandwidth (and thus LU
/// fill) for patterns the natural order handles badly.
std::vector<std::size_t> reverse_cuthill_mckee(const SparsityPattern& p);

/// CSR value matrix over a shared (immutable) pattern.
class CsrMatrix {
 public:
  CsrMatrix() = default;
  explicit CsrMatrix(std::shared_ptr<const SparsityPattern> pattern);

  const SparsityPattern& pattern() const { return *pattern_; }
  std::shared_ptr<const SparsityPattern> pattern_ptr() const {
    return pattern_;
  }

  std::span<double> values() { return values_; }
  std::span<const double> values() const { return values_; }

  std::size_t rows() const { return pattern_ ? pattern_->rows : 0; }
  std::size_t cols() const { return pattern_ ? pattern_->cols : 0; }

  /// Value at (r, c); exact 0.0 for entries outside the pattern.
  double at(std::size_t r, std::size_t c) const;

  void set_zero();
  Matrix to_dense() const;

  /// y = A x.
  void multiply(std::span<const double> x, std::span<double> y) const;

 private:
  std::shared_ptr<const SparsityPattern> pattern_;
  std::vector<double> values_;
};

/// Sparse LU with partial pivoting. The pivot search is bounded by the
/// lower bandwidth of the input (banded fast path: for a tridiagonal
/// heat-PDE stencil only one subdiagonal row is scanned per column), and
/// row updates merge only structurally nonzero entries, creating fill as
/// needed. Throws omx::Error on a singular pivot column.
class SparseLu final : public LinearSolver {
 public:
  enum class Ordering {
    kNatural,  // bitwise-identical to dense LuFactors (default)
    kRcm,      // reverse Cuthill-McKee fill reduction (opt-in)
  };

  explicit SparseLu(const CsrMatrix& a, Ordering ordering = Ordering::kNatural);

  std::size_t size() const override { return n_; }
  void solve(std::span<const double> b, std::span<double> x) const override;
  const char* kind() const override { return "sparse_lu"; }
  std::size_t factor_nnz() const override;

  /// Same cheap near-singularity heuristic as the dense LuFactors.
  double pivot_growth() const { return pivot_min_ / pivot_max_; }
  Ordering ordering() const { return ordering_kind_; }

 private:
  struct Entry {
    std::uint32_t col;
    double val;
  };

  void factorize(const CsrMatrix& a);

  std::size_t n_ = 0;
  Ordering ordering_kind_ = Ordering::kNatural;
  std::vector<std::vector<Entry>> rows_;   // L below diag (multipliers) + U
  std::vector<std::size_t> diag_pos_;      // index of the diagonal per row
  std::vector<std::size_t> perm_;          // row permutation from pivoting
  std::vector<std::size_t> order_;         // symmetric ordering (RCM) or empty
  std::size_t bandwidth_ = 0;              // lower bandwidth bound for pivots
  double pivot_min_ = 0.0;
  double pivot_max_ = 0.0;
};

}  // namespace omx::la
