// Dense row-major matrix — the minimal linear-algebra substrate needed by
// the implicit (BDF/Newton) ODE solvers.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace omx::la {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  std::span<double> row(std::size_t r) { return {&data_[r * cols_], cols_}; }
  std::span<const double> row(std::size_t r) const {
    return {&data_[r * cols_], cols_};
  }

  std::span<double> data() { return data_; }
  std::span<const double> data() const { return data_; }

  /// this = a*this + b*other (elementwise). Shapes must match.
  void axpby(double a, double b, const Matrix& other);

  /// Max-abs norm.
  double max_norm() const;

  /// y = A x.
  void multiply(std::span<const double> x, std::span<double> y) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Vector helpers used across the solvers.
double dot(std::span<const double> a, std::span<const double> b);
double norm2(std::span<const double> a);
double norm_inf(std::span<const double> a);
/// Weighted RMS norm used for ODE error control: sqrt(mean((v_i / w_i)^2)).
double wrms_norm(std::span<const double> v, std::span<const double> w);

}  // namespace omx::la
