// Factorized-linear-system interface shared by the dense and sparse LU
// backends. The implicit ODE solvers factor the Newton iteration matrix
// M = I - h*beta*J once per refresh and then solve against many
// right-hand sides; this interface lets them select dense vs sparse by
// structure (fill ratio, bandwidth) without caring which factorization
// they got.
#pragma once

#include <cstddef>
#include <span>

namespace omx::la {

class LinearSolver {
 public:
  virtual ~LinearSolver() = default;

  virtual std::size_t size() const = 0;

  /// Solves A x = b; `x` may alias `b`.
  virtual void solve(std::span<const double> b,
                     std::span<double> x) const = 0;

  /// Backend tag for diagnostics/metrics ("dense_lu", "sparse_lu").
  virtual const char* kind() const = 0;

  /// Nonzeros stored in the factors (n*n for dense LU) — the memory and
  /// per-solve work proxy the selection heuristic reports.
  virtual std::size_t factor_nnz() const = 0;
};

}  // namespace omx::la
