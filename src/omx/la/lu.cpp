#include "omx/la/lu.hpp"

#include <cmath>
#include <limits>

#include "omx/support/diagnostics.hpp"

namespace omx::la {

LuFactors::LuFactors(Matrix a) : lu_(std::move(a)) {
  OMX_REQUIRE(lu_.rows() == lu_.cols(), "LU needs a square matrix");
  const std::size_t n = lu_.rows();
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    perm_[i] = i;
  }
  pivot_min_ = std::numeric_limits<double>::infinity();
  pivot_max_ = 0.0;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot: pick the row with the largest |a(i,k)|, i >= k.
    std::size_t piv = k;
    double best = std::fabs(lu_(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::fabs(lu_(i, k));
      if (v > best) {
        best = v;
        piv = i;
      }
    }
    if (best == 0.0) {
      throw omx::Error("LU: matrix is singular at column " +
                       std::to_string(k));
    }
    if (piv != k) {
      std::swap(perm_[piv], perm_[k]);
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(lu_(piv, c), lu_(k, c));
      }
    }
    pivot_min_ = std::min(pivot_min_, best);
    pivot_max_ = std::max(pivot_max_, best);

    const double inv_pivot = 1.0 / lu_(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double m = lu_(i, k) * inv_pivot;
      lu_(i, k) = m;
      if (m != 0.0) {
        for (std::size_t c = k + 1; c < n; ++c) {
          lu_(i, c) -= m * lu_(k, c);
        }
      }
    }
  }
}

void LuFactors::solve(std::span<const double> b, std::span<double> x) const {
  const std::size_t n = size();
  OMX_REQUIRE(b.size() == n && x.size() == n, "size mismatch");

  // Apply permutation and forward-substitute L (unit diagonal).
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[perm_[i]];
    for (std::size_t j = 0; j < i; ++j) {
      acc -= lu_(i, j) * y[j];
    }
    y[i] = acc;
  }
  // Back-substitute U.
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) {
      acc -= lu_(ii, j) * x[j];
    }
    x[ii] = acc / lu_(ii, ii);
  }
}

}  // namespace omx::la
