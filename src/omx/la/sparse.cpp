#include "omx/la/sparse.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <string>

#include "omx/support/diagnostics.hpp"

namespace omx::la {

SparsityPattern SparsityPattern::dense(std::size_t n) {
  SparsityPattern p;
  p.rows = n;
  p.cols = n;
  p.row_ptr.resize(n + 1);
  p.col_idx.reserve(n * n);
  for (std::size_t r = 0; r < n; ++r) {
    p.row_ptr[r] = r * n;
    for (std::size_t c = 0; c < n; ++c) {
      p.col_idx.push_back(c);
    }
  }
  p.row_ptr[n] = n * n;
  return p;
}

SparsityPattern SparsityPattern::from_dense_mask(
    const std::vector<std::vector<bool>>& mask) {
  SparsityPattern p;
  p.rows = mask.size();
  p.cols = p.rows == 0 ? 0 : mask.front().size();
  p.row_ptr.resize(p.rows + 1, 0);
  for (std::size_t r = 0; r < p.rows; ++r) {
    OMX_REQUIRE(mask[r].size() == p.cols, "ragged sparsity mask");
    p.row_ptr[r] = p.col_idx.size();
    for (std::size_t c = 0; c < p.cols; ++c) {
      if (mask[r][c]) {
        p.col_idx.push_back(c);
      }
    }
  }
  p.row_ptr[p.rows] = p.col_idx.size();
  return p;
}

SparsityPattern SparsityPattern::from_triplets(
    std::size_t rows, std::size_t cols,
    std::vector<std::pair<std::size_t, std::size_t>> entries) {
  for (const auto& [r, c] : entries) {
    OMX_REQUIRE(r < rows && c < cols, "triplet out of range");
  }
  std::sort(entries.begin(), entries.end());
  entries.erase(std::unique(entries.begin(), entries.end()), entries.end());
  SparsityPattern p;
  p.rows = rows;
  p.cols = cols;
  p.row_ptr.resize(rows + 1, 0);
  p.col_idx.reserve(entries.size());
  std::size_t r = 0;
  for (const auto& [er, ec] : entries) {
    while (r <= er) {
      p.row_ptr[r++] = p.col_idx.size();
    }
    p.col_idx.push_back(ec);
  }
  while (r <= rows) {
    p.row_ptr[r++] = p.col_idx.size();
  }
  return p;
}

double SparsityPattern::fill_ratio() const {
  const double total = static_cast<double>(rows) * static_cast<double>(cols);
  return total == 0.0 ? 0.0 : static_cast<double>(nnz()) / total;
}

std::size_t SparsityPattern::lower_bandwidth() const {
  std::size_t b = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      if (r > col_idx[k]) {
        b = std::max(b, r - col_idx[k]);
      }
    }
  }
  return b;
}

std::size_t SparsityPattern::upper_bandwidth() const {
  std::size_t b = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      if (col_idx[k] > r) {
        b = std::max(b, col_idx[k] - r);
      }
    }
  }
  return b;
}

bool SparsityPattern::contains(std::size_t r, std::size_t c) const {
  return find(r, c) != npos;
}

std::size_t SparsityPattern::find(std::size_t r, std::size_t c) const {
  OMX_REQUIRE(r < rows && c < cols, "pattern index out of range");
  const auto begin = col_idx.begin() + static_cast<std::ptrdiff_t>(row_ptr[r]);
  const auto end =
      col_idx.begin() + static_cast<std::ptrdiff_t>(row_ptr[r + 1]);
  const auto it = std::lower_bound(begin, end, c);
  if (it == end || *it != c) {
    return npos;
  }
  return static_cast<std::size_t>(it - col_idx.begin());
}

SparsityPattern SparsityPattern::with_diagonal() const {
  OMX_REQUIRE(rows == cols, "with_diagonal needs a square pattern");
  SparsityPattern p;
  p.rows = rows;
  p.cols = cols;
  p.row_ptr.resize(rows + 1, 0);
  for (std::size_t r = 0; r < rows; ++r) {
    p.row_ptr[r] = p.col_idx.size();
    bool placed = false;
    for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      const std::size_t c = col_idx[k];
      if (!placed && c >= r) {
        if (c != r) {
          p.col_idx.push_back(r);
        }
        placed = true;
      }
      p.col_idx.push_back(c);
    }
    if (!placed) {
      p.col_idx.push_back(r);
    }
  }
  p.row_ptr[rows] = p.col_idx.size();
  return p;
}

ColumnView columns(const SparsityPattern& p) {
  ColumnView v;
  v.col_ptr.assign(p.cols + 1, 0);
  for (std::size_t c : p.col_idx) {
    ++v.col_ptr[c + 1];
  }
  for (std::size_t c = 0; c < p.cols; ++c) {
    v.col_ptr[c + 1] += v.col_ptr[c];
  }
  v.row_idx.resize(p.nnz());
  v.csr_pos.resize(p.nnz());
  std::vector<std::size_t> cursor(v.col_ptr.begin(), v.col_ptr.end() - 1);
  for (std::size_t r = 0; r < p.rows; ++r) {
    for (std::size_t k = p.row_ptr[r]; k < p.row_ptr[r + 1]; ++k) {
      const std::size_t c = p.col_idx[k];
      v.row_idx[cursor[c]] = r;
      v.csr_pos[cursor[c]] = k;
      ++cursor[c];
    }
  }
  return v;
}

Coloring color_columns(const SparsityPattern& p) {
  const ColumnView cv = columns(p);
  Coloring out;
  out.color.assign(p.cols, -1);
  // forbidden[c] == j means color c is already taken by a column that
  // shares a row with column j (stamp trick: no per-column reset).
  std::vector<std::size_t> forbidden(p.cols + 1,
                                     std::numeric_limits<std::size_t>::max());
  for (std::size_t j = 0; j < p.cols; ++j) {
    for (std::size_t k = cv.col_ptr[j]; k < cv.col_ptr[j + 1]; ++k) {
      const std::size_t r = cv.row_idx[k];
      for (std::size_t q = p.row_ptr[r]; q < p.row_ptr[r + 1]; ++q) {
        const int c = out.color[p.col_idx[q]];
        if (c >= 0) {
          forbidden[static_cast<std::size_t>(c)] = j;
        }
      }
    }
    int c = 0;
    while (forbidden[static_cast<std::size_t>(c)] == j) {
      ++c;
    }
    out.color[j] = c;
    out.num_colors = std::max(out.num_colors, c + 1);
  }
  out.groups.resize(static_cast<std::size_t>(out.num_colors));
  for (std::size_t j = 0; j < p.cols; ++j) {
    out.groups[static_cast<std::size_t>(out.color[j])].push_back(j);
  }
  return out;
}

std::vector<std::size_t> reverse_cuthill_mckee(const SparsityPattern& p) {
  OMX_REQUIRE(p.rows == p.cols, "RCM needs a square pattern");
  const std::size_t n = p.rows;
  // Symmetrized adjacency (A + A^T), self-loops dropped.
  std::vector<std::vector<std::size_t>> adj(n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t k = p.row_ptr[r]; k < p.row_ptr[r + 1]; ++k) {
      const std::size_t c = p.col_idx[k];
      if (c != r) {
        adj[r].push_back(c);
        adj[c].push_back(r);
      }
    }
  }
  for (auto& nbrs : adj) {
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
  }

  std::vector<std::size_t> order;
  order.reserve(n);
  std::vector<bool> visited(n, false);
  std::vector<std::size_t> frontier;
  for (;;) {
    // Seed each component at its minimum-degree unvisited node.
    std::size_t seed = SparsityPattern::npos;
    for (std::size_t i = 0; i < n; ++i) {
      if (!visited[i] &&
          (seed == SparsityPattern::npos ||
           adj[i].size() < adj[seed].size())) {
        seed = i;
      }
    }
    if (seed == SparsityPattern::npos) {
      break;
    }
    visited[seed] = true;
    std::queue<std::size_t> bfs;
    bfs.push(seed);
    while (!bfs.empty()) {
      const std::size_t u = bfs.front();
      bfs.pop();
      order.push_back(u);
      frontier.clear();
      for (std::size_t v : adj[u]) {
        if (!visited[v]) {
          visited[v] = true;
          frontier.push_back(v);
        }
      }
      std::sort(frontier.begin(), frontier.end(),
                [&](std::size_t a, std::size_t b) {
                  return adj[a].size() != adj[b].size()
                             ? adj[a].size() < adj[b].size()
                             : a < b;
                });
      for (std::size_t v : frontier) {
        bfs.push(v);
      }
    }
  }
  std::reverse(order.begin(), order.end());
  return order;
}

CsrMatrix::CsrMatrix(std::shared_ptr<const SparsityPattern> pattern)
    : pattern_(std::move(pattern)) {
  OMX_REQUIRE(pattern_ != nullptr, "CsrMatrix needs a pattern");
  values_.assign(pattern_->nnz(), 0.0);
}

double CsrMatrix::at(std::size_t r, std::size_t c) const {
  const std::size_t k = pattern_->find(r, c);
  return k == SparsityPattern::npos ? 0.0 : values_[k];
}

void CsrMatrix::set_zero() {
  std::fill(values_.begin(), values_.end(), 0.0);
}

Matrix CsrMatrix::to_dense() const {
  Matrix m(rows(), cols());
  for (std::size_t r = 0; r < rows(); ++r) {
    for (std::size_t k = pattern_->row_ptr[r]; k < pattern_->row_ptr[r + 1];
         ++k) {
      m(r, pattern_->col_idx[k]) = values_[k];
    }
  }
  return m;
}

void CsrMatrix::multiply(std::span<const double> x,
                         std::span<double> y) const {
  OMX_REQUIRE(x.size() == cols() && y.size() == rows(), "shape mismatch");
  for (std::size_t r = 0; r < rows(); ++r) {
    double acc = 0.0;
    for (std::size_t k = pattern_->row_ptr[r]; k < pattern_->row_ptr[r + 1];
         ++k) {
      acc += values_[k] * x[pattern_->col_idx[k]];
    }
    y[r] = acc;
  }
}

namespace {

/// Value at column `c` in a sorted entry row; exact 0.0 when absent.
template <typename EntryVec>
typename EntryVec::iterator find_col(EntryVec& row, std::uint32_t c) {
  return std::lower_bound(
      row.begin(), row.end(), c,
      [](const auto& e, std::uint32_t col) { return e.col < col; });
}

}  // namespace

SparseLu::SparseLu(const CsrMatrix& a, Ordering ordering)
    : n_(a.rows()), ordering_kind_(ordering) {
  OMX_REQUIRE(a.rows() == a.cols(), "LU needs a square matrix");
  factorize(a);
}

void SparseLu::factorize(const CsrMatrix& a) {
  const SparsityPattern& p = a.pattern();
  if (ordering_kind_ == Ordering::kRcm) {
    order_ = reverse_cuthill_mckee(p);
  }

  // Load the (optionally symmetrically permuted) matrix into per-row
  // sorted entry vectors.
  rows_.assign(n_, {});
  std::vector<std::size_t> inv_order;
  if (!order_.empty()) {
    inv_order.resize(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      inv_order[order_[i]] = i;
    }
  }
  for (std::size_t r = 0; r < n_; ++r) {
    const std::size_t src = order_.empty() ? r : order_[r];
    auto& row = rows_[r];
    row.reserve(p.row_ptr[src + 1] - p.row_ptr[src]);
    for (std::size_t k = p.row_ptr[src]; k < p.row_ptr[src + 1]; ++k) {
      const std::size_t c =
          order_.empty() ? p.col_idx[k] : inv_order[p.col_idx[k]];
      row.push_back({static_cast<std::uint32_t>(c), a.values()[k]});
    }
    std::sort(row.begin(), row.end(),
              [](const Entry& x, const Entry& y) { return x.col < y.col; });
  }

  // Lower bandwidth of the loaded matrix bounds how far below the
  // diagonal partial pivoting can ever find a nonzero: rows beyond
  // k + bandwidth_ stay structurally zero in column k throughout the
  // elimination (classic band-LU result), so the pivot scan — and the
  // update loop — only visit that window. For the tridiagonal heat-PDE
  // stencil this is a single row per column.
  bandwidth_ = 0;
  for (std::size_t r = 0; r < n_; ++r) {
    for (const Entry& e : rows_[r]) {
      if (r > e.col) {
        bandwidth_ = std::max(bandwidth_, r - e.col);
      }
    }
  }

  perm_.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    perm_[i] = i;
  }
  pivot_min_ = std::numeric_limits<double>::infinity();
  pivot_max_ = 0.0;

  std::vector<Entry> merged;
  for (std::size_t k = 0; k < n_; ++k) {
    const std::uint32_t kc = static_cast<std::uint32_t>(k);
    const std::size_t imax = std::min(n_ - 1, k + bandwidth_);

    // Partial pivot over the band window — same strict-`>` rule as the
    // dense LuFactors; structurally absent entries are exact zeros and
    // can never win, so the choice matches the dense scan bit-for-bit.
    std::size_t piv = k;
    double best = 0.0;
    {
      auto it = find_col(rows_[k], kc);
      if (it != rows_[k].end() && it->col == kc) {
        best = std::fabs(it->val);
      }
    }
    for (std::size_t i = k + 1; i <= imax; ++i) {
      auto it = find_col(rows_[i], kc);
      if (it != rows_[i].end() && it->col == kc) {
        const double v = std::fabs(it->val);
        if (v > best) {
          best = v;
          piv = i;
        }
      }
    }
    if (best == 0.0) {
      throw omx::Error("sparse LU: matrix is singular at column " +
                       std::to_string(k));
    }
    if (piv != k) {
      std::swap(perm_[piv], perm_[k]);
      rows_[piv].swap(rows_[k]);
      // Growing the band window is impossible: the swap happens inside
      // the window, so bandwidth_ keeps bounding later pivot columns.
    }
    pivot_min_ = std::min(pivot_min_, best);
    pivot_max_ = std::max(pivot_max_, best);

    auto kdiag = find_col(rows_[k], kc);
    const double inv_pivot = 1.0 / kdiag->val;
    const std::size_t kdiag_pos =
        static_cast<std::size_t>(kdiag - rows_[k].begin());

    for (std::size_t i = k + 1; i <= imax; ++i) {
      auto& row = rows_[i];
      auto lcol = find_col(row, kc);
      if (lcol == row.end() || lcol->col != kc) {
        // Dense stores m = 0 * inv_pivot here and skips the update — a
        // numerical no-op, so the entry can stay structurally absent.
        continue;
      }
      const double m = lcol->val * inv_pivot;
      lcol->val = m;
      if (m == 0.0) {
        continue;  // same skip as dense `if (m != 0.0)`
      }
      // row_i(c) -= m * row_k(c) for c > k, merging in fill. First pass
      // updates matching entries in place and counts the fill so the
      // steady state (pattern already stabilized) allocates nothing.
      const std::size_t head =
          static_cast<std::size_t>(lcol - row.begin()) + 1;
      std::size_t ai = head;
      std::size_t bi = kdiag_pos + 1;
      const auto& krow = rows_[k];
      std::size_t fill = 0;
      while (ai < row.size() && bi < krow.size()) {
        if (row[ai].col < krow[bi].col) {
          ++ai;
        } else if (row[ai].col > krow[bi].col) {
          ++fill;
          ++bi;
        } else {
          row[ai].val -= m * krow[bi].val;
          ++ai;
          ++bi;
        }
      }
      fill += krow.size() - bi;
      if (fill == 0) {
        continue;
      }
      // Second pass: rebuild the tail with the fill entries. Fill values
      // are `0.0 - m * u`, exactly what the dense update computes when
      // the target started as an exact zero (signed-zero faithful).
      merged.clear();
      merged.reserve(row.size() - head + fill);
      ai = head;
      bi = kdiag_pos + 1;
      while (ai < row.size() && bi < krow.size()) {
        if (row[ai].col < krow[bi].col) {
          merged.push_back(row[ai]);
          ++ai;
        } else if (row[ai].col > krow[bi].col) {
          merged.push_back({krow[bi].col, 0.0 - m * krow[bi].val});
          ++bi;
        } else {
          merged.push_back(row[ai]);  // already updated in the first pass
          ++ai;
          ++bi;
        }
      }
      for (; ai < row.size(); ++ai) {
        merged.push_back(row[ai]);
      }
      for (; bi < krow.size(); ++bi) {
        merged.push_back({krow[bi].col, 0.0 - m * krow[bi].val});
      }
      row.resize(head);
      row.insert(row.end(), merged.begin(), merged.end());
    }
  }

  diag_pos_.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    auto it = find_col(rows_[i], static_cast<std::uint32_t>(i));
    OMX_REQUIRE(it != rows_[i].end() && it->col == i,
                "sparse LU lost a diagonal");
    diag_pos_[i] = static_cast<std::size_t>(it - rows_[i].begin());
  }
}

void SparseLu::solve(std::span<const double> b, std::span<double> x) const {
  OMX_REQUIRE(b.size() == n_ && x.size() == n_, "size mismatch");
  // Apply permutations and forward-substitute L (unit diagonal), then
  // back-substitute U — entry-for-entry the dense loops with the exact
  // zeros skipped.
  std::vector<double> y(n_);
  std::vector<double> z(order_.empty() ? 0 : n_);
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t src =
        order_.empty() ? perm_[i] : order_[perm_[i]];
    double acc = b[src];
    const auto& row = rows_[i];
    for (std::size_t k = 0; k < diag_pos_[i]; ++k) {
      acc -= row[k].val * y[row[k].col];
    }
    y[i] = acc;
  }
  std::span<double> out = order_.empty() ? x : std::span<double>(z);
  for (std::size_t ii = n_; ii-- > 0;) {
    double acc = y[ii];
    const auto& row = rows_[ii];
    for (std::size_t k = diag_pos_[ii] + 1; k < row.size(); ++k) {
      acc -= row[k].val * out[row[k].col];
    }
    out[ii] = acc / row[diag_pos_[ii]].val;
  }
  if (!order_.empty()) {
    for (std::size_t i = 0; i < n_; ++i) {
      x[order_[i]] = z[i];
    }
  }
}

std::size_t SparseLu::factor_nnz() const {
  std::size_t nnz = 0;
  for (const auto& row : rows_) {
    nnz += row.size();
  }
  return nnz;
}

}  // namespace omx::la
