#include "omx/codegen/tasks.hpp"

#include <algorithm>

namespace omx::codegen {

namespace {

/// Flattens a +/- chain into signed terms: e = sum(sign_i * term_i).
void flatten_sum(const expr::Pool& pool, expr::ExprId e, bool negate,
                 std::vector<std::pair<expr::ExprId, bool>>& terms) {
  const expr::Node& n = pool.node(e);
  if (n.op == expr::Op::kAdd) {
    flatten_sum(pool, n.a, negate, terms);
    flatten_sum(pool, n.b, negate, terms);
  } else if (n.op == expr::Op::kSub) {
    flatten_sum(pool, n.a, negate, terms);
    flatten_sum(pool, n.b, !negate, terms);
  } else if (n.op == expr::Op::kNeg) {
    flatten_sum(pool, n.a, !negate, terms);
  } else {
    terms.emplace_back(e, negate);
  }
}

/// Rebuilds a signed-term group into a single expression.
expr::ExprId rebuild_sum(
    expr::Pool& pool,
    std::span<const std::pair<expr::ExprId, bool>> terms) {
  OMX_REQUIRE(!terms.empty(), "empty term group");
  expr::ExprId acc = expr::kNoExpr;
  for (const auto& [term, neg] : terms) {
    if (acc == expr::kNoExpr) {
      acc = neg ? pool.neg(term) : term;
    } else {
      acc = neg ? pool.sub(acc, term) : pool.add(acc, term);
    }
  }
  return acc;
}

}  // namespace

std::size_t TaskPlan::num_split_units() const {
  std::size_t n = 0;
  for (const TaskSpec& t : tasks) {
    for (const TaskUnit& u : t.units) {
      if (u.num_parts > 1) {
        ++n;
      }
    }
  }
  return n;
}

TaskPlan plan_tasks(const model::FlatSystem& flat, const AssignmentSet& set,
                    const TaskPlanOptions& opts) {
  expr::Context& ctx = flat.ctx();
  TaskPlan plan;
  plan.options = opts;

  // 1. Build self-contained units: one per state equation, with algebraics
  //    inlined; split oversized +/- chains into partial sums.
  struct Candidate {
    TaskUnit unit;
    std::size_t ops = 0;
  };
  std::vector<Candidate> candidates;
  for (const Assignment& a : set.states) {
    const expr::ExprId inlined = inline_algebraics(flat, a.rhs);
    const std::size_t ops = ctx.pool.dag_op_count(inlined);
    if (opts.max_ops_per_task != 0 && ops > opts.max_ops_per_task) {
      // Split through a top-level division (the common `force_sum / mass`
      // shape): partial sums of the numerator each divided by the shared
      // denominator still add up to the full quotient.
      expr::ExprId split_root = inlined;
      expr::ExprId denom = expr::kNoExpr;
      if (ctx.pool.node(inlined).op == expr::Op::kDiv) {
        split_root = ctx.pool.node(inlined).a;
        denom = ctx.pool.node(inlined).b;
      }
      std::vector<std::pair<expr::ExprId, bool>> terms;
      flatten_sum(ctx.pool, split_root, false, terms);
      if (terms.size() >= 2) {
        // Greedily pack terms into parts of roughly max_ops each.
        std::vector<std::vector<std::pair<expr::ExprId, bool>>> groups;
        groups.emplace_back();
        std::size_t group_ops = 0;
        for (const auto& t : terms) {
          const std::size_t top = ctx.pool.dag_op_count(t.first) + 1;
          if (group_ops > 0 && group_ops + top > opts.max_ops_per_task) {
            groups.emplace_back();
            group_ops = 0;
          }
          groups.back().push_back(t);
          group_ops += top;
        }
        if (groups.size() >= 2) {
          const int num_parts = static_cast<int>(groups.size());
          for (int g = 0; g < num_parts; ++g) {
            Candidate c;
            c.unit.state = a.index;
            c.unit.part = g;
            c.unit.num_parts = num_parts;
            c.unit.rhs = rebuild_sum(ctx.pool, groups[g]);
            if (denom != expr::kNoExpr) {
              c.unit.rhs = ctx.pool.div(c.unit.rhs, denom);
            }
            c.ops = ctx.pool.dag_op_count(c.unit.rhs);
            candidates.push_back(c);
          }
          continue;
        }
      }
      // Not splittable (single huge product, etc.) — fall through.
    }
    Candidate c;
    c.unit.state = a.index;
    c.unit.rhs = inlined;
    c.ops = ops;
    candidates.push_back(c);
  }

  // 2. Group small units into tasks of at least min_ops_per_task.
  TaskSpec current;
  auto flush = [&]() {
    if (!current.units.empty()) {
      plan.tasks.push_back(std::move(current));
      current = TaskSpec{};
    }
  };
  for (const Candidate& c : candidates) {
    current.units.push_back(c.unit);
    current.est_ops += c.ops;
    if (current.est_ops >= opts.min_ops_per_task) {
      flush();
    }
  }
  flush();

  // 3. Label tasks for diagnostics and schedules.
  for (std::size_t i = 0; i < plan.tasks.size(); ++i) {
    TaskSpec& t = plan.tasks[i];
    const TaskUnit& u0 = t.units.front();
    std::string label =
        flat.state_name(static_cast<std::size_t>(u0.state)) + "'";
    if (u0.num_parts > 1) {
      label += " part " + std::to_string(u0.part + 1) + "/" +
               std::to_string(u0.num_parts);
    }
    if (t.units.size() > 1) {
      label += " (+" + std::to_string(t.units.size() - 1) + " more)";
    }
    t.label = std::move(label);
  }
  return plan;
}

}  // namespace omx::codegen
