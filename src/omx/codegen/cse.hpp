// Common subexpression elimination (§3.3).
//
// Because expressions are hash-consed, a "common subexpression" is simply
// a non-leaf node referenced from more than one parent across the roots of
// one compilation unit. CSE extracts such nodes as ordered temporary
// bindings and rewrites the roots to reference them.
//
// Two granularities matter for the paper's measurements:
//  * per-task CSE (parallel code):  each task is its own unit, nothing is
//    shared between tasks — more total temporaries, more code;
//  * global CSE (serial code): one unit for the whole system — large
//    subexpressions shared between different equations collapse, yielding
//    the substantially smaller serial code reported in §3.3.
#pragma once

#include <string>
#include <vector>

#include "omx/expr/context.hpp"

namespace omx::codegen {

struct CseBinding {
  SymbolId temp = kInvalidSymbol;  // generated name, e.g. "t$17"
  expr::ExprId value = expr::kNoExpr;  // may reference earlier temps
};

struct CseResult {
  std::vector<CseBinding> bindings;  // in dependency order
  std::vector<expr::ExprId> roots;   // rewritten roots

  std::size_t num_shared() const { return bindings.size(); }
};

struct CseOptions {
  /// Only extract shared nodes whose DAG op count is at least this.
  std::size_t min_ops = 1;
  /// Prefix for generated temporary names.
  std::string temp_prefix = "t$";
};

/// Runs CSE over one compilation unit (`roots`).
CseResult eliminate_common_subexpressions(expr::Context& ctx,
                                          const std::vector<expr::ExprId>& roots,
                                          const CseOptions& opts = {});

/// Number of arithmetic operations a straight-line emission of the unit
/// would contain after CSE (bindings + rewritten roots, each counted as a
/// tree — there is no sharing left inside them by construction).
std::size_t cse_op_count(const expr::Pool& pool, const CseResult& r);

}  // namespace omx::codegen
