// Tape compilation: lowers a task plan (parallel) or an assignment set
// (serial, global CSE) into an executable vm::Program.
//
// Parallel program: one vm task per TaskSpec; every task is self-contained
// (its own temporaries; within-task sharing falls out of the DAG memo).
// Serial program: one single task computing algebraics then all states,
// with the memo shared across the whole system — the executable analogue
// of the globally CSE'd serial Fortran of §3.3.
#pragma once

#include "omx/codegen/tasks.hpp"
#include "omx/la/sparse.hpp"
#include "omx/vm/program.hpp"

namespace omx::codegen {

/// Compiles the parallel task plan. Parameters are folded to constants.
vm::Program compile_parallel_tape(const model::FlatSystem& flat,
                                  const TaskPlan& plan);

/// Compiles the whole system as one task with global sharing.
vm::Program compile_serial_tape(const model::FlatSystem& flat,
                                const AssignmentSet& set);

/// Compiles the analytic Jacobian J(i,j) = d f_i / d x_j as a program with
/// n*n output slots (slot i*n+j). Row-major. Used by the implicit solvers.
vm::Program compile_jacobian_tape(const model::FlatSystem& flat);

/// Compiles only the structurally nonzero Jacobian entries: output slot k
/// holds the derivative for CSR entry k of `pattern` (entries whose
/// derivative simplifies to the constant 0 leave their slot at 0.0).
/// nnz output slots instead of n*n — the symbolic analogue of the
/// colored-FD compression.
vm::Program compile_sparse_jacobian_tape(const model::FlatSystem& flat,
                                         const la::SparsityPattern& pattern);

}  // namespace omx::codegen
