// Task partitioning (§3.2): "groups all small assignments into one task
// and splits large assignments obtained from the equations into several
// tasks".
//
// A task is the unit of scheduling for the supervisor/worker runtime.
// Parallel tasks are self-contained: algebraic variables are inlined so
// no values flow between tasks (the code generator "shares no
// subexpressions between the tasks", §3.2/§3.3).
//
// Splitting: when an inlined right-hand side exceeds `max_ops_per_task`
// and its top is an addition/subtraction chain, the chain is divided into
// partial sums computed by separate tasks; the runtime accumulates the
// partial contributions into ydot[state] (addition is the combine step).
#pragma once

#include <string>

#include "omx/codegen/assignments.hpp"

namespace omx::codegen {

struct TaskUnit {
  int state = 0;          // ydot slot this unit contributes to
  int part = 0;           // partial-sum index (0-based)
  int num_parts = 1;      // 1 = the whole right-hand side
  expr::ExprId rhs = expr::kNoExpr;  // algebraics inlined
};

struct TaskSpec {
  std::string label;
  std::vector<TaskUnit> units;
  std::size_t est_ops = 0;  // DAG op count (task-local CSE assumed)
};

struct TaskPlanOptions {
  /// Grouping threshold: consecutive small assignments are packed into one
  /// task until it reaches at least this many ops.
  std::size_t min_ops_per_task = 16;
  /// Splitting threshold; 0 disables splitting.
  std::size_t max_ops_per_task = 0;
};

struct TaskPlan {
  std::vector<TaskSpec> tasks;
  TaskPlanOptions options;

  std::size_t num_split_units() const;
};

TaskPlan plan_tasks(const model::FlatSystem& flat, const AssignmentSet& set,
                    const TaskPlanOptions& opts = {});

}  // namespace omx::codegen
