// Language-specific expression rendering shared by the Fortran 90 and C++
// emitters. Symbols are printed verbatim (the emitters pre-substitute
// sanitized local names), so the only language differences are operator
// spelling (** vs std::pow) and intrinsic names.
#pragma once

#include <string>

#include "omx/expr/pool.hpp"

namespace omx::codegen {

// kCxxSimd renders the same C++ as kCxx except that the transcendental
// intrinsics with no vectorizable libm entry point (sin, cos, tanh, exp,
// log, pow, hypot) are printed as their omx_* vector-math runtime names
// (exec/vmath_functions.h): branch-free straight-line implementations
// the host compiler can clone per SIMD lane. Used by the native backend;
// standalone artifacts keep the self-contained std:: spellings.
enum class Lang { kFortran90, kCxx, kCxxSimd };

std::string to_code(const expr::Pool& pool, const Interner& names,
                    expr::ExprId id, Lang lang);

/// Makes a flat model name a legal identifier: "w[3].c.fn" -> "w_3__c_fn".
std::string sanitize_identifier(const std::string& name);

}  // namespace omx::codegen
