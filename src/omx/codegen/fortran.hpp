// Fortran 90 code generation (§3.2, §3.3, Figure 11).
//
// The parallel emitter produces the paper's SPMD shape: one subroutine
//   RHS(workerid, yin, yout)
// with a select case (workerid) branch per task; every task body loads its
// state aliases from yin, computes its task-local CSE temporaries and
// writes yout entries. The serial emitter folds the whole system into one
// straight-line body with globally shared CSE temporaries (the much
// smaller code §3.3 reports).
#pragma once

#include <string>

#include "omx/codegen/cse.hpp"
#include "omx/codegen/tasks.hpp"

namespace omx::codegen {

struct EmitResult {
  std::string code;
  std::size_t total_lines = 0;
  std::size_t decl_lines = 0;
  std::size_t num_cse_temps = 0;
};

struct EmitOptions {
  /// CSE extraction threshold (ops); 1 extracts every shared node.
  std::size_t cse_min_ops = 1;
  /// Emit the INIT / parameter-reading helper subroutines as well.
  bool with_helpers = true;
  /// Emit the file prelude (includes + omx_sign helper). The native
  /// backend composes several emitted bodies into one translation unit
  /// inside namespaces, so it hoists a single prelude itself and emits
  /// each body with with_prelude = false. (C++ emitter only; the Fortran
  /// emitter has no prelude.)
  bool with_prelude = true;
  /// C++ emitters only: print transcendental intrinsics as the omx_*
  /// vector-math runtime names (Lang::kCxxSimd) instead of std:: libm,
  /// so the rhs_batch lane loops vectorize without scalarizing on math
  /// calls. The caller must provide the vmath definitions in the same
  /// translation unit (the native backend embeds exec/vmath_functions.h;
  /// see exec::vmath_source()). Standalone artifacts keep the default
  /// self-contained std:: spellings.
  bool simd_math = false;
};

EmitResult emit_fortran_parallel(const model::FlatSystem& flat,
                                 const TaskPlan& plan,
                                 const EmitOptions& opts = {});

EmitResult emit_fortran_serial(const model::FlatSystem& flat,
                               const AssignmentSet& set,
                               const EmitOptions& opts = {});

}  // namespace omx::codegen
