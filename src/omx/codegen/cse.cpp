#include "omx/codegen/cse.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace omx::codegen {

namespace {

bool is_leaf(const expr::Node& n) {
  return n.op == expr::Op::kConst || n.op == expr::Op::kSym;
}

bool binary(const expr::Node& n) {
  switch (n.op) {
    case expr::Op::kAdd:
    case expr::Op::kSub:
    case expr::Op::kMul:
    case expr::Op::kDiv:
    case expr::Op::kPow:
    case expr::Op::kCall2:
      return true;
    default:
      return false;
  }
}

}  // namespace

CseResult eliminate_common_subexpressions(
    expr::Context& ctx, const std::vector<expr::ExprId>& roots,
    const CseOptions& opts) {
  expr::Pool& pool = ctx.pool;

  // 1. Collect the reachable nodes and reference counts within this unit.
  //    Each root contributes one reference (it is used by its assignment).
  std::unordered_map<expr::ExprId, std::size_t> refs;
  std::vector<expr::ExprId> reach;
  {
    std::unordered_set<expr::ExprId> visited;
    std::vector<expr::ExprId> stack;
    for (expr::ExprId r : roots) {
      ++refs[r];
      stack.push_back(r);
    }
    while (!stack.empty()) {
      const expr::ExprId cur = stack.back();
      stack.pop_back();
      if (!visited.insert(cur).second) {
        continue;
      }
      reach.push_back(cur);
      const expr::Node& n = pool.node(cur);
      if (is_leaf(n)) {
        continue;
      }
      ++refs[n.a];
      stack.push_back(n.a);
      if (binary(n)) {
        ++refs[n.b];
        stack.push_back(n.b);
      }
    }
  }
  // Hash-consing guarantees children have smaller ids than parents, so
  // ascending id order is a valid children-first (topological) order.
  std::sort(reach.begin(), reach.end());

  // 2. DAG op count per node, for the min_ops threshold.
  std::unordered_map<expr::ExprId, std::size_t> ops;
  for (expr::ExprId id : reach) {
    const expr::Node& n = pool.node(id);
    if (is_leaf(n)) {
      ops[id] = 0;
      continue;
    }
    std::size_t c = 1 + ops[n.a];
    if (binary(n)) {
      c += ops[n.b];
    }
    ops[id] = c;
  }

  // 3. Rebuild children-first; extracted nodes become temp bindings, and
  //    parents are rebuilt against the replacements.
  CseResult result;
  std::unordered_map<expr::ExprId, expr::ExprId> rep;
  std::size_t next_temp = 0;
  for (expr::ExprId id : reach) {
    const expr::Node n = pool.node(id);  // copy: pool may grow below
    if (is_leaf(n)) {
      continue;
    }
    const expr::ExprId a = rep.count(n.a) ? rep.at(n.a) : n.a;
    const expr::ExprId b =
        binary(n) && rep.count(n.b) ? rep.at(n.b) : n.b;
    expr::ExprId rebuilt = id;
    if (a != n.a || (binary(n) && b != n.b)) {
      switch (n.op) {
        case expr::Op::kAdd: rebuilt = pool.add(a, b); break;
        case expr::Op::kSub: rebuilt = pool.sub(a, b); break;
        case expr::Op::kMul: rebuilt = pool.mul(a, b); break;
        case expr::Op::kDiv: rebuilt = pool.div(a, b); break;
        case expr::Op::kPow: rebuilt = pool.pow(a, b); break;
        case expr::Op::kNeg: rebuilt = pool.neg(a); break;
        case expr::Op::kCall1:
          rebuilt = pool.call(static_cast<expr::Func1>(n.fn), a);
          break;
        case expr::Op::kCall2:
          rebuilt = pool.call(static_cast<expr::Func2>(n.fn), a, b);
          break;
        default:
          OMX_REQUIRE(false, "unexpected op in CSE rebuild");
      }
    }
    if (refs[id] >= 2 && ops[id] >= opts.min_ops) {
      const SymbolId temp =
          ctx.symbol(opts.temp_prefix + std::to_string(next_temp++));
      result.bindings.push_back(CseBinding{temp, rebuilt});
      rep[id] = pool.sym(temp);
    } else if (rebuilt != id) {
      rep[id] = rebuilt;
    }
  }

  result.roots.reserve(roots.size());
  for (expr::ExprId r : roots) {
    result.roots.push_back(rep.count(r) ? rep.at(r) : r);
  }
  return result;
}

std::size_t cse_op_count(const expr::Pool& pool, const CseResult& r) {
  std::size_t total = 0;
  for (const CseBinding& b : r.bindings) {
    total += pool.tree_op_count(b.value);
  }
  for (expr::ExprId root : r.roots) {
    total += pool.tree_op_count(root);
  }
  return total;
}

}  // namespace omx::codegen
