// Expression transformer (§3.1, Figure 9): turns the flat equation system
// into the list of assignments that "really needs to be computed by the
// generated code" — derivatives removed, equations replaced by assignments
// whose right-hand sides are the equation right-hand sides.
#pragma once

#include "omx/model/flat_system.hpp"

namespace omx::codegen {

struct Assignment {
  enum class Kind { kAlgebraic, kStateDer };
  Kind kind = Kind::kStateDer;
  int index = 0;  // algebraic index or state index
  SymbolId target = kInvalidSymbol;
  expr::ExprId rhs = expr::kNoExpr;
};

struct AssignmentSet {
  /// Auxiliary assignments in dependency order.
  std::vector<Assignment> algebraics;
  /// One per state: <name>dot = rhs.
  std::vector<Assignment> states;
};

struct TransformOptions {
  /// Run algebraic simplification over every RHS first.
  bool simplify = true;
};

AssignmentSet build_assignments(const model::FlatSystem& flat,
                                const TransformOptions& opts = {});

/// Rewrites `e` with every algebraic variable replaced by its defining
/// expression, recursively. Used when compiling self-contained parallel
/// tasks (no values are shared between tasks in the distributed version).
expr::ExprId inline_algebraics(const model::FlatSystem& flat,
                               expr::ExprId e);

}  // namespace omx::codegen
