// C++ code generation — the second target language of the ObjectMath 4.0
// code generator (Figure 8). Same task structure as the Fortran emitter:
// parallel `rhs(worker_id, t, yin, yout)` with a switch per task, or a
// serial globally-CSE'd body.
#pragma once

#include "omx/codegen/fortran.hpp"  // EmitResult, EmitOptions

namespace omx::codegen {

EmitResult emit_cpp_parallel(const model::FlatSystem& flat,
                             const TaskPlan& plan,
                             const EmitOptions& opts = {});

EmitResult emit_cpp_serial(const model::FlatSystem& flat,
                           const AssignmentSet& set,
                           const EmitOptions& opts = {});

}  // namespace omx::codegen
