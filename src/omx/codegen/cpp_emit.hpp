// C++ code generation — the second target language of the ObjectMath 4.0
// code generator (Figure 8). Same task structure as the Fortran emitter:
// parallel `rhs(worker_id, t, yin, yout)` with a switch per task, or a
// serial globally-CSE'd body.
#pragma once

#include "omx/codegen/fortran.hpp"  // EmitResult, EmitOptions

namespace omx::codegen {

EmitResult emit_cpp_parallel(const model::FlatSystem& flat,
                             const TaskPlan& plan,
                             const EmitOptions& opts = {});

EmitResult emit_cpp_serial(const model::FlatSystem& flat,
                           const AssignmentSet& set,
                           const EmitOptions& opts = {});

// Batched (structure-of-arrays) variants for ensemble execution: the same
// task bodies wrapped in a contiguous lane loop, `rhs_batch(int nb, const
// double* ts, const double* yin, double* yout)` with state i of lane j at
// yin[i * nb + j] and a per-lane time ts[j]. The per-lane arithmetic is
// emitted from the same expression trees as the scalar variants, so lane
// results match a scalar call bit for bit; the inner loops are unit-stride
// so the host compiler can auto-vectorize across lanes.

EmitResult emit_cpp_parallel_batch(const model::FlatSystem& flat,
                                   const TaskPlan& plan,
                                   const EmitOptions& opts = {});

EmitResult emit_cpp_serial_batch(const model::FlatSystem& flat,
                                 const AssignmentSet& set,
                                 const EmitOptions& opts = {});

}  // namespace omx::codegen
