#include "omx/codegen/assignments.hpp"

#include "omx/expr/simplify.hpp"

namespace omx::codegen {

AssignmentSet build_assignments(const model::FlatSystem& flat,
                                const TransformOptions& opts) {
  OMX_REQUIRE(flat.finalized(), "flat system must be finalized");
  expr::Context& ctx = flat.ctx();
  AssignmentSet out;

  auto transform = [&](expr::ExprId e) {
    return opts.simplify ? expr::simplify(ctx.pool, e) : e;
  };

  for (std::size_t j = 0; j < flat.algebraics().size(); ++j) {
    const model::FlatAlgebraic& al = flat.algebraics()[j];
    out.algebraics.push_back(Assignment{Assignment::Kind::kAlgebraic,
                                        static_cast<int>(j), al.name,
                                        transform(al.rhs)});
  }
  for (std::size_t i = 0; i < flat.num_states(); ++i) {
    const model::FlatState& st = flat.states()[i];
    out.states.push_back(Assignment{Assignment::Kind::kStateDer,
                                    static_cast<int>(i), st.name,
                                    transform(st.rhs)});
  }
  return out;
}

expr::ExprId inline_algebraics(const model::FlatSystem& flat,
                               expr::ExprId e) {
  expr::Context& ctx = flat.ctx();
  // Substitute repeatedly: the algebraics are acyclic and topologically
  // ordered, so substituting in reverse order resolves chains in one sweep.
  expr::ExprId cur = e;
  for (std::size_t j = flat.algebraics().size(); j-- > 0;) {
    const model::FlatAlgebraic& al = flat.algebraics()[j];
    cur = ctx.pool.substitute(cur, al.name, al.rhs);
  }
  return cur;
}

}  // namespace omx::codegen
