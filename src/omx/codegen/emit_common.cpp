#include "omx/codegen/emit_common.hpp"

#include <algorithm>

#include "omx/codegen/code_printer.hpp"

namespace omx::codegen {

RenamePlan plan_renames(const model::FlatSystem& flat,
                        const std::vector<expr::ExprId>& exprs) {
  expr::Context& ctx = flat.ctx();
  RenamePlan plan;
  std::vector<SymbolId> syms;
  for (expr::ExprId e : exprs) {
    ctx.pool.free_syms(e, syms);
  }
  std::sort(syms.begin(), syms.end());
  syms.erase(std::unique(syms.begin(), syms.end()), syms.end());
  for (SymbolId s : syms) {
    const std::string& name = ctx.names.name(s);
    if (s == flat.time_symbol()) {
      plan.map.emplace(s, ctx.pool.sym(ctx.symbol("t")));
      continue;
    }
    if (int idx = flat.state_index(s); idx >= 0) {
      const std::string alias = sanitize_identifier(name);
      plan.map.emplace(s, ctx.pool.sym(ctx.symbol(alias)));
      plan.state_aliases.emplace_back(alias, idx);
      plan.locals.insert(alias);
      continue;
    }
    if (flat.is_parameter(s)) {
      const std::string alias = sanitize_identifier(name);
      plan.map.emplace(s, ctx.pool.sym(ctx.symbol(alias)));
      plan.param_consts.emplace_back(alias, flat.parameter_value(s));
      continue;
    }
    // Algebraic (serial mode) or CSE temp: sanitize in place.
    const std::string alias = sanitize_identifier(name);
    if (alias != name) {
      plan.map.emplace(s, ctx.pool.sym(ctx.symbol(alias)));
    }
    plan.locals.insert(alias);
  }
  return plan;
}

UnitEmission prepare_unit(const model::FlatSystem& flat,
                          const std::vector<expr::ExprId>& roots,
                          const std::string& temp_prefix,
                          std::size_t cse_min_ops) {
  expr::Context& ctx = flat.ctx();
  UnitEmission ue;
  CseOptions copts;
  copts.min_ops = cse_min_ops;
  copts.temp_prefix = temp_prefix;
  ue.cse = eliminate_common_subexpressions(ctx, roots, copts);
  std::vector<expr::ExprId> all;
  for (const CseBinding& b : ue.cse.bindings) {
    all.push_back(b.value);
  }
  for (expr::ExprId r : ue.cse.roots) {
    all.push_back(r);
  }
  ue.renames = plan_renames(flat, all);
  return ue;
}

expr::ExprId apply_renames(expr::Context& ctx, const RenamePlan& plan,
                           expr::ExprId e) {
  return plan.map.empty() ? e : ctx.pool.substitute(e, plan.map);
}

}  // namespace omx::codegen
