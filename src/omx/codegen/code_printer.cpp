#include "omx/codegen/code_printer.hpp"

#include <cctype>
#include <sstream>

namespace omx::codegen {

namespace {

int precedence(const expr::Node& n) {
  switch (n.op) {
    case expr::Op::kAdd:
    case expr::Op::kSub:
      return 1;
    case expr::Op::kMul:
    case expr::Op::kDiv:
      return 2;
    case expr::Op::kNeg:
      return 3;
    case expr::Op::kPow:
      return 4;
    default:
      return 5;
  }
}

const char* func1_code_name(expr::Func1 f, Lang lang) {
  const bool cxx = lang != Lang::kFortran90;
  const bool simd = lang == Lang::kCxxSimd;
  switch (f) {
    case expr::Func1::kSin: return simd ? "omx_sin" : cxx ? "std::sin" : "sin";
    case expr::Func1::kCos: return simd ? "omx_cos" : cxx ? "std::cos" : "cos";
    case expr::Func1::kTan: return cxx ? "std::tan" : "tan";
    case expr::Func1::kAsin: return cxx ? "std::asin" : "asin";
    case expr::Func1::kAcos: return cxx ? "std::acos" : "acos";
    case expr::Func1::kAtan: return cxx ? "std::atan" : "atan";
    case expr::Func1::kSinh: return cxx ? "std::sinh" : "sinh";
    case expr::Func1::kCosh: return cxx ? "std::cosh" : "cosh";
    case expr::Func1::kTanh:
      return simd ? "omx_tanh" : cxx ? "std::tanh" : "tanh";
    case expr::Func1::kExp: return simd ? "omx_exp" : cxx ? "std::exp" : "exp";
    case expr::Func1::kLog: return simd ? "omx_log" : cxx ? "std::log" : "log";
    // sqrt/fabs lower to single instructions under -fno-math-errno, so
    // the std:: spellings stay vectorizable even in kCxxSimd.
    case expr::Func1::kSqrt: return cxx ? "std::sqrt" : "sqrt";
    case expr::Func1::kAbs: return cxx ? "std::fabs" : "abs";
    // Neither language has the mathematical sign() intrinsic with one
    // argument; both runtimes ship an omx_sign helper.
    case expr::Func1::kSign: return "omx_sign";
  }
  return "?";
}

const char* func2_code_name(expr::Func2 f, Lang lang) {
  const bool cxx = lang != Lang::kFortran90;
  const bool simd = lang == Lang::kCxxSimd;
  switch (f) {
    case expr::Func2::kAtan2: return cxx ? "std::atan2" : "atan2";
    // std::fmin/fmax stay libm calls the vectorizer cannot widen (IEEE
    // NaN rules do not map onto vminpd/vmaxpd); the omx_ forms are
    // compare+blend selects that vectorize.
    case expr::Func2::kMin: return simd ? "omx_fmin" : cxx ? "std::fmin" : "min";
    case expr::Func2::kMax: return simd ? "omx_fmax" : cxx ? "std::fmax" : "max";
    case expr::Func2::kHypot:
      return simd ? "omx_hypot" : cxx ? "std::hypot" : "omx_hypot";
  }
  return "?";
}

class CodePrinter {
 public:
  CodePrinter(const expr::Pool& p, const Interner& names, Lang lang)
      : p_(p), names_(names), lang_(lang) {}

  void print(std::ostringstream& os, expr::ExprId id, int parent_prec,
             bool right_side) {
    const expr::Node& n = p_.node(id);
    const int prec = precedence(n);
    const bool parens =
        prec < parent_prec ||
        (prec == parent_prec && right_side && prec != 4 && prec != 5);
    switch (n.op) {
      case expr::Op::kConst: {
        const double v = p_.const_value(id);
        std::ostringstream num;
        num.precision(17);
        num << v;
        std::string s = num.str();
        // Force a floating literal (Fortran integer division pitfalls, C++
        // int/int truncation): append .0 when no '.', 'e' or similar.
        if (s.find_first_of(".eE") == std::string::npos &&
            s.find("inf") == std::string::npos &&
            s.find("nan") == std::string::npos) {
          s += ".0";
        }
        if (lang_ == Lang::kFortran90) {
          s += "_dp";
        }
        if (v < 0.0) {
          os << '(' << s << ')';
        } else {
          os << s;
        }
        return;
      }
      case expr::Op::kSym:
        os << names_.name(static_cast<SymbolId>(n.a));
        return;
      case expr::Op::kCall1:
        os << func1_code_name(static_cast<expr::Func1>(n.fn), lang_) << '(';
        print(os, n.a, 0, false);
        os << ')';
        return;
      case expr::Op::kCall2:
        os << func2_code_name(static_cast<expr::Func2>(n.fn), lang_) << '(';
        print(os, n.a, 0, false);
        os << ", ";
        print(os, n.b, 0, false);
        os << ')';
        return;
      case expr::Op::kPow:
        if (lang_ != Lang::kFortran90) {
          os << (lang_ == Lang::kCxxSimd ? "omx_pow(" : "std::pow(");
          print(os, n.a, 0, false);
          os << ", ";
          print(os, n.b, 0, false);
          os << ')';
          return;
        }
        if (parens) os << '(';
        print(os, n.a, 5, false);
        os << "**";
        print(os, n.b, 4, true);
        if (parens) os << ')';
        return;
      case expr::Op::kDer:
        throw omx::Error("cannot emit der() as a value");
      default:
        break;
    }
    if (parens) os << '(';
    switch (n.op) {
      case expr::Op::kAdd:
        print(os, n.a, 1, false);
        os << " + ";
        print(os, n.b, 1, true);
        break;
      case expr::Op::kSub:
        print(os, n.a, 1, false);
        os << " - ";
        print(os, n.b, 1, true);
        break;
      case expr::Op::kMul:
        print(os, n.a, 2, false);
        os << "*";
        print(os, n.b, 2, true);
        break;
      case expr::Op::kDiv:
        print(os, n.a, 2, false);
        os << "/";
        print(os, n.b, 2, true);
        break;
      case expr::Op::kNeg:
        os << "-";
        print(os, n.a, 3, true);
        break;
      default:
        OMX_REQUIRE(false, "unreachable code op");
    }
    if (parens) os << ')';
  }

 private:
  const expr::Pool& p_;
  const Interner& names_;
  Lang lang_;
};

}  // namespace

std::string to_code(const expr::Pool& pool, const Interner& names,
                    expr::ExprId id, Lang lang) {
  std::ostringstream os;
  CodePrinter(pool, names, lang).print(os, id, 0, false);
  return os.str();
}

std::string sanitize_identifier(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      out += c;
    } else {
      out += '_';
    }
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0]))) {
    out = "v" + out;
  }
  return out;
}

}  // namespace omx::codegen
