// Shared machinery for the text emitters (Fortran 90 and C++): local-name
// planning (state aliases, parameter constants, sanitized temps) and the
// per-unit CSE preparation step.
#pragma once

#include <set>
#include <unordered_map>
#include <vector>

#include "omx/codegen/cse.hpp"
#include "omx/codegen/tasks.hpp"

namespace omx::codegen {

/// Symbol -> local-alias substitution for one emission unit, plus what the
/// unit referenced (drives declaration emission).
struct RenamePlan {
  std::unordered_map<SymbolId, expr::ExprId> map;
  std::vector<std::pair<std::string, int>> state_aliases;    // alias, index
  std::vector<std::pair<std::string, double>> param_consts;  // alias, value
  std::set<std::string> locals;  // all alias names introduced
};

RenamePlan plan_renames(const model::FlatSystem& flat,
                        const std::vector<expr::ExprId>& exprs);

struct UnitEmission {
  RenamePlan renames;
  CseResult cse;
  std::vector<TaskUnit> units;  // parallel mode only
};

UnitEmission prepare_unit(const model::FlatSystem& flat,
                          const std::vector<expr::ExprId>& roots,
                          const std::string& temp_prefix,
                          std::size_t cse_min_ops);

expr::ExprId apply_renames(expr::Context& ctx, const RenamePlan& plan,
                           expr::ExprId e);

}  // namespace omx::codegen
