#include "omx/codegen/tape.hpp"

#include <algorithm>
#include <unordered_map>

#include "omx/expr/derivative.hpp"
#include "omx/expr/simplify.hpp"

namespace omx::codegen {

namespace {

/// Incremental tape builder with a per-unit expression memo.
class TapeBuilder {
 public:
  explicit TapeBuilder(const model::FlatSystem& flat)
      : flat_(flat), ctx_(flat.ctx()) {
    prog_.n_state = static_cast<std::uint32_t>(flat.num_states());
    prog_.n_out = prog_.n_state;
    next_reg_ = prog_.n_state + 1;  // states + t
  }

  /// Overrides the output-slot count (Jacobian programs use n_state^2).
  void set_num_outputs(std::uint32_t n_out) { prog_.n_out = n_out; }

  /// Clears cross-expression sharing (used between parallel tasks).
  void reset_memo() { memo_.clear(); }

  /// Registers an extra named value (e.g. a serial-mode algebraic) so that
  /// later expressions referencing `name` read the given register.
  void bind_symbol(SymbolId name, std::uint32_t reg) {
    symbol_reg_[name] = reg;
  }

  std::uint32_t compile_expr(expr::ExprId e) {
    if (auto it = memo_.find(e); it != memo_.end()) {
      return it->second;
    }
    const expr::Node n = ctx_.pool.node(e);
    std::uint32_t reg;
    switch (n.op) {
      case expr::Op::kConst:
        reg = const_reg(ctx_.pool.const_value(e));
        break;
      case expr::Op::kSym: {
        const SymbolId s = static_cast<SymbolId>(n.a);
        reg = symbol_register(s);
        break;
      }
      case expr::Op::kAdd:
        reg = emit2(vm::OpCode::kAdd, 0, n.a, n.b);
        break;
      case expr::Op::kSub:
        reg = emit2(vm::OpCode::kSub, 0, n.a, n.b);
        break;
      case expr::Op::kMul:
        reg = emit2(vm::OpCode::kMul, 0, n.a, n.b);
        break;
      case expr::Op::kDiv:
        reg = emit2(vm::OpCode::kDiv, 0, n.a, n.b);
        break;
      case expr::Op::kPow:
        reg = compile_pow(n.a, n.b);
        break;
      case expr::Op::kNeg:
        reg = emit1(vm::OpCode::kNeg, 0, n.a);
        break;
      case expr::Op::kCall1:
        reg = emit1(vm::OpCode::kFunc1, n.fn, n.a);
        break;
      case expr::Op::kCall2:
        reg = emit2(vm::OpCode::kFunc2, n.fn, n.a, n.b);
        break;
      case expr::Op::kDer:
      default:
        throw omx::Error("cannot compile der() as a value");
    }
    memo_.emplace(e, reg);
    return reg;
  }

  std::uint32_t begin_task() {
    return static_cast<std::uint32_t>(prog_.code.size());
  }

  void finish_task(std::uint32_t code_begin, std::vector<vm::Output> outputs,
                   std::vector<std::uint32_t> in_states, std::string label) {
    vm::TaskCode t;
    t.code_begin = code_begin;
    t.code_end = static_cast<std::uint32_t>(prog_.code.size());
    t.est_ops = t.code_end - t.code_begin;
    t.outputs = std::move(outputs);
    t.in_states = std::move(in_states);
    t.label = std::move(label);
    prog_.tasks.push_back(std::move(t));
  }

  vm::Program take() {
    prog_.n_regs = next_reg_;
    prog_.init_regs.assign(prog_.n_regs, 0.0);
    for (const auto& [value, reg] : const_regs_) {
      prog_.init_regs[reg] = value;
    }
    prog_.validate();
    return std::move(prog_);
  }

  /// States referenced by `e` (for message-size accounting).
  std::vector<std::uint32_t> input_states(expr::ExprId e) const {
    std::vector<SymbolId> syms;
    ctx_.pool.free_syms(e, syms);
    std::vector<std::uint32_t> states;
    for (SymbolId s : syms) {
      if (int idx = flat_.state_index(s); idx >= 0) {
        states.push_back(static_cast<std::uint32_t>(idx));
      }
    }
    std::sort(states.begin(), states.end());
    states.erase(std::unique(states.begin(), states.end()), states.end());
    return states;
  }

 private:
  std::uint32_t fresh_reg() { return next_reg_++; }

  std::uint32_t const_reg(double v) {
    if (auto it = std::find_if(
            const_regs_.begin(), const_regs_.end(),
            [&](const auto& p) { return p.first == v; });
        it != const_regs_.end()) {
      return it->second;
    }
    const std::uint32_t reg = fresh_reg();
    const_regs_.emplace_back(v, reg);
    return reg;
  }

  std::uint32_t symbol_register(SymbolId s) {
    if (auto it = symbol_reg_.find(s); it != symbol_reg_.end()) {
      return it->second;
    }
    if (int idx = flat_.state_index(s); idx >= 0) {
      return static_cast<std::uint32_t>(idx);
    }
    if (s == flat_.time_symbol()) {
      return prog_.t_reg();
    }
    if (flat_.is_parameter(s)) {
      return const_reg(flat_.parameter_value(s));
    }
    throw omx::Error("tape compile: unresolved symbol '" +
                     ctx_.names.name(s) + "' (algebraic not inlined?)");
  }

  /// Strength reduction for pow with a small constant exponent — the hot
  /// path of the contact models (delta^1.5 for Hertz contacts, squares
  /// and cubes everywhere): multiplications and sqrt are an order of
  /// magnitude cheaper than the libm pow call.
  std::uint32_t compile_pow(expr::ExprId base, expr::ExprId expo) {
    const expr::Node& e = ctx_.pool.node(expo);
    if (e.op == expr::Op::kConst) {
      const double c = ctx_.pool.const_value(expo);
      const std::uint32_t rb = compile_expr(base);
      auto mul = [&](std::uint32_t x, std::uint32_t y) {
        const std::uint32_t dst = fresh_reg();
        prog_.code.push_back(vm::Instr{vm::OpCode::kMul, 0, dst, x, y});
        return dst;
      };
      auto sqrt_of = [&](std::uint32_t x) {
        const std::uint32_t dst = fresh_reg();
        prog_.code.push_back(vm::Instr{
            vm::OpCode::kFunc1,
            static_cast<std::uint8_t>(expr::Func1::kSqrt), dst, x, 0});
        return dst;
      };
      if (c == 2.0) return mul(rb, rb);
      if (c == 3.0) return mul(mul(rb, rb), rb);
      if (c == 4.0) {
        const std::uint32_t sq = mul(rb, rb);
        return mul(sq, sq);
      }
      if (c == 0.5) return sqrt_of(rb);
      // x^1.5 = x * sqrt(x); valid on x >= 0, which the contact gating
      // guarantees for the max(delta, 0)^1.5 pattern. pow(x, 1.5) is NaN
      // for x < 0 anyway, so the rewrite never changes a finite result.
      if (c == 1.5) return mul(rb, sqrt_of(rb));
    }
    return emit2(vm::OpCode::kPow, 0, base, expo);
  }

  std::uint32_t emit1(vm::OpCode op, std::uint8_t fn, expr::ExprId a) {
    const std::uint32_t ra = compile_expr(a);
    const std::uint32_t dst = fresh_reg();
    prog_.code.push_back(vm::Instr{op, fn, dst, ra, 0});
    return dst;
  }

  std::uint32_t emit2(vm::OpCode op, std::uint8_t fn, expr::ExprId a,
                      expr::ExprId b) {
    const std::uint32_t ra = compile_expr(a);
    const std::uint32_t rb = compile_expr(b);
    const std::uint32_t dst = fresh_reg();
    prog_.code.push_back(vm::Instr{op, fn, dst, ra, rb});
    return dst;
  }

  const model::FlatSystem& flat_;
  expr::Context& ctx_;
  vm::Program prog_;
  std::uint32_t next_reg_ = 0;
  std::unordered_map<expr::ExprId, std::uint32_t> memo_;
  std::unordered_map<SymbolId, std::uint32_t> symbol_reg_;
  std::vector<std::pair<double, std::uint32_t>> const_regs_;
};

}  // namespace

vm::Program compile_parallel_tape(const model::FlatSystem& flat,
                                  const TaskPlan& plan) {
  TapeBuilder b(flat);
  for (const TaskSpec& spec : plan.tasks) {
    b.reset_memo();  // nothing is shared between tasks
    const std::uint32_t begin = b.begin_task();
    std::vector<vm::Output> outputs;
    std::vector<std::uint32_t> in_states;
    for (const TaskUnit& u : spec.units) {
      const std::uint32_t reg = b.compile_expr(u.rhs);
      outputs.push_back(
          vm::Output{reg, static_cast<std::uint32_t>(u.state)});
      const auto ins = b.input_states(u.rhs);
      in_states.insert(in_states.end(), ins.begin(), ins.end());
    }
    std::sort(in_states.begin(), in_states.end());
    in_states.erase(std::unique(in_states.begin(), in_states.end()),
                    in_states.end());
    b.finish_task(begin, std::move(outputs), std::move(in_states),
                  spec.label);
  }
  return b.take();
}

vm::Program compile_serial_tape(const model::FlatSystem& flat,
                                const AssignmentSet& set) {
  TapeBuilder b(flat);
  const std::uint32_t begin = b.begin_task();
  // Algebraics computed once, in dependency order, each bound to the
  // register holding its value; the global memo shares everything else.
  for (const Assignment& a : set.algebraics) {
    b.bind_symbol(a.target, b.compile_expr(a.rhs));
  }
  std::vector<vm::Output> outputs;
  std::vector<std::uint32_t> in_states;
  for (const Assignment& a : set.states) {
    const std::uint32_t reg = b.compile_expr(a.rhs);
    outputs.push_back(vm::Output{reg, static_cast<std::uint32_t>(a.index)});
  }
  for (std::uint32_t i = 0; i < flat.num_states(); ++i) {
    in_states.push_back(i);
  }
  b.finish_task(begin, std::move(outputs), std::move(in_states), "serial");
  return b.take();
}

vm::Program compile_jacobian_tape(const model::FlatSystem& flat) {
  expr::Context& ctx = flat.ctx();
  const std::size_t n = flat.num_states();

  TapeBuilder b(flat);
  b.set_num_outputs(static_cast<std::uint32_t>(n * n));
  const std::uint32_t begin = b.begin_task();
  std::vector<vm::Output> outputs;

  // Jacobian entries are emitted into one big task sharing a global memo —
  // entries of one row share most of their structure.
  for (std::size_t i = 0; i < n; ++i) {
    const expr::ExprId rhs =
        inline_algebraics(flat, flat.states()[i].rhs);
    for (std::size_t j = 0; j < n; ++j) {
      const expr::ExprId d = expr::simplify(
          ctx.pool,
          expr::differentiate(ctx.pool, rhs, flat.states()[j].name));
      if (ctx.pool.is_const(d, 0.0)) {
        continue;  // structural zero: slot stays 0
      }
      const std::uint32_t reg = b.compile_expr(d);
      outputs.push_back(vm::Output{
          reg, static_cast<std::uint32_t>(i * n + j)});
    }
  }
  std::vector<std::uint32_t> in_states;
  for (std::uint32_t i = 0; i < n; ++i) {
    in_states.push_back(i);
  }
  b.finish_task(begin, std::move(outputs), std::move(in_states), "jacobian");
  return b.take();
}

vm::Program compile_sparse_jacobian_tape(const model::FlatSystem& flat,
                                         const la::SparsityPattern& pattern) {
  expr::Context& ctx = flat.ctx();
  const std::size_t n = flat.num_states();
  OMX_REQUIRE(pattern.rows == n && pattern.cols == n,
              "sparsity pattern shape does not match the flat system");

  TapeBuilder b(flat);
  b.set_num_outputs(static_cast<std::uint32_t>(pattern.nnz()));
  const std::uint32_t begin = b.begin_task();
  std::vector<vm::Output> outputs;

  for (std::size_t i = 0; i < n; ++i) {
    const expr::ExprId rhs =
        inline_algebraics(flat, flat.states()[i].rhs);
    for (std::size_t k = pattern.row_ptr[i]; k < pattern.row_ptr[i + 1];
         ++k) {
      const std::size_t j = pattern.col_idx[k];
      const expr::ExprId d = expr::simplify(
          ctx.pool,
          expr::differentiate(ctx.pool, rhs, flat.states()[j].name));
      if (ctx.pool.is_const(d, 0.0)) {
        continue;  // in-pattern but analytically zero: slot stays 0
      }
      const std::uint32_t reg = b.compile_expr(d);
      outputs.push_back(vm::Output{reg, static_cast<std::uint32_t>(k)});
    }
  }
  std::vector<std::uint32_t> in_states;
  for (std::uint32_t i = 0; i < n; ++i) {
    in_states.push_back(i);
  }
  b.finish_task(begin, std::move(outputs), std::move(in_states),
                "jacobian_sparse");
  return b.take();
}

}  // namespace omx::codegen
