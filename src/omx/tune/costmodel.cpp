#include "omx/tune/costmodel.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <thread>

#include "omx/support/diagnostics.hpp"

namespace omx::tune {

namespace {

/// Effective parallelism of an ensemble configuration: workers beyond
/// the hardware thread count timeshare, and workers beyond the batch
/// count idle (the LPT deal hands each worker at most ceil(S/B) full
/// batches' worth of scenarios).
std::size_t effective_workers(std::size_t workers, std::size_t scenarios,
                              std::size_t batch, std::size_t hw) {
  const std::size_t batches =
      batch > 0 ? (scenarios + batch - 1) / batch : scenarios;
  std::size_t w = std::max<std::size_t>(1, workers);
  w = std::min(w, std::max<std::size_t>(1, hw));
  w = std::min(w, std::max<std::size_t>(1, batches));
  return w;
}

/// Candidate grid: powers of two up to `cap`, plus `cap` itself.
std::vector<std::size_t> pow2_grid(std::size_t cap) {
  std::vector<std::size_t> g;
  for (std::size_t v = 1; v <= cap; v *= 2) {
    g.push_back(v);
  }
  if (g.empty() || g.back() != cap) {
    g.push_back(std::max<std::size_t>(1, cap));
  }
  return g;
}

}  // namespace

// ------------------------------------------------------------- ensemble

EnsembleModel::EnsembleModel(std::size_t hw_threads) : hw_(hw_threads) {
  if (hw_ == 0) {
    hw_ = std::max(1u, std::thread::hardware_concurrency());
  }
}

std::vector<double> EnsembleModel::features(std::size_t scenarios,
                                            std::size_t workers,
                                            std::size_t batch,
                                            double lane_evals,
                                            std::size_t hw) {
  const std::size_t b = std::max<std::size_t>(1, batch);
  const double weff = static_cast<double>(
      effective_workers(workers, scenarios, b, hw));
  return {lane_evals / static_cast<double>(b) / weff,  // dispatches/worker
          lane_evals / weff,                           // lane evals/worker
          static_cast<double>(workers)};               // spawn overhead
}

void EnsembleModel::add(const EnsembleObservation& obs) {
  if (obs.scenarios == 0 || obs.seconds <= 0.0 || obs.lane_evals <= 0.0) {
    return;
  }
  if (window_.size() >= kWindowCap) {
    window_.erase(window_.begin());
  }
  window_.push_back(obs);
}

bool EnsembleModel::refit() {
  if (window_.empty()) {
    return false;
  }
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  double evals = 0.0, scen = 0.0;
  for (const EnsembleObservation& o : window_) {
    rows.push_back(features(o.scenarios, o.workers, o.batch, o.lane_evals,
                            hw_));
    y.push_back(o.seconds);
    evals += o.lane_evals;
    scen += static_cast<double>(o.scenarios);
  }
  fit_ = fit_least_squares(rows, y);
  evals_per_scenario_ = scen > 0.0 ? evals / scen : 0.0;
  return ready();
}

bool EnsembleModel::ready() const {
  if (fit_.coef.empty() || fit_.degenerate || evals_per_scenario_ <= 0.0) {
    return false;
  }
  std::set<std::pair<std::size_t, std::size_t>> configs;
  for (const EnsembleObservation& o : window_) {
    configs.insert({o.workers, o.batch});
  }
  return configs.size() >= 3;
}

double EnsembleModel::predict(std::size_t scenarios, std::size_t workers,
                              std::size_t batch) const {
  OMX_REQUIRE(!fit_.coef.empty(), "EnsembleModel::predict before refit");
  const double evals =
      evals_per_scenario_ * static_cast<double>(scenarios);
  const std::vector<double> row =
      features(scenarios, workers, batch, evals, hw_);
  // Cost surfaces are nonnegative; a tiny negative prediction from an
  // imperfect fit must not outrank every real configuration.
  return std::max(0.0, fit_.predict(row));
}

EnsembleConfig EnsembleModel::pick(std::size_t scenarios,
                                   std::size_t max_workers,
                                   std::size_t max_batch) const {
  OMX_REQUIRE(ready(), "EnsembleModel::pick requires a ready model");
  EnsembleConfig best;
  bool first = true;
  for (const std::size_t w : pow2_grid(std::max<std::size_t>(
           1, std::min(max_workers, std::max<std::size_t>(1, scenarios))))) {
    for (const std::size_t b :
         pow2_grid(std::max<std::size_t>(1, max_batch))) {
      const double pred = predict(scenarios, w, b);
      if (first || pred < best.predicted_seconds) {
        best = {w, b, pred};
        first = false;
      }
    }
  }
  return best;
}

// ---------------------------------------------------------------- stiff

std::vector<double> StiffModel::features(int threads) {
  const double t = static_cast<double>(std::max(1, threads));
  return {1.0, 1.0 / t, t};
}

void StiffModel::add(const StiffObservation& obs) {
  if (obs.seconds <= 0.0) {
    return;
  }
  if (window_.size() >= kWindowCap) {
    window_.erase(window_.begin());
  }
  window_.push_back(obs);
}

bool StiffModel::refit() {
  for (const bool sparse : {false, true}) {
    std::vector<std::vector<double>> rows;
    std::vector<double> y;
    for (const StiffObservation& o : window_) {
      if (o.sparse == sparse) {
        rows.push_back(features(o.jac_threads));
        y.push_back(o.seconds);
      }
    }
    (sparse ? sparse_fit_ : dense_fit_) = fit_least_squares(rows, y);
  }
  return has_backend(false) || has_backend(true);
}

bool StiffModel::has_backend(bool sparse) const {
  for (const StiffObservation& o : window_) {
    if (o.sparse == sparse) {
      return true;
    }
  }
  return false;
}

double StiffModel::predict(bool sparse, int threads) const {
  const FitResult& f = sparse ? sparse_fit_ : dense_fit_;
  if (!f.coef.empty() && !f.degenerate) {
    return std::max(0.0, f.predict(features(threads)));
  }
  // Degenerate fit (fewer than 3 distinct thread counts observed):
  // predict the mean of the nearest observed thread count instead of
  // extrapolating a singular curve.
  double best_dist = 0.0, sum = 0.0;
  std::size_t count = 0;
  int nearest = -1;
  for (const StiffObservation& o : window_) {
    if (o.sparse != sparse) {
      continue;
    }
    const double d = std::fabs(static_cast<double>(o.jac_threads - threads));
    if (nearest < 0 || d < best_dist) {
      best_dist = d;
      nearest = o.jac_threads;
      sum = 0.0;
      count = 0;
    }
    if (o.jac_threads == nearest) {
      sum += o.seconds;
      ++count;
    }
  }
  OMX_REQUIRE(count > 0, "StiffModel::predict: no observations for backend");
  return sum / static_cast<double>(count);
}

std::optional<StiffConfig> StiffModel::pick(int max_threads) const {
  std::optional<StiffConfig> best;
  for (const bool sparse : {false, true}) {
    if (!has_backend(sparse)) {
      continue;
    }
    const FitResult& f = sparse ? sparse_fit_ : dense_fit_;
    std::vector<int> candidates;
    if (!f.coef.empty() && !f.degenerate) {
      for (const std::size_t t :
           pow2_grid(static_cast<std::size_t>(std::max(1, max_threads)))) {
        candidates.push_back(static_cast<int>(t));
      }
    } else {
      // Degenerate: only rank thread counts we actually measured.
      std::set<int> seen;
      for (const StiffObservation& o : window_) {
        if (o.sparse == sparse && o.jac_threads <= max_threads) {
          seen.insert(o.jac_threads);
        }
      }
      candidates.assign(seen.begin(), seen.end());
    }
    for (const int t : candidates) {
      const double pred = predict(sparse, t);
      if (!best || pred < best->predicted_seconds) {
        best = StiffConfig{sparse, t, pred};
      }
    }
  }
  return best;
}

}  // namespace omx::tune
