// Least-squares fitting substrate for the performance-model layer.
//
// The auto-tuner (tune/autotuner.hpp) predicts makespan as a linear
// combination of hand-chosen feature terms (Extra-P style: small
// compositional term sets like {1, 1/T, T} or {rounds, lane_evals,
// workers}), fitted to a handful of measured calibration runs. The
// fitter therefore optimizes for robustness on tiny, possibly
// degenerate sample sets, not for big-data throughput:
//
//  * fewer samples than terms, exact collinearity, or zero-variance
//    columns never throw — singular directions get a zero coefficient
//    and the result is marked `degenerate`;
//  * columns are equilibrated (scaled by their max magnitude) before
//    the normal equations are formed, so terms of wildly different
//    magnitude (a per-call overhead next to a total-work term) fit to
//    full double precision.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace omx::tune {

struct FitResult {
  /// One coefficient per feature column (zero for singular directions).
  std::vector<double> coef;
  /// Residual sum of squares over the training samples.
  double rss = 0.0;
  /// Coefficient of determination; 0 when tss is 0 (constant target).
  double r2 = 0.0;
  std::size_t samples = 0;
  /// Under-determined or singular normal equations: the fit is still
  /// usable for interpolation near the samples, but callers should not
  /// trust extrapolated predictions (AutoTuner refuses to pick from a
  /// degenerate model).
  bool degenerate = false;

  /// Fitted prediction for one feature row (row.size() == coef.size()).
  double predict(std::span<const double> row) const;
};

/// Ordinary least squares: rows[i] is the i-th sample's feature vector,
/// y[i] its target. All rows must share one size; an empty input yields
/// an all-zero degenerate result.
FitResult fit_least_squares(const std::vector<std::vector<double>>& rows,
                            const std::vector<double>& y);

/// Greedy LPT makespan: sort costs descending, place each on the least
/// loaded of `workers` bins (ties break toward the lowest index), return
/// the maximum bin load. This is the schedule shape the paper's §3.2
/// scheduler produces, so predicted per-task costs turn into a predicted
/// makespan through it. workers == 0 returns 0.
double lpt_makespan(std::vector<double> costs, std::size_t workers);

}  // namespace omx::tune
