#include "omx/tune/fit.hpp"

#include <algorithm>
#include <cmath>

#include "omx/support/diagnostics.hpp"

namespace omx::tune {

double FitResult::predict(std::span<const double> row) const {
  OMX_REQUIRE(row.size() == coef.size(),
              "FitResult::predict: feature row size mismatch");
  double acc = 0.0;
  for (std::size_t j = 0; j < row.size(); ++j) {
    acc += coef[j] * row[j];
  }
  return acc;
}

FitResult fit_least_squares(const std::vector<std::vector<double>>& rows,
                            const std::vector<double>& y) {
  FitResult out;
  out.samples = rows.size();
  if (rows.empty() || y.size() != rows.size()) {
    out.degenerate = true;
    return out;
  }
  const std::size_t k = rows[0].size();
  out.coef.assign(k, 0.0);
  if (k == 0) {
    out.degenerate = true;
    return out;
  }
  for (const std::vector<double>& r : rows) {
    OMX_REQUIRE(r.size() == k, "fit_least_squares: ragged feature rows");
  }
  if (rows.size() < k) {
    out.degenerate = true;
  }

  // Column equilibration: scale each feature by its max magnitude so the
  // normal equations stay well conditioned when terms span many orders
  // of magnitude. All-zero columns are singular by construction; they
  // keep scale 1 and fall out at the pivot stage.
  std::vector<double> scale(k, 1.0);
  for (std::size_t j = 0; j < k; ++j) {
    double m = 0.0;
    for (const std::vector<double>& r : rows) {
      m = std::max(m, std::fabs(r[j]));
    }
    if (m > 0.0) {
      scale[j] = m;
    }
  }

  // Normal equations over the scaled columns: A = X~^T X~, b = X~^T y.
  std::vector<double> a(k * k, 0.0);
  std::vector<double> b(k, 0.0);
  for (std::size_t s = 0; s < rows.size(); ++s) {
    for (std::size_t i = 0; i < k; ++i) {
      const double xi = rows[s][i] / scale[i];
      b[i] += xi * y[s];
      for (std::size_t j = i; j < k; ++j) {
        a[i * k + j] += xi * rows[s][j] / scale[j];
      }
    }
  }
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      a[i * k + j] = a[j * k + i];
    }
  }

  // Gaussian elimination with partial pivoting. A vanishing pivot marks
  // a singular direction (collinear or all-zero column after the
  // eliminations so far): its coefficient is pinned to zero and the
  // row/column is skipped rather than aborting the whole fit.
  std::vector<std::size_t> perm(k);
  for (std::size_t i = 0; i < k; ++i) {
    perm[i] = i;
  }
  std::vector<bool> dead(k, false);
  // Pivot threshold relative to the largest diagonal magnitude.
  double diag_max = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    diag_max = std::max(diag_max, std::fabs(a[i * k + i]));
  }
  const double tiny = std::max(diag_max, 1.0) * 1e-12;

  for (std::size_t col = 0; col < k; ++col) {
    std::size_t piv = col;
    double best = std::fabs(a[perm[col] * k + col]);
    for (std::size_t r = col + 1; r < k; ++r) {
      const double v = std::fabs(a[perm[r] * k + col]);
      if (v > best) {
        best = v;
        piv = r;
      }
    }
    if (best <= tiny) {
      dead[col] = true;
      out.degenerate = true;
      continue;
    }
    std::swap(perm[col], perm[piv]);
    const double d = a[perm[col] * k + col];
    for (std::size_t r = 0; r < k; ++r) {
      if (r == col) {
        continue;
      }
      const double f = a[perm[r] * k + col] / d;
      if (f == 0.0) {
        continue;
      }
      for (std::size_t j = col; j < k; ++j) {
        a[perm[r] * k + j] -= f * a[perm[col] * k + j];
      }
      b[perm[r]] -= f * b[perm[col]];
    }
  }
  for (std::size_t col = 0; col < k; ++col) {
    if (dead[col]) {
      out.coef[col] = 0.0;
    } else {
      out.coef[col] = b[perm[col]] / a[perm[col] * k + col] / scale[col];
    }
  }

  // Residual diagnostics on the unscaled model.
  double mean = 0.0;
  for (const double v : y) {
    mean += v;
  }
  mean /= static_cast<double>(y.size());
  double tss = 0.0;
  for (std::size_t s = 0; s < rows.size(); ++s) {
    const double r = y[s] - out.predict(rows[s]);
    out.rss += r * r;
    tss += (y[s] - mean) * (y[s] - mean);
  }
  out.r2 = tss > 0.0 ? std::max(0.0, 1.0 - out.rss / tss) : 0.0;
  return out;
}

double lpt_makespan(std::vector<double> costs, std::size_t workers) {
  if (workers == 0 || costs.empty()) {
    return 0.0;
  }
  std::sort(costs.begin(), costs.end(), std::greater<>());
  std::vector<double> load(workers, 0.0);
  for (const double c : costs) {
    std::size_t target = 0;
    for (std::size_t w = 1; w < workers; ++w) {
      if (load[w] < load[target]) {
        target = w;
      }
    }
    load[target] += c;
  }
  return *std::max_element(load.begin(), load.end());
}

}  // namespace omx::tune
