#include "omx/tune/autotuner.hpp"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <thread>

#include "omx/obs/export.hpp"
#include "omx/obs/registry.hpp"
#include "omx/support/config.hpp"
#include "omx/support/diagnostics.hpp"

namespace omx::tune {

namespace {

/// Refit after this many new samples even without a drift trigger.
constexpr std::size_t kRefitCadence = 4;
/// Below this many windowed samples every record refits: the fits are
/// three-column least squares, so keeping a cold model exactly current
/// costs nothing and calibration runs are never left out of the model.
constexpr std::size_t kWarmSamples = 16;

std::atomic<int>& mode_cell() {
  static std::atomic<int> cell{-1};
  return cell;
}

Mode mode_from_env() {
  const std::string v = config::get_string("OMX_TUNE", "off");
  if (v == "on") {
    return Mode::kOn;
  }
  if (v == "calibrate") {
    return Mode::kCalibrate;
  }
  if (v != "off") {
    const std::string err =
        "OMX_TUNE must be off, calibrate or on (got \"" + v + "\")";
    OMX_REQUIRE(false, err.c_str());
  }
  return Mode::kOff;
}

void append_number(std::ostringstream& os, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  // JSON has no nan/inf literals; a poisoned fit must not break parsers.
  os << (std::isfinite(v) ? buf : "null");
}

void append_fit(std::ostringstream& os, const FitResult& f,
                const char* const* terms, std::size_t nterms) {
  os << "{\"terms\":[";
  for (std::size_t j = 0; j < nterms; ++j) {
    os << (j ? "," : "") << '"' << terms[j] << '"';
  }
  os << "],\"coef\":[";
  for (std::size_t j = 0; j < f.coef.size(); ++j) {
    if (j) {
      os << ',';
    }
    append_number(os, f.coef[j]);
  }
  os << "],\"samples\":" << f.samples << ",\"rss\":";
  append_number(os, f.rss);
  os << ",\"r2\":";
  append_number(os, f.r2);
  os << ",\"degenerate\":" << (f.degenerate ? "true" : "false") << '}';
}

void export_at_exit() {
  const std::string path = config::get_string("OMX_TUNE_EXPORT", "");
  if (!path.empty()) {
    AutoTuner::global().export_json(path);
  }
}

}  // namespace

Mode mode() {
  int m = mode_cell().load(std::memory_order_relaxed);
  if (m < 0) {
    m = static_cast<int>(mode_from_env());
    mode_cell().store(m, std::memory_order_relaxed);
  }
  return static_cast<Mode>(m);
}

void set_mode(Mode m) {
  mode_cell().store(static_cast<int>(m), std::memory_order_relaxed);
}

const char* to_string(Mode m) {
  switch (m) {
    case Mode::kOff:
      return "off";
    case Mode::kCalibrate:
      return "calibrate";
    case Mode::kOn:
      return "on";
  }
  return "off";
}

AutoTuner& AutoTuner::global() {
  static AutoTuner* tuner = [] {
    auto* t = new AutoTuner();
    if (!config::get_string("OMX_TUNE_EXPORT", "").empty()) {
      std::atexit(export_at_exit);
    }
    return t;
  }();
  return *tuner;
}

AutoTuner::AutoTuner()
    : drift_threshold_(config::get_double("OMX_TUNE_DRIFT", 0.5)) {
  if (!(drift_threshold_ > 0.0)) {
    drift_threshold_ = 0.5;
  }
}

void AutoTuner::record_ensemble(const EnsembleObservation& obs) {
  if (obs.scenarios == 0 || obs.seconds <= 0.0 || obs.lane_evals <= 0.0) {
    return;
  }
  bool drift = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    EnsembleModel& m = ensembles_.try_emplace(obs.problem_n).first->second;
    if (m.ready()) {
      const double pred = std::max(
          0.0, m.fit_result().predict(EnsembleModel::features(
                   obs.scenarios, obs.workers, obs.batch, obs.lane_evals,
                   m.hw_threads())));
      drift = std::fabs(pred - obs.seconds) > drift_threshold_ * obs.seconds;
    }
    m.add(obs);
    std::size_t& fresh = ensemble_new_samples_[obs.problem_n];
    ++fresh;
    if (drift || fresh >= kRefitCadence || !m.ready() ||
        m.observations().size() < kWarmSamples) {
      m.refit();
      fresh = 0;
      obs::Registry::global().counter("tune.refits").add();
    }
  }
  obs::Registry::global().counter("tune.observations").add();
  if (drift) {
    obs::Registry::global().counter("tune.drift_events").add();
  }
}

std::optional<EnsembleConfig> AutoTuner::pick_ensemble(
    std::size_t problem_n, std::size_t scenarios, std::size_t max_workers,
    std::size_t max_batch) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = ensembles_.find(problem_n);
  if (it == ensembles_.end() || !it->second.ready() || scenarios == 0) {
    return std::nullopt;
  }
  obs::Registry::global().counter("tune.picks").add();
  return it->second.pick(scenarios, std::max<std::size_t>(1, max_workers),
                         std::max<std::size_t>(1, max_batch));
}

bool AutoTuner::ensemble_ready(std::size_t problem_n) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = ensembles_.find(problem_n);
  return it != ensembles_.end() && it->second.ready();
}

double AutoTuner::predict_ensemble(std::size_t problem_n,
                                   std::size_t scenarios, std::size_t workers,
                                   std::size_t batch) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = ensembles_.find(problem_n);
  OMX_REQUIRE(it != ensembles_.end() && it->second.ready(),
              "predict_ensemble: no ready model for this problem size");
  return it->second.predict(scenarios, workers, batch);
}

void AutoTuner::record_stiff(const StiffObservation& obs) {
  if (obs.seconds <= 0.0) {
    return;
  }
  bool drift = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    StiffModel& m = stiffs_[obs.problem_n];
    if (m.has_backend(obs.sparse)) {
      const double pred = m.predict(obs.sparse, obs.jac_threads);
      drift = std::fabs(pred - obs.seconds) > drift_threshold_ * obs.seconds;
    }
    m.add(obs);
    std::size_t& fresh = stiff_new_samples_[obs.problem_n];
    ++fresh;
    if (drift || fresh >= kRefitCadence ||
        m.observations().size() < kWarmSamples) {
      m.refit();
      fresh = 0;
      obs::Registry::global().counter("tune.refits").add();
    }
  }
  obs::Registry::global().counter("tune.observations").add();
  if (drift) {
    obs::Registry::global().counter("tune.drift_events").add();
  }
}

std::optional<StiffConfig> AutoTuner::pick_stiff(std::size_t problem_n,
                                                 int max_threads) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = stiffs_.find(problem_n);
  if (it == stiffs_.end()) {
    return std::nullopt;
  }
  std::optional<StiffConfig> best =
      it->second.pick(std::max(1, max_threads));
  if (best) {
    obs::Registry::global().counter("tune.picks").add();
  }
  return best;
}

std::optional<bool> AutoTuner::stiff_backend(std::size_t problem_n) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = stiffs_.find(problem_n);
  // A backend verdict needs both curves measured; with one side unseen
  // the static fill-ratio heuristic in make_jac_plan knows better.
  if (it == stiffs_.end() || !it->second.has_backend(false) ||
      !it->second.has_backend(true)) {
    return std::nullopt;
  }
  const int hw =
      static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  const std::optional<StiffConfig> best = it->second.pick(hw);
  if (!best) {
    return std::nullopt;
  }
  obs::Registry::global().counter("tune.picks").add();
  return best->sparse;
}

std::string AutoTuner::model_json() const {
  static const char* kEnsembleTerms[] = {"dispatches_per_worker",
                                         "lane_evals_per_worker", "workers"};
  static const char* kStiffTerms[] = {"const", "inv_threads", "threads"};
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  os << "{\"mode\":\"" << to_string(mode()) << "\",\"drift_threshold\":";
  append_number(os, drift_threshold_);
  os << ",\"ensemble\":[";
  bool first_model = true;
  for (const auto& [n, m] : ensembles_) {
    if (!first_model) {
      os << ',';
    }
    first_model = false;
    os << "{\"problem_n\":" << n << ",\"ready\":"
       << (m.ready() ? "true" : "false")
       << ",\"hw_threads\":" << m.hw_threads()
       << ",\"evals_per_scenario\":";
    append_number(os, m.evals_per_scenario());
    os << ",\"fit\":";
    append_fit(os, m.fit_result(), kEnsembleTerms, 3);
    os << ",\"residuals\":[";
    bool first_row = true;
    for (const EnsembleObservation& o : m.observations()) {
      if (!first_row) {
        os << ',';
      }
      first_row = false;
      const double pred =
          m.fit_result().coef.empty()
              ? 0.0
              : std::max(0.0, m.fit_result().predict(EnsembleModel::features(
                                  o.scenarios, o.workers, o.batch,
                                  o.lane_evals, m.hw_threads())));
      os << "{\"scenarios\":" << o.scenarios << ",\"workers\":" << o.workers
         << ",\"batch\":" << o.batch << ",\"measured\":";
      append_number(os, o.seconds);
      os << ",\"predicted\":";
      append_number(os, pred);
      os << '}';
    }
    os << "]}";
  }
  os << "],\"stiff\":[";
  first_model = true;
  for (const auto& [n, m] : stiffs_) {
    if (!first_model) {
      os << ',';
    }
    first_model = false;
    os << "{\"problem_n\":" << n << ",\"dense_fit\":";
    append_fit(os, m.fit_result(false), kStiffTerms, 3);
    os << ",\"sparse_fit\":";
    append_fit(os, m.fit_result(true), kStiffTerms, 3);
    os << ",\"residuals\":[";
    bool first_row = true;
    for (const StiffObservation& o : m.observations()) {
      if (!first_row) {
        os << ',';
      }
      first_row = false;
      os << "{\"sparse\":" << (o.sparse ? "true" : "false")
         << ",\"jac_threads\":" << o.jac_threads << ",\"measured\":";
      append_number(os, o.seconds);
      os << ",\"predicted\":";
      append_number(os, m.has_backend(o.sparse)
                            ? m.predict(o.sparse, o.jac_threads)
                            : 0.0);
      os << '}';
    }
    os << "]}";
  }
  os << "],\"counters\":{\"observations\":"
     << obs::Registry::global().counter("tune.observations").value()
     << ",\"picks\":" << obs::Registry::global().counter("tune.picks").value()
     << ",\"refits\":"
     << obs::Registry::global().counter("tune.refits").value()
     << ",\"drift_events\":"
     << obs::Registry::global().counter("tune.drift_events").value()
     << "}}";
  return os.str();
}

bool AutoTuner::export_json(const std::string& path) const {
  return obs::write_file(path, model_json());
}

void AutoTuner::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  ensembles_.clear();
  stiffs_.clear();
  ensemble_new_samples_.clear();
  stiff_new_samples_.clear();
}

std::uint64_t AutoTuner::picks() const {
  return obs::Registry::global().counter("tune.picks").value();
}

std::uint64_t AutoTuner::drift_events() const {
  return obs::Registry::global().counter("tune.drift_events").value();
}

std::uint64_t AutoTuner::refits() const {
  return obs::Registry::global().counter("tune.refits").value();
}

}  // namespace omx::tune
