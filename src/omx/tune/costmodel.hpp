// Analytical cost models for the runtime configuration knobs.
//
// The system has grown knobs the paper's semi-dynamic LPT never had to
// pick: ensemble worker count and SoA batch width, Jacobian
// color-group threads, sparse-vs-dense stiff backend. Each knob's cost
// surface is simple enough that an Extra-P-style compositional model —
// a linear combination of a few hand-chosen terms fitted by least
// squares to a handful of measured calibration runs — predicts makespan
// well enough to rank configurations. Two model families:
//
//  * EnsembleModel — solve_ensemble makespan as a function of
//    (scenarios, workers, batch width). Work is measured in lane-RHS
//    evaluations E (a machine-independent count: per-lane step control
//    is bitwise identical across configurations, so E is a property of
//    the scenario set alone). The LPT schedule shape enters through the
//    effective worker count W_eff = min(W, hw_threads, ceil(S/B)):
//    workers beyond the batch count or the core count add overhead but
//    no throughput. Terms:
//
//      seconds ~ a * (E/B)/W_eff   batched dispatch count per worker
//             + b *  E   /W_eff    per-lane marginal evaluation cost
//             + c *  W             per-worker constant (spawn/handshake)
//
//  * StiffModel — one stiff solve's wall time as a function of the
//    Jacobian build thread count T, per factorization backend
//    (dense/sparse): seconds ~ s0 + s1/T + s2*T. The 1/T term is the
//    parallelizable color-group build, the T term the spawn/join
//    overhead that makes oversubscription lose. Backends fit
//    independently; picking compares the two fitted curves.
//
// Models fit from as few as 3-4 observations and tolerate degenerate
// inputs (see tune/fit.hpp); a degenerate fit refuses to rank
// configurations rather than extrapolating garbage.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "omx/tune/fit.hpp"

namespace omx::tune {

// ------------------------------------------------------------- ensemble

/// One measured solve_ensemble run (calibration probe or production).
struct EnsembleObservation {
  std::size_t problem_n = 0;  // state-vector size (the model key)
  std::size_t scenarios = 0;
  std::size_t workers = 0;    // effective workers the run used
  std::size_t batch = 0;      // effective max batch width
  double lane_evals = 0.0;    // total per-lane RHS evaluations
  double seconds = 0.0;       // measured makespan
};

struct EnsembleConfig {
  std::size_t workers = 1;
  std::size_t max_batch = 1;
  double predicted_seconds = 0.0;
};

class EnsembleModel {
 public:
  /// `hw_threads` caps the effective worker count in the feature map
  /// (0 = query std::thread::hardware_concurrency at construction).
  explicit EnsembleModel(std::size_t hw_threads = 0);

  void add(const EnsembleObservation& obs);
  /// Refits from the current observation window. Returns ready().
  bool refit();
  /// Fitted, non-degenerate, and trained on >= 3 distinct configs.
  bool ready() const;

  /// Predicted makespan for a hypothetical configuration; scenarios may
  /// differ from any calibration run (work scales by evals/scenario).
  double predict(std::size_t scenarios, std::size_t workers,
                 std::size_t batch) const;

  /// Argmin of predict() over a candidate grid: workers in powers of two
  /// up to max_workers (plus max_workers itself), batch widths
  /// {1,2,4,...} up to max_batch (plus max_batch). Requires ready().
  EnsembleConfig pick(std::size_t scenarios, std::size_t max_workers,
                      std::size_t max_batch) const;

  const FitResult& fit_result() const { return fit_; }
  double evals_per_scenario() const { return evals_per_scenario_; }
  const std::vector<EnsembleObservation>& observations() const {
    return window_;
  }
  std::size_t hw_threads() const { return hw_; }

  /// Feature row for one observation: the three model terms above.
  static std::vector<double> features(std::size_t scenarios,
                                      std::size_t workers, std::size_t batch,
                                      double lane_evals, std::size_t hw);

 private:
  std::size_t hw_ = 1;
  std::vector<EnsembleObservation> window_;  // bounded (kWindowCap)
  FitResult fit_;
  double evals_per_scenario_ = 0.0;
  static constexpr std::size_t kWindowCap = 64;
};

// ---------------------------------------------------------------- stiff

/// One measured stiff solve (kBdf / kLsodaLike) under a known config.
struct StiffObservation {
  std::size_t problem_n = 0;  // state-vector size (the model key)
  bool sparse = false;        // factorization backend used
  int jac_threads = 1;
  double seconds = 0.0;
};

struct StiffConfig {
  bool sparse = false;
  int jac_threads = 1;
  double predicted_seconds = 0.0;
};

class StiffModel {
 public:
  void add(const StiffObservation& obs);
  bool refit();
  /// A backend is rankable once it has any observation; thread-count
  /// extrapolation additionally needs a non-degenerate fit (>= 3
  /// distinct thread counts observed for that backend).
  bool has_backend(bool sparse) const;

  /// Predicted seconds for (backend, threads). Falls back to the mean of
  /// the nearest observed thread count when the fit is degenerate.
  double predict(bool sparse, int threads) const;

  /// Best (backend, threads) over backends with data and thread counts
  /// {1,2,4,...} up to max_threads. Degenerate backends only compete at
  /// their observed thread counts. nullopt when no data at all.
  std::optional<StiffConfig> pick(int max_threads) const;

  const FitResult& fit_result(bool sparse) const {
    return sparse ? sparse_fit_ : dense_fit_;
  }
  const std::vector<StiffObservation>& observations() const {
    return window_;
  }

 private:
  std::vector<StiffObservation> window_;  // bounded (kWindowCap)
  FitResult dense_fit_;
  FitResult sparse_fit_;
  static constexpr std::size_t kWindowCap = 64;

  static std::vector<double> features(int threads);
};

}  // namespace omx::tune
