// Performance-model-driven auto-tuning: the layer that turns the obs
// telemetry into configuration choices.
//
// The paper's §3.2.3 semi-dynamic scheduler repartitions tasks from
// measured times; the AutoTuner generalizes the idea to every runtime
// knob the system has grown. It accumulates measured runs (calibration
// probes or production solves), fits the tune/costmodel.hpp models per
// problem size, and answers "which configuration should this run use?"
// for the ode::solve / solve_ensemble entry points and the omxd daemon.
//
// Modes (OMX_TUNE, overridable in-process with set_mode):
//   off        — default; the tuner is inert, zero behavior change.
//   calibrate  — solves record observations and models refit, but the
//                caller's configuration is never overridden. Use to
//                gather a model before switching on.
//   on         — solves record AND consult: ensemble worker/batch and
//                stiff jac_threads / sparse-vs-dense come from the
//                fitted model when one is ready (callers' explicit
//                settings are the fallback while it warms up).
//
// Online drift handling: every recorded run is compared against the
// model's prediction; a relative error above OMX_TUNE_DRIFT (default
// 0.5) counts a drift event and forces an immediate refit, so the model
// tracks machine load changes instead of fossilizing the calibration
// conditions. Models also refit on a fixed cadence of new samples.
//
// Export: model_json() renders every fitted model — terms, coefficients,
// r2, per-observation predicted-vs-measured residuals — in the same
// spirit as the BENCH_*.json exports; bench/autotune and omxd write it
// next to their metrics artifacts, and OMX_TUNE_EXPORT=path makes any
// process write it at exit. scripts/obs_report.py --tune renders it.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "omx/tune/costmodel.hpp"

namespace omx::tune {

enum class Mode { kOff, kCalibrate, kOn };

/// Current mode: OMX_TUNE at first use, set_mode afterwards.
Mode mode();
void set_mode(Mode m);
const char* to_string(Mode m);

class AutoTuner {
 public:
  /// The process-wide tuner the solver entry points and the daemon
  /// consult. Thread-safe (one mutex; record/pick are far off any inner
  /// loop — once per solve, not per step).
  static AutoTuner& global();

  AutoTuner();
  AutoTuner(const AutoTuner&) = delete;
  AutoTuner& operator=(const AutoTuner&) = delete;

  // --- ensemble ------------------------------------------------------
  void record_ensemble(const EnsembleObservation& obs);
  /// Fitted pick for an S-scenario ensemble of an n-state problem, or
  /// nullopt while no ready model exists for that problem size.
  std::optional<EnsembleConfig> pick_ensemble(std::size_t problem_n,
                                              std::size_t scenarios,
                                              std::size_t max_workers,
                                              std::size_t max_batch);
  bool ensemble_ready(std::size_t problem_n) const;
  double predict_ensemble(std::size_t problem_n, std::size_t scenarios,
                          std::size_t workers, std::size_t batch) const;

  // --- stiff ---------------------------------------------------------
  void record_stiff(const StiffObservation& obs);
  std::optional<StiffConfig> pick_stiff(std::size_t problem_n,
                                        int max_threads);
  /// Backend-only verdict for make_jac_plan (nullopt = no opinion).
  std::optional<bool> stiff_backend(std::size_t problem_n);

  // --- export / lifecycle --------------------------------------------
  /// Machine-readable model dump: coefficients + residuals per model.
  std::string model_json() const;
  bool export_json(const std::string& path) const;
  /// Drops every model and observation (tests, daemon restart).
  void reset();

  std::uint64_t picks() const;
  std::uint64_t drift_events() const;
  std::uint64_t refits() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::size_t, EnsembleModel> ensembles_;
  std::map<std::size_t, StiffModel> stiffs_;
  std::map<std::size_t, std::size_t> ensemble_new_samples_;
  std::map<std::size_t, std::size_t> stiff_new_samples_;
  double drift_threshold_;
};

}  // namespace omx::tune
