// Zero-copy trajectory streaming: solvers write accepted steps into
// chunked, preallocated buffers handed to the consumer, instead of
// growing a Solution they return by value at the end.
//
// The flow is pull/push symmetric: a solver-side TrajectoryWriter asks
// the consumer's TrajectorySink to `acquire` a chunk, fills rows in
// place (one row = one accepted step: a time plus the state vector),
// and `commit`s the chunk back when it is full or the trajectory ends.
// The consumer sees the solver's own buffers — no intermediate copy,
// bounded memory (one chunk per in-flight trajectory), and chunks are
// recycled through the sink's pool instead of reallocated.
//
// Threading contract: a single ode::solve drives its sink from one
// thread. ode::solve_ensemble calls acquire/commit/finish concurrently
// from its workers (at most one writer per scenario at any moment), so
// ensemble sinks must make those entry points thread-safe. The sinks
// in this header follow that contract; custom sinks handed to
// solve_ensemble must too.
//
// Determinism: the sink layer only moves accepted-step data; it never
// reorders or transforms it. A trajectory streamed through any sink is
// row-for-row bitwise identical to the Solution the compatibility
// wrappers build from the same stream.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "omx/ode/problem.hpp"
#include "omx/support/simd.hpp"

namespace omx::ode {

/// A block of consecutive accepted steps of one scenario's trajectory.
/// Row i is (times[i], states[i*n .. i*n+n)). Buffers are 64-byte
/// aligned (simd.hpp) so consumers may run vectorized reductions over
/// whole chunks.
struct TrajectoryChunk {
  std::uint32_t scenario = 0;
  std::size_t n = 0;         // state width
  std::size_t capacity = 0;  // rows allocated
  std::size_t size = 0;      // rows filled
  /// True when this chunk closes the trajectory. A trajectory whose
  /// last accepted step lands exactly on a chunk boundary commits that
  /// chunk full with final == false; the authoritative end-of-stream
  /// signal is always TrajectorySink::finish.
  bool final = false;
  simd::aligned_vector<double> times;   // [capacity]
  simd::aligned_vector<double> states;  // [capacity * n], row-major

  /// (Re)shapes for `rows` steps of width `width` and clears size/final.
  void reset(std::uint32_t scenario_id, std::size_t width, std::size_t rows);

  double* row(std::size_t i) { return states.data() + i * n; }
  std::span<const double> row_view(std::size_t i) const {
    return {states.data() + i * n, n};
  }
};

/// Consumer side of the stream. Implementations own every chunk they
/// hand out: `acquire` lends one to the writer, `commit` returns it
/// (typically back into a free pool after the rows are consumed).
class TrajectorySink {
 public:
  static constexpr std::size_t kDefaultChunkRows = 256;

  virtual ~TrajectorySink() = default;

  /// Lends an empty chunk (size 0, capacity >= 1) for `scenario` with
  /// state width n. The writer fills it and must commit it back.
  virtual TrajectoryChunk* acquire(std::uint32_t scenario, std::size_t n) = 0;

  /// Takes back a filled (possibly partial) chunk. After this call the
  /// writer must not touch the chunk again.
  virtual void commit(TrajectoryChunk* chunk) = 0;

  /// The scenario's trajectory is complete; `stats` are its final
  /// solver statistics. Called exactly once per successful solve,
  /// after the last commit. Not called when the solve throws.
  virtual void finish(std::uint32_t scenario, const SolverStats& stats) = 0;
};

/// Solver-side helper: buffers appends into the current chunk and talks
/// to the sink at chunk granularity. Move-only; a moved-from writer is
/// inert. If a solve throws, the writer abandons its partial chunk
/// without committing (the pool reclaims the storage when the sink is
/// destroyed) and finish() is never delivered.
class TrajectoryWriter {
 public:
  TrajectoryWriter() = default;
  TrajectoryWriter(TrajectorySink& sink, std::uint32_t scenario,
                   std::size_t n)
      : sink_(&sink), scenario_(scenario), n_(n) {}

  TrajectoryWriter(TrajectoryWriter&& o) noexcept { *this = std::move(o); }
  TrajectoryWriter& operator=(TrajectoryWriter&& o) noexcept {
    sink_ = std::exchange(o.sink_, nullptr);
    scenario_ = o.scenario_;
    n_ = o.n_;
    chunk_ = std::exchange(o.chunk_, nullptr);
    return *this;
  }
  TrajectoryWriter(const TrajectoryWriter&) = delete;
  TrajectoryWriter& operator=(const TrajectoryWriter&) = delete;

  /// Records one accepted step.
  void append(double t, std::span<const double> y) {
    if (chunk_ == nullptr) {
      chunk_ = sink_->acquire(scenario_, n_);
    }
    chunk_->times[chunk_->size] = t;
    double* dst = chunk_->row(chunk_->size);
    for (std::size_t i = 0; i < n_; ++i) {
      dst[i] = y[i];
    }
    if (++chunk_->size == chunk_->capacity) {
      sink_->commit(std::exchange(chunk_, nullptr));
    }
  }

  /// Commits the partial tail chunk (flagged final) and delivers the
  /// end-of-trajectory signal with the solve's statistics.
  void finish(const SolverStats& stats) {
    if (chunk_ != nullptr) {
      chunk_->final = true;
      sink_->commit(std::exchange(chunk_, nullptr));
    }
    sink_->finish(scenario_, stats);
  }

 private:
  TrajectorySink* sink_ = nullptr;
  std::uint32_t scenario_ = 0;
  std::size_t n_ = 0;
  TrajectoryChunk* chunk_ = nullptr;
};

namespace detail {

/// Chunk storage shared by the built-in sinks: owns every chunk it ever
/// allocates (leak-free even when a writer abandons one mid-solve) and
/// recycles committed chunks through a free list.
class ChunkPool {
 public:
  explicit ChunkPool(std::size_t chunk_rows) : rows_(chunk_rows) {}

  TrajectoryChunk* get(std::uint32_t scenario, std::size_t n);
  void put(TrajectoryChunk* c) { free_.push_back(c); }

 private:
  std::size_t rows_;
  std::vector<std::unique_ptr<TrajectoryChunk>> all_;
  std::vector<TrajectoryChunk*> free_;
};

}  // namespace detail

/// Compatibility sink: collects the stream back into a Solution. This
/// is what the Solution-returning ode::solve overload uses internally.
/// Single-threaded (plain solve only).
class SolutionSink final : public TrajectorySink {
 public:
  explicit SolutionSink(std::size_t chunk_rows = kDefaultChunkRows)
      : pool_(chunk_rows) {}

  TrajectoryChunk* acquire(std::uint32_t scenario, std::size_t n) override;
  void commit(TrajectoryChunk* chunk) override;
  void finish(std::uint32_t scenario, const SolverStats& stats) override;

  const Solution& solution() const { return sol_; }
  Solution take() { return std::move(sol_); }

 private:
  detail::ChunkPool pool_;
  Solution sol_;
};

/// Compatibility sink for solve_ensemble: one Solution per scenario, in
/// scenario-id order. Thread-safe per the ensemble contract (the chunk
/// pool is locked; per-scenario Solutions have a single writer each).
class EnsembleCollectSink final : public TrajectorySink {
 public:
  explicit EnsembleCollectSink(std::size_t num_scenarios,
                               std::size_t chunk_rows = kDefaultChunkRows)
      : pool_(chunk_rows), solutions_(num_scenarios) {}

  TrajectoryChunk* acquire(std::uint32_t scenario, std::size_t n) override;
  void commit(TrajectoryChunk* chunk) override;
  void finish(std::uint32_t scenario, const SolverStats& stats) override;

  std::vector<Solution> take() { return std::move(solutions_); }

 private:
  std::mutex mutex_;  // guards pool_ only
  detail::ChunkPool pool_;
  std::vector<Solution> solutions_;
};

/// Streaming sink that retains no trajectory: rows are dropped on
/// commit, keeping only each scenario's final (time, state) and stats.
/// Memory stays bounded by one chunk per in-flight scenario no matter
/// how long the integration runs — the natural choice for benchmarks
/// and throughput sweeps. Thread-safe.
class StatsOnlySink final : public TrajectorySink {
 public:
  explicit StatsOnlySink(std::size_t num_scenarios = 1,
                         std::size_t chunk_rows = kDefaultChunkRows)
      : pool_(chunk_rows), finals_(num_scenarios), stats_(num_scenarios) {}

  TrajectoryChunk* acquire(std::uint32_t scenario, std::size_t n) override;
  void commit(TrajectoryChunk* chunk) override;
  void finish(std::uint32_t scenario, const SolverStats& stats) override;

  const SolverStats& stats(std::size_t scenario = 0) const {
    return stats_[scenario];
  }
  double final_time(std::size_t scenario = 0) const {
    return finals_[scenario].t;
  }
  std::span<const double> final_state(std::size_t scenario = 0) const {
    return finals_[scenario].y;
  }

 private:
  struct Final {
    double t = 0.0;
    std::vector<double> y;
  };
  std::mutex mutex_;  // guards pool_ only
  detail::ChunkPool pool_;
  std::vector<Final> finals_;
  std::vector<SolverStats> stats_;
};

}  // namespace omx::ode
