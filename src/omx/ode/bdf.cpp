#include "omx/ode/bdf.hpp"

#include <algorithm>
#include <cmath>

#include "omx/obs/recorder.hpp"
#include "omx/obs/trace.hpp"

namespace omx::ode {

namespace {

// Uniform-grid BDF-k:  y_{n+1} = sum_{i=1..k} a[i-1] * y_{n+1-i}
//                               + beta * h * f(t_{n+1}, y_{n+1}).
struct BdfCoeffs {
  double a[5];
  double beta;
};

const BdfCoeffs kBdf[5] = {
    {{1.0, 0, 0, 0, 0}, 1.0},
    {{4.0 / 3, -1.0 / 3, 0, 0, 0}, 2.0 / 3},
    {{18.0 / 11, -9.0 / 11, 2.0 / 11, 0, 0}, 6.0 / 11},
    {{48.0 / 25, -36.0 / 25, 16.0 / 25, -3.0 / 25, 0}, 12.0 / 25},
    {{300.0 / 137, -300.0 / 137, 200.0 / 137, -75.0 / 137, 12.0 / 137},
     60.0 / 137},
};

/// Lagrange extrapolation of the k+1 most recent uniform history points to
/// the next grid point (the Newton predictor and error reference).
void extrapolate(const std::vector<std::vector<double>>& hist, int points,
                 std::span<double> out) {
  // Uniform nodes x = 0 (newest), -1, -2, ...; evaluate at x = +1.
  // Coefficients are binomial: sum_{j} (-1)^j C(points, j+1) ... simplest
  // closed forms for the small orders used here.
  static const double kExtrap[5][5] = {
      {1, 0, 0, 0, 0},
      {2, -1, 0, 0, 0},
      {3, -3, 1, 0, 0},
      {4, -6, 4, -1, 0},
      {5, -10, 10, -5, 1},
  };
  const std::size_t n = out.size();
  const double* c = kExtrap[points - 1];
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (int j = 0; j < points; ++j) {
      acc += c[j] * hist[static_cast<std::size_t>(j)][i];
    }
    out[i] = acc;
  }
}

}  // namespace

BdfStepper::BdfStepper(const Problem& p, const BdfOptions& opts)
    : p_(p),
      opts_(opts),
      jac_engine_(p, JacobianEngine::Config{opts.jac_threads,
                                           opts.jac_max_age,
                                           /*slow_iters=*/5}) {
  OMX_REQUIRE(opts_.max_order >= 1 && opts_.max_order <= 5,
              "BDF order must be in 1..5");
  double h = opts.fixed_h > 0.0 ? opts.fixed_h : opts.h0;
  restart(p.t0, p.y0, h);
}

void BdfStepper::restart(double t, std::span<const double> y, double h) {
  t_ = t;
  history_.clear();
  history_.emplace_back(y.begin(), y.end());
  order_ = 1;
  jac_engine_.invalidate();
  if (h > 0.0) {
    h_ = h;
  } else {
    // Hairer's d0/d1 heuristic (see adams.cpp).
    std::vector<double> f(p_.n), w(p_.n);
    p_.rhs(t_, y, f);
    ++stats_.rhs_calls;
    error_weights(y, opts_.tol, w);
    const double d0 = la::wrms_norm(y, w);
    const double d1 = la::wrms_norm(f, w);
    h_ = (d0 > 1e-5 && d1 > 1e-5) ? 0.01 * d0 / d1
                                  : 1e-3 * (p_.tend - p_.t0);
  }
  const double hmax = opts_.hmax > 0.0 ? opts_.hmax : (p_.tend - p_.t0);
  h_ = std::min(h_, hmax);

  if (opts_.fixed_h > 0.0 && opts_.max_order > 1) {
    // Fixed-step mode: bootstrap an accurate uniform history with finely
    // sub-stepped RK4 so every subsequent step is pure order-k BDF (the
    // convergence-order tests rely on this).
    std::vector<double> ycur(history_.front());
    std::vector<double> k1(p_.n), k2(p_.n), k3(p_.n), k4(p_.n), tmp(p_.n),
        next(p_.n);
    for (int m = 1; m < opts_.max_order; ++m) {
      const int sub = 20;
      const double hs = h_ / sub;
      double ts = t_;
      for (int s = 0; s < sub; ++s) {
        p_.rhs(ts, ycur, k1);
        for (std::size_t i = 0; i < p_.n; ++i)
          tmp[i] = ycur[i] + 0.5 * hs * k1[i];
        p_.rhs(ts + 0.5 * hs, tmp, k2);
        for (std::size_t i = 0; i < p_.n; ++i)
          tmp[i] = ycur[i] + 0.5 * hs * k2[i];
        p_.rhs(ts + 0.5 * hs, tmp, k3);
        for (std::size_t i = 0; i < p_.n; ++i)
          tmp[i] = ycur[i] + hs * k3[i];
        p_.rhs(ts + hs, tmp, k4);
        stats_.rhs_calls += 4;
        for (std::size_t i = 0; i < p_.n; ++i) {
          ycur[i] += hs / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
        }
        ts += hs;
      }
      t_ += h_;
      ++stats_.steps;
      history_.insert(history_.begin(), ycur);
    }
    order_ = opts_.max_order;
  }
}

bool BdfStepper::newton_solve(double t1, std::span<const double> predictor,
                              std::span<const double> rhs_const,
                              double beta_h, std::span<double> out) {
  const std::size_t n = p_.n;
  std::vector<double> y1(predictor.begin(), predictor.end());
  std::vector<double> f(n), g(n), dy(n), w(n);
  error_weights(predictor, opts_.tol, w);

  la::LinearSolver* solver = &jac_engine_.prepare(t1, y1, beta_h, stats_);

  bool refreshed_this_call = false;
  double prev_norm = std::numeric_limits<double>::infinity();
  for (std::size_t it = 0; it < opts_.newton_max_iters; ++it) {
    p_.rhs(t1, y1, f);
    ++stats_.rhs_calls;
    ++stats_.newton_iters;
    last_newton_iters_ = it + 1;
    for (std::size_t i = 0; i < n; ++i) {
      g[i] = y1[i] - beta_h * f[i] - rhs_const[i];
    }
    solver->solve(g, dy);
    for (std::size_t i = 0; i < n; ++i) {
      y1[i] -= dy[i];
    }
    const double dn = la::wrms_norm(dy, w);
    if (dn < 0.01) {  // displacement well below the error tolerance scale
      std::copy(y1.begin(), y1.end(), out.begin());
      return true;
    }
    if (dn > prev_norm && !refreshed_this_call) {
      // Diverging: refresh Jacobian at the current iterate once.
      jac_engine_.force_refresh();
      solver = &jac_engine_.prepare(t1, y1, beta_h, stats_);
      refreshed_this_call = true;
      prev_norm = std::numeric_limits<double>::infinity();
      continue;
    }
    prev_norm = dn;
  }
  return false;
}

bool BdfStepper::step() {
  const std::size_t n = p_.n;
  const bool fixed = opts_.fixed_h > 0.0;
  const double rem = p_.tend - t_;
  // Treat a remainder within roundoff of h_ as a full step.
  const bool full_step = rem >= h_ * (1.0 - 1e-9);
  const double h = full_step ? std::min(h_, rem) : rem;
  const bool clipped = !full_step;
  if (fixed && clipped) {
    // Fixed-step mode exists for order measurements: finish the partial
    // final interval with finely sub-stepped RK4 so its error cannot
    // contaminate the BDF-k convergence order.
    std::vector<double> ycur(history_.front());
    std::vector<double> k1(n), k2(n), k3(n), k4(n), tmp(n);
    const int sub = 20;
    const double hs = h / sub;
    double ts = t_;
    for (int s = 0; s < sub; ++s) {
      p_.rhs(ts, ycur, k1);
      for (std::size_t i = 0; i < n; ++i) tmp[i] = ycur[i] + 0.5 * hs * k1[i];
      p_.rhs(ts + 0.5 * hs, tmp, k2);
      for (std::size_t i = 0; i < n; ++i) tmp[i] = ycur[i] + 0.5 * hs * k2[i];
      p_.rhs(ts + 0.5 * hs, tmp, k3);
      for (std::size_t i = 0; i < n; ++i) tmp[i] = ycur[i] + hs * k3[i];
      p_.rhs(ts + hs, tmp, k4);
      stats_.rhs_calls += 4;
      for (std::size_t i = 0; i < n; ++i) {
        ycur[i] += hs / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
      }
      ts += hs;
    }
    t_ = p_.tend;
    history_.insert(history_.begin(), ycur);
    ++stats_.steps;
    last_node_h_ = h;
    last_dense_points_ = 2;
    return true;
  }
  // Clipping the final step changes the grid spacing; drop to order 1
  // (backward Euler) for that step, which needs no uniform history.
  const int k = clipped ? 1 : order_;
  const BdfCoeffs& c = kBdf[k - 1];
  const double beta_h = c.beta * h;

  // rhs_const = sum a_i y_{n+1-i}; predictor = extrapolation.
  std::vector<double> rhs_const(n, 0.0), predictor(n), ynew(n), w(n);
  for (int i = 0; i < k; ++i) {
    const auto& yi = history_[static_cast<std::size_t>(i)];
    for (std::size_t j = 0; j < n; ++j) {
      rhs_const[j] += c.a[i] * yi[j];
    }
  }
  extrapolate(history_, std::min<int>(k + 1,
                                      static_cast<int>(history_.size())),
              predictor);

  if (!newton_solve(t_ + h, predictor, rhs_const, beta_h, ynew)) {
    // Newton failed: refresh everything with a smaller step.
    ++stats_.rejected;
    obs::record_step(obs::StepEventKind::kNewtonFail, "bdf",
                     static_cast<std::uint16_t>(k), t_, h, 0.0);
    h_ *= 0.25;
    jac_engine_.invalidate();
    if (h_ < 1e-14 * std::max(1.0, std::fabs(t_))) {
      throw omx::Error("bdf: Newton failure with vanishing step at t = " +
                       std::to_string(t_));
    }
    history_.resize(1);
    order_ = 1;
    return false;
  }

  // Error estimate: difference between corrector and predictor, scaled by
  // the method constant ~ 1/(k+1).
  double err = 0.0;
  if (!fixed) {
    std::vector<double> diff(n);
    for (std::size_t i = 0; i < n; ++i) {
      diff[i] = (ynew[i] - predictor[i]) / static_cast<double>(k + 1);
    }
    error_weights(ynew, opts_.tol, w);
    err = la::wrms_norm(diff, w);
    // During the order ramp the extrapolation predictor is one order lower
    // than the corrector, so the difference overestimates the local error;
    // de-weight it rather than thrash on spurious rejections.
    if (history_.size() == 1) {
      err = std::min(err, 0.5);
    } else if (static_cast<int>(history_.size()) < k + 1) {
      err *= 0.25;
    }
  }

  if (fixed || err <= 1.0) {
    t_ += h;
    history_.insert(history_.begin(), ynew);
    if (history_.size() > 6) {
      history_.pop_back();
    }
    if (!clipped && order_ < opts_.max_order &&
        static_cast<int>(history_.size()) > order_) {
      ++order_;
    }
    ++stats_.steps;
    obs::record_step(obs::StepEventKind::kStepAccepted, "bdf",
                     static_cast<std::uint16_t>(k), t_, h, err);
    jac_engine_.on_step_accepted(last_newton_iters_);
    // Step growth: double h by SUBSAMPLING the uniform history (every
    // second point is exactly a history at spacing 2h) — no reset, no
    // interpolation error, no order collapse.
    if (!fixed && !clipped) {
      const double fac =
          0.9 * std::pow(std::max(err, 1e-10), -1.0 / (k + 1));
      const double hmax =
          opts_.hmax > 0.0 ? opts_.hmax : (p_.tend - p_.t0);
      if (fac > 2.0 && rem > 8.0 * h_ && history_.size() >= 3 &&
          2.0 * h_ <= hmax) {
        std::vector<std::vector<double>> subsampled;
        for (std::size_t i = 0; i < history_.size(); i += 2) {
          subsampled.push_back(history_[i]);
        }
        history_ = std::move(subsampled);
        h_ *= 2.0;
        order_ = std::min<int>(order_,
                               static_cast<int>(history_.size()));
        // No invalidate: the beta*h change alone makes the next
        // prepare() refactor, reusing the still-fresh Jacobian values.
      }
    }
    // Refresh the dense-output node geometry after any subsampling: the
    // history is uniform at the CURRENT h_, and a clipped final step
    // only guarantees its own two endpoints.
    if (clipped) {
      last_node_h_ = h;
      last_dense_points_ = 2;
    } else {
      last_node_h_ = h_;
      last_dense_points_ = std::min<std::size_t>(
          static_cast<std::size_t>(k) + 1, history_.size());
    }
    return true;
  }

  ++stats_.rejected;
  obs::record_step(obs::StepEventKind::kStepRejected, "bdf",
                   static_cast<std::uint16_t>(k), t_, h, err);
  h_ *= std::clamp(0.9 * std::pow(err, -1.0 / (k + 1)), 0.1, 0.5);
  history_.resize(1);
  order_ = 1;
  jac_engine_.invalidate();
  if (h_ < 1e-14 * std::max(1.0, std::fabs(t_))) {
    throw omx::Error("bdf: step size underflow at t = " + std::to_string(t_));
  }
  return false;
}

namespace detail {

SolverStats bdf(const Problem& p, const BdfOptions& opts,
                TrajectorySink& sink, std::uint32_t scenario) {
  p.validate();
  obs::Span solve_span("bdf", "ode");
  BdfStepper stepper(p, opts);
  TrajectoryWriter rec(sink, scenario, p.n);
  rec.append(p.t0, p.y0);

  EventHandler events(p.events, p.n);
  std::vector<double> yprev(p.n);
  // Localization interpolates the BDF history polynomial itself; the
  // sweep's restart() truncates the history and invalidates the
  // JacobianEngine, so the first post-event step re-evaluates rather
  // than reusing a stale factorization.
  auto make_dense = [&](double, const std::vector<double>&) {
    return stepper.last_step_dense();
  };
  if (events.armed()) {
    events.prime(p.t0, p.y0);
    // The fixed-step bootstrap (fixed_h mode) advances RK4 substeps at
    // construction; sweep that jump like any other.
    yprev = p.y0;
    if (sweep_stepper_events(events, stepper, "bdf", p.t0, yprev, rec,
                             make_dense)) {
      const SolverStats stats = stepper.stats();
      publish_solver_stats(stats);
      rec.finish(stats);
      return stats;
    }
  }

  std::size_t accepted = 0;
  std::size_t attempts = 0;
  bool terminated = false;
  while (!terminated && stepper.t() < p.tend) {
    poll_cancel(opts.cancel, "bdf");
    if (++attempts > opts.max_steps) {
      throw omx::Error("bdf: max_steps exceeded");
    }
    const double tprev = stepper.t();
    if (stepper.step()) {
      const std::size_t fired_before = events.events_fired();
      if (events.armed() &&
          sweep_stepper_events(events, stepper, "bdf", tprev, yprev, rec,
                               make_dense)) {
        terminated = true;
        break;
      }
      ++accepted;
      // An event rolled the stepper back to the crossing and recorded
      // its pre/post rows; the step's original endpoint is void, so the
      // cadence row would just duplicate the event time.
      if (events.events_fired() == fired_before &&
          (accepted % opts.record_every == 0 || stepper.t() >= p.tend)) {
        rec.append(stepper.t(), stepper.y());
      }
    }
  }
  const SolverStats stats = stepper.stats();
  publish_solver_stats(stats);
  rec.finish(stats);
  return stats;
}

Solution bdf(const Problem& p, const BdfOptions& opts) {
  SolutionSink sink;
  bdf(p, opts, sink);
  return sink.take();
}

}  // namespace detail

}  // namespace omx::ode
