// First-class event handling for the solver suite: zero-crossing guard
// functions with direction filters, reset actions applied at the
// localized crossing, and the dense-output machinery the localization
// needs (the hybrid-model extension of §2.4's smooth IVP).
//
// Detection is sign-change based per accepted step: the handler caches
// every guard's value at the last committed point (initial state or the
// post-reset state of the previous event) and compares against the new
// accepted point. A detected crossing is localized by bisection on a
// DenseOutput interpolant of the step — the DOPRI5 4th-order continuous
// extension for the dopri5 drivers, Lagrange evaluation of the uniform
// BDF history for the stiff path, and cubic Hermite with endpoint
// derivatives elsewhere — so the event time is accurate to the
// interpolant, not to the step size. A guard sitting exactly on zero
// after a reset does not re-fire until its sign leaves zero, which is
// what makes bouncing-ball style resets (y = 0, v := -e v) terminate
// each step instead of firing forever.
#pragma once

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "omx/la/matrix.hpp"
#include "omx/obs/recorder.hpp"
#include "omx/ode/sink.hpp"

namespace omx::ode {

enum class EventDirection {
  kBoth,     // fire on any sign change
  kRising,   // fire only on - -> + crossings
  kFalling,  // fire only on + -> - crossings
};

/// One zero-crossing event: g(t, y) crosses zero in the filtered
/// direction. The optional reset mutates the state in place at the
/// localized event time; a terminal event stops the integration there.
struct EventFunction {
  std::function<double(double t, std::span<const double> y)> guard;
  EventDirection direction = EventDirection::kBoth;
  /// Optional state reset applied at the event time (y holds the
  /// interpolated pre-event state on entry).
  std::function<void(double t, std::span<double> y)> reset;
  bool terminal = false;
  std::string name;
};

/// The event configuration a Problem carries (Problem::events). Shared
/// by value across ensemble lanes and auto_switch segments.
struct EventSpec {
  std::vector<EventFunction> functions;
  /// Localization window: bisection stops when the bracketing interval
  /// shrinks below time_tol * max(1, |t|).
  double time_tol = 1e-10;
  std::size_t max_bisections = 80;
  /// Zeno guard: a solve firing more events than this throws, instead of
  /// silently looping on an accumulation point.
  std::size_t max_events = 10000;
};

/// Continuous extension of one accepted step, evaluable anywhere inside
/// it. Public because event localization is exactly the consumer the
/// interpolant was built for; tests pin the dopri5 form at 4th order.
class DenseOutput {
 public:
  /// DOPRI5 4th-order continuous extension from the step's stages
  /// (Hairer/Norsett/Wanner II.5, the rcont1..rcont5 form).
  static DenseOutput dopri5(double t0, double h, std::span<const double> y0,
                            std::span<const double> y1,
                            std::span<const double> k1,
                            std::span<const double> k3,
                            std::span<const double> k4,
                            std::span<const double> k5,
                            std::span<const double> k6,
                            std::span<const double> k7);

  /// Cubic Hermite over [t0, t1] from endpoint states and derivatives
  /// (3rd-order accurate; what the fixed-step and Adams drivers use).
  static DenseOutput hermite(double t0, std::span<const double> y0,
                             std::span<const double> f0, double t1,
                             std::span<const double> y1,
                             std::span<const double> f1);

  /// Lagrange evaluation of a uniform multistep history: `points` nodes
  /// at t_new, t_new - node_h, ... (newest first) — the BDF history
  /// interpolant.
  static DenseOutput lagrange(
      double t_new, double node_h,
      const std::vector<std::vector<double>>& history, std::size_t points);

  /// Interpolated state at `t` (inside the covered step).
  void eval(double t, std::span<double> out) const;

  double t0() const { return t0_; }
  double t1() const { return t1_; }

 private:
  enum class Kind { kContinuous, kLagrange };
  Kind kind_ = Kind::kContinuous;
  double t0_ = 0.0, t1_ = 0.0, h_ = 0.0;
  // kContinuous: Shampine/HNW coefficient vectors; rcont5 empty for the
  // cubic Hermite (the quartic term vanishes).
  std::vector<double> rcont1_, rcont2_, rcont3_, rcont4_, rcont5_;
  // kLagrange: nodes newest-first at spacing h_, node_[0] at t1_.
  std::vector<std::vector<double>> nodes_;
};

/// Per-solve (or per-ensemble-lane) event state machine: cached guard
/// signs, detection, localization, reset application, telemetry. Owned
/// by the driver; copyable so ensemble lanes can carry one each.
class EventHandler {
 public:
  EventHandler() = default;
  EventHandler(std::shared_ptr<const EventSpec> spec, std::size_t n);

  bool armed() const { return spec_ != nullptr && !spec_->functions.empty(); }

  /// (Re)caches every guard's value at a committed point. Call once at
  /// the initial state; check() re-primes after each fired event.
  void prime(double t, std::span<const double> y);

  struct Hit {
    bool fired = false;
    bool terminal = false;
    double t = 0.0;
    std::size_t index = 0;  // into EventSpec::functions
  };

  /// Scans the accepted jump (t_prev, t_new] for directional sign
  /// changes against the cached guard values. On detection, `make_dense`
  /// supplies the step's DenseOutput (built lazily — most steps cross
  /// nothing) and the earliest crossing is bisected to the spec's time
  /// tolerance. On fire: pre_state() holds the interpolated pre-event
  /// state, post_state() the state after the reset; guards re-prime at
  /// (t_event, post); a kEvent recorder event and stats.events are
  /// emitted. Without a crossing the cache simply advances to t_new.
  template <typename MakeDense>
  Hit check(double t_prev, double t_new, std::span<const double> y_new,
            const char* method, SolverStats& stats, MakeDense&& make_dense) {
    if (!armed() || !(t_new > t_prev)) {
      return {};
    }
    if (!detect(t_new, y_new)) {
      return {};
    }
    const DenseOutput dense = make_dense();
    return localize(t_prev, t_new, y_new, dense, method, stats);
  }

  std::span<const double> pre_state() const { return y_pre_; }
  std::span<const double> post_state() const { return y_post_; }
  std::size_t events_fired() const { return fired_; }
  const EventSpec& spec() const { return *spec_; }

 private:
  bool detect(double t_new, std::span<const double> y_new);
  Hit localize(double t_prev, double t_new, std::span<const double> y_new,
               const DenseOutput& dense, const char* method,
               SolverStats& stats);

  std::shared_ptr<const EventSpec> spec_;
  std::size_t n_ = 0;
  std::vector<double> g_prev_, g_new_;
  std::vector<char> crossed_;
  std::vector<double> y_pre_, y_post_, y_mid_;
  std::size_t fired_ = 0;
};

/// Builds a cubic Hermite dense output over [t0, t1], evaluating the
/// problem RHS at both endpoints (2 calls, counted into `stats`). Used
/// by drivers without a natural interpolant for the jump at hand (fixed
/// step, Adams steps and history rebuilds).
inline DenseOutput hermite_by_rhs(const Problem& p, double t0,
                                  std::span<const double> y0, double t1,
                                  std::span<const double> y1,
                                  SolverStats& stats) {
  std::vector<double> f0(p.n), f1(p.n);
  p.rhs(t0, y0, f0);
  p.rhs(t1, y1, f1);
  stats.rhs_calls += 2;
  return DenseOutput::hermite(t0, y0, f0, t1, y1, f1);
}

/// Conservative step re-seed after an event restart (the same d0/d1
/// heuristic the drivers use at t0), shared so the scalar dopri5 driver
/// and the ensemble lanes stay operation-for-operation identical.
inline double event_restart_step(std::span<const double> y,
                                 std::span<const double> f,
                                 const Tolerances& tol, double span_fallback,
                                 double hmax, std::span<double> w) {
  error_weights(y, tol, w);
  const double d0 = la::wrms_norm(y, w);
  const double d1 = la::wrms_norm(f, w);
  const double h = (d0 > 1e-5 && d1 > 1e-5) ? 0.01 * d0 / d1
                                            : 1e-3 * span_fallback;
  return std::min(h, hmax);
}

/// Post-step event sweep shared by the multistep drivers (Adams, BDF,
/// auto_switch segments): checks the jump the stepper just made, and on
/// a hit records the pre/post rows, restarts the stepper at the
/// post-reset state (history truncation + Jacobian invalidation live in
/// restart()), then repeats over the restart's own forward jump — Adams
/// history rebuilds advance time, so one event can expose another.
/// Returns true when a terminal event stops the integration (the event
/// rows are already recorded; the stepper is NOT restarted).
template <typename Stepper, typename MakeDense>
bool sweep_stepper_events(EventHandler& ev, Stepper& stepper,
                          const char* method, double t_prev,
                          std::vector<double>& y_prev, TrajectoryWriter& rec,
                          MakeDense make_dense) {
  while (ev.armed() && stepper.t() > t_prev) {
    const EventHandler::Hit hit =
        ev.check(t_prev, stepper.t(), stepper.y(), method, stepper.stats(),
                 [&] { return make_dense(t_prev, y_prev); });
    if (!hit.fired) {
      return false;
    }
    rec.append(hit.t, ev.pre_state());
    rec.append(hit.t, ev.post_state());
    if (hit.terminal) {
      return true;
    }
    t_prev = hit.t;
    y_prev.assign(ev.post_state().begin(), ev.post_state().end());
    stepper.restart(t_prev, y_prev, 0.0);
  }
  return false;
}

}  // namespace omx::ode
