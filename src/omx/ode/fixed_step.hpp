// Fixed-step explicit integrators: forward Euler (order 1) and the
// classical Runge-Kutta method (order 4). Reference solvers for tests and
// the cheap drivers for the parallel-RHS throughput benchmarks (the
// benchmark clock measures RHS evaluations, not solver internals, exactly
// like §4).
#pragma once

#include "omx/ode/sink.hpp"

namespace omx::ode {

struct FixedStepOptions {
  double dt = 1e-3;
  /// Record every k-th accepted step (1 = all). The final state is always
  /// recorded.
  std::size_t record_every = 1;
  /// Polled once per step; throws Cancelled when it reads true.
  const std::atomic<bool>* cancel = nullptr;
};

namespace detail {
/// Streaming cores: accepted steps flow to `sink` under scenario id
/// `scenario`; the returned statistics are also delivered via finish().
SolverStats explicit_euler(const Problem& p, const FixedStepOptions& opts,
                           TrajectorySink& sink, std::uint32_t scenario = 0);
SolverStats rk4(const Problem& p, const FixedStepOptions& opts,
                TrajectorySink& sink, std::uint32_t scenario = 0);
/// Compatibility wrappers: collect the stream into a Solution.
Solution explicit_euler(const Problem& p, const FixedStepOptions& opts);
Solution rk4(const Problem& p, const FixedStepOptions& opts);
}  // namespace detail

}  // namespace omx::ode
