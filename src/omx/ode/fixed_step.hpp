// Fixed-step explicit integrators: forward Euler (order 1) and the
// classical Runge-Kutta method (order 4). Reference solvers for tests and
// the cheap drivers for the parallel-RHS throughput benchmarks (the
// benchmark clock measures RHS evaluations, not solver internals, exactly
// like §4).
#pragma once

#include "omx/ode/problem.hpp"

namespace omx::ode {

struct FixedStepOptions {
  double dt = 1e-3;
  /// Record every k-th accepted step (1 = all). The final state is always
  /// recorded.
  std::size_t record_every = 1;
};

namespace detail {
Solution explicit_euler(const Problem& p, const FixedStepOptions& opts);
Solution rk4(const Problem& p, const FixedStepOptions& opts);
}  // namespace detail

[[deprecated("use ode::solve(p, Method::kExplicitEuler, opts)")]]
inline Solution explicit_euler(const Problem& p,
                               const FixedStepOptions& opts) {
  return detail::explicit_euler(p, opts);
}

[[deprecated("use ode::solve(p, Method::kRk4, opts)")]]
inline Solution rk4(const Problem& p, const FixedStepOptions& opts) {
  return detail::rk4(p, opts);
}

}  // namespace omx::ode
