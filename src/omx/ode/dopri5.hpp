// Adaptive explicit Runge-Kutta: Dormand-Prince 5(4) with a PI step-size
// controller. The workhorse non-stiff solver of the suite.
#pragma once

#include "omx/ode/sink.hpp"

namespace omx::ode {

struct Dopri5Options {
  Tolerances tol{};
  double h0 = 0.0;         // 0 = automatic initial step
  double hmax = 0.0;       // 0 = tend - t0
  std::size_t max_steps = 1000000;
  std::size_t record_every = 1;
  /// Polled once per step attempt; throws Cancelled when it reads true.
  const std::atomic<bool>* cancel = nullptr;
};

namespace detail {
/// Streaming core: accepted steps flow to `sink` under scenario id
/// `scenario`; the returned statistics are also delivered via finish().
SolverStats dopri5(const Problem& p, const Dopri5Options& opts,
                   TrajectorySink& sink, std::uint32_t scenario = 0);
/// Compatibility wrapper: collects the stream into a Solution.
Solution dopri5(const Problem& p, const Dopri5Options& opts);
}  // namespace detail

}  // namespace omx::ode
