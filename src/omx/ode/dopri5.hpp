// Adaptive explicit Runge-Kutta: Dormand-Prince 5(4) with a PI step-size
// controller. The workhorse non-stiff solver of the suite.
#pragma once

#include "omx/ode/problem.hpp"

namespace omx::ode {

struct Dopri5Options {
  Tolerances tol{};
  double h0 = 0.0;         // 0 = automatic initial step
  double hmax = 0.0;       // 0 = tend - t0
  std::size_t max_steps = 1000000;
  std::size_t record_every = 1;
};

namespace detail {
Solution dopri5(const Problem& p, const Dopri5Options& opts);
}  // namespace detail

[[deprecated("use ode::solve(p, Method::kDopri5, opts)")]]
inline Solution dopri5(const Problem& p, const Dopri5Options& opts) {
  return detail::dopri5(p, opts);
}

}  // namespace omx::ode
