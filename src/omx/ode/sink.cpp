#include "omx/ode/sink.hpp"

namespace omx::ode {

void TrajectoryChunk::reset(std::uint32_t scenario_id, std::size_t width,
                            std::size_t rows) {
  scenario = scenario_id;
  n = width;
  capacity = rows;
  size = 0;
  final = false;
  if (times.size() < rows) {
    times.resize(rows);
  }
  if (states.size() < rows * width) {
    states.resize(rows * width);
  }
}

namespace detail {

TrajectoryChunk* ChunkPool::get(std::uint32_t scenario, std::size_t n) {
  TrajectoryChunk* c = nullptr;
  if (!free_.empty()) {
    c = free_.back();
    free_.pop_back();
  } else {
    all_.push_back(std::make_unique<TrajectoryChunk>());
    c = all_.back().get();
  }
  c->reset(scenario, n, rows_);
  return c;
}

}  // namespace detail

// ----------------------------------------------------------- SolutionSink

TrajectoryChunk* SolutionSink::acquire(std::uint32_t scenario,
                                       std::size_t n) {
  return pool_.get(scenario, n);
}

void SolutionSink::commit(TrajectoryChunk* chunk) {
  for (std::size_t i = 0; i < chunk->size; ++i) {
    sol_.append(chunk->times[i], chunk->row_view(i));
  }
  pool_.put(chunk);
}

void SolutionSink::finish(std::uint32_t /*scenario*/,
                          const SolverStats& stats) {
  sol_.stats = stats;
}

// ---------------------------------------------------- EnsembleCollectSink

TrajectoryChunk* EnsembleCollectSink::acquire(std::uint32_t scenario,
                                              std::size_t n) {
  const std::lock_guard<std::mutex> lock(mutex_);
  return pool_.get(scenario, n);
}

void EnsembleCollectSink::commit(TrajectoryChunk* chunk) {
  // One writer per scenario: the target Solution needs no lock.
  Solution& sol = solutions_[chunk->scenario];
  for (std::size_t i = 0; i < chunk->size; ++i) {
    sol.append(chunk->times[i], chunk->row_view(i));
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  pool_.put(chunk);
}

void EnsembleCollectSink::finish(std::uint32_t scenario,
                                 const SolverStats& stats) {
  solutions_[scenario].stats = stats;
}

// --------------------------------------------------------- StatsOnlySink

TrajectoryChunk* StatsOnlySink::acquire(std::uint32_t scenario,
                                        std::size_t n) {
  const std::lock_guard<std::mutex> lock(mutex_);
  return pool_.get(scenario, n);
}

void StatsOnlySink::commit(TrajectoryChunk* chunk) {
  if (chunk->size > 0) {
    Final& f = finals_[chunk->scenario];
    f.t = chunk->times[chunk->size - 1];
    const std::span<const double> last = chunk->row_view(chunk->size - 1);
    f.y.assign(last.begin(), last.end());
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  pool_.put(chunk);
}

void StatsOnlySink::finish(std::uint32_t scenario, const SolverStats& stats) {
  stats_[scenario] = stats;
}

}  // namespace omx::ode
