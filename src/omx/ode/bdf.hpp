// Backward differentiation formulas (orders 1-5) with modified Newton —
// the stiff method family of LSODA/ODEPACK (§3.2.1; Hindmarsh 1983).
//
// The implementation uses uniform-step BDF with automatic order ramp-up:
// after every (re)start or step-size change the history is reset and the
// order climbs 1 -> target as uniform points accumulate; this is the
// classical fixed-leading-coefficient strategy in its simplest robust
// form. The iteration matrix I - h*beta*J lives in a JacobianEngine:
// factorizations are reused across Newton iterations and steps, a
// beta*h change alone refactors with the existing Jacobian values, and
// only divergence, slow convergence, or age re-evaluates the Jacobian
// (LSODA-style; see ode/jacobian.hpp).
#pragma once

#include <memory>

#include "omx/la/lu.hpp"
#include "omx/ode/events.hpp"
#include "omx/ode/jacobian.hpp"
#include "omx/ode/sink.hpp"

namespace omx::ode {

struct BdfOptions {
  Tolerances tol{};
  int max_order = 2;   // 1..5; adaptive runs ramp up to this order
  double h0 = 0.0;     // 0 = automatic
  double hmax = 0.0;
  std::size_t max_steps = 1000000;
  std::size_t newton_max_iters = 8;
  std::size_t record_every = 1;
  /// Fixed-step mode (no error control) when > 0 — used by the
  /// convergence-order tests.
  double fixed_h = 0.0;
  /// Color-group evaluation threads for the compressed-FD Jacobian
  /// (takes effect only with a bound batch_rhs; see colored_fd_jacobian).
  int jac_threads = 1;
  /// Accepted steps a Jacobian may age before a forced re-evaluation.
  std::size_t jac_max_age = 20;
  /// Polled once per step attempt; throws Cancelled when it reads true.
  const std::atomic<bool>* cancel = nullptr;
};

class BdfStepper {
 public:
  BdfStepper(const Problem& p, const BdfOptions& opts);

  void restart(double t, std::span<const double> y, double h);

  /// Attempts one step; true = accepted.
  bool step();

  double t() const { return t_; }
  std::span<const double> y() const { return history_.front(); }
  double h() const { return h_; }
  int current_order() const { return order_; }
  /// Newton iterations used by the last accepted step (fast convergence
  /// signals the problem is no longer stiff — switch-back heuristic).
  std::size_t last_newton_iters() const { return last_newton_iters_; }

  /// Dense output over the step just accepted: Lagrange evaluation of
  /// the uniform history (the BDF interpolating polynomial the corrector
  /// itself is built on). Valid immediately after step() returns true —
  /// event localization is its consumer.
  DenseOutput last_step_dense() const {
    return DenseOutput::lagrange(t_, last_node_h_, history_,
                                 last_dense_points_);
  }

  SolverStats& stats() { return stats_; }

 private:
  bool newton_solve(double t1, std::span<const double> predictor,
                    std::span<const double> rhs_const, double beta_h,
                    std::span<double> out);

  const Problem& p_;
  BdfOptions opts_;
  JacobianEngine jac_engine_;

  double t_ = 0.0;
  double h_ = 0.0;
  int order_ = 1;  // current ramped order
  // history_[0] = y_n, history_[1] = y_{n-1}, ...
  std::vector<std::vector<double>> history_;
  // Node spacing / count for last_step_dense(), refreshed per accepted
  // step (growth subsampling changes the spacing after the insert).
  double last_node_h_ = 0.0;
  std::size_t last_dense_points_ = 2;
  std::size_t last_newton_iters_ = 0;
  SolverStats stats_;
};

namespace detail {
/// Streaming core: accepted steps flow to `sink` under scenario id
/// `scenario`; the returned statistics are also delivered via finish().
SolverStats bdf(const Problem& p, const BdfOptions& opts,
                TrajectorySink& sink, std::uint32_t scenario = 0);
/// Compatibility wrapper: collects the stream into a Solution.
Solution bdf(const Problem& p, const BdfOptions& opts);
}  // namespace detail

}  // namespace omx::ode
