// LSODA-style automatic method switching (§3.2.1; Petzold 1983):
// integrate with the non-stiff Adams PECE method, monitor for stiffness,
// and switch to BDF + Newton when the explicit method's step size
// collapses; switch back when the implicit method reports easy Newton
// convergence at a comfortably large step.
//
// The switching heuristic is deliberately simple (repeated rejections /
// step-size collapse rather than LSODA's method-order cost comparison) but
// exhibits the same qualitative behaviour on stiff/non-stiff transitions.
#pragma once

#include "omx/ode/adams.hpp"
#include "omx/ode/bdf.hpp"

namespace omx::ode {

struct AutoSwitchOptions {
  Tolerances tol{};
  int bdf_max_order = 2;
  std::size_t max_steps = 2000000;
  std::size_t record_every = 1;
  /// Primary stiffness detector: every `stiffness_check_interval` accepted
  /// Adams steps, measure sigma = h * lambda_est (see
  /// AdamsStepper::stiffness_ratio); `stiff_sigma_confirmations`
  /// consecutive readings above `stiff_sigma` mean the explicit method is
  /// stability-limited -> switch to BDF.
  std::size_t stiffness_check_interval = 20;
  double stiff_sigma = 0.8;
  std::size_t stiff_sigma_confirmations = 2;
  /// Fallbacks: switch when the Adams step collapses below
  /// stiff_h_fraction * (tend - t0), or after this many consecutive
  /// rejections.
  double stiff_h_fraction = 1e-5;
  std::size_t stiff_reject_limit = 8;
  /// Switch back when BDF runs at h above nonstiff_h_fraction * span with
  /// Newton converging in <= 2 iterations this many times in a row.
  double nonstiff_h_fraction = 1e-3;
  std::size_t nonstiff_streak = 20;
  /// Polled once per step attempt; throws Cancelled when it reads true.
  const std::atomic<bool>* cancel = nullptr;
};

enum class SwitchMethod { kAdams, kBdf };

struct SwitchEvent {
  double t;
  SwitchMethod to;
};

struct AutoSwitchResult {
  Solution solution;
  std::vector<SwitchEvent> switches;
  SwitchMethod final_method = SwitchMethod::kAdams;
};

/// What the streaming overload returns: the trajectory itself went to
/// the sink, so only the statistics and the switch record remain.
struct AutoSwitchRun {
  SolverStats stats;
  std::vector<SwitchEvent> switches;
  SwitchMethod final_method = SwitchMethod::kAdams;
};

/// Streaming core: accepted steps flow to `sink` under scenario id
/// `scenario`; the returned statistics are also delivered via finish().
AutoSwitchRun auto_switch(const Problem& p, const AutoSwitchOptions& opts,
                          TrajectorySink& sink, std::uint32_t scenario = 0);

/// The switching driver with the full per-switch event record. The plain
/// trajectory is also available as ode::solve(p, Method::kLsodaLike, ...).
AutoSwitchResult auto_switch(const Problem& p,
                             const AutoSwitchOptions& opts);

}  // namespace omx::ode
