#include "omx/ode/auto_switch.hpp"

#include <utility>

#include "omx/obs/recorder.hpp"
#include "omx/obs/trace.hpp"
#include "omx/ode/events.hpp"
#include "omx/ode/jacobian.hpp"

namespace omx::ode {

namespace {

void merge_stats(SolverStats& into, const SolverStats& from) {
  into.rhs_calls += from.rhs_calls;
  into.jac_calls += from.jac_calls;
  into.steps += from.steps;
  into.rejected += from.rejected;
  into.newton_iters += from.newton_iters;
  into.jac_factorizations += from.jac_factorizations;
  into.jac_reuse_hits += from.jac_reuse_hits;
  into.events += from.events;
  into.events_terminal += from.events_terminal;
}

}  // namespace

AutoSwitchRun auto_switch(const Problem& p_in, const AutoSwitchOptions& opts,
                          TrajectorySink& sink, std::uint32_t scenario) {
  p_in.validate();
  obs::Span solve_span("lsoda_like", "ode");
  // Prepare the Jacobian plan (pattern + coloring + backend choice) once
  // up front; every stiff segment's BdfStepper inherits it through the
  // Problem copy instead of re-deriving it per switch.
  Problem p = p_in;
  if (!p.jac_plan) {
    p.jac_plan = make_jac_plan(p);
  }
  AutoSwitchRun result;
  TrajectoryWriter rec(sink, scenario, p.n);
  rec.append(p.t0, p.y0);

  const double span = p.tend - p.t0;

  AdamsOptions aopts;
  aopts.tol = opts.tol;
  BdfOptions bopts;
  bopts.tol = opts.tol;
  bopts.max_order = opts.bdf_max_order;

  SwitchMethod method = SwitchMethod::kAdams;
  double t = p.t0;
  std::vector<double> y = p.y0;
  std::size_t accepted = 0;
  std::size_t attempts = 0;

  // One handler for the whole run: cached guard signs survive method
  // switches, so a crossing straddling a switch point still fires.
  EventHandler events(p.events, p.n);
  if (events.armed()) {
    events.prime(t, y);
  }
  std::vector<double> yprev(p.n);
  bool terminated = false;

  while (!terminated && t < p.tend) {
    if (method == SwitchMethod::kAdams) {
      Problem sub = p;
      sub.t0 = t;
      sub.y0 = y;
      AdamsStepper stepper(sub, aopts);
      auto make_dense = [&](double tp, const std::vector<double>& yp) {
        return hermite_by_rhs(sub, tp, yp, stepper.t(), stepper.y(),
                              stepper.stats());
      };
      // The stepper's startup advanced some RK4 substeps already —
      // sweep that jump before the step loop.
      if (events.armed()) {
        yprev = y;
        terminated = sweep_stepper_events(events, stepper, "lsoda_like", t,
                                          yprev, rec, make_dense);
      }
      bool stiff = false;
      std::size_t accepts_since_check = 0;
      std::size_t sigma_hits = 0;
      std::size_t accepts_total = 0;
      while (!terminated && stepper.t() < p.tend) {
        poll_cancel(opts.cancel, "lsoda_like");
        if (++attempts > opts.max_steps) {
          throw omx::Error("lsoda_like: max_steps exceeded");
        }
        const double tprev = stepper.t();
        if (events.armed()) {
          yprev.assign(stepper.y().begin(), stepper.y().end());
        }
        const bool ok = stepper.step();
        // Rejected Adams attempts still advance (shrink + history
        // rebuild), so the sweep runs after every attempt, not just
        // accepted ones.
        if (events.armed() &&
            sweep_stepper_events(events, stepper, "lsoda_like", tprev, yprev,
                                 rec, make_dense)) {
          terminated = true;
          break;
        }
        if (ok) {
          ++accepted;
          ++accepts_total;
          if (accepted % opts.record_every == 0 ||
              stepper.t() >= p.tend) {
            rec.append(stepper.t(), stepper.y());
          }
          if (++accepts_since_check >= opts.stiffness_check_interval &&
              stepper.t() < p.tend) {
            accepts_since_check = 0;
            if (stepper.stiffness_ratio() > opts.stiff_sigma) {
              ++sigma_hits;
            } else {
              sigma_hits = 0;
            }
            if (sigma_hits >= opts.stiff_sigma_confirmations) {
              stiff = true;
              break;
            }
          }
        }
        // The automatic initial step is deliberately conservative; give
        // the controller time to grow h before reading a small h as
        // stiffness.
        const bool warmed_up = accepts_total >= 48;
        if ((warmed_up && stepper.h() < opts.stiff_h_fraction * span) ||
            stepper.consecutive_rejects() >= opts.stiff_reject_limit) {
          stiff = true;
          break;
        }
      }
      merge_stats(result.stats, stepper.stats());
      t = stepper.t();
      y.assign(stepper.y().begin(), stepper.y().end());
      if (terminated) {
        break;
      }
      if (!stiff) {
        break;  // reached tend
      }
      method = SwitchMethod::kBdf;
      ++result.stats.method_switches;
      result.switches.push_back(SwitchEvent{t, SwitchMethod::kBdf});
      obs::record_step(obs::StepEventKind::kMethodSwitch, "bdf", 0, t,
                       stepper.h(), 0.0);
    } else {
      Problem sub = p;
      sub.t0 = t;
      sub.y0 = y;
      BdfStepper stepper(sub, bopts);
      auto make_dense = [&](double, const std::vector<double>&) {
        return stepper.last_step_dense();
      };
      std::size_t easy_streak = 0;
      bool relaxed = false;
      while (stepper.t() < p.tend) {
        poll_cancel(opts.cancel, "lsoda_like");
        if (++attempts > opts.max_steps) {
          throw omx::Error("lsoda_like: max_steps exceeded");
        }
        const double tprev = stepper.t();
        const bool ok = stepper.step();
        if (ok) {
          const std::size_t fired_before = events.events_fired();
          if (events.armed() &&
              sweep_stepper_events(events, stepper, "lsoda_like", tprev,
                                   yprev, rec, make_dense)) {
            terminated = true;
            break;
          }
          ++accepted;
          // The BDF restart stays at the crossing; skip the cadence row
          // after a fired event or it duplicates the event time.
          if (events.events_fired() == fired_before &&
              (accepted % opts.record_every == 0 ||
               stepper.t() >= p.tend)) {
            rec.append(stepper.t(), stepper.y());
          }
          if (stepper.last_newton_iters() <= 2 &&
              stepper.h() >= opts.nonstiff_h_fraction * span) {
            if (++easy_streak >= opts.nonstiff_streak) {
              relaxed = true;
            }
          } else {
            easy_streak = 0;
          }
        } else {
          easy_streak = 0;
        }
        if (relaxed && stepper.t() < p.tend) {
          break;
        }
      }
      merge_stats(result.stats, stepper.stats());
      t = stepper.t();
      y.assign(stepper.y().begin(), stepper.y().end());
      if (terminated || !relaxed || t >= p.tend) {
        break;
      }
      method = SwitchMethod::kAdams;
      ++result.stats.method_switches;
      result.switches.push_back(SwitchEvent{t, SwitchMethod::kAdams});
      obs::record_step(obs::StepEventKind::kMethodSwitch, "adams", 0, t,
                       stepper.h(), 0.0);
    }
  }
  result.final_method = method;
  publish_solver_stats(result.stats);
  rec.finish(result.stats);
  return result;
}

AutoSwitchResult auto_switch(const Problem& p,
                             const AutoSwitchOptions& opts) {
  SolutionSink sink;
  AutoSwitchRun run = auto_switch(p, opts, sink);
  AutoSwitchResult result;
  result.solution = sink.take();
  result.switches = std::move(run.switches);
  result.final_method = run.final_method;
  return result;
}

}  // namespace omx::ode
