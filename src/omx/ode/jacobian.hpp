// Jacobian evaluation for the implicit solvers.
//
// Three layers, selected per Problem:
//  * Legacy dense: forward-difference n+1 RHS calls + dense LU — what
//    LSODA does internally, and what the paper calls "usually very
//    expensive" (§3.2.1). Used when no sparsity information exists.
//  * Colored compressed FD: with a structural pattern attached
//    (Problem::sparsity), a greedy distance-2 column coloring packs all
//    columns of one color into a single perturbed RHS evaluation —
//    colors+1 calls instead of n+1 (3+1 for a tridiagonal heat-PDE
//    stencil). Because each equation reads at most one perturbed column
//    per color group, the compressed differences are bitwise identical
//    to one-column-at-a-time differences.
//  * Symbolic: a bound JacFn / SparseJacFn evaluates the tape-compiled
//    derivative directly.
//
// JacobianEngine owns the Jacobian values, the iteration matrix
// M = I - beta*h*J, its factorization (dense or sparse LU, picked by
// fill ratio), and the LSODA-style reuse policy: a beta*h change alone
// refactors with the existing Jacobian values (a "reuse hit"); only
// divergence, slow convergence, or age forces a re-evaluation.
#pragma once

#include <cmath>
#include <memory>

#include "omx/la/lu.hpp"
#include "omx/la/sparse.hpp"
#include "omx/obs/trace.hpp"
#include "omx/ode/problem.hpp"

namespace omx::ode {

/// LSODA-style scaled FD increment: dj = sqrt(eps) * max(|y_j|, typ_j),
/// carrying the sign of y_j (perturbing away from the origin keeps the
/// relative scale of y_j + dj when y_j is large and negative).
inline double fd_increment(double yj, double typ = 1.0) {
  const double sqrt_eps = std::sqrt(2.220446049250313e-16);
  const double mag = sqrt_eps * std::max(std::fabs(yj), typ);
  return yj < 0.0 ? -mag : mag;
}

/// Forward-difference dense Jacobian: J(:,j) = (f(y + e_j dj) - f(y)) / dj.
/// Costs n+1 RHS evaluations. `rhs_calls` is incremented accordingly.
void finite_difference_jacobian(const RhsFn& rhs, double t,
                                std::span<const double> y, la::Matrix& jac,
                                std::uint64_t& rhs_calls);

/// Prepared sparse-Jacobian plan, shared across Problem copies (ensemble
/// lanes, auto-switch segments). Immutable once built.
struct JacPlan {
  /// Structural pattern augmented with the diagonal (the iteration
  /// matrix I - beta*h*J needs it).
  std::shared_ptr<const la::SparsityPattern> pattern;
  la::Coloring coloring;
  la::ColumnView cols;  // CSC companion for column-wise FD scatter
  /// Factorization backend chosen by fill ratio (and OMX_SPARSE_DISABLE).
  bool use_sparse = false;
  la::SparseLu::Ordering ordering = la::SparseLu::Ordering::kNatural;
};

/// Builds the plan from p.sparsity; returns nullptr when the problem has
/// no pattern (legacy dense path). Honors OMX_SPARSE_DISABLE (forces the
/// dense backend while keeping the colored FD compression) and
/// OMX_SPARSE_ORDERING=rcm (opt-in fill-reducing ordering; trades away
/// the bitwise dense/sparse identity). Also publishes the jac.colors /
/// jac.nnz gauges.
std::shared_ptr<const JacPlan> make_jac_plan(const Problem& p);

/// Colored compressed finite-difference Jacobian into CSR values:
/// colors+1 RHS calls. With `threads > 1` and a bound batch_rhs, color
/// groups are evaluated concurrently on distinct kernel lanes (the lane
/// contract guarantees thread safety and bitwise-equal results); without
/// a batched kernel the evaluation stays serial, since a plain RhsFn
/// carries no thread-safety guarantee.
void colored_fd_jacobian(const Problem& p, const JacPlan& plan, double t,
                         std::span<const double> y, la::CsrMatrix& jac,
                         std::uint64_t& rhs_calls, int threads = 1);

/// Wraps a Problem's dense Jacobian (or the finite-difference fallback)
/// into a uniform callable.
class JacobianEvaluator {
 public:
  explicit JacobianEvaluator(const Problem& p) : p_(p) {}

  void operator()(double t, std::span<const double> y, la::Matrix& jac,
                  SolverStats& stats) const {
    obs::Span span(p_.jacobian ? "jacobian" : "jacobian_fd", "ode");
    if (p_.jacobian) {
      p_.jacobian(t, y, jac);
    } else {
      finite_difference_jacobian(p_.rhs, t, y, jac, stats.rhs_calls);
    }
    ++stats.jac_calls;
  }

 private:
  const Problem& p_;
};

/// Owns Jacobian values + iteration-matrix factorization for a modified
/// Newton iteration, with the LSODA-style reuse/refresh policy.
class JacobianEngine {
 public:
  struct Config {
    /// Color-group evaluation threads (needs a bound batch_rhs to take
    /// effect; see colored_fd_jacobian).
    int jac_threads = 1;
    /// Accepted steps a Jacobian may age before a forced re-evaluation
    /// (LSODA's MSBP is 20).
    std::size_t max_age = 20;
    /// Newton iteration count at/above which convergence counts as
    /// degraded — the next prepare() re-evaluates the Jacobian.
    std::size_t slow_iters = 5;
  };

  JacobianEngine(const Problem& p, const Config& cfg);

  /// Ensures a factorization of M = I - beta_h * J consistent with the
  /// reuse policy and returns the solver to iterate with. Evaluates the
  /// Jacobian only when stale (never evaluated, aged out, degradation or
  /// divergence flagged); a beta_h change alone refactors with the
  /// existing values and counts a reuse hit.
  la::LinearSolver& prepare(double t, std::span<const double> y,
                            double beta_h, SolverStats& stats);

  /// Flags Newton divergence: the next prepare() re-evaluates the
  /// Jacobian at whatever iterate it is given.
  void force_refresh() { refresh_requested_ = true; }

  /// Drops Jacobian and factorization (step rejection, restart).
  void invalidate();

  /// Accepted-step bookkeeping: ages the Jacobian and applies the
  /// slow-convergence degradation trigger.
  void on_step_accepted(std::size_t newton_iters);

  /// True when the sparse LU backend is active.
  bool sparse() const { return plan_ && plan_->use_sparse; }
  const JacPlan* plan() const { return plan_.get(); }

 private:
  void eval_jacobian(double t, std::span<const double> y,
                     SolverStats& stats);
  void factorize(double beta_h);

  const Problem& p_;
  Config cfg_;
  std::shared_ptr<const JacPlan> plan_;  // null = legacy dense path
  la::CsrMatrix jac_csr_;                // pattern path: Jacobian values
  la::CsrMatrix m_csr_;                  // pattern path: iteration matrix
  la::Matrix jac_dense_;                 // dense backend: Jacobian mirror
  std::unique_ptr<la::LinearSolver> solver_;
  bool have_jac_ = false;
  bool refresh_requested_ = false;
  std::size_t age_ = 0;
  double factored_beta_h_ = -1.0;
};

}  // namespace omx::ode
