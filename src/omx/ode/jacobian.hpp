// Jacobian evaluation helpers. The implicit solvers accept a user/generated
// JacFn; when none is supplied they fall back to the forward-difference
// approximation here (what LSODA does internally, and what the paper calls
// "usually very expensive", §3.2.1).
#pragma once

#include "omx/obs/trace.hpp"
#include "omx/ode/problem.hpp"

namespace omx::ode {

/// Forward-difference dense Jacobian: J(:,j) = (f(y + e_j dj) - f(y)) / dj.
/// Costs n+1 RHS evaluations. `rhs_calls` is incremented accordingly.
void finite_difference_jacobian(const RhsFn& rhs, double t,
                                std::span<const double> y, la::Matrix& jac,
                                std::uint64_t& rhs_calls);

/// Wraps a Problem's Jacobian (or the finite-difference fallback) into a
/// uniform callable.
class JacobianEvaluator {
 public:
  explicit JacobianEvaluator(const Problem& p) : p_(p) {}

  void operator()(double t, std::span<const double> y, la::Matrix& jac,
                  SolverStats& stats) const {
    obs::Span span(p_.jacobian ? "jacobian" : "jacobian_fd", "ode");
    if (p_.jacobian) {
      p_.jacobian(t, y, jac);
    } else {
      finite_difference_jacobian(p_.rhs, t, y, jac, stats.rhs_calls);
    }
    ++stats.jac_calls;
  }

 private:
  const Problem& p_;
};

}  // namespace omx::ode
