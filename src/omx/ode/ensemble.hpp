// Ensemble execution: integrating many scenarios of one model at once.
//
// The paper's evaluation drives a single bearing instance; at production
// scale the dominant workload is sweeping thousands of parameter
// scenarios (bearing loads, hydro setpoints) through the same compiled
// model. Scenario-level parallelism composes with the equation-level
// parallelism of §3.2: each worker integrates a *batch* of scenarios in
// SoA lockstep, so one tape decode (or one pass of compiled native code)
// is amortized over the whole batch, and scenarios are distributed across
// workers with the same LPT + work-stealing machinery the task pool uses.
//
// Semantics:
//  * Every scenario keeps fully independent step control — its own t, h,
//    error estimate and accept/reject decisions — batching only fuses the
//    RHS evaluations. Because batched kernels are lane-independent
//    (exec::RhsKernel), a scenario's trajectory is bitwise identical
//    whatever batch it rides in, whichever worker runs it, and however
//    often the batch is repacked: results are deterministic across
//    worker counts, and a one-scenario ensemble reproduces plain
//    ode::solve bit for bit.
//  * Finished scenarios retire from their batch immediately; the batch
//    compacts and refills from the remaining queue (work stealing moves
//    whole scenarios between workers).
//  * kExplicitEuler / kRk4 / kDopri5 run fully batched. The multistep /
//    stiff methods (kAdamsPece, kBdf, kLsodaLike) integrate scenario-at-
//    a-time per worker, through the batched kernel at width 1 when one is
//    bound (which keeps them thread-safe across workers).
#pragma once

#include "omx/ode/solve.hpp"

namespace omx::ode {

struct EnsembleSpec {
  /// One initial state per scenario, each of size problem.n. The base
  /// problem's y0 is ignored.
  std::vector<std::vector<double>> initial_states;
  /// Worker threads (clamped to the scenario count and, when a batched
  /// kernel declares finite Problem::batch_lanes, to that).
  std::size_t workers = 1;
  /// Scenarios integrated in SoA lockstep per worker; 1 degenerates to
  /// scenario-at-a-time execution (the bench baseline). Values above
  /// simd::lane_width() are rounded down to a lane-width multiple so
  /// full batches divide into whole vector blocks.
  std::size_t max_batch = 16;
};

struct EnsembleResult {
  /// One trajectory per scenario, in spec.initial_states order.
  std::vector<Solution> solutions;
};

/// Integrates every scenario of `spec` over the base problem `p` (its n /
/// t0 / tend / tolerances / callbacks; y0 comes from the spec). Throws
/// omx::Error on the first scenario failure. Telemetry:
/// ensemble.scenarios_active, ensemble.batch_occupancy,
/// ensemble.rhs_calls_per_sec.
EnsembleResult solve_ensemble(const Problem& p, Method method,
                              const SolverOptions& opts,
                              const EnsembleSpec& spec);

/// Streaming form: every scenario's accepted steps flow to `sink`
/// tagged with the scenario index (see ode/sink.hpp), and no
/// EnsembleResult is built. Workers call the sink concurrently — at
/// most one writer per scenario at any moment, but acquire/commit/
/// finish must be thread-safe (EnsembleCollectSink and StatsOnlySink
/// are; custom sinks must follow suit).
void solve_ensemble(const Problem& p, Method method,
                    const SolverOptions& opts, const EnsembleSpec& spec,
                    TrajectorySink& sink);

}  // namespace omx::ode
