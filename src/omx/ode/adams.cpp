#include "omx/ode/adams.hpp"

#include <algorithm>
#include <cmath>

#include "omx/obs/recorder.hpp"
#include "omx/obs/trace.hpp"
#include "omx/ode/events.hpp"

namespace omx::ode {

namespace {
// AB4 predictor and AM4 (3-step) corrector coefficients.
constexpr double kAb[4] = {55.0 / 24, -59.0 / 24, 37.0 / 24, -9.0 / 24};
constexpr double kAm[4] = {9.0 / 24, 19.0 / 24, -5.0 / 24, 1.0 / 24};
// Milne error constant for the PECE pair: |y_c - y_p| * 19/270.
constexpr double kMilne = 19.0 / 270.0;
}  // namespace

AdamsStepper::AdamsStepper(const Problem& p, const AdamsOptions& opts)
    : p_(p), opts_(opts), y_(p.n) {
  restart(p.t0, p.y0, opts.h0);
}

void AdamsStepper::restart(double t, std::span<const double> y, double h) {
  t_ = t;
  std::copy(y.begin(), y.end(), y_.begin());
  if (h > 0.0) {
    h_ = h;
  } else {
    // Automatic initial step (Hairer's d0/d1 heuristic): h ~ 1% of the
    // solution's characteristic time scale ||y||_w / ||y'||_w.
    std::vector<double> f(p_.n), w(p_.n);
    p_.rhs(t_, y_, f);
    ++stats_.rhs_calls;
    error_weights(y_, opts_.tol, w);
    const double d0 = la::wrms_norm(y_, w);
    const double d1 = la::wrms_norm(f, w);
    h_ = (d0 > 1e-5 && d1 > 1e-5) ? 0.01 * d0 / d1
                                  : 1e-3 * (p_.tend - p_.t0);
  }
  const double hmax = opts_.hmax > 0.0 ? opts_.hmax : (p_.tend - p_.t0);
  h_ = std::min(h_, hmax);
  // The history rebuild advances 3 substeps; keep them well inside the
  // remaining interval.
  const double remaining = p_.tend - t_;
  if (remaining < 8.0 * h_) {
    h_ = remaining / 8.0;
  }
  rebuild_history();
  consecutive_rejects_ = 0;
}

void AdamsStepper::rk4_step(double t, std::span<const double> y, double h,
                            std::span<double> out) {
  const std::size_t n = p_.n;
  std::vector<double> k1(n), k2(n), k3(n), k4(n), tmp(n);
  p_.rhs(t, y, k1);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = y[i] + 0.5 * h * k1[i];
  p_.rhs(t + 0.5 * h, tmp, k2);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = y[i] + 0.5 * h * k2[i];
  p_.rhs(t + 0.5 * h, tmp, k3);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = y[i] + h * k3[i];
  p_.rhs(t + h, tmp, k4);
  stats_.rhs_calls += 4;
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = y[i] + h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
  }
}

void AdamsStepper::rebuild_history() {
  // Take three RK4 substeps *backwards-filling* the f history forward:
  // history holds f at t_n, t_n - h, ..., but we cannot step backwards, so
  // we advance three RK4 steps and shift the window: the stepper's (t_, y_)
  // moves to the last substep.
  const std::size_t n = p_.n;
  f_.assign(4, std::vector<double>(n));
  std::vector<double> y = y_;
  double t = t_;
  p_.rhs(t, y, f_[3]);
  ++stats_.rhs_calls;
  for (int k = 2; k >= 0; --k) {
    // Each history point is produced by 4 RK4 substeps: the local error
    // (h/4)^5-scale stays far below the ABM4 error controller's budget,
    // so rebuilds never pollute the controlled accuracy.
    std::vector<double> next(n);
    const int sub = 4;
    for (int s = 0; s < sub; ++s) {
      rk4_step(t, y, h_ / sub, next);
      t += h_ / sub;
      y = next;
    }
    p_.rhs(t, y, f_[static_cast<std::size_t>(k)]);
    ++stats_.rhs_calls;
    stats_.steps++;
  }
  t_ = t;
  std::copy(y.begin(), y.end(), y_.begin());
  steps_since_rebuild_ = 0;
}

bool AdamsStepper::step() {
  const std::size_t n = p_.n;
  const double rem = p_.tend - t_;
  if (rem < h_) {
    // Finish the last partial interval with a single RK4 step (same order;
    // keeps the Adams history spacing strictly uniform).
    std::vector<double> out(n);
    rk4_step(t_, y_, rem, out);
    std::copy(out.begin(), out.end(), y_.begin());
    t_ = p_.tend;
    ++stats_.steps;
    consecutive_rejects_ = 0;
    return true;
  }
  const double h = h_;

  // Predict (AB4).
  std::vector<double> yp(n), fc(n), yc(n), err(n), w(n);
  for (std::size_t i = 0; i < n; ++i) {
    yp[i] = y_[i] + h * (kAb[0] * f_[0][i] + kAb[1] * f_[1][i] +
                         kAb[2] * f_[2][i] + kAb[3] * f_[3][i]);
  }
  // Evaluate, correct (AM4), evaluate (PECE).
  p_.rhs(t_ + h, yp, fc);
  for (std::size_t i = 0; i < n; ++i) {
    yc[i] = y_[i] + h * (kAm[0] * fc[i] + kAm[1] * f_[0][i] +
                         kAm[2] * f_[1][i] + kAm[3] * f_[2][i]);
  }
  stats_.rhs_calls += 1;

  for (std::size_t i = 0; i < n; ++i) {
    err[i] = kMilne * (yc[i] - yp[i]);
  }
  error_weights(yc, opts_.tol, w);
  const double e = la::wrms_norm(err, w);
  if (!std::isfinite(e)) {
    // A NaN/Inf from the RHS fails every accept test; report the real
    // cause instead of rejecting down to a step-size underflow.
    throw omx::Error("adams_pece: non-finite state or RHS at t = " +
                     std::to_string(t_));
  }

  if (e <= 1.0) {
    obs::record_step(obs::StepEventKind::kStepAccepted, "adams", 4, t_, h,
                     e);
    t_ += h;
    std::copy(yc.begin(), yc.end(), y_.begin());
    // Shift history; final evaluation of PECE.
    std::rotate(f_.rbegin(), f_.rbegin() + 1, f_.rend());
    p_.rhs(t_, y_, f_[0]);
    ++stats_.rhs_calls;
    ++stats_.steps;
    consecutive_rejects_ = 0;
    // Step-size growth: any change of h invalidates the uniform history
    // and a rebuild costs ~50 RHS calls, so require a clear win AND let
    // the current step size amortize over several accepted steps first.
    ++steps_since_rebuild_;
    if (steps_since_rebuild_ >= 8) {
      just_grew_ = false;  // the grown step size has proven itself
    }
    const double fac = 0.9 * std::pow(std::max(e, 1e-10), -0.2);
    if (fac > 1.9 && steps_since_rebuild_ >= 8 &&
        p_.tend - t_ > 8.0 * h_) {
      const double grown = std::min(
          h_ * 2.0, opts_.hmax > 0.0 ? opts_.hmax : (p_.tend - p_.t0));
      if (grown > h_ * 1.01) {  // only rebuild when h actually changes
        h_ = grown;
        rebuild_history();
        just_grew_ = true;
      }
    }
    return true;
  }

  ++stats_.rejected;
  ++consecutive_rejects_;
  obs::record_step(obs::StepEventKind::kStepRejected, "adams", 4, t_, h,
                   e);
  if (just_grew_) {
    // Accuracy misses after growth show e slightly above 1; an explicit
    // method pushed past its stability boundary rejects with an exploding
    // estimate. Only the latter counts as stiffness evidence.
    if (e > 3.0) {
      ++growth_bounces_;
    }
    just_grew_ = false;
  }
  h_ *= std::max(0.25, 0.9 * std::pow(e, -0.25));
  if (h_ < 1e-14 * std::max(1.0, std::fabs(t_))) {
    throw omx::Error("adams: step size underflow at t = " +
                     std::to_string(t_));
  }
  // A shrunk h always leaves room for the 3-substep rebuild.
  rebuild_history();
  return false;
}

double AdamsStepper::stiffness_ratio() {
  const std::size_t n = p_.n;
  const double yn = la::norm2(y_);
  const double eps = 1e-7 * (yn + 1.0);
  std::vector<double> yp(n), f1(n);

  auto probe = [&](std::span<const double> dir) {
    const double dn = la::norm2(dir);
    if (dn == 0.0) {
      return 0.0;
    }
    for (std::size_t i = 0; i < n; ++i) {
      yp[i] = y_[i] + eps * dir[i] / dn;
    }
    p_.rhs(t_, yp, f1);
    ++stats_.rhs_calls;
    for (std::size_t i = 0; i < n; ++i) {
      f1[i] -= f_[0][i];
    }
    return la::norm2(f1) / eps;
  };

  // Two directional probes of ||J v||: along the flow (the smooth,
  // slowest modes — what the solution currently does) and along the
  // roughest sign-alternating direction (which excites the fast modes of
  // diffusion-like operators that the flow direction hides). The max is a
  // cheap lower bound on the spectral radius.
  const double lambda_flow = probe(f_[0]);
  std::vector<double> rough(n);
  for (std::size_t i = 0; i < n; ++i) {
    rough[i] = (i % 2 == 0) ? 1.0 : -1.0;
  }
  const double lambda_rough = probe(rough);
  return h_ * std::max(lambda_flow, lambda_rough);
}

namespace detail {

SolverStats adams_pece(const Problem& p, const AdamsOptions& opts,
                       TrajectorySink& sink, std::uint32_t scenario) {
  p.validate();
  obs::Span solve_span("adams_pece", "ode");
  AdamsStepper stepper(p, opts);
  TrajectoryWriter rec(sink, scenario, p.n);
  rec.append(p.t0, p.y0);

  EventHandler events(p.events, p.n);
  std::vector<double> yprev(p.n);
  // The Adams step has no native continuous extension (the f history is
  // rebuilt wholesale on restarts), so localization interpolates each
  // jump with cubic Hermite from on-demand endpoint derivatives.
  auto make_dense = [&](double tp, const std::vector<double>& yp) {
    return hermite_by_rhs(p, tp, yp, stepper.t(), stepper.y(),
                          stepper.stats());
  };
  bool terminated = false;
  if (events.armed()) {
    events.prime(p.t0, p.y0);
    // The construction rebuild already advanced a few RK4 substeps —
    // sweep that jump before committing the post-rebuild point.
    yprev = p.y0;
    terminated = sweep_stepper_events(events, stepper, "adams", p.t0,
                                      yprev, rec, make_dense);
  }
  // The history rebuild already advanced a few RK4 steps; record them.
  rec.append(stepper.t(), stepper.y());

  std::size_t accepted = 0;
  std::size_t attempts = 0;
  while (!terminated && stepper.t() < p.tend) {
    poll_cancel(opts.cancel, "adams");
    if (++attempts > opts.max_steps) {
      throw omx::Error("adams: max_steps exceeded");
    }
    const double tprev = stepper.t();
    if (events.armed()) {
      yprev.assign(stepper.y().begin(), stepper.y().end());
    }
    const bool ok = stepper.step();
    // Rejected attempts also move time (the shrink-rebuild advances a
    // few substeps), so the sweep runs on every attempt that did.
    if (events.armed() &&
        sweep_stepper_events(events, stepper, "adams", tprev, yprev, rec,
                             make_dense)) {
      terminated = true;
      break;
    }
    if (ok) {
      ++accepted;
      if (accepted % opts.record_every == 0 || stepper.t() >= p.tend) {
        rec.append(stepper.t(), stepper.y());
      }
    }
  }
  const SolverStats stats = stepper.stats();
  publish_solver_stats(stats);
  rec.finish(stats);
  return stats;
}

Solution adams_pece(const Problem& p, const AdamsOptions& opts) {
  SolutionSink sink;
  adams_pece(p, opts, sink);
  return sink.take();
}

}  // namespace detail

}  // namespace omx::ode
