#include "omx/ode/fixed_step.hpp"

#include <algorithm>
#include <cmath>

#include "omx/obs/trace.hpp"
#include "omx/ode/events.hpp"

namespace omx::ode {

namespace {

std::size_t num_steps(const Problem& p, double dt) {
  OMX_REQUIRE(dt > 0.0, "dt must be positive");
  return static_cast<std::size_t>(std::ceil((p.tend - p.t0) / dt - 1e-12));
}

// Fixed-step methods have no error control to notice a NaN/Inf from the
// RHS, so without this check they silently integrate garbage to tend.
void check_finite(std::span<const double> y, const char* method, double t) {
  for (const double v : y) {
    if (!std::isfinite(v)) {
      throw omx::Error(std::string(method) +
                       ": non-finite state or RHS at t = " +
                       std::to_string(t));
    }
  }
}

/// Event-armed fixed-step loop shared by euler and rk4: `advance` takes
/// one step of size h from (t, y) in place and accounts its RHS calls.
/// Events shift t off the dt grid, so the loop walks to tend instead of
/// counting a precomputed number of steps; the smooth path below stays
/// the untouched (bitwise-stable) step-counted loop.
template <typename Advance>
SolverStats fixed_step_with_events(const Problem& p,
                                   const FixedStepOptions& opts,
                                   TrajectorySink& sink,
                                   std::uint32_t scenario,
                                   const char* method, Advance advance) {
  TrajectoryWriter rec(sink, scenario, p.n);
  SolverStats stats;
  std::vector<double> y = p.y0;
  std::vector<double> yprev(p.n);
  double t = p.t0;
  rec.append(t, y);
  EventHandler events(p.events, p.n);
  events.prime(t, y);

  std::size_t k = 0;
  while (t < p.tend) {
    poll_cancel(opts.cancel, method);
    const double h = std::min(opts.dt, p.tend - t);
    const double tprev = t;
    yprev = y;
    advance(t, y, h, stats);
    t += h;
    ++stats.steps;
    check_finite(y, method, t);
    const EventHandler::Hit hit =
        events.check(tprev, t, y, method, stats, [&] {
          return hermite_by_rhs(p, tprev, yprev, t, y, stats);
        });
    if (hit.fired) {
      t = hit.t;
      rec.append(t, events.pre_state());
      std::copy(events.post_state().begin(), events.post_state().end(),
                y.begin());
      rec.append(t, y);
      if (hit.terminal) {
        break;
      }
      continue;  // resume on a grid anchored at the event time
    }
    if (k % opts.record_every == opts.record_every - 1 || t >= p.tend) {
      rec.append(t, y);
    }
    ++k;
  }
  publish_solver_stats(stats);
  rec.finish(stats);
  return stats;
}

}  // namespace

namespace detail {

SolverStats explicit_euler(const Problem& p, const FixedStepOptions& opts,
                           TrajectorySink& sink, std::uint32_t scenario) {
  p.validate();
  obs::Span solve_span("explicit_euler", "ode");
  if (p.events != nullptr) {
    std::vector<double> f(p.n);
    return fixed_step_with_events(
        p, opts, sink, scenario, "explicit_euler",
        [&](double t, std::vector<double>& y, double h, SolverStats& stats) {
          p.rhs(t, y, f);
          ++stats.rhs_calls;
          for (std::size_t i = 0; i < p.n; ++i) {
            y[i] += h * f[i];
          }
        });
  }
  const std::size_t steps = num_steps(p, opts.dt);
  TrajectoryWriter rec(sink, scenario, p.n);
  SolverStats stats;

  std::vector<double> y = p.y0;
  std::vector<double> f(p.n);
  double t = p.t0;
  rec.append(t, y);
  for (std::size_t k = 0; k < steps; ++k) {
    poll_cancel(opts.cancel, "explicit_euler");
    const double h = std::min(opts.dt, p.tend - t);
    p.rhs(t, y, f);
    ++stats.rhs_calls;
    for (std::size_t i = 0; i < p.n; ++i) {
      y[i] += h * f[i];
    }
    t += h;
    ++stats.steps;
    check_finite(y, "explicit_euler", t);
    if (k % opts.record_every == opts.record_every - 1 || k + 1 == steps) {
      rec.append(t, y);
    }
  }
  publish_solver_stats(stats);
  rec.finish(stats);
  return stats;
}

Solution explicit_euler(const Problem& p, const FixedStepOptions& opts) {
  SolutionSink sink;
  explicit_euler(p, opts, sink);
  return sink.take();
}

SolverStats rk4(const Problem& p, const FixedStepOptions& opts,
                TrajectorySink& sink, std::uint32_t scenario) {
  p.validate();
  obs::Span solve_span("rk4", "ode");
  if (p.events != nullptr) {
    std::vector<double> k1(p.n), k2(p.n), k3(p.n), k4(p.n), tmp(p.n);
    return fixed_step_with_events(
        p, opts, sink, scenario, "rk4",
        [&](double t, std::vector<double>& y, double h, SolverStats& stats) {
          p.rhs(t, y, k1);
          for (std::size_t i = 0; i < p.n; ++i) {
            tmp[i] = y[i] + 0.5 * h * k1[i];
          }
          p.rhs(t + 0.5 * h, tmp, k2);
          for (std::size_t i = 0; i < p.n; ++i) {
            tmp[i] = y[i] + 0.5 * h * k2[i];
          }
          p.rhs(t + 0.5 * h, tmp, k3);
          for (std::size_t i = 0; i < p.n; ++i) {
            tmp[i] = y[i] + h * k3[i];
          }
          p.rhs(t + h, tmp, k4);
          stats.rhs_calls += 4;
          for (std::size_t i = 0; i < p.n; ++i) {
            y[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
          }
        });
  }
  const std::size_t steps = num_steps(p, opts.dt);
  TrajectoryWriter rec(sink, scenario, p.n);
  SolverStats stats;

  std::vector<double> y = p.y0;
  std::vector<double> k1(p.n), k2(p.n), k3(p.n), k4(p.n), tmp(p.n);
  double t = p.t0;
  rec.append(t, y);
  for (std::size_t k = 0; k < steps; ++k) {
    poll_cancel(opts.cancel, "rk4");
    const double h = std::min(opts.dt, p.tend - t);
    p.rhs(t, y, k1);
    for (std::size_t i = 0; i < p.n; ++i) {
      tmp[i] = y[i] + 0.5 * h * k1[i];
    }
    p.rhs(t + 0.5 * h, tmp, k2);
    for (std::size_t i = 0; i < p.n; ++i) {
      tmp[i] = y[i] + 0.5 * h * k2[i];
    }
    p.rhs(t + 0.5 * h, tmp, k3);
    for (std::size_t i = 0; i < p.n; ++i) {
      tmp[i] = y[i] + h * k3[i];
    }
    p.rhs(t + h, tmp, k4);
    stats.rhs_calls += 4;
    for (std::size_t i = 0; i < p.n; ++i) {
      y[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
    }
    t += h;
    ++stats.steps;
    check_finite(y, "rk4", t);
    if (k % opts.record_every == opts.record_every - 1 || k + 1 == steps) {
      rec.append(t, y);
    }
  }
  publish_solver_stats(stats);
  rec.finish(stats);
  return stats;
}

Solution rk4(const Problem& p, const FixedStepOptions& opts) {
  SolutionSink sink;
  rk4(p, opts, sink);
  return sink.take();
}

}  // namespace detail

}  // namespace omx::ode
