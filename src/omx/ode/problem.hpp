// ODE problem and solution types shared by all solvers (§2.4).
//
// An initial value problem y'(t) = f(y(t), t), y(t0) = y0. The RHS
// callback is exactly the generated-and-parallelized function the paper
// targets; the optional Jacobian callback corresponds to the "extra
// function dedicated to computing the Jacobian" of §2.4/§3.2.1.
//
// RhsFn/JacFn are non-owning support::FunctionRef views: one indirect
// call on the hot path, no type-erasure allocation. Long-lived kernels
// (exec::RhsKernel from pipeline::CompiledModel::make_kernel) bind
// directly; ad-hoc capturing lambdas go through Problem::set_rhs /
// set_jacobian, which copy the callable into a keep-alive owned by the
// Problem.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "omx/la/matrix.hpp"
#include "omx/support/diagnostics.hpp"
#include "omx/support/function_ref.hpp"

namespace omx::la {
class CsrMatrix;
struct SparsityPattern;
}  // namespace omx::la

namespace omx::ode {

struct JacPlan;    // ode/jacobian.hpp: pattern + coloring + backend choice
struct EventSpec;  // ode/events.hpp: zero-crossing guards + resets

using RhsFn = support::FunctionRef<void(double t, std::span<const double> y,
                                        std::span<double> ydot)>;
/// Writes J(i,j) = d f_i / d y_j into `jac` (preallocated n x n).
using JacFn = support::FunctionRef<void(double t, std::span<const double> y,
                                        la::Matrix& jac)>;
/// Batched RHS over `nb` scenarios in structure-of-arrays layout: state i
/// of scenario j at y_soa[i*nb+j], output slot likewise, per-scenario
/// time t[j]. `lane` selects a private workspace (the ensemble driver
/// passes its worker index); calls on distinct lanes must be thread-safe.
/// Lane results must be bitwise identical to a scalar rhs call on the
/// same (t[j], y[:, j]) — see exec::RhsKernel::eval_batch.
using BatchRhsFn = support::FunctionRef<void(
    std::size_t lane, std::size_t nb, const double* t, const double* y_soa,
    double* ydot_soa)>;
/// Writes the structurally nonzero Jacobian entries into `jac` (CSR
/// values aligned with the pattern the matrix was built over).
using SparseJacFn = support::FunctionRef<void(
    double t, std::span<const double> y, la::CsrMatrix& jac)>;

/// Thrown when a solve is aborted through a cancellation flag
/// (SolverOptions::cancel). A distinct type so supervising layers — the
/// ensemble driver, the service daemon — can tell a requested abort from
/// a numerical failure.
class Cancelled : public omx::Error {
 public:
  explicit Cancelled(std::string message) : Error(std::move(message)) {}
};

/// Driver-side poll of a cancellation flag: one relaxed load per step
/// attempt when armed, nothing when `cancel` is null.
inline void poll_cancel(const std::atomic<bool>* cancel,
                        const char* method) {
  if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
    throw Cancelled(std::string(method) + ": cancelled");
  }
}

struct Problem {
  std::size_t n = 0;
  RhsFn rhs;       // non-owning; see set_rhs for owning binding
  JacFn jacobian;  // optional; solvers fall back to finite differences
  double t0 = 0.0;
  double tend = 1.0;
  std::vector<double> y0;
  /// State-vector arity declared by the bound kernel (0 = unknown).
  /// pipeline::CompiledModel::make_problem fills it from the kernel;
  /// validate() rejects a mismatch against n.
  std::size_t rhs_arity = 0;

  /// Optional batched RHS for ode::solve_ensemble; plain solve() ignores
  /// it. When absent the ensemble driver falls back to lane-by-lane
  /// scalar rhs calls (then `rhs` must be thread-safe if workers > 1).
  BatchRhsFn batch_rhs;
  /// Arity declared by the bound batched kernel (0 = unknown); validate()
  /// rejects a mismatch against n, catching a batched kernel bound to a
  /// problem of a different model.
  std::size_t batch_arity = 0;
  /// Concurrency lanes the batched callable supports (0 = unlimited);
  /// solve_ensemble clamps its worker count to this.
  std::size_t batch_lanes = 0;

  /// Structural Jacobian sparsity: entry (i, j) present iff df_i/dy_j
  /// can be nonzero. pipeline::CompiledModel::make_problem attaches it
  /// from the dependency analysis; hand-built problems may set it
  /// directly (or via analysis::probe_sparsity). When absent the stiff
  /// solvers keep the legacy dense Jacobian path.
  std::shared_ptr<const la::SparsityPattern> sparsity;
  /// Optional pattern-aligned symbolic Jacobian (CSR values only); used
  /// in preference to `jacobian` when the sparse backend is active.
  SparseJacFn sparse_jacobian;
  /// Prepared Jacobian plan (pattern + coloring + dense/sparse backend
  /// choice). Built lazily by the stiff solvers from `sparsity` when
  /// absent; ode::solve_ensemble and ode::auto_switch prepare it once
  /// and share it across lanes / switch segments via Problem copies.
  std::shared_ptr<const JacPlan> jac_plan;

  /// Optional hybrid-model events: zero-crossing guards with direction
  /// filters and reset actions (see ode/events.hpp). Every driver —
  /// including solve_ensemble lanes and auto_switch segments — detects
  /// sign changes per accepted step, localizes the crossing with dense
  /// output, applies the reset, and restarts cleanly. Null = smooth
  /// problem, zero overhead.
  std::shared_ptr<const EventSpec> events;

  /// Copies `f` into a keep-alive owned by this Problem and points `rhs`
  /// at it. Use for capturing lambdas and other short-lived callables;
  /// one allocation at setup time, none per evaluation.
  template <typename F>
  void set_rhs(F f) {
    auto owned = std::make_shared<F>(std::move(f));
    rhs = RhsFn(*owned);
    rhs_keepalive_ = std::move(owned);
  }

  template <typename F>
  void set_jacobian(F f) {
    auto owned = std::make_shared<F>(std::move(f));
    jacobian = JacFn(*owned);
    jac_keepalive_ = std::move(owned);
  }

  template <typename F>
  void set_batch_rhs(F f) {
    auto owned = std::make_shared<F>(std::move(f));
    batch_rhs = BatchRhsFn(*owned);
    batch_keepalive_ = std::move(owned);
  }

  template <typename F>
  void set_sparse_jacobian(F f) {
    auto owned = std::make_shared<F>(std::move(f));
    sparse_jacobian = SparseJacFn(*owned);
    sparse_jac_keepalive_ = std::move(owned);
  }

  void validate() const;

 private:
  // Shared so that copies of the Problem keep the bound callables alive.
  std::shared_ptr<void> rhs_keepalive_;
  std::shared_ptr<void> jac_keepalive_;
  std::shared_ptr<void> batch_keepalive_;
  std::shared_ptr<void> sparse_jac_keepalive_;
};

struct Tolerances {
  double rtol = 1e-6;
  double atol = 1e-9;
};

struct SolverStats {
  std::uint64_t rhs_calls = 0;
  std::uint64_t jac_calls = 0;
  std::uint64_t steps = 0;
  std::uint64_t rejected = 0;
  std::uint64_t newton_iters = 0;
  std::uint64_t method_switches = 0;
  /// Iteration-matrix factorizations (dense or sparse LU).
  std::uint64_t jac_factorizations = 0;
  /// Factorizations that reused previously evaluated Jacobian values
  /// (beta*h changed but the Jacobian was still fresh — LSODA-style).
  std::uint64_t jac_reuse_hits = 0;
  /// Zero-crossing events fired (localized + reset applied).
  std::uint64_t events = 0;
  /// Events that terminated the integration before tend.
  std::uint64_t events_terminal = 0;
};

/// Adds one completed solve's statistics to the process-wide telemetry
/// registry (ode.solves, ode.steps, ode.steps_rejected, ode.rhs_calls,
/// ode.jac_evals, ode.newton_iters, ode.method_switches). Every solver
/// driver calls this once before returning its Solution.
void publish_solver_stats(const SolverStats& stats);

/// Accepted-step trajectory.
class Solution {
 public:
  void reserve(std::size_t steps, std::size_t n);
  void append(double t, std::span<const double> y);

  std::size_t size() const { return times_.size(); }
  double time(std::size_t i) const { return times_[i]; }
  std::span<const double> state(std::size_t i) const;
  std::span<const double> final_state() const;
  double final_time() const { return times_.back(); }

  /// Linear interpolation at time t (t within the covered range).
  std::vector<double> at(double t) const;

  SolverStats stats;

 private:
  std::size_t n_ = 0;
  std::vector<double> times_;
  std::vector<double> data_;  // row-major, one row per accepted step
};

/// Error weight vector w_i = atol + rtol*|y_i| used by all controllers.
void error_weights(std::span<const double> y, const Tolerances& tol,
                   std::span<double> w);

}  // namespace omx::ode
