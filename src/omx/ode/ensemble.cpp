#include "omx/ode/ensemble.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "omx/la/matrix.hpp"
#include "omx/obs/recorder.hpp"
#include "omx/obs/registry.hpp"
#include "omx/obs/trace.hpp"
#include "omx/ode/events.hpp"
#include "omx/ode/jacobian.hpp"
#include "omx/runtime/task_deque.hpp"
#include "omx/sched/lpt.hpp"
#include "omx/support/simd.hpp"
#include "omx/support/timer.hpp"
#include "omx/tune/autotuner.hpp"

namespace omx::ode {

namespace {

// ---------------------------------------------------------------- metrics

obs::Gauge& active_gauge() {
  static obs::Gauge& g =
      obs::Registry::global().gauge("ensemble.scenarios_active");
  return g;
}

obs::Histogram& occupancy_hist() {
  static obs::Histogram& h = obs::Registry::global().histogram(
      "ensemble.batch_occupancy", {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0});
  return h;
}

obs::Histogram& lane_step_hist() {
  static obs::Histogram& h = obs::Registry::global().histogram(
      "ensemble.lane_step_seconds", obs::log_spaced_bounds(1e-7, 1e-1));
  return h;
}

obs::Gauge& rate_gauge() {
  static obs::Gauge& g =
      obs::Registry::global().gauge("ensemble.rhs_calls_per_sec");
  return g;
}

obs::Counter& jac_plans_built_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("ensemble.jac_plans_built");
  return c;
}

obs::Counter& jac_plan_reuse_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("ensemble.jac_plan_reuses");
  return c;
}

obs::Counter& lanes_cancelled_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("ensemble.lanes_cancelled");
  return c;
}

// Lane-retire accounting keeps its reasons distinct: every finished lane
// (tend reached OR stopped by a terminal event) counts as retired, the
// event-stopped subset is counted again separately, and cancelled lanes
// appear only under lanes_cancelled — the three never alias.
obs::Counter& lanes_retired_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("ensemble.lanes_retired");
  return c;
}

obs::Counter& lanes_event_stopped_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("ensemble.lanes_event_stopped");
  return c;
}

// ---------------------------------------------------------- batched RHS

/// Uniform batched view over a Problem: dispatches to the bound batched
/// kernel when present, otherwise gathers/scatters lane-by-lane through
/// the scalar rhs (in which case concurrent workers require a
/// thread-safe rhs; pure function callables are, shared-workspace
/// kernels are not — those always bind batch_rhs).
class BatchEval {
 public:
  BatchEval(const Problem& p, std::size_t lane) : p_(&p), lane_(lane) {
    if (!p.batch_rhs) {
      y_.resize(p.n);
      f_.resize(p.n);
    }
  }

  void operator()(std::size_t nb, const double* ts, const double* y_soa,
                  double* ydot_soa) {
    if (p_->batch_rhs) {
      p_->batch_rhs(lane_, nb, ts, y_soa, ydot_soa);
      return;
    }
    const std::size_t n = p_->n;
    for (std::size_t j = 0; j < nb; ++j) {
      for (std::size_t i = 0; i < n; ++i) {
        y_[i] = y_soa[i * nb + j];
      }
      p_->rhs(ts[j], y_, f_);
      for (std::size_t i = 0; i < n; ++i) {
        ydot_soa[i * nb + j] = f_[i];
      }
    }
  }

 private:
  const Problem* p_;
  std::size_t lane_;
  simd::aligned_vector<double> y_, f_;  // scalar-fallback scratch
};

void pack_col(std::span<const double> v, double* soa, std::size_t nb,
              std::size_t j) {
  for (std::size_t i = 0; i < v.size(); ++i) {
    soa[i * nb + j] = v[i];
  }
}

void unpack_col(const double* soa, std::size_t nb, std::size_t j,
                std::span<double> v) {
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = soa[i * nb + j];
  }
}

[[noreturn]] void throw_nonfinite(const char* method, double t) {
  throw omx::Error(std::string(method) +
                   ": non-finite state or RHS at t = " + std::to_string(t));
}

// ----------------------------------------------------------- steppers
//
// Each stepper integrates a set of lanes (scenarios) in lockstep: one
// round() = one step attempt for every lane, with all RHS evaluations
// fused into batched calls. The per-lane arithmetic — stage updates,
// error norms, controller decisions — is written to mirror the scalar
// drivers (fixed_step.cpp, dopri5.cpp) operation for operation, which
// together with kernel lane-independence makes every lane's trajectory
// bitwise equal to a plain ode::solve of the same scenario.

/// Shared per-scenario retirement plumbing. Trajectories stream to the
/// caller's TrajectorySink (one TrajectoryWriter per in-flight lane);
/// nothing is accumulated solver-side.
struct StepperBase {
  const Problem& p;
  const SolverOptions& o;
  BatchEval rhs;
  TrajectorySink* sink;
  std::atomic<std::int64_t>* active_count;
  std::atomic<std::uint64_t>* rhs_total;
  const char* method_name = "ensemble";  // literal; set by derived ctors

  StepperBase(const Problem& pp, const SolverOptions& oo, std::size_t lane,
              TrajectorySink* out_sink, std::atomic<std::int64_t>* active,
              std::atomic<std::uint64_t>* total_rhs)
      : p(pp),
        o(oo),
        rhs(pp, lane),
        sink(out_sink),
        active_count(active),
        rhs_total(total_rhs) {}

  /// `at_event` marks a lane stopped early by a terminal event (t_stop
  /// is its stop time); an ordinary retirement reached tend.
  void retire(std::uint32_t scenario, TrajectoryWriter& rec,
              const SolverStats& stats, bool at_event = false,
              double t_stop = 0.0) {
    publish_solver_stats(stats);
    obs::record_lane(at_event ? obs::StepEventKind::kLaneEventStop
                              : obs::StepEventKind::kLaneRetire,
                     method_name, scenario, at_event ? t_stop : p.tend);
    lanes_retired_counter().add();
    if (at_event) {
      lanes_event_stopped_counter().add();
    }
    rec.finish(stats);
    rhs_total->fetch_add(stats.rhs_calls, std::memory_order_relaxed);
    active_count->fetch_sub(1, std::memory_order_relaxed);
    active_gauge().set(
        static_cast<double>(active_count->load(std::memory_order_relaxed)));
  }

  void on_add() {
    active_count->fetch_add(1, std::memory_order_relaxed);
    active_gauge().set(
        static_cast<double>(active_count->load(std::memory_order_relaxed)));
  }

  /// A lane dropped by cancellation: its TrajectoryWriter abandons the
  /// partial chunk (the pool reclaims it) and finish() is never sent.
  void abandon(std::uint32_t scenario, double t) {
    obs::record_lane(obs::StepEventKind::kLaneCancel, method_name,
                     scenario, t);
    active_count->fetch_sub(1, std::memory_order_relaxed);
    active_gauge().set(
        static_cast<double>(active_count->load(std::memory_order_relaxed)));
  }
};

/// kExplicitEuler / kRk4. All lanes share dt/t0/tend, so they take the
/// same number of steps and retire together; the structure still handles
/// mid-flight joins (a lane added later runs its own step counter).
class FixedStepper : public StepperBase {
 public:
  FixedStepper(const Problem& pp, const SolverOptions& oo, Method method,
               std::size_t lane, TrajectorySink* out_sink,
               std::atomic<std::int64_t>* active,
               std::atomic<std::uint64_t>* total_rhs)
      : StepperBase(pp, oo, lane, out_sink, active, total_rhs),
        rk4_(method == Method::kRk4) {
    method_name = rk4_ ? "rk4" : "explicit_euler";
    OMX_REQUIRE(oo.dt > 0.0, "dt must be positive");
    steps_ = static_cast<std::size_t>(
        std::ceil((pp.tend - pp.t0) / oo.dt - 1e-12));
  }

  std::size_t active() const { return lanes_.size(); }

  void add(std::uint32_t scenario, std::span<const double> y0) {
    const std::size_t n = p.n;
    Lane L;
    L.scenario = scenario;
    L.t = p.t0;
    L.y.assign(y0.begin(), y0.end());
    L.k1.resize(n);
    if (rk4_) {
      L.k2.resize(n);
      L.k3.resize(n);
      L.tmp.resize(n);
    }
    L.rec = TrajectoryWriter(*sink, scenario, n);
    L.rec.append(L.t, L.y);
    lanes_.push_back(std::move(L));
    on_add();
  }

  void round() { rk4_ ? round_rk4() : round_euler(); }

  std::size_t abandon_all() {
    for (const Lane& L : lanes_) {
      abandon(L.scenario, L.t);
    }
    const std::size_t n = lanes_.size();
    lanes_.clear();
    return n;
  }

 private:
  struct Lane {
    std::uint32_t scenario = 0;
    double t = 0.0, h = 0.0;
    std::size_t k = 0;  // completed steps
    std::vector<double> y, k1, k2, k3, tmp;
    TrajectoryWriter rec;
    SolverStats stats;
  };

  void pack_states(std::size_t nb) {
    ts_.resize(nb);
    ybuf_.resize(p.n * nb);
    fbuf_.resize(p.n * nb);
  }

  void round_euler() {
    const std::size_t nb = lanes_.size();
    pack_states(nb);
    for (std::size_t j = 0; j < nb; ++j) {
      ts_[j] = lanes_[j].t;
      pack_col(lanes_[j].y, ybuf_.data(), nb, j);
    }
    rhs(nb, ts_.data(), ybuf_.data(), fbuf_.data());
    for (std::size_t j = 0; j < nb; ++j) {
      Lane& L = lanes_[j];
      unpack_col(fbuf_.data(), nb, j, L.k1);
      const double h = std::min(o.dt, p.tend - L.t);
      ++L.stats.rhs_calls;
      for (std::size_t i = 0; i < p.n; ++i) {
        L.y[i] += h * L.k1[i];
      }
      L.t += h;
      finish_step(L, "explicit_euler");
    }
    compact();
  }

  void round_rk4() {
    const std::size_t nb = lanes_.size();
    pack_states(nb);
    // k1 = f(t, y)
    for (std::size_t j = 0; j < nb; ++j) {
      Lane& L = lanes_[j];
      L.h = std::min(o.dt, p.tend - L.t);
      ts_[j] = L.t;
      pack_col(L.y, ybuf_.data(), nb, j);
    }
    rhs(nb, ts_.data(), ybuf_.data(), fbuf_.data());
    for (std::size_t j = 0; j < nb; ++j) {
      unpack_col(fbuf_.data(), nb, j, lanes_[j].k1);
    }
    // k2 = f(t + h/2, y + h/2 k1)
    for (std::size_t j = 0; j < nb; ++j) {
      Lane& L = lanes_[j];
      for (std::size_t i = 0; i < p.n; ++i) {
        L.tmp[i] = L.y[i] + 0.5 * L.h * L.k1[i];
      }
      ts_[j] = L.t + 0.5 * L.h;
      pack_col(L.tmp, ybuf_.data(), nb, j);
    }
    rhs(nb, ts_.data(), ybuf_.data(), fbuf_.data());
    for (std::size_t j = 0; j < nb; ++j) {
      unpack_col(fbuf_.data(), nb, j, lanes_[j].k2);
    }
    // k3 = f(t + h/2, y + h/2 k2)
    for (std::size_t j = 0; j < nb; ++j) {
      Lane& L = lanes_[j];
      for (std::size_t i = 0; i < p.n; ++i) {
        L.tmp[i] = L.y[i] + 0.5 * L.h * L.k2[i];
      }
      pack_col(L.tmp, ybuf_.data(), nb, j);
    }
    rhs(nb, ts_.data(), ybuf_.data(), fbuf_.data());
    for (std::size_t j = 0; j < nb; ++j) {
      unpack_col(fbuf_.data(), nb, j, lanes_[j].k3);
    }
    // k4 = f(t + h, y + h k3); reuses k1's slot order as the scalar
    // driver does (k4 only feeds the closing combination).
    for (std::size_t j = 0; j < nb; ++j) {
      Lane& L = lanes_[j];
      for (std::size_t i = 0; i < p.n; ++i) {
        L.tmp[i] = L.y[i] + L.h * L.k3[i];
      }
      ts_[j] = L.t + L.h;
      pack_col(L.tmp, ybuf_.data(), nb, j);
    }
    rhs(nb, ts_.data(), ybuf_.data(), fbuf_.data());
    for (std::size_t j = 0; j < nb; ++j) {
      Lane& L = lanes_[j];
      unpack_col(fbuf_.data(), nb, j, L.tmp);  // k4
      L.stats.rhs_calls += 4;
      for (std::size_t i = 0; i < p.n; ++i) {
        L.y[i] += L.h / 6.0 *
                  (L.k1[i] + 2.0 * L.k2[i] + 2.0 * L.k3[i] + L.tmp[i]);
      }
      L.t += L.h;
      finish_step(L, "rk4");
    }
    compact();
  }

  void finish_step(Lane& L, const char* method) {
    ++L.stats.steps;
    for (const double v : L.y) {
      if (!std::isfinite(v)) {
        throw_nonfinite(method, L.t);
      }
    }
    if (L.k % o.record_every == o.record_every - 1 || L.k + 1 == steps_) {
      L.rec.append(L.t, L.y);
    }
    ++L.k;
  }

  void compact() {
    std::size_t w = 0;
    for (std::size_t j = 0; j < lanes_.size(); ++j) {
      if (lanes_[j].k >= steps_) {
        retire(lanes_[j].scenario, lanes_[j].rec, lanes_[j].stats);
      } else {
        if (w != j) {
          lanes_[w] = std::move(lanes_[j]);
        }
        ++w;
      }
    }
    lanes_.resize(w);
  }

  bool rk4_;
  std::size_t steps_ = 0;
  std::vector<Lane> lanes_;
  // SoA staging buffers (64-byte aligned per the simd.hpp contract; the
  // batched kernels' lane loops vectorize over them).
  simd::aligned_vector<double> ts_, ybuf_, fbuf_;
};

/// kDopri5: per-lane PI step control over batched stage evaluations.
class Dopri5Stepper : public StepperBase {
 public:
  Dopri5Stepper(const Problem& pp, const SolverOptions& oo, std::size_t lane,
                TrajectorySink* out_sink, std::atomic<std::int64_t>* active,
                std::atomic<std::uint64_t>* total_rhs)
      : StepperBase(pp, oo, lane, out_sink, active, total_rhs) {
    method_name = "dopri5";
    hmax_ = oo.hmax > 0.0 ? oo.hmax : (pp.tend - pp.t0);
  }

  std::size_t active() const { return lanes_.size(); }

  void add(std::uint32_t scenario, std::span<const double> y0) {
    const std::size_t n = p.n;
    Lane L;
    L.scenario = scenario;
    L.t = p.t0;
    L.y.assign(y0.begin(), y0.end());
    for (auto* v : {&L.k1, &L.k2, &L.k3, &L.k4, &L.k5, &L.k6, &L.k7,
                    &L.ytmp, &L.yerr, &L.w}) {
      v->resize(n);
    }
    L.events = EventHandler(p.events, n);
    if (L.events.armed()) {
      L.events.prime(L.t, L.y);
    }
    L.rec = TrajectoryWriter(*sink, scenario, n);
    L.rec.append(L.t, L.y);
    lanes_.push_back(std::move(L));
    on_add();
  }

  void round() {
    init_fresh();
    const std::size_t nb = lanes_.size();
    ts_.resize(nb);
    ybuf_.resize(p.n * nb);
    fbuf_.resize(p.n * nb);

    for (Lane& L : lanes_) {
      L.h = std::min(L.h, p.tend - L.t);
    }
    // Stages 2..6: ytmp = y + h * sum(coef * k); per-lane accumulation
    // order matches the scalar driver's stage lambda.
    stage(c2, [](Lane& L) { return Terms{{L.k1.data(), a21}}; },
          [](Lane& L) { return L.k2.data(); });
    stage(c3,
          [](Lane& L) {
            return Terms{{L.k1.data(), a31}, {L.k2.data(), a32}};
          },
          [](Lane& L) { return L.k3.data(); });
    stage(c4,
          [](Lane& L) {
            return Terms{
                {L.k1.data(), a41}, {L.k2.data(), a42}, {L.k3.data(), a43}};
          },
          [](Lane& L) { return L.k4.data(); });
    stage(c5,
          [](Lane& L) {
            return Terms{{L.k1.data(), a51},
                         {L.k2.data(), a52},
                         {L.k3.data(), a53},
                         {L.k4.data(), a54}};
          },
          [](Lane& L) { return L.k5.data(); });
    stage(1.0,
          [](Lane& L) {
            return Terms{{L.k1.data(), a61},
                         {L.k2.data(), a62},
                         {L.k3.data(), a63},
                         {L.k4.data(), a64},
                         {L.k5.data(), a65}};
          },
          [](Lane& L) { return L.k6.data(); });
    // 5th-order solution (FSAL: k7 = f at the new point).
    for (std::size_t j = 0; j < nb; ++j) {
      Lane& L = lanes_[j];
      for (std::size_t i = 0; i < p.n; ++i) {
        L.ytmp[i] = L.y[i] +
                    L.h * (a71 * L.k1[i] + a73 * L.k3[i] + a74 * L.k4[i] +
                           a75 * L.k5[i] + a76 * L.k6[i]);
      }
      ts_[j] = L.t + L.h;
      pack_col(L.ytmp, ybuf_.data(), nb, j);
    }
    rhs(nb, ts_.data(), ybuf_.data(), fbuf_.data());
    for (std::size_t j = 0; j < nb; ++j) {
      unpack_col(fbuf_.data(), nb, j, lanes_[j].k7);
    }

    for (Lane& L : lanes_) {
      control(L);
    }
    compact();
  }

  std::size_t abandon_all() {
    for (const Lane& L : lanes_) {
      abandon(L.scenario, L.t);
    }
    const std::size_t n = lanes_.size();
    lanes_.clear();
    return n;
  }

 private:
  struct Lane {
    std::uint32_t scenario = 0;
    double t = 0.0, h = 0.0, err_prev = 1.0;
    bool fresh = true, done = false, event_stopped = false;
    std::size_t recorded = 0, attempts = 0;
    std::vector<double> y, k1, k2, k3, k4, k5, k6, k7, ytmp, yerr, w;
    EventHandler events;  // per-lane guard-sign cache
    TrajectoryWriter rec;
    SolverStats stats;
  };

  using Terms = std::vector<std::pair<const double*, double>>;

  template <typename MakeTerms, typename Dst>
  void stage(double ci, MakeTerms make_terms, Dst dst) {
    const std::size_t nb = lanes_.size();
    for (std::size_t j = 0; j < nb; ++j) {
      Lane& L = lanes_[j];
      const Terms terms = make_terms(L);
      for (std::size_t i = 0; i < p.n; ++i) {
        double acc = L.y[i];
        for (const auto& [vec, coef] : terms) {
          acc += L.h * coef * vec[i];
        }
        L.ytmp[i] = acc;
      }
      ts_[j] = L.t + ci * L.h;
      pack_col(L.ytmp, ybuf_.data(), nb, j);
    }
    rhs(nb, ts_.data(), ybuf_.data(), fbuf_.data());
    for (std::size_t j = 0; j < nb; ++j) {
      unpack_col(fbuf_.data(), nb, j, {dst(lanes_[j]), p.n});
    }
  }

  /// First evaluation + automatic initial step for lanes that just
  /// joined (Hairer's d0/d1 heuristic, as in the scalar driver).
  void init_fresh() {
    std::vector<std::size_t> fresh;
    for (std::size_t j = 0; j < lanes_.size(); ++j) {
      if (lanes_[j].fresh) {
        fresh.push_back(j);
      }
    }
    if (fresh.empty()) {
      return;
    }
    const std::size_t nbf = fresh.size();
    ts_.resize(nbf);
    ybuf_.resize(p.n * nbf);
    fbuf_.resize(p.n * nbf);
    for (std::size_t j = 0; j < nbf; ++j) {
      ts_[j] = lanes_[fresh[j]].t;
      pack_col(lanes_[fresh[j]].y, ybuf_.data(), nbf, j);
    }
    rhs(nbf, ts_.data(), ybuf_.data(), fbuf_.data());
    for (std::size_t j = 0; j < nbf; ++j) {
      Lane& L = lanes_[fresh[j]];
      unpack_col(fbuf_.data(), nbf, j, L.k1);
      ++L.stats.rhs_calls;
      double h = o.h0;
      if (h <= 0.0) {
        error_weights(L.y, o.tol, L.w);
        const double d0 = la::wrms_norm(L.y, L.w);
        const double d1 = la::wrms_norm(L.k1, L.w);
        h = (d0 > 1e-5 && d1 > 1e-5) ? 0.01 * d0 / d1
                                     : 1e-3 * (p.tend - p.t0);
        h = std::min(h, hmax_);
      }
      L.h = h;
      L.fresh = false;
    }
  }

  void control(Lane& L) {
    for (std::size_t i = 0; i < p.n; ++i) {
      L.yerr[i] =
          L.h * (e1 * L.k1[i] + e3 * L.k3[i] + e4 * L.k4[i] +
                 e5 * L.k5[i] + e6 * L.k6[i] + e7 * L.k7[i]);
    }
    error_weights(L.ytmp, o.tol, L.w);
    const double err = la::wrms_norm(L.yerr, L.w);
    L.stats.rhs_calls += 6;
    if (!std::isfinite(err)) {
      throw_nonfinite("dopri5", L.t);
    }
    if (err <= 1.0) {
      // Event check mirrors the scalar driver's accept branch exactly:
      // at this point L.y/L.k1..L.k7 still hold the step's inputs and
      // stages, L.ytmp the candidate new state — the dense-output
      // construction and restart arithmetic are operation-for-operation
      // identical, which preserves ensemble == scalar bitwise equality
      // for hybrid scenarios.
      EventHandler::Hit hit;
      if (L.events.armed()) {
        hit = L.events.check(L.t, L.t + L.h, L.ytmp, "dopri5", L.stats, [&] {
          return DenseOutput::dopri5(L.t, L.h, L.y, L.ytmp, L.k1, L.k3,
                                     L.k4, L.k5, L.k6, L.k7);
        });
      }
      if (hit.fired) {
        L.t = hit.t;
        ++L.stats.steps;
        ++L.recorded;
        L.rec.append(L.t, L.events.pre_state());
        std::copy(L.events.post_state().begin(),
                  L.events.post_state().end(), L.y.begin());
        L.rec.append(L.t, L.y);
        if (hit.terminal) {
          L.event_stopped = true;
          L.done = true;
        } else {
          rhs(1, &L.t, L.y.data(), L.k1.data());
          ++L.stats.rhs_calls;
          L.h = event_restart_step(L.y, L.k1, o.tol, p.tend - p.t0, hmax_,
                                   L.w);
          L.err_prev = 1.0;
        }
      } else {
        L.t += L.h;
        L.y.swap(L.ytmp);
        L.k1.swap(L.k7);  // FSAL
        ++L.stats.steps;
        ++L.recorded;
        if (L.recorded % o.record_every == 0 || L.t >= p.tend) {
          L.rec.append(L.t, L.y);
        }
        // PI controller (Gustafsson), as in the scalar driver.
        const double err_clamped = std::max(err, 1e-10);
        double fac = 0.9 * std::pow(err_clamped, -0.7 / 5.0) *
                     std::pow(L.err_prev, 0.4 / 5.0);
        fac = std::clamp(fac, 0.2, 5.0);
        L.h = std::min(L.h * fac, hmax_);
        L.err_prev = err_clamped;
      }
    } else {
      ++L.stats.rejected;
      const double fac = std::max(0.2, 0.9 * std::pow(err, -1.0 / 5.0));
      L.h *= fac;
      if (L.h < 1e-14 * std::max(1.0, std::fabs(L.t))) {
        throw omx::Error("dopri5: step size underflow at t = " +
                         std::to_string(L.t));
      }
    }
    ++L.attempts;
    if (L.t >= p.tend || L.done) {
      L.done = true;
    } else if (L.attempts >= o.max_steps) {
      throw omx::Error("dopri5: max_steps exceeded before reaching tend");
    }
  }

  void compact() {
    std::size_t w = 0;
    for (std::size_t j = 0; j < lanes_.size(); ++j) {
      if (lanes_[j].done) {
        retire(lanes_[j].scenario, lanes_[j].rec, lanes_[j].stats,
               lanes_[j].event_stopped, lanes_[j].t);
      } else {
        if (w != j) {
          lanes_[w] = std::move(lanes_[j]);
        }
        ++w;
      }
    }
    lanes_.resize(w);
  }

  double hmax_ = 0.0;
  std::vector<Lane> lanes_;
  // SoA staging buffers (64-byte aligned per the simd.hpp contract).
  simd::aligned_vector<double> ts_, ybuf_, fbuf_;

  // Dormand & Prince RK5(4)7M coefficients (as in dopri5.cpp).
  static constexpr double c2 = 1.0 / 5, c3 = 3.0 / 10, c4 = 4.0 / 5,
                          c5 = 8.0 / 9;
  static constexpr double a21 = 1.0 / 5;
  static constexpr double a31 = 3.0 / 40, a32 = 9.0 / 40;
  static constexpr double a41 = 44.0 / 45, a42 = -56.0 / 15, a43 = 32.0 / 9;
  static constexpr double a51 = 19372.0 / 6561, a52 = -25360.0 / 2187,
                          a53 = 64448.0 / 6561, a54 = -212.0 / 729;
  static constexpr double a61 = 9017.0 / 3168, a62 = -355.0 / 33,
                          a63 = 46732.0 / 5247, a64 = 49.0 / 176,
                          a65 = -5103.0 / 18656;
  static constexpr double a71 = 35.0 / 384, a73 = 500.0 / 1113,
                          a74 = 125.0 / 192, a75 = -2187.0 / 6784,
                          a76 = 11.0 / 84;
  static constexpr double e1 = 71.0 / 57600, e3 = -71.0 / 16695,
                          e4 = 71.0 / 1920, e5 = -17253.0 / 339200,
                          e6 = 22.0 / 525, e7 = -1.0 / 40;
};

// ----------------------------------------------------------- scheduling

struct WorkSource {
  std::vector<runtime::TaskDeque> deques;
  std::size_t nw = 0;

  explicit WorkSource(std::size_t num_workers, std::size_t num_scenarios)
      : deques(num_workers), nw(num_workers) {
    // Equal scenario weights: LPT degenerates to a deterministic
    // round-robin card deal, which is exactly the right seed — stealing
    // absorbs the *runtime* imbalance of scenarios that converge at
    // different speeds.
    const std::vector<double> weights(num_scenarios, 1.0);
    const sched::Schedule sched = sched::lpt_schedule(weights, num_workers);
    for (std::size_t w = 0; w < num_workers; ++w) {
      deques[w].reserve(sched[w].size());
      deques[w].seed(sched[w]);
    }
  }

  /// Pops from the worker's own deque, then steals from the most-loaded
  /// victim. Returns false only when every deque is empty.
  bool next(std::size_t w, std::uint32_t& s) {
    if (deques[w].pop(s)) {
      return true;
    }
    for (;;) {
      std::size_t victim = nw;
      std::size_t best = 0;
      for (std::size_t v = 0; v < nw; ++v) {
        if (v == w) {
          continue;
        }
        const std::size_t sz = deques[v].size_estimate();
        if (sz > best) {
          best = sz;
          victim = v;
        }
      }
      if (victim == nw) {
        return false;
      }
      if (deques[victim].steal(s)) {
        return true;
      }
      // Lost the race; sizes changed, pick again.
    }
  }
};

/// Scenario-at-a-time path for the multistep/stiff methods: a plain
/// streaming solve per scenario, routed through the batched kernel at
/// width 1 when one is bound so concurrent workers each use their own
/// lane.
SolverStats solve_single(const Problem& p, Method method,
                         const SolverOptions& opts,
                         std::span<const double> y0, std::size_t lane,
                         TrajectorySink& sink, std::uint32_t scenario) {
  Problem q = p;
  q.y0.assign(y0.begin(), y0.end());
  if (p.batch_rhs) {
    const Problem* base = &p;
    q.set_rhs([base, lane](double t, std::span<const double> y,
                           std::span<double> ydot) {
      base->batch_rhs(lane, 1, &t, y.data(), ydot.data());
    });
  }
  return solve(q, method, opts, sink, scenario);
}

template <typename Stepper>
void run_batched_worker(Stepper& st, WorkSource& ws, std::size_t w,
                        std::size_t max_batch, const EnsembleSpec& spec) {
  std::uint32_t s = 0;
  bool mid_flight = false;  // has this batch taken a round yet?
  for (;;) {
    if (st.o.cancel != nullptr &&
        st.o.cancel->load(std::memory_order_relaxed)) {
      lanes_cancelled_counter().add(st.abandon_all());
      throw Cancelled(std::string(st.method_name) +
                      ": ensemble cancelled");
    }
    while (st.active() < max_batch && ws.next(w, s)) {
      obs::record_lane(mid_flight ? obs::StepEventKind::kLaneRefill
                                  : obs::StepEventKind::kLanePack,
                       st.method_name, s, st.p.t0);
      st.add(s, spec.initial_states[s]);
    }
    const std::size_t nb = st.active();
    if (nb == 0) {
      mid_flight = false;
      break;
    }
    occupancy_hist().observe(static_cast<double>(nb));
    Stopwatch timer;
    st.round();
    // Per-lane share of the round: comparable across batch widths.
    lane_step_hist().observe(timer.seconds() / static_cast<double>(nb));
    mid_flight = true;
  }
}

/// Largest batch width the auto-tuner may pick. The candidate grid is
/// independent of the caller's spec.max_batch by design — overriding a
/// bad caller guess is the point — but it must stop somewhere.
constexpr std::size_t kTuneBatchCap = 64;

}  // namespace

void solve_ensemble(const Problem& p, Method method,
                    const SolverOptions& opts, const EnsembleSpec& spec,
                    TrajectorySink& sink) {
  const std::size_t ns = spec.initial_states.size();
  if (ns == 0) {
    return;
  }

  {
    // Validate the base problem against the first scenario's y0 (the base
    // y0 is ignored and may be empty), then every scenario's arity.
    Problem v = p;
    v.y0 = spec.initial_states[0];
    v.validate();
  }
  for (const std::vector<double>& y0 : spec.initial_states) {
    if (y0.size() != p.n) {
      throw omx::Error(
          "solve_ensemble: scenario initial state size does not match n");
    }
  }

  obs::Span span("solve_ensemble", "ode");

  // Stiff methods go scenario-at-a-time; derive the sparsity pattern,
  // coloring, and backend choice ONCE here and share the immutable plan
  // across every lane's solver instead of re-deriving it per scenario.
  Problem base = p;
  if ((method == Method::kBdf || method == Method::kLsodaLike) &&
      !base.jac_plan) {
    base.jac_plan = make_jac_plan(base);
    if (base.jac_plan) {
      jac_plans_built_counter().add();
      jac_plan_reuse_counter().add(ns - 1);
    }
  }

  std::size_t nw = std::clamp<std::size_t>(spec.workers, 1, ns);
  if (p.batch_lanes > 0) {
    nw = std::min(nw, p.batch_lanes);
  }
  // Round the batch width down to whole SIMD blocks: a max_batch that is
  // not a lane_width multiple would make *every* full batch end in a
  // partially filled vector block, wasting lanes on each RHS call. Tail
  // batches (fewer scenarios left than max_batch) still shrink freely —
  // lane independence keeps results identical either way.
  std::size_t max_batch = std::max<std::size_t>(1, spec.max_batch);
  const std::size_t lw = simd::lane_width();
  if (max_batch > lw) {
    max_batch -= max_batch % lw;
  }

  // Auto-tuned configuration: with OMX_TUNE=on and a ready cost model
  // for this problem size, the model's pick overrides the caller's
  // workers/max_batch. Only the schedule shape changes — per-lane step
  // control never depends on worker or batch assignment, so a tuned run
  // produces bitwise-identical trajectories to an untuned one.
  if (tune::mode() == tune::Mode::kOn) {
    const std::size_t hw =
        std::max<std::size_t>(1, std::thread::hardware_concurrency());
    if (const std::optional<tune::EnsembleConfig> cfg =
            tune::AutoTuner::global().pick_ensemble(
                p.n, ns, std::min(ns, hw), kTuneBatchCap)) {
      nw = std::clamp<std::size_t>(cfg->workers, 1, ns);
      if (p.batch_lanes > 0) {
        nw = std::min(nw, p.batch_lanes);
      }
      max_batch = std::max<std::size_t>(1, cfg->max_batch);
      if (max_batch > lw) {
        max_batch -= max_batch % lw;
      }
    }
  }

  WorkSource ws(nw, ns);
  std::atomic<std::int64_t> active{0};
  std::atomic<std::uint64_t> total_rhs{0};
  std::mutex err_mutex;
  std::exception_ptr first_error;

  // Events shift a lane off the shared dt grid, which breaks the
  // fixed-step lockstep assumption (all lanes share one step count) —
  // hybrid euler/rk4 ensembles fall back to scenario-at-a-time. The
  // dopri5 lanes already run per-lane step control and handle events
  // natively.
  const bool has_events = p.events != nullptr && !p.events->functions.empty();
  const bool batched_method =
      method == Method::kDopri5 ||
      ((method == Method::kExplicitEuler || method == Method::kRk4) &&
       !has_events);

  auto worker = [&](std::size_t w) {
    try {
      if (method == Method::kDopri5) {
        Dopri5Stepper st(p, opts, w, &sink, &active, &total_rhs);
        run_batched_worker(st, ws, w, max_batch, spec);
      } else if (batched_method) {
        FixedStepper st(p, opts, method, w, &sink, &active, &total_rhs);
        run_batched_worker(st, ws, w, max_batch, spec);
      } else {
        std::uint32_t s = 0;
        while (ws.next(w, s)) {
          poll_cancel(opts.cancel, "solve_ensemble");
          occupancy_hist().observe(1.0);
          obs::record_lane(obs::StepEventKind::kLanePack,
                           to_string(method), s, base.t0);
          Stopwatch timer;
          SolverStats st;
          try {
            st = solve_single(base, method, opts, spec.initial_states[s], w,
                              sink, s);
          } catch (const Cancelled&) {
            obs::record_lane(obs::StepEventKind::kLaneCancel,
                             to_string(method), s, base.t0);
            lanes_cancelled_counter().add();
            throw;
          }
          total_rhs.fetch_add(st.rhs_calls, std::memory_order_relaxed);
          lane_step_hist().observe(
              timer.seconds() /
              static_cast<double>(std::max<std::uint64_t>(1, st.steps)));
          const bool at_event = st.events_terminal > 0;
          obs::record_lane(at_event ? obs::StepEventKind::kLaneEventStop
                                    : obs::StepEventKind::kLaneRetire,
                           to_string(method), s, base.tend);
          lanes_retired_counter().add();
          if (at_event) {
            lanes_event_stopped_counter().add();
          }
        }
      }
    } catch (...) {
      const std::lock_guard<std::mutex> lock(err_mutex);
      if (!first_error) {
        first_error = std::current_exception();
      }
    }
  };

  const auto start = std::chrono::steady_clock::now();
  if (nw == 1) {
    worker(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(nw);
    for (std::size_t w = 0; w < nw; ++w) {
      threads.emplace_back(worker, w);
    }
    for (std::thread& t : threads) {
      t.join();
    }
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  active_gauge().set(0.0);
  if (first_error) {
    std::rethrow_exception(first_error);
  }

  if (secs > 0.0) {
    rate_gauge().set(
        static_cast<double>(total_rhs.load(std::memory_order_relaxed)) /
        secs);
  }

  // Feed the cost model with what actually ran (post-clamp nw/max_batch,
  // measured makespan, total lane-RHS work). calibrate and on both
  // record; off leaves the tuner untouched.
  if (tune::mode() != tune::Mode::kOff && secs > 0.0) {
    tune::AutoTuner::global().record_ensemble(
        {p.n, ns, nw, batched_method ? max_batch : 1,
         static_cast<double>(total_rhs.load(std::memory_order_relaxed)),
         secs});
  }
}

EnsembleResult solve_ensemble(const Problem& p, Method method,
                              const SolverOptions& opts,
                              const EnsembleSpec& spec) {
  EnsembleCollectSink sink(spec.initial_states.size());
  solve_ensemble(p, method, opts, spec, sink);
  EnsembleResult res;
  res.solutions = sink.take();
  return res;
}

}  // namespace omx::ode
