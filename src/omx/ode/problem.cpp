#include "omx/ode/problem.hpp"

#include <cmath>
#include <string>

#include "omx/obs/registry.hpp"

namespace omx::ode {

void publish_solver_stats(const SolverStats& stats) {
  obs::Registry& reg = obs::Registry::global();
  static obs::Counter& solves = reg.counter("ode.solves");
  static obs::Counter& steps = reg.counter("ode.steps");
  static obs::Counter& rejected = reg.counter("ode.steps_rejected");
  static obs::Counter& rhs_calls = reg.counter("ode.rhs_calls");
  static obs::Counter& jac_evals = reg.counter("ode.jac_evals");
  static obs::Counter& newton_iters = reg.counter("ode.newton_iters");
  static obs::Counter& switches = reg.counter("ode.method_switches");
  static obs::Counter& events_fired = reg.counter("ode.events_fired");
  static obs::Counter& events_terminal = reg.counter("ode.events_terminal");
  static obs::Counter& jac_evaluations = reg.counter("jac.evaluations");
  static obs::Counter& jac_factorizations = reg.counter("jac.factorizations");
  static obs::Counter& jac_reuse_hits = reg.counter("jac.reuse_hits");
  solves.add();
  steps.add(stats.steps);
  rejected.add(stats.rejected);
  rhs_calls.add(stats.rhs_calls);
  jac_evals.add(stats.jac_calls);
  newton_iters.add(stats.newton_iters);
  switches.add(stats.method_switches);
  events_fired.add(stats.events);
  events_terminal.add(stats.events_terminal);
  jac_evaluations.add(stats.jac_calls);
  jac_factorizations.add(stats.jac_factorizations);
  jac_reuse_hits.add(stats.jac_reuse_hits);
}

void Problem::validate() const {
  if (n == 0 || !rhs) {
    throw omx::Error("ODE problem needs n > 0 and an RHS function");
  }
  if (y0.size() != n) {
    throw omx::Error("ODE problem: y0 size does not match n");
  }
  // tend == t0 is a valid zero-step solve: the initial row streams to
  // the sink and finish() fires with zero steps taken.
  if (!(tend >= t0)) {
    throw omx::Error("ODE problem: tend must not precede t0");
  }
  if (rhs_arity != 0 && rhs_arity != n) {
    throw omx::Error("ODE problem: bound kernel arity (" +
                     std::to_string(rhs_arity) +
                     ") does not match n = " + std::to_string(n));
  }
  if (batch_arity != 0 && batch_arity != n) {
    throw omx::Error("ODE problem: bound batched kernel arity (" +
                     std::to_string(batch_arity) +
                     ") does not match n = " + std::to_string(n));
  }
}

void Solution::reserve(std::size_t steps, std::size_t n) {
  n_ = n;
  times_.reserve(steps);
  data_.reserve(steps * n);
}

void Solution::append(double t, std::span<const double> y) {
  if (n_ == 0) {
    n_ = y.size();
  }
  OMX_REQUIRE(y.size() == n_, "state size mismatch");
  times_.push_back(t);
  data_.insert(data_.end(), y.begin(), y.end());
}

std::span<const double> Solution::state(std::size_t i) const {
  OMX_REQUIRE(i < times_.size(), "step index out of range");
  return {&data_[i * n_], n_};
}

std::span<const double> Solution::final_state() const {
  OMX_REQUIRE(!times_.empty(), "empty solution");
  return state(times_.size() - 1);
}

std::vector<double> Solution::at(double t) const {
  OMX_REQUIRE(!times_.empty(), "empty solution");
  if (t <= times_.front()) {
    auto s = state(0);
    return {s.begin(), s.end()};
  }
  if (t >= times_.back()) {
    auto s = final_state();
    return {s.begin(), s.end()};
  }
  // Binary search for the bracketing interval.
  std::size_t lo = 0;
  std::size_t hi = times_.size() - 1;
  while (hi - lo > 1) {
    const std::size_t mid = (lo + hi) / 2;
    if (times_[mid] <= t) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double w =
      (t - times_[lo]) / (times_[hi] - times_[lo]);
  auto a = state(lo);
  auto b = state(hi);
  std::vector<double> out(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    out[i] = (1.0 - w) * a[i] + w * b[i];
  }
  return out;
}

void error_weights(std::span<const double> y, const Tolerances& tol,
                   std::span<double> w) {
  for (std::size_t i = 0; i < y.size(); ++i) {
    w[i] = tol.atol + tol.rtol * std::fabs(y[i]);
  }
}

}  // namespace omx::ode
