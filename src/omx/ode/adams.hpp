// Adams-Bashforth-Moulton predictor-corrector (PECE), order 4, with
// adaptive step size — the non-stiff half of the LSODA-style switching
// driver (§3.2.1; Petzold 1983).
//
// Startup and every step-size change rebuild the derivative history with
// RK4 substeps. The local error estimate is the standard Milne device:
// the predictor/corrector difference scaled by the method constant.
#pragma once

#include "omx/ode/sink.hpp"

namespace omx::ode {

struct AdamsOptions {
  Tolerances tol{};
  double h0 = 0.0;  // 0 = automatic
  double hmax = 0.0;
  std::size_t max_steps = 1000000;
  std::size_t record_every = 1;
  /// Polled once per step attempt; throws Cancelled when it reads true.
  const std::atomic<bool>* cancel = nullptr;
};

/// Single-step driver used by the auto-switching solver.
class AdamsStepper {
 public:
  AdamsStepper(const Problem& p, const AdamsOptions& opts);

  /// Initializes (or re-initializes) at (t, y) with step h (0 = auto).
  void restart(double t, std::span<const double> y, double h);

  /// Attempts one step. Returns true when a step was accepted (state
  /// advanced), false when it was rejected (h reduced; call again).
  bool step();

  double t() const { return t_; }
  std::span<const double> y() const { return y_; }
  double h() const { return h_; }
  /// Consecutive rejected attempts since the last acceptance — one
  /// stiffness tell-tale used by the switching heuristic.
  std::size_t consecutive_rejects() const { return consecutive_rejects_; }

  /// Number of "growth bounces": the controller judged the error small
  /// enough to double h, but a step shortly after was rejected with an
  /// exploding estimate — circumstantial stiffness evidence.
  std::size_t growth_bounces() const { return growth_bounces_; }

  /// Directly measures sigma = h * lambda_est, where lambda_est is the
  /// Jacobian's action on the current flow direction (one extra RHS
  /// call). An explicit method that is *accuracy*-limited runs at
  /// sigma << 1; one pinned at its *stability* boundary runs at sigma of
  /// order 1 — the LSODA-style stiffness criterion.
  double stiffness_ratio();

  SolverStats& stats() { return stats_; }

 private:
  void rebuild_history();
  void rk4_step(double t, std::span<const double> y, double h,
                std::span<double> out);

  const Problem& p_;
  AdamsOptions opts_;
  double t_ = 0.0;
  double h_ = 0.0;
  std::vector<double> y_;
  // f history: f_[0] = f(t_n), f_[1] = f(t_{n-1}), ...
  std::vector<std::vector<double>> f_;
  std::size_t consecutive_rejects_ = 0;
  std::size_t steps_since_rebuild_ = 0;
  std::size_t growth_bounces_ = 0;
  bool just_grew_ = false;
  SolverStats stats_;
};

namespace detail {
/// Streaming core: accepted steps flow to `sink` under scenario id
/// `scenario`; the returned statistics are also delivered via finish().
SolverStats adams_pece(const Problem& p, const AdamsOptions& opts,
                       TrajectorySink& sink, std::uint32_t scenario = 0);
/// Compatibility wrapper: collects the stream into a Solution.
Solution adams_pece(const Problem& p, const AdamsOptions& opts);
}  // namespace detail

}  // namespace omx::ode
