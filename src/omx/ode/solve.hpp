// The single solver entry point.
//
// ode::solve(problem, method, options) is the only public way to run a
// solver (the historical per-driver free functions are gone). One
// options struct covers every method; fields a method does not use are
// ignored (dt drives only the fixed-step methods, bdf_* only the stiff
// ones, and so on).
//
// Two forms: the Solution-returning overload materializes the full
// trajectory (internally a SolutionSink), and the TrajectorySink
// overload streams accepted steps to the caller in recycled chunks
// without building a trajectory at all — see ode/sink.hpp.
#pragma once

#include "omx/ode/sink.hpp"

namespace omx::ode {

enum class Method {
  kExplicitEuler,  // fixed-step, order 1
  kRk4,            // fixed-step, order 4
  kDopri5,         // adaptive explicit RK 5(4)
  kAdamsPece,      // adaptive Adams-Bashforth-Moulton PECE, order 4
  kBdf,            // BDF + modified Newton (stiff)
  kLsodaLike,      // automatic Adams <-> BDF switching
};

constexpr const char* to_string(Method m) {
  switch (m) {
    case Method::kExplicitEuler: return "explicit_euler";
    case Method::kRk4: return "rk4";
    case Method::kDopri5: return "dopri5";
    case Method::kAdamsPece: return "adams_pece";
    case Method::kBdf: return "bdf";
    case Method::kLsodaLike: return "lsoda_like";
  }
  return "?";
}

struct SolverOptions {
  Tolerances tol{};
  /// Step size for the fixed-step methods.
  double dt = 1e-3;
  /// Initial step for the adaptive methods (0 = automatic).
  double h0 = 0.0;
  /// Step-size ceiling for the adaptive methods (0 = tend - t0).
  double hmax = 0.0;
  std::size_t max_steps = 1000000;
  /// Record every k-th accepted step (1 = all); the final state is
  /// always recorded.
  std::size_t record_every = 1;
  /// BDF order cap (kBdf ramps up to it; kLsodaLike's stiff phase too).
  int bdf_max_order = 2;
  std::size_t newton_max_iters = 8;
  /// kBdf only: fixed-step mode without error control when > 0
  /// (convergence-order studies).
  double bdf_fixed_h = 0.0;
  /// Stiff methods: color-group evaluation threads for the compressed-FD
  /// Jacobian (effective only with a bound batch_rhs; the plain RhsFn
  /// carries no thread-safety guarantee).
  int jac_threads = 1;
  /// Cooperative cancellation: when non-null, every driver polls the flag
  /// once per step attempt (and solve_ensemble once per batch round) and
  /// throws Cancelled when it reads true. The flag object must outlive
  /// the solve; the service daemon flips it on client CANCEL or
  /// disconnect to abort in-flight work.
  const std::atomic<bool>* cancel = nullptr;
};

/// Integrates `p` with the chosen method. Statistics are on the returned
/// Solution and in the global telemetry registry; for the per-switch
/// event record of kLsodaLike use ode::auto_switch directly.
Solution solve(const Problem& p, Method method,
               const SolverOptions& opts = {});

/// Streaming form: accepted steps flow to `sink` (chunked, zero-copy;
/// see ode/sink.hpp) tagged with `scenario`, and no Solution is built.
/// Returns the solver statistics, which finish() also delivered.
SolverStats solve(const Problem& p, Method method, const SolverOptions& opts,
                  TrajectorySink& sink, std::uint32_t scenario = 0);

}  // namespace omx::ode
