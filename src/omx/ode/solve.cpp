#include "omx/ode/solve.hpp"

#include <algorithm>
#include <optional>
#include <thread>

#include "omx/ode/adams.hpp"
#include "omx/ode/auto_switch.hpp"
#include "omx/ode/bdf.hpp"
#include "omx/ode/dopri5.hpp"
#include "omx/ode/fixed_step.hpp"
#include "omx/ode/jacobian.hpp"
#include "omx/support/timer.hpp"
#include "omx/tune/autotuner.hpp"

namespace omx::ode {

namespace {

/// Stiff-path tune context: resolves the factorization backend up front
/// (attaching the shared jac plan the solver would build anyway) so the
/// measured run can be recorded against the right cost curve, and in
/// `on` mode overrides jac_threads from the fitted model.
struct StiffTuneScope {
  Problem tuned;
  bool sparse = false;
  Stopwatch timer;

  StiffTuneScope(const Problem& p, int* jac_threads) : tuned(p) {
    if (!tuned.jac_plan) {
      tuned.jac_plan = make_jac_plan(tuned);
    }
    sparse = tuned.jac_plan && tuned.jac_plan->use_sparse;
    if (jac_threads != nullptr && tune::mode() == tune::Mode::kOn) {
      const int hw = static_cast<int>(
          std::max(1u, std::thread::hardware_concurrency()));
      if (const std::optional<tune::StiffConfig> cfg =
              tune::AutoTuner::global().pick_stiff(p.n, hw)) {
        *jac_threads = std::max(1, cfg->jac_threads);
      }
    }
  }

  void record(int jac_threads) {
    tune::AutoTuner::global().record_stiff(
        {tuned.n, sparse, jac_threads, timer.seconds()});
  }
};

}  // namespace

SolverStats solve(const Problem& p, Method method, const SolverOptions& o,
                  TrajectorySink& sink, std::uint32_t scenario) {
  switch (method) {
    case Method::kExplicitEuler: {
      FixedStepOptions fo{o.dt, o.record_every, o.cancel};
      return detail::explicit_euler(p, fo, sink, scenario);
    }
    case Method::kRk4: {
      FixedStepOptions fo{o.dt, o.record_every, o.cancel};
      return detail::rk4(p, fo, sink, scenario);
    }
    case Method::kDopri5: {
      Dopri5Options d;
      d.tol = o.tol;
      d.h0 = o.h0;
      d.hmax = o.hmax;
      d.max_steps = o.max_steps;
      d.record_every = o.record_every;
      d.cancel = o.cancel;
      return detail::dopri5(p, d, sink, scenario);
    }
    case Method::kAdamsPece: {
      AdamsOptions a;
      a.tol = o.tol;
      a.h0 = o.h0;
      a.hmax = o.hmax;
      a.max_steps = o.max_steps;
      a.record_every = o.record_every;
      a.cancel = o.cancel;
      return detail::adams_pece(p, a, sink, scenario);
    }
    case Method::kBdf: {
      BdfOptions b;
      b.tol = o.tol;
      b.max_order = o.bdf_max_order;
      b.h0 = o.h0;
      b.hmax = o.hmax;
      b.max_steps = o.max_steps;
      b.newton_max_iters = o.newton_max_iters;
      b.record_every = o.record_every;
      b.fixed_h = o.bdf_fixed_h;
      b.jac_threads = o.jac_threads;
      b.cancel = o.cancel;
      if (tune::mode() == tune::Mode::kOff) {
        return detail::bdf(p, b, sink, scenario);
      }
      StiffTuneScope scope(p, &b.jac_threads);
      const SolverStats st = detail::bdf(scope.tuned, b, sink, scenario);
      scope.record(b.jac_threads);
      return st;
    }
    case Method::kLsodaLike: {
      AutoSwitchOptions s;
      s.tol = o.tol;
      s.bdf_max_order = o.bdf_max_order;
      s.max_steps = o.max_steps;
      s.record_every = o.record_every;
      s.cancel = o.cancel;
      if (tune::mode() == tune::Mode::kOff) {
        return auto_switch(p, s, sink, scenario).stats;
      }
      // The auto-switch stiff phase builds its Jacobians single-threaded,
      // so only the backend choice is tunable here; record against T=1.
      StiffTuneScope scope(p, nullptr);
      const SolverStats st =
          auto_switch(scope.tuned, s, sink, scenario).stats;
      scope.record(1);
      return st;
    }
  }
  throw omx::Bug("unknown ode::Method");
}

Solution solve(const Problem& p, Method method, const SolverOptions& o) {
  SolutionSink sink;
  solve(p, method, o, sink);
  return sink.take();
}

}  // namespace omx::ode
