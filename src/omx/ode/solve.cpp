#include "omx/ode/solve.hpp"

#include "omx/ode/adams.hpp"
#include "omx/ode/auto_switch.hpp"
#include "omx/ode/bdf.hpp"
#include "omx/ode/dopri5.hpp"
#include "omx/ode/fixed_step.hpp"

namespace omx::ode {

SolverStats solve(const Problem& p, Method method, const SolverOptions& o,
                  TrajectorySink& sink, std::uint32_t scenario) {
  switch (method) {
    case Method::kExplicitEuler: {
      FixedStepOptions fo{o.dt, o.record_every, o.cancel};
      return detail::explicit_euler(p, fo, sink, scenario);
    }
    case Method::kRk4: {
      FixedStepOptions fo{o.dt, o.record_every, o.cancel};
      return detail::rk4(p, fo, sink, scenario);
    }
    case Method::kDopri5: {
      Dopri5Options d;
      d.tol = o.tol;
      d.h0 = o.h0;
      d.hmax = o.hmax;
      d.max_steps = o.max_steps;
      d.record_every = o.record_every;
      d.cancel = o.cancel;
      return detail::dopri5(p, d, sink, scenario);
    }
    case Method::kAdamsPece: {
      AdamsOptions a;
      a.tol = o.tol;
      a.h0 = o.h0;
      a.hmax = o.hmax;
      a.max_steps = o.max_steps;
      a.record_every = o.record_every;
      a.cancel = o.cancel;
      return detail::adams_pece(p, a, sink, scenario);
    }
    case Method::kBdf: {
      BdfOptions b;
      b.tol = o.tol;
      b.max_order = o.bdf_max_order;
      b.h0 = o.h0;
      b.hmax = o.hmax;
      b.max_steps = o.max_steps;
      b.newton_max_iters = o.newton_max_iters;
      b.record_every = o.record_every;
      b.fixed_h = o.bdf_fixed_h;
      b.jac_threads = o.jac_threads;
      b.cancel = o.cancel;
      return detail::bdf(p, b, sink, scenario);
    }
    case Method::kLsodaLike: {
      AutoSwitchOptions s;
      s.tol = o.tol;
      s.bdf_max_order = o.bdf_max_order;
      s.max_steps = o.max_steps;
      s.record_every = o.record_every;
      s.cancel = o.cancel;
      return auto_switch(p, s, sink, scenario).stats;
    }
  }
  throw omx::Bug("unknown ode::Method");
}

Solution solve(const Problem& p, Method method, const SolverOptions& o) {
  SolutionSink sink;
  solve(p, method, o, sink);
  return sink.take();
}

}  // namespace omx::ode
