#include "omx/ode/events.hpp"

#include <limits>

namespace omx::ode {

namespace {

// DOPRI5 continuous-extension weights (Hairer/Norsett/Wanner II.5): the
// quartic term's stage combination h * sum(d_i k_i).
constexpr double d1 = -12715105075.0 / 11282082432.0;
constexpr double d3 = 87487479700.0 / 32700410799.0;
constexpr double d4 = -10690763975.0 / 1880347072.0;
constexpr double d5 = 701980252875.0 / 199316789632.0;
constexpr double d6 = -1453857185.0 / 822651844.0;
constexpr double d7 = 69997945.0 / 29380423.0;

}  // namespace

DenseOutput DenseOutput::dopri5(double t0, double h,
                                std::span<const double> y0,
                                std::span<const double> y1,
                                std::span<const double> k1,
                                std::span<const double> k3,
                                std::span<const double> k4,
                                std::span<const double> k5,
                                std::span<const double> k6,
                                std::span<const double> k7) {
  DenseOutput d;
  d.kind_ = Kind::kContinuous;
  d.t0_ = t0;
  d.t1_ = t0 + h;
  d.h_ = h;
  const std::size_t n = y0.size();
  d.rcont1_.resize(n);
  d.rcont2_.resize(n);
  d.rcont3_.resize(n);
  d.rcont4_.resize(n);
  d.rcont5_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double dy = y1[i] - y0[i];
    const double bspl = h * k1[i] - dy;
    d.rcont1_[i] = y0[i];
    d.rcont2_[i] = dy;
    d.rcont3_[i] = bspl;
    d.rcont4_[i] = dy - h * k7[i] - bspl;
    d.rcont5_[i] = h * (d1 * k1[i] + d3 * k3[i] + d4 * k4[i] + d5 * k5[i] +
                        d6 * k6[i] + d7 * k7[i]);
  }
  return d;
}

DenseOutput DenseOutput::hermite(double t0, std::span<const double> y0,
                                 std::span<const double> f0, double t1,
                                 std::span<const double> y1,
                                 std::span<const double> f1) {
  DenseOutput d;
  d.kind_ = Kind::kContinuous;
  d.t0_ = t0;
  d.t1_ = t1;
  d.h_ = t1 - t0;
  const std::size_t n = y0.size();
  d.rcont1_.resize(n);
  d.rcont2_.resize(n);
  d.rcont3_.resize(n);
  d.rcont4_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double dy = y1[i] - y0[i];
    const double bspl = d.h_ * f0[i] - dy;
    d.rcont1_[i] = y0[i];
    d.rcont2_[i] = dy;
    d.rcont3_[i] = bspl;
    d.rcont4_[i] = dy - d.h_ * f1[i] - bspl;
  }
  return d;
}

DenseOutput DenseOutput::lagrange(
    double t_new, double node_h,
    const std::vector<std::vector<double>>& history, std::size_t points) {
  OMX_REQUIRE(points >= 2 && points <= history.size(),
              "DenseOutput::lagrange needs 2..|history| nodes");
  OMX_REQUIRE(node_h > 0.0, "DenseOutput::lagrange needs node_h > 0");
  DenseOutput d;
  d.kind_ = Kind::kLagrange;
  d.t1_ = t_new;
  d.t0_ = t_new - node_h;  // the covered step; older nodes extend beyond
  d.h_ = node_h;
  d.nodes_.assign(history.begin(),
                  history.begin() + static_cast<std::ptrdiff_t>(points));
  return d;
}

void DenseOutput::eval(double t, std::span<double> out) const {
  if (kind_ == Kind::kContinuous) {
    const double theta = (t - t0_) / h_;
    const double theta1 = 1.0 - theta;
    const std::size_t n = rcont1_.size();
    if (rcont5_.empty()) {
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = rcont1_[i] +
                 theta * (rcont2_[i] +
                          theta1 * (rcont3_[i] + theta * rcont4_[i]));
      }
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        out[i] =
            rcont1_[i] +
            theta * (rcont2_[i] +
                     theta1 * (rcont3_[i] +
                               theta * (rcont4_[i] + theta1 * rcont5_[i])));
      }
    }
    return;
  }
  // Lagrange over uniform nodes x_j = -j (newest first), evaluated at
  // x = (t - t1) / h, i.e. the last step is x in [-1, 0].
  const double x = (t - t1_) / h_;
  const std::size_t m = nodes_.size();
  const std::size_t n = nodes_.front().size();
  std::fill(out.begin(), out.end(), 0.0);
  for (std::size_t j = 0; j < m; ++j) {
    double lj = 1.0;
    const double xj = -static_cast<double>(j);
    for (std::size_t k = 0; k < m; ++k) {
      if (k == j) {
        continue;
      }
      const double xk = -static_cast<double>(k);
      lj *= (x - xk) / (xj - xk);
    }
    const std::vector<double>& node = nodes_[j];
    for (std::size_t i = 0; i < n; ++i) {
      out[i] += lj * node[i];
    }
  }
}

EventHandler::EventHandler(std::shared_ptr<const EventSpec> spec,
                           std::size_t n)
    : spec_(std::move(spec)), n_(n) {
  if (spec_ != nullptr && !spec_->functions.empty()) {
    const std::size_t m = spec_->functions.size();
    g_prev_.resize(m);
    g_new_.resize(m);
    crossed_.resize(m);
    y_pre_.resize(n_);
    y_post_.resize(n_);
    y_mid_.resize(n_);
  }
}

void EventHandler::prime(double t, std::span<const double> y) {
  if (!armed()) {
    return;
  }
  for (std::size_t k = 0; k < spec_->functions.size(); ++k) {
    g_prev_[k] = spec_->functions[k].guard(t, y);
  }
}

namespace {

/// Directional crossing test from a committed sign g_prev to a candidate
/// value g. A cached zero (the post-reset resting value) never re-fires:
/// the sign has to leave zero at some later committed point first.
bool crosses(double g_prev, double g, EventDirection dir) {
  const bool rising = g_prev < 0.0 && g >= 0.0;
  const bool falling = g_prev > 0.0 && g <= 0.0;
  switch (dir) {
    case EventDirection::kRising: return rising;
    case EventDirection::kFalling: return falling;
    case EventDirection::kBoth: return rising || falling;
  }
  return false;
}

}  // namespace

bool EventHandler::detect(double t_new, std::span<const double> y_new) {
  bool any = false;
  for (std::size_t k = 0; k < spec_->functions.size(); ++k) {
    const EventFunction& f = spec_->functions[k];
    g_new_[k] = f.guard(t_new, y_new);
    crossed_[k] = crosses(g_prev_[k], g_new_[k], f.direction) ? 1 : 0;
    any = any || crossed_[k] != 0;
  }
  if (!any) {
    // Commit: the new point becomes the reference for the next step.
    std::swap(g_prev_, g_new_);
  }
  return any;
}

EventHandler::Hit EventHandler::localize(double t_prev, double t_new,
                                         std::span<const double> y_new,
                                         const DenseOutput& dense,
                                         const char* method,
                                         SolverStats& stats) {
  const double tol_t =
      spec_->time_tol * std::max(1.0, std::fabs(t_new));

  Hit hit;
  hit.t = std::numeric_limits<double>::infinity();
  for (std::size_t k = 0; k < spec_->functions.size(); ++k) {
    if (crossed_[k] == 0) {
      continue;
    }
    const EventFunction& f = spec_->functions[k];
    // Bisection: keep [lo, hi] bracketing the first crossing, testing
    // each midpoint against the committed pre-step sign (so a guard that
    // wiggles inside the step localizes its FIRST crossing).
    double lo = t_prev;
    double hi = t_new;
    double g_lo = g_prev_[k];
    for (std::size_t it = 0;
         it < spec_->max_bisections && hi - lo > tol_t; ++it) {
      const double mid = 0.5 * (lo + hi);
      dense.eval(mid, y_mid_);
      const double g_mid = f.guard(mid, y_mid_);
      if (crosses(g_lo, g_mid, f.direction)) {
        hi = mid;
      } else {
        lo = mid;
        g_lo = g_mid;
      }
    }
    // hi is the first point at/after the crossing in the filtered
    // direction, so the committed post-event sign satisfies it.
    if (hi < hit.t) {
      hit.fired = true;
      hit.t = hi;
      hit.index = k;
    }
  }
  if (!hit.fired) {
    // Every flagged crossing failed to bracket (can only happen through
    // pathological guard wiggle below the interpolant's resolution);
    // commit the new point and move on.
    std::swap(g_prev_, g_new_);
    return {};
  }

  const EventFunction& f = spec_->functions[hit.index];
  hit.terminal = f.terminal;
  if (hit.t >= t_new) {
    hit.t = t_new;
    std::copy(y_new.begin(), y_new.end(), y_pre_.begin());
  } else {
    dense.eval(hit.t, y_pre_);
  }
  y_post_ = y_pre_;
  if (f.reset) {
    f.reset(hit.t, y_post_);
  }
  prime(hit.t, y_post_);

  ++fired_;
  ++stats.events;
  if (hit.terminal) {
    ++stats.events_terminal;
  }
  if (fired_ > spec_->max_events) {
    throw omx::Error(std::string(method) +
                     ": event storm (Zeno) — more than " +
                     std::to_string(spec_->max_events) +
                     " events in one solve, last at t = " +
                     std::to_string(hit.t));
  }
  obs::record_step(obs::StepEventKind::kEvent, method,
                   static_cast<std::uint16_t>(hit.index), hit.t,
                   t_new - t_prev, g_new_[hit.index]);
  return hit;
}

}  // namespace omx::ode
