#include "omx/ode/dopri5.hpp"

#include <algorithm>
#include <cmath>

#include "omx/obs/recorder.hpp"
#include "omx/obs/trace.hpp"
#include "omx/ode/events.hpp"

namespace omx::ode {

namespace {

// Dormand & Prince RK5(4)7M coefficients.
constexpr double c2 = 1.0 / 5, c3 = 3.0 / 10, c4 = 4.0 / 5, c5 = 8.0 / 9;
constexpr double a21 = 1.0 / 5;
constexpr double a31 = 3.0 / 40, a32 = 9.0 / 40;
constexpr double a41 = 44.0 / 45, a42 = -56.0 / 15, a43 = 32.0 / 9;
constexpr double a51 = 19372.0 / 6561, a52 = -25360.0 / 2187,
                 a53 = 64448.0 / 6561, a54 = -212.0 / 729;
constexpr double a61 = 9017.0 / 3168, a62 = -355.0 / 33,
                 a63 = 46732.0 / 5247, a64 = 49.0 / 176,
                 a65 = -5103.0 / 18656;
constexpr double a71 = 35.0 / 384, a73 = 500.0 / 1113, a74 = 125.0 / 192,
                 a75 = -2187.0 / 6784, a76 = 11.0 / 84;
// Error coefficients: b5 - b4.
constexpr double e1 = 71.0 / 57600, e3 = -71.0 / 16695, e4 = 71.0 / 1920,
                 e5 = -17253.0 / 339200, e6 = 22.0 / 525, e7 = -1.0 / 40;

}  // namespace

namespace detail {

SolverStats dopri5(const Problem& p, const Dopri5Options& opts,
                   TrajectorySink& sink, std::uint32_t scenario) {
  p.validate();
  obs::Span solve_span("dopri5", "ode");
  const std::size_t n = p.n;
  TrajectoryWriter rec(sink, scenario, n);
  SolverStats stats;

  std::vector<double> y = p.y0;
  std::vector<double> k1(n), k2(n), k3(n), k4(n), k5(n), k6(n), k7(n);
  std::vector<double> ytmp(n), yerr(n), w(n);

  double t = p.t0;
  const double hmax = opts.hmax > 0.0 ? opts.hmax : (p.tend - p.t0);
  rec.append(t, y);

  p.rhs(t, y, k1);
  ++stats.rhs_calls;

  // Automatic initial step (Hairer's d0/d1 heuristic): h ~ 1% of the
  // solution's characteristic time scale ||y||_w / ||y'||_w.
  double h = opts.h0;
  if (h <= 0.0) {
    error_weights(y, opts.tol, w);
    const double d0 = la::wrms_norm(y, w);
    const double d1 = la::wrms_norm(k1, w);
    h = (d0 > 1e-5 && d1 > 1e-5) ? 0.01 * d0 / d1
                                 : 1e-3 * (p.tend - p.t0);
    h = std::min(h, hmax);
  }

  double err_prev = 1.0;  // PI controller memory
  std::size_t recorded = 0;
  EventHandler events(p.events, n);
  if (events.armed()) {
    events.prime(t, y);
  }
  bool terminated = false;

  for (std::size_t step = 0; step < opts.max_steps && t < p.tend; ++step) {
    poll_cancel(opts.cancel, "dopri5");
    h = std::min(h, p.tend - t);

    auto stage = [&](std::span<double> k, double ci,
                     std::initializer_list<std::pair<const double*, double>>
                         terms) {
      for (std::size_t i = 0; i < n; ++i) {
        double acc = y[i];
        for (const auto& [vec, coef] : terms) {
          acc += h * coef * vec[i];
        }
        ytmp[i] = acc;
      }
      p.rhs(t + ci * h, ytmp, k);
      ++stats.rhs_calls;
    };

    stage(k2, c2, {{k1.data(), a21}});
    stage(k3, c3, {{k1.data(), a31}, {k2.data(), a32}});
    stage(k4, c4, {{k1.data(), a41}, {k2.data(), a42}, {k3.data(), a43}});
    stage(k5, c5,
          {{k1.data(), a51}, {k2.data(), a52}, {k3.data(), a53},
           {k4.data(), a54}});
    stage(k6, 1.0,
          {{k1.data(), a61}, {k2.data(), a62}, {k3.data(), a63},
           {k4.data(), a64}, {k5.data(), a65}});
    // 5th-order solution (FSAL: k7 = f at the new point).
    for (std::size_t i = 0; i < n; ++i) {
      ytmp[i] = y[i] + h * (a71 * k1[i] + a73 * k3[i] + a74 * k4[i] +
                            a75 * k5[i] + a76 * k6[i]);
    }
    p.rhs(t + h, ytmp, k7);
    ++stats.rhs_calls;

    for (std::size_t i = 0; i < n; ++i) {
      yerr[i] = h * (e1 * k1[i] + e3 * k3[i] + e4 * k4[i] + e5 * k5[i] +
                     e6 * k6[i] + e7 * k7[i]);
    }
    error_weights(ytmp, opts.tol, w);
    const double err = la::wrms_norm(yerr, w);
    if (!std::isfinite(err)) {
      // A NaN/Inf from the RHS fails every accept test, so without this
      // check the controller would shrink h to underflow and report a
      // misleading "step size underflow"; fail with the real cause.
      throw omx::Error("dopri5: non-finite state or RHS at t = " +
                       std::to_string(t));
    }

    if (err <= 1.0) {
      obs::record_step(obs::StepEventKind::kStepAccepted, "dopri5", 5, t,
                       h, err);
      EventHandler::Hit hit;
      if (events.armed()) {
        hit = events.check(t, t + h, ytmp, "dopri5", stats, [&] {
          return DenseOutput::dopri5(t, h, y, ytmp, k1, k3, k4, k5, k6, k7);
        });
      }
      if (hit.fired) {
        // The accepted step is truncated at the localized event time:
        // commit the interpolated pre-event state, apply the reset, and
        // restart with a fresh FSAL derivative and a conservative step.
        t = hit.t;
        ++stats.steps;
        ++recorded;
        rec.append(t, events.pre_state());
        std::copy(events.post_state().begin(), events.post_state().end(),
                  y.begin());
        rec.append(t, y);
        if (hit.terminal) {
          terminated = true;
          break;
        }
        p.rhs(t, y, k1);
        ++stats.rhs_calls;
        h = event_restart_step(y, k1, opts.tol, p.tend - p.t0, hmax, w);
        err_prev = 1.0;
        continue;
      }
      t += h;
      y = ytmp;
      k1 = k7;  // FSAL
      ++stats.steps;
      ++recorded;
      if (recorded % opts.record_every == 0 || t >= p.tend) {
        rec.append(t, y);
      }
      // PI controller (Gustafsson).
      const double err_clamped = std::max(err, 1e-10);
      double fac = 0.9 * std::pow(err_clamped, -0.7 / 5.0) *
                   std::pow(err_prev, 0.4 / 5.0);
      fac = std::clamp(fac, 0.2, 5.0);
      h = std::min(h * fac, hmax);
      err_prev = err_clamped;
    } else {
      ++stats.rejected;
      obs::record_step(obs::StepEventKind::kStepRejected, "dopri5", 5, t,
                       h, err);
      const double fac =
          std::max(0.2, 0.9 * std::pow(err, -1.0 / 5.0));
      h *= fac;
      if (h < 1e-14 * std::max(1.0, std::fabs(t))) {
        throw omx::Error("dopri5: step size underflow at t = " +
                         std::to_string(t));
      }
    }
  }
  if (!terminated && t < p.tend) {
    throw omx::Error("dopri5: max_steps exceeded before reaching tend");
  }
  publish_solver_stats(stats);
  rec.finish(stats);
  return stats;
}

Solution dopri5(const Problem& p, const Dopri5Options& opts) {
  SolutionSink sink;
  dopri5(p, opts, sink);
  return sink.take();
}

}  // namespace detail

}  // namespace omx::ode
