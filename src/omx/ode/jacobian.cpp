#include "omx/ode/jacobian.hpp"

#include <cmath>

namespace omx::ode {

void finite_difference_jacobian(const RhsFn& rhs, double t,
                                std::span<const double> y, la::Matrix& jac,
                                std::uint64_t& rhs_calls) {
  const std::size_t n = y.size();
  OMX_REQUIRE(jac.rows() == n && jac.cols() == n, "jacobian shape mismatch");

  std::vector<double> f0(n), f1(n), yp(y.begin(), y.end());
  rhs(t, y, f0);
  ++rhs_calls;

  const double sqrt_eps = std::sqrt(2.220446049250313e-16);
  for (std::size_t j = 0; j < n; ++j) {
    const double dj = sqrt_eps * std::max(std::fabs(y[j]), 1.0);
    const double saved = yp[j];
    yp[j] = saved + dj;
    rhs(t, yp, f1);
    ++rhs_calls;
    yp[j] = saved;
    const double inv = 1.0 / dj;
    for (std::size_t i = 0; i < n; ++i) {
      jac(i, j) = (f1[i] - f0[i]) * inv;
    }
  }
}

}  // namespace omx::ode
