#include "omx/ode/jacobian.hpp"

#include <cstdlib>
#include <optional>
#include <string_view>
#include <thread>
#include <vector>

#include "omx/obs/recorder.hpp"
#include "omx/obs/registry.hpp"
#include "omx/support/config.hpp"
#include "omx/support/simd.hpp"
#include "omx/support/timer.hpp"
#include "omx/tune/autotuner.hpp"

namespace omx::ode {

namespace {

bool env_flag(const char* name) {
  return config::get_bool(name, false);
}

}  // namespace

void finite_difference_jacobian(const RhsFn& rhs, double t,
                                std::span<const double> y, la::Matrix& jac,
                                std::uint64_t& rhs_calls) {
  const std::size_t n = y.size();
  OMX_REQUIRE(jac.rows() == n && jac.cols() == n, "jacobian shape mismatch");

  std::vector<double> f0(n), f1(n), yp(y.begin(), y.end());
  rhs(t, y, f0);
  ++rhs_calls;

  for (std::size_t j = 0; j < n; ++j) {
    const double dj = fd_increment(y[j]);
    const double saved = yp[j];
    yp[j] = saved + dj;
    rhs(t, yp, f1);
    ++rhs_calls;
    yp[j] = saved;
    const double inv = 1.0 / dj;
    for (std::size_t i = 0; i < n; ++i) {
      jac(i, j) = (f1[i] - f0[i]) * inv;
    }
  }
}

std::shared_ptr<const JacPlan> make_jac_plan(const Problem& p) {
  if (!p.sparsity) {
    return nullptr;
  }
  OMX_REQUIRE(p.sparsity->rows == p.n && p.sparsity->cols == p.n,
              "sparsity pattern shape does not match problem size");
  auto plan = std::make_shared<JacPlan>();
  plan->pattern =
      std::make_shared<la::SparsityPattern>(p.sparsity->with_diagonal());
  plan->coloring = la::color_columns(*plan->pattern);
  plan->cols = la::columns(*plan->pattern);

  // Backend selection: sparse pays off once the pattern is actually
  // sparse and the system large enough that O(n^3) dense factorization
  // dominates. OMX_SPARSE_DISABLE is the escape hatch (keeps the colored
  // FD compression, forces dense LU); OMX_SPARSE_FORCE overrides the
  // heuristic the other way (benches use it to measure both backends).
  const double fill = plan->pattern->fill_ratio();
  plan->use_sparse = p.n >= 8 && fill <= 0.25;
  // With OMX_TUNE=on a fitted cost model that has measured BOTH backends
  // for this problem size overrides the static fill-ratio heuristic; the
  // explicit env overrides below still win over the model.
  if (tune::mode() == tune::Mode::kOn) {
    if (const std::optional<bool> verdict =
            tune::AutoTuner::global().stiff_backend(p.n)) {
      plan->use_sparse = *verdict;
    }
  }
  if (env_flag("OMX_SPARSE_FORCE")) {
    plan->use_sparse = true;
  }
  if (env_flag("OMX_SPARSE_DISABLE")) {
    plan->use_sparse = false;
  }
  if (config::get_string("OMX_SPARSE_ORDERING", "natural") == "rcm") {
    plan->ordering = la::SparseLu::Ordering::kRcm;
  }

  obs::Registry& reg = obs::Registry::global();
  static obs::Gauge& colors = reg.gauge("jac.colors");
  static obs::Gauge& nnz = reg.gauge("jac.nnz");
  colors.set(static_cast<double>(plan->coloring.num_colors));
  nnz.set(static_cast<double>(plan->pattern->nnz()));
  return plan;
}

void colored_fd_jacobian(const Problem& p, const JacPlan& plan, double t,
                         std::span<const double> y, la::CsrMatrix& jac,
                         std::uint64_t& rhs_calls, int threads) {
  const std::size_t n = p.n;
  OMX_REQUIRE(jac.rows() == n && jac.cols() == n, "jacobian shape mismatch");
  OMX_REQUIRE(jac.values().size() == plan.pattern->nnz(),
              "jacobian values do not match the plan pattern");

  std::vector<double> f0(n);
  p.rhs(t, y, f0);
  ++rhs_calls;

  const auto& groups = plan.coloring.groups;
  std::span<double> values = jac.values();

  // One color group: perturb all its columns at once, evaluate, scatter
  // each column's compressed differences through the CSC view. Every
  // equation depends on at most one perturbed column (that is what the
  // distance-2 coloring guarantees), so each difference is bitwise what
  // a one-column evaluation would have produced.
  auto process_group = [&](const std::vector<std::size_t>& group,
                           std::vector<double>& yp, std::vector<double>& f1,
                           auto&& eval) {
    for (std::size_t j : group) {
      yp[j] = y[j] + fd_increment(y[j]);
    }
    eval(yp, f1);
    for (std::size_t j : group) {
      const double inv = 1.0 / fd_increment(y[j]);
      for (std::size_t k = plan.cols.col_ptr[j]; k < plan.cols.col_ptr[j + 1];
           ++k) {
        const std::size_t r = plan.cols.row_idx[k];
        values[plan.cols.csr_pos[k]] = (f1[r] - f0[r]) * inv;
      }
      yp[j] = y[j];
    }
  };

  std::size_t nt = 1;
  if (threads > 1 && p.batch_rhs && groups.size() > 1) {
    nt = std::min<std::size_t>(static_cast<std::size_t>(threads),
                               groups.size());
    if (p.batch_lanes > 0) {
      nt = std::min(nt, p.batch_lanes);
    }
  }

  if (nt <= 1) {
    if (p.batch_rhs && groups.size() > 1) {
      // One batched call, one lane per color group: lane g carries the
      // base state with group g's columns perturbed. Lane independence
      // (problem.hpp) makes each lane bitwise equal to the scalar
      // evaluation the loop below would have done, while the kernel
      // vectorizes across the groups. rhs_calls counts lanes so the
      // colors+1 evaluation ceiling stays comparable.
      const std::size_t ng = groups.size();
      simd::aligned_vector<double> ts(ng, t);
      simd::aligned_vector<double> y_soa(n * ng), f_soa(n * ng);
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t g = 0; g < ng; ++g) {
          y_soa[i * ng + g] = y[i];
        }
      }
      for (std::size_t g = 0; g < ng; ++g) {
        for (std::size_t j : groups[g]) {
          y_soa[j * ng + g] = y[j] + fd_increment(y[j]);
        }
      }
      p.batch_rhs(0, ng, ts.data(), y_soa.data(), f_soa.data());
      rhs_calls += ng;
      for (std::size_t g = 0; g < ng; ++g) {
        for (std::size_t j : groups[g]) {
          const double inv = 1.0 / fd_increment(y[j]);
          for (std::size_t k = plan.cols.col_ptr[j];
               k < plan.cols.col_ptr[j + 1]; ++k) {
            const std::size_t r = plan.cols.row_idx[k];
            values[plan.cols.csr_pos[k]] =
                (f_soa[r * ng + g] - f0[r]) * inv;
          }
        }
      }
      return;
    }
    std::vector<double> yp(y.begin(), y.end()), f1(n);
    for (const auto& group : groups) {
      process_group(group, yp, f1,
                    [&](const std::vector<double>& state,
                        std::vector<double>& out) { p.rhs(t, state, out); });
      ++rhs_calls;
    }
    return;
  }

  // Parallel color groups on distinct batched-kernel lanes. The lane
  // contract (problem.hpp) makes concurrent calls on distinct lanes safe
  // and each width-1 result bitwise equal to the scalar rhs; scattered
  // CSR slots are disjoint across groups, so no synchronization is
  // needed beyond the joins.
  std::vector<std::uint64_t> calls(nt, 0);
  auto run = [&](std::size_t lane) {
    std::vector<double> yp(y.begin(), y.end()), f1(n);
    for (std::size_t g = lane; g < groups.size(); g += nt) {
      process_group(groups[g], yp, f1,
                    [&](const std::vector<double>& state,
                        std::vector<double>& out) {
                      p.batch_rhs(lane, 1, &t, state.data(), out.data());
                    });
      ++calls[lane];
    }
  };
  std::vector<std::thread> workers;
  workers.reserve(nt - 1);
  for (std::size_t w = 1; w < nt; ++w) {
    workers.emplace_back(run, w);
  }
  run(0);
  for (std::thread& w : workers) {
    w.join();
  }
  for (std::uint64_t c : calls) {
    rhs_calls += c;
  }
}

JacobianEngine::JacobianEngine(const Problem& p, const Config& cfg)
    : p_(p), cfg_(cfg) {
  plan_ = p.jac_plan ? p.jac_plan : make_jac_plan(p);
  if (plan_) {
    jac_csr_ = la::CsrMatrix(plan_->pattern);
    if (plan_->use_sparse) {
      m_csr_ = la::CsrMatrix(plan_->pattern);
    }
  }
  if (!plan_ || !plan_->use_sparse) {
    jac_dense_ = la::Matrix(p.n, p.n);
  }
}

void JacobianEngine::eval_jacobian(double t, std::span<const double> y,
                                   SolverStats& stats) {
  if (!plan_) {
    // Legacy dense path: analytic JacFn or n+1-call forward differences.
    obs::Span span(p_.jacobian ? "jacobian" : "jacobian_fd", "ode");
    if (p_.jacobian) {
      p_.jacobian(t, y, jac_dense_);
    } else {
      finite_difference_jacobian(p_.rhs, t, y, jac_dense_, stats.rhs_calls);
    }
    ++stats.jac_calls;
    return;
  }

  const la::SparsityPattern& pat = *plan_->pattern;
  if (p_.sparse_jacobian) {
    obs::Span span("jacobian_sparse", "ode");
    p_.sparse_jacobian(t, y, jac_csr_);
  } else if (p_.jacobian) {
    obs::Span span("jacobian", "ode");
    if (!plan_->use_sparse) {
      p_.jacobian(t, y, jac_dense_);
      ++stats.jac_calls;
      return;
    }
    // Sparse backend with a dense analytic JacFn: evaluate dense once
    // and gather the pattern entries (the pattern is structural, so it
    // covers every possible nonzero).
    la::Matrix dense(p_.n, p_.n);
    p_.jacobian(t, y, dense);
    for (std::size_t r = 0; r < pat.rows; ++r) {
      for (std::size_t k = pat.row_ptr[r]; k < pat.row_ptr[r + 1]; ++k) {
        jac_csr_.values()[k] = dense(r, pat.col_idx[k]);
      }
    }
    ++stats.jac_calls;
    return;
  } else {
    obs::Span span("jacobian_fd_colored", "ode");
    colored_fd_jacobian(p_, *plan_, t, y, jac_csr_, stats.rhs_calls,
                        cfg_.jac_threads);
  }
  if (!plan_->use_sparse) {
    // Dense backend over a known pattern: same colored/symbolic values,
    // scattered into the dense mirror (off-pattern entries stay the
    // exact zeros construction gave them).
    for (std::size_t r = 0; r < pat.rows; ++r) {
      for (std::size_t k = pat.row_ptr[r]; k < pat.row_ptr[r + 1]; ++k) {
        jac_dense_(r, pat.col_idx[k]) = jac_csr_.values()[k];
      }
    }
  }
  ++stats.jac_calls;
}

void JacobianEngine::factorize(double beta_h) {
  if (plan_ && plan_->use_sparse) {
    const la::SparsityPattern& pat = *plan_->pattern;
    std::span<const double> jv = jac_csr_.values();
    std::span<double> mv = m_csr_.values();
    for (std::size_t r = 0; r < pat.rows; ++r) {
      for (std::size_t k = pat.row_ptr[r]; k < pat.row_ptr[r + 1]; ++k) {
        mv[k] = (pat.col_idx[k] == r ? 1.0 : 0.0) - beta_h * jv[k];
      }
    }
    solver_ = std::make_unique<la::SparseLu>(m_csr_, plan_->ordering);
  } else {
    la::Matrix m(p_.n, p_.n);
    for (std::size_t i = 0; i < p_.n; ++i) {
      for (std::size_t j = 0; j < p_.n; ++j) {
        m(i, j) = (i == j ? 1.0 : 0.0) - beta_h * jac_dense_(i, j);
      }
    }
    solver_ = std::make_unique<la::LuFactors>(std::move(m));
  }
  factored_beta_h_ = beta_h;
}

la::LinearSolver& JacobianEngine::prepare(double t,
                                          std::span<const double> y,
                                          double beta_h,
                                          SolverStats& stats) {
  const bool need_jac =
      !have_jac_ || refresh_requested_ || age_ >= cfg_.max_age;
  const bool need_factor =
      need_jac || !solver_ || factored_beta_h_ != beta_h;
  if (need_jac) {
    static obs::Histogram& build_hist = obs::Registry::global().histogram(
        "jac.build_seconds", obs::log_spaced_bounds(1e-6, 1.0));
    Stopwatch timer;
    eval_jacobian(t, y, stats);
    const double secs = timer.seconds();
    build_hist.observe(secs);
    obs::record_jac(obs::StepEventKind::kJacEvaluate, "bdf", t, beta_h,
                    secs);
    have_jac_ = true;
    age_ = 0;
    refresh_requested_ = false;
  } else if (need_factor) {
    ++stats.jac_reuse_hits;  // beta*h changed; Jacobian still fresh
    obs::record_jac(obs::StepEventKind::kJacReuse, "bdf", t, beta_h);
  }
  if (need_factor) {
    factorize(beta_h);
    ++stats.jac_factorizations;
    obs::record_jac(obs::StepEventKind::kJacFactorize, "bdf", t, beta_h);
  }
  return *solver_;
}

void JacobianEngine::invalidate() {
  solver_.reset();
  have_jac_ = false;
  refresh_requested_ = false;
  age_ = 0;
}

void JacobianEngine::on_step_accepted(std::size_t newton_iters) {
  ++age_;
  if (newton_iters >= cfg_.slow_iters) {
    refresh_requested_ = true;  // convergence-rate degradation
  }
}

}  // namespace omx::ode
