// Wire protocol of the simulation service (omxd).
//
// Every message is one length-prefixed frame:
//
//   u32le  length     bytes that follow (type byte + payload)
//   u8     type       MsgType
//   u32le  json_len   control payload length
//   ...    json       UTF-8 JSON control payload (may be empty)
//   ...    binary     raw f64 payload, length = length - 5 - json_len
//
// The JSON half carries the control surface (model ids, job ids, solver
// options, errors); the binary half carries bulk numerics — scenario
// initial states on SUBMIT, trajectory rows on FRAME — as little-endian
// IEEE doubles, so trajectory data crosses the socket without a text
// round-trip. A zero `length`, a `length` above the negotiated maximum,
// or a `json_len` overrunning the frame is malformed: the server
// answers ERROR and closes.
//
// Request/response pairing is strict per connection: each request type
// 0x0x gets exactly one 0x8x response. FRAME/DONE messages for a
// streaming job are asynchronous and may interleave between a request
// and its response; clients route them by the "job" member.
#pragma once

#include <cstdint>
#include <string>

#include "omx/support/diagnostics.hpp"

namespace omx::svc {

enum class MsgType : std::uint8_t {
  // Requests (client -> server).
  kCompile = 0x01,  // model source/builtin -> model handle (cached)
  kSubmit = 0x02,   // scenario batch -> job id (or RETRY backpressure)
  kCancel = 0x03,   // abort a job's in-flight lanes
  kStats = 0x04,    // server + per-session statistics snapshot
  kPing = 0x05,     // keepalive
  kBye = 0x06,      // orderly goodbye; server closes after OK
  // Responses (server -> client).
  kOk = 0x81,       // request succeeded; payload depends on request
  kError = 0x82,    // request failed; {"error": reason}
  kRetry = 0x83,    // admission rejected; {"retry_after_ms": backoff}
  kFrame = 0x84,    // async: one trajectory chunk of a streaming job
  kDone = 0x85,     // async: job finished; per-scenario row counts
  kPong = 0x86,     // keepalive answer
};

const char* to_string(MsgType t);

/// One decoded frame. `binary` is raw bytes (f64 payloads are encoded
/// little-endian; see encode_f64 / decode_f64 below).
struct Message {
  MsgType type = MsgType::kPing;
  std::string json;
  std::string binary;
};

/// Default ceiling on one frame's size. Generous enough for a chunk of
/// 256 rows x ~100 states; servers may configure it down (tests do, to
/// exercise the oversize rejection without allocating).
constexpr std::size_t kDefaultMaxFrame = 16u << 20;

/// Serializes a frame, length prefix included.
std::string encode(const Message& m);

/// Incremental frame decoder over a byte stream. feed() appends raw
/// socket bytes; next() extracts complete messages. Malformed input
/// (zero length, oversize, json_len overrun, unknown type) throws
/// omx::Error before the payload is buffered past the header — an
/// attacker-controlled length field never drives an allocation above
/// max_frame.
class FrameReader {
 public:
  explicit FrameReader(std::size_t max_frame = kDefaultMaxFrame)
      : max_frame_(max_frame) {}

  void feed(const char* data, std::size_t n) { buf_.append(data, n); }

  /// Extracts the next complete message into `out`; false = need more
  /// bytes. Throws on protocol violations.
  bool next(Message& out);

 private:
  std::size_t max_frame_;
  std::string buf_;
};

// f64 <-> bytes helpers for the binary payloads (little-endian on the
// wire; byte-swapped on big-endian hosts).
void append_f64(std::string& out, const double* src, std::size_t count);
void read_f64(const std::string& in, std::size_t byte_offset, double* dst,
              std::size_t count);

}  // namespace omx::svc
