#include "omx/svc/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "omx/models/bearing2d.hpp"
#include "omx/models/oscillator.hpp"
#include "omx/obs/export.hpp"
#include "omx/obs/registry.hpp"
#include "omx/ode/ensemble.hpp"
#include "omx/ode/sink.hpp"
#include "omx/ode/solve.hpp"
#include "omx/parser/parser.hpp"
#include "omx/pipeline/pipeline.hpp"
#include "omx/runtime/admission.hpp"
#include "omx/support/json.hpp"
#include "omx/support/timer.hpp"
#include "omx/tune/autotuner.hpp"

namespace omx::svc {

namespace {

// ---------------------------------------------------------------- metrics

obs::Counter& sessions_opened() {
  static obs::Counter& c =
      obs::Registry::global().counter("svc.sessions_opened");
  return c;
}
obs::Counter& sessions_closed() {
  static obs::Counter& c =
      obs::Registry::global().counter("svc.sessions_closed");
  return c;
}
obs::Counter& jobs_submitted_total() {
  static obs::Counter& c =
      obs::Registry::global().counter("svc.jobs_submitted");
  return c;
}
obs::Counter& jobs_done_total() {
  static obs::Counter& c = obs::Registry::global().counter("svc.jobs_done");
  return c;
}
obs::Counter& jobs_cancelled_total() {
  static obs::Counter& c =
      obs::Registry::global().counter("svc.jobs_cancelled");
  return c;
}
obs::Counter& jobs_rejected_total() {
  static obs::Counter& c =
      obs::Registry::global().counter("svc.jobs_rejected");
  return c;
}
obs::Counter& jobs_autotuned_total() {
  static obs::Counter& c =
      obs::Registry::global().counter("svc.jobs_autotuned");
  return c;
}
obs::Counter& frames_sent_total() {
  static obs::Counter& c =
      obs::Registry::global().counter("svc.frames_sent");
  return c;
}
obs::Counter& bytes_sent_total() {
  static obs::Counter& c = obs::Registry::global().counter("svc.bytes_sent");
  return c;
}
obs::Gauge& queue_depth_gauge() {
  static obs::Gauge& g = obs::Registry::global().gauge("svc.queue_depth");
  return g;
}
obs::Histogram& job_seconds_hist() {
  static obs::Histogram& h = obs::Registry::global().histogram(
      "svc.job_seconds", obs::log_spaced_bounds(1e-4, 1e2));
  return h;
}

// ----------------------------------------------------------------- misc

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

ode::Method parse_method(const std::string& s) {
  for (const ode::Method m :
       {ode::Method::kExplicitEuler, ode::Method::kRk4,
        ode::Method::kDopri5, ode::Method::kAdamsPece, ode::Method::kBdf,
        ode::Method::kLsodaLike}) {
    if (s == ode::to_string(m)) {
      return m;
    }
  }
  throw omx::Error("svc: unknown method '" + s + "'");
}

Message error_msg(const std::string& what) {
  Message m;
  m.type = MsgType::kError;
  m.json = "{\"error\": \"" + obs::json_escape(what) + "\"}";
  return m;
}

// ------------------------------------------------------------ structures

struct Conn {
  int fd = -1;
  std::uint64_t session = 0;
  FrameReader reader;
  std::atomic<bool> closed{false};
  bool close_after_flush = false;
  std::chrono::steady_clock::time_point last_activity;

  // Outgoing bytes; executors append under the mutex, the event loop
  // drains. `out_off` avoids erasing from the front on every write.
  std::mutex out_mutex;
  std::string outbox;
  std::size_t out_off = 0;

  // Jobs owned by this session (event-loop thread only).
  std::set<std::uint64_t> jobs;

  // Per-session statistics, exported by Server::service_json().
  std::atomic<std::uint64_t> jobs_submitted{0};
  std::atomic<std::uint64_t> jobs_done{0};
  std::atomic<std::uint64_t> jobs_cancelled{0};
  std::atomic<std::uint64_t> rejects{0};
  std::atomic<std::uint64_t> frames{0};
  std::atomic<std::uint64_t> bytes_out{0};
  double opened_s = 0.0;
  std::atomic<double> closed_s{-1.0};
};

/// One compiled model held warm across jobs and sessions. The kernel is
/// built once; every job's Problem references it (make_problem pins the
/// instance), so COMPILE amortizes and SUBMIT is allocation-light.
struct ModelEntry {
  std::string id;
  pipeline::CompiledModel cm;
  exec::KernelInstance kernel;
  std::vector<double> y0;
  std::string backend_name;

  ModelEntry() : kernel(nullptr, nullptr) {}
};

/// Registry slot: the per-key mutex serializes concurrent COMPILEs of
/// the same model (second caller waits, then reuses).
struct ModelSlot {
  std::mutex mutex;
  std::shared_ptr<ModelEntry> entry;
};

struct Job {
  std::uint64_t id = 0;
  std::shared_ptr<Conn> conn;
  std::shared_ptr<ModelEntry> model;
  ode::Method method = ode::Method::kDopri5;
  ode::SolverOptions sopts;
  ode::EnsembleSpec spec;
  double t0 = 0.0;
  double tend = 1.0;
  bool stream = true;
  bool autotune = false;  // let the daemon's cost model pick workers/batch
  bool queued = false;  // admitted into the wait queue (vs a free slot)
  std::atomic<bool> cancel{false};
  std::atomic<bool> finished{false};
};

}  // namespace

// ------------------------------------------------------------------ Impl

struct Server::Impl {
  explicit Impl(ServerOptions o)
      : opts(std::move(o)), gate(opts.executors, opts.queue_cap) {}

  ServerOptions opts;
  runtime::AdmissionGate gate;
  Stopwatch clock;  // server-relative timestamps

  int listen_fd = -1;
  std::uint16_t bound_port = 0;
  int wake_rd = -1, wake_wr = -1;
  std::atomic<bool> running{false};

  std::thread loop_thread;
  std::vector<std::thread> executor_threads;

  // Executor work queue (compiles and jobs alike).
  std::mutex task_mutex;
  std::condition_variable task_cv;
  std::deque<std::function<void()>> tasks;

  // Connections: the event loop owns the map; service_json and sends
  // from executors go through the mutex / the conn's own atomics.
  mutable std::mutex conns_mutex;
  std::map<int, std::shared_ptr<Conn>> conns;
  std::vector<std::shared_ptr<Conn>> all_sessions;  // closed ones too
  std::uint64_t next_session = 1;

  // Compiled-model registry, shared across sessions.
  std::mutex models_mutex;
  std::map<std::string, std::shared_ptr<ModelSlot>> models;

  // Live jobs by id (CANCEL lookup); erased when the job retires.
  std::mutex jobs_mutex;
  std::map<std::uint64_t, std::shared_ptr<Job>> jobs;
  std::atomic<std::uint64_t> next_job{1};

  // Queue-depth timeline: (seconds since start, queued jobs).
  mutable std::mutex timeline_mutex;
  std::vector<std::pair<double, std::size_t>> timeline;

  // ---------------------------------------------------------- lifecycle

  void start();
  void stop();
  void loop();
  void executor();

  // ------------------------------------------------------------- wiring

  void wake() {
    if (wake_wr >= 0) {
      const char b = 1;
      [[maybe_unused]] const ssize_t r = ::write(wake_wr, &b, 1);
    }
  }

  void post(std::function<void()> task) {
    {
      const std::lock_guard<std::mutex> lock(task_mutex);
      tasks.push_back(std::move(task));
    }
    task_cv.notify_one();
  }

  void send(const std::shared_ptr<Conn>& conn, const Message& m) {
    if (conn->closed.load(std::memory_order_relaxed)) {
      return;
    }
    const std::string bytes = encode(m);
    {
      const std::lock_guard<std::mutex> lock(conn->out_mutex);
      conn->outbox += bytes;
    }
    conn->bytes_out.fetch_add(bytes.size(), std::memory_order_relaxed);
    bytes_sent_total().add(bytes.size());
    wake();
  }

  void record_queue_depth() {
    const std::size_t depth = gate.queued();
    queue_depth_gauge().set(static_cast<double>(depth));
    const std::lock_guard<std::mutex> lock(timeline_mutex);
    timeline.emplace_back(clock.seconds(), depth);
  }

  // ----------------------------------------------------------- handlers

  void handle_frame(const std::shared_ptr<Conn>& conn, const Message& m);
  void handle_compile(const std::shared_ptr<Conn>& conn, Message m);
  void handle_submit(const std::shared_ptr<Conn>& conn, const Message& m);
  void handle_cancel(const std::shared_ptr<Conn>& conn, const Message& m);
  void handle_stats(const std::shared_ptr<Conn>& conn);
  void run_job(const std::shared_ptr<Job>& job);
  void close_conn(const std::shared_ptr<Conn>& conn);

  std::shared_ptr<ModelEntry> compile_model_payload(const std::string& json,
                                                    bool& cached);
  std::string service_json() const;
};

// ----------------------------------------------------------- stream sink

namespace {

/// Per-job TrajectorySink: counts rows per scenario and, for streaming
/// jobs, serializes each committed chunk into one FRAME straight from
/// the chunk's buffers (a single copy: chunk -> wire bytes) before
/// recycling it. Thread-safe per the ensemble sink contract.
class StreamSink final : public ode::TrajectorySink {
 public:
  StreamSink(Server::Impl* srv, std::shared_ptr<Job> job)
      : srv_(srv),
        job_(std::move(job)),
        pool_(kDefaultChunkRows),
        rows_(job_->spec.initial_states.size(), 0) {}

  ode::TrajectoryChunk* acquire(std::uint32_t scenario,
                                std::size_t n) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    return pool_.get(scenario, n);
  }

  void commit(ode::TrajectoryChunk* chunk) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    rows_[chunk->scenario] += chunk->size;
    if (job_->stream && chunk->size > 0 &&
        !job_->cancel.load(std::memory_order_relaxed)) {
      Message f;
      f.type = MsgType::kFrame;
      std::ostringstream js;
      js << "{\"job\": " << job_->id
         << ", \"scenario\": " << chunk->scenario
         << ", \"rows\": " << chunk->size << ", \"n\": " << chunk->n
         << ", \"final\": " << (chunk->final ? "true" : "false") << "}";
      f.json = js.str();
      append_f64(f.binary, chunk->times.data(), chunk->size);
      append_f64(f.binary, chunk->states.data(), chunk->size * chunk->n);
      srv_->send(job_->conn, f);
      ++frames_;
      job_->conn->frames.fetch_add(1, std::memory_order_relaxed);
      frames_sent_total().add();
    }
    pool_.put(chunk);
  }

  void finish(std::uint32_t, const ode::SolverStats&) override {}

  std::uint64_t frames() const { return frames_; }
  const std::vector<std::uint64_t>& rows() const { return rows_; }

 private:
  Server::Impl* srv_;
  std::shared_ptr<Job> job_;
  std::mutex mutex_;
  ode::detail::ChunkPool pool_;
  std::vector<std::uint64_t> rows_;
  std::uint64_t frames_ = 0;
};

}  // namespace

// ------------------------------------------------------------- lifecycle

void Server::Impl::start() {
  listen_fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  OMX_REQUIRE(listen_fd >= 0, "svc: cannot create listen socket");
  const int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts.port);
  if (::inet_pton(AF_INET, opts.bind.c_str(), &addr.sin_addr) != 1) {
    throw omx::Error("svc: invalid bind address " + opts.bind);
  }
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    throw omx::Error("svc: cannot bind " + opts.bind + ":" +
                     std::to_string(opts.port) + " (" +
                     std::strerror(errno) + ")");
  }
  if (::listen(listen_fd, 64) != 0) {
    throw omx::Error("svc: listen failed");
  }
  sockaddr_in bound{};
  socklen_t blen = sizeof(bound);
  ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound), &blen);
  bound_port = ntohs(bound.sin_port);

  int pipefd[2];
  OMX_REQUIRE(::pipe(pipefd) == 0, "svc: cannot create wake pipe");
  wake_rd = pipefd[0];
  wake_wr = pipefd[1];
  ::fcntl(wake_rd, F_SETFL, O_NONBLOCK);
  ::fcntl(wake_wr, F_SETFL, O_NONBLOCK);
  ::fcntl(listen_fd, F_SETFL, O_NONBLOCK);

  running.store(true);
  loop_thread = std::thread([this] { loop(); });
  executor_threads.reserve(opts.executors);
  for (std::size_t i = 0; i < opts.executors; ++i) {
    executor_threads.emplace_back([this] { executor(); });
  }
}

void Server::Impl::stop() {
  if (!running.exchange(false)) {
    return;
  }
  // Cancel whatever is in flight so executors drain quickly.
  {
    const std::lock_guard<std::mutex> lock(jobs_mutex);
    for (auto& [id, job] : jobs) {
      job->cancel.store(true, std::memory_order_relaxed);
    }
  }
  task_cv.notify_all();
  wake();
  if (loop_thread.joinable()) {
    loop_thread.join();
  }
  for (std::thread& t : executor_threads) {
    if (t.joinable()) {
      t.join();
    }
  }
  executor_threads.clear();
  {
    const std::lock_guard<std::mutex> lock(conns_mutex);
    for (auto& [fd, conn] : conns) {
      conn->closed.store(true, std::memory_order_relaxed);
      conn->closed_s.store(clock.seconds(), std::memory_order_relaxed);
      ::close(fd);
    }
    conns.clear();
  }
  for (const int fd : {listen_fd, wake_rd, wake_wr}) {
    if (fd >= 0) {
      ::close(fd);
    }
  }
  listen_fd = wake_rd = wake_wr = -1;
}

void Server::Impl::executor() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(task_mutex);
      task_cv.wait(lock, [this] {
        return !tasks.empty() || !running.load(std::memory_order_relaxed);
      });
      if (tasks.empty()) {
        return;  // stopping and drained
      }
      task = std::move(tasks.front());
      tasks.pop_front();
    }
    task();
  }
}

void Server::Impl::loop() {
  std::vector<pollfd> pfds;
  std::vector<std::shared_ptr<Conn>> order;
  char buf[64 * 1024];

  while (running.load(std::memory_order_relaxed)) {
    pfds.clear();
    order.clear();
    pfds.push_back({listen_fd, POLLIN, 0});
    pfds.push_back({wake_rd, POLLIN, 0});
    {
      const std::lock_guard<std::mutex> lock(conns_mutex);
      for (auto& [fd, conn] : conns) {
        short events = POLLIN;
        {
          const std::lock_guard<std::mutex> ol(conn->out_mutex);
          if (conn->out_off < conn->outbox.size()) {
            events |= POLLOUT;
          }
        }
        pfds.push_back({fd, events, 0});
        order.push_back(conn);
      }
    }

    const int timeout_ms = opts.idle_timeout_ms > 0
                               ? std::min(opts.idle_timeout_ms, 200)
                               : 200;
    const int nready = ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (!running.load(std::memory_order_relaxed)) {
      break;
    }
    if (nready < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;
    }

    // Drain wakeups.
    if ((pfds[1].revents & POLLIN) != 0) {
      while (::read(wake_rd, buf, sizeof(buf)) > 0) {
      }
    }

    // Accept.
    if ((pfds[0].revents & POLLIN) != 0) {
      for (;;) {
        const int cfd = ::accept(listen_fd, nullptr, nullptr);
        if (cfd < 0) {
          break;
        }
        ::fcntl(cfd, F_SETFL, O_NONBLOCK);
        const int one = 1;
        ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        auto conn = std::make_shared<Conn>();
        conn->fd = cfd;
        conn->reader = FrameReader(opts.max_frame_bytes);
        conn->last_activity = std::chrono::steady_clock::now();
        conn->opened_s = clock.seconds();
        {
          const std::lock_guard<std::mutex> lock(conns_mutex);
          conn->session = next_session++;
          conns[cfd] = conn;
          all_sessions.push_back(conn);
        }
        sessions_opened().add();
      }
    }

    // Per-connection IO.
    for (std::size_t i = 2; i < pfds.size(); ++i) {
      const auto& conn = order[i - 2];
      const short re = pfds[i].revents;
      if (re == 0) {
        continue;
      }
      if ((re & (POLLERR | POLLHUP | POLLNVAL)) != 0) {
        close_conn(conn);
        continue;
      }
      if ((re & POLLIN) != 0) {
        bool dead = false;
        for (;;) {
          const ssize_t got = ::recv(conn->fd, buf, sizeof(buf), 0);
          if (got > 0) {
            conn->last_activity = std::chrono::steady_clock::now();
            conn->reader.feed(buf, static_cast<std::size_t>(got));
            continue;
          }
          if (got == 0) {
            dead = true;
          }
          break;  // EAGAIN or error or EOF
        }
        try {
          Message m;
          while (conn->reader.next(m)) {
            handle_frame(conn, m);
          }
        } catch (const std::exception& e) {
          // Malformed frame: answer ERROR, then drop the connection.
          send(conn, error_msg(e.what()));
          conn->close_after_flush = true;
        }
        if (dead) {
          close_conn(conn);
          continue;
        }
      }
      if ((re & POLLOUT) != 0) {
        const std::lock_guard<std::mutex> ol(conn->out_mutex);
        while (conn->out_off < conn->outbox.size()) {
          const ssize_t put =
              ::send(conn->fd, conn->outbox.data() + conn->out_off,
                     conn->outbox.size() - conn->out_off, MSG_NOSIGNAL);
          if (put <= 0) {
            break;
          }
          conn->out_off += static_cast<std::size_t>(put);
        }
        if (conn->out_off >= conn->outbox.size()) {
          conn->outbox.clear();
          conn->out_off = 0;
        }
      }
    }

    // Flush-then-close and idle-timeout sweeps.
    std::vector<std::shared_ptr<Conn>> to_close;
    {
      const std::lock_guard<std::mutex> lock(conns_mutex);
      const auto now = std::chrono::steady_clock::now();
      for (auto& [fd, conn] : conns) {
        bool drained;
        {
          const std::lock_guard<std::mutex> ol(conn->out_mutex);
          drained = conn->out_off >= conn->outbox.size();
        }
        if (conn->close_after_flush && drained) {
          to_close.push_back(conn);
          continue;
        }
        if (opts.idle_timeout_ms > 0 && conn->jobs.empty()) {
          const auto idle =
              std::chrono::duration_cast<std::chrono::milliseconds>(
                  now - conn->last_activity)
                  .count();
          if (idle > opts.idle_timeout_ms) {
            to_close.push_back(conn);
          }
        }
      }
    }
    for (const auto& conn : to_close) {
      close_conn(conn);
    }
  }
}

void Server::Impl::close_conn(const std::shared_ptr<Conn>& conn) {
  if (conn->closed.exchange(true)) {
    return;
  }
  // Disconnect-driven cancellation: every job this session owns aborts
  // at its next cancellation poll.
  {
    const std::lock_guard<std::mutex> lock(jobs_mutex);
    for (const std::uint64_t id : conn->jobs) {
      const auto it = jobs.find(id);
      if (it != jobs.end()) {
        it->second->cancel.store(true, std::memory_order_relaxed);
      }
    }
  }
  conn->closed_s.store(clock.seconds(), std::memory_order_relaxed);
  {
    const std::lock_guard<std::mutex> lock(conns_mutex);
    conns.erase(conn->fd);
  }
  ::close(conn->fd);
  sessions_closed().add();
}

// -------------------------------------------------------------- handlers

void Server::Impl::handle_frame(const std::shared_ptr<Conn>& conn,
                                const Message& m) {
  switch (m.type) {
    case MsgType::kPing: {
      Message r;
      r.type = MsgType::kPong;
      send(conn, r);
      return;
    }
    case MsgType::kBye: {
      Message r;
      r.type = MsgType::kOk;
      r.json = "{}";
      send(conn, r);
      conn->close_after_flush = true;
      return;
    }
    case MsgType::kStats:
      handle_stats(conn);
      return;
    case MsgType::kCancel:
      handle_cancel(conn, m);
      return;
    case MsgType::kCompile:
      // Compiling can take seconds (the native backend shells out to the
      // host compiler) — never on the event loop.
      handle_compile(conn, m);
      return;
    case MsgType::kSubmit:
      handle_submit(conn, m);
      return;
    default:
      throw omx::Error(std::string("svc: unexpected ") + to_string(m.type) +
                       " from client");
  }
}

std::shared_ptr<ModelEntry> Server::Impl::compile_model_payload(
    const std::string& json, bool& cached) {
  const std::string key = "m" + hex16(fnv1a(json));
  std::shared_ptr<ModelSlot> slot;
  {
    const std::lock_guard<std::mutex> lock(models_mutex);
    auto& s = models[key];
    if (!s) {
      s = std::make_shared<ModelSlot>();
    }
    slot = s;
  }
  const std::lock_guard<std::mutex> lock(slot->mutex);
  if (slot->entry) {
    cached = true;
    return slot->entry;
  }
  cached = false;

  const support::json::Value req = support::json::parse(json);
  pipeline::ModelBuilder builder;
  const std::string builtin = req.get_string("builtin", "");
  if (builtin == "bearing2d") {
    models::BearingConfig cfg;
    cfg.n_rollers =
        static_cast<int>(req.get_number("rollers", cfg.n_rollers));
    builder = [cfg](expr::Context& ctx) {
      return models::build_bearing(ctx, cfg);
    };
  } else if (builtin == "oscillator") {
    builder = [](expr::Context& ctx) {
      return models::build_oscillator(ctx);
    };
  } else if (!builtin.empty()) {
    throw omx::Error("svc: unknown builtin model '" + builtin + "'");
  } else {
    const std::string source = req.get_string("source", "");
    if (source.empty()) {
      throw omx::Error("svc: COMPILE needs \"builtin\" or \"source\"");
    }
    builder = [source](expr::Context& ctx) {
      return parser::parse_model(source, ctx);
    };
  }

  auto entry = std::make_shared<ModelEntry>();
  entry->id = key;
  entry->cm = pipeline::compile_model(builder);
  pipeline::KernelOptions ko;
  ko.lanes = opts.kernel_lanes;
  entry->kernel = entry->cm.make_kernel(opts.backend, ko);
  entry->backend_name = exec::to_string(entry->kernel.backend());
  entry->y0.resize(entry->cm.n());
  for (std::size_t i = 0; i < entry->y0.size(); ++i) {
    entry->y0[i] = entry->cm.flat->states()[i].start;
  }
  slot->entry = entry;
  return entry;
}

void Server::Impl::handle_compile(const std::shared_ptr<Conn>& conn,
                                  Message m) {
  post([this, conn, m = std::move(m)] {
    try {
      bool cached = false;
      const std::shared_ptr<ModelEntry> entry =
          compile_model_payload(m.json, cached);
      std::ostringstream js;
      js << "{\"model\": \"" << entry->id
         << "\", \"n\": " << entry->y0.size() << ", \"backend\": \""
         << entry->backend_name
         << "\", \"cached\": " << (cached ? "true" : "false")
         << ", \"y0\": [";
      for (std::size_t i = 0; i < entry->y0.size(); ++i) {
        js << (i > 0 ? ", " : "") << entry->y0[i];
      }
      js << "]}";
      Message r;
      r.type = MsgType::kOk;
      r.json = js.str();
      send(conn, r);
    } catch (const std::exception& e) {
      send(conn, error_msg(e.what()));
    }
  });
}

void Server::Impl::handle_submit(const std::shared_ptr<Conn>& conn,
                                 const Message& m) {
  const support::json::Value req = support::json::parse(m.json);
  const std::string model_id = req.get_string("model", "");
  std::shared_ptr<ModelEntry> entry;
  {
    const std::lock_guard<std::mutex> lock(models_mutex);
    const auto it = models.find(model_id);
    if (it != models.end()) {
      const std::lock_guard<std::mutex> sl(it->second->mutex);
      entry = it->second->entry;
    }
  }
  if (!entry) {
    send(conn, error_msg("svc: unknown model '" + model_id +
                         "' (COMPILE first)"));
    return;
  }

  const std::size_t n = entry->y0.size();
  const auto scenarios =
      static_cast<std::size_t>(req.get_number("scenarios", 1.0));
  if (scenarios == 0 || scenarios > 100000) {
    send(conn, error_msg("svc: scenarios out of range"));
    return;
  }

  auto job = std::make_shared<Job>();
  job->conn = conn;
  job->model = entry;
  job->method = parse_method(req.get_string("method", "dopri5"));
  job->t0 = req.get_number("t0", 0.0);
  job->tend = req.get_number("tend", 1.0);
  job->stream = req.get_bool("stream", true);
  job->sopts.tol.rtol = req.get_number("rtol", job->sopts.tol.rtol);
  job->sopts.tol.atol = req.get_number("atol", job->sopts.tol.atol);
  job->sopts.dt = req.get_number("dt", job->sopts.dt);
  job->sopts.record_every = static_cast<std::size_t>(
      req.get_number("record_every", 1.0));
  job->sopts.cancel = &job->cancel;
  job->spec.workers = static_cast<std::size_t>(req.get_number(
      "workers", static_cast<double>(opts.job_workers)));
  job->spec.max_batch = static_cast<std::size_t>(req.get_number(
      "max_batch", static_cast<double>(job->spec.max_batch)));
  job->autotune = req.get_bool("autotune", false);
  if (job->autotune && tune::mode() == tune::Mode::kOff) {
    // Server-side tuning is requested per job, not through the daemon's
    // environment: raise the process mode to calibrate so solve_ensemble
    // feeds the cost model; the pick itself happens in run_job, so the
    // global mode never needs to reach "on".
    tune::set_mode(tune::Mode::kCalibrate);
  }

  job->spec.initial_states.resize(scenarios);
  if (!m.binary.empty()) {
    if (m.binary.size() != scenarios * n * 8) {
      send(conn, error_msg("svc: SUBMIT binary payload is " +
                           std::to_string(m.binary.size()) +
                           " bytes, expected " +
                           std::to_string(scenarios * n * 8)));
      return;
    }
    for (std::size_t s = 0; s < scenarios; ++s) {
      job->spec.initial_states[s].resize(n);
      read_f64(m.binary, s * n * 8, job->spec.initial_states[s].data(), n);
    }
  } else {
    for (std::size_t s = 0; s < scenarios; ++s) {
      job->spec.initial_states[s] = entry->y0;
    }
  }

  // Admission: run now, wait in the bounded queue, or push back.
  const runtime::Admission verdict = gate.admit();
  if (verdict == runtime::Admission::kReject) {
    conn->rejects.fetch_add(1, std::memory_order_relaxed);
    jobs_rejected_total().add();
    Message r;
    r.type = MsgType::kRetry;
    r.json = "{\"retry_after_ms\": " + std::to_string(opts.retry_after_ms) +
             "}";
    send(conn, r);
    return;
  }
  job->queued = verdict == runtime::Admission::kQueue;
  job->id = next_job.fetch_add(1);
  {
    const std::lock_guard<std::mutex> lock(jobs_mutex);
    jobs[job->id] = job;
  }
  conn->jobs.insert(job->id);
  conn->jobs_submitted.fetch_add(1, std::memory_order_relaxed);
  jobs_submitted_total().add();
  record_queue_depth();

  Message r;
  r.type = MsgType::kOk;
  r.json = "{\"job\": " + std::to_string(job->id) + "}";
  send(conn, r);
  post([this, job] { run_job(job); });
}

void Server::Impl::handle_cancel(const std::shared_ptr<Conn>& conn,
                                 const Message& m) {
  const support::json::Value req = support::json::parse(m.json);
  const auto id =
      static_cast<std::uint64_t>(req.get_number("job", 0.0));
  bool cancelled = false;
  {
    const std::lock_guard<std::mutex> lock(jobs_mutex);
    const auto it = jobs.find(id);
    // Cancel-after-retire (or a bogus id) is a no-op, not an error: the
    // race between DONE and CANCEL is inherent to the protocol.
    if (it != jobs.end() &&
        !it->second->finished.load(std::memory_order_relaxed)) {
      it->second->cancel.store(true, std::memory_order_relaxed);
      cancelled = true;
    }
  }
  Message r;
  r.type = MsgType::kOk;
  r.json = std::string("{\"cancelled\": ") +
           (cancelled ? "true" : "false") + "}";
  send(conn, r);
}

void Server::Impl::handle_stats(const std::shared_ptr<Conn>& conn) {
  std::ostringstream js;
  std::size_t live;
  {
    const std::lock_guard<std::mutex> lock(conns_mutex);
    live = conns.size();
  }
  js << "{\"active_jobs\": " << gate.active()
     << ", \"queued_jobs\": " << gate.queued()
     << ", \"sessions\": " << live
     << ", \"executors\": " << opts.executors
     << ", \"queue_cap\": " << opts.queue_cap << "}";
  Message r;
  r.type = MsgType::kOk;
  r.json = js.str();
  send(conn, r);
}

void Server::Impl::run_job(const std::shared_ptr<Job>& job) {
  if (job->queued) {
    gate.on_start();
    record_queue_depth();
  }

  Stopwatch timer;
  StreamSink sink(this, job);
  bool cancelled = false;
  std::string error;
  try {
    const ode::Problem problem =
        job->model->cm.make_problem(job->model->kernel, job->t0, job->tend);
    if (job->autotune) {
      // Daemon-side configuration pick: once enough submitted jobs have
      // calibrated the model for this problem size, override the
      // client's workers/batch with the fitted pick. Until then the
      // client's settings run as-is (and calibrate the model).
      const std::size_t ns = job->spec.initial_states.size();
      const std::size_t hw =
          std::max<std::size_t>(1, std::thread::hardware_concurrency());
      if (const std::optional<tune::EnsembleConfig> cfg =
              tune::AutoTuner::global().pick_ensemble(
                  problem.n, ns, std::min(ns, hw), 64)) {
        job->spec.workers = cfg->workers;
        job->spec.max_batch = cfg->max_batch;
        jobs_autotuned_total().add();
      }
    }
    ode::solve_ensemble(problem, job->method, job->sopts, job->spec, sink);
  } catch (const ode::Cancelled&) {
    cancelled = true;
  } catch (const std::exception& e) {
    error = e.what();
  }
  job->finished.store(true, std::memory_order_relaxed);
  gate.on_finish();
  record_queue_depth();
  job_seconds_hist().observe(timer.seconds());

  const auto& conn = job->conn;
  if (cancelled) {
    conn->jobs_cancelled.fetch_add(1, std::memory_order_relaxed);
    jobs_cancelled_total().add();
  } else {
    conn->jobs_done.fetch_add(1, std::memory_order_relaxed);
    jobs_done_total().add();
  }

  std::ostringstream js;
  js << "{\"job\": " << job->id
     << ", \"cancelled\": " << (cancelled ? "true" : "false")
     << ", \"scenarios\": " << job->spec.initial_states.size()
     << ", \"frames\": " << sink.frames() << ", \"rows\": [";
  const auto& rows = sink.rows();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    js << (i > 0 ? ", " : "") << rows[i];
  }
  js << "]";
  if (!error.empty()) {
    js << ", \"error\": \"" << obs::json_escape(error) << "\"";
  }
  js << "}";
  Message done;
  done.type = MsgType::kDone;
  done.json = js.str();
  send(conn, done);

  {
    const std::lock_guard<std::mutex> lock(jobs_mutex);
    jobs.erase(job->id);
  }
}

// ----------------------------------------------------------- service_json

std::string Server::Impl::service_json() const {
  std::ostringstream os;
  os << "{\n  \"summary\": {";
  std::uint64_t submitted = 0, done = 0, cancelled = 0, rejects = 0,
                frames = 0, bytes = 0;
  std::vector<std::shared_ptr<Conn>> sessions;
  {
    const std::lock_guard<std::mutex> lock(conns_mutex);
    sessions = all_sessions;
  }
  for (const auto& c : sessions) {
    submitted += c->jobs_submitted.load(std::memory_order_relaxed);
    done += c->jobs_done.load(std::memory_order_relaxed);
    cancelled += c->jobs_cancelled.load(std::memory_order_relaxed);
    rejects += c->rejects.load(std::memory_order_relaxed);
    frames += c->frames.load(std::memory_order_relaxed);
    bytes += c->bytes_out.load(std::memory_order_relaxed);
  }
  os << "\"sessions\": " << sessions.size()
     << ", \"jobs_submitted\": " << submitted << ", \"jobs_done\": " << done
     << ", \"jobs_cancelled\": " << cancelled
     << ", \"rejects\": " << rejects << ", \"frames\": " << frames
     << ", \"bytes_sent\": " << bytes << "},\n  \"sessions\": [\n";
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    const auto& c = sessions[i];
    const double closed_at = c->closed_s.load(std::memory_order_relaxed);
    const double dur =
        (closed_at >= 0.0 ? closed_at : clock.seconds()) - c->opened_s;
    os << "    {\"session\": " << c->session << ", \"open\": "
       << (c->closed.load(std::memory_order_relaxed) ? "false" : "true")
       << ", \"duration_s\": " << dur << ", \"jobs_submitted\": "
       << c->jobs_submitted.load(std::memory_order_relaxed)
       << ", \"jobs_done\": " << c->jobs_done.load(std::memory_order_relaxed)
       << ", \"jobs_cancelled\": "
       << c->jobs_cancelled.load(std::memory_order_relaxed)
       << ", \"rejects\": " << c->rejects.load(std::memory_order_relaxed)
       << ", \"frames\": " << c->frames.load(std::memory_order_relaxed)
       << ", \"bytes_sent\": "
       << c->bytes_out.load(std::memory_order_relaxed) << "}"
       << (i + 1 < sessions.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"queue_depth_timeline\": [";
  {
    const std::lock_guard<std::mutex> lock(timeline_mutex);
    for (std::size_t i = 0; i < timeline.size(); ++i) {
      os << (i > 0 ? ", " : "") << "[" << timeline[i].first << ", "
         << timeline[i].second << "]";
    }
  }
  os << "]\n}\n";
  return os.str();
}

// ---------------------------------------------------------------- Server

Server::Server(ServerOptions opts)
    : impl_(std::make_unique<Impl>(std::move(opts))) {}

Server::~Server() { stop(); }

void Server::start() { impl_->start(); }

void Server::stop() { impl_->stop(); }

std::uint16_t Server::port() const { return impl_->bound_port; }

std::string Server::service_json() const { return impl_->service_json(); }

}  // namespace omx::svc
