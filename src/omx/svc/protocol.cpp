#include "omx/svc/protocol.hpp"

#include <bit>
#include <cstring>

namespace omx::svc {

namespace {

void put_u32(std::string& out, std::uint32_t v) {
  char b[4];
  b[0] = static_cast<char>(v & 0xFF);
  b[1] = static_cast<char>((v >> 8) & 0xFF);
  b[2] = static_cast<char>((v >> 16) & 0xFF);
  b[3] = static_cast<char>((v >> 24) & 0xFF);
  out.append(b, 4);
}

std::uint32_t get_u32(const char* p) {
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint32_t>(u[0]) |
         (static_cast<std::uint32_t>(u[1]) << 8) |
         (static_cast<std::uint32_t>(u[2]) << 16) |
         (static_cast<std::uint32_t>(u[3]) << 24);
}

bool known_type(std::uint8_t t) {
  switch (static_cast<MsgType>(t)) {
    case MsgType::kCompile:
    case MsgType::kSubmit:
    case MsgType::kCancel:
    case MsgType::kStats:
    case MsgType::kPing:
    case MsgType::kBye:
    case MsgType::kOk:
    case MsgType::kError:
    case MsgType::kRetry:
    case MsgType::kFrame:
    case MsgType::kDone:
    case MsgType::kPong:
      return true;
  }
  return false;
}

}  // namespace

const char* to_string(MsgType t) {
  switch (t) {
    case MsgType::kCompile: return "COMPILE";
    case MsgType::kSubmit: return "SUBMIT";
    case MsgType::kCancel: return "CANCEL";
    case MsgType::kStats: return "STATS";
    case MsgType::kPing: return "PING";
    case MsgType::kBye: return "BYE";
    case MsgType::kOk: return "OK";
    case MsgType::kError: return "ERROR";
    case MsgType::kRetry: return "RETRY";
    case MsgType::kFrame: return "FRAME";
    case MsgType::kDone: return "DONE";
    case MsgType::kPong: return "PONG";
  }
  return "?";
}

std::string encode(const Message& m) {
  const std::size_t length = 1 + 4 + m.json.size() + m.binary.size();
  std::string out;
  out.reserve(4 + length);
  put_u32(out, static_cast<std::uint32_t>(length));
  out.push_back(static_cast<char>(m.type));
  put_u32(out, static_cast<std::uint32_t>(m.json.size()));
  out += m.json;
  out += m.binary;
  return out;
}

bool FrameReader::next(Message& out) {
  if (buf_.size() < 4) {
    return false;
  }
  const std::uint32_t length = get_u32(buf_.data());
  // Validate the header before waiting for (or buffering) the payload:
  // a hostile length field must not drive memory growth.
  if (length < 5) {
    throw omx::Error("svc: malformed frame (length " +
                     std::to_string(length) + " below minimum)");
  }
  if (length > max_frame_) {
    throw omx::Error("svc: frame of " + std::to_string(length) +
                     " bytes exceeds the " + std::to_string(max_frame_) +
                     "-byte limit");
  }
  if (buf_.size() < 4u + length) {
    return false;
  }
  const char* p = buf_.data() + 4;
  const std::uint8_t type = static_cast<std::uint8_t>(*p);
  if (!known_type(type)) {
    throw omx::Error("svc: unknown message type 0x" +
                     std::to_string(static_cast<unsigned>(type)));
  }
  const std::uint32_t json_len = get_u32(p + 1);
  if (5u + json_len > length) {
    throw omx::Error("svc: malformed frame (json_len overruns frame)");
  }
  out.type = static_cast<MsgType>(type);
  out.json.assign(p + 5, json_len);
  out.binary.assign(p + 5 + json_len, length - 5 - json_len);
  buf_.erase(0, 4u + length);
  return true;
}

void append_f64(std::string& out, const double* src, std::size_t count) {
  static_assert(sizeof(double) == 8);
  if constexpr (std::endian::native == std::endian::little) {
    out.append(reinterpret_cast<const char*>(src), count * 8);
  } else {
    for (std::size_t i = 0; i < count; ++i) {
      std::uint64_t bits;
      std::memcpy(&bits, &src[i], 8);
      for (int b = 0; b < 8; ++b) {
        out.push_back(static_cast<char>((bits >> (8 * b)) & 0xFF));
      }
    }
  }
}

void read_f64(const std::string& in, std::size_t byte_offset, double* dst,
              std::size_t count) {
  if (byte_offset + count * 8 > in.size()) {
    throw omx::Error("svc: binary payload shorter than declared shape");
  }
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(dst, in.data() + byte_offset, count * 8);
  } else {
    for (std::size_t i = 0; i < count; ++i) {
      const auto* u = reinterpret_cast<const unsigned char*>(
          in.data() + byte_offset + i * 8);
      std::uint64_t bits = 0;
      for (int b = 7; b >= 0; --b) {
        bits = (bits << 8) | u[b];
      }
      std::memcpy(&dst[i], &bits, 8);
    }
  }
}

}  // namespace omx::svc
