// omxd — the simulation service daemon.
//
// Boots a svc::Server, prints the bound port (machine-readable, for CI
// harnesses polling the log), and runs until SIGTERM/SIGINT. On
// shutdown it writes the obs metrics snapshot and the per-session
// service report so the run leaves artifacts behind:
//
//   omxd --port 0 --executors 2 --queue-cap 8 \
//        --metrics svc_metrics.json --service-json svc_service.json
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "omx/obs/export.hpp"
#include "omx/obs/registry.hpp"
#include "omx/svc/server.hpp"
#include "omx/tune/autotuner.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--bind ADDR] [--port N] [--executors N] [--queue-cap N]\n"
      "          [--retry-after-ms N] [--idle-timeout-ms N]\n"
      "          [--job-workers N] [--interp]\n"
      "          [--metrics PATH] [--service-json PATH] [--tune-json PATH]\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  omx::svc::ServerOptions opts;
  std::string metrics_path;
  std::string service_path;
  std::string tune_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::exit(usage(argv[0]));
      }
      return argv[++i];
    };
    if (arg == "--bind") {
      opts.bind = next();
    } else if (arg == "--port") {
      opts.port = static_cast<std::uint16_t>(std::atoi(next()));
    } else if (arg == "--executors") {
      opts.executors = static_cast<std::size_t>(std::atol(next()));
    } else if (arg == "--queue-cap") {
      opts.queue_cap = static_cast<std::size_t>(std::atol(next()));
    } else if (arg == "--retry-after-ms") {
      opts.retry_after_ms = std::atoi(next());
    } else if (arg == "--idle-timeout-ms") {
      opts.idle_timeout_ms = std::atoi(next());
    } else if (arg == "--job-workers") {
      opts.job_workers = static_cast<std::size_t>(std::atol(next()));
    } else if (arg == "--interp") {
      opts.backend = omx::exec::Backend::kInterp;
    } else if (arg == "--metrics") {
      metrics_path = next();
    } else if (arg == "--service-json") {
      service_path = next();
    } else if (arg == "--tune-json") {
      tune_path = next();
    } else {
      return usage(argv[0]);
    }
  }

  omx::svc::Server server(opts);
  try {
    server.start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "omxd: %s\n", e.what());
    return 1;
  }
  std::printf("omxd listening on %u\n", server.port());
  std::fflush(stdout);

  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  sigset_t mask;
  sigemptyset(&mask);
  while (g_stop == 0) {
    sigsuspend(&mask);  // sleeps until any signal is delivered
  }

  std::printf("omxd shutting down\n");
  server.stop();
  if (!service_path.empty()) {
    omx::obs::write_file(service_path, server.service_json());
  }
  if (!metrics_path.empty()) {
    omx::obs::write_file(
        metrics_path,
        omx::obs::metrics_json(omx::obs::Registry::global().snapshot()));
  }
  if (!tune_path.empty()) {
    omx::tune::AutoTuner::global().export_json(tune_path);
  }
  return 0;
}
