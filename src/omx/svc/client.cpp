#include "omx/svc/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <sstream>

#include "omx/obs/export.hpp"
#include "omx/support/json.hpp"

namespace omx::svc {

namespace {

bool is_async(MsgType t) {
  return t == MsgType::kFrame || t == MsgType::kDone;
}

}  // namespace

void Client::connect(const std::string& host, std::uint16_t port) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  OMX_REQUIRE(fd_ >= 0, "svc client: cannot create socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw omx::Error("svc client: invalid address " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string why = std::strerror(errno);
    close();
    throw omx::Error("svc client: cannot connect " + host + ":" +
                     std::to_string(port) + " (" + why + ")");
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  reader_ = FrameReader();
  pending_.clear();
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Message Client::read_message(int timeout_ms) {
  OMX_REQUIRE(fd_ >= 0, "svc client: not connected");
  char buf[64 * 1024];
  for (;;) {
    Message m;
    if (reader_.next(m)) {
      return m;
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int nready = ::poll(&pfd, 1, timeout_ms);
    if (nready == 0) {
      throw omx::Error("svc client: timeout waiting for server");
    }
    const ssize_t got = ::recv(fd_, buf, sizeof(buf), 0);
    if (got <= 0) {
      throw omx::Error("svc client: connection closed by server");
    }
    reader_.feed(buf, static_cast<std::size_t>(got));
  }
}

Message Client::request(const Message& m) {
  OMX_REQUIRE(fd_ >= 0, "svc client: not connected");
  const std::string bytes = encode(m);
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t put = ::send(fd_, bytes.data() + off, bytes.size() - off,
                               MSG_NOSIGNAL);
    if (put <= 0) {
      throw omx::Error("svc client: connection closed while sending");
    }
    off += static_cast<std::size_t>(put);
  }
  // The response to a request is the next NON-async message; FRAME/DONE
  // of running jobs may interleave and are queued for next_event().
  for (;;) {
    Message r = read_message(-1);
    if (is_async(r.type)) {
      pending_.push_back(to_event(r));
      continue;
    }
    return r;
  }
}

Event Client::to_event(const Message& m) {
  const support::json::Value v = support::json::parse(m.json);
  Event ev;
  ev.job = static_cast<std::uint64_t>(v.get_number("job", 0.0));
  if (m.type == MsgType::kFrame) {
    ev.kind = Event::Kind::kFrame;
    ev.scenario =
        static_cast<std::uint32_t>(v.get_number("scenario", 0.0));
    ev.rows = static_cast<std::size_t>(v.get_number("rows", 0.0));
    ev.n = static_cast<std::size_t>(v.get_number("n", 0.0));
    ev.final_chunk = v.get_bool("final", false);
    ev.times.resize(ev.rows);
    ev.states.resize(ev.rows * ev.n);
    read_f64(m.binary, 0, ev.times.data(), ev.rows);
    read_f64(m.binary, ev.rows * 8, ev.states.data(), ev.rows * ev.n);
  } else {
    ev.kind = Event::Kind::kDone;
    ev.cancelled = v.get_bool("cancelled", false);
    ev.frames = static_cast<std::uint64_t>(v.get_number("frames", 0.0));
    ev.error = v.get_string("error", "");
    if (const support::json::Value* rows = v.find("rows")) {
      for (const support::json::Value& r : rows->array) {
        ev.row_counts.push_back(static_cast<std::uint64_t>(r.number));
      }
    }
  }
  return ev;
}

bool Client::next_event(Event& ev, int timeout_ms) {
  if (!pending_.empty()) {
    ev = std::move(pending_.front());
    pending_.erase(pending_.begin());
    return true;
  }
  try {
    Message m = read_message(timeout_ms);
    while (!is_async(m.type)) {
      // Stray response with no request in flight: protocol violation.
      throw omx::Error(std::string("svc client: unexpected ") +
                       to_string(m.type));
    }
    ev = to_event(m);
    return true;
  } catch (const omx::Error& e) {
    if (std::string_view(e.what()).find("timeout") !=
        std::string_view::npos) {
      return false;
    }
    throw;
  }
}

ModelInfo Client::compile_builtin(const std::string& name, int rollers) {
  Message m;
  m.type = MsgType::kCompile;
  std::ostringstream js;
  js << "{\"builtin\": \"" << name << "\"";
  if (rollers > 0) {
    js << ", \"rollers\": " << rollers;
  }
  js << "}";
  m.json = js.str();
  const Message r = request(m);
  if (r.type != MsgType::kOk) {
    throw omx::Error("svc client: COMPILE failed: " + r.json);
  }
  const support::json::Value v = support::json::parse(r.json);
  ModelInfo info;
  info.model = v.get_string("model", "");
  info.n = static_cast<std::size_t>(v.get_number("n", 0.0));
  info.backend = v.get_string("backend", "");
  info.cached = v.get_bool("cached", false);
  if (const support::json::Value* y0 = v.find("y0")) {
    for (const support::json::Value& x : y0->array) {
      info.y0.push_back(x.number);
    }
  }
  return info;
}

ModelInfo Client::compile_source(const std::string& source) {
  Message m;
  m.type = MsgType::kCompile;
  m.json = "{\"source\": \"" + obs::json_escape(source) + "\"}";
  const Message r = request(m);
  if (r.type != MsgType::kOk) {
    throw omx::Error("svc client: COMPILE failed: " + r.json);
  }
  const support::json::Value v = support::json::parse(r.json);
  ModelInfo info;
  info.model = v.get_string("model", "");
  info.n = static_cast<std::size_t>(v.get_number("n", 0.0));
  info.backend = v.get_string("backend", "");
  info.cached = v.get_bool("cached", false);
  if (const support::json::Value* y0 = v.find("y0")) {
    for (const support::json::Value& x : y0->array) {
      info.y0.push_back(x.number);
    }
  }
  return info;
}

SubmitResult Client::submit(const SubmitRequest& req) {
  Message m;
  m.type = MsgType::kSubmit;
  std::ostringstream js;
  js << "{\"model\": \"" << req.model << "\", \"method\": \"" << req.method
     << "\", \"t0\": " << req.t0 << ", \"tend\": " << req.tend
     << ", \"scenarios\": " << req.scenarios
     << ", \"stream\": " << (req.stream ? "true" : "false")
     << ", \"record_every\": " << req.record_every << ", \"dt\": " << req.dt
     << ", \"rtol\": " << req.rtol << ", \"atol\": " << req.atol;
  if (req.workers > 0) {
    js << ", \"workers\": " << req.workers;
  }
  if (req.max_batch > 0) {
    js << ", \"max_batch\": " << req.max_batch;
  }
  if (req.autotune) {
    js << ", \"autotune\": true";
  }
  js << "}";
  m.json = js.str();
  if (!req.y0s.empty()) {
    append_f64(m.binary, req.y0s.data(), req.y0s.size());
  }
  const Message r = request(m);
  SubmitResult res;
  if (r.type == MsgType::kOk) {
    const support::json::Value v = support::json::parse(r.json);
    res.accepted = true;
    res.job = static_cast<std::uint64_t>(v.get_number("job", 0.0));
  } else if (r.type == MsgType::kRetry) {
    const support::json::Value v = support::json::parse(r.json);
    res.accepted = false;
    res.retry_after_ms =
        static_cast<int>(v.get_number("retry_after_ms", 0.0));
  } else {
    throw omx::Error("svc client: SUBMIT failed: " + r.json);
  }
  return res;
}

bool Client::cancel(std::uint64_t job) {
  Message m;
  m.type = MsgType::kCancel;
  m.json = "{\"job\": " + std::to_string(job) + "}";
  const Message r = request(m);
  if (r.type != MsgType::kOk) {
    throw omx::Error("svc client: CANCEL failed: " + r.json);
  }
  return support::json::parse(r.json).get_bool("cancelled", false);
}

std::string Client::stats() {
  Message m;
  m.type = MsgType::kStats;
  const Message r = request(m);
  if (r.type != MsgType::kOk) {
    throw omx::Error("svc client: STATS failed: " + r.json);
  }
  return r.json;
}

void Client::ping() {
  Message m;
  m.type = MsgType::kPing;
  const Message r = request(m);
  if (r.type != MsgType::kPong) {
    throw omx::Error("svc client: PING answered with " +
                     std::string(to_string(r.type)));
  }
}

void Client::bye() {
  Message m;
  m.type = MsgType::kBye;
  request(m);
  close();
}

}  // namespace omx::svc
