// The simulation service daemon core (the "omxd" in bin form).
//
// A long-lived process owns the expensive state — compiled models, warm
// native kernels, the executor pool — and clients talk to it over a
// TCP socket with the framed protocol of svc/protocol.hpp:
//
//   COMPILE  model source or builtin  -> cached model handle
//   SUBMIT   scenario batch           -> job id (or RETRY backpressure)
//   FRAME*   trajectory chunks stream back while the job runs
//   DONE     per-scenario row counts close the job
//   CANCEL   aborts a job's in-flight lanes cooperatively
//   STATS    live server statistics; PING/BYE keepalive & goodbye
//
// Threading: one poll-based event loop owns every socket (accept, read,
// write, timeouts — no thread per connection); `executors` worker
// threads run compiles and ensemble jobs. Admission control
// (runtime::AdmissionGate) bounds concurrent + queued jobs and answers
// RETRY with a backoff hint beyond that, so overload surfaces as
// protocol backpressure instead of memory growth. A client disconnect
// flips the cancellation flag of every job it owns; the solver lanes
// notice within one step attempt (SolverOptions::cancel) and abort.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "omx/exec/backend.hpp"
#include "omx/svc/protocol.hpp"

namespace omx::svc {

struct ServerOptions {
  std::string bind = "127.0.0.1";
  /// 0 = ephemeral; read the chosen port back with Server::port().
  std::uint16_t port = 0;
  /// Executor threads = maximum concurrently *running* jobs.
  std::size_t executors = 2;
  /// Accepted-but-waiting jobs beyond that; the bounded queue.
  std::size_t queue_cap = 8;
  /// Admission-rejected SUBMITs carry this backoff hint.
  int retry_after_ms = 200;
  /// Close connections idle this long with no live jobs (0 = never).
  int idle_timeout_ms = 0;
  /// Per-frame size ceiling (tests shrink it to probe the rejection).
  std::size_t max_frame_bytes = kDefaultMaxFrame;
  /// solve_ensemble workers per job. The default keeps one job on one
  /// core so `executors` jobs share the machine predictably; a single
  /// dedicated server would raise it instead of `executors`.
  std::size_t job_workers = 1;
  /// Interpreter lanes / batch width for compiled kernels.
  std::size_t kernel_lanes = 8;
  exec::Backend backend = exec::Backend::kNative;
};

class Server {
 public:
  explicit Server(ServerOptions opts);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds + listens and spawns the event loop and executor threads.
  /// Throws omx::Error when the socket cannot be bound.
  void start();

  /// Graceful stop: closes the listener and every connection, cancels
  /// running jobs, joins all threads. Idempotent.
  void stop();

  /// The bound port (after start()); useful with an ephemeral bind.
  std::uint16_t port() const;

  /// Per-session statistics, the queue-depth timeline, and totals as a
  /// JSON document — the daemon writes this next to the obs metrics on
  /// shutdown, and scripts/obs_report.py --service renders it.
  std::string service_json() const;

  /// Implementation detail (public only so server.cpp internals — the
  /// per-job trajectory sink — can hold a typed back-pointer).
  struct Impl;

 private:
  std::unique_ptr<Impl> impl_;
};

}  // namespace omx::svc
